// Package hotfix seeds hotpath-pass violations for the golden fixture
// test: the annotated functions contain each forbidden allocating
// construct; the unannotated twin repeats them without diagnostics.
package hotfix

import "fmt"

type state struct {
	buf []float32
	sum float32
}

//scaffe:hotpath
func hotAllocates(s *state, n int) {
	tmp := make([]float32, n)  // want `make allocates`
	s.buf = append(s.buf, 1)   // want `append may grow`
	pair := []int{1, 2}        // want `slice literal allocates`
	_ = map[string]int{"a": 1} // want `map literal allocates`
	p := &state{}              // want `&T\{\} escapes to the heap`
	_ = fmt.Sprintf("%d", n)   // want `fmt.Sprintf allocates`
	f := func() { s.sum++ }    // want `function literal`
	go f()                     // want `go statement`
	_, _, _ = tmp, pair, p
}

func sink(v interface{}) { _ = v }

//scaffe:hotpath
func hotBoxesAndConcats(s *state, name string) string {
	sink(s.sum)       // want `boxes it on the heap`
	return name + "!" // want `string concatenation allocates`
}

//scaffe:hotpath
func hotClean(s *state) {
	for i := range s.buf {
		s.sum += s.buf[i]
	}
	if s.sum < 0 {
		panic(fmt.Sprintf("bad sum %f", s.sum)) // panic path: exempt
	}
}

func coldAllocates(s *state, n int) { // unannotated: same constructs, no findings
	tmp := make([]float32, n)
	s.buf = append(s.buf, 1)
	_ = fmt.Sprintf("%d", n)
	_ = tmp
}
