package fault

import "scaffe/internal/sim"

// Backoff is the repository's single capped-exponential deadline
// ladder. Both consumers of deadline retries — the MPI layer's
// deadline-sliced waits (waitFT) and the join desk's admission retries
// (AwaitAdmission) — step the same ladder, so detection latency and
// admission latency are governed by one tested policy instead of two
// drifting copies.
//
// The ladder is jitterless on purpose: randomized jitter would break
// the simulator's bit-for-bit determinism, and the discrete-event
// kernel has no thundering herd to spread out. Step(a) is
// Quantum<<min(a, MaxShift), so transient slowness is ridden out with
// geometrically growing patience that plateaus at Ceiling().
type Backoff struct {
	// Quantum is the base deadline of attempt 0.
	Quantum sim.Duration
	// MaxShift caps the exponent: no deadline exceeds Quantum<<MaxShift.
	MaxShift int
}

// Step returns the deadline for the given retry attempt (attempt 0 is
// the first wait). Negative attempts clamp to 0.
func (b Backoff) Step(attempt int) sim.Duration {
	if attempt < 0 {
		attempt = 0
	}
	if attempt > b.MaxShift {
		attempt = b.MaxShift
	}
	return b.Quantum << attempt
}

// Ceiling returns the plateau deadline, Quantum<<MaxShift — the
// longest single wait the ladder ever issues, and the cool-down the
// join desk sleeps after an exhausted retry budget.
func (b Backoff) Ceiling() sim.Duration { return b.Step(b.MaxShift) }

// Elapsed returns the total virtual time a waiter has ridden out after
// `attempts` consecutive expired deadlines — the horizon the wire
// plane's loss escalation is calibrated against.
func (b Backoff) Elapsed(attempts int) sim.Duration {
	var total sim.Duration
	for a := 0; a < attempts; a++ {
		total += b.Step(a)
	}
	return total
}
