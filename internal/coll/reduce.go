package coll

import (
	"fmt"

	"scaffe/internal/gpu"
	"scaffe/internal/mpi"
)

// binomialReducer implements the flat binomial-tree reduce of Eq. (1):
// log2(P) rounds, each moving and reducing the full buffer.
type binomialReducer struct {
	c      *mpi.Comm
	o      Options
	states stateTable
}

func (b *binomialReducer) Name() string { return "binomial" }

//scaffe:hotpath
func (b *binomialReducer) Reduce(r *mpi.Rank, buf *gpu.Buffer, tag int) {
	// Collective entry: the reducer's shared per-rank state table and
	// the cross-rank traffic below are outside any one group, so a
	// batched segment serializes here (no-op in sequential mode).
	r.Proc.Exclusive()
	me := b.c.Rank(r)
	size := b.c.Size()
	if size == 1 {
		return
	}
	st := b.states.acquire(size, me)
	defer st.release()
	var scratch *gpu.Buffer
	for mask := 1; mask < size; mask <<= 1 {
		if me&mask != 0 {
			if scratch != nil {
				st.putScratch(scratch)
			}
			r.Send(b.c, me-mask, tag, buf, b.o.Mode)
			return
		}
		peer := me + mask
		if peer >= size {
			continue
		}
		if scratch == nil {
			scratch = st.getScratch(buf)
		}
		r.RecvSummed(b.c, peer, tag, scratch).Verify()
		localReduce(r, buf, scratch, b.o)
	}
	if scratch != nil {
		st.putScratch(scratch)
	}
}

// chainReducer implements the chunked-chain pipelined reduce of
// Eq. (2): the tail splits the buffer into n chunks; each interior
// rank receives a chunk from its right neighbour, reduces it into its
// own copy, and forwards it left; the pipeline drains at the root.
type chainReducer struct {
	c      *mpi.Comm
	o      Options
	states stateTable
}

func (cr *chainReducer) Name() string { return "chain" }

func (cr *chainReducer) Reduce(r *mpi.Rank, buf *gpu.Buffer, tag int) {
	// Collective entry: the reducer's shared per-rank state table and
	// the cross-rank traffic below are outside any one group, so a
	// batched segment serializes here (no-op in sequential mode).
	r.Proc.Exclusive()
	me := cr.c.Rank(r)
	size := cr.c.Size()
	if size == 1 {
		return
	}
	st := cr.states.acquire(size, me)
	defer st.release()
	n := defaultChunks(buf.Bytes, cr.o.Chunks)
	elems := buf.Elems()

	switch {
	case me == size-1: // tail: source of the pipeline
		sreqs := st.takeReqs()
		for j := 0; j < n; j++ {
			lo, hi := chunkBounds(elems, n, j)
			if lo >= hi {
				continue
			}
			//scaffe:nolint hotpath request slice is pooled via takeReqs/storeReqs; append reuses high-water capacity
			sreqs = append(sreqs, r.Isend(cr.c, me-1, tag, st.view(buf, lo, hi), cr.o.Mode))
		}
		r.WaitAll(sreqs...)
		st.storeReqs(sreqs)

	case me == 0: // root: sink of the pipeline
		for j := 0; j < n; j++ {
			lo, hi := chunkBounds(elems, n, j)
			if lo >= hi {
				continue
			}
			tmp := st.view(buf, lo, hi)
			scratch := st.getScratch(tmp)
			r.RecvSummed(cr.c, 1, tag, scratch).Verify()
			localReduce(r, tmp, scratch, cr.o)
			st.putScratch(scratch)
		}

	default: // interior: receive, reduce, forward
		sreqs := st.takeReqs()
		for j := 0; j < n; j++ {
			lo, hi := chunkBounds(elems, n, j)
			if lo >= hi {
				continue
			}
			mine := st.view(buf, lo, hi)
			scratch := st.getScratch(mine)
			r.RecvSummed(cr.c, me+1, tag, scratch).Verify()
			localReduce(r, mine, scratch, cr.o)
			// The scratch is free for the next chunk right away: the
			// in-flight forward below sends `mine` (a view of buf),
			// never the scratch.
			st.putScratch(scratch)
			//scaffe:nolint hotpath request slice is pooled via takeReqs/storeReqs; append reuses high-water capacity
			sreqs = append(sreqs, r.Isend(cr.c, me-1, tag, mine, cr.o.Mode))
		}
		r.WaitAll(sreqs...)
		st.storeReqs(sreqs)
	}
}

// hierarchical is the two-level design of Section 5: lower-level
// chunked chains over consecutive (locality-aligned) ranks, then an
// upper-level reduce among chain leaders using `upper` (Chain for CC,
// Binomial for CB).
type hierarchical struct {
	base     *mpi.Comm
	o        Options
	upperAlg Algorithm
	chains   []*mpi.Comm
	leaders  *mpi.Comm
	lower    []Reducer
	upper    Reducer
	name     string
}

func newHierarchical(c *mpi.Comm, o Options, upperAlg Algorithm) *hierarchical {
	chains, leaders := c.SplitChains(o.ChainSize)
	h := &hierarchical{base: c, o: o, upperAlg: upperAlg, chains: chains, leaders: leaders}
	for _, ch := range chains {
		h.lower = append(h.lower, &chainReducer{c: ch, o: o})
	}
	switch upperAlg {
	case Chain:
		h.upper = &chainReducer{c: leaders, o: o}
		h.name = fmt.Sprintf("CC-%d", o.ChainSize)
	case Binomial:
		h.upper = &binomialReducer{c: leaders, o: o}
		h.name = fmt.Sprintf("CB-%d", o.ChainSize)
	default:
		panic("coll: hierarchical upper level must be Chain or Binomial")
	}
	return h
}

func (h *hierarchical) Name() string { return h.name }

func (h *hierarchical) Reduce(r *mpi.Rank, buf *gpu.Buffer, tag int) {
	me := h.base.Rank(r)
	ci := me / h.o.ChainSize
	h.lower[ci].Reduce(r, buf, tag)
	if me%h.o.ChainSize == 0 {
		h.upper.Reduce(r, buf, tag+1)
	}
}

// newThreeLevel builds the chain-of-chain-plus-binomial design the
// paper proposes for very large scales ("in future, we can exploit
// multi-level combinations like chain-of-chain combined with a top
// level binomial", Section 5): level-0 chains over consecutive ranks,
// level-1 chains over the level-0 leaders, binomial tree over the
// level-1 leaders.
func newThreeLevel(c *mpi.Comm, o Options) *hierarchical {
	chains, leaders := c.SplitChains(o.ChainSize)
	h := &hierarchical{base: c, o: o, upperAlg: ChainChainBinomial, chains: chains, leaders: leaders}
	for _, ch := range chains {
		h.lower = append(h.lower, &chainReducer{c: ch, o: o})
	}
	if leaders.Size() > o.ChainSize {
		h.upper = newHierarchical(leaders, o, Binomial)
	} else {
		// Too few leaders for another level: degrade to a single
		// binomial, i.e. plain CB.
		h.upper = &binomialReducer{c: leaders, o: o}
	}
	h.name = fmt.Sprintf("CCB-%d", o.ChainSize)
	return h
}
