package mpi

import (
	"errors"
	"fmt"
	"math"

	"scaffe/internal/gpu"
)

// The integrity plane's wire format. Every checksummed transfer is a
// sequence of framed chunks:
//
//	magic(2) | seq(4, LE) | elems(4, LE) | sum(8, LE) | payload(4*elems, LE)
//
// The checksum is FNV-1a over 32-bit words (gpu.ChecksumWord) covering
// seq, elems, and the payload, so a flip anywhere in the frame is
// caught: magic and elems corruption fail structural decoding, seq,
// sum, and payload corruption fail Verify. The in-simulator transfers
// (Summed, ibcast edges) implement this discipline without
// materializing bytes; Chunk is the byte-level contract the fuzz and
// corruption-gallery tests pin down.
const (
	chunkMagic0 = 0x5C
	chunkMagic1 = 0xAF

	// ChunkHeaderLen is the framed size of a chunk with no payload.
	ChunkHeaderLen = 18
)

// ErrChunk reports a structurally invalid chunk frame.
var ErrChunk = errors.New("mpi: malformed chunk")

// Chunk is one checksummed unit of a pipelined transfer.
type Chunk struct {
	Seq     uint32
	Elems   uint32
	Sum     uint64
	Payload []float32
}

// SealChunk stamps a payload with its sequence number and checksum.
func SealChunk(seq uint32, payload []float32) Chunk {
	c := Chunk{Seq: seq, Elems: uint32(len(payload)), Payload: payload}
	c.Sum = c.checksum()
	return c
}

func (c *Chunk) checksum() uint64 {
	h := gpu.ChecksumSeed()
	h = gpu.ChecksumWord(h, c.Seq)
	h = gpu.ChecksumWord(h, c.Elems)
	for _, v := range c.Payload {
		h = gpu.ChecksumWord(h, math.Float32bits(v))
	}
	return h
}

// Verify reports whether the chunk's payload still matches its seal.
func (c *Chunk) Verify() bool {
	return uint32(len(c.Payload)) == c.Elems && c.checksum() == c.Sum
}

// Marshal frames the chunk for the wire.
func (c *Chunk) Marshal() []byte {
	b := make([]byte, ChunkHeaderLen+4*len(c.Payload))
	b[0], b[1] = chunkMagic0, chunkMagic1
	putUint32(b[2:], c.Seq)
	putUint32(b[6:], c.Elems)
	putUint64(b[10:], c.Sum)
	for i, v := range c.Payload {
		putUint32(b[ChunkHeaderLen+4*i:], math.Float32bits(v))
	}
	return b
}

// UnmarshalChunk decodes one framed chunk. It fails on truncated or
// oversized frames, a bad magic, or an element count that disagrees
// with the frame length; checksum mismatches are left for Verify so
// callers can distinguish framing damage from payload damage.
func UnmarshalChunk(b []byte) (Chunk, error) {
	if len(b) < ChunkHeaderLen {
		return Chunk{}, fmt.Errorf("%w: %d bytes, need at least %d", ErrChunk, len(b), ChunkHeaderLen)
	}
	if b[0] != chunkMagic0 || b[1] != chunkMagic1 {
		return Chunk{}, fmt.Errorf("%w: bad magic %#02x%02x", ErrChunk, b[0], b[1])
	}
	c := Chunk{Seq: getUint32(b[2:]), Elems: getUint32(b[6:]), Sum: getUint64(b[10:])}
	if payload := len(b) - ChunkHeaderLen; payload%4 != 0 || uint64(c.Elems) != uint64(payload/4) {
		return Chunk{}, fmt.Errorf("%w: header claims %d elems, frame carries %d payload bytes", ErrChunk, c.Elems, payload)
	}
	if c.Elems > 0 {
		c.Payload = make([]float32, c.Elems)
		for i := range c.Payload {
			c.Payload[i] = math.Float32frombits(getUint32(b[ChunkHeaderLen+4*i:]))
		}
	}
	return c, nil
}

func putUint32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func putUint64(b []byte, v uint64) {
	putUint32(b, uint32(v))
	putUint32(b[4:], uint32(v>>32))
}

func getUint32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func getUint64(b []byte) uint64 {
	return uint64(getUint32(b)) | uint64(getUint32(b[4:]))<<32
}
