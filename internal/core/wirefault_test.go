package core

import (
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"scaffe/internal/coll"
	"scaffe/internal/fault"
	"scaffe/internal/models"
	"scaffe/internal/sim"
)

// allLinkWire builds one wire event of the given kind per directed
// link of an n-rank world, all armed at `at`: whichever links the
// reducer under test actually routes traffic over, its landings meet
// the perturbation. hold is the Delay kind's window (ignored
// otherwise).
func allLinkWire(kind fault.Kind, at sim.Time, ranks, n int, hold sim.Duration) fault.Schedule {
	var s fault.Schedule
	for i := 0; i < ranks; i++ {
		for j := 0; j < ranks; j++ {
			if i == j {
				continue
			}
			ev := fault.Event{At: at, Kind: kind, Src: i, Dst: j, N: n}
			if kind == fault.Delay {
				ev.For = hold
			}
			s = append(s, ev)
		}
	}
	return s
}

// wireFamilies is every reducer family the wire tests sweep: the
// tree/chain reducers select through Config.Reduce under SC-B, and the
// ring allreduce through the CNTK-like design (its only reducer).
var wireFamilies = []struct {
	name   string
	design Design
	alg    coll.Algorithm
}{
	{"binomial", SCB, coll.Binomial},
	{"chain", SCB, coll.Chain},
	{"chain-chain", SCB, coll.ChainChain},
	{"chain-binomial", SCB, coll.ChainBinomial},
	{"rabenseifner", SCB, coll.Rabenseifner},
	{"ring", CNTKLike, coll.Tuned},
}

func wireCfg(t *testing.T, design Design, alg coll.Algorithm) Config {
	t.Helper()
	spec, err := models.ByName("cifar10-quick")
	if err != nil {
		t.Fatal(err)
	}
	cfg := timingConfig(spec, 8, 64, 8)
	cfg.Design = design
	cfg.Reduce = alg
	cfg.Nodes, cfg.GPUsPerNode = 2, 4
	// A 1ms detection quantum keeps the loss-aware escalation horizon
	// (47 quanta: 1+2+4+8+16+16) small next to the run length.
	cfg.FaultTimeout = sim.Millisecond
	return cfg
}

// TestWireDropEscalatesEveryReducer drops the next landing on every
// directed link mid-run, for every reducer family: the payloads are
// permanently gone, so the starved waiters must escalate through the
// revoke path (a loss-aware wire revocation — no rank failed, so the
// membership is unchanged) and the run must still finish inside the
// virtual-time ceiling.
func TestWireDropEscalatesEveryReducer(t *testing.T) {
	for _, fc := range wireFamilies {
		fc := fc
		t.Run(fc.name, func(t *testing.T) {
			cfg := wireCfg(t, fc.design, fc.alg)
			base := midRun(t, cfg, 0.45)
			cfg.Faults = allLinkWire(fault.Drop, base, 8, 1, 0)
			cfg.MaxVirtualTime = sim.Duration(base)*40 + 10*sim.Second
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rep := res.Fault
			if rep.Drops < 1 {
				t.Fatalf("no landings dropped: %v", rep)
			}
			if rep.WireRevokes < 1 {
				t.Errorf("dropped traffic never escalated to a revocation: %v", rep)
			}
			if rep.Survivors != 8 || len(rep.Recoveries) != 0 {
				t.Errorf("wire loss must not change membership: %v", rep)
			}
		})
	}
}

// TestWireDupInvisibleEveryReducer duplicates the next landing on
// every directed link: the generation-guarded completion machinery
// absorbs every ghost, so the run's virtual-time outcome must be
// byte-identical to an armed-but-idle plane.
func TestWireDupInvisibleEveryReducer(t *testing.T) {
	for _, fc := range wireFamilies {
		fc := fc
		t.Run(fc.name, func(t *testing.T) {
			cfg := wireCfg(t, fc.design, fc.alg)
			base := midRun(t, cfg, 0.45)

			idle := cfg
			idle.Faults = fault.Schedule{{At: sim.Time(base) * 1000, Kind: fault.StragglerOff, Rank: 0}}
			ref, err := Run(idle)
			if err != nil {
				t.Fatal(err)
			}

			cfg.Faults = allLinkWire(fault.Dup, base, 8, 1, 0)
			cfg.MaxVirtualTime = sim.Duration(base)*40 + 10*sim.Second
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rep := res.Fault
			if rep.Dups < 1 {
				t.Fatalf("no landings duplicated: %v", rep)
			}
			if res.TotalTime != ref.TotalTime {
				t.Errorf("duplicate landings changed total time: %v vs %v", res.TotalTime, ref.TotalTime)
			}
			if rep.WireRevokes != 0 || len(rep.Recoveries) != 0 || rep.Survivors != 8 {
				t.Errorf("duplicates are not losses; report = %v", rep)
			}
		})
	}
}

// TestWireReorderAndDelayEveryReducer swaps adjacent landings
// (reorder) and holds landings (delay) on every link: neither loses
// payload, so runs finish with full membership and no revocation —
// the reorder failsafe flushes any stash with no follow-up landing.
func TestWireReorderAndDelayEveryReducer(t *testing.T) {
	for _, fc := range wireFamilies {
		fc := fc
		t.Run(fc.name, func(t *testing.T) {
			cfg := wireCfg(t, fc.design, fc.alg)
			base := midRun(t, cfg, 0.45)
			cfg.Faults = append(
				allLinkWire(fault.Reorder, base, 8, 1, 0),
				allLinkWire(fault.Delay, sim.Time(float64(base)*1.2), 8, 1, 3*sim.Millisecond)...)
			cfg.MaxVirtualTime = sim.Duration(base)*40 + 10*sim.Second
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rep := res.Fault
			if rep.Reorders < 1 {
				t.Fatalf("no landings reordered: %v", rep)
			}
			if rep.Delays < 1 {
				t.Fatalf("no landings delayed: %v", rep)
			}
			if rep.Drops != 0 || rep.WireRevokes != 0 || len(rep.Recoveries) != 0 || rep.Survivors != 8 {
				t.Errorf("reorder/delay are not losses; report = %v", rep)
			}
		})
	}
}

// TestWireDropDeterministicAcrossProcs pins GOMAXPROCS-invariance of
// a loss-escalated run: wire faults arm the plane, which forces the
// sequential kernel, so the whole fate/escalate/recover history must
// be bit-identical whatever the host parallelism.
func TestWireDropDeterministicAcrossProcs(t *testing.T) {
	cfg := wireCfg(t, SCB, coll.Binomial)
	base := midRun(t, cfg, 0.45)
	cfg.Faults = allLinkWire(fault.Drop, base, 8, 1, 0)
	cfg.MaxVirtualTime = sim.Duration(base)*40 + 10*sim.Second
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var first *Result
	for _, procs := range []int{1, 4, 16} {
		runtime.GOMAXPROCS(procs)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("GOMAXPROCS=%d: %v", procs, err)
		}
		if first == nil {
			first = res
			continue
		}
		if res.TotalTime != first.TotalTime {
			t.Errorf("GOMAXPROCS=%d: total time %v != %v", procs, res.TotalTime, first.TotalTime)
		}
		if !reflect.DeepEqual(res.Fault, first.Fault) {
			t.Errorf("GOMAXPROCS=%d: fault report diverged:\n%+v\n%+v", procs, res.Fault, first.Fault)
		}
	}
}

// TestSplitBrainDrillBitExact is the tentpole's acceptance drill: an
// 8-rank real-compute run is split 4|4 mid-training. The quorum rule
// must fence the minority (the side without the root), the majority
// continues from the pre-partition snapshot, the fenced ranks re-enter
// through the join desk after the heal, and the final parameters must
// be bit-identical to a fault-free golden — across GOMAXPROCS
// settings.
func TestSplitBrainDrillBitExact(t *testing.T) {
	dir := t.TempDir()
	// Snapshots land at iterations 11 and 23: the only boundary inside
	// the run sits before the partition, so the shrunken majority can
	// never write a 4-rank snapshot before the minority rejoins.
	const iters, every = 24, 12

	golden := tinyRealConfig(8, 32, iters)
	golden.SnapshotEvery = every
	golden.SnapshotPrefix = filepath.Join(dir, "golden")
	gres, err := Run(golden)
	if err != nil {
		t.Fatal(err)
	}
	tt := gres.TotalTime

	quantum := sim.Millisecond
	// The loss-aware escalation fires after 6 ladder steps:
	// 1+2+4+8+16+16 = 47 quanta from the first starved wait.
	horizon := 47 * quantum
	at := sim.Time(float64(tt) * 0.6)
	window := horizon + sim.Duration(float64(tt)*0.2)

	cfg := tinyRealConfig(8, 32, iters)
	cfg.SnapshotEvery = every
	cfg.SnapshotPrefix = filepath.Join(dir, "drill")
	cfg.FaultTimeout = quantum
	cfg.MaxVirtualTime = sim.Duration(tt)*30 + 10*sim.Second
	cfg.Faults = fault.Schedule{{
		At:     at,
		Kind:   fault.Partition,
		Groups: [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}},
		For:    window,
	}}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var first *Result
	for _, procs := range []int{1, 4, 16} {
		runtime.GOMAXPROCS(procs)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("GOMAXPROCS=%d: %v", procs, err)
		}
		rep := res.Fault
		if rep.PartitionDrops < 1 || rep.WireRevokes < 1 {
			t.Fatalf("GOMAXPROCS=%d: partition never starved a waiter into escalation: %v", procs, rep)
		}
		if rep.Fenced != 4 {
			t.Fatalf("GOMAXPROCS=%d: fenced %d ranks, want the 4-rank minority: %v", procs, rep.Fenced, rep)
		}
		fenced := map[int]bool{}
		for _, rec := range rep.Recoveries {
			if rec.Kind == fault.Partitioned {
				fenced[rec.Rank] = true
			}
		}
		for _, r := range []int{4, 5, 6, 7} {
			if !fenced[r] {
				t.Fatalf("GOMAXPROCS=%d: minority rank %d has no Partitioned recovery record: %+v", procs, r, rep.Recoveries)
			}
		}
		if len(rep.Joins) != 4 || rep.Survivors != 8 {
			t.Fatalf("GOMAXPROCS=%d: minority must rejoin after heal: joins = %+v, survivors = %d", procs, rep.Joins, rep.Survivors)
		}
		if len(res.Losses) != iters {
			t.Fatalf("GOMAXPROCS=%d: recorded %d losses, want %d", procs, len(res.Losses), iters)
		}
		for i := range res.Losses {
			if res.Losses[i] != gres.Losses[i] {
				t.Fatalf("GOMAXPROCS=%d: loss %d = %v, golden %v (healed run is not bit-exact)", procs, i, res.Losses[i], gres.Losses[i])
			}
		}
		if len(res.FinalParams) != len(gres.FinalParams) {
			t.Fatalf("GOMAXPROCS=%d: param count mismatch: %d vs %d", procs, len(res.FinalParams), len(gres.FinalParams))
		}
		for i := range res.FinalParams {
			if res.FinalParams[i] != gres.FinalParams[i] {
				t.Fatalf("GOMAXPROCS=%d: param %d: %v != golden %v", procs, i, res.FinalParams[i], gres.FinalParams[i])
			}
		}
		if first == nil {
			first = res
			continue
		}
		if res.TotalTime != first.TotalTime || !reflect.DeepEqual(res.Fault, first.Fault) {
			t.Errorf("GOMAXPROCS=%d: drill outcome diverged:\n%+v\n%+v", procs, res.Fault, first.Fault)
		}
	}
}

// TestWirePlaneArmedUntrippedByteIdentical pins the zero-perturbation
// bar for the whole wire family: scheduling drop/dup/reorder/delay/
// partition events that never fire must leave every observable output
// byte-identical to the established armed-but-idle baseline.
func TestWirePlaneArmedUntrippedByteIdentical(t *testing.T) {
	base := tinyRealConfig(4, 32, 12)
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	far := ref.TotalTime * 1000

	idle := tinyRealConfig(4, 32, 12)
	idle.Faults = fault.Schedule{{At: far, Kind: fault.StragglerOff, Rank: 0}}
	a, err := Run(idle)
	if err != nil {
		t.Fatal(err)
	}

	wired := tinyRealConfig(4, 32, 12)
	wired.Faults = fault.Schedule{
		{At: far, Kind: fault.Drop, Src: 0, Dst: 1, N: 1},
		{At: far, Kind: fault.Dup, Src: 1, Dst: 2, N: 1},
		{At: far, Kind: fault.Reorder, Src: 2, Dst: 3, N: 1},
		{At: far, Kind: fault.Delay, Src: 3, Dst: 0, N: 1, For: sim.Millisecond},
		{At: far, Kind: fault.Partition, Groups: [][]int{{0, 1}, {2, 3}}, For: sim.Millisecond},
	}
	b, err := Run(wired)
	if err != nil {
		t.Fatal(err)
	}

	if a.TotalTime != b.TotalTime {
		t.Errorf("armed wire plane changed total time: %v vs %v", b.TotalTime, a.TotalTime)
	}
	if !reflect.DeepEqual(a.Losses, b.Losses) {
		t.Error("armed wire plane changed the loss curve")
	}
	if !reflect.DeepEqual(a.FinalParams, b.FinalParams) {
		t.Error("armed wire plane changed the final parameters")
	}
	rep := b.Fault
	if rep.Drops+rep.Dups+rep.Reorders+rep.Delays+rep.PartitionDrops+rep.WireRevokes+rep.Fenced != 0 || len(rep.Recoveries) != 0 {
		t.Errorf("untripped wire plane reported activity: %v", rep)
	}
}
