package fault

import (
	"testing"

	"scaffe/internal/sim"
)

// TestBackoffSteps pins the ladder's exact deterministic steps: no
// jitter, exponential growth, hard plateau.
func TestBackoffSteps(t *testing.T) {
	b := Backoff{Quantum: 10 * sim.Millisecond, MaxShift: 4}
	want := []sim.Duration{
		10 * sim.Millisecond,
		20 * sim.Millisecond,
		40 * sim.Millisecond,
		80 * sim.Millisecond,
		160 * sim.Millisecond,
		160 * sim.Millisecond, // plateau
		160 * sim.Millisecond,
	}
	for a, w := range want {
		if got := b.Step(a); got != w {
			t.Errorf("Step(%d) = %v, want %v", a, got, w)
		}
	}
	if got := b.Step(-3); got != want[0] {
		t.Errorf("Step(-3) = %v, want %v", got, want[0])
	}
	if got := b.Ceiling(); got != 160*sim.Millisecond {
		t.Errorf("Ceiling() = %v, want 160ms", got)
	}
}

// TestBackoffElapsed pins the cumulative ride-out horizon the wire
// plane's loss escalation threshold is derived from.
func TestBackoffElapsed(t *testing.T) {
	b := Backoff{Quantum: 10 * sim.Millisecond, MaxShift: 4}
	if got := b.Elapsed(0); got != 0 {
		t.Errorf("Elapsed(0) = %v, want 0", got)
	}
	// 10+20+40+80+160+160 = 470ms after six expired deadlines.
	if got := b.Elapsed(6); got != 470*sim.Millisecond {
		t.Errorf("Elapsed(6) = %v, want 470ms", got)
	}
}

// TestPlaneTimeoutUsesBackoff pins the plane's deadline ladder to the
// shared helper: mpi's waitFT and the join desk call pl.Timeout, so
// this is the single policy both step.
func TestPlaneTimeoutUsesBackoff(t *testing.T) {
	k := sim.New()
	pl := NewPlane(k, 4, 0)
	b := Backoff{Quantum: DefaultTimeout, MaxShift: maxBackoffShift}
	for a := 0; a < 8; a++ {
		if pl.Timeout(a) != b.Step(a) {
			t.Errorf("Timeout(%d) = %v, Backoff.Step = %v", a, pl.Timeout(a), b.Step(a))
		}
	}
}
