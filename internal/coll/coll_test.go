package coll

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"scaffe/internal/gpu"
	"scaffe/internal/mpi"
	"scaffe/internal/sim"
	"scaffe/internal/topology"
)

func newWorld(t testing.TB, nodes, gpusPerNode, ranks int) *mpi.World {
	t.Helper()
	k := sim.New()
	c := topology.New(k, "test", nodes, gpusPerNode, topology.DefaultParams())
	return mpi.NewWorld(c, ranks)
}

// runReduce executes one reduction over `ranks` ranks with per-rank
// payloads of n elements where rank i contributes value i+1 to every
// element, and returns root's result plus the final virtual time.
func runReduce(t testing.TB, alg Algorithm, o Options, ranks, n int) ([]float32, sim.Time) {
	t.Helper()
	nodes := (ranks + 3) / 4
	w := newWorld(t, nodes, 4, ranks)
	c := w.WorldComm()
	red := NewReducer(c, alg, o)
	var result []float32
	end, err := w.Run(func(r *mpi.Rank) {
		buf := gpu.NewDataBuffer(n)
		buf.Fill(float32(r.ID + 1))
		red.Reduce(r, buf, 10)
		if r.ID == 0 {
			result = append([]float32(nil), buf.Data...)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return result, end
}

func expectSum(t *testing.T, got []float32, ranks int) {
	t.Helper()
	want := float32(ranks * (ranks + 1) / 2)
	for i, v := range got {
		if v != want {
			t.Fatalf("element %d = %v, want %v (sum over %d ranks)", i, v, want, ranks)
		}
	}
}

func TestBinomialReduceCorrect(t *testing.T) {
	for _, ranks := range []int{1, 2, 3, 4, 7, 8, 13, 16} {
		got, _ := runReduce(t, Binomial, DefaultOptions(), ranks, 37)
		expectSum(t, got, ranks)
	}
}

func TestChainReduceCorrect(t *testing.T) {
	for _, ranks := range []int{1, 2, 3, 5, 8} {
		for _, chunks := range []int{1, 3, 8} {
			o := DefaultOptions()
			o.Chunks = chunks
			got, _ := runReduce(t, Chain, o, ranks, 41)
			expectSum(t, got, ranks)
		}
	}
}

func TestChainMoreChunksThanElems(t *testing.T) {
	o := DefaultOptions()
	o.Chunks = 16
	got, _ := runReduce(t, Chain, o, 4, 5) // 5 elems, 16 requested chunks
	expectSum(t, got, 4)
}

func TestHierarchicalCCCorrect(t *testing.T) {
	for _, ranks := range []int{8, 12, 16, 24} {
		o := DefaultOptions()
		o.ChainSize = 4
		got, _ := runReduce(t, ChainChain, o, ranks, 29)
		expectSum(t, got, ranks)
	}
}

func TestHierarchicalCBCorrect(t *testing.T) {
	for _, ranks := range []int{8, 12, 16, 24} {
		o := DefaultOptions()
		o.ChainSize = 4
		got, _ := runReduce(t, ChainBinomial, o, ranks, 29)
		expectSum(t, got, ranks)
	}
}

func TestThreeLevelCCBCorrect(t *testing.T) {
	// The future-work design: chains of 4 -> chains over leaders ->
	// binomial over top leaders, verified numerically at several
	// sizes including non-multiples of the chain size.
	for _, ranks := range []int{4, 16, 23, 64} {
		o := DefaultOptions()
		o.ChainSize = 4
		got, _ := runReduce(t, ChainChainBinomial, o, ranks, 31)
		expectSum(t, got, ranks)
	}
}

func TestThreeLevelCCBScalesAtVeryLargeCounts(t *testing.T) {
	// CCB's raison d'être: beyond what two levels cover, the third
	// level keeps the top fan-in logarithmic. At 160 ranks it should
	// at least stay within range of CB (both use binomial tops).
	o := DefaultOptions()
	_, tCCB := runReduce(t, ChainChainBinomial, o, 64, 1<<20)
	_, tBin := runReduce(t, Binomial, o, 64, 1<<20)
	if tCCB >= tBin {
		t.Errorf("4MB/64 ranks: CCB (%v) should beat flat binomial (%v)", tCCB, tBin)
	}
}

func TestCCBName(t *testing.T) {
	w := newWorld(t, 8, 4, 32)
	red := NewReducer(w.WorldComm(), ChainChainBinomial, DefaultOptions())
	if red.Name() != "CCB-8" {
		t.Errorf("name = %q, want CCB-8", red.Name())
	}
	if ChainChainBinomial.String() != "CCB" {
		t.Errorf("algorithm string = %q", ChainChainBinomial.String())
	}
}

func TestTunedCorrectAcrossSizes(t *testing.T) {
	for _, n := range []int{8, 1 << 16, 1 << 20} { // 32B, 256KB, 4MB
		got, _ := runReduce(t, Tuned, DefaultOptions(), 16, n)
		expectSum(t, got, 16)
	}
}

func TestBaselinesCorrect(t *testing.T) {
	for _, alg := range []Algorithm{MV2Baseline, OpenMPIBaseline} {
		got, _ := runReduce(t, alg, DefaultOptions(), 8, 33)
		expectSum(t, got, 8)
	}
}

func TestReducePropertyRandomShapes(t *testing.T) {
	// Property: for random (algorithm, ranks, elems, chain size) the
	// root always holds the exact element-wise sum.
	algs := []Algorithm{Binomial, Chain, ChainChain, ChainBinomial, Tuned}
	f := func(algSeed, ranksSeed, elemSeed, chainSeed uint8) bool {
		alg := algs[int(algSeed)%len(algs)]
		ranks := 1 + int(ranksSeed)%16
		elems := 1 + int(elemSeed)%200
		o := DefaultOptions()
		o.ChainSize = 1 + int(chainSeed)%8
		got, _ := runReduce(t, alg, o, ranks, elems)
		want := float32(ranks * (ranks + 1) / 2)
		for _, v := range got {
			if v != want {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestChainBeatsBinomialForLargeBuffers(t *testing.T) {
	// Paper Section 5: for large b and small P, T(CC) << T(Bin).
	const ranks, elems = 8, 8 << 20 / 4 // 8 MB
	_, tChain := runReduce(t, Chain, DefaultOptions(), ranks, elems)
	_, tBin := runReduce(t, Binomial, DefaultOptions(), ranks, elems)
	if tChain >= tBin {
		t.Errorf("16MB/8 ranks: chain %v should beat binomial %v", tChain, tBin)
	}
}

func TestBinomialBeatsChainForManyProcsSmallBuffers(t *testing.T) {
	// Paper Section 5: for large P and small b, T(CC) >> T(Bin).
	const ranks, elems = 64, 1024 // 4 KB
	o := DefaultOptions()
	o.Chunks = 4
	_, tChain := runReduce(t, Chain, o, ranks, elems)
	_, tBin := runReduce(t, Binomial, DefaultOptions(), ranks, elems)
	if tBin >= tChain {
		t.Errorf("4KB/64 ranks: binomial %v should beat chain %v", tBin, tChain)
	}
}

func TestHRBeatsMV2AtScale(t *testing.T) {
	const ranks = 32
	const elems = 8 << 20 / 4 // 8 MB
	_, tHR := runReduce(t, Tuned, DefaultOptions(), ranks, elems)
	_, tMV2 := runReduce(t, MV2Baseline, DefaultOptions(), ranks, elems)
	if tHR >= tMV2 {
		t.Errorf("32MB/32 ranks: HR %v should beat MV2 %v", tHR, tMV2)
	}
}

func TestMV2BeatsOpenMPIAtScale(t *testing.T) {
	const ranks = 32
	const elems = 8 << 20 / 4
	_, tMV2 := runReduce(t, MV2Baseline, DefaultOptions(), ranks, elems)
	_, tOMPI := runReduce(t, OpenMPIBaseline, DefaultOptions(), ranks, elems)
	if tMV2 >= tOMPI {
		t.Errorf("32MB/32 ranks: MV2 %v should beat OpenMPI %v", tMV2, tOMPI)
	}
}

func TestAllreduceCorrect(t *testing.T) {
	const ranks = 6
	w := newWorld(t, 2, 4, ranks)
	c := w.WorldComm()
	red := NewReducer(c, Binomial, DefaultOptions())
	results := make([][]float32, ranks)
	_, err := w.Run(func(r *mpi.Rank) {
		buf := gpu.NewDataBuffer(17)
		buf.Fill(float32(r.ID + 1))
		Allreduce(red, c, r, buf, 50, topology.ModeAuto)
		results[r.ID] = append([]float32(nil), buf.Data...)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := float32(ranks * (ranks + 1) / 2)
	for i, res := range results {
		for _, v := range res {
			if v != want {
				t.Fatalf("rank %d allreduce = %v, want %v", i, v, want)
			}
		}
	}
}

func TestRingAllreduceCorrect(t *testing.T) {
	for _, ranks := range []int{2, 3, 4, 7, 8} {
		w := newWorld(t, 2, 4, ranks)
		c := w.WorldComm()
		results := make([][]float32, ranks)
		_, err := w.Run(func(r *mpi.Rank) {
			buf := gpu.NewDataBuffer(53)
			buf.Fill(float32(c.Rank(r) + 1))
			RingAllreduce(c, r, buf, 100, DefaultOptions())
			results[c.Rank(r)] = append([]float32(nil), buf.Data...)
		})
		if err != nil {
			t.Fatal(err)
		}
		want := float32(ranks * (ranks + 1) / 2)
		for i, res := range results {
			for j, v := range res {
				if v != want {
					t.Fatalf("ranks=%d rank %d elem %d = %v, want %v", ranks, i, j, v, want)
				}
			}
		}
	}
}

func TestIreduceNoProgressUntilWait(t *testing.T) {
	// The paper's Section 4.2 semantics: Ireduce does all its work in
	// Wait, so posting it and computing yields no overlap.
	const ranks = 4
	w := newWorld(t, 1, 4, ranks)
	c := w.WorldComm()
	red := NewReducer(c, Binomial, DefaultOptions())
	var waitCost sim.Duration
	_, err := w.Run(func(r *mpi.Rank) {
		buf := gpu.NewDataBuffer(1 << 20)
		buf.Fill(1)
		req := Ireduce(red, r, buf, 10)
		r.Sleep(50 * sim.Millisecond) // "overlapped" compute
		before := r.Now()
		r.Wait(req)
		if r.ID == 0 {
			waitCost = r.Now() - before
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if waitCost == 0 {
		t.Error("Ireduce Wait cost zero; it must carry the whole reduction (CPU-progressed)")
	}
}

func TestReducerNames(t *testing.T) {
	w := newWorld(t, 4, 4, 16)
	c := w.WorldComm()
	o := DefaultOptions()
	cases := map[Algorithm]string{
		Binomial:        "binomial",
		Chain:           "chain",
		ChainChain:      "CC-8",
		ChainBinomial:   "CB-8",
		Tuned:           "HR(tuned)",
		MV2Baseline:     "MV2",
		OpenMPIBaseline: "OpenMPI",
	}
	for alg, want := range cases {
		if got := NewReducer(c, alg, o).Name(); got != want {
			t.Errorf("%v reducer name = %q, want %q", alg, got, want)
		}
	}
}

func TestAlgorithmString(t *testing.T) {
	if Algorithm(99).String() != "unknown" {
		t.Error("unknown algorithm should stringify as unknown")
	}
	if Tuned.String() != "HR(tuned)" {
		t.Errorf("Tuned = %q", Tuned.String())
	}
}

func TestTunedSelection(t *testing.T) {
	w := newWorld(t, 48, 4, 160)
	c := w.WorldComm()
	tr := newTuned(c, DefaultOptions())
	if got := tr.Select(64 << 10).Name(); got != "binomial" {
		t.Errorf("64KB@160 -> %s, want binomial", got)
	}
	if got := tr.Select(64 << 20).Name(); got != "CB-8" {
		t.Errorf("64MB@160 -> %s, want CB-8", got)
	}
	w2 := newWorld(t, 8, 4, 32)
	tr2 := newTuned(w2.WorldComm(), DefaultOptions())
	if got := tr2.Select(64 << 20).Name(); got != "CC-8" {
		t.Errorf("64MB@32 -> %s, want CC-8", got)
	}
	w3 := newWorld(t, 2, 4, 8)
	tr3 := newTuned(w3.WorldComm(), DefaultOptions())
	if got := tr3.Select(64 << 20).Name(); got != "chain" {
		t.Errorf("64MB@8 -> %s, want chain", got)
	}
}

func TestDefaultChunks(t *testing.T) {
	if got := defaultChunks(256<<20, 0); got != 64 {
		t.Errorf("256MB -> %d chunks, want 64 (cap)", got)
	}
	if got := defaultChunks(1<<20, 0); got != 4 {
		t.Errorf("1MB -> %d chunks, want 4 (floor)", got)
	}
	if got := defaultChunks(8<<20, 17); got != 17 {
		t.Errorf("explicit chunks ignored: got %d", got)
	}
	if got := defaultChunks(100<<10, 0); got < 1 {
		t.Errorf("tiny buffer -> %d chunks", got)
	}
}

func TestCostModelEq1Eq2(t *testing.T) {
	p := CostParams{Alpha: 10e-6, Beta: 10e9}
	// Eq. 1: log2(8)=3 steps.
	if got, want := BinomialTime(p, 8, 8e6), 3*p.T(8e6); math.Abs(got-want) > 1e-12 {
		t.Errorf("BinomialTime = %v, want %v", got, want)
	}
	// Eq. 2: (n+P-2)*t(c).
	if got, want := ChainTime(p, 8, 4, 8e6), 10*p.T(2e6); math.Abs(got-want) > 1e-12 {
		t.Errorf("ChainTime = %v, want %v", got, want)
	}
	if BinomialTime(p, 1, 1e6) != 0 || ChainTime(p, 1, 4, 1e6) != 0 {
		t.Error("single-process reductions are free")
	}
}

func TestCostModelCrossovers(t *testing.T) {
	p := CostParams{Alpha: 10e-6, Beta: 10e9}
	big := 64e6
	small := 4e3
	// Large buffer, small P: chain wins (paper's first observation).
	n := BestChunks(p, 8, big)
	if ChainTime(p, 8, n, big) >= BinomialTime(p, 8, big) {
		t.Error("Eq2 should beat Eq1 for large b, small P")
	}
	// Small buffer, large P: binomial wins (second observation).
	if BinomialTime(p, 128, small) >= ChainTime(p, 128, 4, small) {
		t.Error("Eq1 should beat Eq2 for small b, large P")
	}
}

func TestCostModelHierarchicalBeatsBothAtScale(t *testing.T) {
	// With the paper's practical pipeline depth (n=8, fixed), the
	// two-level chain-binomial design beats both flat algorithms at
	// 160 processes / 256 MB.
	p := CostParams{Alpha: 10e-6, Beta: 10e9}
	const procs, chunks = 160, 8
	b := 256e6
	flatChain := ChainTime(p, procs, chunks, b)
	flatBin := BinomialTime(p, procs, b)
	hier := HierarchicalTime(p, procs, 8, chunks, b, false)
	if hier >= flatChain || hier >= flatBin {
		t.Errorf("hierarchical (%v) should beat flat chain (%v) and flat binomial (%v) at 160 procs / 256MB",
			hier, flatChain, flatBin)
	}
}

func TestCrossoverProcs(t *testing.T) {
	p := CostParams{Alpha: 10e-6, Beta: 10e9}
	x := CrossoverProcs(p, 8, 4e6, 256)
	if x <= 8 || x > 256 {
		t.Errorf("crossover P = %d; expected a moderate chain-friendly range", x)
	}
	// Larger buffers (smaller latency fraction) keep the chain
	// competitive to larger P.
	x2 := CrossoverProcs(p, 8, 256e6, 256)
	if x2 < x {
		t.Errorf("crossover should not shrink with buffer size: %d -> %d", x, x2)
	}
	// Tiny buffers are latency-bound: the chain never wins.
	if x0 := CrossoverProcs(p, 8, 64, 256); x0 != 2 {
		t.Errorf("64-byte crossover = %d, want 2 (chain never wins)", x0)
	}
}

func TestBestChunksReasonable(t *testing.T) {
	p := CostParams{Alpha: 10e-6, Beta: 10e9}
	n := BestChunks(p, 8, 256e6)
	if n < 2 {
		t.Errorf("BestChunks for 256MB = %d; pipelining should help", n)
	}
	n1 := BestChunks(p, 8, 1e3)
	if n1 != 1 {
		t.Errorf("BestChunks for 1KB = %d, want 1 (latency-bound)", n1)
	}
}

func TestReduceDeterministicTiming(t *testing.T) {
	_, t1 := runReduce(t, ChainBinomial, DefaultOptions(), 16, 1<<18)
	_, t2 := runReduce(t, ChainBinomial, DefaultOptions(), 16, 1<<18)
	if t1 != t2 {
		t.Errorf("identical runs produced different times: %v vs %v", t1, t2)
	}
}

func TestPayloadFreeMatchesPayloadTiming(t *testing.T) {
	// Timing must not depend on whether buffers carry real payloads.
	const ranks, elems = 8, 1 << 18
	_, withData := runReduce(t, ChainBinomial, DefaultOptions(), ranks, elems)

	w := newWorld(t, 2, 4, ranks)
	c := w.WorldComm()
	red := NewReducer(c, ChainBinomial, DefaultOptions())
	noData, err := w.Run(func(r *mpi.Rank) {
		buf := gpu.NewBuffer(int64(elems) * 4)
		red.Reduce(r, buf, 10)
	})
	if err != nil {
		t.Fatal(err)
	}
	if withData != noData {
		t.Errorf("payload changed timing: %v vs %v", withData, noData)
	}
}

func TestRabenseifnerReduceCorrect(t *testing.T) {
	for _, ranks := range []int{2, 4, 8, 16} {
		for _, elems := range []int{7, 16, 61, 256} { // uneven and even splits
			w := newWorld(t, (ranks+3)/4, 4, ranks)
			c := w.WorldComm()
			var got []float32
			_, err := w.Run(func(r *mpi.Rank) {
				buf := gpu.NewDataBuffer(elems)
				buf.Fill(float32(c.Rank(r) + 1))
				ReduceScatterGather(c, r, buf, 40, DefaultOptions())
				if c.Rank(r) == 0 {
					got = append([]float32(nil), buf.Data...)
				}
			})
			if err != nil {
				t.Fatalf("ranks=%d elems=%d: %v", ranks, elems, err)
			}
			want := float32(ranks * (ranks + 1) / 2)
			for i, v := range got {
				if v != want {
					t.Fatalf("ranks=%d elems=%d elem %d = %v, want %v", ranks, elems, i, v, want)
				}
			}
		}
	}
}

func TestRabenseifnerNonPowerOfTwoFallsBack(t *testing.T) {
	const ranks = 6
	w := newWorld(t, 2, 4, ranks)
	c := w.WorldComm()
	var got []float32
	_, err := w.Run(func(r *mpi.Rank) {
		buf := gpu.NewDataBuffer(19)
		buf.Fill(float32(c.Rank(r) + 1))
		ReduceScatterGather(c, r, buf, 40, DefaultOptions())
		if c.Rank(r) == 0 {
			got = append([]float32(nil), buf.Data...)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	expectSum(t, got, ranks)
}

func TestRabenseifnerBandwidthAdvantage(t *testing.T) {
	// 2b(P-1)/P traffic per rank should beat the binomial tree's
	// b·log2(P) for large buffers.
	const ranks, elems = 16, 32 << 20 / 4
	w := newWorld(t, 4, 4, ranks)
	c := w.WorldComm()
	rsg, err := w.Run(func(r *mpi.Rank) {
		buf := gpu.NewBuffer(elems * 4)
		ReduceScatterGather(c, r, buf, 40, DefaultOptions())
	})
	if err != nil {
		t.Fatal(err)
	}
	_, bin := runReduce(t, Binomial, DefaultOptions(), ranks, elems)
	if rsg >= bin {
		t.Errorf("32MB/16 ranks: Rabenseifner (%v) should beat binomial (%v)", rsg, bin)
	}
}

func TestBcastScatterAllgatherCorrect(t *testing.T) {
	for _, ranks := range []int{2, 3, 4, 7, 8, 16, 24, 32} {
		for _, root := range []int{0, ranks - 1} {
			for _, elems := range []int{5, 64, 257} {
				w := newWorld(t, (ranks+3)/4, 4, ranks)
				c := w.WorldComm()
				ok := true
				_, err := w.Run(func(r *mpi.Rank) {
					buf := gpu.NewDataBuffer(elems)
					if c.Rank(r) == root {
						for i := range buf.Data {
							buf.Data[i] = float32(i + 1)
						}
					}
					BcastScatterAllgather(c, r, root, buf, 300, topology.ModeAuto)
					for i, v := range buf.Data {
						if v != float32(i+1) {
							ok = false
						}
					}
				})
				if err != nil {
					t.Fatalf("ranks=%d root=%d elems=%d: %v", ranks, root, elems, err)
				}
				if !ok {
					t.Fatalf("ranks=%d root=%d elems=%d: wrong payload delivered", ranks, root, elems)
				}
			}
		}
	}
}

func TestBcastScatterAllgatherBeatsBinomialForLarge(t *testing.T) {
	// van de Geijn's bandwidth argument: ~2b vs b·log2(P) for 32 ranks
	// at 64 MB.
	const ranks = 32
	const bytes = 64 << 20
	w := newWorld(t, 8, 4, ranks)
	c := w.WorldComm()
	vdg, err := w.Run(func(r *mpi.Rank) {
		buf := gpu.NewBuffer(bytes)
		BcastScatterAllgather(c, r, 0, buf, 300, topology.ModeAuto)
	})
	if err != nil {
		t.Fatal(err)
	}
	w2 := newWorld(t, 8, 4, ranks)
	c2 := w2.WorldComm()
	bin, err := w2.Run(func(r *mpi.Rank) {
		buf := gpu.NewBuffer(bytes)
		r.Bcast(c2, 0, buf, topology.ModeAuto)
	})
	if err != nil {
		t.Fatal(err)
	}
	if vdg >= bin {
		t.Errorf("64MB/32 ranks: scatter-allgather bcast (%v) should beat binomial (%v)", vdg, bin)
	}
}
