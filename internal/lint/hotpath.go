package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// The hotpath pass enforces the PR-2 zero-allocation contract: the
// steady-state training iteration must not allocate. Since PR 9 the
// contract is interprocedural — the pass checks every function holding
// a hotpath obligation, whether annotated //scaffe:hotpath directly or
// reached from an annotated root through the call graph (the
// diagnostic then names the chain). Flagged:
//
//   - slice/map composite literals and &T{} pointer literals,
//   - make/new/append (append may grow; pre-size in setup code),
//   - fmt.* calls (format machinery allocates),
//   - function literals (closure environments allocate when captured),
//   - go statements (new goroutine stacks),
//   - string concatenation with +,
//   - implicit interface boxing of non-pointer arguments.
//
// Code inside panic(...) arguments is exempt: a panicking path has
// already left the steady state. Lines under a //scaffe:coldpath
// call-site directive are exempt as deliberate slow-path departures.

func runHotpath(prog *Program, pkg *Pkg, report func(pos token.Pos, msg string)) {
	for _, n := range prog.Graph.NodesOf(pkg) {
		chain, ok := prog.Hot[n]
		if !ok {
			continue
		}
		checkHotBody(pkg, n, chainSuffix("hotpath", chain, n.Hot), coldGuard(pkg, n, report))
	}
}

// coldGuard wraps report to drop diagnostics on lines covered by a
// call-site //scaffe:coldpath directive in n's file.
func coldGuard(pkg *Pkg, n *FuncNode, report func(pos token.Pos, msg string)) func(token.Pos, string) {
	cold := coldCallLines(pkg, n)
	if cold == nil {
		return report
	}
	return func(pos token.Pos, msg string) {
		if cold[pkg.Fset.Position(pos).Line] {
			return
		}
		report(pos, msg)
	}
}

func checkHotBody(pkg *Pkg, n *FuncNode, suffix string, report0 func(pos token.Pos, msg string)) {
	report := func(pos token.Pos, msg string) { report0(pos, msg+suffix) }
	inspectBody(n, func(x ast.Node) {
		switch node := x.(type) {
		case *ast.CompositeLit:
			switch t := pkg.Info.TypeOf(node); t.Underlying().(type) {
			case *types.Slice:
				report(node.Pos(), "slice literal allocates in a //scaffe:hotpath function; hoist to setup")
			case *types.Map:
				report(node.Pos(), "map literal allocates in a //scaffe:hotpath function; hoist to setup")
			}

		case *ast.UnaryExpr:
			if node.Op == token.AND {
				if _, ok := ast.Unparen(node.X).(*ast.CompositeLit); ok {
					report(node.Pos(), "&T{} escapes to the heap in a //scaffe:hotpath function; reuse a preallocated value")
				}
			}

		case *ast.BinaryExpr:
			if node.Op == token.ADD && isStringType(pkg.Info.TypeOf(node)) {
				report(node.Pos(), "string concatenation allocates in a //scaffe:hotpath function")
			}

		case *ast.FuncLit:
			// The literal's own body is its own graph node, checked
			// with the propagated chain; here only the closure value
			// itself is the allocation.
			report(node.Pos(), "function literal in a //scaffe:hotpath function; captured variables allocate a closure")

		case *ast.GoStmt:
			report(node.Pos(), "go statement in a //scaffe:hotpath function; spawn workers during setup, not per iteration")

		case *ast.CallExpr:
			checkHotCall(pkg, node, report)
		}
	})
}

// checkHotCall flags allocating calls. Panic arguments never reach
// here: inspectBody skips them.
func checkHotCall(pkg *Pkg, call *ast.CallExpr, report func(pos token.Pos, msg string)) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
			switch obj.Name() {
			case "append":
				report(call.Pos(), "append may grow its backing array in a //scaffe:hotpath function; pre-size in setup")
			case "make", "new":
				report(call.Pos(), obj.Name()+" allocates in a //scaffe:hotpath function; hoist to setup")
			}
			return
		}
	}
	fn := calleeFunc(pkg, call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		report(call.Pos(), fmt.Sprintf("fmt.%s allocates in a //scaffe:hotpath function; format outside the iteration", fn.Name()))
		return
	}
	checkBoxing(pkg, call, fn, report)
}

// checkBoxing flags arguments whose concrete non-pointer value is
// passed where the callee expects an interface: the conversion boxes
// the value on the heap.
func checkBoxing(pkg *Pkg, call *ast.CallExpr, fn *types.Func, report func(pos token.Pos, msg string)) {
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			st, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = st.Elem()
		} else if i < params.Len() {
			pt = params.At(i).Type()
		} else {
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := pkg.Info.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue // interface-to-interface: no new box
		}
		switch at.Underlying().(type) {
		case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
			continue // pointer-shaped: boxing is allocation-free
		case *types.Basic:
			if at.Underlying().(*types.Basic).Kind() == types.UntypedNil {
				continue
			}
		}
		report(arg.Pos(), fmt.Sprintf("passing %s as interface %s boxes it on the heap in a //scaffe:hotpath function", at, pt))
	}
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
