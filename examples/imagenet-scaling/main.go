// ImageNet-scale strong scaling: sweeps GoogLeNet training from 16 to
// 160 GPUs, comparing the two storage backends of Figure 8 — LMDB
// (S-Caffe-L), which collapses past 64 parallel readers, and
// file-per-image reading on the parallel filesystem (S-Caffe), which
// keeps scaling.
package main

import (
	"fmt"
	"log"

	"scaffe"
)

func main() {
	spec := scaffe.MustModel("googlenet")
	fmt.Println("GoogLeNet strong scaling on the simulated Cluster-A (12 nodes x 16 K-80s)")
	fmt.Printf("%6s %8s %18s %18s %14s\n", "GPUs", "batch", "S-Caffe-L (LMDB)", "S-Caffe (PFS)", "speedup vs 32")

	var sps32 float64
	for _, gpus := range []int{16, 32, 64, 128, 160} {
		batch := 8 * gpus
		run := func(src scaffe.SourceKind) *scaffe.Result {
			res, err := scaffe.Train(scaffe.Config{
				Spec: spec, GPUs: gpus, Nodes: 12, GPUsPerNode: 16,
				GlobalBatch: batch, Iterations: 10,
				Design: scaffe.SCOBR, Reduce: scaffe.ReduceHR,
				Source: src, Seed: 1,
			})
			if err != nil {
				log.Fatal(err)
			}
			return res
		}
		lmdb := run(scaffe.LMDB)
		pfs := run(scaffe.ImageData)
		if gpus == 32 {
			sps32 = pfs.SamplesPerSec
		}
		speedup := "—"
		if sps32 > 0 {
			speedup = fmt.Sprintf("%.2fx", pfs.SamplesPerSec/sps32)
		}
		fmt.Printf("%6d %8d %18v %18v %14s\n",
			gpus, batch, lmdb.TimePerIter(), pfs.TimePerIter(), speedup)
	}
	fmt.Println("\nPast 64 GPUs the LMDB reader lock dominates while the PFS path keeps")
	fmt.Println("scaling — the reason S-Caffe's parallel readers use the ImageDataLayer")
	fmt.Println("on Lustre for its 160-GPU runs (paper Section 6.3, Figure 8).")
}
