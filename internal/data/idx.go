package data

import (
	"encoding/binary"
	"fmt"
	"os"

	"scaffe/internal/layers"
)

// IDX support: the MNIST distribution format (big-endian magic,
// dimension sizes, raw bytes). LoadIDX reads standard
// train-images-idx3-ubyte / train-labels-idx1-ubyte pairs so the
// real-compute path can train on the actual MNIST files when they are
// present; WriteIDX produces the same format (used by tests and by
// tooling that wants to export synthetic data for other frameworks).

const (
	idxMagicU8Dim1 = 0x00000801 // unsigned byte, 1 dimension (labels)
	idxMagicU8Dim3 = 0x00000803 // unsigned byte, 3 dimensions (images)
)

// IDXDataset is an in-memory dataset loaded from IDX image/label
// files. Pixels normalize to [0, 1].
type IDXDataset struct {
	name    string
	shape   layers.Shape
	classes int
	images  [][]float32
	labels  []int
}

// LoadIDX reads an images file and a labels file in IDX format.
func LoadIDX(imagesPath, labelsPath string) (*IDXDataset, error) {
	img, err := os.ReadFile(imagesPath)
	if err != nil {
		return nil, fmt.Errorf("data: idx: %w", err)
	}
	lbl, err := os.ReadFile(labelsPath)
	if err != nil {
		return nil, fmt.Errorf("data: idx: %w", err)
	}
	if len(img) < 16 || binary.BigEndian.Uint32(img) != idxMagicU8Dim3 {
		return nil, fmt.Errorf("data: %s is not an idx3-ubyte image file", imagesPath)
	}
	if len(lbl) < 8 || binary.BigEndian.Uint32(lbl) != idxMagicU8Dim1 {
		return nil, fmt.Errorf("data: %s is not an idx1-ubyte label file", labelsPath)
	}
	n := int(binary.BigEndian.Uint32(img[4:]))
	h := int(binary.BigEndian.Uint32(img[8:]))
	w := int(binary.BigEndian.Uint32(img[12:]))
	if int(binary.BigEndian.Uint32(lbl[4:])) != n {
		return nil, fmt.Errorf("data: idx image/label counts differ (%d vs %d)", n, binary.BigEndian.Uint32(lbl[4:]))
	}
	if len(img) != 16+n*h*w || len(lbl) != 8+n {
		return nil, fmt.Errorf("data: idx payload sizes inconsistent with header")
	}
	d := &IDXDataset{
		name:  "idx:" + imagesPath,
		shape: layers.Shape{C: 1, H: h, W: w},
	}
	px := img[16:]
	for i := 0; i < n; i++ {
		im := make([]float32, h*w)
		for j := range im {
			im[j] = float32(px[i*h*w+j]) / 255
		}
		d.images = append(d.images, im)
		label := int(lbl[8+i])
		d.labels = append(d.labels, label)
		if label+1 > d.classes {
			d.classes = label + 1
		}
	}
	return d, nil
}

// WriteIDX exports the first n samples of ds (single-channel datasets
// only) as an IDX image/label file pair.
func WriteIDX(imagesPath, labelsPath string, ds Dataset, n int) error {
	sh := ds.Shape()
	if sh.C != 1 {
		return fmt.Errorf("data: idx export needs single-channel data, got %d channels", sh.C)
	}
	if n > ds.Len() {
		n = ds.Len()
	}
	img := make([]byte, 16, 16+n*sh.H*sh.W)
	binary.BigEndian.PutUint32(img[0:], idxMagicU8Dim3)
	binary.BigEndian.PutUint32(img[4:], uint32(n))
	binary.BigEndian.PutUint32(img[8:], uint32(sh.H))
	binary.BigEndian.PutUint32(img[12:], uint32(sh.W))
	lbl := make([]byte, 8, 8+n)
	binary.BigEndian.PutUint32(lbl[0:], idxMagicU8Dim1)
	binary.BigEndian.PutUint32(lbl[4:], uint32(n))
	for i := 0; i < n; i++ {
		s := ds.At(i)
		for _, v := range s.Image {
			p := v * 255
			if p < 0 {
				p = 0
			}
			if p > 255 {
				p = 255
			}
			img = append(img, byte(p))
		}
		lbl = append(lbl, byte(s.Label))
	}
	if err := os.WriteFile(imagesPath, img, 0o644); err != nil {
		return fmt.Errorf("data: idx export: %w", err)
	}
	if err := os.WriteFile(labelsPath, lbl, 0o644); err != nil {
		return fmt.Errorf("data: idx export: %w", err)
	}
	return nil
}

// Name implements Dataset.
func (d *IDXDataset) Name() string { return d.name }

// Len implements Dataset.
func (d *IDXDataset) Len() int { return len(d.images) }

// Shape implements Dataset.
func (d *IDXDataset) Shape() layers.Shape { return d.shape }

// Classes implements Dataset.
func (d *IDXDataset) Classes() int { return d.classes }

// At implements Dataset.
func (d *IDXDataset) At(i int) Sample {
	return Sample{Image: d.images[i], Label: d.labels[i]}
}

// ReadInto implements Filler (the images are already resident, so this
// is a straight copy).
func (d *IDXDataset) ReadInto(i int, img []float32) int {
	copy(img, d.images[i])
	return d.labels[i]
}
