// Package scaffe is a faithful reproduction of S-Caffe ("S-Caffe:
// Co-designing MPI Runtimes and Caffe for Scalable Deep Learning on
// Modern GPU Clusters", PPoPP 2017) as a pure-Go system: a
// deterministic discrete-event GPU-cluster simulator, a CUDA-aware MPI
// runtime subset, the paper's hierarchical reduction designs, a
// Caffe-style deep-learning framework with real and cost-model
// execution, and the SC-B / SC-OB / SC-OBR co-designed training
// pipelines plus the comparison systems of the paper's evaluation.
//
// The package is a facade over the internal packages: it exposes
// training runs (Train), collective micro-benchmarks (ReduceBench,
// mirroring the OSU micro-benchmark methodology of Section 6.5), model
// specs, and the cluster presets of the paper's two testbeds.
//
// Quick start:
//
//	cfg := scaffe.Config{
//		Spec:        scaffe.MustModel("googlenet"),
//		GPUs:        32,
//		GlobalBatch: 256,
//		Iterations:  10,
//		Design:      scaffe.SCOBR,
//		Reduce:      scaffe.ReduceHR,
//		Source:      scaffe.ImageData,
//	}
//	res, err := scaffe.Train(cfg)
package scaffe

import (
	"fmt"

	"scaffe/internal/coll"
	"scaffe/internal/core"
	"scaffe/internal/data"
	"scaffe/internal/fault"
	"scaffe/internal/gpu"
	"scaffe/internal/layers"
	"scaffe/internal/models"
	"scaffe/internal/mpi"
	"scaffe/internal/proto"
	"scaffe/internal/sim"
	"scaffe/internal/topology"
	"scaffe/internal/trace"
)

// Config describes one training run; see the field documentation in
// the core package.
type Config = core.Config

// Result reports a training run's timing, throughput, phase breakdown,
// and (in real-compute mode) losses and final parameters.
type Result = core.Result

// Phases is the per-phase blocked-time breakdown at the root solver.
type Phases = core.Phases

// Design selects the training pipeline.
type Design = core.Design

// The training pipelines of the paper's evaluation.
const (
	// SCB is the basic CUDA-aware MPI design (Section 4.1).
	SCB = core.SCB
	// SCOB overlaps data propagation with the forward pass (4.2).
	SCOB = core.SCOB
	// SCOBR adds helper-thread overlapped gradient aggregation (4.3).
	SCOBR = core.SCOBR
	// SCOBRF is SC-OBR with FireCaffe-style bucketed aggregation
	// (Config.BucketBytes, default 4 MiB).
	SCOBRF = core.SCOBRF
	// Caffe is the single-node multi-threaded baseline.
	Caffe = core.CaffeMT
	// CNTK is the host-staged MPI allreduce baseline.
	CNTK = core.CNTKLike
	// InspurPS is the parameter-server baseline (2–16 GPUs only).
	InspurPS = core.ParamServer
	// MPICaffe is the model-parallel baseline of Table 1: layers
	// partitioned across ranks, activations pipelined rank-to-rank.
	MPICaffe = core.ModelParallel
)

// SourceKind selects the training-data backend.
type SourceKind = core.SourceKind

// The storage backends of Figure 8.
const (
	// InMemory serves data at zero I/O cost.
	InMemory = core.MemorySource
	// LMDB is the shared-environment database (the "S-Caffe-L"
	// series; collapses past 64 readers).
	LMDB = core.LMDBSource
	// ImageData reads image files from the parallel filesystem (the
	// "S-Caffe" series; scales to 160 GPUs).
	ImageData = core.ImageDataSource
)

// ReduceAlgorithm selects the gradient-aggregation collective.
type ReduceAlgorithm = coll.Algorithm

// The reduction designs of Section 5 and Figures 11–12.
const (
	// ReduceBinomial is the flat binomial tree (Eq. 1).
	ReduceBinomial = coll.Binomial
	// ReduceChain is the flat chunked-chain pipeline (Eq. 2).
	ReduceChain = coll.Chain
	// ReduceCC is the two-level chain-of-chain design.
	ReduceCC = coll.ChainChain
	// ReduceCB is the two-level chain-binomial design.
	ReduceCB = coll.ChainBinomial
	// ReduceCCB is the three-level chain-chain-binomial design the
	// paper proposes as future work for very large scales.
	ReduceCCB = coll.ChainChainBinomial
	// ReduceHR is the tuned hierarchical selector (the paper's HR).
	ReduceHR = coll.Tuned
	// ReduceMV2 is the MVAPICH2-era baseline.
	ReduceMV2 = coll.MV2Baseline
	// ReduceOpenMPI is the OpenMPI-era baseline.
	ReduceOpenMPI = coll.OpenMPIBaseline
	// ReduceRabenseifner is the classic reduce-scatter + gather
	// algorithm (bandwidth-optimal), for algorithm-breadth studies.
	ReduceRabenseifner = coll.Rabenseifner
)

// ReduceOptions configures chain size, pipeline depth, arithmetic
// placement, and transfer mode for the reduction algorithms.
type ReduceOptions = coll.Options

// Spec is a model's cost geometry (per-layer parameters and FLOPs).
type Spec = models.Spec

// Dataset is a random-access training dataset.
type Dataset = data.Dataset

// Trace records per-rank phase timelines; attach one to Config.Trace
// and export it with WriteChromeTrace or Gantt after the run.
type Trace = trace.Recorder

// Sentinel errors a caller (or exit code) can branch on.
var (
	// ErrConfig wraps every configuration-validation failure.
	ErrConfig = core.ErrConfig
	// ErrUnrecovered reports a faulted run that lost every rank.
	ErrUnrecovered = core.ErrUnrecovered
)

// FaultSchedule scripts deterministic fault injection; attach one to
// Config.Faults to arm the fault-tolerance plane.
type FaultSchedule = fault.Schedule

// FaultEvent is one scripted fault.
type FaultEvent = fault.Event

// FaultReport summarizes a faulted run (Result.Fault).
type FaultReport = fault.Report

// FaultRecovery describes one detected failure and its recovery.
type FaultRecovery = fault.Recovery

// JoinRecord describes one rank admission through the elastic grow
// path (Result.Fault.Joins).
type JoinRecord = fault.JoinRecord

// FaultEvict is the recovery kind of a proactive membership eviction
// (scripted "evict" events and the straggler policy), as opposed to a
// detected crash or hang.
const FaultEvict = fault.Evict

// IntegrityMode arms the silent-data-corruption plane (Config.Integrity):
// checksummed collective transfers plus the root's numeric-health
// watchdog with micro-rollback.
type IntegrityMode = core.IntegrityMode

// The integrity plane's modes.
const (
	// IntegrityOff runs the exact seed code paths.
	IntegrityOff = core.IntegrityOff
	// IntegrityDetect verifies and counts corruption without altering
	// the run.
	IntegrityDetect = core.IntegrityDetect
	// IntegrityRecover retransmits corrupted chunks and micro-rolls-
	// back watchdog trips.
	IntegrityRecover = core.IntegrityRecover
)

// IntegrityReport summarizes the integrity plane's run
// (Result.Integrity).
type IntegrityReport = core.IntegrityReport

// LoadFaultSchedule reads a fault-schedule file (one event per line,
// e.g. "100ms crash rank=3"; see configs/faults_demo.txt).
func LoadFaultSchedule(path string) (FaultSchedule, error) { return fault.LoadSchedule(path) }

// ParseFaultSchedule parses the textual schedule format.
func ParseFaultSchedule(text string) (FaultSchedule, error) { return fault.ParseSchedule(text) }

// ParseIntegrityMode parses the CLI spelling of an integrity mode:
// "off" (or empty), "detect", or "recover".
func ParseIntegrityMode(s string) (IntegrityMode, error) { return core.ParseIntegrityMode(s) }

// NewTrace returns an empty timeline recorder.
func NewTrace() *Trace { return trace.New() }

// Train runs one training configuration to completion in virtual time.
func Train(cfg Config) (*Result, error) { return core.Run(cfg) }

// Model returns the spec for one of the paper's networks: "alexnet",
// "caffenet", "googlenet", "cifar10-quick", "lenet", or "tiny".
func Model(name string) (*Spec, error) { return models.ByName(name) }

// MustModel is Model, panicking on unknown names (for constant
// configuration).
func MustModel(name string) *Spec {
	s, err := models.ByName(name)
	if err != nil {
		panic(err)
	}
	return s
}

// RealNetBuilder returns a constructor for the real-compute networks
// ("lenet", "cifar10-quick", "tiny"), or an error for timing-only
// models.
func RealNetBuilder(name string) (func(batch int, seed int64) *layers.Net, error) {
	switch name {
	case "lenet":
		return models.BuildLeNet, nil
	case "cifar10-quick", "cifar10":
		return models.BuildCIFAR10Quick, nil
	case "tiny":
		return models.BuildTinyNet, nil
	}
	return nil, fmt.Errorf("scaffe: no real-compute implementation for %q (timing-only model)", name)
}

// LoadSolver reads a Caffe-style solver prototxt (see configs/ for
// samples) into a training Config.
func LoadSolver(path string) (Config, error) { return proto.LoadSolver(path) }

// SyntheticDataset returns the deterministic learnable dataset
// matching a real-compute model's input geometry.
func SyntheticDataset(model string, n int, seed int64) (Dataset, error) {
	switch model {
	case "lenet":
		return data.SyntheticMNIST(n, seed), nil
	case "cifar10-quick", "cifar10":
		return data.SyntheticCIFAR10(n, seed), nil
	case "tiny":
		return data.NewSynthetic("tiny", layers.Shape{C: 3, H: 8, W: 8}, 4, n, seed), nil
	case "alexnet", "caffenet", "googlenet":
		return data.SyntheticImageNet(n, seed), nil
	}
	return nil, fmt.Errorf("scaffe: no synthetic dataset for %q", model)
}

// ReduceBenchConfig describes one OSU-style reduce micro-benchmark
// point: a single MPI_Reduce of Bytes over Ranks GPUs.
type ReduceBenchConfig struct {
	// Ranks is the number of GPU processes.
	Ranks int
	// Nodes and GPUsPerNode shape the cluster (defaults: Cluster-A
	// geometry, 16 GPUs per node).
	Nodes, GPUsPerNode int
	// Bytes is the message size.
	Bytes int64
	// Algorithm and Options select the reduction design.
	Algorithm ReduceAlgorithm
	// Options configures chain size and pipeline depth; the zero value
	// selects the defaults of Section 5 (chain size 8, GPU kernels,
	// auto transfer mode).
	Options ReduceOptions
	// Trials averages over this many timed reductions (default 3),
	// after one untimed warm-up.
	Trials int
}

// reduceBenchTag tags ReduceBench's synthetic reductions; a named
// constant so benchmark traffic can never collide with a training tag.
const reduceBenchTag = 10

// ReduceBench measures the latency of one reduction configuration: the
// mean, over trials, of the span from the synchronized start to the
// last rank's completion. Runs are deterministic.
func ReduceBench(cfg ReduceBenchConfig) (sim.Duration, error) {
	if cfg.Ranks < 1 {
		return 0, fmt.Errorf("scaffe: reduce bench needs at least 1 rank")
	}
	if cfg.GPUsPerNode == 0 {
		cfg.GPUsPerNode = 16
	}
	if cfg.Nodes == 0 {
		cfg.Nodes = (cfg.Ranks + cfg.GPUsPerNode - 1) / cfg.GPUsPerNode
	}
	if cfg.Trials == 0 {
		cfg.Trials = 3
	}
	if cfg.Options == (ReduceOptions{}) {
		cfg.Options = coll.DefaultOptions()
	}
	k := sim.New()
	cluster := topology.New(k, "bench", cfg.Nodes, cfg.GPUsPerNode, topology.DefaultParams())
	world := mpi.NewWorld(cluster, cfg.Ranks)
	comm := world.WorldComm()
	red := coll.NewReducer(comm, cfg.Algorithm, cfg.Options)

	var total sim.Duration
	var enterBarrier, lastDone sim.Time
	_, err := world.Run(func(r *mpi.Rank) {
		buf := gpu.NewBuffer(cfg.Bytes)
		for trial := 0; trial < cfg.Trials+1; trial++ {
			comm.Barrier(r)
			if r.ID == 0 {
				enterBarrier = r.Now()
			}
			red.Reduce(r, buf, reduceBenchTag)
			if r.Now() > lastDone {
				lastDone = r.Now()
			}
			comm.Barrier(r)
			if r.ID == 0 && trial > 0 { // skip the warm-up
				total += lastDone - enterBarrier
			}
		}
	})
	if err != nil {
		return 0, err
	}
	return total / sim.Duration(cfg.Trials), nil
}

// OverlapResult reports an Ibcast overlap measurement (the OSU
// non-blocking-collective methodology behind Section 4.2): how much of
// the broadcast latency disappears behind an equally long compute
// phase.
type OverlapResult struct {
	// BlockingTime is the plain Bcast latency.
	BlockingTime sim.Duration
	// ComputeTime is the injected compute phase length.
	ComputeTime sim.Duration
	// OverlappedTime is Ibcast + compute + Wait.
	OverlappedTime sim.Duration
	// Overlap is the fraction of communication hidden:
	// (Blocking + Compute − Overlapped) / Blocking, clamped to [0,1].
	Overlap float64
}

// IbcastOverlapBench measures how much of a broadcast the offloaded
// Ibcast engine hides behind compute at the worst-placed (deepest)
// rank.
func IbcastOverlapBench(ranks int, bytes int64) (*OverlapResult, error) {
	if ranks < 2 {
		return nil, fmt.Errorf("scaffe: overlap bench needs at least 2 ranks")
	}
	measure := func(overlap bool, compute sim.Duration) (sim.Duration, error) {
		k := sim.New()
		cluster := topology.New(k, "ov", (ranks+15)/16, 16, topology.DefaultParams())
		world := mpi.NewWorld(cluster, ranks)
		comm := world.WorldComm()
		last := ranks - 1
		var span sim.Duration
		_, err := world.Run(func(r *mpi.Rank) {
			buf := gpu.NewBuffer(bytes)
			comm.Barrier(r)
			start := r.Now()
			req := r.Ibcast(comm, 0, buf, topology.ModeAuto)
			if overlap && r.ID == last {
				r.Sleep(compute)
			}
			r.Wait(req)
			if r.ID == last {
				span = r.Now() - start
			}
			comm.Barrier(r)
		})
		return span, err
	}
	blocking, err := measure(false, 0)
	if err != nil {
		return nil, err
	}
	res := &OverlapResult{BlockingTime: blocking, ComputeTime: blocking}
	res.OverlappedTime, err = measure(true, blocking)
	if err != nil {
		return nil, err
	}
	ov := float64(res.BlockingTime+res.ComputeTime-res.OverlappedTime) / float64(res.BlockingTime)
	if ov < 0 {
		ov = 0
	}
	if ov > 1 {
		ov = 1
	}
	res.Overlap = ov
	return res, nil
}
