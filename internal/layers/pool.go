package layers

import (
	"math"
	"math/rand"

	"scaffe/internal/tensor"
)

// PoolMethod selects max or average pooling.
type PoolMethod int

const (
	// MaxPool takes the maximum of each window.
	MaxPool PoolMethod = iota
	// AvgPool takes the mean of each window (Caffe "AVE", used by the
	// CIFAR-10 quick solver and GoogLeNet).
	AvgPool
)

// Pool is a 2-D pooling layer. Like Caffe, the output size rounds up
// (ceil mode), so a 3/2 pool covers the whole input.
type Pool struct {
	base
	noParams
	Method         PoolMethod
	Kernel, Stride int
	Pad            int

	argmax []int32 // winner index per output element (max pooling)
	lastIn *tensor.Tensor
}

// NewMaxPool creates a max-pooling layer.
func NewMaxPool(name string, kernel, stride int) *Pool {
	return &Pool{base: base{name: name}, Method: MaxPool, Kernel: kernel, Stride: stride}
}

// NewAvgPool creates an average-pooling layer.
func NewAvgPool(name string, kernel, stride int) *Pool {
	return &Pool{base: base{name: name}, Method: AvgPool, Kernel: kernel, Stride: stride}
}

// Kind implements Layer.
func (p *Pool) Kind() string { return "Pooling" }

func (p *Pool) outHW(in Shape) (int, int) {
	oh := int(math.Ceil(float64(in.H+2*p.Pad-p.Kernel)/float64(p.Stride))) + 1
	ow := int(math.Ceil(float64(in.W+2*p.Pad-p.Kernel)/float64(p.Stride))) + 1
	if oh < 1 {
		oh = 1
	}
	if ow < 1 {
		ow = 1
	}
	return oh, ow
}

// OutShape implements Layer.
func (p *Pool) OutShape(in Shape) Shape {
	oh, ow := p.outHW(in)
	return Shape{C: in.C, H: oh, W: ow}
}

// FwdFLOPs implements Layer: one compare/add per window element.
func (p *Pool) FwdFLOPs(in Shape) float64 {
	out := p.OutShape(in)
	return float64(out.Elems() * p.Kernel * p.Kernel)
}

// BwdFLOPs implements Layer.
func (p *Pool) BwdFLOPs(in Shape) float64 { return p.FwdFLOPs(in) }

// Setup implements Layer.
func (p *Pool) Setup(in Shape, batch int, _ *rand.Rand) {
	p.setup(in, batch)
	out := p.OutShape(in)
	p.argmax = make([]int32, batch*out.Elems())
	p.allocBlobs(out)
}

// Forward implements Layer.
//
//scaffe:hotpath
func (p *Pool) Forward(in *tensor.Tensor) *tensor.Tensor {
	p.checkIn(in)
	p.lastIn = in
	out := p.OutShape(p.in)
	res := p.out
	inSz := p.in.Elems()
	outSz := out.Elems()
	for b := 0; b < p.batch; b++ {
		src := in.Data[b*inSz : (b+1)*inSz]
		dst := res.Data[b*outSz : (b+1)*outSz]
		am := p.argmax[b*outSz : (b+1)*outSz]
		for c := 0; c < p.in.C; c++ {
			chn := src[c*p.in.H*p.in.W:]
			o := c * out.H * out.W
			for oh := 0; oh < out.H; oh++ {
				for ow := 0; ow < out.W; ow++ {
					h0, w0 := oh*p.Stride-p.Pad, ow*p.Stride-p.Pad
					if p.Method == MaxPool {
						best := int32(-1)
						var bv float32
						for kh := 0; kh < p.Kernel; kh++ {
							ih := h0 + kh
							if ih < 0 || ih >= p.in.H {
								continue
							}
							for kw := 0; kw < p.Kernel; kw++ {
								iw := w0 + kw
								if iw < 0 || iw >= p.in.W {
									continue
								}
								v := chn[ih*p.in.W+iw]
								if best < 0 || v > bv {
									best, bv = int32(ih*p.in.W+iw), v
								}
							}
						}
						dst[o], am[o] = bv, best
					} else {
						var sum float32
						n := 0
						for kh := 0; kh < p.Kernel; kh++ {
							ih := h0 + kh
							if ih < 0 || ih >= p.in.H {
								continue
							}
							for kw := 0; kw < p.Kernel; kw++ {
								iw := w0 + kw
								if iw < 0 || iw >= p.in.W {
									continue
								}
								sum += chn[ih*p.in.W+iw]
								n++
							}
						}
						if n > 0 {
							dst[o] = sum / float32(n)
						} else {
							dst[o] = 0 // blob is reused: clear empty windows
						}
						am[o] = int32(n)
					}
					o++
				}
			}
		}
	}
	return res
}

// Backward implements Layer.
//
//scaffe:hotpath
func (p *Pool) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	out := p.OutShape(p.in)
	gradIn := p.gradIn
	gradIn.Zero() // windows overlap, gradients accumulate
	inSz := p.in.Elems()
	outSz := out.Elems()
	for b := 0; b < p.batch; b++ {
		g := gradOut.Data[b*outSz : (b+1)*outSz]
		gi := gradIn.Data[b*inSz : (b+1)*inSz]
		am := p.argmax[b*outSz : (b+1)*outSz]
		for c := 0; c < p.in.C; c++ {
			chGrad := gi[c*p.in.H*p.in.W:]
			o := c * out.H * out.W
			for oh := 0; oh < out.H; oh++ {
				for ow := 0; ow < out.W; ow++ {
					if p.Method == MaxPool {
						if am[o] >= 0 {
							chGrad[am[o]] += g[o]
						}
					} else if am[o] > 0 {
						share := g[o] / float32(am[o])
						h0, w0 := oh*p.Stride-p.Pad, ow*p.Stride-p.Pad
						for kh := 0; kh < p.Kernel; kh++ {
							ih := h0 + kh
							if ih < 0 || ih >= p.in.H {
								continue
							}
							for kw := 0; kw < p.Kernel; kw++ {
								iw := w0 + kw
								if iw < 0 || iw >= p.in.W {
									continue
								}
								chGrad[ih*p.in.W+iw] += share
							}
						}
					}
					o++
				}
			}
		}
	}
	return gradIn
}
