// Package sim implements a deterministic discrete-event simulation
// kernel. Simulated processes ("procs") are goroutines that run
// cooperatively: exactly one proc (or the kernel itself) executes at a
// time, and all blocking operations park the proc on the kernel's
// event queue. Events are ordered by (virtual time, sequence number),
// so a simulation with a fixed set of inputs is bit-for-bit
// reproducible across runs.
//
// The kernel carries virtual time only; wall-clock time spent in Go
// code inside a proc is invisible to the simulation. A proc advances
// virtual time explicitly with Sleep/WaitUntil or implicitly by
// waiting on Completions fired by scheduled events.
package sim

import (
	"fmt"
	"runtime/debug"
)

// Time is a point in virtual time, in nanoseconds since the start of
// the simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds. It is a distinct
// name for readability; arithmetic mixes freely with Time.
type Duration = Time

// Convenient virtual-time units.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds returns the time as a floating-point number of ms.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Microseconds returns the time as a floating-point number of µs.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Microseconds())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Kernel is a discrete-event simulation engine. The zero value is not
// usable; create one with New.
type Kernel struct {
	now      Time
	seq      uint64
	nowQ     nowRing
	cal      calendarQueue
	procs    []*Proc
	live     int // procs spawned but not yet finished
	maxTime  Time
	stopped  bool
	failure  error
	compPool []*Completion

	// home returns the baton to the Run goroutine when the event loop —
	// which migrates across proc goroutines (see loopFrom) — reaches a
	// terminal state on one of them.
	home chan struct{}

	// serialResume switches parking procs back to the classic
	// yield-to-resumer protocol: set while the parallel kernel's commit
	// loop (or a worker) drives procs with resume(), when a parking proc
	// must hand control back to its resumer instead of running the event
	// loop itself.
	serialResume bool

	par *parKernel // parallel-lookahead state; nil in sequential mode
}

// New returns a fresh kernel at virtual time zero.
func New() *Kernel {
	return &Kernel{maxTime: 1 << 62}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// SetDeadline makes Run fail if virtual time would pass t. Useful as a
// watchdog against runaway simulations.
func (k *Kernel) SetDeadline(t Time) { k.maxTime = t }

// schedule stamps e with its due time and sequence number and routes
// it to the same-instant ring or the calendar. Past times clamp to
// now, so the event runs at the current instant but strictly after
// everything already scheduled for it.
//
//scaffe:hotpath
func (k *Kernel) schedule(t Time, e event) {
	if t <= k.now {
		k.seq++
		e.at, e.seq = k.now, k.seq
		k.nowQ.push(e)
		return
	}
	k.seq++
	e.at, e.seq = t, k.seq
	k.cal.insert(e)
}

// At schedules fn to run in kernel context at virtual time t. If t is
// in the past it runs at the current time (but strictly after all
// previously scheduled events for that time).
func (k *Kernel) At(t Time, fn func()) {
	k.schedule(t, event{kind: evFunc, fn: fn})
}

// After schedules fn to run d nanoseconds of virtual time from now.
func (k *Kernel) After(d Duration, fn func()) { k.At(k.now+d, fn) }

// AtRun schedules r's RunEvent to execute in kernel context at
// virtual time t. It is the closure-free analogue of At for pooled
// event records owned by higher layers.
func (k *Kernel) AtRun(t Time, r Runnable) {
	k.schedule(t, event{kind: evRun, run: r})
}

// atResume schedules an unconditional resume of p at time t.
//
//scaffe:hotpath
func (k *Kernel) atResume(t Time, p *Proc) {
	k.schedule(t, event{kind: evResume, p: p})
}

// atResumeIf schedules a guarded resume of p at time t, delivered
// only if p is still parked on the wait armed with seq.
//
//scaffe:hotpath
func (k *Kernel) atResumeIf(t Time, p *Proc, seq uint64) {
	k.schedule(t, event{kind: evResumeIf, p: p, aux: seq})
}

// atFire schedules c to fire at time t, guarded by c's current
// generation: if c is recycled before t, the event dissolves.
//
//scaffe:hotpath
func (k *Kernel) atFire(t Time, c *Completion) {
	k.schedule(t, event{kind: evFire, c: c, aux: c.gen})
}

// popEvent removes the globally-minimum event under the two-tier pop
// rule: a calendar event due at or before now always precedes every
// ring event (it was scheduled strictly earlier — smaller seq); an
// empty ring lets the calendar minimum advance virtual time.
//
//scaffe:hotpath
func (k *Kernel) popEvent() event {
	if t, ok := k.cal.minTime(); ok && t <= k.now {
		return k.cal.pop()
	}
	if k.nowQ.len() > 0 {
		return k.nowQ.pop()
	}
	return k.cal.pop()
}

// pending returns the number of queued events.
func (k *Kernel) pending() int { return k.nowQ.len() + k.cal.count }

// loopState is loopFrom's verdict on where control went.
type loopState int

const (
	// loopHanded: the baton was handed to another proc via its wake
	// channel; the caller must block (or, for a finishing proc, exit).
	loopHanded loopState = iota
	// loopSelf: the next event resumes the calling proc itself; no
	// channel round-trip is needed — the caller just keeps running.
	loopSelf
	// loopTerminal: no events remain, Stop was called, the deadline
	// passed, or a failure was recorded. The caller must return the
	// baton to the Run goroutine (k.home) unless it is the Run
	// goroutine.
	loopTerminal
)

// loopFrom runs the event loop on the current goroutine until control
// is handed off or the simulation terminates. The loop migrates: when
// an event resumes a proc, the loop stops here and continues inside
// that proc's goroutine the next time it parks — a parking proc calls
// loopFrom itself instead of yielding to a central scheduler, halving
// the goroutine switches per segment. self is the calling proc (nil
// when called from Run or a finishing proc) and enables the zero-switch
// fast path when the next event resumes the caller.
//
// Exactly one goroutine executes loopFrom at any moment — control
// passes through an unbroken chain of channel operations — so kernel
// state needs no locking and event order is identical to the classic
// central loop.
func (k *Kernel) loopFrom(self *Proc) loopState {
	for {
		if k.stopped || k.failure != nil {
			return loopTerminal
		}
		if k.nowQ.len() == 0 && k.cal.count == 0 {
			return loopTerminal
		}
		ev := k.popEvent()
		if ev.at > k.maxTime {
			k.failure = fmt.Errorf("sim: deadline exceeded at %v (deadline %v)", ev.at, k.maxTime)
			return loopTerminal
		}
		k.now = ev.at
		switch ev.kind {
		case evResume:
			p := ev.p
			if p.finished {
				continue
			}
			if p == self {
				return loopSelf
			}
			if k.par != nil && k.par.batchable(ev) {
				k.par.runBatch(ev, self)
				continue
			}
			p.wake <- struct{}{}
			return loopHanded
		case evResumeIf:
			p := ev.p
			if p.finished || !p.waitArmed || p.waitSeq != ev.aux {
				continue // stale wake: the proc timed out or moved on
			}
			if p == self {
				return loopSelf
			}
			if k.par != nil && k.par.batchable(ev) {
				k.par.runBatch(ev, self)
				continue
			}
			p.wake <- struct{}{}
			return loopHanded
		case evFunc:
			ev.fn()
		case evFire:
			ev.c.FireIf(ev.aux)
		case evRun:
			ev.run.RunEvent(k)
		}
	}
}

// Run executes the event loop until no events remain, then verifies
// that every spawned proc has finished. It returns an error on
// deadlock (procs remain parked with no pending events) or if the
// deadline set by SetDeadline is exceeded.
func (k *Kernel) Run() error {
	if k.home == nil {
		k.home = make(chan struct{})
	}
	if k.loopFrom(nil) == loopHanded {
		// The loop migrated onto proc goroutines; whichever one reaches
		// a terminal state sends the baton home.
		<-k.home
	}
	if k.failure != nil {
		return k.failure
	}
	if k.live > 0 {
		var stuck []string
		for _, p := range k.procs {
			if !p.finished {
				stuck = append(stuck, p.name)
			}
		}
		return fmt.Errorf("sim: deadlock at %v: %d proc(s) parked: %v", k.now, k.live, stuck)
	}
	return nil
}

// Stop aborts the event loop after the current event completes.
// Remaining parked procs stay parked; callers that Stop mid-run should
// not reuse the kernel.
func (k *Kernel) Stop() { k.stopped = true }

// Spawn creates a new simulated process running fn and schedules it to
// start at the current virtual time. It may be called before Run or
// from within any proc or event callback.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		k:     k,
		name:  name,
		wake:  make(chan struct{}),
		yield: make(chan struct{}),
		group: -1,
	}
	k.procs = append(k.procs, p)
	k.live++
	go func() {
		defer func() {
			// A panicking proc fails the whole simulation rather than
			// the process: Run surfaces it as an error. The kill
			// sentinel is the exception — a killed proc is a normal
			// (if abrupt) exit.
			rec := recover()
			var fail error
			if rec != nil && !IsKilled(rec) {
				fail = fmt.Errorf("sim: proc %q panicked at %v: %v\n%s", p.name, k.now, rec, debug.Stack())
			}
			p.finished = true
			if s := p.stage; s != nil {
				// Finishing inside a batch's concurrent part: stage the
				// bookkeeping for the commit loop (which applies it in
				// exact global order) and hand the baton to the batch
				// driver.
				s.finishing = true
				s.failure = fail
				p.yield <- struct{}{}
				return
			}
			if fail != nil && k.failure == nil {
				k.failure = fail
			}
			k.live--
			if k.serialResume {
				p.yield <- struct{}{} // the commit loop's resume is waiting
				return
			}
			// The finishing proc owns the baton: keep driving the event
			// loop here, exactly as park does.
			if k.loopFrom(nil) == loopTerminal {
				k.home <- struct{}{}
			}
		}()
		<-p.wake // wait for the kernel to hand us the baton
		if p.killed {
			panic(procKilled{})
		}
		fn(p)
	}()
	k.atResume(k.now, p)
	return p
}

// resume transfers control to p and blocks until p parks or finishes.
// Must only be called from kernel context (inside an event callback).
func (k *Kernel) resume(p *Proc) {
	if p.finished {
		return
	}
	p.wake <- struct{}{}
	<-p.yield
}

// wakeAt schedules p to be resumed at time t.
//
//scaffe:hotpath
func (k *Kernel) wakeAt(p *Proc, t Time) {
	k.atResume(t, p)
}

// resumeIf resumes p only if it is still parked on the guarded wait
// armed with seq. Stale wake events — a completion that fired after
// its waiter timed out, or a timeout that lost the race with Fire —
// dissolve here instead of double-resuming the proc.
func (k *Kernel) resumeIf(p *Proc, seq uint64) {
	if !p.finished && p.waitArmed && p.waitSeq == seq {
		k.resume(p)
	}
}
