package core

import (
	"scaffe/internal/coll"
	"scaffe/internal/gpu"
	"scaffe/internal/mpi"
	"scaffe/internal/sim"
	"scaffe/internal/topology"
)

// runSCB is the S-Caffe Basic pipeline (Section 4.1): blocking
// CUDA-aware broadcast of the packed parameters, sequential
// forward/backward, blocking reduce of the packed gradients. CaffeMT
// shares this loop (its transfers resolve to intra-node IPC and its
// data plane is the single shared reader).
func (st *runState) runSCB(r *mpi.Rank) {
	w := st.wl[r.ID]
	ph := &st.phases[r.ID]
	root := r.ID == 0
	for it := 0; it < st.cfg.Iterations; it++ {
		st.dataWait(r, w, ph, it)
		st.timed(r, &ph.Propagation, "propagation", func() {
			if root {
				w.packParams()
			}
			r.Bcast(st.comm, 0, w.packedParams, topology.ModeAuto)
			if !root {
				w.unpackParams()
			}
		})
		st.forwardPass(r, w, ph)
		st.backwardPass(r, w, ph)
		st.timed(r, &ph.Aggregation, "aggregation", func() {
			st.red.Reduce(r, w.packedGrads, tagPackedReduce)
		})
		if root {
			st.applyUpdate(r, w, ph, it, st.workerCount())
		}
	}
}

// postPropagation posts every parameter layer's Ibcast up front
// (Figure 5's multi-stage on-demand design) and returns the per-layer
// requests.
func (st *runState) postPropagation(r *mpi.Rank, w *workload) []*mpi.Request {
	if r.ID == 0 {
		w.packParams()
	}
	reqs := make([]*mpi.Request, len(st.cfg.Spec.Layers))
	for l, buf := range w.layerParam {
		if buf != nil {
			reqs[l] = r.Ibcast(st.comm, 0, buf, topology.ModeAuto)
		}
	}
	return reqs
}

// overlappedForward runs the forward pass, placing each layer's
// MPI_Wait immediately before the layer that consumes the data — too
// early wastes overlap, too late stalls compute (Section 4.2).
func (st *runState) overlappedForward(r *mpi.Rank, w *workload, ph *Phases, reqs []*mpi.Request) {
	root := r.ID == 0
	w.beginForward()
	for l := range st.cfg.Spec.Layers {
		if reqs[l] != nil && !root {
			st.timed(r, &ph.Propagation, "propagation", func() {
				r.Wait(reqs[l])
				w.unpackLayerParams(l)
			})
		}
		st.forwardLayer(r, w, ph, l)
	}
}

// drainRootSends completes the root's outstanding broadcast sends; the
// root must not modify parameters (ApplyUpdate) while the network may
// still be reading them.
func (st *runState) drainRootSends(r *mpi.Rank, ph *Phases, reqs []*mpi.Request) {
	st.timed(r, &ph.Propagation, "propagation", func() {
		for _, req := range reqs {
			if req != nil {
				r.Wait(req)
			}
		}
	})
}

// runSCOB is SC-B plus the overlapped multi-stage data propagation.
func (st *runState) runSCOB(r *mpi.Rank) {
	w := st.wl[r.ID]
	ph := &st.phases[r.ID]
	root := r.ID == 0
	for it := 0; it < st.cfg.Iterations; it++ {
		st.dataWait(r, w, ph, it)
		reqs := st.postPropagation(r, w)
		st.overlappedForward(r, w, ph, reqs)
		st.backwardPass(r, w, ph)
		st.timed(r, &ph.Aggregation, "aggregation", func() {
			st.red.Reduce(r, w.packedGrads, tagPackedReduce)
		})
		if root {
			st.drainRootSends(r, ph, reqs)
			st.applyUpdate(r, w, ph, it, st.workerCount())
		}
	}
}

// runSCOBR is the full co-design: overlapped propagation plus
// helper-thread gradient aggregation (Section 4.3). A helper thread
// drives the backward kernels and signals per-layer completion through
// a condition flag; the main thread issues that layer's reduction as
// soon as its gradient is ready, so layer n's reduce overlaps layer
// n−1's backward compute.
func (st *runState) runSCOBR(r *mpi.Rank) {
	w := st.wl[r.ID]
	ph := &st.phases[r.ID]
	root := r.ID == 0
	k := r.W.K
	nLayers := len(st.cfg.Spec.Layers)

	for it := 0; it < st.cfg.Iterations; it++ {
		st.dataWait(r, w, ph, it)
		reqs := st.postPropagation(r, w)
		st.overlappedForward(r, w, ph, reqs)

		// Backward with helper-thread control-flow split.
		w.beginBackward()
		flags := make([]*sim.Flag, nLayers)
		for l := range flags {
			flags[l] = k.NewFlag()
		}
		done := k.NewFlag()
		r.SpawnThread("helper", func(hp *sim.Proc) {
			for l := nLayers - 1; l >= 0; l-- {
				flops := st.cfg.Spec.Layers[l].BwdFLOPs * float64(w.localBatch)
				_, end := r.Dev.LaunchCompute(hp.Now(), flops)
				w.backwardLayer(l)
				hp.WaitUntil(end)
				flags[l].Set()
			}
			done.Set()
		})
		if len(w.buckets) > 0 {
			// Fused (bucketed) aggregation: a bucket's gradients are
			// complete once its lowest layer's backward finishes.
			for bi, b := range w.buckets {
				bucket := b
				st.timed(r, &ph.Backward, "backward", func() { flags[bucket.lo].WaitSet(r.Proc) })
				st.timed(r, &ph.Aggregation, "aggregation", func() {
					st.red.Reduce(r, bucket.buf, tagLayerReduce+4*bi)
				})
			}
		} else {
			for l := nLayers - 1; l >= 0; l-- {
				if w.layerGrad[l] == nil {
					continue
				}
				layer := l
				st.timed(r, &ph.Backward, "backward", func() { flags[layer].WaitSet(r.Proc) })
				st.timed(r, &ph.Aggregation, "aggregation", func() {
					st.red.Reduce(r, w.layerGrad[layer], tagLayerReduce+4*layer)
				})
			}
		}
		st.timed(r, &ph.Backward, "backward", func() { done.WaitSet(r.Proc) })

		if root {
			st.drainRootSends(r, ph, reqs)
			st.applyUpdate(r, w, ph, it, st.workerCount())
		}
	}
}

// runCNTK models an MPI DL framework without CUDA-awareness or
// overlap, but with a competent host-side collective (CNTK's 32-bit
// SGD used MPI allreduce with its own multi-threaded reduction):
// gradients are staged to the host, ring-allreduced there, staged
// back, and every rank applies the update locally. No overlap with
// compute, no GPU kernels in the reduction, no GDR — the design axes
// of Table 1.
func (st *runState) runCNTK(r *mpi.Rank) {
	w := st.wl[r.ID]
	ph := &st.phases[r.ID]
	cl := st.cluster
	hostOpts := coll.Options{OnGPU: false, HostReduceBW: 20e9, Mode: topology.ModeHost}
	gradBytes := w.packedGrads.Bytes
	host := topology.HostOf(r.Dev.ID.Node)

	for it := 0; it < st.cfg.Iterations; it++ {
		st.dataWait(r, w, ph, it)
		st.forwardPass(r, w, ph)
		st.backwardPass(r, w, ph)
		st.timed(r, &ph.Aggregation, "aggregation", func() {
			_, end := cl.Transfer(r.Now(), r.Dev.ID, host, gradBytes, topology.ModeAuto)
			r.Proc.WaitUntil(end)
			if st.comm.Size() > 1 {
				coll.RingAllreduce(st.comm, r, w.packedGrads, tagPackedReduce, hostOpts)
			}
			_, end = cl.Transfer(r.Now(), host, r.Dev.ID, gradBytes, topology.ModeAuto)
			r.Proc.WaitUntil(end)
		})
		// Every replica updates locally with the averaged gradient.
		st.localUpdate(r, w, ph, it)
	}
}

// runPS models the Inspur-style parameter server: rank 0 serves
// parameters and aggregates gradients sequentially; ranks 1..N−1
// train. The single server's links and reduce kernels serialize all
// workers — the scalability argument of Section 3.1.
func (st *runState) runPS(r *mpi.Rank) {
	w := st.wl[r.ID]
	ph := &st.phases[r.ID]
	workers := st.cfg.GPUs - 1
	if r.ID == 0 {
		scratch := gpu.NewBuffer(w.packedGrads.Bytes)
		for it := 0; it < st.cfg.Iterations; it++ {
			st.timed(r, &ph.Propagation, "propagation", func() {
				for wk := 1; wk <= workers; wk++ {
					r.Send(st.comm, wk, tagPS, w.packedParams, topology.ModeAuto)
				}
			})
			st.timed(r, &ph.Aggregation, "aggregation", func() {
				for wk := 1; wk <= workers; wk++ {
					r.Recv(st.comm, wk, tagPS+1, scratch)
					_, end := r.Dev.LaunchReduce(r.Now(), scratch.Bytes)
					r.Proc.WaitUntil(end)
				}
			})
			st.applyUpdate(r, w, ph, it, workers)
		}
		return
	}
	for it := 0; it < st.cfg.Iterations; it++ {
		st.dataWait(r, w, ph, it)
		st.timed(r, &ph.Propagation, "propagation", func() {
			r.Recv(st.comm, 0, tagPS, w.packedParams)
		})
		st.forwardPass(r, w, ph)
		st.backwardPass(r, w, ph)
		st.timed(r, &ph.Aggregation, "aggregation", func() {
			r.Send(st.comm, 0, tagPS+1, w.packedGrads, topology.ModeAuto)
		})
	}
}

// localUpdate applies the update on this rank (designs whose replicas
// all hold the averaged gradient).
func (st *runState) localUpdate(r *mpi.Rank, w *workload, ph *Phases, it int) {
	st.timed(r, &ph.Update, "update", func() {
		_, end := r.Dev.LaunchCompute(r.Now(), updateFLOPs(st.cfg.Spec.TotalParams()))
		if w.real() {
			w.unpackGrads()
			st.sgds[r.ID].Step(w.net, it, 1/float32(st.workerCount()))
		}
		r.Proc.WaitUntil(end)
	})
	if r.ID == 0 {
		if w.real() {
			st.losses = append(st.losses, w.loss())
		}
		st.maybeEvaluate(r, w, it)
	}
}
