package coll

import (
	"scaffe/internal/gpu"
	"scaffe/internal/mpi"
	"scaffe/internal/topology"
)

// Allreduce performs reduce-to-root followed by broadcast using the
// given reducer. Every member of the reducer's communicator must call
// it. Tags tag..tag+2 are reserved.
func Allreduce(red Reducer, c *mpi.Comm, r *mpi.Rank, buf *gpu.Buffer, tag int, mode topology.TransferMode) {
	red.Reduce(r, buf, tag)
	r.Bcast(c, 0, buf, mode)
}

// RingAllreduce is the bandwidth-optimal ring algorithm (reduce-
// scatter + allgather over 2(P−1) steps) that later frameworks (NCCL,
// Horovod) adopted — included as the "future work" extension the paper
// anticipates and as an ablation baseline. Tags tag..tag+2P are
// reserved.
func RingAllreduce(c *mpi.Comm, r *mpi.Rank, buf *gpu.Buffer, tag int, o Options) {
	me := c.Rank(r)
	size := c.Size()
	if size == 1 {
		return
	}
	elems := buf.Elems()
	segOf := func(j int) (lo, hi int) {
		j = (j%size + size) % size
		per := (elems + size - 1) / size
		lo = j * per
		hi = lo + per
		if hi > elems {
			hi = elems
		}
		if lo > hi {
			lo = hi
		}
		return
	}
	left := (me - 1 + size) % size
	right := (me + 1) % size

	// Reduce-scatter: after P-1 steps, rank i holds the fully reduced
	// segment (i+1) mod P.
	for step := 0; step < size-1; step++ {
		sendSeg := me - step
		recvSeg := me - step - 1
		slo, shi := segOf(sendSeg)
		rlo, rhi := segOf(recvSeg)
		scratch := newLike(buf.Slice(rlo, rhi))
		sreq := r.Isend(c, right, tag+step, buf.Slice(slo, shi), o.Mode)
		r.RecvSummed(c, left, tag+step, scratch).Verify()
		acc := buf.Slice(rlo, rhi)
		localReduce(r, acc, scratch, o)
		r.Wait(sreq)
	}
	// Allgather: circulate the reduced segments.
	for step := 0; step < size-1; step++ {
		sendSeg := me + 1 - step
		recvSeg := me - step
		slo, shi := segOf(sendSeg)
		rlo, rhi := segOf(recvSeg)
		sreq := r.Isend(c, right, tag+size+step, buf.Slice(slo, shi), o.Mode)
		r.RecvSummed(c, left, tag+size+step, buf.Slice(rlo, rhi)).Verify()
		r.Wait(sreq)
	}
}
