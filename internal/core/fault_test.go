package core

import (
	"errors"
	"math"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"scaffe/internal/fault"
	"scaffe/internal/models"
	"scaffe/internal/sim"
)

// midRun returns a virtual time a given fraction into a fault-free run
// of the config: a calibration run makes fault times deterministic
// without hardcoding the simulated cluster's speed into the test.
func midRun(t *testing.T, cfg Config, frac float64) sim.Time {
	t.Helper()
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sim.Time(float64(base.TotalTime) * frac)
}

func TestConfigNormalizeRejectsNonsense(t *testing.T) {
	spec, _ := models.ByName("tiny")
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"negative queue depth", func(c *Config) { c.QueueDepth = -2 }},
		{"negative nodes", func(c *Config) { c.Nodes = -1 }},
		{"negative gpus/node", func(c *Config) { c.GPUsPerNode = -4 }},
		{"negative bucket bytes", func(c *Config) { c.BucketBytes = -1 }},
		{"negative snapshot interval", func(c *Config) { c.SnapshotEvery = -3 }},
		{"negative device memory", func(c *Config) { c.DeviceMemory = -1 }},
		{"negative fault timeout", func(c *Config) { c.FaultTimeout = -sim.Millisecond }},
		{"negative start iteration", func(c *Config) { c.StartIteration = -1 }},
		{"start beyond end", func(c *Config) { c.StartIteration = 99 }},
		{"fault rank out of range", func(c *Config) {
			c.Faults = fault.Schedule{{Kind: fault.Crash, Rank: 64}}
		}},
		{"faults on unsupported design", func(c *Config) {
			c.Design = ParamServer
			c.GlobalBatch = 3
			c.Faults = fault.Schedule{{Kind: fault.Crash, Rank: 1}}
		}},
	}
	for _, tc := range cases {
		cfg := timingConfig(spec, 4, 16, 2)
		tc.mut(&cfg)
		_, err := Run(cfg)
		if err == nil {
			t.Errorf("%s: expected error, got nil", tc.name)
			continue
		}
		if !errors.Is(err, ErrConfig) {
			t.Errorf("%s: error %v is not ErrConfig", tc.name, err)
		}
	}
}

func TestFaultPlaneZeroOverheadWithoutFailures(t *testing.T) {
	spec, _ := models.ByName("cifar10-quick")
	cfg := timingConfig(spec, 8, 64, 5)
	cfg.Design = SCOB
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A no-op event far past the end of the run arms the whole
	// fault-tolerance machinery (deadline-sliced waits, elastic
	// readers) without injecting anything that perturbs training.
	cfg.Faults = fault.Schedule{{At: base.TotalTime * 1000, Kind: fault.StragglerOff, Rank: 0}}
	armed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if armed.TotalTime != base.TotalTime {
		t.Errorf("armed-but-idle fault plane changed the run: %v vs %v", armed.TotalTime, base.TotalTime)
	}
	if armed.Fault == nil || armed.Fault.Survivors != 8 || len(armed.Fault.Recoveries) != 0 {
		t.Errorf("fault report = %+v", armed.Fault)
	}
}

func TestTimingCrashShrinksAndContinues(t *testing.T) {
	spec, _ := models.ByName("cifar10-quick")
	for _, d := range []Design{SCB, SCOB, SCOBR, CNTKLike} {
		cfg := timingConfig(spec, 8, 64, 8)
		cfg.Design = d
		mid := midRun(t, cfg, 0.5)
		cfg.Faults = fault.Schedule{{At: mid, Kind: fault.Crash, Rank: 3}}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		rep := res.Fault
		if rep == nil {
			t.Fatalf("%v: no fault report", d)
		}
		if rep.Crashes != 1 || rep.Survivors != 7 || len(rep.Recoveries) != 1 {
			t.Fatalf("%v: report = %v", d, rep)
		}
		rec := rep.Recoveries[0]
		if rec.Rank != 3 || rec.Survivors != 7 {
			t.Errorf("%v: recovery = %+v", d, rec)
		}
		if rec.DetectionLatency() <= 0 {
			t.Errorf("%v: detection latency %v not positive", d, rec.DetectionLatency())
		}
		if rec.RecoveryTime() < 0 {
			t.Errorf("%v: negative recovery time %v", d, rec.RecoveryTime())
		}
		if res.TotalTime <= mid {
			t.Errorf("%v: run ended at %v, before the crash at %v", d, res.TotalTime, mid)
		}
	}
}

func TestCrashOfRootRank(t *testing.T) {
	spec, _ := models.ByName("cifar10-quick")
	cfg := timingConfig(spec, 8, 64, 8)
	cfg.Design = SCOB
	mid := midRun(t, cfg, 0.5)
	// Rank 0 is the root solver: its death must hand the update role
	// to the shrunken communicator's new rank 0.
	cfg.Faults = fault.Schedule{{At: mid, Kind: fault.Crash, Rank: 0}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fault.Survivors != 7 || len(res.Fault.Recoveries) != 1 {
		t.Fatalf("report = %v", res.Fault)
	}
}

func TestHangDetectedByDeadline(t *testing.T) {
	spec, _ := models.ByName("cifar10-quick")
	cfg := timingConfig(spec, 8, 64, 8)
	cfg.Design = SCB
	mid := midRun(t, cfg, 0.4)
	cfg.Faults = fault.Schedule{{At: mid, Kind: fault.Hang, Rank: 5}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Fault
	if rep.Hangs != 1 || rep.Crashes != 0 || len(rep.Recoveries) != 1 {
		t.Fatalf("report = %v", rep)
	}
	if rep.Recoveries[0].Kind != fault.Hang {
		t.Errorf("recovery kind = %v", rep.Recoveries[0].Kind)
	}
}

func TestFaultedRunsAreDeterministic(t *testing.T) {
	spec, _ := models.ByName("cifar10-quick")
	cfg := timingConfig(spec, 8, 64, 8)
	cfg.Design = SCOBR
	mid := midRun(t, cfg, 0.5)
	cfg.Faults = fault.Schedule{
		{At: mid / 2, Kind: fault.StragglerOn, Rank: 2, Factor: 3},
		{At: mid, Kind: fault.Crash, Rank: 6},
	}
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	for trial := 0; trial < 3; trial++ {
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalTime != first.TotalTime {
			t.Fatalf("trial %d: total time %v != %v", trial, res.TotalTime, first.TotalTime)
		}
		if !reflect.DeepEqual(res.Fault, first.Fault) {
			t.Fatalf("trial %d: fault report diverged:\n%+v\n%+v", trial, res.Fault, first.Fault)
		}
	}
}

func TestRealModeCrashRollsBackToSnapshot(t *testing.T) {
	dir := t.TempDir()
	cfg := tinyRealConfig(4, 32, 24)
	cfg.SnapshotEvery = 6
	cfg.SnapshotPrefix = filepath.Join(dir, "tiny")
	mid := midRun(t, cfg, 0.6)

	cfg.SnapshotPrefix = filepath.Join(dir, "faulted")
	cfg.Faults = fault.Schedule{{At: mid, Kind: fault.Crash, Rank: 1}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Fault
	if rep.Crashes != 1 || rep.Survivors != 3 || len(rep.Recoveries) != 1 {
		t.Fatalf("report = %v", rep)
	}
	if !rep.Recoveries[0].RolledBack {
		t.Error("real-mode recovery did not roll back to a snapshot")
	}
	if ri := rep.Recoveries[0].RestartIter; ri <= 0 || ri%cfg.SnapshotEvery != 0 {
		t.Errorf("restart iteration %d is not a snapshot boundary", ri)
	}
	if len(res.Losses) != cfg.Iterations {
		t.Fatalf("got %d losses, want %d (rollback must re-record the replayed span)", len(res.Losses), cfg.Iterations)
	}
	for i, l := range res.Losses {
		if math.IsNaN(float64(l)) || math.IsInf(float64(l), 0) {
			t.Fatalf("loss %d = %v after recovery", i, l)
		}
	}
	if len(res.FinalParams) == 0 {
		t.Error("no final parameters captured")
	}
}

func TestRealModeCrashBeforeFirstSnapshotColdRestarts(t *testing.T) {
	cfg := tinyRealConfig(4, 32, 12)
	// No SnapshotEvery: there is never a snapshot to roll back to, so
	// survivors must restart from initialization and still finish.
	mid := midRun(t, cfg, 0.5)
	cfg.Faults = fault.Schedule{{At: mid, Kind: fault.Crash, Rank: 2}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Fault
	if len(rep.Recoveries) != 1 || rep.Recoveries[0].RolledBack {
		t.Fatalf("report = %v (cold restart must not be marked rolled-back)", rep)
	}
	if rep.Recoveries[0].RestartIter != 0 {
		t.Errorf("cold restart resumed at %d, want 0", rep.Recoveries[0].RestartIter)
	}
	if len(res.Losses) != cfg.Iterations {
		t.Fatalf("got %d losses, want %d", len(res.Losses), cfg.Iterations)
	}
}

func TestAllRanksDeadIsUnrecovered(t *testing.T) {
	spec, _ := models.ByName("cifar10-quick")
	cfg := timingConfig(spec, 4, 16, 8)
	mid := midRun(t, cfg, 0.5)
	cfg.Faults = fault.Schedule{
		{At: mid, Kind: fault.Crash, Rank: 0},
		{At: mid, Kind: fault.Crash, Rank: 1},
		{At: mid, Kind: fault.Crash, Rank: 2},
		{At: mid, Kind: fault.Crash, Rank: 3},
	}
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("run with every rank dead should fail")
	}
	if !errors.Is(err, ErrUnrecovered) {
		t.Errorf("error %v is not ErrUnrecovered", err)
	}
}

// TestResumeEquivalence is the end-to-end crash/restore check: a run
// killed mid-training by injected crashes, resumed from its latest
// on-disk snapshot at the same world size, must reach the exact final
// parameters of a run that never crashed.
func TestResumeEquivalence(t *testing.T) {
	dir := t.TempDir()
	const iters, every = 20, 5

	clean := tinyRealConfig(4, 32, iters)
	clean.SnapshotEvery = every
	clean.SnapshotPrefix = filepath.Join(dir, "clean")
	cleanRes, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}

	// Kill every rank ~70% through: past two snapshot boundaries,
	// before the end.
	killed := tinyRealConfig(4, 32, iters)
	killed.SnapshotEvery = every
	killed.SnapshotPrefix = filepath.Join(dir, "killed")
	at := sim.Time(float64(cleanRes.TotalTime) * 0.7)
	for rank := 0; rank < 4; rank++ {
		killed.Faults = append(killed.Faults, fault.Event{At: at, Kind: fault.Crash, Rank: rank})
	}
	if _, err := Run(killed); !errors.Is(err, ErrUnrecovered) {
		t.Fatalf("killed run: err = %v, want ErrUnrecovered", err)
	}

	// Find the latest snapshot the killed run left behind.
	var latest *Snapshot
	var latestPath string
	files, err := filepath.Glob(filepath.Join(dir, "killed_iter_*.scaffemodel"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no snapshots survived the crash (glob err %v)", err)
	}
	for _, f := range files {
		s, err := ReadSnapshot(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if latest == nil || s.Iteration > latest.Iteration {
			latest, latestPath = s, f
		}
	}
	if len(latest.History) == 0 {
		t.Fatal("snapshot carries no momentum; resume cannot be exact")
	}

	resumed := tinyRealConfig(4, 32, iters)
	resumed.ResumeFrom = latestPath
	resumed.StartIteration = latest.Iteration + 1
	resumedRes, err := Run(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if len(resumedRes.Losses) != iters-(latest.Iteration+1) {
		t.Errorf("resumed run recorded %d losses, want %d", len(resumedRes.Losses), iters-(latest.Iteration+1))
	}
	if len(resumedRes.FinalParams) != len(cleanRes.FinalParams) {
		t.Fatalf("param count mismatch: %d vs %d", len(resumedRes.FinalParams), len(cleanRes.FinalParams))
	}
	for i := range cleanRes.FinalParams {
		if resumedRes.FinalParams[i] != cleanRes.FinalParams[i] {
			t.Fatalf("param %d: resumed %v != uninterrupted %v (resume is not bit-exact)",
				i, resumedRes.FinalParams[i], cleanRes.FinalParams[i])
		}
	}
}

func TestTransientFaultsSlowButDoNotShrink(t *testing.T) {
	spec, _ := models.ByName("cifar10-quick")
	base := timingConfig(spec, 8, 64, 8)
	base.Design = SCOB
	base.Nodes, base.GPUsPerNode = 2, 4
	baseRes, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	half := baseRes.TotalTime / 2
	cases := []struct {
		name string
		ev   fault.Event
	}{
		{"straggler", fault.Event{At: half / 2, Kind: fault.StragglerOn, Rank: 2, Factor: 8}},
		{"link degrade", fault.Event{At: half / 2, Kind: fault.LinkDegrade, Node: 0, Factor: 6, For: sim.Duration(half)}},
		{"reader stall", fault.Event{At: half / 2, Kind: fault.ReaderStall, Rank: 1, For: sim.Duration(half)}},
	}
	for _, tc := range cases {
		cfg := base
		cfg.Faults = fault.Schedule{tc.ev}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.TotalTime <= baseRes.TotalTime {
			t.Errorf("%s: total %v not slower than fault-free %v", tc.name, res.TotalTime, baseRes.TotalTime)
		}
		if len(res.Fault.Recoveries) != 0 || res.Fault.Survivors != 8 {
			t.Errorf("%s: transient fault triggered a shrink: %v", tc.name, res.Fault)
		}
	}
}

func TestSnapshotFailureSkipsWriteAndRecoveryUsesOlder(t *testing.T) {
	dir := t.TempDir()
	cfg := tinyRealConfig(4, 32, 24)
	cfg.SnapshotEvery = 6
	cfg.SnapshotPrefix = filepath.Join(dir, "tiny")
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.SnapshotFiles) != 4 {
		t.Fatalf("fault-free run wrote %d snapshots", len(base.SnapshotFiles))
	}
	// Fail every snapshot write from 40% of the run onward, then crash
	// a rank: recovery must roll back to a snapshot written before the
	// failure window.
	cfg.SnapshotPrefix = filepath.Join(dir, "failing")
	winStart := sim.Time(float64(base.TotalTime) * 0.4)
	cfg.Faults = fault.Schedule{
		{At: winStart, Kind: fault.SnapshotFail, For: sim.Duration(base.TotalTime) * 10},
		{At: sim.Time(float64(base.TotalTime) * 0.8), Kind: fault.Crash, Rank: 3},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fault.SnapshotFailures == 0 {
		t.Error("no snapshot failures recorded")
	}
	if len(res.Fault.Recoveries) != 1 {
		t.Fatalf("report = %v", res.Fault)
	}
	rec := res.Fault.Recoveries[0]
	if !rec.RolledBack {
		t.Error("recovery did not roll back")
	}
	if rec.RestartIter%cfg.SnapshotEvery != 0 {
		t.Errorf("restart iteration %d is not a snapshot boundary", rec.RestartIter)
	}
	if len(res.Losses) != cfg.Iterations {
		t.Errorf("got %d losses, want %d", len(res.Losses), cfg.Iterations)
	}
}

// TestGoogLeNetScaleCrashSurvival is the acceptance-scale run: a
// 32-GPU GoogLeNet training with a mid-run crash completes on the
// shrunken world and reports the recovery.
func TestGoogLeNetScaleCrashSurvival(t *testing.T) {
	cfg := timingConfig(models.GoogLeNet(), 32, 1024, 4)
	cfg.Design = SCOBR
	cfg.Nodes, cfg.GPUsPerNode = 8, 4
	mid := midRun(t, cfg, 0.5)
	cfg.Faults = fault.Schedule{{At: mid, Kind: fault.Crash, Rank: 17}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Fault
	if rep.Survivors != 31 || len(rep.Recoveries) != 1 {
		t.Fatalf("report = %v", rep)
	}
	if rep.Recoveries[0].DetectionLatency() <= 0 {
		t.Error("zero detection latency")
	}
	if res.TotalTime <= mid {
		t.Error("run did not continue past the crash")
	}
}
