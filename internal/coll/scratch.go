package coll

import (
	"scaffe/internal/gpu"
	"scaffe/internal/mpi"
)

// Per-call scratch reuse. Every reducer instance owns a stateTable:
// one rankState per member group rank, created on that rank's first
// Reduce and reused for every call after it. The state carries the
// three per-invocation resources the algorithms used to allocate every
// time — receive scratch buffers, chunk/segment descriptor views, and
// the in-flight send-request list — so a steady-state reduction
// allocates nothing.
//
// Reuse never changes observable behavior: scratch buffers are only
// ever receive destinations (fully overwritten by the delivery copy
// before they are read), views are immutable headers over the caller's
// buffer and are cached by exact (buffer, lo, hi) extents, and the
// request slice is reset before each use. Virtual timing is untouched,
// so golden traces and losses stay bit-identical.
//
// All methods tolerate a nil receiver by falling back to transient
// allocation — the stateless exported entry points (RingAllreduce,
// ReduceScatterGather, BcastScatterAllgather) pass nil.

// scratchKey identifies a scratch shape: exact logical size plus
// whether it carries a real payload.
type scratchKey struct {
	bytes   int64
	payload bool
}

// viewKey identifies a cached sub-buffer view by parent identity and
// exact element extents.
type viewKey struct {
	buf    *gpu.Buffer
	lo, hi int
}

// rankState is one group rank's reusable per-call resources for one
// reducer instance. Procs of different ranks interleave inside one
// reducer, so state is held per rank; within a rank, calls are
// sequential (busy guards the unexpected re-entrant case).
type rankState struct {
	busy    bool
	scratch map[scratchKey][]*gpu.Buffer
	views   map[viewKey]*gpu.Buffer
	sreqs   []*mpi.Request
}

// newRankState is acquire's first-call path for a rank.
//
//scaffe:coldpath first-call construction of a rank's reusable state; steady state reuses it
func newRankState() *rankState {
	return &rankState{
		scratch: make(map[scratchKey][]*gpu.Buffer),
		views:   make(map[viewKey]*gpu.Buffer),
	}
}

// stateTable lazily holds one rankState per group rank.
type stateTable struct {
	sts []*rankState
}

// acquire returns the calling rank's state, marking it busy for the
// duration of the collective. A re-entrant call on the same rank
// (never produced by the shipped algorithms) degrades to a transient
// state rather than corrupting in-flight scratch.
func (t *stateTable) acquire(size, me int) *rankState {
	if t.sts == nil {
		//scaffe:nolint hotpath first-call table construction; steady state takes the filled-slot path
		t.sts = make([]*rankState, size)
	}
	st := t.sts[me]
	if st == nil {
		st = newRankState()
		t.sts[me] = st
	}
	if st.busy {
		return newRankState()
	}
	st.busy = true
	return st
}

func (st *rankState) release() { st.busy = false }

// getScratch returns a scratch buffer shaped like `like` (payload
// present iff it has one) from the free stack, or allocates on miss.
//
//scaffe:hotpath
func (st *rankState) getScratch(like *gpu.Buffer) *gpu.Buffer {
	if st == nil {
		return newLike(like)
	}
	key := scratchKey{bytes: like.Bytes, payload: like.Data != nil}
	stack := st.scratch[key]
	n := len(stack)
	if n == 0 {
		return newLike(like)
	}
	b := stack[n-1]
	stack[n-1] = nil
	st.scratch[key] = stack[:n-1]
	return b
}

// putScratch returns a scratch buffer to its free stack. The buffer
// must not be a receive destination of any still-in-flight operation.
func (st *rankState) putScratch(b *gpu.Buffer) {
	if st == nil {
		return
	}
	key := scratchKey{bytes: b.Bytes, payload: b.Data != nil}
	//scaffe:nolint hotpath pool release; append reuses capacity freed by the matching getScratch
	st.scratch[key] = append(st.scratch[key], b)
}

// view returns the cached immutable view of buf[lo:hi), creating it on
// first use. Views are shared freely: the header is never mutated, so
// identical extents across iterations reuse one record.
//
//scaffe:hotpath
func (st *rankState) view(buf *gpu.Buffer, lo, hi int) *gpu.Buffer {
	if st == nil {
		//scaffe:coldpath stateless fallback allocates transiently by documented design
		return buf.Slice(lo, hi)
	}
	key := viewKey{buf: buf, lo: lo, hi: hi}
	if v := st.views[key]; v != nil {
		return v
	}
	//scaffe:coldpath first-use view creation; the views cache serves every later call
	v := buf.Slice(lo, hi)
	st.views[key] = v
	return v
}

// takeReqs returns the reusable request list, emptied.
func (st *rankState) takeReqs() []*mpi.Request {
	if st == nil {
		return nil
	}
	return st.sreqs[:0]
}

// storeReqs hands the (possibly regrown) request list back after the
// requests have been waited, dropping the dead handles.
func (st *rankState) storeReqs(reqs []*mpi.Request) {
	if st == nil {
		return
	}
	for i := range reqs {
		reqs[i] = nil
	}
	st.sreqs = reqs[:0]
}

// chunkBounds returns the element extents of pipeline chunk j of n
// over elems elements (the chain reducers' chunking rule).
func chunkBounds(elems, n, j int) (lo, hi int) {
	per := (elems + n - 1) / n
	lo = j * per
	hi = lo + per
	if hi > elems {
		hi = elems
	}
	return
}
