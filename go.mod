module scaffe

go 1.22
