// Package topology models a GPU cluster at the level S-Caffe's
// co-designs care about: devices, PCIe links between each device and
// its host, an InfiniBand HCA per node, and a non-blocking fabric
// between nodes. Transfers reserve the shared links they cross, so
// algorithms that generate concurrent traffic (binomial trees) contend
// realistically while pipelined chains do not.
//
// The model deliberately uses a cut-through approximation: a transfer
// of B bytes over a path starts when every link on the path is free,
// lasts pathLatency + B/bottleneckBandwidth, and occupies every link
// for its duration. This is the standard first-order model used by
// collective-algorithm cost analyses (including the paper's Eq. 1–2).
package topology

import (
	"fmt"

	"scaffe/internal/sim"
)

// DeviceID identifies a GPU in the cluster: node index and local
// device index.
type DeviceID struct {
	Node  int
	Local int
}

func (d DeviceID) String() string { return fmt.Sprintf("n%dg%d", d.Node, d.Local) }

// TransferMode selects the data path used by a GPU-to-GPU transfer.
type TransferMode int

const (
	// ModeAuto picks the best mode the runtime supports for the size
	// (how MVAPICH2-GDR behaves with GDR + pipelining enabled).
	ModeAuto TransferMode = iota
	// ModeGDR transfers directly between GPU memory and the HCA via
	// PCIe peer-to-peer (GPUDirect RDMA). Lowest latency; on Kepler
	// the GDR read path has limited bandwidth for large messages.
	ModeGDR
	// ModePipelined stages through host memory in chunks, overlapping
	// D2H, network, and H2D (CUDA-aware large-message protocol).
	ModePipelined
	// ModeStaged is the naive non-pipelined path: full D2H copy, then
	// network, then full H2D (what a non-CUDA-aware stack does after
	// the application copies buffers out, or OpenMPI-era staging).
	ModeStaged
	// ModeIPC uses CUDA IPC / PCIe peer-to-peer for intra-node
	// GPU-to-GPU copies.
	ModeIPC
	// ModeHost transfers between host memories (no GPUs involved).
	ModeHost
)

func (m TransferMode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeGDR:
		return "gdr"
	case ModePipelined:
		return "pipelined"
	case ModeStaged:
		return "staged"
	case ModeIPC:
		return "ipc"
	case ModeHost:
		return "host"
	}
	return "unknown"
}

// Params holds the calibration constants of the hardware model. All
// bandwidths are bytes/second, latencies in virtual nanoseconds.
type Params struct {
	// PCIeBW is the effective per-direction bandwidth of one device's
	// PCIe connection (gen3 x16 shared by a K-80's two GK210s).
	PCIeBW float64
	// PCIeLat is the one-way PCIe latency.
	PCIeLat sim.Duration
	// IBBW is the effective per-HCA InfiniBand bandwidth.
	IBBW float64
	// IBLat is the one-way wire+switch latency.
	IBLat sim.Duration
	// GDRReadBW is the PCIe peer-to-peer read bandwidth from GPU
	// memory to the HCA (the Kepler GDR-read cliff).
	GDRReadBW float64
	// GDRLat is the extra setup latency saved by GDR (it is *lower*
	// than staging, modeled as reduced per-message overhead).
	GDRLat sim.Duration
	// IPCBW is intra-node GPU-to-GPU peer copy bandwidth.
	IPCBW float64
	// IPCLat is the IPC handle/setup latency per transfer.
	IPCLat sim.Duration
	// HostMemBW is host memcpy bandwidth (staging copies).
	HostMemBW float64
	// PipelineChunk is the chunk size of the pipelined protocol.
	PipelineChunk int64
	// SWOverhead is the per-MPI-call software overhead.
	SWOverhead sim.Duration
	// GPUReduceBW is the sustained bandwidth of a GPU reduction
	// kernel combining two operands (bytes of one operand per second).
	GPUReduceBW float64
	// CPUReduceBW is the same for a host (single-thread) reduction.
	CPUReduceBW float64
	// KernelLaunch is the launch latency of one GPU kernel.
	KernelLaunch sim.Duration
	// GPUGflops is the sustained FP32 throughput of one CUDA device
	// used by the layer cost model, in GFLOP/s.
	GPUGflops float64
	// IterOverhead is the per-iteration, per-solver fixed cost of the
	// framework itself (solver bookkeeping, loss host-syncs,
	// per-layer launch trains not modeled individually) — the constant
	// term that bounds strong-scaling efficiency for small models.
	IterOverhead sim.Duration
}

// DefaultParams returns constants calibrated to the paper's testbed
// era (K-80 GPUs, PCIe gen3, Connect-IB / EDR InfiniBand).
func DefaultParams() Params {
	return Params{
		PCIeBW:        10e9,
		PCIeLat:       1 * sim.Microsecond,
		IBBW:          12e9,
		IBLat:         2 * sim.Microsecond,
		GDRReadBW:     2.5e9,
		GDRLat:        500 * sim.Nanosecond,
		IPCBW:         10e9,
		IPCLat:        3 * sim.Microsecond,
		HostMemBW:     20e9,
		PipelineChunk: 128 << 10,
		SWOverhead:    2 * sim.Microsecond,
		GPUReduceBW:   45e9,
		CPUReduceBW:   6e9,
		KernelLaunch:  8 * sim.Microsecond,
		GPUGflops:     1450,
		IterOverhead:  5 * sim.Millisecond,
	}
}

// Link is a full-duplex connection modeled as independent per-
// direction resources (PCIe and InfiniBand both move data in and out
// simultaneously, which matters for pipeline relays).
type Link struct {
	In  *sim.Resource
	Out *sim.Resource
}

// BusyTotal sums both directions' reserved time.
func (l Link) BusyTotal() sim.Duration { return l.In.BusyTotal() + l.Out.BusyTotal() }

// Node is one cluster host: a set of GPUs, one PCIe link per GPU, and
// one HCA.
type Node struct {
	Index int
	// PCIe[i] is the host<->device link of local GPU i.
	PCIe []Link
	// HCA is the node's InfiniBand adapter.
	HCA Link
}

// Cluster is the hardware model shared by every rank of a simulation.
type Cluster struct {
	K       *sim.Kernel
	P       Params
	Nodes   []*Node
	perNode int
	name    string

	// linkFault, when set, returns a duration multiplier (>= 1) for
	// inter-node transfers leaving srcNode at virtual time `at` — the
	// fault plane's transient link-degradation hook. Nil means every
	// link is healthy.
	linkFault func(at sim.Time, srcNode, dstNode int) float64
}

// SetLinkFault installs the inter-node link-degradation hook.
func (c *Cluster) SetLinkFault(f func(at sim.Time, srcNode, dstNode int) float64) {
	c.linkFault = f
}

// scaleWire stretches an inter-node transfer duration by the link
// fault factor in effect at `at`; with no hook (or factor 1) the
// duration is returned untouched.
func (c *Cluster) scaleWire(at sim.Time, srcNode, dstNode int, d sim.Duration) sim.Duration {
	if c.linkFault == nil {
		return d
	}
	if f := c.linkFault(at, srcNode, dstNode); f > 1 {
		return sim.Duration(float64(d) * f)
	}
	return d
}

// New builds a cluster of `nodes` hosts with `gpusPerNode` CUDA
// devices each, on kernel k.
func New(k *sim.Kernel, name string, nodes, gpusPerNode int, p Params) *Cluster {
	if nodes <= 0 || gpusPerNode <= 0 {
		panic("topology: cluster dimensions must be positive")
	}
	c := &Cluster{K: k, P: p, perNode: gpusPerNode, name: name}
	newLink := func(name string) Link {
		return Link{In: k.NewResource(name + ".in"), Out: k.NewResource(name + ".out")}
	}
	for n := 0; n < nodes; n++ {
		node := &Node{Index: n, HCA: newLink(fmt.Sprintf("hca%d", n))}
		for g := 0; g < gpusPerNode; g++ {
			node.PCIe = append(node.PCIe, newLink(fmt.Sprintf("pcie%d.%d", n, g)))
		}
		c.Nodes = append(c.Nodes, node)
	}
	return c
}

// Name returns the cluster's configured name.
func (c *Cluster) Name() string { return c.name }

// MinLookahead returns the minimum virtual-time horizon between an
// action on one rank and its earliest possible effect on another: the
// per-call software overhead plus the smallest one-way latency of any
// link class in the model. No transfer, eager or rendezvous, can land
// on a remote rank sooner, so the simulation kernel can safely run
// same-instant events of different ranks concurrently when armed with
// this window (sim.Kernel.SetParallel; DESIGN.md §13). A zero result
// (a degenerate all-zero-latency calibration) disarms parallel
// execution rather than shrinking the window.
func (c *Cluster) MinLookahead() sim.Duration {
	min := c.P.PCIeLat
	for _, l := range []sim.Duration{c.P.IBLat, c.P.GDRLat, c.P.IPCLat} {
		if l < min {
			min = l
		}
	}
	if min < 0 {
		min = 0
	}
	return c.P.SWOverhead + min
}

// NumNodes returns the number of hosts.
func (c *Cluster) NumNodes() int { return len(c.Nodes) }

// GPUsPerNode returns the number of CUDA devices per host.
func (c *Cluster) GPUsPerNode() int { return c.perNode }

// TotalGPUs returns nodes × GPUs-per-node.
func (c *Cluster) TotalGPUs() int { return len(c.Nodes) * c.perNode }

// DeviceForRank maps an MPI rank to a device using block placement:
// ranks fill a node's GPUs before moving to the next node (the
// placement S-Caffe uses, which makes low-order rank ranges node-local
// and is what the hierarchical chain exploits).
func (c *Cluster) DeviceForRank(rank int) DeviceID {
	if rank < 0 || rank >= c.TotalGPUs() {
		panic(fmt.Sprintf("topology: rank %d out of range (cluster has %d GPUs)", rank, c.TotalGPUs()))
	}
	return DeviceID{Node: rank / c.perNode, Local: rank % c.perNode}
}

// SameNode reports whether two devices share a host.
func (c *Cluster) SameNode(a, b DeviceID) bool { return a.Node == b.Node }

// KeschClusterA returns the paper's Cluster-A model: a Cray CS-Storm
// style dense system, 12 nodes × 16 CUDA devices (8 dual-GPU K-80
// cards), Connect-IB.
func KeschClusterA(k *sim.Kernel) *Cluster {
	return New(k, "Cluster-A (CS-Storm, 12x16 K-80, Connect-IB)", 12, 16, DefaultParams())
}

// ClusterB returns the paper's Cluster-B model: 20 nodes with one K-80
// card (2 CUDA devices) each, EDR InfiniBand.
func ClusterB(k *sim.Kernel) *Cluster {
	p := DefaultParams()
	p.IBBW = 11e9 // single EDR port
	return New(k, "Cluster-B (20x2 K-80, EDR)", 20, 2, p)
}
