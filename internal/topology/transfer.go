package topology

import "scaffe/internal/sim"

// HostOf returns the pseudo-device identifying node n's host memory.
// Host endpoints skip the PCIe link on their side of a transfer.
func HostOf(n int) DeviceID { return DeviceID{Node: n, Local: -1} }

// IsHost reports whether d is a host-memory endpoint.
func (d DeviceID) IsHost() bool { return d.Local < 0 }

// eagerGDRLimit is the message size up to which ModeAuto prefers the
// low-latency GDR path over pipelined host staging on the Kepler-era
// hardware model (the GDR-read bandwidth cliff makes GDR lose for
// large messages).
const eagerGDRLimit = 32 << 10

// resolveAuto picks the concrete mode MVAPICH2-GDR-style runtimes use.
func (c *Cluster) resolveAuto(from, to DeviceID, bytes int64) TransferMode {
	if from.IsHost() && to.IsHost() {
		return ModeHost
	}
	if from.Node == to.Node {
		return ModeIPC
	}
	if bytes <= eagerGDRLimit {
		return ModeGDR
	}
	return ModePipelined
}

func bwTime(bytes int64, bw float64) sim.Duration {
	if bytes <= 0 {
		return 0
	}
	return sim.Duration(float64(bytes) / bw * float64(sim.Second))
}

// reserveAll books duration d on every resource no earlier than `at`,
// starting when all of them are free (a cut-through transfer holding
// its whole path).
func reserveAll(at sim.Time, d sim.Duration, links ...*sim.Resource) (start, end sim.Time) {
	start = at
	for _, l := range links {
		start = maxTime(start, l.FreeAt(at))
	}
	for _, l := range links {
		l.Reserve(start, d)
	}
	return start, start + d
}

// Transfer books a transfer of `bytes` from device `from` to device
// `to` starting no earlier than `at`, reserving the shared links it
// crosses, and returns the span it occupies. Zero-byte transfers still
// pay software overhead and latency.
func (c *Cluster) Transfer(at sim.Time, from, to DeviceID, bytes int64, mode TransferMode) (start, end sim.Time) {
	p := &c.P
	if mode == ModeAuto {
		mode = c.resolveAuto(from, to, bytes)
	}
	if mode == ModeHost {
		// ModeHost means the buffers are host-resident regardless of
		// which GPU the rank owns (a non-CUDA-aware application has
		// already staged them): the transfer never touches PCIe.
		from, to = HostOf(from.Node), HostOf(to.Node)
	}
	at += p.SWOverhead

	// Same-device "transfer": a device-local copy.
	if from == to {
		if from.IsHost() {
			return at, at + bwTime(bytes, p.HostMemBW)
		}
		return at, at + bwTime(bytes, p.GPUReduceBW) // device memcpy ~ mem bandwidth
	}

	if from.Node == to.Node {
		return c.intraNode(at, from, to, bytes, mode)
	}
	return c.interNode(at, from, to, bytes, mode)
}

// intraNode books a transfer between two endpoints of one host.
func (c *Cluster) intraNode(at sim.Time, from, to DeviceID, bytes int64, mode TransferMode) (start, end sim.Time) {
	p := &c.P
	node := c.Nodes[from.Node]
	switch {
	case from.IsHost() && to.IsHost():
		return at, at + bwTime(bytes, p.HostMemBW)
	case from.IsHost():
		return reserveAll(at, p.PCIeLat+bwTime(bytes, p.PCIeBW), node.PCIe[to.Local].In)
	case to.IsHost():
		return reserveAll(at, p.PCIeLat+bwTime(bytes, p.PCIeBW), node.PCIe[from.Local].Out)
	}
	// GPU to GPU on one node.
	switch mode {
	case ModeIPC, ModeGDR, ModePipelined, ModeAuto:
		// Peer copy across the PCIe switch: source egress and
		// destination ingress busy for the copy.
		d := p.IPCLat + bwTime(bytes, min64f(p.IPCBW, p.PCIeBW))
		return reserveAll(at, d, node.PCIe[from.Local].Out, node.PCIe[to.Local].In)
	default: // ModeStaged
		// D2H then H2D, serialized through host memory.
		s1, e1 := reserveAll(at, p.PCIeLat+bwTime(bytes, p.PCIeBW), node.PCIe[from.Local].Out)
		_, e2 := reserveAll(e1+bwTime(bytes, p.HostMemBW), p.PCIeLat+bwTime(bytes, p.PCIeBW), node.PCIe[to.Local].In)
		return s1, e2
	}
}

// reserveWirePath books duration d on the HCA pair plus whichever PCIe
// endpoints the device-resident sides cross. The four explicit cases
// (instead of appending into a links slice) keep the variadic argument
// slices stack-allocated: Transfer sits on the propagated hotpath of
// every send, so building the path must not touch the heap.
func reserveWirePath(at sim.Time, d sim.Duration, src, dst *Node, from, to DeviceID) (start, end sim.Time) {
	switch {
	case !from.IsHost() && !to.IsHost():
		return reserveAll(at, d, src.HCA.Out, dst.HCA.In, src.PCIe[from.Local].Out, dst.PCIe[to.Local].In)
	case !from.IsHost():
		return reserveAll(at, d, src.HCA.Out, dst.HCA.In, src.PCIe[from.Local].Out)
	case !to.IsHost():
		return reserveAll(at, d, src.HCA.Out, dst.HCA.In, dst.PCIe[to.Local].In)
	default:
		return reserveAll(at, d, src.HCA.Out, dst.HCA.In)
	}
}

// interNode books a transfer between two endpoints on different hosts.
func (c *Cluster) interNode(at sim.Time, from, to DeviceID, bytes int64, mode TransferMode) (start, end sim.Time) {
	p := &c.P
	src, dst := c.Nodes[from.Node], c.Nodes[to.Node]
	netLat := p.IBLat

	switch mode {
	case ModeHost:
		d := c.scaleWire(at, from.Node, to.Node, netLat+bwTime(bytes, p.IBBW))
		return reserveAll(at, d, src.HCA.Out, dst.HCA.In)

	case ModeGDR:
		// Cut-through: GPU->HCA peer read, wire, HCA->GPU write. The
		// bottleneck is the Kepler GDR read bandwidth; latency is one
		// PCIe hop each side plus the wire, minus the GDR setup
		// saving.
		bw := min64f(p.GDRReadBW, p.IBBW)
		d := c.scaleWire(at, from.Node, to.Node, p.PCIeLat+netLat+p.PCIeLat-p.GDRLat+bwTime(bytes, bw))
		return reserveWirePath(at, d, src, dst, from, to)

	case ModePipelined, ModeAuto:
		// Chunked pipeline through host memory: after a two-chunk fill,
		// the transfer streams at the bottleneck bandwidth.
		bw := min64f(p.PCIeBW, min64f(p.IBBW, p.HostMemBW))
		fill := 2 * bwTime(p.PipelineChunk, bw)
		d := c.scaleWire(at, from.Node, to.Node, p.PCIeLat+netLat+p.PCIeLat+fill+bwTime(bytes, bw))
		return reserveWirePath(at, d, src, dst, from, to)

	default: // ModeStaged: serialized D2H, host copy, wire, H2D.
		t := at
		start = at
		if !from.IsHost() {
			s, e := reserveAll(t, p.PCIeLat+bwTime(bytes, p.PCIeBW), src.PCIe[from.Local].Out)
			start, t = s, e
			t += bwTime(bytes, p.HostMemBW) // copy into the MPI bounce buffer
		}
		wd := c.scaleWire(at, from.Node, to.Node, netLat+bwTime(bytes, p.IBBW))
		ws, we := reserveAll(t, wd, src.HCA.Out, dst.HCA.In)
		if from.IsHost() {
			start = ws
		}
		t = we
		if !to.IsHost() {
			t += bwTime(bytes, p.HostMemBW) // copy out of the bounce buffer
			_, e := reserveAll(t, p.PCIeLat+bwTime(bytes, p.PCIeBW), dst.PCIe[to.Local].In)
			t = e
		}
		return start, t
	}
}

// ReduceTime returns the duration of combining `bytes` of one operand
// into an accumulator, on the GPU or the host CPU.
func (c *Cluster) ReduceTime(bytes int64, onGPU bool) sim.Duration {
	if onGPU {
		return c.P.KernelLaunch + bwTime(bytes, c.P.GPUReduceBW)
	}
	return bwTime(bytes, c.P.CPUReduceBW)
}

func min64f(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxTime(ts ...sim.Time) sim.Time {
	m := ts[0]
	for _, t := range ts[1:] {
		if t > m {
			m = t
		}
	}
	return m
}
