package coll

import (
	"scaffe/internal/gpu"
	"scaffe/internal/mpi"
)

// ReduceScatterGather implements Rabenseifner's reduce algorithm for
// power-of-two communicators: recursive-halving reduce-scatter
// followed by a binomial gather to root (group rank 0). It is the
// classic bandwidth-optimal alternative to both Eq. (1) and Eq. (2)
// — total traffic 2·b·(P−1)/P per rank versus the binomial tree's
// b·log2(P) — included for the algorithm-comparison experiments.
// Non-power-of-two sizes fall back to the chunked chain.
//
// Tags tag..tag+1 are reserved.
func ReduceScatterGather(c *mpi.Comm, r *mpi.Rank, buf *gpu.Buffer, tag int, o Options) {
	reduceScatterGather(c, r, buf, tag, o, nil, nil)
}

// reduceScatterGather is the state-threaded implementation behind both
// the exported one-shot entry point (nil state: transient allocations)
// and rsgReducer (per-rank reusable state). fallback handles
// non-power-of-two sizes; when nil a transient chain reducer is built.
func reduceScatterGather(c *mpi.Comm, r *mpi.Rank, buf *gpu.Buffer, tag int, o Options, st *rankState, fallback Reducer) {
	size := c.Size()
	if size == 1 {
		return
	}
	if size&(size-1) != 0 {
		if fallback == nil {
			//scaffe:coldpath transient fallback for the stateless one-shot entry; rsgReducer supplies a pooled fallback
			fallback = &chainReducer{c: c, o: o}
		}
		fallback.Reduce(r, buf, tag)
		return
	}
	me := c.Rank(r)
	elems := buf.Elems()

	// Recursive halving: at step k (distance d = size>>k+...), each
	// pair exchanges the half of the current segment the peer is
	// responsible for and reduces the half it keeps.
	lo, hi := 0, elems
	for dist := size / 2; dist >= 1; dist /= 2 {
		peer := me ^ dist
		mid := lo + (hi-lo)/2
		mineFirst := me&dist == 0 // keep the first half if our bit is 0
		var keepLo, keepHi, sendLo, sendHi int
		if mineFirst {
			keepLo, keepHi, sendLo, sendHi = lo, mid, mid, hi
		} else {
			keepLo, keepHi, sendLo, sendHi = mid, hi, lo, mid
		}
		keep := st.view(buf, keepLo, keepHi)
		scratch := st.getScratch(keep)
		sreq := r.Isend(c, peer, tag, st.view(buf, sendLo, sendHi), o.Mode)
		r.RecvSummed(c, peer, tag, scratch).Verify()
		localReduce(r, keep, scratch, o)
		st.putScratch(scratch)
		r.Wait(sreq)
		lo, hi = keepLo, keepHi
	}

	// Binomial gather of the scattered segments to root. Segment
	// ownership after halving is contiguous by rank; rsgSegStart
	// replays the split sequence so both sides of every transfer agree
	// on the exact (possibly uneven) extents. At gather round `mask`, a
	// rank with (me & mask) != 0 sends everything it has collected —
	// segments [me, me+mask) — to me-mask.
	for mask := 1; mask < size; mask <<= 1 {
		if me&mask != 0 {
			slo, shi := rsgSegStart(size, elems, me), rsgSegStart(size, elems, me+mask)
			r.Send(c, me-mask, tag+1, st.view(buf, slo, shi), o.Mode)
			return
		}
		peer := me + mask
		if peer >= size {
			continue
		}
		peerLo, peerHi := rsgSegStart(size, elems, peer), rsgSegStart(size, elems, peer+mask)
		if peerLo >= peerHi {
			continue
		}
		r.RecvSummed(c, peer, tag+1, st.view(buf, peerLo, peerHi)).Verify()
	}
}

// rsgSegStart returns the starting element of rank p's scattered
// segment by replaying the recursive-halving split sequence.
func rsgSegStart(size, elems, p int) int {
	if p >= size {
		return elems
	}
	slo, shi := 0, elems
	for dist := size / 2; dist >= 1; dist /= 2 {
		mid := slo + (shi-slo)/2
		if p&dist == 0 {
			shi = mid
		} else {
			slo = mid
		}
	}
	return slo
}

// rsgReducer adapts ReduceScatterGather to the Reducer interface,
// carrying per-rank scratch state and a construction-time chain
// fallback for non-power-of-two communicators.
type rsgReducer struct {
	c        *mpi.Comm
	o        Options
	states   stateTable
	fallback Reducer
}

func newRSGReducer(c *mpi.Comm, o Options) *rsgReducer {
	x := &rsgReducer{c: c, o: o}
	if s := c.Size(); s > 1 && s&(s-1) != 0 {
		x.fallback = &chainReducer{c: c, o: o}
	}
	return x
}

func (x *rsgReducer) Name() string { return "RSG" }

func (x *rsgReducer) Reduce(r *mpi.Rank, buf *gpu.Buffer, tag int) {
	// Collective entry: the reducer's shared per-rank state table and
	// the cross-rank traffic below are outside any one group, so a
	// batched segment serializes here (no-op in sequential mode).
	r.Proc.Exclusive()
	st := x.states.acquire(x.c.Size(), x.c.Rank(r))
	defer st.release()
	reduceScatterGather(x.c, r, buf, tag, x.o, st, x.fallback)
}
