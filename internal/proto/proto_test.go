package proto

import (
	"os"
	"path/filepath"
	"testing"

	"scaffe/internal/coll"
	"scaffe/internal/core"
)

func TestParseBasics(t *testing.T) {
	d, err := Parse(`
# a comment
net: "googlenet"
base_lr: 0.01     # trailing comment
max_iter: 100
repeated: 1
repeated: 2
flag: true
`)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.String("net", ""); got != "googlenet" {
		t.Errorf("net = %q", got)
	}
	if v, _ := d.Float("base_lr", 0); v != 0.01 {
		t.Errorf("base_lr = %v", v)
	}
	if v, _ := d.Int("max_iter", 0); v != 100 {
		t.Errorf("max_iter = %v", v)
	}
	if vs := d.Strings("repeated"); len(vs) != 2 || vs[0] != "1" || vs[1] != "2" {
		t.Errorf("repeated = %v", vs)
	}
	if v, _ := d.Int("repeated", 0); v != 2 {
		t.Errorf("last repeated = %v", v)
	}
	if b, _ := d.Bool("flag", false); !b {
		t.Error("flag should parse true")
	}
	if !d.Has("net") || d.Has("absent") {
		t.Error("Has is wrong")
	}
	if d.String("absent", "dflt") != "dflt" {
		t.Error("default fallthrough broken")
	}
}

func TestParseNestedBlocks(t *testing.T) {
	d, err := Parse(`
outer {
  inner {
    x: 5
  }
  y: "z"
}
top: 1
`)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := d.Int("outer.inner.x", 0); v != 5 {
		t.Errorf("nested x = %v", v)
	}
	if d.String("outer.y", "") != "z" {
		t.Error("nested y wrong")
	}
	keys := d.Keys()
	if len(keys) != 3 || keys[0] != "outer.inner.x" {
		t.Errorf("keys = %v", keys)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"}",
		"block {",
		"novalue:",
		"junk line",
		`s: "unterminated`,
		"two words {",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestTypeErrors(t *testing.T) {
	d, err := Parse("x: notanint\ny: notafloat\nz: notabool")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Int("x", 0); err == nil {
		t.Error("Int should fail")
	}
	if _, err := d.Float("y", 0); err == nil {
		t.Error("Float should fail")
	}
	if _, err := d.Bool("z", false); err == nil {
		t.Error("Bool should fail")
	}
}

const sampleSolver = `
# GoogLeNet at paper scale
net: "googlenet"
batch_size: 1280
max_iter: 40
base_lr: 0.01
lr_policy: "step"
gamma: 0.1
stepsize: 20
momentum: 0.9
weight_decay: 0.0002
scaffe_design: "scobr"
scaffe_reduce: "hr"
scaffe_chain_size: 8
scaffe_data: "imagedata"
scaffe_gpus: 160
scaffe_nodes: 12
scaffe_gpus_per_node: 16
`

func TestParseSolver(t *testing.T) {
	cfg, err := ParseSolver(sampleSolver)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Spec.Name != "googlenet" || cfg.GPUs != 160 || cfg.GlobalBatch != 1280 {
		t.Errorf("cfg = %+v", cfg)
	}
	if cfg.Design != core.SCOBR || cfg.Reduce != coll.Tuned || cfg.Source != core.ImageDataSource {
		t.Errorf("design/reduce/source wrong: %v %v %v", cfg.Design, cfg.Reduce, cfg.Source)
	}
	if cfg.LRPolicy != "step" || cfg.StepSize != 20 || cfg.Momentum != 0.9 {
		t.Errorf("solver hypers wrong")
	}
	if cfg.ReduceOpts.ChainSize != 8 || !cfg.ReduceOpts.OnGPU {
		t.Errorf("reduce opts wrong: %+v", cfg.ReduceOpts)
	}
}

func TestParseSolverDefaultsAndErrors(t *testing.T) {
	if _, err := ParseSolver("base_lr: 0.1"); err == nil {
		t.Error("solver without net should fail")
	}
	if _, err := ParseSolver(`net: "nosuchmodel"`); err == nil {
		t.Error("unknown model should fail")
	}
	for _, bad := range []string{
		`net: "tiny"` + "\n" + `scaffe_design: "magic"`,
		`net: "tiny"` + "\n" + `scaffe_reduce: "magic"`,
		`net: "tiny"` + "\n" + `scaffe_data: "magic"`,
		`net: "tiny"` + "\n" + `scaffe_scal: "diagonal"`,
	} {
		if _, err := ParseSolver(bad); err == nil {
			t.Errorf("ParseSolver(%q) should fail", bad)
		}
	}
	cfg, err := ParseSolver(`net: "tiny"`)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Design != core.SCOBR || cfg.GPUs != 16 || cfg.Iterations != 100 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
	weak, err := ParseSolver("net: \"tiny\"\nscaffe_scal: \"weak\"")
	if err != nil {
		t.Fatal(err)
	}
	if !weak.Weak {
		t.Error("weak scaling not set")
	}
}

func TestLoadSolverAndRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "solver.prototxt")
	text := `
net: "cifar10-quick"
batch_size: 64
max_iter: 3
scaffe_gpus: 4
scaffe_data: "lmdb"
scaffe_design: "scb"
scaffe_reduce: "binomial"
`
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadSolver(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.GPUs != 4 || res.Iterations != 3 {
		t.Errorf("run = %+v", res)
	}
	if _, err := LoadSolver(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestParseSolverBucketedDesign(t *testing.T) {
	cfg, err := ParseSolver(`net: "googlenet"
scaffe_design: "scobrf"
scaffe_bucket_bytes: 2097152`)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Design != core.SCOBRF {
		t.Errorf("design = %v, want SCOBRF", cfg.Design)
	}
	if cfg.BucketBytes != 2<<20 {
		t.Errorf("bucket bytes = %d, want 2MiB", cfg.BucketBytes)
	}
	// Without the field the knob stays zero; core's normalization
	// supplies SC-OBR-F's 4MiB default at run time.
	plain, err := ParseSolver(`net: "googlenet"
scaffe_design: "scobrf"`)
	if err != nil {
		t.Fatal(err)
	}
	if plain.BucketBytes != 0 {
		t.Errorf("bucket bytes = %d, want 0 before normalization", plain.BucketBytes)
	}
}
