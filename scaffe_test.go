package scaffe

import (
	"testing"

	"scaffe/internal/sim"
)

func TestModelRegistry(t *testing.T) {
	for _, name := range []string{"lenet", "cifar10-quick", "alexnet", "caffenet", "googlenet", "tiny"} {
		spec, err := Model(name)
		if err != nil {
			t.Fatalf("Model(%s): %v", name, err)
		}
		if spec.TotalParams() <= 0 {
			t.Errorf("%s has no parameters", name)
		}
	}
	if _, err := Model("bogus"); err == nil {
		t.Error("unknown model should error")
	}
}

func TestMustModelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustModel should panic on unknown model")
		}
	}()
	MustModel("bogus")
}

func TestRealNetBuilder(t *testing.T) {
	for _, name := range []string{"lenet", "cifar10-quick", "tiny"} {
		b, err := RealNetBuilder(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		net := b(2, 1)
		if net.TotalParams() <= 0 {
			t.Errorf("%s built an empty net", name)
		}
	}
	if _, err := RealNetBuilder("googlenet"); err == nil {
		t.Error("googlenet should be timing-only")
	}
}

func TestSyntheticDatasets(t *testing.T) {
	for _, name := range []string{"lenet", "cifar10-quick", "tiny", "alexnet", "googlenet"} {
		ds, err := SyntheticDataset(name, 16, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ds.Len() != 16 {
			t.Errorf("%s dataset len = %d", name, ds.Len())
		}
	}
	if _, err := SyntheticDataset("bogus", 4, 1); err == nil {
		t.Error("unknown dataset should error")
	}
}

func TestTrainEndToEnd(t *testing.T) {
	res, err := Train(Config{
		Spec:        MustModel("cifar10-quick"),
		GPUs:        8,
		GlobalBatch: 64,
		Iterations:  3,
		Design:      SCOBR,
		Reduce:      ReduceHR,
		Source:      ImageData,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SamplesPerSec <= 0 || res.TotalTime <= 0 {
		t.Errorf("degenerate result: %+v", res)
	}
}

func TestTrainRealMode(t *testing.T) {
	builder, err := RealNetBuilder("tiny")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := SyntheticDataset("tiny", 1024, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Train(Config{
		Spec:        MustModel("tiny"),
		RealNet:     builder,
		Dataset:     ds,
		GPUs:        2,
		GlobalBatch: 16,
		Iterations:  4,
		Design:      SCB,
		Reduce:      ReduceBinomial,
		Source:      InMemory,
		Seed:        5,
		BaseLR:      0.05,

		CaptureFinalParams: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Losses) != 4 || len(res.FinalParams) == 0 {
		t.Errorf("real mode produced losses=%d params=%d", len(res.Losses), len(res.FinalParams))
	}
}

func TestReduceBenchOrdering(t *testing.T) {
	run := func(alg ReduceAlgorithm) sim.Duration {
		lat, err := ReduceBench(ReduceBenchConfig{
			Ranks: 32, Bytes: 32 << 20, Algorithm: alg, Trials: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return lat
	}
	hr := run(ReduceHR)
	mv2 := run(ReduceMV2)
	ompi := run(ReduceOpenMPI)
	if !(hr < mv2 && mv2 < ompi) {
		t.Errorf("expected HR < MV2 < OpenMPI, got %v, %v, %v", hr, mv2, ompi)
	}
}

func TestReduceBenchValidation(t *testing.T) {
	if _, err := ReduceBench(ReduceBenchConfig{Ranks: 0, Bytes: 1024, Algorithm: ReduceHR}); err == nil {
		t.Error("zero ranks should error")
	}
}

func TestReduceBenchDeterministic(t *testing.T) {
	cfg := ReduceBenchConfig{Ranks: 16, Bytes: 8 << 20, Algorithm: ReduceCB}
	a, err := ReduceBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReduceBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("non-deterministic bench: %v vs %v", a, b)
	}
}

func TestReduceBenchSingleRank(t *testing.T) {
	lat, err := ReduceBench(ReduceBenchConfig{Ranks: 1, Bytes: 1 << 20, Algorithm: ReduceHR})
	if err != nil {
		t.Fatal(err)
	}
	if lat < 0 {
		t.Errorf("negative latency %v", lat)
	}
}

func TestIbcastOverlapBench(t *testing.T) {
	res, err := IbcastOverlapBench(16, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Overlap < 0.5 {
		t.Errorf("offloaded Ibcast hid only %.0f%% of an 8MB broadcast; expected substantial overlap", res.Overlap*100)
	}
	if res.OverlappedTime >= res.BlockingTime+res.ComputeTime {
		t.Error("overlapped run should beat the serialized sum")
	}
	if _, err := IbcastOverlapBench(1, 1024); err == nil {
		t.Error("single-rank overlap bench should error")
	}
}

func TestRabenseifnerViaPublicAPI(t *testing.T) {
	lat, err := ReduceBench(ReduceBenchConfig{Ranks: 16, Bytes: 16 << 20, Algorithm: ReduceRabenseifner, Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	bin, err := ReduceBench(ReduceBenchConfig{Ranks: 16, Bytes: 16 << 20, Algorithm: ReduceBinomial, Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	if lat >= bin {
		t.Errorf("Rabenseifner (%v) should beat binomial (%v) at 16MB", lat, bin)
	}
}
