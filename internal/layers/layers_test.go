package layers

import (
	"math"
	"math/rand"
	"testing"

	"scaffe/internal/tensor"
)

// gradCheck verifies a layer's input gradient against central finite
// differences, using L = Σ w_i·out_i as the scalar loss (w random).
func gradCheck(t *testing.T, l Layer, in Shape, batch int) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	l.Setup(in, batch, rng)
	x := tensor.New(batch, in.C, in.H, in.W)
	for i := range x.Data {
		x.Data[i] = rng.Float32()*2 - 1
	}
	out := l.Forward(x)
	w := make([]float32, out.Len())
	for i := range w {
		w[i] = rng.Float32()*2 - 1
	}
	loss := func(o *tensor.Tensor) float64 {
		var s float64
		for i, v := range o.Data {
			s += float64(w[i]) * float64(v)
		}
		return s
	}
	gradOut := tensor.FromSlice(w, out.Dims...)
	gradIn := l.Backward(gradOut)

	const eps = 1e-2
	checked := 0
	for i := 0; i < x.Len(); i += 1 + x.Len()/64 { // sample positions
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp := loss(l.Forward(x))
		x.Data[i] = orig - eps
		lm := loss(l.Forward(x))
		x.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		ana := float64(gradIn.Data[i])
		if math.Abs(num-ana) > 2e-2*(1+math.Abs(num)) {
			t.Fatalf("%s input grad [%d]: numeric %g vs analytic %g", l.Name(), i, num, ana)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("gradient check sampled no positions")
	}
	// Restore forward state for callers that also check params.
	l.Forward(x)
}

// paramGradCheck verifies parameter gradients similarly.
func paramGradCheck(t *testing.T, l Layer, in Shape, batch int) {
	t.Helper()
	rng := rand.New(rand.NewSource(43))
	l.Setup(in, batch, rng)
	x := tensor.New(batch, in.C, in.H, in.W)
	for i := range x.Data {
		x.Data[i] = rng.Float32()*2 - 1
	}
	out := l.Forward(x)
	w := make([]float32, out.Len())
	for i := range w {
		w[i] = rng.Float32()*2 - 1
	}
	loss := func() float64 {
		o := l.Forward(x)
		var s float64
		for i, v := range o.Data {
			s += float64(w[i]) * float64(v)
		}
		return s
	}
	for _, g := range l.Grads() {
		g.Zero()
	}
	l.Forward(x)
	l.Backward(tensor.FromSlice(w, out.Dims...))

	const eps = 1e-2
	for pi, p := range l.Params() {
		g := l.Grads()[pi]
		for i := 0; i < p.Len(); i += 1 + p.Len()/32 {
			orig := p.Data[i]
			p.Data[i] = orig + eps
			lp := loss()
			p.Data[i] = orig - eps
			lm := loss()
			p.Data[i] = orig
			num := (lp - lm) / (2 * eps)
			ana := float64(g.Data[i])
			if math.Abs(num-ana) > 3e-2*(1+math.Abs(num)) {
				t.Fatalf("%s param %d grad [%d]: numeric %g vs analytic %g", l.Name(), pi, i, num, ana)
			}
		}
	}
}

func TestConvGradients(t *testing.T) {
	in := Shape{C: 2, H: 6, W: 6}
	gradCheck(t, NewConv("conv", 3, 3, 1, 1), in, 2)
	paramGradCheck(t, NewConv("conv", 3, 3, 1, 1), in, 2)
}

func TestConvStridedGradients(t *testing.T) {
	in := Shape{C: 2, H: 7, W: 7}
	gradCheck(t, NewConv("conv", 2, 3, 2, 0), in, 2)
	paramGradCheck(t, NewConv("conv", 2, 3, 2, 0), in, 2)
}

func TestInnerProductGradients(t *testing.T) {
	in := Shape{C: 3, H: 4, W: 4}
	gradCheck(t, NewInnerProduct("ip", 7), in, 3)
	paramGradCheck(t, NewInnerProduct("ip", 7), in, 3)
}

func TestReLUGradients(t *testing.T) {
	gradCheck(t, NewReLU("relu"), Shape{C: 2, H: 5, W: 5}, 2)
}

func TestMaxPoolGradients(t *testing.T) {
	gradCheck(t, NewMaxPool("pool", 2, 2), Shape{C: 2, H: 6, W: 6}, 2)
}

func TestAvgPoolGradients(t *testing.T) {
	gradCheck(t, NewAvgPool("pool", 3, 2), Shape{C: 2, H: 7, W: 7}, 2)
}

func TestLRNGradients(t *testing.T) {
	gradCheck(t, NewLRN("lrn", 5, 1e-2, 0.75), Shape{C: 8, H: 3, W: 3}, 2)
}

func TestConvShapeAndParams(t *testing.T) {
	c := NewConv("conv1", 96, 11, 4, 0)
	in := Shape{C: 3, H: 227, W: 227}
	out := c.OutShape(in)
	if out.C != 96 || out.H != 55 || out.W != 55 {
		t.Errorf("AlexNet conv1 out = %v, want 96x55x55", out)
	}
	if p := c.ParamElems(in); p != 96*3*121+96 {
		t.Errorf("conv1 params = %d, want 34944", p)
	}
	if f := c.FwdFLOPs(in); f != 2*float64(96*55*55)*float64(3*121) {
		t.Errorf("conv1 fwd FLOPs = %g", f)
	}
}

func TestPoolCeilMode(t *testing.T) {
	p := NewMaxPool("pool1", 3, 2)
	out := p.OutShape(Shape{C: 32, H: 32, W: 32})
	if out.H != 16 || out.W != 16 {
		t.Errorf("ceil-mode 3/2 pool of 32 = %v, want 16x16", out)
	}
}

func TestDropoutSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDropout("drop", 0.5)
	in := Shape{C: 1, H: 32, W: 32}
	d.Setup(in, 4, rng)
	x := tensor.New(4, 1, 32, 32)
	x.Fill(1)
	out := d.Forward(x)
	zeros, twos := 0, 0
	for _, v := range out.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			twos++
		default:
			t.Fatalf("dropout output %v not in {0, 2}", v)
		}
	}
	frac := float64(zeros) / float64(zeros+twos)
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("drop fraction = %v, want ~0.5", frac)
	}
	// Backward gates by the same mask.
	g := tensor.New(4, 1, 32, 32)
	g.Fill(1)
	gi := d.Backward(g)
	for i, v := range gi.Data {
		if (out.Data[i] == 0) != (v == 0) {
			t.Fatal("dropout backward mask mismatch")
		}
	}
}

func TestSoftmaxLossDecreasesWithConfidence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewSoftmaxLoss("loss")
	in := Shape{C: 3, H: 1, W: 1}
	l.Setup(in, 2, rng)
	l.SetLabels([]int{0, 2})
	weak := tensor.FromSlice([]float32{0.1, 0, 0, 0, 0, 0.1}, 2, 3, 1, 1)
	l.Forward(weak)
	weakLoss := l.Loss()
	strong := tensor.FromSlice([]float32{5, 0, 0, 0, 0, 5}, 2, 3, 1, 1)
	l.Forward(strong)
	if l.Loss() >= weakLoss {
		t.Errorf("confident logits loss %v >= weak loss %v", l.Loss(), weakLoss)
	}
}

func TestNetForwardBackwardAndPacking(t *testing.T) {
	net := NewNet("t", Shape{C: 1, H: 6, W: 6}, 2, 1,
		NewConv("c1", 2, 3, 1, 1),
		NewReLU("r1"),
		NewInnerProduct("ip", 3),
		NewSoftmaxLoss("loss"),
	)
	x := tensor.New(2, 1, 6, 6)
	rng := rand.New(rand.NewSource(2))
	for i := range x.Data {
		x.Data[i] = rng.Float32()
	}
	loss := net.Forward(x, []int{0, 2})
	if loss <= 0 {
		t.Fatalf("loss = %v", loss)
	}
	net.Backward()

	total := net.TotalParams()
	want := (2*1*9 + 2) + (3*2*36 + 3)
	if total != want {
		t.Fatalf("TotalParams = %d, want %d", total, want)
	}
	packed := net.PackParams(nil)
	if len(packed) != total {
		t.Fatalf("packed len = %d", len(packed))
	}
	// Round-trip.
	mod := append([]float32(nil), packed...)
	for i := range mod {
		mod[i] += 1
	}
	net.UnpackParams(mod)
	again := net.PackParams(nil)
	for i := range again {
		if again[i] != mod[i] {
			t.Fatal("param pack/unpack round trip failed")
		}
	}
	grads := net.PackGrads(nil)
	if len(grads) != total {
		t.Fatalf("packed grads len = %d", len(grads))
	}
	net.UnpackGrads(grads)

	if got := net.ParamLayers(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("ParamLayers = %v", got)
	}
	if s := net.Summary(); len(s) == 0 {
		t.Error("empty summary")
	}
}

func TestNetSeedDeterminism(t *testing.T) {
	a := NewNet("a", Shape{C: 1, H: 6, W: 6}, 1, 7, NewConv("c", 2, 3, 1, 1), NewSoftmaxLoss("l"))
	b := NewNet("b", Shape{C: 1, H: 6, W: 6}, 1, 7, NewConv("c", 2, 3, 1, 1), NewSoftmaxLoss("l"))
	pa := a.PackParams(nil)
	pb := b.PackParams(nil)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("same seed produced different parameters")
		}
	}
	c := NewNet("c", Shape{C: 1, H: 6, W: 6}, 1, 8, NewConv("c", 2, 3, 1, 1), NewSoftmaxLoss("l"))
	pc := c.PackParams(nil)
	same := true
	for i := range pa {
		if pa[i] != pc[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical parameters")
	}
}

func TestNetRequiresLossLayer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("net without SoftmaxLoss should panic")
		}
	}()
	NewNet("bad", Shape{C: 1, H: 4, W: 4}, 1, 1, NewReLU("r"))
}

func TestLayerKinds(t *testing.T) {
	in := Shape{C: 2, H: 4, W: 4}
	kinds := map[Layer]string{
		NewConv("c", 2, 3, 1, 1):   "Convolution",
		NewReLU("r"):               "ReLU",
		NewMaxPool("p", 2, 2):      "Pooling",
		NewInnerProduct("i", 3):    "InnerProduct",
		NewLRN("n", 5, 1e-4, 0.75): "LRN",
		NewDropout("d", 0.5):       "Dropout",
		NewSoftmaxLoss("s"):        "SoftmaxWithLoss",
	}
	for l, want := range kinds {
		if l.Kind() != want {
			t.Errorf("%s kind = %q, want %q", l.Name(), l.Kind(), want)
		}
		if l.OutShape(in).Elems() <= 0 {
			t.Errorf("%s has empty out shape", l.Name())
		}
	}
}

func TestShapeString(t *testing.T) {
	if (Shape{3, 224, 224}).String() != "3x224x224" {
		t.Error("shape string wrong")
	}
}

func TestGroupedConvGradients(t *testing.T) {
	in := Shape{C: 4, H: 6, W: 6}
	gradCheck(t, NewConvGroups("gconv", 4, 3, 1, 1, 2), in, 2)
	paramGradCheck(t, NewConvGroups("gconv", 4, 3, 1, 1, 2), in, 2)
}

func TestGroupedConvMatchesAlexNetGeometry(t *testing.T) {
	// conv2 of AlexNet: 96 -> 256 channels, 5x5 pad 2, 2 groups.
	c := NewConvGroups("conv2", 256, 5, 1, 2, 2)
	in := Shape{C: 96, H: 27, W: 27}
	if p := c.ParamElems(in); p != 256*48*25+256 {
		t.Errorf("grouped conv2 params = %d, want 307456", p)
	}
	out := c.OutShape(in)
	if out.C != 256 || out.H != 27 || out.W != 27 {
		t.Errorf("conv2 out = %v", out)
	}
}

func TestGroupedConvEqualsTwoIndependentConvs(t *testing.T) {
	// A 2-group conv must equal two half-width convs run on the
	// channel halves with the corresponding weight halves.
	rng := rand.New(rand.NewSource(9))
	in := Shape{C: 4, H: 5, W: 5}
	g := NewConvGroups("g", 6, 3, 1, 1, 2)
	g.Setup(in, 1, rand.New(rand.NewSource(1)))
	x := tensor.New(1, 4, 5, 5)
	for i := range x.Data {
		x.Data[i] = rng.Float32()*2 - 1
	}
	got := g.Forward(x)

	half := Shape{C: 2, H: 5, W: 5}
	for grp := 0; grp < 2; grp++ {
		sub := NewConv("sub", 3, 3, 1, 1)
		sub.Setup(half, 1, rand.New(rand.NewSource(2)))
		// Copy the group's weights/bias into the sub-conv.
		k := 2 * 9
		copy(sub.weights.Data, g.weights.Data[grp*3*k:(grp+1)*3*k])
		copy(sub.bias.Data, g.bias.Data[grp*3:(grp+1)*3])
		xs := tensor.New(1, 2, 5, 5)
		copy(xs.Data, x.Data[grp*2*25:(grp+1)*2*25])
		want := sub.Forward(xs)
		for i := 0; i < 3*25; i++ {
			if d := got.Data[grp*3*25+i] - want.Data[i]; d > 1e-5 || d < -1e-5 {
				t.Fatalf("group %d output %d differs by %v", grp, i, d)
			}
		}
	}
}

func TestGroupedConvValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out channels not divisible by groups should panic")
		}
	}()
	NewConvGroups("bad", 5, 3, 1, 1, 2)
}

func TestGroupedConvInputValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("in channels not divisible by groups should panic")
		}
	}()
	NewConvGroups("bad", 4, 3, 1, 1, 2).Setup(Shape{C: 3, H: 4, W: 4}, 1, rand.New(rand.NewSource(1)))
}
