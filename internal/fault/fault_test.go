package fault

import (
	"strings"
	"testing"

	"scaffe/internal/sim"
)

func TestParseSchedule(t *testing.T) {
	text := `
# comment, then a blank line

5ms crash rank=3
10ms straggle rank=1 factor=4
12ms recover rank=1
20ms degrade node=0 factor=2.5 for=3ms
30ms stall rank=2 for=1ms
40ms snapfail for=2ms
50ms hang rank=0
60ms bitflip rank=1 word=128 bit=30
70ms corrupt-wire src=3 dst=0 n=2
`
	sched, err := ParseSchedule(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 9 {
		t.Fatalf("parsed %d events, want 9", len(sched))
	}
	if sched[0].Kind != Crash || sched[0].Rank != 3 || sched[0].At != 5*sim.Time(sim.Millisecond) {
		t.Errorf("event 0 = %+v", sched[0])
	}
	if sched[1].Kind != StragglerOn || sched[1].Factor != 4 {
		t.Errorf("event 1 = %+v", sched[1])
	}
	if sched[3].Kind != LinkDegrade || sched[3].Node != 0 || sched[3].For != 3*sim.Millisecond {
		t.Errorf("event 3 = %+v", sched[3])
	}
	if ev := sched[7]; ev.Kind != BitFlip || ev.Rank != 1 || ev.Word != 128 || ev.Bit != 30 {
		t.Errorf("event 7 = %+v", ev)
	}
	if ev := sched[8]; ev.Kind != CorruptWire || ev.Src != 3 || ev.Dst != 0 || ev.N != 2 {
		t.Errorf("event 8 = %+v", ev)
	}
	if err := sched.Validate(4, 2); err != nil {
		t.Errorf("validate: %v", err)
	}
}

// TestParseScheduleRejectsDuplicates pins the ambiguity rule: two
// rank-targeted events sharing (rank, time) are rejected with both
// source lines named; distinct ranks, distinct times, and non-rank
// events at the same instant remain fine.
func TestParseScheduleRejectsDuplicates(t *testing.T) {
	cases := []struct {
		name, text string
		wantErr    string // empty = must parse
	}{
		{
			name:    "same kind same rank same time",
			text:    "5ms stall rank=2 for=1ms\n5ms stall rank=2 for=2ms",
			wantErr: "duplicate event for rank 2",
		},
		{
			name:    "different kinds same rank same time",
			text:    "10ms straggle rank=1 factor=4\n# comment between\n10ms crash rank=1",
			wantErr: "duplicate event for rank 1",
		},
		{
			name: "same time different ranks",
			text: "5ms crash rank=1\n5ms crash rank=2",
		},
		{
			name: "same rank different times",
			text: "5ms straggle rank=1 factor=2\n6ms recover rank=1",
		},
		{
			name: "rankless events may share an instant",
			text: "5ms snapfail for=1ms\n5ms degrade node=0 factor=2 for=1ms\n5ms corrupt-wire src=0 dst=1 n=1\n5ms corrupt-wire src=0 dst=1 n=2",
		},
	}
	for _, tc := range cases {
		sched, err := ParseSchedule(tc.text)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error: %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: parsed %d events, want error containing %q", tc.name, len(sched), tc.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.wantErr)
		}
		// The diagnostic must point at both conflicting lines.
		if !strings.Contains(err.Error(), "line") || !strings.Contains(err.Error(), "conflicts with line") {
			t.Errorf("%s: error %q does not name both lines", tc.name, err)
		}
	}
}

func TestParseScheduleErrors(t *testing.T) {
	cases := []struct{ name, text, want string }{
		{"bad kind", "1ms explode rank=0", "unknown event"},
		{"bad time", "abc crash rank=0", "time"},
		{"missing rank", "1ms crash", "needs rank"},
		{"bad kv", "1ms crash rank", "key=value"},
		{"negative dur", "-1ms crash rank=0", "negative"},
		{"bitflip missing rank", "1ms bitflip word=0 bit=1", "needs rank"},
		{"corrupt-wire missing link", "1ms corrupt-wire n=1", "needs src"},
	}
	for _, tc := range cases {
		if _, err := ParseSchedule(tc.text); err == nil {
			t.Errorf("%s: no error", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateRanges(t *testing.T) {
	cases := []struct {
		name string
		ev   Event
	}{
		{"rank high", Event{Kind: Crash, Rank: 9}},
		{"rank negative", Event{Kind: Crash, Rank: -1}},
		{"node high", Event{Kind: LinkDegrade, Node: 5, Factor: 2, For: sim.Millisecond}},
		{"factor low", Event{Kind: StragglerOn, Rank: 0, Factor: 0.5}},
		{"window zero", Event{Kind: LinkDegrade, Node: 0, Factor: 2}},
		{"bitflip rank high", Event{Kind: BitFlip, Rank: 9, Bit: 1}},
		{"bitflip bit high", Event{Kind: BitFlip, Rank: 0, Bit: 32}},
		{"bitflip word negative", Event{Kind: BitFlip, Rank: 0, Bit: 1, Word: -1}},
		{"wire src high", Event{Kind: CorruptWire, Src: 9, Dst: 0, N: 1}},
		{"wire self link", Event{Kind: CorruptWire, Src: 1, Dst: 1, N: 1}},
		{"wire n zero", Event{Kind: CorruptWire, Src: 0, Dst: 1}},
	}
	for _, tc := range cases {
		if err := (Schedule{tc.ev}).Validate(4, 2); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

func TestTimeoutBackoffCapped(t *testing.T) {
	pl := NewPlane(sim.New(), 4, 0)
	if pl.Timeout(0) != DefaultTimeout {
		t.Errorf("base timeout = %v", pl.Timeout(0))
	}
	if pl.Timeout(2) != DefaultTimeout<<2 {
		t.Errorf("attempt 2 = %v", pl.Timeout(2))
	}
	if pl.Timeout(50) != DefaultTimeout<<maxBackoffShift {
		t.Errorf("cap = %v", pl.Timeout(50))
	}
}

func TestLinkFactorWindows(t *testing.T) {
	k := sim.New()
	pl := NewPlane(k, 2, 0)
	pl.Arm(Schedule{
		{At: 10, Kind: LinkDegrade, Node: 0, Factor: 3, For: 5, Rank: -1},
		{At: 12, Kind: LinkDegrade, Node: 0, Factor: 2, For: 20, Rank: -1},
	}, nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if f := pl.LinkFactor(11, 0, 1); f != 3 {
		t.Errorf("overlap max = %v, want 3", f)
	}
	if f := pl.LinkFactor(20, 0, 1); f != 2 {
		t.Errorf("second window = %v, want 2", f)
	}
	if f := pl.LinkFactor(11, 1, 0); f != 1 {
		t.Errorf("other node = %v, want 1", f)
	}
	if f := pl.LinkFactor(40, 0, 1); f != 1 {
		t.Errorf("expired = %v, want 1", f)
	}
}
