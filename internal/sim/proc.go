package sim

// Proc is a simulated process: a goroutine scheduled cooperatively by
// the kernel. At most one proc runs at any instant, so proc code may
// touch shared simulation state without locks.
type Proc struct {
	k        *Kernel
	name     string
	wake     chan struct{}
	yield    chan struct{}
	finished bool
}

// Name returns the name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// park yields control to the kernel and blocks until some event
// resumes this proc.
func (p *Proc) park() {
	p.yield <- struct{}{}
	<-p.wake
}

// Sleep advances this proc's virtual time by d, allowing other events
// to run in between.
func (p *Proc) Sleep(d Duration) {
	if d <= 0 {
		p.Yield()
		return
	}
	p.k.wakeAt(p, p.k.now+d)
	p.park()
}

// WaitUntil blocks until virtual time t (no-op if t is in the past,
// beyond a yield).
func (p *Proc) WaitUntil(t Time) {
	p.k.wakeAt(p, t)
	p.park()
}

// Yield gives other events scheduled for the current instant a chance
// to run before this proc continues.
func (p *Proc) Yield() {
	p.k.wakeAt(p, p.k.now)
	p.park()
}

// Wait blocks until c fires. If c has already fired it returns
// immediately without yielding.
func (p *Proc) Wait(c *Completion) {
	if c.fired {
		return
	}
	c.waiters = append(c.waiters, p)
	p.park()
}

// WaitAll blocks until every completion in cs has fired.
func (p *Proc) WaitAll(cs ...*Completion) {
	for _, c := range cs {
		p.Wait(c)
	}
}
