package tensor

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// refGemm is the independent reference the blocked kernel is checked
// against: a per-element loop with no tiling, packing, or parallelism,
// accumulating each C element in ascending-p float32 order (the
// package's documented rounding contract). NN/TN fold alpha into each
// term; NT/TT accumulate the dot product first and scale once —
// matching the contract per trans case.
func refGemm(transA, transB bool, m, n, k int, alpha float32, a, b []float32, beta float32, c []float32) {
	at := func(i, p int) float32 {
		if transA {
			return a[p*m+i]
		}
		return a[i*k+p]
	}
	bt := func(p, j int) float32 {
		if transB {
			return b[j*k+p]
		}
		return b[p*n+j]
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var v float32
			if beta != 0 {
				v = beta * c[i*n+j]
			}
			if !transB {
				for p := 0; p < k; p++ {
					v += (alpha * at(i, p)) * bt(p, j)
				}
			} else {
				var acc float32
				for p := 0; p < k; p++ {
					acc += at(i, p) * bt(p, j)
				}
				v += alpha * acc
			}
			c[i*n+j] = v
		}
	}
}

func randSlice(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = rng.Float32()*2 - 1
	}
	return s
}

// TestGemmMatchesReference property-tests the blocked kernel against
// refGemm across trans flags, ragged shapes (crossing the row-tile and
// packed-panel boundaries), and alpha/beta values. Equality is exact:
// the blocked kernel must preserve per-element rounding.
func TestGemmMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := [][3]int{
		{1, 1, 1}, {3, 5, 7}, {4, 4, 4}, {5, 9, 3}, {7, 513, 11},
		{8, 512, 16}, {9, 1025, 5}, {13, 130, 33}, {64, 65, 40},
		{66, 700, 12}, {127, 64, 65}, {130, 33, 129},
	}
	coeffs := []float32{0, 1, 0.5, -2}
	for _, sh := range shapes {
		m, n, k := sh[0], sh[1], sh[2]
		for _, transA := range []bool{false, true} {
			for _, transB := range []bool{false, true} {
				alpha := coeffs[rng.Intn(len(coeffs))]
				beta := coeffs[rng.Intn(len(coeffs))]
				a := randSlice(rng, m*k)
				b := randSlice(rng, k*n)
				c0 := randSlice(rng, m*n)
				got := append([]float32(nil), c0...)
				want := append([]float32(nil), c0...)
				Gemm(transA, transB, m, n, k, alpha, a, b, beta, got)
				refGemm(transA, transB, m, n, k, alpha, a, b, beta, want)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("Gemm(tA=%v tB=%v m=%d n=%d k=%d α=%g β=%g): c[%d] = %g, reference %g",
							transA, transB, m, n, k, alpha, beta, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestGemmDeterministicAcrossGOMAXPROCS pins the determinism contract:
// the same multiply must produce bit-identical output at any worker
// count, because every C element is accumulated by exactly one worker
// in a fixed order.
func TestGemmDeterministicAcrossGOMAXPROCS(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const m, n, k = 96, 550, 147 // above the parallel threshold, ragged tiles
	a := randSlice(rng, m*k)
	b := randSlice(rng, k*n)
	for _, transB := range []bool{false, true} {
		bb := b
		if transB {
			bb = randSlice(rng, n*k)
		}
		serial := make([]float32, m*n)
		prev := runtime.GOMAXPROCS(1)
		Gemm(false, transB, m, n, k, 1, a, bb, 0, serial)
		runtime.GOMAXPROCS(prev)
		for _, procs := range []int{2, 4, runtime.NumCPU()} {
			par := make([]float32, m*n)
			prev := runtime.GOMAXPROCS(procs)
			Gemm(false, transB, m, n, k, 1, a, bb, 0, par)
			runtime.GOMAXPROCS(prev)
			for i := range serial {
				if math.Float32bits(serial[i]) != math.Float32bits(par[i]) {
					t.Fatalf("transB=%v GOMAXPROCS=%d: c[%d] = %x, serial %x",
						transB, procs, i, math.Float32bits(par[i]), math.Float32bits(serial[i]))
				}
			}
		}
	}
}

// TestGemvMatchesReference checks the dedicated matrix-vector path
// against plain loops, including shapes past the old Gemm parallel
// threshold where the fan-out used to engage.
func TestGemvMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	shapes := [][2]int{{1, 1}, {3, 7}, {64, 64}, {300, 129}, {5000, 37}}
	for _, sh := range shapes {
		m, k := sh[0], sh[1]
		a := randSlice(rng, m*k)
		for _, alpha := range []float32{1, 0.5} {
			for _, beta := range []float32{0, 1, -2} {
				x := randSlice(rng, k)
				y0 := randSlice(rng, m)
				got := append([]float32(nil), y0...)
				Gemv(false, m, k, alpha, a, x, beta, got)
				for i := 0; i < m; i++ {
					var acc float32
					for p := 0; p < k; p++ {
						acc += a[i*k+p] * x[p]
					}
					want := alpha * acc
					if beta != 0 {
						want = beta*y0[i] + alpha*acc
					}
					if got[i] != want {
						t.Fatalf("Gemv(m=%d k=%d α=%g β=%g): y[%d] = %g, want %g", m, k, alpha, beta, i, got[i], want)
					}
				}

				xt := randSlice(rng, m)
				yt0 := randSlice(rng, k)
				gotT := append([]float32(nil), yt0...)
				Gemv(true, m, k, alpha, a, xt, beta, gotT)
				wantT := make([]float32, k)
				for i := range wantT {
					if beta != 0 {
						wantT[i] = beta * yt0[i]
					}
				}
				for p := 0; p < m; p++ {
					s := alpha * xt[p]
					if s == 0 {
						continue
					}
					for i := 0; i < k; i++ {
						wantT[i] += s * a[p*k+i]
					}
				}
				for i := range wantT {
					if gotT[i] != wantT[i] {
						t.Fatalf("Gemv^T(m=%d k=%d α=%g β=%g): y[%d] = %g, want %g", m, k, alpha, beta, i, gotT[i], wantT[i])
					}
				}
			}
		}
	}
}

// TestGetScratchReuse checks the workspace pool's contract: capacity
// grows to the requested size and buffers round-trip through the pool.
func TestGetScratchReuse(t *testing.T) {
	p := GetScratch(100)
	if len(*p) != 100 {
		t.Fatalf("GetScratch(100) gave len %d", len(*p))
	}
	PutScratch(p)
	q := GetScratch(10)
	if len(*q) != 10 {
		t.Fatalf("GetScratch(10) gave len %d", len(*q))
	}
	PutScratch(q)
}
