package mpi

import (
	"scaffe/internal/fault"
	"scaffe/internal/sim"
)

// This file is the mpi side of the lossy-wire fault family: the
// mechanics of dropping, duplicating, stashing (reorder), and holding
// (delay) payload landings whose fates the fault plane decides. The
// hooks live at the two landing sites — delivery.RunEvent (every
// point-to-point transfer, which also carries reducer traffic,
// barriers, and join handshakes) and bcastEdge.RunEvent (every
// broadcast tree edge) — so every collective sees the same hostile
// fabric with no per-algorithm code.
//
// Everything here runs in kernel context behind the WireArmed gate:
// fault-free runs and runs with only rank-level faults never reach it.

// linkKey identifies one directed link by world rank.
type linkKey struct {
	src, dst int
}

// heldRec is a stashed landing: a scheduled-record payload
// (delivery or bcastEdge) pulled out of the event stream by a reorder
// verdict, waiting for the next landing on its link to pass it.
type heldRec = sim.Runnable

// perturbDelivery decides and applies the wire fate of one
// point-to-point landing, reporting whether the caller should land it
// now. Any stashed landing on the link is released first (behind the
// current one — that is the swap), so a stash can never starve even
// when its follow-up is itself dropped or held.
//
//scaffe:coldpath wire perturbation runs only while a drop/dup/reorder/delay/partition is armed (gated by WireArmed)
func (w *World) perturbDelivery(d *delivery, now sim.Time) bool {
	key := linkKey{src: d.sender.ID, dst: d.recv.ID}
	w.releaseHeld(key, now)
	verdict, hold := w.Fault.WireFate(key.src, key.dst, now)
	switch verdict {
	case fault.WireDrop:
		w.putDelivery(d)
		return false
	case fault.WireHold:
		d.replay = true
		w.K.AtRun(now+hold, d)
		return false
	case fault.WireSwap:
		d.replay = true
		w.stashHeld(key, d, now)
		return false
	case fault.WireDup:
		g := w.getDelivery()
		*g = *d
		g.ghost = true
		w.K.AtRun(now, g) // lands after this event, before any waiter resumes
	}
	return true
}

// perturbEdge is perturbDelivery for broadcast tree edges.
//
//scaffe:coldpath wire perturbation runs only while a drop/dup/reorder/delay/partition is armed (gated by WireArmed)
func (w *World) perturbEdge(e *bcastEdge, now sim.Time) bool {
	from, to := e.op.c.rankAt(e.parent), e.op.c.rankAt(e.child)
	key := linkKey{src: from.ID, dst: to.ID}
	w.releaseHeld(key, now)
	verdict, hold := w.Fault.WireFate(key.src, key.dst, now)
	switch verdict {
	case fault.WireDrop:
		// The edge never commits: the subtree below it starves, its
		// waiters ride the deadline ladder, and the plane's loss-aware
		// escalation revokes the communicator. The op record stays in
		// the match table until the recovery's epoch bump clears it.
		w.putBcastEdge(e)
		return false
	case fault.WireHold:
		e.replay = true
		w.K.AtRun(now+hold, e)
		return false
	case fault.WireSwap:
		e.replay = true
		w.stashHeld(key, e, now)
		return false
	case fault.WireDup:
		g := w.getBcastEdge()
		*g = *e
		g.ghost = true
		g.ghostKey = e.op.key
		w.K.AtRun(now, g)
	}
	return true
}

// releaseHeld flushes the link's stashed landing, if any, back into
// the event stream at the current instant — scheduled after the event
// being processed, which completes the reorder swap.
func (w *World) releaseHeld(key linkKey, now sim.Time) {
	rec, ok := w.held[key]
	if !ok {
		return
	}
	delete(w.held, key)
	w.K.AtRun(now, rec)
}

// stashHeld parks one landing on its link and arms the failsafe: if no
// follow-up landing releases the stash within the plane's reorder
// failsafe window (the deadline ladder's plateau), it flushes itself,
// so a reordered link can never wedge a run. A link holds at most one
// stash — a second swap verdict on the same link releases the first.
func (w *World) stashHeld(key linkKey, rec heldRec, now sim.Time) {
	if w.held == nil {
		w.held = make(map[linkKey]heldRec)
	}
	if prev, ok := w.held[key]; ok {
		w.K.AtRun(now, prev)
	}
	w.held[key] = rec
	w.K.At(now+w.Fault.ReorderFailsafe(), func() {
		if w.held[key] == rec {
			delete(w.held, key)
			w.K.AtRun(w.K.Now(), rec)
		}
	})
}
