package core

import (
	"scaffe/internal/gpu"
	"scaffe/internal/mpi"
	"scaffe/internal/solver"
	"scaffe/internal/topology"
)

// Model parallelism (the MPI-Caffe row of Table 1): layers are
// partitioned across ranks by balanced FLOPs; the whole batch flows
// through the pipeline stage by stage. No parameter broadcast and no
// gradient aggregation exist — each rank owns its layers — but every
// stage waits for its upstream neighbour, which is why Section 3.1
// argues the data-parallel approach scales better for these networks.

// mpPartition splits the spec's layers into `stages` contiguous groups
// with approximately equal forward+backward FLOPs.
func mpPartition(cfg *Config, stages int) [][2]int {
	n := len(cfg.Spec.Layers)
	if stages > n {
		stages = n
	}
	var total float64
	for _, l := range cfg.Spec.Layers {
		total += l.FwdFLOPs + l.BwdFLOPs
	}
	target := total / float64(stages)
	var parts [][2]int
	lo := 0
	var acc float64
	for i, l := range cfg.Spec.Layers {
		acc += l.FwdFLOPs + l.BwdFLOPs
		partsLeft := stages - len(parts) // including the one being built
		layersLeft := n - i - 1
		if partsLeft > 1 && layersLeft >= partsLeft-1 &&
			(acc >= target || layersLeft == partsLeft-1) {
			parts = append(parts, [2]int{lo, i})
			lo = i + 1
			acc = 0
		}
	}
	parts = append(parts, [2]int{lo, n - 1})
	return parts
}

// mpBoundaryBytes is the activation volume crossing the boundary after
// layer l for the given batch.
func mpBoundaryBytes(cfg *Config, l, batch int) int64 {
	return int64(cfg.Spec.Layers[l].OutElems) * 4 * int64(batch)
}

// runMP executes the model-parallel pipeline. Every rank processes the
// full global batch for its own layer range; stage outputs move to the
// next rank with CUDA-aware transfers.
func (st *runState) runMP(r *mpi.Rank) {
	cfg := st.cfg
	ph := &st.phases[r.ID]
	parts := mpPartition(cfg, cfg.GPUs)
	if r.ID >= len(parts) {
		return // more ranks than layers: surplus ranks idle
	}
	lo, hi := parts[r.ID][0], parts[r.ID][1]
	first := r.ID == 0
	last := r.ID == len(parts)-1
	batch := cfg.GlobalBatch

	var ownParams int
	for l := lo; l <= hi; l++ {
		ownParams += cfg.Spec.Layers[l].ParamElems
	}

	const tagFwd, tagBwd = 70, 71
	for it := cfg.StartIteration; it < cfg.Iterations; it++ {
		if first {
			st.dataWait(r, st.wl[r.ID], ph, it)
		}
		// Forward: receive upstream activations, compute my stage,
		// forward downstream.
		if !first {
			st.timed(r, &ph.Forward, "forward", func() {
				r.Recv(st.comm, r.ID-1, tagFwd, gpu.NewBuffer(mpBoundaryBytes(cfg, lo-1, batch)))
			})
		}
		for l := lo; l <= hi; l++ {
			st.timed(r, &ph.Forward, "forward", func() {
				_, end := r.Dev.LaunchCompute(r.Now(), cfg.Spec.Layers[l].FwdFLOPs*float64(batch))
				r.Proc.WaitUntil(end)
			})
		}
		if !last {
			st.timed(r, &ph.Forward, "forward", func() {
				r.Send(st.comm, r.ID+1, tagFwd, gpu.NewBuffer(mpBoundaryBytes(cfg, hi, batch)), topology.ModeAuto)
			})
		}
		// Backward: mirror image.
		if !last {
			st.timed(r, &ph.Backward, "backward", func() {
				r.Recv(st.comm, r.ID+1, tagBwd, gpu.NewBuffer(mpBoundaryBytes(cfg, hi, batch)))
			})
		}
		for l := hi; l >= lo; l-- {
			st.timed(r, &ph.Backward, "backward", func() {
				_, end := r.Dev.LaunchCompute(r.Now(), cfg.Spec.Layers[l].BwdFLOPs*float64(batch))
				r.Proc.WaitUntil(end)
			})
		}
		if !first {
			st.timed(r, &ph.Backward, "backward", func() {
				r.Send(st.comm, r.ID-1, tagBwd, gpu.NewBuffer(mpBoundaryBytes(cfg, lo-1, batch)), topology.ModeAuto)
			})
		}
		// Local update of the owned layer range — no aggregation.
		st.timed(r, &ph.Update, "update", func() {
			_, end := r.Dev.LaunchCompute(r.Now(), solver.UpdateFLOPs(ownParams))
			r.Proc.WaitUntil(end)
		})
	}
}
