// Package coll implements the reduction and broadcast collective
// algorithms studied by the paper: flat binomial trees, the
// chunked-chain pipeline, the two-level hierarchical designs
// (chain-of-chain CC and chain-binomial CB), the tuned selector (HR),
// the MVAPICH2- and OpenMPI-era baselines of Figures 11–12, the
// CPU-progressed Ireduce shim of Section 4.2, and a ring allreduce
// extension. It also carries the analytic cost model of Eq. (1)/(2).
//
// All reductions are rooted at group rank 0 of their communicator and
// reduce element-wise float32 sums. When buffers carry payloads the
// arithmetic is performed for real, so the algorithms are verified
// numerically; payload-free buffers exercise identical timing.
package coll

import (
	"fmt"

	"scaffe/internal/gpu"
	"scaffe/internal/mpi"
	"scaffe/internal/sim"
	"scaffe/internal/topology"
)

// Algorithm names a reduction algorithm/configuration family.
type Algorithm int

const (
	// Binomial is the flat binomial-tree reduce (Eq. 1).
	Binomial Algorithm = iota
	// Chain is the flat chunked-chain pipelined reduce (Eq. 2).
	Chain
	// ChainChain (CC) is the two-level design with chains at both
	// levels.
	ChainChain
	// ChainBinomial (CB) is the two-level design with lower-level
	// chains and an upper-level binomial tree.
	ChainBinomial
	// ChainChainBinomial (CCB) is the three-level design the paper
	// proposes as future work for very large scales: chains at the two
	// lower levels topped by a binomial tree.
	ChainChainBinomial
	// Tuned is the HR (Tuned) selector: it picks the fastest
	// combination for the (message size, process count) pair.
	Tuned
	// MV2Baseline models the pre-co-design MVAPICH2 reduce: binomial
	// tree with CUDA-aware pipelined transfers but host-side (CPU)
	// reduction of each pair of operands.
	MV2Baseline
	// OpenMPIBaseline models OpenMPI 1.10-era reduce on GPU buffers:
	// binomial tree with small synchronous staged segments and CPU
	// reduction — the 133x column of Figure 12.
	OpenMPIBaseline
	// Rabenseifner is the classic reduce-scatter + gather algorithm
	// (bandwidth-optimal, 2b(P−1)/P traffic per rank), included for
	// algorithm-breadth comparisons.
	Rabenseifner
)

func (a Algorithm) String() string {
	switch a {
	case Binomial:
		return "binomial"
	case Chain:
		return "chain"
	case ChainChain:
		return "CC"
	case ChainBinomial:
		return "CB"
	case ChainChainBinomial:
		return "CCB"
	case Tuned:
		return "HR(tuned)"
	case MV2Baseline:
		return "MV2"
	case OpenMPIBaseline:
		return "OpenMPI"
	case Rabenseifner:
		return "RSG"
	}
	return "unknown"
}

// Options configures a Reducer.
type Options struct {
	// ChainSize is the lower-level communicator size for hierarchical
	// designs (the paper's ideal is 8). Ignored by flat algorithms.
	ChainSize int
	// Chunks is the pipeline depth of chain reductions (the paper's
	// n). Zero selects a size-dependent default.
	Chunks int
	// OnGPU selects GPU reduction kernels (true) or host CPU
	// reduction (false).
	OnGPU bool
	// HostReduceBW overrides the host reduction bandwidth for
	// CPU-arithmetic reducers (bytes/second; 0 = the cluster's
	// single-threaded default). Frameworks that reduce with their own
	// multi-threaded loops (CNTK's 32-bit SGD) set this higher than an
	// MPI library's single-threaded op.
	HostReduceBW float64
	// Mode is the transfer mode for point-to-point traffic.
	Mode topology.TransferMode
}

// DefaultOptions returns the CUDA-aware GPU-kernel configuration with
// the paper's ideal chain size.
func DefaultOptions() Options {
	return Options{ChainSize: 8, Chunks: 0, OnGPU: true, Mode: topology.ModeAuto}
}

// Reducer reduces a buffer of equal size from every rank of a fixed
// communicator to group rank 0. A Reducer is built once (it owns any
// sub-communicators) and then invoked concurrently by every member
// rank's proc. Contents of non-root buffers are clobbered.
type Reducer interface {
	// Reduce performs this rank's part of the collective. Tags
	// tag..tag+3 are reserved for the call (multi-level designs use
	// one tag per level); concurrent reduces on one communicator must
	// space their tags accordingly.
	Reduce(r *mpi.Rank, buf *gpu.Buffer, tag int)
	// Name identifies the algorithm configuration (for reports).
	Name() string
}

// NewReducer builds a reducer for communicator c.
func NewReducer(c *mpi.Comm, alg Algorithm, o Options) Reducer {
	if o.ChainSize <= 0 {
		o.ChainSize = 8
	}
	switch alg {
	case Binomial:
		return &binomialReducer{c: c, o: o}
	case Chain:
		return &chainReducer{c: c, o: o}
	case ChainChain:
		return newHierarchical(c, o, Chain)
	case ChainBinomial:
		return newHierarchical(c, o, Binomial)
	case ChainChainBinomial:
		return newThreeLevel(c, o)
	case Tuned:
		return newTuned(c, o)
	case MV2Baseline:
		return &mv2Reducer{c: c}
	case OpenMPIBaseline:
		return &ompiReducer{c: c}
	case Rabenseifner:
		return newRSGReducer(c, o)
	}
	panic(fmt.Sprintf("coll: unknown algorithm %d", int(alg)))
}

// newLike allocates a scratch buffer shaped like b (payload present
// iff b has one).
//
//scaffe:coldpath pool-miss scratch creation; steady state draws from the rank's free stack
func newLike(b *gpu.Buffer) *gpu.Buffer {
	if b.Data != nil {
		return gpu.NewDataBuffer(b.Elems())
	}
	return gpu.NewBuffer(b.Bytes)
}

// localReduce performs acc += operand, charging the reduction to the
// rank's GPU comm stream or its CPU, and blocks the rank until the
// reduction completes (the next algorithm step depends on the result).
func localReduce(r *mpi.Rank, acc, operand *gpu.Buffer, o Options) {
	acc.Accumulate(operand)
	if o.OnGPU {
		_, end := r.Dev.LaunchReduce(r.Now(), acc.Bytes)
		r.Proc.WaitUntil(end)
		return
	}
	if o.HostReduceBW > 0 {
		r.Sleep(sim.Duration(float64(acc.Bytes) / o.HostReduceBW * float64(sim.Second)))
		return
	}
	r.Sleep(r.W.Cluster.ReduceTime(acc.Bytes, false))
}

// defaultChunks picks a pipeline depth: enough chunks to fill the
// chain but no chunk smaller than 256 KiB.
func defaultChunks(bytes int64, requested int) int {
	if requested > 0 {
		return requested
	}
	n := int(bytes / (1 << 20)) // ~1 MiB chunks
	if n < 4 {
		n = 4
	}
	if n > 64 {
		n = 64
	}
	for int64(n) > bytes/(256<<10) && n > 1 {
		n /= 2
	}
	if n < 1 {
		n = 1
	}
	return n
}
