package chaos

import (
	"fmt"
	"strconv"
	"strings"

	"scaffe/internal/coll"
	"scaffe/internal/core"
)

// ParseSpec reads a chaos spec from key = value lines — the format of
// configs/chaos_demo.txt and scaffe-train's -chaos flag. Blank lines
// and #-comments are skipped; unknown keys are errors so a typo cannot
// silently weaken a drill.
//
//	seed = 42          # schedule seed (required)
//	ranks = 8          # world size
//	iters = 8          # training iterations
//	events = 6         # weighted event draws
//	mode = timing      # timing | real
//	design = scb       # scb | scob | scobr | scobrf | cntk
//	reduce = binomial  # binomial | chain | cc | cb | rabenseifner | tuned
//	weight.drop = 2    # per-family mix weight (crash, hang, straggle,
//	                   # drop, dup, reorder, delay, partition)
func ParseSpec(text string) (Spec, error) {
	var s Spec
	seenSeed := false
	weightsSet := false
	w := DefaultWeights()
	for ln, line := range strings.Split(text, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		key, val, ok := strings.Cut(line, "=")
		if !ok {
			return Spec{}, fmt.Errorf("chaos: spec line %d: want key = value, got %q", ln+1, line)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		bad := func(err error) (Spec, error) {
			return Spec{}, fmt.Errorf("chaos: spec line %d: %s: %w", ln+1, key, err)
		}
		switch {
		case key == "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return bad(err)
			}
			s.Seed, seenSeed = n, true
		case key == "ranks" || key == "iters" || key == "events":
			n, err := strconv.Atoi(val)
			if err != nil {
				return bad(err)
			}
			if n <= 0 {
				return bad(fmt.Errorf("must be positive, got %d", n))
			}
			switch key {
			case "ranks":
				s.Ranks = n
			case "iters":
				s.Iterations = n
			case "events":
				s.Events = n
			}
		case key == "mode":
			switch val {
			case "timing":
				s.Real = false
			case "real":
				s.Real = true
			default:
				return bad(fmt.Errorf("want timing or real, got %q", val))
			}
		case key == "design":
			switch val {
			case "scb":
				s.Design = core.SCB
			case "scob":
				s.Design = core.SCOB
			case "scobr":
				s.Design = core.SCOBR
			case "scobrf":
				s.Design = core.SCOBRF
			case "cntk":
				s.Design = core.CNTKLike
			default:
				return bad(fmt.Errorf("unknown design %q", val))
			}
		case key == "reduce":
			switch val {
			case "binomial":
				s.Reduce = coll.Binomial
			case "chain":
				s.Reduce = coll.Chain
			case "cc":
				s.Reduce = coll.ChainChain
			case "cb":
				s.Reduce = coll.ChainBinomial
			case "rabenseifner":
				s.Reduce = coll.Rabenseifner
			case "tuned":
				s.Reduce = coll.Tuned
			default:
				return bad(fmt.Errorf("unknown reducer %q", val))
			}
		case strings.HasPrefix(key, "weight."):
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return bad(err)
			}
			if f < 0 {
				return bad(fmt.Errorf("must be non-negative, got %v", f))
			}
			weightsSet = true
			switch strings.TrimPrefix(key, "weight.") {
			case "crash":
				w.Crash = f
			case "hang":
				w.Hang = f
			case "straggle":
				w.Straggle = f
			case "drop":
				w.Drop = f
			case "dup":
				w.Dup = f
			case "reorder":
				w.Reorder = f
			case "delay":
				w.Delay = f
			case "partition":
				w.Partition = f
			default:
				return bad(fmt.Errorf("unknown weight family"))
			}
		default:
			return Spec{}, fmt.Errorf("chaos: spec line %d: unknown key %q", ln+1, key)
		}
	}
	if !seenSeed {
		return Spec{}, fmt.Errorf("chaos: spec must set seed")
	}
	if weightsSet {
		if w.total() == 0 {
			return Spec{}, fmt.Errorf("chaos: every weight is zero")
		}
		s.Weights = w
	}
	return s, nil
}
