package fault

import "testing"

// FuzzParseSchedule hammers the schedule grammar: arbitrary text must
// either parse into a schedule whose every event survives String and
// Validate without panicking, or be rejected with an error — never
// crash, never loop.
func FuzzParseSchedule(f *testing.F) {
	seeds := []string{
		"",
		"# comment only\n",
		"5ms crash rank=3",
		"10ms straggle rank=1 factor=4\n12ms recover rank=1",
		"20ms degrade node=0 factor=2.5 for=3ms",
		"30ms stall rank=2 for=1ms",
		"40ms snapfail for=2ms",
		"50ms hang rank=0",
		"60ms bitflip rank=1 word=128 bit=30",
		"70ms corrupt-wire src=3 dst=0 n=2",
		"150ms evict rank=2",
		"250ms join rank=3",
		"30ms drop src=1 dst=0 n=2",
		"40ms dup src=2 dst=0 n=1",
		"55ms reorder src=3 dst=0 n=1",
		"65ms delay src=0 dst=2 n=1 for=5ms",
		"110ms partition groups=0,1|2,3 for=40ms",
		"110ms partition groups=0,1|2,3 for=40ms\n120ms partition groups=0|1 for=40ms",
		"1ms partition for=2ms",
		"1ms partition groups=0,1 for=2ms",
		"1ms partition groups=0,1|1,2 for=2ms",
		"1ms partition groups=|0 for=2ms",
		"1ms partition groups=0,x|1 for=2ms",
		"1ms drop dst=0 n=1",
		"1ms delay src=0 dst=1 n=1",
		"5ms evict rank=2\n10ms recover rank=2\n20ms join rank=2",
		"5ms join rank=2\n5ms evict rank=2",
		"1ms join",
		"1ms evict rank=-1",
		"abc join rank=0",
		"1ms join rank=0 factor=",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		sched, err := ParseSchedule(text)
		if err != nil {
			return
		}
		_ = sched.Validate(8, 2)
		for _, ev := range sched {
			_ = ev.Kind.String()
			if ev.At < 0 {
				t.Fatalf("parsed negative time: %+v", ev)
			}
		}
	})
}
