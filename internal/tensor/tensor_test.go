package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndReshape(t *testing.T) {
	a := New(2, 3, 4)
	if a.Len() != 24 || a.Dim(1) != 3 {
		t.Fatalf("bad geometry: len=%d dim1=%d", a.Len(), a.Dim(1))
	}
	b := a.Reshape(6, 4)
	b.Data[0] = 5
	if a.Data[0] != 5 {
		t.Error("Reshape must alias data")
	}
	defer func() {
		if recover() == nil {
			t.Error("reshape to wrong length must panic")
		}
	}()
	a.Reshape(5, 5)
}

func TestCloneZeroFill(t *testing.T) {
	a := New(4)
	a.Fill(3)
	c := a.Clone()
	a.Zero()
	if c.Data[2] != 3 || a.Data[2] != 0 {
		t.Error("Clone/Zero interaction wrong")
	}
}

func TestAxpyScale(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{10, 20}, 2)
	a.Axpy(0.5, b)
	if a.Data[0] != 6 || a.Data[1] != 12 {
		t.Errorf("Axpy = %v", a.Data)
	}
	a.Scale(2)
	if a.Data[0] != 12 {
		t.Errorf("Scale = %v", a.Data)
	}
}

func TestSameShape(t *testing.T) {
	if !New(2, 3).SameShape(New(2, 3)) {
		t.Error("equal shapes reported different")
	}
	if New(2, 3).SameShape(New(3, 2)) || New(2).SameShape(New(2, 1)) {
		t.Error("different shapes reported equal")
	}
}

// naiveGemm is the O(mnk) reference implementation.
func naiveGemm(transA, transB bool, m, n, k int, alpha float32, a, b []float32, beta float32, c []float32) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float32
			for p := 0; p < k; p++ {
				var av, bv float32
				if transA {
					av = a[p*m+i]
				} else {
					av = a[i*k+p]
				}
				if transB {
					bv = b[j*k+p]
				} else {
					bv = b[p*n+j]
				}
				acc += av * bv
			}
			c[i*n+j] = beta*c[i*n+j] + alpha*acc
		}
	}
}

func TestGemmMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct {
		ta, tb  bool
		m, n, k int
	}{
		{false, false, 3, 4, 5},
		{false, true, 4, 3, 6},
		{true, false, 5, 2, 3},
		{true, true, 2, 5, 4},
		{false, false, 65, 70, 33}, // crosses the parallel threshold
		{false, true, 128, 64, 32},
		{true, false, 64, 128, 16},
	} {
		a := make([]float32, tc.m*tc.k)
		b := make([]float32, tc.k*tc.n)
		for i := range a {
			a[i] = rng.Float32()*2 - 1
		}
		for i := range b {
			b[i] = rng.Float32()*2 - 1
		}
		c1 := make([]float32, tc.m*tc.n)
		c2 := make([]float32, tc.m*tc.n)
		for i := range c1 {
			c1[i] = rng.Float32()
			c2[i] = c1[i]
		}
		Gemm(tc.ta, tc.tb, tc.m, tc.n, tc.k, 0.7, a, b, 0.3, c1)
		naiveGemm(tc.ta, tc.tb, tc.m, tc.n, tc.k, 0.7, a, b, 0.3, c2)
		for i := range c1 {
			if d := math.Abs(float64(c1[i] - c2[i])); d > 2e-4 {
				t.Fatalf("case %+v: element %d differs by %g", tc, i, d)
			}
		}
	}
}

func TestGemmProperty(t *testing.T) {
	// Property: Gemm with beta=0, alpha=1 is linear in A.
	rng := rand.New(rand.NewSource(9))
	f := func(seed uint16) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		m, n, k := 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)
		a1 := make([]float32, m*k)
		a2 := make([]float32, m*k)
		b := make([]float32, k*n)
		for i := range a1 {
			a1[i], a2[i] = r.Float32(), r.Float32()
		}
		for i := range b {
			b[i] = r.Float32()
		}
		sum := make([]float32, m*k)
		for i := range sum {
			sum[i] = a1[i] + a2[i]
		}
		c1 := make([]float32, m*n)
		c2 := make([]float32, m*n)
		cs := make([]float32, m*n)
		Gemm(false, false, m, n, k, 1, a1, b, 0, c1)
		Gemm(false, false, m, n, k, 1, a2, b, 0, c2)
		Gemm(false, false, m, n, k, 1, sum, b, 0, cs)
		for i := range cs {
			if math.Abs(float64(cs[i]-(c1[i]+c2[i]))) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestGemv(t *testing.T) {
	a := []float32{1, 2, 3, 4, 5, 6} // 2x3
	x := []float32{1, 1, 1}
	y := make([]float32, 2)
	Gemv(false, 2, 3, 1, a, x, 0, y)
	if y[0] != 6 || y[1] != 15 {
		t.Errorf("Gemv = %v", y)
	}
	yt := make([]float32, 3)
	xt := []float32{1, 1}
	Gemv(true, 2, 3, 1, a, xt, 0, yt)
	if yt[0] != 5 || yt[1] != 7 || yt[2] != 9 {
		t.Errorf("Gemv^T = %v", yt)
	}
}

func TestIm2colRoundTripGeometry(t *testing.T) {
	g := ConvGeom{InC: 2, InH: 5, InW: 5, KernelH: 3, KernelW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}
	if g.OutH() != 3 || g.OutW() != 3 {
		t.Fatalf("out = %dx%d, want 3x3", g.OutH(), g.OutW())
	}
	img := make([]float32, 2*5*5)
	for i := range img {
		img[i] = float32(i)
	}
	col := make([]float32, 2*3*3*3*3)
	Im2col(g, img, col)
	// Center output (oh=1, ow=1) with kh=1,kw=1 should read the pixel
	// at (h,w) = (1*2-1+1, 1*2-1+1) = (2,2) of channel 0 => index 12.
	idx := ((0*3+1)*3+1)*9 + 1*3 + 1 // c=0, kh=1, kw=1, oh=1, ow=1
	if col[idx] != 12 {
		t.Errorf("im2col center sample = %v, want 12", col[idx])
	}
}

func TestIm2colCol2imAdjoint(t *testing.T) {
	// <col, Im2col(x)> == <Col2im(col), x> for all x, col — the
	// defining property of an adjoint pair, which is exactly what the
	// convolution backward pass relies on.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		g := ConvGeom{
			InC: 1 + rng.Intn(3), InH: 3 + rng.Intn(5), InW: 3 + rng.Intn(5),
			KernelH: 1 + rng.Intn(3), KernelW: 1 + rng.Intn(3),
			StrideH: 1 + rng.Intn(2), StrideW: 1 + rng.Intn(2),
			PadH: rng.Intn(2), PadW: rng.Intn(2),
		}
		if g.OutH() < 1 || g.OutW() < 1 {
			continue
		}
		nImg := g.InC * g.InH * g.InW
		nCol := g.InC * g.KernelH * g.KernelW * g.OutH() * g.OutW()
		x := make([]float32, nImg)
		colRand := make([]float32, nCol)
		for i := range x {
			x[i] = rng.Float32()*2 - 1
		}
		for i := range colRand {
			colRand[i] = rng.Float32()*2 - 1
		}
		colX := make([]float32, nCol)
		Im2col(g, x, colX)
		var lhs float64
		for i := range colX {
			lhs += float64(colRand[i]) * float64(colX[i])
		}
		back := make([]float32, nImg)
		Col2im(g, colRand, back)
		var rhs float64
		for i := range back {
			rhs += float64(back[i]) * float64(x[i])
		}
		if math.Abs(lhs-rhs) > 1e-3*(1+math.Abs(lhs)) {
			t.Fatalf("geom %+v: adjoint mismatch %v vs %v", g, lhs, rhs)
		}
	}
}

func TestReLU(t *testing.T) {
	in := []float32{-1, 0, 2}
	out := make([]float32, 3)
	ReLUForward(in, out)
	if out[0] != 0 || out[1] != 0 || out[2] != 2 {
		t.Errorf("relu = %v", out)
	}
	g := []float32{5, 5, 5}
	gi := make([]float32, 3)
	ReLUBackward(in, g, gi)
	if gi[0] != 0 || gi[1] != 0 || gi[2] != 5 {
		t.Errorf("relu' = %v", gi)
	}
}

func TestSoftmaxRow(t *testing.T) {
	row := []float32{1, 2, 3}
	SoftmaxRow(row)
	var sum float64
	for _, v := range row {
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Errorf("softmax sums to %v", sum)
	}
	if !(row[2] > row[1] && row[1] > row[0]) {
		t.Errorf("softmax not monotone: %v", row)
	}
	// Large logits must not overflow.
	big := []float32{1000, 1001, 999}
	SoftmaxRow(big)
	if math.IsNaN(float64(big[0])) || math.IsInf(float64(big[1]), 0) {
		t.Error("softmax overflowed on large logits")
	}
}

func TestSoftmaxCrossEntropyGradient(t *testing.T) {
	// Numerical gradient check of the combined softmax+CE.
	const batch, classes = 3, 5
	rng := rand.New(rand.NewSource(7))
	logits := make([]float32, batch*classes)
	for i := range logits {
		logits[i] = rng.Float32()*2 - 1
	}
	labels := []int{1, 4, 0}
	lossAt := func(l []float32) float64 {
		cp := append([]float32(nil), l...)
		g := make([]float32, len(l))
		return float64(SoftmaxCrossEntropy(cp, batch, classes, labels, g))
	}
	grad := make([]float32, batch*classes)
	cp := append([]float32(nil), logits...)
	SoftmaxCrossEntropy(cp, batch, classes, labels, grad)
	const eps = 1e-2
	for i := range logits {
		plus := append([]float32(nil), logits...)
		minus := append([]float32(nil), logits...)
		plus[i] += eps
		minus[i] -= eps
		num := (lossAt(plus) - lossAt(minus)) / (2 * eps)
		ana := float64(grad[i]) / batch // grad is unnormalized; loss is mean
		if math.Abs(num-ana) > 1e-3 {
			t.Fatalf("logit %d: numeric %g vs analytic %g", i, num, ana)
		}
	}
}

func TestAccuracy(t *testing.T) {
	probs := []float32{
		0.9, 0.1, // -> 0
		0.2, 0.8, // -> 1
		0.6, 0.4, // -> 0
	}
	if acc := Accuracy(probs, 3, 2, []int{0, 1, 1}); math.Abs(acc-2.0/3) > 1e-9 {
		t.Errorf("accuracy = %v", acc)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{1, 2.5, 2}, 3)
	if d := MaxAbsDiff(a, b); math.Abs(d-1) > 1e-9 {
		t.Errorf("MaxAbsDiff = %v, want 1", d)
	}
}

func TestInitializers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(10000)
	a.GaussianInit(rng, 0.1)
	var mean, sq float64
	for _, v := range a.Data {
		mean += float64(v)
		sq += float64(v) * float64(v)
	}
	mean /= float64(a.Len())
	std := math.Sqrt(sq/float64(a.Len()) - mean*mean)
	if math.Abs(mean) > 0.01 || math.Abs(std-0.1) > 0.01 {
		t.Errorf("gaussian init: mean=%v std=%v", mean, std)
	}
	b := New(10000)
	b.XavierInit(rng, 300)
	lim := math.Sqrt(3.0 / 300)
	for _, v := range b.Data {
		if float64(v) > lim || float64(v) < -lim {
			t.Fatalf("xavier sample %v outside [-%v, %v]", v, lim, lim)
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	check := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		fn()
	}
	check("New with zero dim", func() { New(3, 0) })
	check("FromSlice length mismatch", func() { FromSlice([]float32{1, 2}, 3) })
	check("CopyFrom mismatch", func() { New(2).CopyFrom(New(3)) })
	check("Axpy mismatch", func() { New(2).Axpy(1, New(3)) })
	check("MaxAbsDiff mismatch", func() { MaxAbsDiff(New(2), New(3)) })
	check("Gemm small C", func() {
		Gemm(false, false, 2, 2, 2, 1, make([]float32, 4), make([]float32, 4), 0, make([]float32, 3))
	})
}

func TestGemmBetaOne(t *testing.T) {
	a := []float32{1, 0, 0, 1} // identity
	b := []float32{3, 4, 5, 6}
	c := []float32{10, 10, 10, 10}
	Gemm(false, false, 2, 2, 2, 1, a, b, 1, c) // c += I*b
	want := []float32{13, 14, 15, 16}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("beta=1 accumulate: %v", c)
		}
	}
}
