package mpi

import (
	"testing"

	"scaffe/internal/gpu"
	"scaffe/internal/sim"
	"scaffe/internal/topology"
)

// Second-round semantics tests: timing properties of the runtime that
// the co-designs rely on, beyond basic correctness.

func TestIbcastRootCompletesAfterItsSends(t *testing.T) {
	// The root's request must not fire before its direct tree sends
	// finish (it may not reuse the buffer earlier); and for a large
	// buffer that completion is meaningfully later than the post.
	w := newWorld(t, 4, 1, 4)
	c := w.WorldComm()
	var rootDone, posted sim.Time
	_, err := w.Run(func(r *Rank) {
		buf := gpu.NewBuffer(32 << 20)
		req := r.Ibcast(c, 0, buf, topology.ModeAuto)
		if r.ID == 0 {
			posted = r.Now()
		}
		r.Wait(req)
		if r.ID == 0 {
			rootDone = r.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rootDone <= posted {
		t.Errorf("root Ibcast completed instantly (%v); must wait for its sends", rootDone)
	}
}

func TestIbcastLeafLatencyGrowsWithDepth(t *testing.T) {
	// Binomial delivery: a deeper leaf receives later than the root's
	// first child.
	w := newWorld(t, 8, 1, 8)
	c := w.WorldComm()
	arrivals := make([]sim.Time, 8)
	_, err := w.Run(func(r *Rank) {
		buf := gpu.NewBuffer(8 << 20)
		r.Wait(r.Ibcast(c, 0, buf, topology.ModeAuto))
		arrivals[r.ID] = r.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rank 4 is a direct child; rank 7 is at depth 3 (4 -> 6 -> 7).
	if arrivals[7] <= arrivals[4] {
		t.Errorf("depth-3 leaf (%v) should receive after the depth-1 child (%v)", arrivals[7], arrivals[4])
	}
}

func TestTwoCommsAreIndependentTagSpaces(t *testing.T) {
	// The same tag on two communicators must not cross-match.
	w := newWorld(t, 2, 2, 4)
	world := w.WorldComm()
	sub1 := world.Sub([]int{0, 1})
	sub2 := world.Sub([]int{2, 3})
	var got1, got2 float32
	_, err := w.Run(func(r *Rank) {
		switch r.ID {
		case 0:
			r.Send(sub1, 1, 5, gpu.WrapData([]float32{10}), topology.ModeAuto)
		case 1:
			buf := gpu.NewDataBuffer(1)
			r.Recv(sub1, 0, 5, buf)
			got1 = buf.Data[0]
		case 2:
			r.Send(sub2, 1, 5, gpu.WrapData([]float32{20}), topology.ModeAuto)
		case 3:
			buf := gpu.NewDataBuffer(1)
			r.Recv(sub2, 0, 5, buf)
			got2 = buf.Data[0]
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got1 != 10 || got2 != 20 {
		t.Errorf("cross-comm leakage: got %v and %v", got1, got2)
	}
}

func TestIntraNodeFasterThanInterNodeMessage(t *testing.T) {
	// Placement matters: IPC neighbors beat cross-node pipelining for
	// the same payload.
	elapsed := func(ranks func() (*World, int, int)) sim.Duration {
		w, from, to := ranks()
		c := w.WorldComm()
		var done sim.Time
		_, err := w.Run(func(r *Rank) {
			buf := gpu.NewBuffer(16 << 20)
			if r.ID == from {
				r.Send(c, to, 1, buf, topology.ModeAuto)
			} else if r.ID == to {
				r.Recv(c, from, 1, gpu.NewBuffer(16<<20))
				done = r.Now()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return done
	}
	intra := elapsed(func() (*World, int, int) { return newWorld(t, 1, 2, 2), 0, 1 })
	inter := elapsed(func() (*World, int, int) { return newWorld(t, 2, 1, 2), 0, 1 })
	if intra >= inter {
		t.Errorf("intra-node message (%v) should beat inter-node (%v)", intra, inter)
	}
}

func TestBarrierSingleRank(t *testing.T) {
	w := newWorld(t, 1, 1, 1)
	c := w.WorldComm()
	_, err := w.Run(func(r *Rank) {
		c.Barrier(r) // must not deadlock
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeviceAccessor(t *testing.T) {
	w := newWorld(t, 2, 2, 4)
	c := w.WorldComm()
	d := c.Device(3)
	if d.Node != 1 || d.Local != 1 {
		t.Errorf("rank 3 device = %v, want n1g1", d)
	}
}

func TestSpawnThreadSharesVirtualTime(t *testing.T) {
	w := newWorld(t, 1, 1, 1)
	var mainSaw, helperSaw sim.Time
	_, err := w.Run(func(r *Rank) {
		f := r.W.K.NewFlag()
		r.SpawnThread("helper", func(p *sim.Proc) {
			p.Sleep(7 * sim.Millisecond)
			helperSaw = p.Now()
			f.Set()
		})
		f.WaitSet(r.Proc)
		mainSaw = r.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	if mainSaw != helperSaw || mainSaw != 7*sim.Millisecond {
		t.Errorf("thread handshake at %v / %v, want 7ms", mainSaw, helperSaw)
	}
}
