// Package sim implements a deterministic discrete-event simulation
// kernel. Simulated processes ("procs") are goroutines that run
// cooperatively: exactly one proc (or the kernel itself) executes at a
// time, and all blocking operations park the proc on the kernel's
// event queue. Events are ordered by (virtual time, sequence number),
// so a simulation with a fixed set of inputs is bit-for-bit
// reproducible across runs.
//
// The kernel carries virtual time only; wall-clock time spent in Go
// code inside a proc is invisible to the simulation. A proc advances
// virtual time explicitly with Sleep/WaitUntil or implicitly by
// waiting on Completions fired by scheduled events.
package sim

import (
	"container/heap"
	"fmt"
	"runtime/debug"
)

// Time is a point in virtual time, in nanoseconds since the start of
// the simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds. It is a distinct
// name for readability; arithmetic mixes freely with Time.
type Duration = Time

// Convenient virtual-time units.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds returns the time as a floating-point number of ms.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Microseconds returns the time as a floating-point number of µs.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Microseconds())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event        { return h[0] }
func (h *eventHeap) popEvent() event   { return heap.Pop(h).(event) }
func (h *eventHeap) pushEvent(e event) { heap.Push(h, e) }

// Kernel is a discrete-event simulation engine. The zero value is not
// usable; create one with New.
type Kernel struct {
	now     Time
	seq     uint64
	events  eventHeap
	procs   []*Proc
	live    int // procs spawned but not yet finished
	maxTime Time
	stopped bool
	failure error
}

// New returns a fresh kernel at virtual time zero.
func New() *Kernel {
	return &Kernel{maxTime: 1 << 62}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// SetDeadline makes Run fail if virtual time would pass t. Useful as a
// watchdog against runaway simulations.
func (k *Kernel) SetDeadline(t Time) { k.maxTime = t }

// At schedules fn to run in kernel context at virtual time t. If t is
// in the past it runs at the current time (but strictly after all
// previously scheduled events for that time).
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		t = k.now
	}
	k.seq++
	k.events.pushEvent(event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d nanoseconds of virtual time from now.
func (k *Kernel) After(d Duration, fn func()) { k.At(k.now+d, fn) }

// Run executes the event loop until no events remain, then verifies
// that every spawned proc has finished. It returns an error on
// deadlock (procs remain parked with no pending events) or if the
// deadline set by SetDeadline is exceeded.
func (k *Kernel) Run() error {
	for k.events.Len() > 0 && !k.stopped {
		ev := k.events.popEvent()
		if ev.at > k.maxTime {
			return fmt.Errorf("sim: deadline exceeded at %v (deadline %v)", ev.at, k.maxTime)
		}
		k.now = ev.at
		ev.fn()
		if k.failure != nil {
			return k.failure
		}
	}
	if k.live > 0 {
		var stuck []string
		for _, p := range k.procs {
			if !p.finished {
				stuck = append(stuck, p.name)
			}
		}
		return fmt.Errorf("sim: deadlock at %v: %d proc(s) parked: %v", k.now, k.live, stuck)
	}
	return nil
}

// Stop aborts the event loop after the current event completes.
// Remaining parked procs stay parked; callers that Stop mid-run should
// not reuse the kernel.
func (k *Kernel) Stop() { k.stopped = true }

// Spawn creates a new simulated process running fn and schedules it to
// start at the current virtual time. It may be called before Run or
// from within any proc or event callback.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		k:     k,
		name:  name,
		wake:  make(chan struct{}),
		yield: make(chan struct{}),
	}
	k.procs = append(k.procs, p)
	k.live++
	go func() {
		defer func() {
			// A panicking proc fails the whole simulation rather than
			// the process: Run surfaces it as an error. The kill
			// sentinel is the exception — a killed proc is a normal
			// (if abrupt) exit.
			if rec := recover(); rec != nil && !IsKilled(rec) && k.failure == nil {
				k.failure = fmt.Errorf("sim: proc %q panicked at %v: %v\n%s", p.name, k.now, rec, debug.Stack())
			}
			p.finished = true
			k.live--
			p.yield <- struct{}{} // hand the baton back for the last time
		}()
		<-p.wake // wait for the kernel to hand us the baton
		if p.killed {
			panic(procKilled{})
		}
		fn(p)
	}()
	k.At(k.now, func() { k.resume(p) })
	return p
}

// resume transfers control to p and blocks until p parks or finishes.
// Must only be called from kernel context (inside an event callback).
func (k *Kernel) resume(p *Proc) {
	if p.finished {
		return
	}
	p.wake <- struct{}{}
	<-p.yield
}

// wakeAt schedules p to be resumed at time t.
func (k *Kernel) wakeAt(p *Proc, t Time) {
	k.At(t, func() { k.resume(p) })
}

// resumeIf resumes p only if it is still parked on the guarded wait
// armed with seq. Stale wake events — a completion that fired after
// its waiter timed out, or a timeout that lost the race with Fire —
// dissolve here instead of double-resuming the proc.
func (k *Kernel) resumeIf(p *Proc, seq uint64) {
	if !p.finished && p.waitArmed && p.waitSeq == seq {
		k.resume(p)
	}
}
