package mpi

import (
	"testing"

	"scaffe/internal/gpu"
	"scaffe/internal/sim"
	"scaffe/internal/topology"
)

func newWorld(t *testing.T, nodes, gpusPerNode, ranks int) *World {
	t.Helper()
	k := sim.New()
	c := topology.New(k, "test", nodes, gpusPerNode, topology.DefaultParams())
	return NewWorld(c, ranks)
}

func TestSendRecvDeliversPayload(t *testing.T) {
	w := newWorld(t, 2, 1, 2)
	c := w.WorldComm()
	var got []float32
	_, err := w.Run(func(r *Rank) {
		if r.ID == 0 {
			buf := gpu.WrapData([]float32{1, 2, 3})
			r.Send(c, 1, 7, buf, topology.ModeAuto)
		} else {
			buf := gpu.NewDataBuffer(3)
			r.Recv(c, 0, 7, buf)
			got = append([]float32(nil), buf.Data...)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("received %v, want %v", got, want)
		}
	}
}

func TestSendBeforeRecvEager(t *testing.T) {
	// Small message: sender completes immediately; receiver matches
	// from the unexpected queue later.
	w := newWorld(t, 2, 1, 2)
	c := w.WorldComm()
	var sendDone, recvDone sim.Time
	_, err := w.Run(func(r *Rank) {
		if r.ID == 0 {
			req := r.Isend(c, 1, 1, gpu.WrapData([]float32{42}), topology.ModeAuto)
			r.Wait(req)
			sendDone = r.Now()
		} else {
			r.Sleep(sim.Second) // receiver is late
			buf := gpu.NewDataBuffer(1)
			r.Recv(c, 0, 1, buf)
			recvDone = r.Now()
			if buf.Data[0] != 42 {
				t.Errorf("payload = %v, want 42", buf.Data[0])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sendDone >= sim.Second {
		t.Errorf("eager send completed at %v; should not wait for the receiver", sendDone)
	}
	if recvDone < sim.Second {
		t.Errorf("recv completed at %v, before it was posted", recvDone)
	}
}

func TestRendezvousSenderWaits(t *testing.T) {
	// Large message: the sender must block until the receiver posts.
	w := newWorld(t, 2, 1, 2)
	c := w.WorldComm()
	var sendDone sim.Time
	_, err := w.Run(func(r *Rank) {
		if r.ID == 0 {
			buf := gpu.NewBuffer(8 << 20)
			r.Send(c, 1, 1, buf, topology.ModeAuto)
			sendDone = r.Now()
		} else {
			r.Sleep(sim.Second)
			r.Recv(c, 0, 1, gpu.NewBuffer(8<<20))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sendDone < sim.Second {
		t.Errorf("rendezvous send completed at %v; must wait for late receiver", sendDone)
	}
}

func TestRecvBeforeSend(t *testing.T) {
	w := newWorld(t, 2, 1, 2)
	c := w.WorldComm()
	var got float32
	_, err := w.Run(func(r *Rank) {
		if r.ID == 1 {
			buf := gpu.NewDataBuffer(1)
			r.Recv(c, 0, 3, buf)
			got = buf.Data[0]
		} else {
			r.Sleep(10 * sim.Millisecond)
			r.Send(c, 1, 3, gpu.WrapData([]float32{5}), topology.ModeAuto)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Errorf("payload = %v, want 5", got)
	}
}

func TestTagMatching(t *testing.T) {
	// Two messages with different tags must match their own receives
	// regardless of posting order.
	w := newWorld(t, 2, 1, 2)
	c := w.WorldComm()
	var a, b float32
	_, err := w.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Send(c, 1, 100, gpu.WrapData([]float32{100}), topology.ModeAuto)
			r.Send(c, 1, 200, gpu.WrapData([]float32{200}), topology.ModeAuto)
		} else {
			bufB := gpu.NewDataBuffer(1)
			bufA := gpu.NewDataBuffer(1)
			r.Recv(c, 0, 200, bufB) // posted in reverse tag order
			r.Recv(c, 0, 100, bufA)
			a, b = bufA.Data[0], bufB.Data[0]
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if a != 100 || b != 200 {
		t.Errorf("tag matching delivered a=%v b=%v", a, b)
	}
}

func TestMessageOrderPreservedPerTag(t *testing.T) {
	w := newWorld(t, 2, 1, 2)
	c := w.WorldComm()
	var got []float32
	_, err := w.Run(func(r *Rank) {
		if r.ID == 0 {
			for i := 1; i <= 3; i++ {
				r.Send(c, 1, 9, gpu.WrapData([]float32{float32(i)}), topology.ModeAuto)
			}
		} else {
			for i := 0; i < 3; i++ {
				buf := gpu.NewDataBuffer(1)
				r.Recv(c, 0, 9, buf)
				got = append(got, buf.Data[0])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float32{1, 2, 3} {
		if got[i] != want {
			t.Fatalf("order = %v", got)
		}
	}
}

func TestSizeMismatchFailsRun(t *testing.T) {
	w := newWorld(t, 2, 1, 2)
	c := w.WorldComm()
	_, err := w.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Send(c, 1, 1, gpu.NewDataBuffer(2), topology.ModeAuto)
		} else {
			r.Recv(c, 0, 1, gpu.NewDataBuffer(3))
		}
	})
	if err == nil {
		t.Fatal("expected error on message size mismatch")
	}
}

func TestCommSubAndRanks(t *testing.T) {
	w := newWorld(t, 2, 2, 4)
	c := w.WorldComm()
	sub := c.Sub([]int{2, 0})
	if sub.Size() != 2 {
		t.Fatalf("sub size = %d, want 2", sub.Size())
	}
	if sub.WorldRank(0) != 2 || sub.WorldRank(1) != 0 {
		t.Errorf("sub group = [%d %d], want [2 0]", sub.WorldRank(0), sub.WorldRank(1))
	}
	if sub.GroupRank(2) != 0 || sub.GroupRank(0) != 1 || sub.GroupRank(3) != -1 {
		t.Errorf("GroupRank mapping wrong")
	}
	if !sub.Contains(w.Ranks[0]) || sub.Contains(w.Ranks[1]) {
		t.Error("Contains mapping wrong")
	}
}

func TestSplitChains(t *testing.T) {
	w := newWorld(t, 4, 4, 16)
	c := w.WorldComm()
	chains, leaders := c.SplitChains(8)
	if len(chains) != 2 {
		t.Fatalf("chains = %d, want 2", len(chains))
	}
	if chains[0].Size() != 8 || chains[1].Size() != 8 {
		t.Errorf("chain sizes = %d,%d, want 8,8", chains[0].Size(), chains[1].Size())
	}
	if leaders.Size() != 2 || leaders.WorldRank(0) != 0 || leaders.WorldRank(1) != 8 {
		t.Errorf("leaders = %v ranks", leaders.Size())
	}
	// Uneven split.
	chains2, leaders2 := c.SplitChains(5)
	if len(chains2) != 4 || chains2[3].Size() != 1 || leaders2.Size() != 4 {
		t.Errorf("uneven split: %d chains, last %d, %d leaders",
			len(chains2), chains2[len(chains2)-1].Size(), leaders2.Size())
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	w := newWorld(t, 2, 2, 4)
	c := w.WorldComm()
	var after [4]sim.Time
	_, err := w.Run(func(r *Rank) {
		r.Sleep(sim.Duration(r.ID) * sim.Millisecond) // skewed arrival
		c.Barrier(r)
		after[r.ID] = r.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	// No rank may leave the barrier before the last arrival (3ms).
	for i, ts := range after {
		if ts < 3*sim.Millisecond {
			t.Errorf("rank %d left barrier at %v, before last arrival", i, ts)
		}
	}
}

func TestBcastDeliversToAll(t *testing.T) {
	w := newWorld(t, 2, 2, 4)
	c := w.WorldComm()
	var got [4]float32
	_, err := w.Run(func(r *Rank) {
		buf := gpu.NewDataBuffer(4)
		if r.ID == 0 {
			buf.Fill(3.5)
		}
		r.Bcast(c, 0, buf, topology.ModeAuto)
		got[r.ID] = buf.Data[0]
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 3.5 {
			t.Errorf("rank %d got %v, want 3.5", i, v)
		}
	}
}

func TestBcastNonZeroRoot(t *testing.T) {
	w := newWorld(t, 2, 2, 4)
	c := w.WorldComm()
	var got [4]float32
	_, err := w.Run(func(r *Rank) {
		buf := gpu.NewDataBuffer(1)
		if r.ID == 2 {
			buf.Fill(9)
		}
		r.Bcast(c, 2, buf, topology.ModeAuto)
		got[r.ID] = buf.Data[0]
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 9 {
			t.Errorf("rank %d got %v, want 9", i, v)
		}
	}
}

func TestIbcastOverlapsCompute(t *testing.T) {
	// The whole point of the offloaded engine: a rank that posts
	// Ibcast and then computes should find the data already delivered
	// when it calls Wait, paying (almost) nothing.
	w := newWorld(t, 2, 1, 2)
	c := w.WorldComm()
	var waitCost sim.Duration
	_, err := w.Run(func(r *Rank) {
		buf := gpu.NewDataBuffer(1 << 20 / 4)
		if r.ID == 0 {
			buf.Fill(1)
			r.Wait(r.Ibcast(c, 0, buf, topology.ModeAuto))
		} else {
			req := r.Ibcast(c, 0, buf, topology.ModeAuto)
			r.Sleep(100 * sim.Millisecond) // long compute
			before := r.Now()
			r.Wait(req)
			waitCost = r.Now() - before
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if waitCost != 0 {
		t.Errorf("Wait after long compute cost %v; Ibcast should have progressed in hardware", waitCost)
	}
}

func TestIbcastMatchingBySequence(t *testing.T) {
	// Two back-to-back Ibcasts on one comm must pair up by call order
	// even though ranks post at different times.
	w := newWorld(t, 2, 1, 2)
	c := w.WorldComm()
	var first, second float32
	_, err := w.Run(func(r *Rank) {
		b1 := gpu.NewDataBuffer(1)
		b2 := gpu.NewDataBuffer(1)
		if r.ID == 0 {
			b1.Fill(1)
			b2.Fill(2)
			q1 := r.Ibcast(c, 0, b1, topology.ModeAuto)
			q2 := r.Ibcast(c, 0, b2, topology.ModeAuto)
			r.WaitAll(q1, q2)
		} else {
			r.Sleep(5 * sim.Millisecond)
			q1 := r.Ibcast(c, 0, b1, topology.ModeAuto)
			q2 := r.Ibcast(c, 0, b2, topology.ModeAuto)
			r.WaitAll(q1, q2)
			first, second = b1.Data[0], b2.Data[0]
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 || second != 2 {
		t.Errorf("sequence matching delivered %v,%v want 1,2", first, second)
	}
}

func TestBcastLargeComm(t *testing.T) {
	w := newWorld(t, 4, 4, 13) // non-power-of-two
	c := w.WorldComm()
	ok := true
	_, err := w.Run(func(r *Rank) {
		buf := gpu.NewDataBuffer(64)
		if r.ID == 0 {
			buf.Fill(7)
		}
		r.Bcast(c, 0, buf, topology.ModeAuto)
		for _, v := range buf.Data {
			if v != 7 {
				ok = false
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("binomial bcast failed to deliver to all 13 ranks")
	}
}

func TestDeferredRequestRunsInWait(t *testing.T) {
	w := newWorld(t, 1, 1, 1)
	ran := false
	_, err := w.Run(func(r *Rank) {
		req := r.NewDeferredRequest(func() {
			ran = true
			r.Sleep(sim.Millisecond)
		})
		if req.Test() {
			t.Error("deferred request must not complete under Test")
		}
		r.Sleep(10 * sim.Millisecond)
		if ran {
			t.Error("deferred work ran before Wait")
		}
		r.Wait(req)
		if !ran || r.Now() != 11*sim.Millisecond {
			t.Errorf("deferred work: ran=%v now=%v", ran, r.Now())
		}
		if !req.Test() {
			t.Error("request should be complete after Wait")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendToSelfFailsRun(t *testing.T) {
	w := newWorld(t, 1, 2, 2)
	c := w.WorldComm()
	_, err := w.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Send(c, 0, 1, gpu.NewBuffer(4), topology.ModeAuto)
		}
	})
	if err == nil {
		t.Fatal("expected error on self-send")
	}
}

func TestWorldTooManyRanksPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic when ranks exceed GPUs")
		}
	}()
	k := sim.New()
	c := topology.New(k, "t", 1, 2, topology.DefaultParams())
	NewWorld(c, 3)
}

func TestOnCompleteFiresAtCompletionTime(t *testing.T) {
	// Rendezvous-sized Isend: the hook must fire when the transfer
	// finishes (after the late receiver arrives), and CompletedAt must
	// report that instant.
	w := newWorld(t, 2, 1, 2)
	c := w.WorldComm()
	var hookAt, completedAt sim.Time
	_, err := w.Run(func(r *Rank) {
		if r.ID == 0 {
			req := r.Isend(c, 1, 7, gpu.NewBuffer(1<<20), topology.ModeAuto)
			req.OnComplete(func() { hookAt = r.Now() })
			if req.Test() {
				t.Error("rendezvous send completed before the receiver posted")
			}
			r.Wait(req)
			completedAt = req.CompletedAt()
		} else {
			r.Sleep(500)
			r.Recv(c, 0, 7, gpu.NewBuffer(1<<20))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if hookAt < 500 {
		t.Errorf("hook fired at %v, before the receiver arrived at 500", hookAt)
	}
	if hookAt != completedAt {
		t.Errorf("hook time %v != CompletedAt %v", hookAt, completedAt)
	}
}

func TestOnCompleteAfterCompletionRunsImmediately(t *testing.T) {
	// Eager send: already complete when the hook registers; the hook
	// still runs (scheduled for the current instant).
	w := newWorld(t, 1, 2, 2)
	c := w.WorldComm()
	fired := false
	_, err := w.Run(func(r *Rank) {
		if r.ID == 0 {
			req := r.Isend(c, 1, 7, gpu.NewBuffer(64), topology.ModeAuto)
			if !req.Test() {
				t.Error("eager send should complete immediately")
			}
			req.OnComplete(func() { fired = true })
			r.Wait(req)
		} else {
			r.Recv(c, 0, 7, gpu.NewBuffer(64))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("hook on an already-completed request never ran")
	}
}
