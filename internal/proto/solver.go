package proto

import (
	"fmt"
	"os"
	"strings"

	"scaffe/internal/coll"
	"scaffe/internal/core"
	"scaffe/internal/models"
)

// SolverFields documents the supported solver prototxt surface: the
// standard Caffe solver fields plus the S-Caffe extensions (the
// original release configured its distributed behaviour through the
// launcher; here they live in the same file for convenience).
//
//	net: "googlenet"            # model name from the zoo
//	batch_size: 1280
//	max_iter: 100
//	base_lr: 0.01
//	lr_policy: "step"           # fixed | step | inv | poly
//	gamma: 0.1
//	power: 0.75
//	stepsize: 20
//	momentum: 0.9
//	weight_decay: 0.0005
//	test_interval: 50
//	test_batches: 2
//	snapshot: 50
//	snapshot_prefix: "snap/run"
//	# --- S-Caffe extensions ---
//	scaffe_design: "scobr"      # scb | scob | scobr | scobrf | caffe | cntk | ps
//	scaffe_reduce: "hr"         # binomial | chain | cc | cb | ccb | hr | mv2 | openmpi | rsg
//	scaffe_chain_size: 8
//	scaffe_bucket_bytes: 4194304  # gradient fusion bucket (scobr/scobrf)
//	scaffe_data: "imagedata"    # memory | lmdb | imagedata
//	scaffe_gpus: 160
//	scaffe_nodes: 12
//	scaffe_gpus_per_node: 16
//	scaffe_scal: "strong"       # strong | weak
const SolverFields = "see package documentation"

// designNames maps prototxt design names to pipelines.
var designNames = map[string]core.Design{
	"scb": core.SCB, "scob": core.SCOB, "scobr": core.SCOBR, "scobrf": core.SCOBRF,
	"caffe": core.CaffeMT, "cntk": core.CNTKLike, "ps": core.ParamServer, "mp": core.ModelParallel,
}

// reduceNames maps prototxt reduce names to algorithms.
var reduceNames = map[string]coll.Algorithm{
	"binomial": coll.Binomial, "chain": coll.Chain,
	"cc": coll.ChainChain, "cb": coll.ChainBinomial, "ccb": coll.ChainChainBinomial,
	"hr": coll.Tuned, "tuned": coll.Tuned,
	"mv2": coll.MV2Baseline, "openmpi": coll.OpenMPIBaseline, "rsg": coll.Rabenseifner,
}

// sourceNames maps prototxt data names to backends.
var sourceNames = map[string]core.SourceKind{
	"memory": core.MemorySource, "lmdb": core.LMDBSource, "imagedata": core.ImageDataSource,
}

// LoadSolver reads and parses a solver prototxt file into a training
// config.
func LoadSolver(path string) (core.Config, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return core.Config{}, fmt.Errorf("proto: %w", err)
	}
	return ParseSolver(string(raw))
}

// ParseSolver maps solver prototxt text onto a core.Config. The model
// named by `net` is resolved from the zoo; distributed behaviour comes
// from the scaffe_* extension fields.
func ParseSolver(text string) (core.Config, error) {
	var cfg core.Config
	d, err := Parse(text)
	if err != nil {
		return cfg, err
	}
	netName := d.String("net", "")
	if netName == "" {
		return cfg, fmt.Errorf("proto: solver needs a net: field")
	}
	spec, err := models.ByName(netName)
	if err != nil {
		return cfg, err
	}
	cfg.Spec = spec

	if cfg.GlobalBatch, err = d.Int("batch_size", 256); err != nil {
		return cfg, err
	}
	if cfg.Iterations, err = d.Int("max_iter", 100); err != nil {
		return cfg, err
	}
	if cfg.BaseLR, err = d.Float("base_lr", 0.01); err != nil {
		return cfg, err
	}
	cfg.LRPolicy = d.String("lr_policy", "fixed")
	if cfg.Gamma, err = d.Float("gamma", 0); err != nil {
		return cfg, err
	}
	if cfg.Power, err = d.Float("power", 0); err != nil {
		return cfg, err
	}
	if cfg.StepSize, err = d.Int("stepsize", 0); err != nil {
		return cfg, err
	}
	if cfg.Momentum, err = d.Float("momentum", 0); err != nil {
		return cfg, err
	}
	if cfg.WeightDecay, err = d.Float("weight_decay", 0); err != nil {
		return cfg, err
	}
	if cfg.TestInterval, err = d.Int("test_interval", 0); err != nil {
		return cfg, err
	}
	if cfg.TestBatches, err = d.Int("test_batches", 0); err != nil {
		return cfg, err
	}
	if cfg.SnapshotEvery, err = d.Int("snapshot", 0); err != nil {
		return cfg, err
	}
	cfg.SnapshotPrefix = d.String("snapshot_prefix", "")

	design := strings.ToLower(d.String("scaffe_design", "scobr"))
	dv, ok := designNames[design]
	if !ok {
		return cfg, fmt.Errorf("proto: unknown scaffe_design %q", design)
	}
	cfg.Design = dv
	reduce := strings.ToLower(d.String("scaffe_reduce", "hr"))
	rv, ok := reduceNames[reduce]
	if !ok {
		return cfg, fmt.Errorf("proto: unknown scaffe_reduce %q", reduce)
	}
	cfg.Reduce = rv
	src := strings.ToLower(d.String("scaffe_data", "imagedata"))
	sv, ok := sourceNames[src]
	if !ok {
		return cfg, fmt.Errorf("proto: unknown scaffe_data %q", src)
	}
	cfg.Source = sv
	if cfg.GPUs, err = d.Int("scaffe_gpus", 16); err != nil {
		return cfg, err
	}
	if cfg.Nodes, err = d.Int("scaffe_nodes", 0); err != nil {
		return cfg, err
	}
	if cfg.GPUsPerNode, err = d.Int("scaffe_gpus_per_node", 0); err != nil {
		return cfg, err
	}
	if cfg.ReduceOpts.ChainSize, err = d.Int("scaffe_chain_size", 0); err != nil {
		return cfg, err
	}
	bucket, err := d.Int("scaffe_bucket_bytes", 0)
	if err != nil {
		return cfg, err
	}
	cfg.BucketBytes = int64(bucket)
	cfg.ReduceOpts.OnGPU = true
	switch scal := strings.ToLower(d.String("scaffe_scal", "strong")); scal {
	case "strong":
	case "weak":
		cfg.Weak = true
	default:
		return cfg, fmt.Errorf("proto: unknown scaffe_scal %q", scal)
	}
	return cfg, nil
}
