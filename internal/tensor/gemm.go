package tensor

import (
	"runtime"
	"sync"
)

// gemmParallelThreshold is the output size (M*N) above which GEMM
// fans out across CPU cores; small multiplies stay single-threaded to
// avoid dispatch overhead.
const gemmParallelThreshold = 64 * 64

const (
	// gemmMR is the micro-kernel row tile: the blocked kernels compute
	// gemmMR rows of C per pass over B, quartering B traffic.
	gemmMR = 4
	// gemmNB is the packed-panel width: B columns are processed in
	// blocks of gemmNB so one packed panel (k×gemmNB floats) stays
	// cache-resident across every row tile that consumes it.
	gemmNB = 512
	// gemmPackMin is the minimum k*width of a column block worth
	// packing; smaller panels are streamed directly.
	gemmPackMin = 32 * 1024
)

// Gemm computes C = alpha*op(A)*op(B) + beta*C for row-major matrices,
// where op transposes when the corresponding flag is set. A is M×K
// (K×M if transA), B is K×N (N×K if transB), C is M×N.
//
// Determinism contract: every element of C is accumulated by exactly
// one worker, in ascending-p order, regardless of how the output is
// partitioned — so results are bit-identical run-to-run and across any
// GOMAXPROCS setting. Parallel dispatch goes through a persistent
// worker pool and a pooled call descriptor, so steady-state calls do
// not allocate.
//
//scaffe:hotpath
func Gemm(transA, transB bool, m, n, k int, alpha float32, a []float32, b []float32, beta float32, c []float32) {
	if len(c) < m*n {
		panic("tensor: gemm C too small")
	}
	workers := runtime.GOMAXPROCS(0)
	if m*n < gemmParallelThreshold || workers < 2 {
		scaleCSpan(n, beta, c, 0, m, 0, n)
		gemmKernel(transA, transB, m, n, k, alpha, a, b, c, 0, m, 0, n)
		return
	}
	gemmOnce.Do(startGemmWorkers)

	// Partition whichever output dimension offers enough granularity:
	// rows when there are at least gemmMR rows per worker (keeps the
	// micro-kernel's row tiles intact), columns otherwise (e.g. a
	// batch-32 fully-connected forward pass, where m is tiny but n is
	// thousands wide).
	byCols := m < workers*gemmMR && n >= workers
	span := m
	if byCols {
		span = n
	}
	if workers > span {
		workers = span
	}
	per := (span + workers - 1) / workers
	if !byCols {
		per = (per + gemmMR - 1) / gemmMR * gemmMR // align chunks to row tiles
	}
	parts := (span + per - 1) / per

	g := getGemmCall()
	g.transA, g.transB = transA, transB
	g.m, g.n, g.k = m, n, k
	g.alpha, g.beta = alpha, beta
	g.a, g.b, g.c = a, b, c
	g.byCols = byCols
	g.wg.Add(parts - 1)
	for w := 1; w < parts; w++ {
		lo := w * per
		hi := lo + per
		if hi > span {
			hi = span
		}
		gemmTaskQ <- gemmTask{call: g, lo: lo, hi: hi}
	}
	hi0 := per
	if hi0 > span {
		hi0 = span
	}
	g.runSpan(0, hi0)
	g.wg.Wait()
	putGemmCall(g)
}

// Gemv computes y = alpha*op(A)*x + beta*y for a row-major M×K matrix.
// Matrix-vector work is memory-bound and its output is only m (or k)
// elements, so the GEMM path's m*n parallel threshold and per-row
// partitioning are mis-sized for it; plain dot (no-trans) and axpy
// (trans) loops beat goroutine fan-out for every shape the models use.
//
//scaffe:hotpath
func Gemv(transA bool, m, k int, alpha float32, a, x []float32, beta float32, y []float32) {
	if transA {
		// y (len k) = beta*y + alpha * A^T x, accumulated row by row.
		if len(y) < k {
			panic("tensor: gemv y too small")
		}
		yk := y[:k]
		if beta == 0 {
			for i := range yk {
				yk[i] = 0
			}
		} else if beta != 1 {
			for i := range yk {
				yk[i] *= beta
			}
		}
		for p := 0; p < m; p++ {
			s := alpha * x[p]
			if s == 0 {
				continue
			}
			ap := a[p*k : p*k+k]
			for i, av := range ap {
				yk[i] += s * av
			}
		}
		return
	}
	if len(y) < m {
		panic("tensor: gemv y too small")
	}
	xk := x[:k]
	for i := 0; i < m; i++ {
		ai := a[i*k : i*k+k]
		var acc float32
		for p, av := range ai {
			acc += av * xk[p]
		}
		if beta == 0 {
			y[i] = alpha * acc
		} else {
			y[i] = beta*y[i] + alpha*acc
		}
	}
}

// --- persistent worker pool ----------------------------------------------

// gemmTask is one partition of a parallel GEMM call.
type gemmTask struct {
	call   *gemmCall
	lo, hi int
}

// gemmCall is a pooled parallel-call descriptor; pooling it (and the
// WaitGroup inside) keeps the parallel dispatch path allocation-free.
type gemmCall struct {
	transA, transB bool
	m, n, k        int
	alpha, beta    float32
	a, b, c        []float32
	byCols         bool
	wg             sync.WaitGroup
}

var (
	gemmOnce  sync.Once
	gemmTaskQ chan gemmTask

	gemmCallMu   sync.Mutex
	gemmCallFree []*gemmCall
)

// startGemmWorkers spins up the persistent compute workers. Workers
// block on the task queue when idle; the pool is sized to the machine
// since per-call parallelism is capped by GOMAXPROCS anyway.
//
//scaffe:coldpath one-time lazy worker-pool spawn behind gemmOnce
func startGemmWorkers() {
	n := runtime.NumCPU()
	if n < 1 {
		n = 1
	}
	gemmTaskQ = make(chan gemmTask, 4*n)
	for i := 0; i < n; i++ {
		go func() {
			for t := range gemmTaskQ {
				t.call.runSpan(t.lo, t.hi)
				t.call.wg.Done()
			}
		}()
	}
}

func getGemmCall() *gemmCall {
	gemmCallMu.Lock()
	var g *gemmCall
	if n := len(gemmCallFree); n > 0 {
		g = gemmCallFree[n-1]
		gemmCallFree = gemmCallFree[:n-1]
	}
	gemmCallMu.Unlock()
	if g == nil {
		//scaffe:nolint hotpath pool-miss construction; steady state hits the free list
		g = new(gemmCall)
	}
	return g
}

func putGemmCall(g *gemmCall) {
	g.a, g.b, g.c = nil, nil, nil
	gemmCallMu.Lock()
	//scaffe:nolint hotpath pool release; append reuses capacity freed by the matching get
	gemmCallFree = append(gemmCallFree, g)
	gemmCallMu.Unlock()
}

// runSpan executes one partition: [lo,hi) rows of C, or [lo,hi)
// columns when the call is column-partitioned.
func (g *gemmCall) runSpan(lo, hi int) {
	ilo, ihi, jlo, jhi := 0, g.m, 0, g.n
	if g.byCols {
		jlo, jhi = lo, hi
	} else {
		ilo, ihi = lo, hi
	}
	scaleCSpan(g.n, g.beta, g.c, ilo, ihi, jlo, jhi)
	gemmKernel(g.transA, g.transB, g.m, g.n, g.k, g.alpha, g.a, g.b, g.c, ilo, ihi, jlo, jhi)
}

// --- kernels --------------------------------------------------------------

// scaleCSpan applies the beta prologue to C[ilo:ihi, jlo:jhi]; the
// kernels below are pure accumulators.
func scaleCSpan(n int, beta float32, c []float32, ilo, ihi, jlo, jhi int) {
	if beta == 1 {
		return
	}
	for i := ilo; i < ihi; i++ {
		ci := c[i*n+jlo : i*n+jhi]
		if beta == 0 {
			for j := range ci {
				ci[j] = 0
			}
		} else {
			for j := range ci {
				ci[j] *= beta
			}
		}
	}
}

// gemmKernel accumulates alpha*op(A)*op(B) into C[ilo:ihi, jlo:jhi].
func gemmKernel(transA, transB bool, m, n, k int, alpha float32, a, b, c []float32, ilo, ihi, jlo, jhi int) {
	switch {
	case !transA && !transB:
		gemmNN(n, k, alpha, a, b, c, ilo, ihi, jlo, jhi)
	case !transA && transB:
		gemmNT(n, k, alpha, a, b, c, ilo, ihi, jlo, jhi)
	case transA && !transB:
		gemmTN(m, n, k, alpha, a, b, c, ilo, ihi, jlo, jhi)
	default:
		gemmTT(m, n, k, alpha, a, b, c, ilo, ihi, jlo, jhi)
	}
}

// gemmNN handles C += alpha*A*B. B columns are processed in gemmNB-wide
// blocks; blocks large enough to pay for it are packed into a
// contiguous panel from the workspace pool, so every row tile after the
// first streams the panel out of cache instead of re-reading B from
// memory. Per C element the accumulation runs in ascending-p order —
// identical to the unblocked kernel.
func gemmNN(n, k int, alpha float32, a, b, c []float32, ilo, ihi, jlo, jhi int) {
	pack := ihi-ilo >= 2*gemmMR && k*min(gemmNB, jhi-jlo) >= gemmPackMin
	var buf *[]float32
	var panel []float32
	if pack {
		buf = GetScratch(k * min(gemmNB, jhi-jlo))
		panel = *buf
	}
	for jb := jlo; jb < jhi; jb += gemmNB {
		w := min(gemmNB, jhi-jb)
		bp := b
		boff, bstride := jb, n
		if pack {
			for p := 0; p < k; p++ {
				copy(panel[p*w:(p+1)*w], b[p*n+jb:p*n+jb+w])
			}
			bp, boff, bstride = panel, 0, w
		}
		i := ilo
		for ; i+gemmMR <= ihi; i += gemmMR {
			c0 := c[i*n+jb : i*n+jb+w]
			c1 := c[(i+1)*n+jb : (i+1)*n+jb+w]
			c2 := c[(i+2)*n+jb : (i+2)*n+jb+w]
			c3 := c[(i+3)*n+jb : (i+3)*n+jb+w]
			a0 := a[i*k : i*k+k]
			a1 := a[(i+1)*k : (i+1)*k+k]
			a2 := a[(i+2)*k : (i+2)*k+k]
			a3 := a[(i+3)*k : (i+3)*k+k]
			for p := 0; p < k; p++ {
				s0 := alpha * a0[p]
				s1 := alpha * a1[p]
				s2 := alpha * a2[p]
				s3 := alpha * a3[p]
				if s0 == 0 && s1 == 0 && s2 == 0 && s3 == 0 {
					continue
				}
				row := bp[p*bstride+boff : p*bstride+boff+w]
				for j, bv := range row {
					c0[j] += s0 * bv
					c1[j] += s1 * bv
					c2[j] += s2 * bv
					c3[j] += s3 * bv
				}
			}
		}
		for ; i < ihi; i++ {
			ci := c[i*n+jb : i*n+jb+w]
			ai := a[i*k : i*k+k]
			for p, av := range ai {
				if av == 0 {
					continue
				}
				s := alpha * av
				row := bp[p*bstride+boff : p*bstride+boff+w]
				for j, bv := range row {
					ci[j] += s * bv
				}
			}
		}
	}
	if pack {
		PutScratch(buf)
	}
}

// gemmNT handles C += alpha*A*B^T: each C element is a dot product of
// an A row and a B row. The row tile computes four dots per B-row pass,
// each with its own sequential accumulator, so per-element rounding
// matches the unblocked kernel exactly.
func gemmNT(n, k int, alpha float32, a, b, c []float32, ilo, ihi, jlo, jhi int) {
	i := ilo
	for ; i+gemmMR <= ihi; i += gemmMR {
		a0 := a[i*k : i*k+k]
		a1 := a[(i+1)*k : (i+1)*k+k]
		a2 := a[(i+2)*k : (i+2)*k+k]
		a3 := a[(i+3)*k : (i+3)*k+k]
		for j := jlo; j < jhi; j++ {
			bj := b[j*k : j*k+k]
			var acc0, acc1, acc2, acc3 float32
			for p, bv := range bj {
				acc0 += a0[p] * bv
				acc1 += a1[p] * bv
				acc2 += a2[p] * bv
				acc3 += a3[p] * bv
			}
			c[i*n+j] += alpha * acc0
			c[(i+1)*n+j] += alpha * acc1
			c[(i+2)*n+j] += alpha * acc2
			c[(i+3)*n+j] += alpha * acc3
		}
	}
	for ; i < ihi; i++ {
		ai := a[i*k : i*k+k]
		ci := c[i*n : i*n+n]
		for j := jlo; j < jhi; j++ {
			bj := b[j*k : j*k+k]
			var acc float32
			for p := range ai {
				acc += ai[p] * bj[p]
			}
			ci[j] += alpha * acc
		}
	}
}

// gemmTN handles C += alpha*A^T*B with A stored K×M: the row tile reads
// four adjacent A columns per p (contiguous in memory) and shares each
// B-row pass across them, with the same packed-panel blocking as
// gemmNN.
func gemmTN(m, n, k int, alpha float32, a, b, c []float32, ilo, ihi, jlo, jhi int) {
	pack := ihi-ilo >= 2*gemmMR && k*min(gemmNB, jhi-jlo) >= gemmPackMin
	var buf *[]float32
	var panel []float32
	if pack {
		buf = GetScratch(k * min(gemmNB, jhi-jlo))
		panel = *buf
	}
	for jb := jlo; jb < jhi; jb += gemmNB {
		w := min(gemmNB, jhi-jb)
		bp := b
		boff, bstride := jb, n
		if pack {
			for p := 0; p < k; p++ {
				copy(panel[p*w:(p+1)*w], b[p*n+jb:p*n+jb+w])
			}
			bp, boff, bstride = panel, 0, w
		}
		i := ilo
		for ; i+gemmMR <= ihi; i += gemmMR {
			c0 := c[i*n+jb : i*n+jb+w]
			c1 := c[(i+1)*n+jb : (i+1)*n+jb+w]
			c2 := c[(i+2)*n+jb : (i+2)*n+jb+w]
			c3 := c[(i+3)*n+jb : (i+3)*n+jb+w]
			for p := 0; p < k; p++ {
				ap := a[p*m+i : p*m+i+gemmMR]
				s0 := alpha * ap[0]
				s1 := alpha * ap[1]
				s2 := alpha * ap[2]
				s3 := alpha * ap[3]
				if s0 == 0 && s1 == 0 && s2 == 0 && s3 == 0 {
					continue
				}
				row := bp[p*bstride+boff : p*bstride+boff+w]
				for j, bv := range row {
					c0[j] += s0 * bv
					c1[j] += s1 * bv
					c2[j] += s2 * bv
					c3[j] += s3 * bv
				}
			}
		}
		for ; i < ihi; i++ {
			ci := c[i*n+jb : i*n+jb+w]
			for p := 0; p < k; p++ {
				av := a[p*m+i]
				if av == 0 {
					continue
				}
				s := alpha * av
				row := bp[p*bstride+boff : p*bstride+boff+w]
				for j, bv := range row {
					ci[j] += s * bv
				}
			}
		}
	}
	if pack {
		PutScratch(buf)
	}
}

// gemmTT handles the doubly-transposed case. No model layer lowers onto
// it, so it stays a plain dot loop.
func gemmTT(m, n, k int, alpha float32, a, b, c []float32, ilo, ihi, jlo, jhi int) {
	for i := ilo; i < ihi; i++ {
		ci := c[i*n : i*n+n]
		for j := jlo; j < jhi; j++ {
			var acc float32
			for p := 0; p < k; p++ {
				acc += a[p*m+i] * b[j*k+p]
			}
			ci[j] += alpha * acc
		}
	}
}
