package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"scaffe/internal/coll"
	"scaffe/internal/core"
	"scaffe/internal/data"
	"scaffe/internal/fault"
	"scaffe/internal/layers"
	"scaffe/internal/models"
	"scaffe/internal/sim"
)

// Elastic sweeps membership churn rate against snapshot interval for
// the elastic scale-up extension: every crashed rank is later
// readmitted through the join path (announce, admit at an iteration
// boundary, catch-up replay from the latest snapshot), and each
// scenario is compared against the static-shrink baseline that absorbs
// the same crashes but never grows back. The interesting trade: a
// rejoin costs an extra rollback at admission time, but the grown
// world finishes the remaining iterations at the original sharding
// instead of limping along with fewer, more loaded ranks.
func Elastic(o Options) (*Table, error) {
	iters := o.iters(48)
	if iters < 16 {
		iters = 16
	}
	dir, err := os.MkdirTemp("", "scaffe-elastic")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	mk := func(name string, snapshotEvery int) core.Config {
		cfg := core.Config{
			Spec:        models.SpecFromNet(models.BuildTinyNet(1, 1)),
			RealNet:     models.BuildTinyNet,
			Dataset:     data.NewSynthetic("tiny", layers.Shape{C: 3, H: 8, W: 8}, 4, 1<<16, 11),
			GPUs:        4,
			Nodes:       2,
			GPUsPerNode: 2,
			GlobalBatch: 32,
			Iterations:  iters,
			Design:      core.SCOB,
			Reduce:      coll.Binomial,
			Source:      core.MemorySource,
			Seed:        7,
			BaseLR:      0.05,
			Momentum:    0.9,
		}
		if snapshotEvery > 0 {
			cfg.SnapshotEvery = snapshotEvery
			cfg.SnapshotPrefix = filepath.Join(dir, name)
		}
		return cfg
	}

	// Calibrate the virtual timescale with a fault-free run, so event
	// times derive from the config instead of hardcoding cluster speed.
	base, err := core.Run(mk("base", 0))
	if err != nil {
		return nil, err
	}
	baseT := base.TotalTime

	t := &Table{
		ID: "elastic",
		Title: fmt.Sprintf("Churn rate vs snapshot interval: elastic scale-up against the static-shrink baseline (tiny net, 4 GPUs, %d iterations)",
			iters),
		Columns: []string{"churn", "snapshot every", "joins", "mean admit",
			"final world", "elastic time", "static-shrink time", "vs static"},
	}

	// Crash ranks from the top so the root (and the loss record)
	// survives every scenario; each crash is followed by a rejoin of
	// the same rank before the next cycle begins.
	crashRanks := []int{3, 2}
	at := func(f float64) sim.Time { return sim.Time(float64(baseT) * f) }
	for _, cycles := range []int{1, 2} {
		var churn, shrinkOnly fault.Schedule
		for i := 0; i < cycles; i++ {
			crash := at(0.2 + 0.35*float64(i))
			rejoin := at(0.35 + 0.35*float64(i))
			churn = append(churn,
				fault.Event{At: crash, Kind: fault.Crash, Rank: crashRanks[i]},
				fault.Event{At: rejoin, Kind: fault.Join, Rank: crashRanks[i]})
			shrinkOnly = append(shrinkOnly,
				fault.Event{At: crash, Kind: fault.Crash, Rank: crashRanks[i]})
		}
		for _, every := range []int{iters / 12, iters / 6, iters / 3} {
			if every == 0 {
				every = 1
			}
			name := fmt.Sprintf("c%d-e%d", cycles, every)
			elCfg := mk(name+"-el", every)
			elCfg.Faults = churn
			el, err := core.Run(elCfg)
			if err != nil {
				return nil, fmt.Errorf("elastic experiment (%s): %w", name, err)
			}
			shCfg := mk(name+"-sh", every)
			shCfg.Faults = shrinkOnly
			sh, err := core.Run(shCfg)
			if err != nil {
				return nil, fmt.Errorf("elastic experiment (%s baseline): %w", name, err)
			}
			rep := el.Fault
			var admit sim.Duration
			for _, j := range rep.Joins {
				admit += j.AdmissionLatency()
			}
			if n := len(rep.Joins); n > 0 {
				admit /= sim.Duration(n)
			}
			delta := 100 * (float64(el.TotalTime) - float64(sh.TotalTime)) / float64(sh.TotalTime)
			t.AddRow(
				fmt.Sprintf("%d crash+rejoin", cycles),
				fmt.Sprintf("%d iters", every),
				fmt.Sprintf("%d", len(rep.Joins)),
				admit.String(),
				fmt.Sprintf("%d vs %d", rep.Survivors, sh.Fault.Survivors),
				el.TotalTime.String(), sh.TotalTime.String(),
				fmt.Sprintf("%+.1f%%", delta))
		}
	}
	t.Note("Every rejoin announces at the join desk, is admitted by the root at the next iteration boundary, and triggers a catch-up replay: all members roll back to the latest snapshot and the root tree-broadcasts parameters+momentum to the grown world (checksummed when the integrity plane is armed). Mean admit is announce-to-admission latency — dominated by waiting out the current iteration, not by the handshake itself.")
	t.Note("\"vs static\" compares against absorbing the same crashes without ever growing back. The rejoin's extra rollback is repaid over the remaining iterations by the grown world's lighter per-rank shard; at this tiny scale the replay dominates (small positive overhead, shrinking with the snapshot interval), while the baseline permanently runs on fewer, more loaded ranks and ends the training below its provisioned size.")
	return t, nil
}
