package core

import (
	"strings"
	"testing"

	"scaffe/internal/coll"
	"scaffe/internal/data"
	"scaffe/internal/layers"
	"scaffe/internal/models"
	"scaffe/internal/tensor"
)

// tinyRealConfig returns a real-compute config on the tiny net.
func tinyRealConfig(gpus, batch, iters int) Config {
	net := models.BuildTinyNet(1, 1)
	return Config{
		Spec:        models.SpecFromNet(net),
		RealNet:     models.BuildTinyNet,
		Dataset:     data.NewSynthetic("tiny", layers.Shape{C: 3, H: 8, W: 8}, 4, 4096, 11),
		GPUs:        gpus,
		Nodes:       4,
		GPUsPerNode: 4,
		GlobalBatch: batch,
		Iterations:  iters,
		Design:      SCB,
		Reduce:      coll.Binomial,
		Source:      MemorySource,
		Seed:        7,
		BaseLR:      0.05,
		Momentum:    0.9,

		CaptureFinalParams: true,
	}
}

func timingConfig(spec *models.Spec, gpus, batch, iters int) Config {
	return Config{
		Spec:        spec,
		GPUs:        gpus,
		GlobalBatch: batch,
		Iterations:  iters,
		Design:      SCB,
		Reduce:      coll.Tuned,
		Source:      MemorySource,
		Seed:        1,
	}
}

func TestValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"no spec", func(c *Config) { c.Spec = nil }},
		{"zero gpus", func(c *Config) { c.GPUs = 0 }},
		{"zero batch", func(c *Config) { c.GlobalBatch = 0 }},
		{"zero iters", func(c *Config) { c.Iterations = 0 }},
		{"indivisible batch", func(c *Config) { c.GlobalBatch = 7; c.GPUs = 4 }},
		{"bad design", func(c *Config) { c.Design = Design(42) }},
		{"ps one gpu", func(c *Config) { c.Design = ParamServer; c.GPUs = 1; c.GlobalBatch = 1 }},
		{"ps too many", func(c *Config) { c.Design = ParamServer; c.GPUs = 17; c.GlobalBatch = 17 * 16 }},
		{"caffe multinode", func(c *Config) { c.Design = CaffeMT; c.GPUs = 8; c.GPUsPerNode = 4; c.Nodes = 2 }},
	}
	for _, tc := range cases {
		spec, _ := models.ByName("tiny")
		cfg := timingConfig(spec, 4, 16, 2)
		tc.mut(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: expected error, got nil", tc.name)
		}
	}
}

func TestTimingModeAllDesignsRun(t *testing.T) {
	spec, err := models.ByName("cifar10-quick")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []Design{SCB, SCOB, SCOBR, CNTKLike, ParamServer} {
		cfg := timingConfig(spec, 8, 64, 3)
		cfg.Design = d
		if d == ParamServer {
			cfg.GlobalBatch = 63 // 7 workers
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if res.TotalTime <= 0 {
			t.Errorf("%v: zero total time", d)
		}
		if res.SamplesPerSec <= 0 {
			t.Errorf("%v: zero throughput", d)
		}
	}
}

func TestCaffeMTSingleNode(t *testing.T) {
	spec, _ := models.ByName("cifar10-quick")
	cfg := timingConfig(spec, 8, 64, 3)
	cfg.Design = CaffeMT
	cfg.Nodes = 1
	cfg.GPUsPerNode = 16
	cfg.Source = LMDBSource
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Design != "Caffe" {
		t.Errorf("design label = %q", res.Design)
	}
}

func TestRealTrainingLossDecreases(t *testing.T) {
	cfg := tinyRealConfig(4, 32, 30)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Losses) != 30 {
		t.Fatalf("got %d losses, want 30", len(res.Losses))
	}
	first := avg(res.Losses[:5])
	last := avg(res.Losses[25:])
	if last >= first {
		t.Errorf("loss did not decrease: first5=%.4f last5=%.4f", first, last)
	}
}

func avg(xs []float32) float64 {
	var s float64
	for _, x := range xs {
		s += float64(x)
	}
	return s / float64(len(xs))
}

func TestDistributedMatchesSingleGPU(t *testing.T) {
	// The gradient-aggregation equivalence at the heart of data-
	// parallel training: N solvers on batch B/N each, summed gradients
	// scaled by 1/N, must match one solver on batch B up to float
	// reassociation.
	single, err := Run(tinyRealConfig(1, 16, 8))
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Run(tinyRealConfig(4, 16, 8))
	if err != nil {
		t.Fatal(err)
	}
	if len(single.FinalParams) != len(multi.FinalParams) {
		t.Fatalf("param count mismatch: %d vs %d", len(single.FinalParams), len(multi.FinalParams))
	}
	a := tensor.FromSlice(single.FinalParams, len(single.FinalParams))
	b := tensor.FromSlice(multi.FinalParams, len(multi.FinalParams))
	if d := tensor.MaxAbsDiff(a, b); d > 1e-3 {
		t.Errorf("distributed vs single-GPU params diverge: max |Δ| = %g", d)
	}
}

func TestOverlappedDesignsMatchSCBNumerically(t *testing.T) {
	// SC-OB and SC-OBR change the communication schedule, not the
	// math: with the same reduce tree they must produce identical
	// parameters.
	base, err := Run(tinyRealConfig(4, 16, 6))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []Design{SCOB, SCOBR} {
		cfg := tinyRealConfig(4, 16, 6)
		cfg.Design = d
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		a := tensor.FromSlice(base.FinalParams, len(base.FinalParams))
		b := tensor.FromSlice(res.FinalParams, len(res.FinalParams))
		if diff := tensor.MaxAbsDiff(a, b); diff > 1e-6 {
			t.Errorf("%v params differ from SC-B: max |Δ| = %g", d, diff)
		}
	}
}

func TestCNTKMatchesSCBNumerically(t *testing.T) {
	// The host-staged allreduce computes the same sums; every replica
	// applies the same update.
	base, err := Run(tinyRealConfig(4, 16, 5))
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyRealConfig(4, 16, 5)
	cfg.Design = CNTKLike
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := tensor.FromSlice(base.FinalParams, len(base.FinalParams))
	b := tensor.FromSlice(res.FinalParams, len(res.FinalParams))
	if diff := tensor.MaxAbsDiff(a, b); diff > 1e-6 {
		t.Errorf("CNTK-like params differ from SC-B: max |Δ| = %g", diff)
	}
}

func TestSCOBFasterThanSCB(t *testing.T) {
	// Figure 13: overlapping propagation with the forward pass hides
	// broadcast latency for communication-heavy models.
	spec := models.GoogLeNet()
	base := timingConfig(spec, 32, 256, 3)
	base.Nodes, base.GPUsPerNode = 2, 16
	scb, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	ob := base
	ob.Design = SCOB
	scob, err := Run(ob)
	if err != nil {
		t.Fatal(err)
	}
	if scob.TotalTime >= scb.TotalTime {
		t.Errorf("SC-OB (%v) should beat SC-B (%v)", scob.TotalTime, scb.TotalTime)
	}
	if scob.Phases.Propagation >= scb.Phases.Propagation {
		t.Errorf("SC-OB propagation time (%v) should shrink vs SC-B (%v)",
			scob.Phases.Propagation, scb.Phases.Propagation)
	}
}

func TestSCOBRFasterThanSCOB(t *testing.T) {
	spec := models.GoogLeNet()
	base := timingConfig(spec, 32, 256, 3)
	base.Nodes, base.GPUsPerNode = 2, 16
	base.Design = SCOB
	scob, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	obr := base
	obr.Design = SCOBR
	scobr, err := Run(obr)
	if err != nil {
		t.Fatal(err)
	}
	if scobr.TotalTime >= scob.TotalTime {
		t.Errorf("SC-OBR (%v) should beat SC-OB (%v)", scobr.TotalTime, scob.TotalTime)
	}
}

func TestDeterministicRuns(t *testing.T) {
	spec, _ := models.ByName("cifar10-quick")
	cfg := timingConfig(spec, 16, 128, 3)
	cfg.Design = SCOBR
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalTime != b.TotalTime {
		t.Errorf("identical configs produced %v vs %v", a.TotalTime, b.TotalTime)
	}
}

func TestOOMDetection(t *testing.T) {
	spec := models.GoogLeNet()
	cfg := timingConfig(spec, 2, 2048, 1) // 1024 samples per GPU
	cfg.Nodes, cfg.GPUsPerNode = 1, 16
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("expected out-of-memory error for 1024 samples/GPU on GoogLeNet")
	}
	if !strings.Contains(err.Error(), "out of memory") {
		t.Errorf("error %q does not mention memory", err)
	}
}

func TestWeakScaling(t *testing.T) {
	spec, _ := models.ByName("cifar10-quick")
	cfg := timingConfig(spec, 4, 32, 2)
	cfg.Weak = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LocalBatch != 32 {
		t.Errorf("weak scaling local batch = %d, want 32", res.LocalBatch)
	}
	cfg.Weak = false
	res2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.LocalBatch != 8 {
		t.Errorf("strong scaling local batch = %d, want 8", res2.LocalBatch)
	}
}

func TestLMDBSourceSlowerBeyondSlotLimit(t *testing.T) {
	// The Figure 8 cliff: at 96+ readers LMDB batches cost much more
	// than at 64.
	spec, _ := models.ByName("cifar10-quick")
	run := func(gpus int) float64 {
		cfg := timingConfig(spec, gpus, gpus*4, 3)
		cfg.Nodes, cfg.GPUsPerNode = 12, 16
		cfg.Source = LMDBSource
		cfg.Weak = false
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.SamplesPerSec / float64(gpus)
	}
	perGPU64 := run(64)
	perGPU160 := run(160)
	if perGPU160 >= perGPU64*0.8 {
		t.Errorf("LMDB per-GPU throughput should collapse past 64 readers: 64->%.0f, 160->%.0f",
			perGPU64, perGPU160)
	}
}

func TestPhaseBreakdownSums(t *testing.T) {
	spec, _ := models.ByName("cifar10-quick")
	cfg := timingConfig(spec, 8, 64, 3)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases.Total() <= 0 {
		t.Error("phase breakdown is empty")
	}
	if res.Phases.Total() > res.TotalTime {
		t.Errorf("root blocked time (%v) exceeds wall time (%v)", res.Phases.Total(), res.TotalTime)
	}
	if res.TimePerIter() <= 0 {
		t.Error("TimePerIter must be positive")
	}
}

func TestDesignAndSourceStrings(t *testing.T) {
	if SCB.String() != "SC-B" || SCOBR.String() != "SC-OBR" || Design(99).String() != "unknown" {
		t.Error("design strings wrong")
	}
	if LMDBSource.String() != "lmdb" || SourceKind(99).String() != "unknown" {
		t.Error("source strings wrong")
	}
}

func TestBucketedSCOBRMatchesUnbucketed(t *testing.T) {
	// Gradient fusion must not change the math, only the schedule.
	base := tinyRealConfig(4, 16, 5)
	base.Design = SCOBR
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	bucketed := base
	bucketed.BucketBytes = 4 << 10 // force multi-layer buckets on the tiny net
	res, err := Run(bucketed)
	if err != nil {
		t.Fatal(err)
	}
	a := tensor.FromSlice(plain.FinalParams, len(plain.FinalParams))
	b := tensor.FromSlice(res.FinalParams, len(res.FinalParams))
	if d := tensor.MaxAbsDiff(a, b); d > 1e-6 {
		t.Errorf("bucketed params diverge: max |Δ| = %g", d)
	}
}

func TestBucketingUShape(t *testing.T) {
	// GoogLeNet's many small layers make per-layer reduces latency-
	// bound at 160 GPUs; megabyte buckets amortize the per-collective
	// cost, but fusing the whole model destroys backward overlap —
	// the U-shape behind PyTorch DDP's default bucket size.
	mk := func(bucket int64) Config {
		spec := models.GoogLeNet()
		cfg := timingConfig(spec, 160, 1280, 3)
		cfg.Nodes, cfg.GPUsPerNode = 12, 16
		cfg.Design = SCOBR
		cfg.BucketBytes = bucket
		return cfg
	}
	plain, err := Run(mk(0))
	if err != nil {
		t.Fatal(err)
	}
	fused, err := Run(mk(4 << 20))
	if err != nil {
		t.Fatal(err)
	}
	whole, err := Run(mk(1 << 30))
	if err != nil {
		t.Fatal(err)
	}
	if fused.TotalTime >= plain.TotalTime {
		t.Errorf("4MB bucketing (%v) should beat per-layer reduces (%v) at 160 GPUs",
			fused.TotalTime, plain.TotalTime)
	}
	if whole.TotalTime <= fused.TotalTime {
		t.Errorf("whole-model fusion (%v) should lose overlap vs 4MB buckets (%v)",
			whole.TotalTime, fused.TotalTime)
	}
}

func TestBucketCoverage(t *testing.T) {
	// Every parameter layer lands in exactly one bucket, and buckets
	// cover the full parameter range.
	spec := models.GoogLeNet()
	cfg := timingConfig(spec, 2, 2, 1)
	w := newWorkload(&cfg, 1)
	w.buildBuckets(spec, 8<<20)
	if len(w.buckets) < 2 {
		t.Fatalf("expected multiple buckets, got %d", len(w.buckets))
	}
	var total int64
	covered := make(map[int]bool)
	for _, b := range w.buckets {
		total += b.buf.Bytes
		for l := b.lo; l <= b.hi; l++ {
			if spec.Layers[l].ParamElems > 0 {
				if covered[l] {
					t.Fatalf("layer %d in two buckets", l)
				}
				covered[l] = true
			}
		}
	}
	if total != spec.ParamBytes() {
		t.Errorf("buckets cover %d bytes, model has %d", total, spec.ParamBytes())
	}
	if len(covered) != len(spec.ParamLayers()) {
		t.Errorf("buckets cover %d param layers, model has %d", len(covered), len(spec.ParamLayers()))
	}
	// Buckets complete in backward order: descending lo.
	for i := 1; i < len(w.buckets); i++ {
		if w.buckets[i].lo >= w.buckets[i-1].lo {
			t.Fatal("buckets not in backward order")
		}
	}
}
