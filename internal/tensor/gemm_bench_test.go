package tensor

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// baselineGemm is the pre-blocking kernel, kept verbatim as the
// speedup baseline for BenchmarkGemmShapes: per-row axpy/dot loops with
// per-call goroutine fan-out.
func baselineGemm(transA, transB bool, m, n, k int, alpha float32, a []float32, b []float32, beta float32, c []float32) {
	if len(c) < m*n {
		panic("tensor: gemm C too small")
	}
	workers := runtime.GOMAXPROCS(0)
	if m*n < gemmParallelThreshold || workers < 2 {
		baselineGemmRows(transA, transB, m, n, k, alpha, a, b, beta, c, 0, m)
		return
	}
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	per := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			baselineGemmRows(transA, transB, m, n, k, alpha, a, b, beta, c, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func baselineGemmRows(transA, transB bool, m, n, k int, alpha float32, a, b []float32, beta float32, c []float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		ci := c[i*n : (i+1)*n]
		if beta == 0 {
			for j := range ci {
				ci[j] = 0
			}
		} else if beta != 1 {
			for j := range ci {
				ci[j] *= beta
			}
		}
		switch {
		case !transA && !transB:
			ai := a[i*k : (i+1)*k]
			for p, av := range ai {
				if av == 0 {
					continue
				}
				s := alpha * av
				bp := b[p*n : (p+1)*n]
				for j, bv := range bp {
					ci[j] += s * bv
				}
			}
		case !transA && transB:
			ai := a[i*k : (i+1)*k]
			for j := 0; j < n; j++ {
				bj := b[j*k : (j+1)*k]
				var acc float32
				for p := range ai {
					acc += ai[p] * bj[p]
				}
				ci[j] += alpha * acc
			}
		case transA && !transB:
			for p := 0; p < k; p++ {
				av := a[p*m+i]
				if av == 0 {
					continue
				}
				s := alpha * av
				bp := b[p*n : (p+1)*n]
				for j, bv := range bp {
					ci[j] += s * bv
				}
			}
		default:
			for j := 0; j < n; j++ {
				var acc float32
				for p := 0; p < k; p++ {
					acc += a[p*m+i] * b[j*k+p]
				}
				ci[j] += alpha * acc
			}
		}
	}
}

// gemmShape is one layer-sized multiply from the paper's models, as
// lowered by im2col (conv: M=outC/G, N=outH·outW, K=inC/G·kh·kw) or
// the fully-connected layers (M=batch, N=outN, K=inElems).
type gemmShape struct {
	name           string
	transA, transB bool
	m, n, k        int
}

var gemmShapes = []gemmShape{
	{"alexnet-conv1-fwd", false, false, 96, 3025, 363},
	{"alexnet-conv2-fwd", false, false, 128, 729, 1200},
	{"alexnet-conv3-fwd", false, false, 384, 169, 2304},
	{"alexnet-conv2-dw", false, true, 128, 1200, 729},
	{"alexnet-conv2-din", true, false, 1200, 729, 128},
	{"alexnet-fc6-fwd", false, true, 32, 4096, 9216},
	{"googlenet-3a3x3-fwd", false, false, 128, 784, 864},
}

// BenchmarkGemmShapes times the blocked kernel and the pre-PR baseline
// over AlexNet/GoogLeNet layer shapes; the gflops metric makes the
// comparison scale-free.
func BenchmarkGemmShapes(b *testing.B) {
	kernels := []struct {
		name string
		fn   func(bool, bool, int, int, int, float32, []float32, []float32, float32, []float32)
	}{
		{"blocked", Gemm},
		{"baseline", baselineGemm},
	}
	for _, sh := range gemmShapes {
		rng := rand.New(rand.NewSource(1))
		am, ak := sh.m, sh.k
		if sh.transA {
			am, ak = sh.k, sh.m
		}
		bk, bn := sh.k, sh.n
		if sh.transB {
			bk, bn = sh.n, sh.k
		}
		a := randSlice(rng, am*ak)
		bb := randSlice(rng, bk*bn)
		c := make([]float32, sh.m*sh.n)
		flops := 2 * float64(sh.m) * float64(sh.n) * float64(sh.k)
		for _, kr := range kernels {
			b.Run(sh.name+"/"+kr.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					kr.fn(sh.transA, sh.transB, sh.m, sh.n, sh.k, 1, a, bb, 0, c)
				}
				b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "gflops")
			})
		}
	}
}

// BenchmarkGemv times the dedicated matrix-vector path against routing
// the same shape through Gemm with n=1 (what the code used to do).
func BenchmarkGemv(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const m, k = 4096, 1024
	a := randSlice(rng, m*k)
	x := randSlice(rng, k)
	y := make([]float32, m)
	b.Run("gemv", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Gemv(false, m, k, 1, a, x, 0, y)
		}
	})
	b.Run("gemm-n1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Gemm(false, false, m, 1, k, 1, a, x, 0, y)
		}
	})
}
