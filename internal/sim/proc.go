package sim

// Proc is a simulated process: a goroutine scheduled cooperatively by
// the kernel. At most one proc runs at any instant, so proc code may
// touch shared simulation state without locks.
type Proc struct {
	k        *Kernel
	name     string
	wake     chan struct{}
	yield    chan struct{}
	finished bool
	killed   bool

	// waitSeq/waitArmed guard completion wake-ups: every Wait arms a
	// fresh sequence number, and a wake event only delivers if the proc
	// is still parked on that same wait. This lets a completion and a
	// timeout race for the same parked proc without ever resuming it
	// twice (a double resume would block the kernel goroutine).
	waitSeq   uint64
	waitArmed bool
}

// procKilled is the panic value a killed proc unwinds with; Spawn's
// recovery treats it as a normal exit.
type procKilled struct{}

// IsKilled reports whether a recovered panic value is the proc-kill
// sentinel, for intermediate recover()s that must not swallow it.
func IsKilled(rec any) bool {
	_, ok := rec.(procKilled)
	return ok
}

// Name returns the name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// Finished reports whether the proc has returned (or been killed).
func (p *Proc) Finished() bool { return p.finished }

// Kill terminates the proc at the current virtual time: its next
// resumption panics with a sentinel that the kernel treats as a normal
// exit. This is the fault plane's rank-crash primitive. Killing a
// finished or already-killed proc is a no-op.
func (p *Proc) Kill() {
	if p.finished || p.killed {
		return
	}
	p.killed = true
	p.k.atResume(p.k.now, p)
}

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// park yields control to the kernel and blocks until some event
// resumes this proc. A killed proc unwinds here instead of returning.
func (p *Proc) park() {
	p.yield <- struct{}{}
	<-p.wake
	if p.killed {
		panic(procKilled{})
	}
}

// armWait returns a fresh wait sequence number and marks the proc as
// parked on a guarded wait (see Proc.waitSeq).
func (p *Proc) armWait() uint64 {
	p.waitSeq++
	p.waitArmed = true
	return p.waitSeq
}

// Sleep advances this proc's virtual time by d, allowing other events
// to run in between.
func (p *Proc) Sleep(d Duration) {
	if d <= 0 {
		p.Yield()
		return
	}
	p.k.wakeAt(p, p.k.now+d)
	p.park()
}

// WaitUntil blocks until virtual time t (no-op if t is in the past,
// beyond a yield).
func (p *Proc) WaitUntil(t Time) {
	p.k.wakeAt(p, t)
	p.park()
}

// Yield gives other events scheduled for the current instant a chance
// to run before this proc continues.
func (p *Proc) Yield() {
	p.k.wakeAt(p, p.k.now)
	p.park()
}

// Wait blocks until c fires. If c has already fired it returns
// immediately without yielding.
func (p *Proc) Wait(c *Completion) {
	if c.fired {
		return
	}
	c.addWaiter(waiter{p, p.armWait()})
	p.park()
	p.waitArmed = false
}

// WaitTimeout blocks until c fires or d virtual time elapses,
// whichever comes first, and reports whether c has fired. It is the
// primitive under fault-aware MPI waits: a deadline that expires
// without progress lets the caller consult the fault plane instead of
// blocking forever on a dead peer.
func (p *Proc) WaitTimeout(c *Completion, d Duration) bool {
	if c.fired {
		return true
	}
	seq := p.armWait()
	c.addWaiter(waiter{p, seq})
	p.k.atResumeIf(p.k.now+d, p, seq)
	p.park()
	p.waitArmed = false
	return c.fired
}

// WaitAll blocks until every completion in cs has fired.
func (p *Proc) WaitAll(cs ...*Completion) {
	for _, c := range cs {
		p.Wait(c)
	}
}
