package experiments

import (
	"fmt"

	"scaffe/internal/coll"
	"scaffe/internal/core"
	"scaffe/internal/data"
	"scaffe/internal/fault"
	"scaffe/internal/layers"
	"scaffe/internal/models"
	"scaffe/internal/sim"
)

// SDC sweeps injected silent-data-corruption rates against the
// integrity plane's two armed modes. Wire events corrupt checksummed
// transfers on the reduction tree's links (caught by the per-chunk
// checksums and, in recover mode, healed by retransmission); bit flips
// land in the root's resident parameters, invisible to any wire
// checksum, and are caught by the numeric-health watchdog at the next
// update gate (recover mode micro-rolls-back from the in-memory
// last-good copy). The overhead column isolates what detection and
// repair cost against an identical fault-free run.
func SDC(o Options) (*Table, error) {
	iters := o.iters(24)
	if iters < 12 {
		iters = 12
	}

	mk := func(mode core.IntegrityMode) core.Config {
		return core.Config{
			Spec:        models.SpecFromNet(models.BuildTinyNet(1, 1)),
			RealNet:     models.BuildTinyNet,
			Dataset:     data.NewSynthetic("tiny", layers.Shape{C: 3, H: 8, W: 8}, 4, 1<<16, 11),
			GPUs:        4,
			Nodes:       2,
			GPUsPerNode: 2,
			GlobalBatch: 32,
			Iterations:  iters,
			Design:      core.SCB,
			Reduce:      coll.Binomial,
			Source:      core.MemorySource,
			Seed:        7,
			BaseLR:      0.05,
			Momentum:    0.9,
			Integrity:   mode,
		}
	}

	// Calibrate: the fault-free total fixes the virtual timescale, so
	// injection times derive from the config instead of being hardcoded
	// against the cluster model.
	base, err := core.Run(mk(core.IntegrityOff))
	if err != nil {
		return nil, err
	}
	baseT := base.TotalTime

	// The binomial tree's links over 4 ranks; each carries checksummed
	// traffic every iteration.
	links := [][2]int{{1, 0}, {3, 2}, {2, 0}}

	// sched builds a deterministic schedule of `flips` parameter bit
	// flips at the root plus `wires` one-shot link corruptions, spread
	// across the middle of the calibrated run.
	sched := func(flips, wires int) fault.Schedule {
		var s fault.Schedule
		for i := 0; i < flips; i++ {
			frac := 0.2 + 0.5*float64(i)/float64(max(flips, 1))
			s = append(s, fault.Event{
				At: sim.Time(float64(baseT) * frac), Kind: fault.BitFlip,
				Rank: 0, Word: 64 * (i + 1), Bit: 30,
			})
		}
		for i := 0; i < wires; i++ {
			frac := 0.15 + 0.6*float64(i)/float64(max(wires, 1))
			l := links[i%len(links)]
			s = append(s, fault.Event{
				At: sim.Time(float64(baseT) * frac), Kind: fault.CorruptWire,
				Src: l[0], Dst: l[1], N: 1 + i/len(links),
			})
		}
		return s
	}

	t := &Table{
		ID:    "sdc",
		Title: fmt.Sprintf("Silent-data-corruption drill: detection and recovery under the integrity plane (tiny net, 4 GPUs, %d iterations)", iters),
		Columns: []string{"mode", "bitflips", "wire events", "detected", "watchdog trips",
			"retransmits", "rollbacks", "total time", "overhead"},
	}

	for _, mode := range []core.IntegrityMode{core.IntegrityDetect, core.IntegrityRecover} {
		for _, rate := range []struct{ flips, wires int }{{0, 0}, {1, 3}, {3, 6}} {
			cfg := mk(mode)
			cfg.Faults = sched(rate.flips, rate.wires)
			res, err := core.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("sdc experiment (%s f%d w%d): %w", mode, rate.flips, rate.wires, err)
			}
			ir := res.Integrity
			overhead := 100 * (float64(res.TotalTime) - float64(baseT)) / float64(baseT)
			t.AddRow(mode.String(),
				fmt.Sprintf("%d", rate.flips), fmt.Sprintf("%d", rate.wires),
				fmt.Sprintf("%d", ir.Detected), fmt.Sprintf("%d", ir.WatchdogTrips),
				fmt.Sprintf("%d", ir.Retransmitted), fmt.Sprintf("%d", ir.Rollbacks),
				res.TotalTime.String(), fmt.Sprintf("%+.1f%%", overhead))
		}
	}
	t.Note("Every injected wire corruption is caught by the per-chunk FNV checksums (detected == wire events in both modes) and every parameter flip by the watchdog's pre-update health gate. In recover mode each bad chunk is retransmitted and each trip micro-rolls-back from the root's in-memory last-good copy, so trips == bitflips and the overhead column prices exactly that repair. Detect mode only counts — corrupted payloads flow on and poisoned updates apply (the observe-only posture behind scaffe-train's exit code 4) — so a flipped parameter persists and keeps tripping the gate on every later iteration.")
	t.Note("Runs are bit-deterministic: the same schedule yields identical detection counts, rollback points, and final losses on every run and at any GOMAXPROCS.")
	return t, nil
}
