// Command scaffe-lint runs the repository's static analyzer over the
// given package patterns and prints one diagnostic per line as
//
//	file:line:col: [pass] message
//
// -json switches either mode to a JSON array. -diff suppresses
// diagnostics already present in a saved run, so a dirty tree can be
// gated on "no new findings". -escape runs the compiler-verified
// escape gate (internal/lint/escape.go) instead of the AST passes,
// diffing against the checked-in lint.baseline; -write-baseline
// regenerates that file.
//
// Exit status: 0 clean, 1 diagnostics found, 2 usage or load error.
// See internal/lint for the pass catalogue and annotation grammar.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"scaffe/internal/lint"
)

func main() {
	mod := flag.String("mod", "", "module root directory (default: nearest go.mod above the working directory)")
	list := flag.Bool("passes", false, "list the analysis passes and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of text lines")
	diff := flag.String("diff", "", "suppress diagnostics present in this saved-output file (text mode positions are normalized, so line drift does not mask or invent findings)")
	escape := flag.Bool("escape", false, "run the compiler-verified escape gate instead of the AST passes")
	baseline := flag.String("baseline", "lint.baseline", "escape-gate baseline file, relative to the module root")
	writeBaseline := flag.Bool("write-baseline", false, "regenerate the escape baseline from the current findings and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: scaffe-lint [-mod dir] [-json] [-diff file] [-escape [-baseline file] [-write-baseline]] [pattern ...]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Patterns are package directories relative to the module root\n")
		fmt.Fprintf(flag.CommandLine.Output(), "(\"./...\", \"./internal/core\") or module import paths. Default: ./...\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, p := range lint.Passes() {
			fmt.Printf("%-12s %s\n", p.Name, p.Doc)
		}
		return
	}

	moduleDir := *mod
	if moduleDir == "" {
		var err error
		moduleDir, err = findModuleRoot()
		if err != nil {
			fatal(err)
		}
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	if *escape {
		runEscape(moduleDir, patterns, *baseline, *writeBaseline, *jsonOut)
		return
	}

	diags, err := lint.Analyze(moduleDir, patterns)
	if err != nil {
		fatal(err)
	}
	if *diff != "" {
		diags, err = diffDiags(diags, *diff)
		if err != nil {
			fatal(err)
		}
	}
	if *jsonOut {
		printJSON(diagsJSON(diags))
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "scaffe-lint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}

// runEscape drives the compiler-verified escape gate: compute the
// hot-set escapes, then either rewrite the baseline or diff against
// it. New escapes exit 1; stale baseline entries exit 1 too, so the
// checked-in file always matches what the compiler reports.
func runEscape(moduleDir string, patterns []string, baselinePath string, write, jsonOut bool) {
	findings, err := lint.EscapeCheck(moduleDir, patterns)
	if err != nil {
		fatal(err)
	}
	if !filepath.IsAbs(baselinePath) {
		baselinePath = filepath.Join(moduleDir, baselinePath)
	}
	if write {
		if err := os.WriteFile(baselinePath, []byte(lint.FormatBaseline(findings)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "scaffe-lint: wrote %d escape(s) to %s\n", len(findings), baselinePath)
		return
	}
	content, err := os.ReadFile(baselinePath)
	if err != nil {
		if !os.IsNotExist(err) {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "scaffe-lint: no baseline at %s (treating as empty; -write-baseline creates it)\n", baselinePath)
	}
	fresh, stale := lint.DiffBaseline(findings, lint.ParseBaseline(string(content)))
	if jsonOut {
		if fresh == nil {
			fresh = []lint.EscapeFinding{}
		}
		printJSON(fresh)
	} else {
		for _, f := range fresh {
			fmt.Println(f)
		}
	}
	for _, k := range stale {
		fmt.Fprintf(os.Stderr, "scaffe-lint: stale baseline entry (compiler no longer reports it): %s\n", k)
	}
	if len(fresh) > 0 || len(stale) > 0 {
		fmt.Fprintf(os.Stderr, "scaffe-lint: %d new escape(s), %d stale baseline entr(ies); regenerate with -escape -write-baseline if intended\n",
			len(fresh), len(stale))
		os.Exit(1)
	}
}

// posPrefix strips "path:line:col: " so -diff matches a diagnostic by
// file, pass, and message even after unrelated edits shift lines.
var posPrefix = regexp.MustCompile(`^(.*?):\d+:\d+: `)

func normalizeDiag(line string) string {
	return posPrefix.ReplaceAllString(strings.TrimSpace(line), "$1: ")
}

// diffDiags drops diagnostics whose normalized form appears in the
// saved-output file at path (one scaffe-lint text line per line).
func diffDiags(diags []lint.Diagnostic, path string) ([]lint.Diagnostic, error) {
	content, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	old := map[string]bool{}
	for _, line := range strings.Split(string(content), "\n") {
		if s := normalizeDiag(line); s != "" && !strings.HasPrefix(s, "#") {
			old[s] = true
		}
	}
	var fresh []lint.Diagnostic
	for _, d := range diags {
		if !old[normalizeDiag(d.String())] {
			fresh = append(fresh, d)
		}
	}
	return fresh, nil
}

type diagJSON struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Pass    string `json:"pass"`
	Message string `json:"message"`
}

func diagsJSON(diags []lint.Diagnostic) []diagJSON {
	out := make([]diagJSON, len(diags))
	for i, d := range diags {
		out[i] = diagJSON{File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column, Pass: d.Pass, Message: d.Message}
	}
	return out
}

func printJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if v == nil {
		fmt.Println("[]")
		return
	}
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scaffe-lint:", err)
	os.Exit(2)
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
