package coll

import (
	"scaffe/internal/gpu"
	"scaffe/internal/mpi"
)

// Ireduce returns a non-blocking reduce request with the MPI-runtime
// semantics the paper measures (Section 4.2): reductions require CPU
// progression, so the operation makes no progress until Wait — all the
// communication and arithmetic happen inside the Wait call. A naive
// multi-stage Ireduce pipeline therefore exhibits no overlap, which is
// why SC-OBR exists.
func Ireduce(red Reducer, r *mpi.Rank, buf *gpu.Buffer, tag int) *mpi.Request {
	return r.NewDeferredRequest(func() {
		red.Reduce(r, buf, tag)
	})
}
