// Package xprofix pins the interprocedural propagation semantics: an
// obligation annotated at a root flows through the call graph into
// unannotated callees, and the diagnostic that fires in the callee
// names the annotated root in its chain. stepMix and stepLeaf carry no
// annotation of their own — exactly the "leaf annotation deleted"
// state — so these wants prove deletion of a leaf annotation cannot
// silence callees reachable from an annotated root. The package also
// pins the two propagation cuts (//scaffe:coldpath on a declaration
// and on a call site) and the two indirect edge kinds (a callback
// stored into a struct field, interface dispatch).
package xprofix

type buf struct {
	data []float64
}

// rootIterate is the only hotpath annotation in the direct-call chain
// below: everything stepMix and stepLeaf owe, they owe through it.
//
//scaffe:hotpath
func rootIterate(b *buf) {
	stepMix(b)
	refill(4)
	// A call-site cut: the edge is cold, so drainEvents inherits
	// nothing from this root.
	//
	//scaffe:coldpath control transfer modelled on Proc.park; the loop has its own gates
	drainEvents(b)
}

// stepMix inherits the hotpath obligation from rootIterate.
func stepMix(b *buf) {
	b.data = append(b.data, 1) // want `append may grow.*via xprofix\.rootIterate → xprofix\.stepMix`
	stepLeaf()
}

// stepLeaf is two edges from the root; the chain names the whole path.
func stepLeaf() *buf {
	return &buf{} // want `&T\{\} escapes.*via xprofix\.rootIterate → xprofix\.stepMix → xprofix\.stepLeaf`
}

// refill models the pool-miss constructor idiom: the decl-level escape
// hatch stops propagation at the boundary, so its body stays silent.
//
//scaffe:coldpath pool-miss refill; steady state hits the pool
func refill(n int) []*buf {
	out := make([]*buf, n)
	for i := range out {
		out[i] = &buf{}
	}
	return out
}

// drainEvents is only reachable through the cold call site above:
// silent.
func drainEvents(b *buf) {
	b.data = append(b.data, 2)
}

// node/graph model sched.Graph: the callback is stored into a struct
// field at registration time and invoked through the field by the hot
// runner, so the obligation must flow parameter → field → closure.
type node struct {
	action func()
}

type graph struct {
	nodes []*node
}

func (g *graph) add(action func()) *node {
	n := &node{action: action}
	g.nodes = append(g.nodes, n)
	return n
}

// run is the hot root; n.action resolves to every callback registered
// through add.
//
//scaffe:hotpath
func (g *graph) run() {
	for _, n := range g.nodes {
		n.action()
	}
}

// register is cold construction — its own allocations are silent; the
// closure it registers runs under graph.run and is hot.
func register(g *graph, b *buf) {
	g.add(func() {
		b.data = append(b.data, 3) // want `append may grow.*via xprofix\.graph\.run → xprofix\.register\.func`
	})
}

// reducer/chainRed pin interface dispatch: the hot caller sees only
// the interface, the obligation lands on every module implementation.
type reducer interface {
	reduce(b *buf)
}

type chainRed struct{}

func (chainRed) reduce(b *buf) {
	b.data = append(b.data, 4) // want `append may grow.*via xprofix\.hotDispatch → xprofix\.chainRed\.reduce`
}

//scaffe:hotpath
func hotDispatch(r reducer, b *buf) {
	r.reduce(b)
}

// totalTicks and the spec pair pin parallel propagation: the
// determinism pass's shared-state rule fires in the unannotated helper
// with the annotated root named.
var totalTicks int

//scaffe:parallel
func specRoot(b *buf) {
	specHelper(b)
}

func specHelper(b *buf) {
	totalTicks++ // want `package-level variable totalTicks.*via xprofix\.specRoot → xprofix\.specHelper`
	b.data[0] = 0
}
