package coll

import (
	"scaffe/internal/gpu"
	"scaffe/internal/mpi"
	"scaffe/internal/topology"
)

// BcastScatterAllgather is van de Geijn's large-message broadcast: a
// binomial scatter of contiguous segments followed by a ring
// allgather. Total traffic per rank is ~2b(P−1)/P versus the binomial
// tree's b·log2(P), so it wins for the multi-megabyte parameter
// buffers DL frameworks broadcast — the same large-message reasoning
// as the paper's chained reduce, applied to propagation. Works for any
// communicator size and root. Tags tag..tag+P are reserved.
func BcastScatterAllgather(c *mpi.Comm, r *mpi.Rank, root int, buf *gpu.Buffer, tag int, mode topology.TransferMode) {
	size := c.Size()
	if size == 1 {
		return
	}
	me := c.Rank(r)
	rel := (me - root + size) % size
	abs := func(relRank int) int { return (relRank + root) % size }
	elems := buf.Elems()
	boundary := func(i int) int { return i * elems / size }
	segment := func(lo, hi int) *gpu.Buffer { return buf.Slice(boundary(lo), boundary(hi)) }

	// Binomial scatter: node `rel` with entry bit B covers segments
	// [rel, min(rel+B, size)); its children rel+m (m = B/2, B/4, ...)
	// each take the upper half [rel+m, min(rel+2m, size)).
	entryBit := 1
	for entryBit < size {
		entryBit <<= 1
	}
	if rel != 0 {
		bit := rel & (-rel) // lowest set bit: the binomial entry edge
		parent := rel - bit
		hi := rel + bit
		if hi > size {
			hi = size
		}
		if boundary(rel) < boundary(hi) {
			r.RecvSummed(c, abs(parent), tag, segment(rel, hi)).Verify()
		}
		entryBit = bit
	}
	for m := entryBit >> 1; m >= 1; m >>= 1 {
		child := rel + m
		if child >= size {
			continue
		}
		hi := child + m
		if hi > size {
			hi = size
		}
		if boundary(child) < boundary(hi) {
			r.Send(c, abs(child), tag, segment(child, hi), mode)
		}
	}

	// Ring allgather: after P−1 steps every rank holds every segment.
	left := abs((rel - 1 + size) % size)
	right := abs((rel + 1) % size)
	for step := 0; step < size-1; step++ {
		sendSeg := ((rel-step)%size + size) % size
		recvSeg := ((rel-step-1)%size + size) % size
		var sreq *mpi.Request
		if boundary(sendSeg) < boundary(sendSeg+1) {
			sreq = r.Isend(c, right, tag+1+step, segment(sendSeg, sendSeg+1), mode)
		}
		if boundary(recvSeg) < boundary(recvSeg+1) {
			r.RecvSummed(c, left, tag+1+step, segment(recvSeg, recvSeg+1)).Verify()
		}
		if sreq != nil {
			r.Wait(sreq)
		}
	}
}
