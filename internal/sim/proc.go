package sim

// Proc is a simulated process: a goroutine scheduled cooperatively by
// the kernel. At most one proc runs at any instant, so proc code may
// touch shared simulation state without locks.
type Proc struct {
	k        *Kernel
	name     string
	wake     chan struct{}
	yield    chan struct{}
	finished bool
	killed   bool

	// waitSeq/waitArmed guard completion wake-ups: every Wait arms a
	// fresh sequence number, and a wake event only delivers if the proc
	// is still parked on that same wait. This lets a completion and a
	// timeout race for the same parked proc without ever resuming it
	// twice (a double resume would block the kernel goroutine).
	waitSeq   uint64
	waitArmed bool

	// group is the proc's shard for parallel-lookahead execution: procs
	// in distinct non-negative groups may run concurrently within one
	// same-instant batch (see parallel.go). Group -1 (the default) marks
	// the proc serial-only; it never joins a batch.
	group int

	// stage, when non-nil, marks the proc as running the concurrent part
	// of a batch segment: kernel-visible side effects (schedules, fires)
	// are recorded here and replayed by the commit loop in exact global
	// order. seg is the embedded backing record so staging never
	// allocates.
	stage *parSegment
	seg   parSegment
}

// procKilled is the panic value a killed proc unwinds with; Spawn's
// recovery treats it as a normal exit.
type procKilled struct{}

// IsKilled reports whether a recovered panic value is the proc-kill
// sentinel, for intermediate recover()s that must not swallow it.
func IsKilled(rec any) bool {
	_, ok := rec.(procKilled)
	return ok
}

// Name returns the name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// Finished reports whether the proc has returned (or been killed).
func (p *Proc) Finished() bool { return p.finished }

// Kill terminates the proc at the current virtual time: its next
// resumption panics with a sentinel that the kernel treats as a normal
// exit. This is the fault plane's rank-crash primitive. Killing a
// finished or already-killed proc is a no-op.
func (p *Proc) Kill() {
	if p.finished || p.killed {
		return
	}
	p.killed = true
	p.k.atResume(p.k.now, p)
}

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// SetGroup assigns the proc's parallel-execution shard. Groups must
// partition all mutable state the procs touch outside Exclusive
// sections; callers (the engine's group policy) are responsible for
// that discipline. Negative groups mark the proc serial-only.
func (p *Proc) SetGroup(g int) { p.group = g }

// Group returns the proc's parallel-execution shard (-1 = serial).
func (p *Proc) Group() int { return p.group }

// Exclusive demotes the rest of the proc's current segment to the
// serialized commit lane. Code that touches state outside the proc's
// own group — MPI mailboxes, shared link resources, the trace sink —
// must call it first: the proc blocks until every concurrent segment
// of the batch has finished its speculative part, then continues in
// exact global order with full state visibility. Outside a batch it
// is a no-op, so sequential hot paths pay one nil check.
//
//scaffe:hotpath
//scaffe:parallel
func (p *Proc) Exclusive() {
	s := p.stage
	if s == nil {
		return
	}
	s.tail = true
	p.yield <- struct{}{}
	<-p.wake
	if p.killed {
		panic(procKilled{})
	}
}

// park yields control to the kernel and blocks until some event
// resumes this proc. A killed proc unwinds here instead of returning.
//
// In the sequential daisy-chain, the parking proc runs the event loop
// itself (loopFrom) and hands the baton directly to the next proc —
// one goroutine switch per segment instead of two — or keeps running
// with no switch at all when the next event resumes this same proc.
// Inside a parallel batch (stage set) or a serialized commit lane
// (serialResume), the proc instead yields back to whoever resumed it.
//
//scaffe:parallel
func (p *Proc) park() {
	k := p.k
	if p.stage != nil || k.serialResume {
		p.yield <- struct{}{}
		<-p.wake
	} else {
		// The loopFrom call is a context switch, not a subroutine: the
		// parking proc's hot frame ends here and the event loop runs
		// other procs' events under its own gates (the kernel's
		// //scaffe:hotpath annotations and the zero-alloc steady-state
		// test), so the caller's obligations must not flood into it.
		//
		//scaffe:coldpath control transfer into the event loop; the kernel's own hotpath gates cover it
		switch k.loopFrom(p) {
		case loopSelf:
			// The next event resumes this proc: keep running.
		case loopTerminal:
			k.home <- struct{}{}
			<-p.wake
		case loopHanded:
			<-p.wake
		}
	}
	if p.killed {
		panic(procKilled{})
	}
}

// selfWakeAt schedules (or stages) an unconditional self-resume at t.
//
//scaffe:hotpath
//scaffe:parallel
func (p *Proc) selfWakeAt(t Time) {
	if s := p.stage; s != nil {
		s.add(event{kind: evResume, p: p, at: t})
		return
	}
	p.k.atResume(t, p)
}

// selfResumeIfAt schedules (or stages) a guarded self-resume at t.
//
//scaffe:hotpath
//scaffe:parallel
func (p *Proc) selfResumeIfAt(t Time, seq uint64) {
	if s := p.stage; s != nil {
		s.add(event{kind: evResumeIf, p: p, aux: seq, at: t})
		return
	}
	p.k.atResumeIf(t, p, seq)
}

// armWait returns a fresh wait sequence number and marks the proc as
// parked on a guarded wait (see Proc.waitSeq).
func (p *Proc) armWait() uint64 {
	p.waitSeq++
	p.waitArmed = true
	return p.waitSeq
}

// Sleep advances this proc's virtual time by d, allowing other events
// to run in between.
func (p *Proc) Sleep(d Duration) {
	if d <= 0 {
		p.Yield()
		return
	}
	p.selfWakeAt(p.k.now + d)
	p.park()
}

// WaitUntil blocks until virtual time t (no-op if t is in the past,
// beyond a yield).
func (p *Proc) WaitUntil(t Time) {
	p.selfWakeAt(t)
	p.park()
}

// Yield gives other events scheduled for the current instant a chance
// to run before this proc continues.
func (p *Proc) Yield() {
	p.selfWakeAt(p.k.now)
	p.park()
}

// Wait blocks until c fires. If c has already fired it returns
// immediately without yielding.
//
// Inside a parallel batch, an un-fired completion demotes the segment
// to the serialized commit lane before parking: an earlier batch
// member's serialized tail may be about to fire c, and sequential
// execution would then not have parked here at all. Serializing first
// makes the fired check exact, so a batched proc only ever parks where
// the sequential kernel parks too.
func (p *Proc) Wait(c *Completion) {
	if c.fired {
		return
	}
	if p.stage != nil {
		p.Exclusive()
		if c.fired {
			return
		}
	}
	c.addWaiter(waiter{p, p.armWait()})
	p.park()
	p.waitArmed = false
}

// WaitTimeout blocks until c fires or d virtual time elapses,
// whichever comes first, and reports whether c has fired. It is the
// primitive under fault-aware MPI waits: a deadline that expires
// without progress lets the caller consult the fault plane instead of
// blocking forever on a dead peer.
func (p *Proc) WaitTimeout(c *Completion, d Duration) bool {
	if c.fired {
		return true
	}
	if p.stage != nil {
		// Same staleness rule as Wait: only park where the sequential
		// kernel provably parks.
		p.Exclusive()
		if c.fired {
			return true
		}
	}
	seq := p.armWait()
	c.addWaiter(waiter{p, seq})
	p.selfResumeIfAt(p.k.now+d, seq)
	p.park()
	p.waitArmed = false
	return c.fired
}

// WaitAll blocks until every completion in cs has fired.
func (p *Proc) WaitAll(cs ...*Completion) {
	for _, c := range cs {
		p.Wait(c)
	}
}
