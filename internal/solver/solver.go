// Package solver implements Caffe's SGD solver: momentum, weight
// decay, and the standard learning-rate policies. In S-Caffe only the
// root solver applies updates (ApplyUpdate in Figure 1); the updated
// parameters reach the other solvers through the next data
// propagation.
package solver

import (
	"fmt"
	"math"

	"scaffe/internal/layers"
	"scaffe/internal/tensor"
)

// LRPolicy computes the learning rate for an iteration.
type LRPolicy interface {
	// LR returns the learning rate at iteration iter (0-based).
	LR(iter int) float64
}

// Fixed keeps the base learning rate constant.
type Fixed struct{ Base float64 }

// LR implements LRPolicy.
func (p Fixed) LR(int) float64 { return p.Base }

// Step multiplies the rate by Gamma every StepSize iterations
// (Caffe's "step" policy).
type Step struct {
	Base, Gamma float64
	StepSize    int
}

// LR implements LRPolicy.
func (p Step) LR(iter int) float64 {
	return p.Base * math.Pow(p.Gamma, float64(iter/p.StepSize))
}

// Inv is Caffe's "inv" policy: base · (1 + gamma·iter)^(−power).
type Inv struct {
	Base, Gamma, Power float64
}

// LR implements LRPolicy.
func (p Inv) LR(iter int) float64 {
	return p.Base * math.Pow(1+p.Gamma*float64(iter), -p.Power)
}

// Poly is Caffe's "poly" policy: base · (1 − iter/max)^power.
type Poly struct {
	Base, Power float64
	MaxIter     int
}

// LR implements LRPolicy.
func (p Poly) LR(iter int) float64 {
	f := 1 - float64(iter)/float64(p.MaxIter)
	if f < 0 {
		f = 0
	}
	return p.Base * math.Pow(f, p.Power)
}

// SGD is the stochastic-gradient-descent solver with momentum and L2
// weight decay.
type SGD struct {
	Policy      LRPolicy
	Momentum    float64
	WeightDecay float64

	history [][]*tensor.Tensor // per layer, per param: momentum buffers
}

// New returns an SGD solver with the given hyper-parameters.
func New(policy LRPolicy, momentum, weightDecay float64) *SGD {
	return &SGD{Policy: policy, Momentum: momentum, WeightDecay: weightDecay}
}

// Step applies one update to net's parameters from its accumulated
// gradients: v = µ·v − lr·(scale·g + λ·w); w += v. In distributed
// training, scale is 1/numSolvers so that summed per-solver mean
// gradients become the global mean (Caffe's multi-GPU normalization).
func (s *SGD) Step(net *layers.Net, iter int, scale float32) {
	s.ensureHistory(net)
	lr := float32(s.Policy.LR(iter))
	mu := float32(s.Momentum)
	wd := float32(s.WeightDecay)
	for li, l := range net.Layers {
		params, grads := l.Params(), l.Grads()
		for pi, p := range params {
			g := grads[pi]
			v := s.history[li][pi]
			if len(p.Data) != len(g.Data) || len(p.Data) != len(v.Data) {
				panic(fmt.Sprintf("solver: layer %d param %d shape drift", li, pi))
			}
			for i := range p.Data {
				v.Data[i] = mu*v.Data[i] - lr*(scale*g.Data[i]+wd*p.Data[i])
				p.Data[i] += v.Data[i]
			}
		}
	}
}

// ensureHistory lazily allocates the momentum buffers in net layer
// order (the same order as layers.Net.PackParams, so the packed forms
// below line up with packed parameter vectors).
//
//scaffe:coldpath lazy first-use momentum allocation, guarded by s.history != nil
func (s *SGD) ensureHistory(net *layers.Net) {
	if s.history != nil {
		return
	}
	for _, l := range net.Layers {
		var hs []*tensor.Tensor
		for _, p := range l.Params() {
			hs = append(hs, tensor.New(p.Dims...))
		}
		s.history = append(s.history, hs)
	}
}

// PackHistory appends the momentum buffers to dst[:0] in PackParams
// order and returns the result. A solver that has never stepped packs
// zeros (cold momentum).
func (s *SGD) PackHistory(net *layers.Net, dst []float32) []float32 {
	s.ensureHistory(net)
	dst = dst[:0]
	for li := range net.Layers {
		for _, v := range s.history[li] {
			//scaffe:nolint hotpath appends into the caller's reused dst[:0] buffer; steady state stays at high-water capacity
			dst = append(dst, v.Data...)
		}
	}
	return dst
}

// LoadHistory restores the momentum buffers from a vector packed by
// PackHistory; src must match the net's parameter count exactly.
func (s *SGD) LoadHistory(net *layers.Net, src []float32) {
	s.ensureHistory(net)
	off := 0
	for li := range net.Layers {
		for _, v := range s.history[li] {
			if off+len(v.Data) > len(src) {
				panic(fmt.Sprintf("solver: history vector too short: %d floats", len(src)))
			}
			copy(v.Data, src[off:off+len(v.Data)])
			off += len(v.Data)
		}
	}
	if off != len(src) {
		panic(fmt.Sprintf("solver: history vector has %d trailing floats", len(src)-off))
	}
}

// Reset drops the momentum state (a cold restart from initial
// parameters).
func (s *SGD) Reset() { s.history = nil }

// UpdateFLOPs returns the arithmetic cost of one update over n
// parameters (used by the timing engine for the ApplyUpdate phase).
func UpdateFLOPs(n int) float64 { return 4 * float64(n) }
