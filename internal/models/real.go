package models

import "scaffe/internal/layers"

// BuildLeNet constructs the classic LeNet for 1×28×28 (MNIST-shaped)
// inputs: ~431k parameters.
func BuildLeNet(batch int, seed int64) *layers.Net {
	in := layers.Shape{C: 1, H: 28, W: 28}
	return layers.NewNet("lenet", in, batch, seed,
		layers.NewConv("conv1", 20, 5, 1, 0),
		layers.NewMaxPool("pool1", 2, 2),
		layers.NewConv("conv2", 50, 5, 1, 0),
		layers.NewMaxPool("pool2", 2, 2),
		layers.NewInnerProduct("ip1", 500),
		layers.NewReLU("relu1"),
		layers.NewInnerProduct("ip2", 10),
		layers.NewSoftmaxLoss("loss"),
	)
}

// BuildCIFAR10Quick constructs the CIFAR-10 "quick" reference model
// from the Caffe repository (the Figure 9 workload): ~145k parameters
// over 3 conv + 2 fc layers on 3×32×32 inputs.
func BuildCIFAR10Quick(batch int, seed int64) *layers.Net {
	in := layers.Shape{C: 3, H: 32, W: 32}
	return layers.NewNet("cifar10-quick", in, batch, seed,
		layers.NewConv("conv1", 32, 5, 1, 2),
		layers.NewMaxPool("pool1", 3, 2),
		layers.NewReLU("relu1"),
		layers.NewConv("conv2", 32, 5, 1, 2),
		layers.NewReLU("relu2"),
		layers.NewAvgPool("pool2", 3, 2),
		layers.NewConv("conv3", 64, 5, 1, 2),
		layers.NewReLU("relu3"),
		layers.NewAvgPool("pool3", 3, 2),
		layers.NewInnerProduct("ip1", 64),
		layers.NewInnerProduct("ip2", 10),
		layers.NewSoftmaxLoss("loss"),
	)
}

// BuildTinyNet constructs a deliberately small convolutional net on
// 3×8×8 inputs for fast unit and integration tests.
func BuildTinyNet(batch int, seed int64) *layers.Net {
	in := layers.Shape{C: 3, H: 8, W: 8}
	return layers.NewNet("tiny", in, batch, seed,
		layers.NewConv("conv1", 4, 3, 1, 1),
		layers.NewReLU("relu1"),
		layers.NewMaxPool("pool1", 2, 2),
		layers.NewInnerProduct("ip1", 16),
		layers.NewReLU("relu2"),
		layers.NewInnerProduct("ip2", 4),
		layers.NewSoftmaxLoss("loss"),
	)
}

// BuildAlexNet constructs the full AlexNet as a real-compute network —
// grouped conv2/4/5 included — with exactly the parameter geometry of
// the cost-model spec (60,965,224 parameters). Real training at this
// size is possible but slow in pure Go; it exists so the real and
// cost-model faces can be cross-checked on the paper's flagship model.
func BuildAlexNet(batch int, seed int64) *layers.Net {
	in := layers.Shape{C: 3, H: 227, W: 227}
	return layers.NewNet("alexnet", in, batch, seed,
		layers.NewConv("conv1", 96, 11, 4, 0),
		layers.NewReLU("relu1"),
		layers.NewLRN("norm1", 5, 1e-4, 0.75),
		layers.NewMaxPool("pool1", 3, 2),
		layers.NewConvGroups("conv2", 256, 5, 1, 2, 2),
		layers.NewReLU("relu2"),
		layers.NewLRN("norm2", 5, 1e-4, 0.75),
		layers.NewMaxPool("pool2", 3, 2),
		layers.NewConv("conv3", 384, 3, 1, 1),
		layers.NewReLU("relu3"),
		layers.NewConvGroups("conv4", 384, 3, 1, 1, 2),
		layers.NewReLU("relu4"),
		layers.NewConvGroups("conv5", 256, 3, 1, 1, 2),
		layers.NewReLU("relu5"),
		layers.NewMaxPool("pool5", 3, 2),
		layers.NewInnerProduct("fc6", 4096),
		layers.NewReLU("relu6"),
		layers.NewDropout("drop6", 0.5),
		layers.NewInnerProduct("fc7", 4096),
		layers.NewReLU("relu7"),
		layers.NewDropout("drop7", 0.5),
		layers.NewInnerProduct("fc8", 1000),
		layers.NewSoftmaxLoss("loss"),
	)
}
