// Package tracefix seeds trace-pass violations for the golden fixture
// test: spans that never reach End, and balanced spans that must not
// fire.
package tracefix

import (
	"scaffe/internal/sim"
	"scaffe/internal/trace"
)

func discardedSpan(rec *trace.Recorder, now sim.Time) {
	rec.Begin(0, "forward", "", now) // want `span from Recorder.Begin discarded`
}

func leakedSpan(rec *trace.Recorder, now sim.Time) sim.Time {
	span := rec.Begin(0, "forward", "", now) // want `span from Recorder.Begin does not reach End`
	if now > 100 {
		return now
	}
	span.End(now + 1)
	return now + 1
}

func reassignedSpan(rec *trace.Recorder, now sim.Time) {
	span := rec.Begin(0, "forward", "", now) // want `span from Recorder.Begin does not reach End`
	span = rec.Begin(0, "backward", "", now)
	span.End(now + 1)
}

func balancedSpan(rec *trace.Recorder, now sim.Time) {
	span := rec.Begin(0, "forward", "", now)
	if now > 100 {
		span.End(now)
		return
	}
	span.End(now + 1)
}
