// Repository-level benchmarks: one per table/figure of the paper's
// evaluation (regenerating the same configuration shapes at reduced
// iteration counts; `cmd/experiments` runs them at full fidelity), plus
// ablation benches for the design choices called out in DESIGN.md.
//
// Each benchmark reports virtual-ms/op custom metrics where the
// simulated time is the quantity of interest; wall-clock ns/op
// measures the simulator itself.
package scaffe

import (
	"testing"

	"scaffe/internal/experiments"
	"scaffe/internal/sim"
)

// benchOpts keeps per-iteration work bounded; the shapes are identical
// to the full experiments.
var benchOpts = experiments.Options{Iterations: 2, MaxGPUs: 64}

// fullScaleOpts is used where the phenomenon needs the 160-GPU scale.
var fullScaleOpts = experiments.Options{Iterations: 2}

func runExperiment(b *testing.B, id string, opts experiments.Options) {
	b.Helper()
	r, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1FeatureMatrix(b *testing.B)       { runExperiment(b, "table1", benchOpts) }
func BenchmarkFigure8GoogLeNetScaling(b *testing.B)   { runExperiment(b, "figure8", benchOpts) }
func BenchmarkFigure9CIFAR10Scaling(b *testing.B)     { runExperiment(b, "figure9", benchOpts) }
func BenchmarkFigure10AlexNetSPS(b *testing.B)        { runExperiment(b, "figure10", benchOpts) }
func BenchmarkFigure11HRvsVariants(b *testing.B)      { runExperiment(b, "figure11", benchOpts) }
func BenchmarkFigure12HRvsMPIBaselines(b *testing.B)  { runExperiment(b, "figure12", benchOpts) }
func BenchmarkFigure13SCOBOverlap(b *testing.B)       { runExperiment(b, "figure13", benchOpts) }
func BenchmarkTable2HRCoDesign(b *testing.B)          { runExperiment(b, "table2", benchOpts) }
func BenchmarkSCOBROverlap(b *testing.B)              { runExperiment(b, "scobr", benchOpts) }
func BenchmarkEq12CostModel(b *testing.B)             { runExperiment(b, "costmodel", benchOpts) }
func BenchmarkFigure11FullScale160(b *testing.B)      { runExperiment(b, "figure11", fullScaleOpts) }
func BenchmarkExtWeakScaling(b *testing.B)            { runExperiment(b, "weakscaling", benchOpts) }
func BenchmarkExtThreeLevelReduce(b *testing.B)       { runExperiment(b, "threelevel", benchOpts) }
func BenchmarkExtAllreduceRetrospective(b *testing.B) { runExperiment(b, "allreduce", benchOpts) }
func BenchmarkExtSkewSensitivity(b *testing.B)        { runExperiment(b, "skew", benchOpts) }
func BenchmarkExtBucketing(b *testing.B)              { runExperiment(b, "bucketing", benchOpts) }
func BenchmarkExtSCOBRF(b *testing.B)                 { runExperiment(b, "scobrf", benchOpts) }
func BenchmarkExtMPvsDP(b *testing.B)                 { runExperiment(b, "mpdp", benchOpts) }
func BenchmarkExtAccuracyEquivalence(b *testing.B) {
	runExperiment(b, "accuracy", experiments.Options{Iterations: 10})
}
func BenchmarkExtFaultRecovery(b *testing.B) {
	runExperiment(b, "faults", experiments.Options{Iterations: 24})
}
func BenchmarkExtSDC(b *testing.B) {
	runExperiment(b, "sdc", experiments.Options{Iterations: 24})
}
func BenchmarkExtElastic(b *testing.B) {
	runExperiment(b, "elastic", experiments.Options{Iterations: 24})
}
func BenchmarkExtChaos(b *testing.B) {
	runExperiment(b, "chaos", experiments.Options{Iterations: 16})
}

// BenchmarkReduce256MB160GPUs measures the headline reduction point
// (256 MB over 160 GPUs) per algorithm, reporting the virtual latency.
func BenchmarkReduce256MB160GPUs(b *testing.B) {
	for _, alg := range []struct {
		name string
		a    ReduceAlgorithm
	}{
		{"HR", ReduceHR},
		{"CC8", ReduceCC},
		{"CB8", ReduceCB},
		{"MV2", ReduceMV2},
		{"OpenMPI", ReduceOpenMPI},
	} {
		b.Run(alg.name, func(b *testing.B) {
			var lat sim.Duration
			for i := 0; i < b.N; i++ {
				var err error
				lat, err = ReduceBench(ReduceBenchConfig{
					Ranks: 160, Bytes: 256 << 20, Algorithm: alg.a, Trials: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(lat.Milliseconds(), "virtual-ms/op")
		})
	}
}

// BenchmarkAblationChainSize sweeps the lower-level communicator size
// — the paper's finding that 8 is the ideal chain length (Section 5).
func BenchmarkAblationChainSize(b *testing.B) {
	for _, chain := range []int{2, 4, 8, 16, 32} {
		b.Run(name("chain", chain), func(b *testing.B) {
			var lat sim.Duration
			for i := 0; i < b.N; i++ {
				var err error
				lat, err = ReduceBench(ReduceBenchConfig{
					Ranks: 64, Bytes: 64 << 20, Algorithm: ReduceCB,
					Options: ReduceOptions{ChainSize: chain, OnGPU: true},
					Trials:  1,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(lat.Milliseconds(), "virtual-ms/op")
		})
	}
}

// BenchmarkAblationChunkCount sweeps the pipeline depth n of Eq. (2).
func BenchmarkAblationChunkCount(b *testing.B) {
	for _, chunks := range []int{1, 4, 16, 64} {
		b.Run(name("chunks", chunks), func(b *testing.B) {
			var lat sim.Duration
			for i := 0; i < b.N; i++ {
				var err error
				lat, err = ReduceBench(ReduceBenchConfig{
					Ranks: 8, Bytes: 64 << 20, Algorithm: ReduceChain,
					Options: ReduceOptions{ChainSize: 8, Chunks: chunks, OnGPU: true},
					Trials:  1,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(lat.Milliseconds(), "virtual-ms/op")
		})
	}
}

// BenchmarkAblationGPUvsCPUReduce isolates the kernel-based reduction
// co-design: the identical CB-8 schedule with GPU kernels vs host CPU
// arithmetic.
func BenchmarkAblationGPUvsCPUReduce(b *testing.B) {
	for _, onGPU := range []bool{true, false} {
		label := "gpu-kernels"
		if !onGPU {
			label = "cpu-arithmetic"
		}
		b.Run(label, func(b *testing.B) {
			var lat sim.Duration
			for i := 0; i < b.N; i++ {
				var err error
				lat, err = ReduceBench(ReduceBenchConfig{
					Ranks: 64, Bytes: 64 << 20, Algorithm: ReduceCB,
					Options: ReduceOptions{ChainSize: 8, OnGPU: onGPU},
					Trials:  1,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(lat.Milliseconds(), "virtual-ms/op")
		})
	}
}

// BenchmarkAblationDesigns compares the three S-Caffe pipelines on the
// same GoogLeNet configuration (the ablation behind Figures 13 and
// Table 2 combined).
func BenchmarkAblationDesigns(b *testing.B) {
	for _, d := range []struct {
		name   string
		design Design
	}{
		{"SC-B", SCB}, {"SC-OB", SCOB}, {"SC-OBR", SCOBR},
	} {
		b.Run(d.name, func(b *testing.B) {
			var total sim.Time
			for i := 0; i < b.N; i++ {
				res, err := Train(Config{
					Spec: MustModel("googlenet"), GPUs: 32, Nodes: 2, GPUsPerNode: 16,
					GlobalBatch: 256, Iterations: 2,
					Design: d.design, Reduce: ReduceHR, Source: InMemory, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				total = res.TotalTime
			}
			b.ReportMetric(total.Milliseconds(), "virtual-ms/op")
		})
	}
}

// BenchmarkScaleSweep measures wall-clock cost and steady-state
// allocations of GoogLeNet training as the rank count grows past the
// paper's 160-GPU testbed — the scale-out axis the pooled event kernel
// and calendar queue exist for. Each point reports its rank count as a
// metric so the recorded benchmark JSON carries the scale alongside
// ns/op and allocs/op.
func BenchmarkScaleSweep(b *testing.B) {
	for _, ranks := range []int{160, 512, 1024, 4096} {
		b.Run(name("ranks", ranks), func(b *testing.B) {
			var total sim.Time
			for i := 0; i < b.N; i++ {
				res, err := Train(Config{
					Spec: MustModel("googlenet"), GPUs: ranks,
					Nodes: (ranks + 15) / 16, GPUsPerNode: 16,
					GlobalBatch: 4 * ranks, Iterations: 2,
					Design: SCOB, Reduce: ReduceHR, Source: InMemory, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				total = res.TotalTime
			}
			b.ReportAllocs()
			b.ReportMetric(float64(ranks), "ranks")
			b.ReportMetric(total.Milliseconds(), "virtual-ms/op")
		})
	}
}

// BenchmarkSchedulerOverhead measures the wall-clock cost of running
// one SC-OB iteration through the DAG iteration scheduler. The virtual
// time is pinned to the value the seed's hand-written loop produced for
// the identical configuration, so any drift the graph introduces —
// in simulated time or in host overhead — shows up here.
func BenchmarkSchedulerOverhead(b *testing.B) {
	const seedLoopTotal = 6163755 // captured from the pre-sched loop implementation
	var total sim.Time
	for i := 0; i < b.N; i++ {
		res, err := Train(Config{
			Spec: MustModel("cifar10-quick"), GPUs: 8,
			GlobalBatch: 64, Iterations: 1,
			Design: SCOB, Reduce: ReduceHR, Source: InMemory, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		total = res.TotalTime
	}
	if total != seedLoopTotal {
		b.Fatalf("DAG scheduler virtual time = %d, seed loop gave %d (delta must be zero)", total, seedLoopTotal)
	}
	b.ReportMetric(total.Milliseconds(), "virtual-ms/op")
}

// BenchmarkSimulatorThroughput measures the raw discrete-event engine:
// events processed per wall-clock second for a communication-heavy
// workload (useful when extending the simulator).
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ReduceBench(ReduceBenchConfig{
			Ranks: 128, Bytes: 64 << 20, Algorithm: ReduceCC, Trials: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func name(prefix string, v int) string {
	return prefix + "-" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
