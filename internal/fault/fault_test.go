package fault

import (
	"strings"
	"testing"

	"scaffe/internal/sim"
)

func TestParseSchedule(t *testing.T) {
	text := `
# comment, then a blank line

5ms crash rank=3
10ms straggle rank=1 factor=4
12ms recover rank=1
20ms degrade node=0 factor=2.5 for=3ms
30ms stall rank=2 for=1ms
40ms snapfail for=2ms
50ms hang rank=0
`
	sched, err := ParseSchedule(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 7 {
		t.Fatalf("parsed %d events, want 7", len(sched))
	}
	if sched[0].Kind != Crash || sched[0].Rank != 3 || sched[0].At != 5*sim.Time(sim.Millisecond) {
		t.Errorf("event 0 = %+v", sched[0])
	}
	if sched[1].Kind != StragglerOn || sched[1].Factor != 4 {
		t.Errorf("event 1 = %+v", sched[1])
	}
	if sched[3].Kind != LinkDegrade || sched[3].Node != 0 || sched[3].For != 3*sim.Millisecond {
		t.Errorf("event 3 = %+v", sched[3])
	}
	if err := sched.Validate(4, 2); err != nil {
		t.Errorf("validate: %v", err)
	}
}

func TestParseScheduleErrors(t *testing.T) {
	cases := []struct{ name, text, want string }{
		{"bad kind", "1ms explode rank=0", "unknown event"},
		{"bad time", "abc crash rank=0", "time"},
		{"missing rank", "1ms crash", "needs rank"},
		{"bad kv", "1ms crash rank", "key=value"},
		{"negative dur", "-1ms crash rank=0", "negative"},
	}
	for _, tc := range cases {
		if _, err := ParseSchedule(tc.text); err == nil {
			t.Errorf("%s: no error", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateRanges(t *testing.T) {
	cases := []struct {
		name string
		ev   Event
	}{
		{"rank high", Event{Kind: Crash, Rank: 9}},
		{"rank negative", Event{Kind: Crash, Rank: -1}},
		{"node high", Event{Kind: LinkDegrade, Node: 5, Factor: 2, For: sim.Millisecond}},
		{"factor low", Event{Kind: StragglerOn, Rank: 0, Factor: 0.5}},
		{"window zero", Event{Kind: LinkDegrade, Node: 0, Factor: 2}},
	}
	for _, tc := range cases {
		if err := (Schedule{tc.ev}).Validate(4, 2); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

func TestTimeoutBackoffCapped(t *testing.T) {
	pl := NewPlane(sim.New(), 4, 0)
	if pl.Timeout(0) != DefaultTimeout {
		t.Errorf("base timeout = %v", pl.Timeout(0))
	}
	if pl.Timeout(2) != DefaultTimeout<<2 {
		t.Errorf("attempt 2 = %v", pl.Timeout(2))
	}
	if pl.Timeout(50) != DefaultTimeout<<maxBackoffShift {
		t.Errorf("cap = %v", pl.Timeout(50))
	}
}

func TestLinkFactorWindows(t *testing.T) {
	k := sim.New()
	pl := NewPlane(k, 2, 0)
	pl.Arm(Schedule{
		{At: 10, Kind: LinkDegrade, Node: 0, Factor: 3, For: 5, Rank: -1},
		{At: 12, Kind: LinkDegrade, Node: 0, Factor: 2, For: 20, Rank: -1},
	}, nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if f := pl.LinkFactor(11, 0, 1); f != 3 {
		t.Errorf("overlap max = %v, want 3", f)
	}
	if f := pl.LinkFactor(20, 0, 1); f != 2 {
		t.Errorf("second window = %v, want 2", f)
	}
	if f := pl.LinkFactor(11, 1, 0); f != 1 {
		t.Errorf("other node = %v, want 1", f)
	}
	if f := pl.LinkFactor(40, 0, 1); f != 1 {
		t.Errorf("expired = %v, want 1", f)
	}
}
