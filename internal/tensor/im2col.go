package tensor

// ConvGeom describes a 2-D convolution/pooling geometry.
type ConvGeom struct {
	InC, InH, InW    int
	KernelH, KernelW int
	StrideH, StrideW int
	PadH, PadW       int
}

// OutH returns the output height.
func (g ConvGeom) OutH() int { return (g.InH+2*g.PadH-g.KernelH)/g.StrideH + 1 }

// OutW returns the output width.
func (g ConvGeom) OutW() int { return (g.InW+2*g.PadW-g.KernelW)/g.StrideW + 1 }

// Im2col expands one image (C×H×W, flattened) into the column matrix
// used to lower convolution onto GEMM: (C·kh·kw) rows × (outH·outW)
// columns. col must have length C*kh*kw*outH*outW.
//
//scaffe:hotpath
func Im2col(g ConvGeom, img []float32, col []float32) {
	outH, outW := g.OutH(), g.OutW()
	idx := 0
	for c := 0; c < g.InC; c++ {
		chn := img[c*g.InH*g.InW:]
		for kh := 0; kh < g.KernelH; kh++ {
			for kw := 0; kw < g.KernelW; kw++ {
				for oh := 0; oh < outH; oh++ {
					ih := oh*g.StrideH - g.PadH + kh
					if ih < 0 || ih >= g.InH {
						for ow := 0; ow < outW; ow++ {
							col[idx] = 0
							idx++
						}
						continue
					}
					row := chn[ih*g.InW:]
					for ow := 0; ow < outW; ow++ {
						iw := ow*g.StrideW - g.PadW + kw
						if iw < 0 || iw >= g.InW {
							col[idx] = 0
						} else {
							col[idx] = row[iw]
						}
						idx++
					}
				}
			}
		}
	}
}

// Col2im scatters a column matrix back into an image, accumulating
// overlapping contributions (the adjoint of Im2col, used for the
// convolution input gradient). img must be zeroed by the caller.
//
//scaffe:hotpath
func Col2im(g ConvGeom, col []float32, img []float32) {
	outH, outW := g.OutH(), g.OutW()
	idx := 0
	for c := 0; c < g.InC; c++ {
		chn := img[c*g.InH*g.InW:]
		for kh := 0; kh < g.KernelH; kh++ {
			for kw := 0; kw < g.KernelW; kw++ {
				for oh := 0; oh < outH; oh++ {
					ih := oh*g.StrideH - g.PadH + kh
					if ih < 0 || ih >= g.InH {
						idx += outW
						continue
					}
					row := chn[ih*g.InW:]
					for ow := 0; ow < outW; ow++ {
						iw := ow*g.StrideW - g.PadW + kw
						if iw >= 0 && iw < g.InW {
							row[iw] += col[idx]
						}
						idx++
					}
				}
			}
		}
	}
}
