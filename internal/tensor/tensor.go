// Package tensor provides the dense float32 math the real-compute
// training path uses: NCHW tensors, a parallel blocked GEMM, im2col
// convolution lowering, and the elementwise/softmax kernels Caffe's
// layers need. Everything is deterministic: parallel loops partition
// work statically and each partition writes disjoint outputs.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major float32 array with an explicit shape.
type Tensor struct {
	Dims []int
	Data []float32
}

// New allocates a zeroed tensor of the given shape.
func New(dims ...int) *Tensor {
	n := 1
	for _, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dim in %v", dims))
		}
		n *= d
	}
	return &Tensor{Dims: append([]int(nil), dims...), Data: make([]float32, n)}
}

// FromSlice wraps data with the given shape (no copy).
func FromSlice(data []float32, dims ...int) *Tensor {
	t := &Tensor{Dims: append([]int(nil), dims...), Data: data}
	if t.Len() != len(data) {
		panic(fmt.Sprintf("tensor: shape %v needs %d elements, got %d", dims, t.Len(), len(data)))
	}
	return t
}

// Len returns the element count.
func (t *Tensor) Len() int {
	n := 1
	for _, d := range t.Dims {
		n *= d
	}
	return n
}

// Dim returns the i-th dimension.
func (t *Tensor) Dim(i int) int { return t.Dims[i] }

// Reshape returns a view with a new shape of equal length.
func (t *Tensor) Reshape(dims ...int) *Tensor {
	v := &Tensor{Dims: append([]int(nil), dims...), Data: t.Data}
	if v.Len() != t.Len() {
		panic(fmt.Sprintf("tensor: reshape %v -> %v changes length", t.Dims, dims))
	}
	return v
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	return &Tensor{Dims: append([]int(nil), t.Dims...), Data: append([]float32(nil), t.Data...)}
}

// Zero sets all elements to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets all elements to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// CopyFrom copies src's data (lengths must match).
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.Data) != len(src.Data) {
		panic("tensor: CopyFrom length mismatch")
	}
	copy(t.Data, src.Data)
}

// SameShape reports whether two tensors have identical dims.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Dims) != len(o.Dims) {
		return false
	}
	for i := range t.Dims {
		if t.Dims[i] != o.Dims[i] {
			return false
		}
	}
	return true
}

// Axpy computes t += alpha * x.
func (t *Tensor) Axpy(alpha float32, x *Tensor) {
	if len(t.Data) != len(x.Data) {
		panic("tensor: Axpy length mismatch")
	}
	for i, v := range x.Data {
		t.Data[i] += alpha * v
	}
}

// Scale multiplies all elements by alpha.
func (t *Tensor) Scale(alpha float32) {
	for i := range t.Data {
		t.Data[i] *= alpha
	}
}

// MaxAbsDiff returns the largest absolute element-wise difference
// between two equal-length tensors (test helper for numerics).
func MaxAbsDiff(a, b *Tensor) float64 {
	if len(a.Data) != len(b.Data) {
		panic("tensor: MaxAbsDiff length mismatch")
	}
	var m float64
	for i := range a.Data {
		if d := math.Abs(float64(a.Data[i] - b.Data[i])); d > m {
			m = d
		}
	}
	return m
}

// GaussianInit fills t with N(0, std) samples from rng.
func (t *Tensor) GaussianInit(rng *rand.Rand, std float64) {
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64() * std)
	}
}

// XavierInit fills t with the Caffe "xavier" filler: uniform in
// [-s, s] with s = sqrt(3 / fanIn).
func (t *Tensor) XavierInit(rng *rand.Rand, fanIn int) {
	s := float32(math.Sqrt(3.0 / float64(fanIn)))
	for i := range t.Data {
		t.Data[i] = (rng.Float32()*2 - 1) * s
	}
}
