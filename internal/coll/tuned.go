package coll

import (
	"fmt"

	"scaffe/internal/gpu"
	"scaffe/internal/mpi"
)

// tunedReducer is HR (Tuned): it carries the full set of candidate
// configurations and dispatches each call to the combination the
// tuning table selects for (message size, process count). This mirrors
// the MVAPICH2-GDR 2.2 tuning infrastructure described in Section 5.
type tunedReducer struct {
	c        *mpi.Comm
	binomial Reducer
	chain    Reducer
	cc       Reducer
	cb       Reducer
}

func newTuned(c *mpi.Comm, o Options) *tunedReducer {
	t := &tunedReducer{c: c}
	t.binomial = &binomialReducer{c: c, o: o}
	t.chain = &chainReducer{c: c, o: o}
	if c.Size() > o.ChainSize {
		t.cc = newHierarchical(c, o, Chain)
		t.cb = newHierarchical(c, o, Binomial)
	}
	return t
}

func (t *tunedReducer) Name() string { return "HR(tuned)" }

// Select returns the algorithm the tuning table picks for a message of
// the given size on this communicator. The rules encode the paper's
// findings: binomial for small messages (Eq. 1 wins when t(b) is
// latency-dominated), a single chain up to the ideal chain length,
// chain-of-chain up to 64 processes, chain-binomial beyond.
func (t *tunedReducer) Select(bytes int64) Reducer {
	size := t.c.Size()
	switch {
	case bytes < 512<<10 || size <= 2:
		return t.binomial
	case size <= 8 || t.cc == nil:
		return t.chain
	case size <= 64:
		return t.cc
	default:
		return t.cb
	}
}

// SelectName reports which configuration Select would use (for the
// tuning-table report in cmd/experiments).
func (t *tunedReducer) SelectName(bytes int64) string {
	return fmt.Sprintf("%s", t.Select(bytes).Name())
}

func (t *tunedReducer) Reduce(r *mpi.Rank, buf *gpu.Buffer, tag int) {
	t.Select(buf.Bytes).Reduce(r, buf, tag)
}
