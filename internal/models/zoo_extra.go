package models

import "scaffe/internal/layers"

// This file adds the other DNNs the paper's introduction motivates
// (VGG and Network-in-Network): heavier-weight models that stress the
// communication runtime even further than AlexNet (VGG's gradient
// buffer is ~528 MB — past the 256 MB upper end of Figures 11–12).

// VGG16 returns the cost-model spec of VGG-16 (configuration D):
// ~138.3M parameters.
func VGG16() *Spec {
	b := newSpecBuilder("vgg16", layers.Shape{C: 3, H: 224, W: 224})
	block := func(stage int, convs, outC int) {
		for i := 1; i <= convs; i++ {
			b.conv(convName(stage, i), outC, 3, 1, 1, 1)
			b.relu(convName(stage, i) + "/relu")
		}
		b.pool(poolName(stage), 2, 2, 0, false)
	}
	block(1, 2, 64)
	block(2, 2, 128)
	block(3, 3, 256)
	block(4, 3, 512)
	block(5, 3, 512)
	b.fc("fc6", 4096)
	b.relu("relu6")
	b.dropout("drop6")
	b.fc("fc7", 4096)
	b.relu("relu7")
	b.dropout("drop7")
	b.fc("fc8", 1000)
	b.softmax("loss")
	return b.s
}

func convName(stage, i int) string {
	return "conv" + digits(stage) + "_" + digits(i)
}

func poolName(stage int) string { return "pool" + digits(stage) }

func digits(v int) string { return string(rune('0' + v)) }

// NetworkInNetwork returns the cost-model spec of NiN (the ImageNet
// variant): ~7.6M parameters, convolution-only with global average
// pooling.
func NetworkInNetwork() *Spec {
	b := newSpecBuilder("nin", layers.Shape{C: 3, H: 227, W: 227})
	mlpconv := func(name string, outC, k, stride, pad, cccp1, cccp2 int) {
		b.conv(name, outC, k, stride, pad, 1)
		b.relu(name + "/relu")
		b.conv(name+"/cccp1", cccp1, 1, 1, 0, 1)
		b.relu(name + "/cccp1/relu")
		b.conv(name+"/cccp2", cccp2, 1, 1, 0, 1)
		b.relu(name + "/cccp2/relu")
	}
	mlpconv("conv1", 96, 11, 4, 0, 96, 96)
	b.pool("pool1", 3, 2, 0, false)
	mlpconv("conv2", 256, 5, 1, 2, 256, 256)
	b.pool("pool2", 3, 2, 0, false)
	mlpconv("conv3", 384, 3, 1, 1, 384, 384)
	b.pool("pool3", 3, 2, 0, false)
	b.dropout("drop")
	mlpconv("conv4", 1024, 3, 1, 1, 1024, 1000)
	// Global average pooling over the final 6x6 maps.
	b.pool("pool4", 6, 1, 0, true)
	b.softmax("loss")
	return b.s
}
