package gpu

import "math"

// Incremental FNV-1a over 32-bit words. The integrity plane checksums
// float payloads wordwise (each float32's bit pattern is one word), so
// a region sum can be built up chunk by chunk with ChecksumWord and
// compared against a whole-buffer Checksum without ever materializing
// a byte view of the data.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// ChecksumSeed returns the initial hash state (the FNV-1a offset
// basis). A payload-free region checksums to exactly this value.
func ChecksumSeed() uint64 { return fnvOffset64 }

// ChecksumWord folds one 32-bit word into the running hash.
func ChecksumWord(h uint64, w uint32) uint64 {
	return (h ^ uint64(w)) * fnvPrime64
}

// Checksum hashes the buffer's whole payload. Buffers without backing
// data (timing-mode transfers model bytes, not values) return the
// seed, so checksum bookkeeping stays mode-agnostic.
func (b *Buffer) Checksum() uint64 {
	return b.RegionChecksum(0, len(b.Data))
}

// RegionChecksum hashes the element range [lo, hi) of the payload.
func (b *Buffer) RegionChecksum(lo, hi int) uint64 {
	h := fnvOffset64
	if b.Data == nil {
		return h
	}
	for _, v := range b.Data[lo:hi] {
		h = (h ^ uint64(math.Float32bits(v))) * fnvPrime64
	}
	return h
}
