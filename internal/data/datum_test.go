package data

import (
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestDatumRoundTrip(t *testing.T) {
	f := func(label uint8, img []float32) bool {
		s := Sample{Image: img, Label: int(label)}
		got, err := DecodeSample(EncodeSample(s))
		if err != nil {
			return false
		}
		if got.Label != s.Label || len(got.Image) != len(s.Image) {
			return false
		}
		for i := range img {
			// NaN-safe bitwise comparison via re-encode.
			if got.Image[i] != img[i] && (got.Image[i] == got.Image[i] || img[i] == img[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeSampleRejectsGarbage(t *testing.T) {
	if _, err := DecodeSample([]byte{1, 2, 3}); err == nil {
		t.Error("short datum accepted")
	}
	if _, err := DecodeSample(make([]byte, 16)); err == nil {
		t.Error("bad magic accepted")
	}
	good := EncodeSample(Sample{Image: []float32{1, 2}, Label: 1})
	if _, err := DecodeSample(good[:len(good)-2]); err == nil {
		t.Error("truncated datum accepted")
	}
}

func TestStoreDatasetRoundTrip(t *testing.T) {
	src := SyntheticCIFAR10(64, 9)
	path := filepath.Join(t.TempDir(), "cifar.slmdb")
	if err := BuildStore(path, src, 64); err != nil {
		t.Fatal(err)
	}
	ds, err := OpenStore(path, src.Shape(), src.Classes())
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if ds.Len() != 64 || ds.Classes() != 10 || ds.Shape() != src.Shape() {
		t.Fatalf("store geometry: len=%d classes=%d shape=%v", ds.Len(), ds.Classes(), ds.Shape())
	}
	for _, i := range []int{0, 7, 63} {
		want := src.At(i)
		got := ds.At(i)
		if got.Label != want.Label {
			t.Fatalf("sample %d label %d != %d", i, got.Label, want.Label)
		}
		for j := range want.Image {
			if got.Image[j] != want.Image[j] {
				t.Fatalf("sample %d pixel %d differs", i, j)
			}
		}
	}
}

func TestBuildStoreCapsAtDatasetLen(t *testing.T) {
	src := SyntheticMNIST(5, 1)
	path := filepath.Join(t.TempDir(), "small.slmdb")
	if err := BuildStore(path, src, 100); err != nil {
		t.Fatal(err)
	}
	ds, err := OpenStore(path, src.Shape(), src.Classes())
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if ds.Len() != 5 {
		t.Errorf("store len = %d, want 5", ds.Len())
	}
}

func TestOpenStoreMissingFile(t *testing.T) {
	if _, err := OpenStore(filepath.Join(t.TempDir(), "nope"), SyntheticMNIST(1, 1).Shape(), 10); err == nil {
		t.Error("missing store opened")
	}
}
