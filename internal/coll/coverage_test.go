package coll

import (
	"testing"

	"scaffe/internal/gpu"
	"scaffe/internal/mpi"
	"scaffe/internal/sim"
	"scaffe/internal/topology"
)

// Third-round coverage: selector edges, option handling, and timing
// sanity not asserted elsewhere.

func TestNewReducerDefaultsChainSize(t *testing.T) {
	w := newWorld(t, 4, 4, 16)
	c := w.WorldComm()
	red := NewReducer(c, ChainBinomial, Options{OnGPU: true}) // zero chain size
	if red.Name() != "CB-8" {
		t.Errorf("zero chain size should default to 8, got %s", red.Name())
	}
}

func TestNewReducerUnknownAlgorithmPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown algorithm should panic")
		}
	}()
	w := newWorld(t, 1, 4, 4)
	NewReducer(w.WorldComm(), Algorithm(99), DefaultOptions())
}

func TestTunedOnSmallCommHasNoHierarchy(t *testing.T) {
	// A communicator no larger than the chain size cannot build
	// two-level designs; Tuned must still work.
	w := newWorld(t, 2, 4, 8)
	tr := newTuned(w.WorldComm(), DefaultOptions())
	if tr.cc != nil || tr.cb != nil {
		t.Error("8-rank tuned reducer should not build hierarchical variants")
	}
	got, _ := runReduce(t, Tuned, DefaultOptions(), 8, 1<<20)
	expectSum(t, got, 8)
}

func TestHostReduceBWOption(t *testing.T) {
	// A higher host-reduce bandwidth must shorten a CPU-arithmetic
	// reduction.
	run := func(bw float64) sim.Time {
		w := newWorld(t, 2, 4, 8)
		c := w.WorldComm()
		o := Options{ChainSize: 8, OnGPU: false, HostReduceBW: bw, Mode: topology.ModeHost}
		red := NewReducer(c, Binomial, o)
		end, err := w.Run(func(r *mpi.Rank) {
			red.Reduce(r, gpu.NewBuffer(64<<20), 10)
		})
		if err != nil {
			t.Fatal(err)
		}
		return end
	}
	slow := run(0)    // cluster default (6 GB/s)
	fast := run(40e9) // multithreaded
	if fast >= slow {
		t.Errorf("40GB/s host reduce (%v) should beat the 6GB/s default (%v)", fast, slow)
	}
}

func TestSingleRankReducesAreFree(t *testing.T) {
	for _, alg := range []Algorithm{Binomial, Chain, Tuned, MV2Baseline, OpenMPIBaseline, Rabenseifner} {
		w := newWorld(t, 1, 4, 1)
		c := w.WorldComm()
		red := NewReducer(c, alg, DefaultOptions())
		end, err := w.Run(func(r *mpi.Rank) {
			buf := gpu.NewDataBuffer(16)
			buf.Fill(3)
			red.Reduce(r, buf, 10)
			if buf.Data[0] != 3 {
				t.Errorf("%v: single-rank reduce modified the buffer", alg)
			}
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if end != 0 {
			t.Errorf("%v: single-rank reduce cost %v", alg, end)
		}
	}
}

func TestChainBinomialLocalityAlignment(t *testing.T) {
	// With block placement and chain size == GPUs per node, the lower
	// chains are entirely node-local (the Section 5 locality
	// argument): the HCAs should only carry the leader phase.
	const ranks = 16
	k := sim.New()
	cl := topology.New(k, "t", 4, 4, topology.DefaultParams())
	w := mpi.NewWorld(cl, ranks)
	c := w.WorldComm()
	o := DefaultOptions()
	o.ChainSize = 4 // == GPUs per node
	red := NewReducer(c, ChainBinomial, o)
	_, err := w.Run(func(r *mpi.Rank) {
		red.Reduce(r, gpu.NewBuffer(8<<20), 10)
	})
	if err != nil {
		t.Fatal(err)
	}
	// The leaders binomial moves 2 buffer-transfers over HCAs per
	// round; intra-node chains must not have touched them at all
	// beyond that. Leaders are ranks 0,4,8,12 (one per node), binomial
	// does 3 inter-node transfers of 8MB: HCA out traffic across the
	// cluster ~ 3 transfers * ~0.84ms. Assert it is far below what
	// chains-over-IB would have produced (12 inter-node hops).
	var hcaBusy sim.Duration
	for _, n := range cl.Nodes {
		hcaBusy += n.HCA.BusyTotal()
	}
	// 3 inter-node transfers, each reserving HCA.Out (src) and HCA.In
	// (dst) for ~0.84ms → ~5ms total; a non-locality-aligned layout
	// would at least triple that.
	if hcaBusy > 8*sim.Millisecond {
		t.Errorf("HCAs busy %v; chains should have stayed node-local", hcaBusy)
	}
	if hcaBusy == 0 {
		t.Error("leader phase should have crossed nodes")
	}
}

func TestHierarchicalTimeAnalytic(t *testing.T) {
	p := CostParams{Alpha: 1e-5, Beta: 1e10}
	ch := HierarchicalTime(p, 64, 8, 8, 64e6, true)
	cb := HierarchicalTime(p, 64, 8, 8, 64e6, false)
	if ch <= 0 || cb <= 0 {
		t.Fatal("hierarchical times must be positive")
	}
	// Degenerate chain size clamps.
	if HierarchicalTime(p, 8, 0, 8, 1e6, false) <= 0 {
		t.Error("chainSize 0 should clamp, not blow up")
	}
}
