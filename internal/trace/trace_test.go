package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"scaffe/internal/sim"
)

func sample() *Recorder {
	t := New()
	t.Add(0, "forward", 0, 10*sim.Millisecond)
	t.Add(0, "aggregation", 10*sim.Millisecond, 25*sim.Millisecond)
	t.Add(1, "forward", 2*sim.Millisecond, 12*sim.Millisecond)
	t.Add(1, "backward", 12*sim.Millisecond, 30*sim.Millisecond)
	return t
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Add(0, "forward", 0, 10) // must not panic
	if r.Len() != 0 || r.Events() != nil {
		t.Error("nil recorder should be empty")
	}
}

func TestAddDropsEmptySpans(t *testing.T) {
	r := New()
	r.Add(0, "x", 10, 10)
	r.Add(0, "x", 10, 5)
	if r.Len() != 0 {
		t.Errorf("empty spans recorded: %d", r.Len())
	}
}

func TestEventDuration(t *testing.T) {
	e := Event{Start: 5, End: 12}
	if e.Duration() != 7 {
		t.Errorf("duration = %v", e.Duration())
	}
}

func TestChromeTraceJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	first := evs[0]
	if first["name"] != "forward" || first["ph"] != "X" {
		t.Errorf("first event = %v", first)
	}
	if first["dur"].(float64) != 10000 { // 10ms in µs
		t.Errorf("dur = %v, want 10000", first["dur"])
	}
}

func TestGantt(t *testing.T) {
	g := sample().Gantt(40)
	if !strings.Contains(g, "rank0 ") || !strings.Contains(g, "rank1 ") {
		t.Errorf("gantt missing rank rows:\n%s", g)
	}
	if !strings.Contains(g, "F") || !strings.Contains(g, "A") || !strings.Contains(g, "B") {
		t.Errorf("gantt missing phase glyphs:\n%s", g)
	}
	if New().Gantt(40) != "(no trace)\n" {
		t.Error("empty recorder should render placeholder")
	}
}

func TestGanttUnknownPhaseGlyph(t *testing.T) {
	r := New()
	r.Add(0, "exotic-phase", 0, 10)
	if !strings.Contains(r.Gantt(20), "#") {
		t.Error("unknown phases should render as #")
	}
}

func TestPhaseTotals(t *testing.T) {
	totals := sample().PhaseTotals()
	if got := totals["forward"][0]; got != 10*sim.Millisecond {
		t.Errorf("rank0 forward total = %v", got)
	}
	if got := totals["backward"][1]; got != 18*sim.Millisecond {
		t.Errorf("rank1 backward total = %v", got)
	}
}
