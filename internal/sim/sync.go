package sim

// waiter records a proc parked on a completion together with the wait
// sequence it armed, so the wake-up can verify the proc is still
// parked on that same wait (it may have timed out and moved on).
type waiter struct {
	p   *Proc
	seq uint64
}

// Completion is a one-shot event that procs can wait on. It is created
// un-fired; Fire releases all current and future waiters. Completions
// are the simulation analogue of a chan struct{} that is closed once.
//
// Completions may be pooled (GetCompletion/PutCompletion, or embedded
// in a pooled owner that calls reset). Every recycle bumps the
// generation counter, so scheduled fires and other references taken
// against an earlier life (FireAt events, FireIf callers) dissolve
// instead of acting on the reused object. Together with the proc-side
// waitSeq guard this makes reuse safe under kills and timeouts.
type Completion struct {
	k       *Kernel
	fired   bool
	firedAt Time
	gen     uint64
	waiters []waiter
	cbs     []func()

	// w0 is the inline backing array for waiters: almost every
	// completion has exactly one waiting proc, so the common case never
	// touches the heap even for completions that are not pooled.
	w0 [2]waiter
}

// addWaiter parks w on the completion, pointing the waiter list at the
// inline backing array on first use.
func (c *Completion) addWaiter(w waiter) {
	if c.waiters == nil {
		c.waiters = c.w0[:0]
	}
	//scaffe:nolint hotpath append lands in the inline w0 backing array in the common case
	c.waiters = append(c.waiters, w)
}

// NewCompletion returns an un-fired completion bound to k.
func (k *Kernel) NewCompletion() *Completion { return &Completion{k: k} }

// GetCompletion returns an un-fired completion from the kernel's free
// list (allocating only when the pool is empty). Return it with
// PutCompletion once no live reference can fire or wait on it.
func (k *Kernel) GetCompletion() *Completion {
	if n := len(k.compPool); n > 0 {
		c := k.compPool[n-1]
		k.compPool[n-1] = nil
		k.compPool = k.compPool[:n-1]
		return c
	}
	//scaffe:nolint hotpath pool-miss construction; steady state hits the free list
	return &Completion{k: k}
}

// PutCompletion recycles c into the kernel's free list. The caller
// must own the only live handle; stale scheduled fires are harmless
// (the generation bump dissolves them).
func (k *Kernel) PutCompletion(c *Completion) {
	c.reset(k)
	//scaffe:nolint hotpath free-list release; append reuses capacity freed by the matching Get
	k.compPool = append(k.compPool, c)
}

// Init readies c for (re)use on kernel k: un-fired, no waiters or
// callbacks, generation bumped so references from a previous life
// dissolve. It is how pooled owners with embedded completions (mpi
// requests) recycle them; a zero-value embedded completion is
// initialized with the same call.
func (c *Completion) Init(k *Kernel) { c.reset(k) }

// reset returns c to the un-fired state for reuse, bumping the
// generation so events scheduled against the previous life dissolve.
// It also (re)binds the kernel, so zero-value embedded completions
// can be initialized with the same call.
func (c *Completion) reset(k *Kernel) {
	c.k = k
	c.gen++
	c.fired = false
	c.firedAt = 0
	for i := range c.waiters {
		c.waiters[i] = waiter{}
	}
	c.waiters = c.waiters[:0]
	for i := range c.cbs {
		c.cbs[i] = nil
	}
	c.cbs = c.cbs[:0]
}

// Fired reports whether the completion has fired.
func (c *Completion) Fired() bool { return c.fired }

// FiredAt returns the virtual time at which the completion fired; it
// is only meaningful when Fired is true.
func (c *Completion) FiredAt() Time { return c.firedAt }

// Gen returns the completion's current generation. Callers that stash
// a reference across a possible recycle pair it with FireIf.
func (c *Completion) Gen() uint64 { return c.gen }

// Fire marks the completion done at the current virtual time, wakes
// all waiters, and runs registered callbacks in kernel context. Firing
// twice is a no-op.
//
//scaffe:hotpath
func (c *Completion) Fire() { c.FireFrom(nil) }

// FireFrom is Fire with an explicit acting proc: when actor is running
// the concurrent part of a parallel batch, the waiter wake-ups and
// callback dispatches are staged on its segment and replayed by the
// commit loop in exact global order instead of touching the shared
// event queue. With a nil actor (kernel context, or any serial
// context) it is identical to Fire.
//
//scaffe:hotpath
//scaffe:parallel
func (c *Completion) FireFrom(actor *Proc) {
	if c.fired {
		return
	}
	c.fired = true
	c.firedAt = c.k.now
	var s *parSegment
	if actor != nil {
		s = actor.stage
	}
	waiters := c.waiters
	for i, w := range waiters {
		if s != nil {
			s.add(event{kind: evResumeIf, p: w.p, aux: w.seq, at: c.k.now})
		} else {
			c.k.atResumeIf(c.k.now, w.p, w.seq)
		}
		waiters[i] = waiter{}
	}
	c.waiters = waiters[:0]
	cbs := c.cbs
	for i, fn := range cbs {
		if s != nil {
			s.add(event{kind: evFunc, fn: fn, at: c.k.now})
		} else {
			c.k.At(c.k.now, fn)
		}
		cbs[i] = nil
	}
	c.cbs = cbs[:0]
}

// FireIf fires the completion only if its generation still equals
// gen: a reference that survived a recycle becomes a no-op instead of
// spuriously completing the object's next life.
//
//scaffe:hotpath
func (c *Completion) FireIf(gen uint64) {
	if c.gen == gen {
		c.Fire()
	}
}

// FireAt schedules the completion to fire at virtual time t. The
// scheduled event is guarded by the current generation: recycling the
// completion before t dissolves it.
func (c *Completion) FireAt(t Time) {
	c.k.atFire(t, c)
}

// OnFire registers fn to run (in kernel context) when the completion
// fires. If it has already fired, fn is scheduled immediately.
func (c *Completion) OnFire(fn func()) {
	if c.fired {
		c.k.At(c.k.now, fn)
		return
	}
	//scaffe:nolint hotpath callback backing is kept by reset(); pooled completions reuse its capacity
	c.cbs = append(c.cbs, fn)
}

// Flag is a reusable binary condition used for intra-rank thread
// synchronization (the helper-thread/main-thread handshake of
// SC-OBR). Set wakes all waiters; the flag stays set until Clear.
type Flag struct {
	k       *Kernel
	set     bool
	waiters []*Proc
}

// NewFlag returns a cleared flag.
func (k *Kernel) NewFlag() *Flag { return &Flag{k: k} }

// Set raises the flag and wakes all waiting procs.
func (f *Flag) Set() {
	f.set = true
	for _, p := range f.waiters {
		f.k.wakeAt(p, f.k.now)
	}
	f.waiters = nil
}

// Clear lowers the flag.
func (f *Flag) Clear() { f.set = false }

// IsSet reports the flag state.
func (f *Flag) IsSet() bool { return f.set }

// WaitSet blocks p until the flag is set (returns immediately if
// already set).
func (f *Flag) WaitSet(p *Proc) {
	for !f.set {
		f.waiters = append(f.waiters, p)
		p.park()
	}
}

// Queue is an unbounded-or-bounded FIFO of values passed between
// procs, the simulation analogue of a buffered channel. A zero cap
// means unbounded.
type Queue struct {
	k       *Kernel
	items   []any
	cap     int
	getters []*Proc
	putters []*Proc
}

// NewQueue returns a queue with the given capacity (0 = unbounded).
func (k *Kernel) NewQueue(capacity int) *Queue {
	return &Queue{k: k, cap: capacity}
}

// Len returns the number of queued items.
func (q *Queue) Len() int { return len(q.items) }

// Put appends v, blocking p while the queue is at capacity.
func (q *Queue) Put(p *Proc, v any) {
	for q.cap > 0 && len(q.items) >= q.cap {
		q.putters = append(q.putters, p)
		p.park()
	}
	q.items = append(q.items, v)
	q.wakeOneGetter(p)
}

// TryPut appends v without blocking; it reports false if the queue is
// full. It is a serial-context primitive (kernel callbacks, tests);
// batched procs use Put, which routes the wake through the acting
// proc's stage.
func (q *Queue) TryPut(v any) bool {
	if q.cap > 0 && len(q.items) >= q.cap {
		return false
	}
	q.items = append(q.items, v)
	q.wakeOneGetter(nil)
	return true
}

// Get removes and returns the oldest item, blocking p while empty.
func (q *Queue) Get(p *Proc) any {
	for len(q.items) == 0 {
		//scaffe:nolint hotpath waiting-getter list reuses its high-water backing across iterations
		q.getters = append(q.getters, p)
		p.park()
	}
	v := q.items[0]
	q.items = q.items[1:]
	q.wakeOnePutter(p)
	return v
}

func (q *Queue) wakeOneGetter(from *Proc) {
	// Killed procs leave stale entries behind; skip them so a real
	// waiter is not starved of its wake-up.
	for len(q.getters) > 0 {
		p := q.getters[0]
		q.getters = q.getters[1:]
		if !p.finished {
			q.wake(from, p)
			return
		}
	}
}

func (q *Queue) wakeOnePutter(from *Proc) {
	for len(q.putters) > 0 {
		p := q.putters[0]
		q.putters = q.putters[1:]
		if !p.finished {
			q.wake(from, p)
			return
		}
	}
}

// wake resumes p at the current instant, staging the event when the
// acting proc is inside a batch's concurrent part. Queues shared
// across groups are not supported there (the group policy keeps each
// reader queue inside its rank's group).
//
//scaffe:parallel
func (q *Queue) wake(from, p *Proc) {
	if from != nil {
		if s := from.stage; s != nil {
			s.add(event{kind: evResume, p: p, at: q.k.now})
			return
		}
	}
	q.k.wakeAt(p, q.k.now)
}

// Resource models a FIFO-served exclusive resource (a link, a DMA
// engine, a GPU stream) with a "busy until" horizon. Reservations do
// not require a proc: callers reserve a span and receive its start and
// end times; the caller is responsible for waiting if it wants
// blocking semantics.
type Resource struct {
	k         *Kernel
	busyUntil Time
	name      string
	busyTotal Duration
}

// NewResource returns an idle resource.
func (k *Kernel) NewResource(name string) *Resource {
	return &Resource{k: k, name: name}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Reserve books the resource for d starting no earlier than `from` and
// no earlier than the end of all previous reservations. It returns the
// start and end times of the booked span.
func (r *Resource) Reserve(from Time, d Duration) (start, end Time) {
	start = from
	if r.busyUntil > start {
		start = r.busyUntil
	}
	end = start + d
	r.busyUntil = end
	r.busyTotal += d
	return start, end
}

// FreeAt returns the earliest time at or after `from` at which the
// resource is idle.
func (r *Resource) FreeAt(from Time) Time {
	if r.busyUntil > from {
		return r.busyUntil
	}
	return from
}

// BusyTotal returns the cumulative reserved time, for utilization
// reporting.
func (r *Resource) BusyTotal() Duration { return r.busyTotal }

// Semaphore is a counting semaphore for procs.
type Semaphore struct {
	k       *Kernel
	permits int
	waiters []*Proc
}

// NewSemaphore returns a semaphore with n initial permits.
func (k *Kernel) NewSemaphore(n int) *Semaphore {
	return &Semaphore{k: k, permits: n}
}

// Acquire takes one permit, blocking p until one is available.
func (s *Semaphore) Acquire(p *Proc) {
	for s.permits == 0 {
		s.waiters = append(s.waiters, p)
		p.park()
	}
	s.permits--
}

// Release returns one permit and wakes a waiter if any (skipping
// waiters that have since been killed).
func (s *Semaphore) Release() {
	s.permits++
	for len(s.waiters) > 0 {
		p := s.waiters[0]
		s.waiters = s.waiters[1:]
		if !p.finished {
			s.k.wakeAt(p, s.k.now)
			return
		}
	}
}
