package tensor

import (
	"runtime"
	"sync"
)

// gemmParallelThreshold is the output size (M*N) above which GEMM
// fans out across CPU cores; small multiplies stay single-threaded to
// avoid goroutine overhead.
const gemmParallelThreshold = 64 * 64

// Gemm computes C = alpha*op(A)*op(B) + beta*C for row-major matrices,
// where op transposes when the corresponding flag is set. A is M×K
// (K×M if transA), B is K×N (N×K if transB), C is M×N. The row range
// of C is partitioned statically across workers, so results are
// bit-identical regardless of parallelism.
func Gemm(transA, transB bool, m, n, k int, alpha float32, a []float32, b []float32, beta float32, c []float32) {
	if len(c) < m*n {
		panic("tensor: gemm C too small")
	}
	workers := runtime.GOMAXPROCS(0)
	if m*n < gemmParallelThreshold || workers < 2 {
		gemmRows(transA, transB, m, n, k, alpha, a, b, beta, c, 0, m)
		return
	}
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	per := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			gemmRows(transA, transB, m, n, k, alpha, a, b, beta, c, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// gemmRows computes rows [lo,hi) of C.
func gemmRows(transA, transB bool, m, n, k int, alpha float32, a, b []float32, beta float32, c []float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		ci := c[i*n : (i+1)*n]
		if beta == 0 {
			for j := range ci {
				ci[j] = 0
			}
		} else if beta != 1 {
			for j := range ci {
				ci[j] *= beta
			}
		}
		switch {
		case !transA && !transB:
			// C[i,:] += alpha * sum_p A[i,p] * B[p,:]  (streams B rows)
			ai := a[i*k : (i+1)*k]
			for p, av := range ai {
				if av == 0 {
					continue
				}
				s := alpha * av
				bp := b[p*n : (p+1)*n]
				for j, bv := range bp {
					ci[j] += s * bv
				}
			}
		case !transA && transB:
			ai := a[i*k : (i+1)*k]
			for j := 0; j < n; j++ {
				bj := b[j*k : (j+1)*k]
				var acc float32
				for p := range ai {
					acc += ai[p] * bj[p]
				}
				ci[j] += alpha * acc
			}
		case transA && !transB:
			// A is K×M: A[p,i]
			for p := 0; p < k; p++ {
				av := a[p*m+i]
				if av == 0 {
					continue
				}
				s := alpha * av
				bp := b[p*n : (p+1)*n]
				for j, bv := range bp {
					ci[j] += s * bv
				}
			}
		default: // transA && transB
			for j := 0; j < n; j++ {
				var acc float32
				for p := 0; p < k; p++ {
					acc += a[p*m+i] * b[j*k+p]
				}
				ci[j] += alpha * acc
			}
		}
	}
}

// Gemv computes y = alpha*op(A)*x + beta*y (specialized M×K by K
// matrix-vector product).
func Gemv(transA bool, m, k int, alpha float32, a, x []float32, beta float32, y []float32) {
	if transA {
		Gemm(true, false, k, 1, m, alpha, a, x, beta, y)
		return
	}
	Gemm(false, false, m, 1, k, alpha, a, x, beta, y)
}
