// Package mpifix seeds mpi-pass violations for the golden fixture
// test: leaked and discarded requests, literal tags, and blocking
// collectives inside helper threads.
package mpifix

import (
	"scaffe/internal/coll"
	"scaffe/internal/gpu"
	"scaffe/internal/mpi"
	"scaffe/internal/sim"
	"scaffe/internal/topology"
)

const fixTag = 7

func discarded(r *mpi.Rank, c *mpi.Comm, buf *gpu.Buffer) {
	r.Isend(c, 1, fixTag, buf, topology.ModeAuto) // want `mpi.Isend result discarded`
	_ = r.Irecv(c, 1, fixTag, buf)                // want `mpi.Irecv result discarded`
}

func leakedOnReturn(r *mpi.Rank, c *mpi.Comm, buf *gpu.Buffer) {
	req := r.Isend(c, 1, fixTag, buf, topology.ModeAuto) // want `request from mpi.Isend does not reach Wait/Test`
	if buf.Bytes > 0 {
		return
	}
	_ = req
}

func leakedAtScopeEnd(red coll.Reducer, r *mpi.Rank, buf *gpu.Buffer) {
	req := r.NewDeferredRequest(func() {}) // want `request from mpi.NewDeferredRequest does not reach Wait/Test`
	if buf.Bytes > 0 {
		req = coll.Ireduce(red, r, buf, fixTag)
		r.Wait(req)
	}
}

func literalTags(red coll.Reducer, r *mpi.Rank, c *mpi.Comm, buf *gpu.Buffer) {
	r.Send(c, 1, 42, buf, topology.ModeAuto) // want `literal tag passed to mpi.Send`
	red.Reduce(r, buf, 13)                   // want `literal tag passed to coll.Reduce`
}

func blockingInHelper(red coll.Reducer, r *mpi.Rank, c *mpi.Comm, buf *gpu.Buffer) {
	r.SpawnThread("helper", func(p *sim.Proc) {
		r.Bcast(c, 0, buf, topology.ModeAuto) // want `blocking mpi.Bcast inside a SpawnThread helper`
		red.Reduce(r, buf, fixTag)            // want `blocking collective coll.Reduce inside a SpawnThread helper`
	})
}

func wellBehaved(red coll.Reducer, r *mpi.Rank, c *mpi.Comm, buf *gpu.Buffer) {
	sreq := r.Isend(c, 1, fixTag, buf, topology.ModeAuto)
	rreq := r.Irecv(c, 1, fixTag+1, buf)
	r.WaitAll(sreq, rreq)

	var late *mpi.Request
	if buf.Bytes > 0 {
		late = r.Ibcast(c, 0, buf, topology.ModeAuto)
	}
	if late != nil {
		r.Wait(late)
	}

	r.SpawnThread("helper", func(p *sim.Proc) {
		ireq := coll.Ireduce(red, r, buf, fixTag) // non-blocking in a helper: allowed
		r.Wait(ireq)
	})
}
