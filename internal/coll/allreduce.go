package coll

import (
	"scaffe/internal/gpu"
	"scaffe/internal/mpi"
	"scaffe/internal/topology"
)

// Allreduce performs reduce-to-root followed by broadcast using the
// given reducer. Every member of the reducer's communicator must call
// it. Tags tag..tag+2 are reserved.
func Allreduce(red Reducer, c *mpi.Comm, r *mpi.Rank, buf *gpu.Buffer, tag int, mode topology.TransferMode) {
	red.Reduce(r, buf, tag)
	r.Bcast(c, 0, buf, mode)
}

// RingAllreduce is the bandwidth-optimal ring algorithm (reduce-
// scatter + allgather over 2(P−1) steps) that later frameworks (NCCL,
// Horovod) adopted — included as the "future work" extension the paper
// anticipates and as an ablation baseline. Tags tag..tag+2P are
// reserved.
func RingAllreduce(c *mpi.Comm, r *mpi.Rank, buf *gpu.Buffer, tag int, o Options) {
	ringAllreduce(c, r, buf, tag, o, nil)
}

// ringSegOf returns the element extents of ring segment j (taken
// modulo the group size).
func ringSegOf(size, elems, j int) (lo, hi int) {
	j = (j%size + size) % size
	per := (elems + size - 1) / size
	lo = j * per
	hi = lo + per
	if hi > elems {
		hi = elems
	}
	if lo > hi {
		lo = hi
	}
	return
}

// ringAllreduce is the state-threaded implementation; a nil state
// falls back to transient allocation (the exported entry point).
func ringAllreduce(c *mpi.Comm, r *mpi.Rank, buf *gpu.Buffer, tag int, o Options, st *rankState) {
	me := c.Rank(r)
	size := c.Size()
	if size == 1 {
		return
	}
	elems := buf.Elems()
	left := (me - 1 + size) % size
	right := (me + 1) % size

	// Reduce-scatter: after P-1 steps, rank i holds the fully reduced
	// segment (i+1) mod P.
	for step := 0; step < size-1; step++ {
		sendSeg := me - step
		recvSeg := me - step - 1
		slo, shi := ringSegOf(size, elems, sendSeg)
		rlo, rhi := ringSegOf(size, elems, recvSeg)
		acc := st.view(buf, rlo, rhi)
		scratch := st.getScratch(acc)
		sreq := r.Isend(c, right, tag+step, st.view(buf, slo, shi), o.Mode)
		r.RecvSummed(c, left, tag+step, scratch).Verify()
		localReduce(r, acc, scratch, o)
		st.putScratch(scratch)
		r.Wait(sreq)
	}
	// Allgather: circulate the reduced segments.
	for step := 0; step < size-1; step++ {
		sendSeg := me + 1 - step
		recvSeg := me - step
		slo, shi := ringSegOf(size, elems, sendSeg)
		rlo, rhi := ringSegOf(size, elems, recvSeg)
		sreq := r.Isend(c, right, tag+size+step, st.view(buf, slo, shi), o.Mode)
		r.RecvSummed(c, left, tag+size+step, st.view(buf, rlo, rhi)).Verify()
		r.Wait(sreq)
	}
}

// Ring wraps RingAllreduce with per-rank reusable scratch state for
// callers that allreduce every iteration (the parameter-server and
// ablation designs); build it once per communicator.
type Ring struct {
	c      *mpi.Comm
	o      Options
	states stateTable
}

// NewRing builds a reusable ring-allreduce over c.
func NewRing(c *mpi.Comm, o Options) *Ring { return &Ring{c: c, o: o} }

// Allreduce performs this rank's part of the ring allreduce. Tags
// tag..tag+2P are reserved.
func (g *Ring) Allreduce(r *mpi.Rank, buf *gpu.Buffer, tag int) {
	// Collective entry: the reducer's shared per-rank state table and
	// the cross-rank traffic below are outside any one group, so a
	// batched segment serializes here (no-op in sequential mode).
	r.Proc.Exclusive()
	st := g.states.acquire(g.c.Size(), g.c.Rank(r))
	defer st.release()
	ringAllreduce(g.c, r, buf, tag, g.o, st)
}
