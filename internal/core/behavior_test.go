package core

import (
	"testing"

	"scaffe/internal/coll"
	"scaffe/internal/models"
	"scaffe/internal/sim"
	"scaffe/internal/trace"
)

// Second-round behaviour tests: system-level properties of the engine
// that the paper's arguments depend on.

func TestPSServerSerializesWorkers(t *testing.T) {
	// Section 3.1's scalability argument: the parameter server's
	// aggregation time grows roughly linearly with worker count
	// because every gradient funnels through one GPU.
	aggTime := func(workers int) sim.Duration {
		spec := models.AlexNet()
		cfg := timingConfig(spec, workers+1, workers*8, 2)
		cfg.Design = ParamServer
		cfg.Nodes, cfg.GPUsPerNode = 16, 1
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Phases.Aggregation // server is rank 0
	}
	a4 := aggTime(4)
	a12 := aggTime(12)
	ratio := float64(a12) / float64(a4)
	if ratio < 2.2 {
		t.Errorf("PS aggregation grew only %.2fx from 4 to 12 workers; expected near-linear (~3x)", ratio)
	}
}

func TestCaffeMTTracksSCBIntraNode(t *testing.T) {
	// Within a node, multi-threaded Caffe and the MPI port perform the
	// same tree communication over IPC: their times should be close
	// (the paper observes S-Caffe matches Caffe up to 16 GPUs).
	spec, _ := models.ByName("cifar10-quick")
	mk := func(d Design) Config {
		cfg := timingConfig(spec, 8, 512, 3)
		cfg.Design = d
		cfg.Reduce = coll.Binomial
		cfg.Nodes, cfg.GPUsPerNode = 1, 16
		return cfg
	}
	caffe, err := Run(mk(CaffeMT))
	if err != nil {
		t.Fatal(err)
	}
	scb, err := Run(mk(SCB))
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(scb.TotalTime) / float64(caffe.TotalTime)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("intra-node SC-B/Caffe ratio = %.2f; expected parity within 10%%", ratio)
	}
}

func TestWeakScalingNearConstantIterTime(t *testing.T) {
	spec := models.GoogLeNet()
	perIter := func(gpus int) sim.Duration {
		cfg := timingConfig(spec, gpus, 16, 3)
		cfg.Weak = true
		cfg.Design = SCOBR
		cfg.Nodes, cfg.GPUsPerNode = 4, 16
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.TimePerIter()
	}
	t16 := perIter(16)
	t64 := perIter(64)
	if float64(t64) > 1.5*float64(t16) {
		t.Errorf("weak scaling iteration time grew %v -> %v; should stay near-constant", t16, t64)
	}
}

func TestTraceRecordsAllPhases(t *testing.T) {
	spec, _ := models.ByName("cifar10-quick")
	cfg := timingConfig(spec, 4, 32, 2)
	cfg.Design = SCOBR
	cfg.Source = LMDBSource
	rec := trace.New()
	cfg.Trace = rec
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	totals := rec.PhaseTotals()
	for _, phase := range []string{"forward", "aggregation", "update"} {
		if len(totals[phase]) == 0 {
			t.Errorf("trace missing phase %q", phase)
		}
	}
	// Update happens only at the root.
	upd := totals["update"]
	if upd[0] == 0 {
		t.Error("root recorded no update time")
	}
	for rank := 1; rank < len(upd); rank++ {
		if upd[rank] != 0 {
			t.Errorf("non-root rank %d recorded update time %v", rank, upd[rank])
		}
	}
}

func TestTraceDoesNotPerturbTiming(t *testing.T) {
	spec, _ := models.ByName("cifar10-quick")
	cfg := timingConfig(spec, 8, 64, 3)
	cfg.Design = SCOBR
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trace = trace.New()
	traced, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.TotalTime != traced.TotalTime {
		t.Errorf("tracing changed virtual time: %v vs %v", plain.TotalTime, traced.TotalTime)
	}
}

func TestReduceAlgorithmAffectsTrainingTime(t *testing.T) {
	// End-to-end sanity for Table 2's mechanism: swapping only the
	// reduce algorithm changes iteration time in the expected
	// direction.
	spec := models.CaffeNet()
	mk := func(alg coll.Algorithm) Config {
		cfg := timingConfig(spec, 32, 32*64, 2)
		cfg.Nodes, cfg.GPUsPerNode = 2, 16
		cfg.Reduce = alg
		return cfg
	}
	hr, err := Run(mk(coll.Tuned))
	if err != nil {
		t.Fatal(err)
	}
	ompi, err := Run(mk(coll.OpenMPIBaseline))
	if err != nil {
		t.Fatal(err)
	}
	if float64(ompi.TotalTime) < 2*float64(hr.TotalTime) {
		t.Errorf("OpenMPI-reduce training (%v) should be far slower than HR (%v)", ompi.TotalTime, hr.TotalTime)
	}
}

func TestImageDataBeatsLMDBOnlyBeyondSlotLimit(t *testing.T) {
	// Below 64 readers the two backends should be close; the cliff is
	// specifically a >64-reader phenomenon (Figure 8's curves overlap
	// until then).
	spec := models.GoogLeNet()
	run := func(gpus int, src SourceKind) sim.Duration {
		cfg := timingConfig(spec, gpus, 8*gpus, 3)
		cfg.Nodes, cfg.GPUsPerNode = 12, 16
		cfg.Design = SCOBR
		cfg.Source = src
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalTime
	}
	lmdb64 := run(64, LMDBSource)
	pfs64 := run(64, ImageDataSource)
	if ratio := float64(lmdb64) / float64(pfs64); ratio > 1.1 {
		t.Errorf("at 64 readers LMDB (%v) should track PFS (%v), ratio %.2f", lmdb64, pfs64, ratio)
	}
	lmdb160 := run(160, LMDBSource)
	pfs160 := run(160, ImageDataSource)
	if ratio := float64(lmdb160) / float64(pfs160); ratio < 1.5 {
		t.Errorf("at 160 readers LMDB (%v) should collapse vs PFS (%v), ratio %.2f", lmdb160, pfs160, ratio)
	}
}

func TestRingAllreduceTrainingDesignEquivalence(t *testing.T) {
	// CNTK-like uses the ring allreduce; its timing must scale with
	// message size but its updates already proved equivalent — here we
	// check the aggregation phase reacts to the model size.
	small, _ := models.ByName("cifar10-quick")
	big := models.AlexNet()
	agg := func(spec *models.Spec) sim.Duration {
		cfg := timingConfig(spec, 8, 64, 2)
		cfg.Design = CNTKLike
		cfg.Nodes, cfg.GPUsPerNode = 4, 2
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Phases.Aggregation
	}
	if agg(big) < 10*agg(small) {
		t.Errorf("AlexNet's 244MB allreduce (%v) should dwarf CIFAR's 582KB (%v)", agg(big), agg(small))
	}
}

func TestModelParallelRuns(t *testing.T) {
	spec := models.AlexNet()
	cfg := timingConfig(spec, 4, 128, 3)
	cfg.Design = ModelParallel
	cfg.Nodes, cfg.GPUsPerNode = 1, 16
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Design != "ModelParallel" || res.SamplesPerSec <= 0 {
		t.Errorf("MP result = %+v", res)
	}
	if res.LocalBatch != 128 {
		t.Errorf("MP local batch = %d; every stage sees the full batch", res.LocalBatch)
	}
}

func TestModelParallelRejectsRealMode(t *testing.T) {
	cfg := tinyRealConfig(4, 16, 2)
	cfg.Design = ModelParallel
	if _, err := Run(cfg); err == nil {
		t.Error("MP + RealNet should error")
	}
}

func TestDataParallelBeatsModelParallel(t *testing.T) {
	// Section 3.1: for these convolutional networks the pipeline's
	// sequential dependency makes model parallelism the slower way to
	// use 8 GPUs.
	spec := models.AlexNet()
	mk := func(d Design) Config {
		cfg := timingConfig(spec, 8, 256, 3)
		cfg.Design = d
		cfg.Nodes, cfg.GPUsPerNode = 1, 16
		if d == SCOBR {
			cfg.Reduce = coll.Tuned
		}
		return cfg
	}
	dp, err := Run(mk(SCOBR))
	if err != nil {
		t.Fatal(err)
	}
	mp, err := Run(mk(ModelParallel))
	if err != nil {
		t.Fatal(err)
	}
	if dp.SamplesPerSec <= mp.SamplesPerSec {
		t.Errorf("data parallel (%.0f SPS) should beat model parallel (%.0f SPS) for AlexNet",
			dp.SamplesPerSec, mp.SamplesPerSec)
	}
}

func TestMPPartitionBalancedAndComplete(t *testing.T) {
	spec := models.GoogLeNet()
	cfg := timingConfig(spec, 8, 8, 1)
	parts := mpPartition(&cfg, 8)
	if len(parts) != 8 {
		t.Fatalf("got %d stages, want 8", len(parts))
	}
	if parts[0][0] != 0 || parts[len(parts)-1][1] != len(spec.Layers)-1 {
		t.Fatal("partition does not cover the layer range")
	}
	var flops []float64
	for i, p := range parts {
		if p[0] > p[1] {
			t.Fatalf("stage %d empty: %v", i, p)
		}
		if i > 0 && p[0] != parts[i-1][1]+1 {
			t.Fatalf("stage %d not contiguous: %v after %v", i, p, parts[i-1])
		}
		var f float64
		for l := p[0]; l <= p[1]; l++ {
			f += spec.Layers[l].FwdFLOPs + spec.Layers[l].BwdFLOPs
		}
		flops = append(flops, f)
	}
	// Rough balance: no stage more than 4x the mean.
	var total float64
	for _, f := range flops {
		total += f
	}
	mean := total / float64(len(flops))
	for i, f := range flops {
		if f > 4*mean {
			t.Errorf("stage %d holds %.1fx the mean FLOPs", i, f/mean)
		}
	}
}

func TestMPMoreRanksThanLayers(t *testing.T) {
	spec, _ := models.ByName("tiny") // 7 layers
	cfg := timingConfig(spec, 12, 24, 2)
	cfg.Design = ModelParallel
	cfg.Nodes, cfg.GPUsPerNode = 1, 16
	if _, err := Run(cfg); err != nil {
		t.Fatalf("surplus ranks should idle gracefully: %v", err)
	}
}
