module escfix

go 1.22
