package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math"
	"os"
)

// Snapshotting: the root solver periodically serializes its packed
// parameter vector, like Caffe's solver snapshots, so long trainings
// can resume. The format is a small binary container with a CRC-free
// but length-checked layout (corruption surfaces as a decode error).
// Version 2 adds the packed momentum vector, so a resumed run
// continues bit-identically to one that never stopped; version 1
// files still load (with cold momentum).

var (
	snapshotMagicV1 = []byte("SCAFFESNAP1\n")
	snapshotMagic   = []byte("SCAFFESNAP2\n")
)

// Snapshot is a serialized solver state.
type Snapshot struct {
	// Model is the model name the snapshot belongs to.
	Model string
	// Iteration is the 0-based iteration after which it was taken.
	Iteration int
	// Params is the packed parameter vector.
	Params []float32
	// History is the packed momentum vector (same length and order as
	// Params). Empty means cold momentum — a v1 snapshot, or a solver
	// that never stepped.
	History []float32
}

// WriteSnapshot saves a snapshot to path. The write is crash-safe: it
// goes to a temporary file in the same directory and renames into
// place, so an interrupted write can never leave a truncated
// .scaffemodel behind — path either holds its previous content or the
// complete new snapshot.
func WriteSnapshot(path string, s *Snapshot) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("core: snapshot: %w", err)
	}
	w := bufio.NewWriter(f)
	w.Write(snapshotMagic)
	writeU32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		w.Write(b[:])
	}
	writeU32(uint32(len(s.Model)))
	w.WriteString(s.Model)
	writeU32(uint32(s.Iteration))
	writeU32(uint32(len(s.Params)))
	for _, v := range s.Params {
		writeU32(math.Float32bits(v))
	}
	writeU32(uint32(len(s.History)))
	for _, v := range s.History {
		writeU32(math.Float32bits(v))
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("core: snapshot flush: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: snapshot rename: %w", err)
	}
	return nil
}

// ReadSnapshot loads a snapshot from path.
func ReadSnapshot(path string) (*Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot: %w", err)
	}
	return decodeSnapshot(path, raw)
}

// decodeSnapshot parses snapshot bytes (either format version). Every
// length is validated before the corresponding allocation, so
// arbitrarily corrupt input yields an error, never a panic or an
// absurd allocation (the fuzz target drives this directly).
func decodeSnapshot(path string, raw []byte) (*Snapshot, error) {
	v2 := len(raw) >= len(snapshotMagic) && string(raw[:len(snapshotMagic)]) == string(snapshotMagic)
	v1 := len(raw) >= len(snapshotMagicV1) && string(raw[:len(snapshotMagicV1)]) == string(snapshotMagicV1)
	if !v1 && !v2 {
		return nil, fmt.Errorf("core: %s is not a snapshot file", path)
	}
	p := len(snapshotMagic)
	readU32 := func() (uint32, error) {
		if p+4 > len(raw) {
			return 0, fmt.Errorf("core: snapshot %s truncated", path)
		}
		v := binary.LittleEndian.Uint32(raw[p:])
		p += 4
		return v, nil
	}
	nameLen, err := readU32()
	if err != nil {
		return nil, err
	}
	if int(nameLen) > len(raw)-p {
		return nil, fmt.Errorf("core: snapshot %s truncated in name", path)
	}
	s := &Snapshot{Model: string(raw[p : p+int(nameLen)])}
	p += int(nameLen)
	iter, err := readU32()
	if err != nil {
		return nil, err
	}
	s.Iteration = int(iter)
	readVector := func(what string, wantRest bool) ([]float32, error) {
		count, err := readU32()
		if err != nil {
			return nil, err
		}
		rest := (len(raw) - p) / 4
		if int(count) > rest || (len(raw)-p)%4 != 0 {
			return nil, fmt.Errorf("core: snapshot %s truncated in %s", path, what)
		}
		if wantRest && int(count) != rest {
			return nil, fmt.Errorf("core: snapshot %s has %d trailing bytes", path, len(raw)-p-4*int(count))
		}
		vec := make([]float32, count)
		for i := range vec {
			vec[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[p:]))
			p += 4
		}
		return vec, nil
	}
	if v1 {
		if s.Params, err = readVector("params", true); err != nil {
			return nil, err
		}
		return s, nil
	}
	if s.Params, err = readVector("params", false); err != nil {
		return nil, err
	}
	if s.History, err = readVector("history", true); err != nil {
		return nil, err
	}
	if n := len(s.History); n != 0 && n != len(s.Params) {
		return nil, fmt.Errorf("core: snapshot %s history length %d != params %d", path, n, len(s.Params))
	}
	return s, nil
}

// snapshotPath formats the per-iteration snapshot filename, following
// Caffe's prefix_iter_N convention.
func snapshotPath(prefix string, iter int) string {
	return fmt.Sprintf("%s_iter_%d.scaffemodel", prefix, iter+1)
}
