package proto

import (
	"strings"
	"testing"
)

// FuzzParse drives the prototxt parser with arbitrary text. The
// invariants: never panic, and on success every key in Keys() is
// retrievable, non-empty, and consistent between Has/Strings/String.
func FuzzParse(f *testing.F) {
	f.Add("")
	f.Add("net: \"lenet\"\nmax_iter: 100\nbase_lr: 0.01\n")
	f.Add("# comment only\n\n")
	f.Add("train_param {\n  design: \"scobr\"\n  reduce {\n    alg: \"hr\"\n  }\n}\n")
	f.Add("key: \"unterminated\nbad: }")
	f.Add("a: 1\na: 2\na: 3\n")
	f.Add("block {\nkey: v")
	f.Add("momentum: 0.9 # trailing comment\nsnapshot_prefix: \"/tmp/x\"\n")
	f.Fuzz(func(t *testing.T, text string) {
		d, err := Parse(text)
		if err != nil {
			return
		}
		for _, key := range d.Keys() {
			if key == "" {
				t.Fatal("Keys() returned an empty key")
			}
			if !d.Has(key) {
				t.Fatalf("key %q listed but Has() false", key)
			}
			vals := d.Strings(key)
			if len(vals) == 0 {
				t.Fatalf("key %q listed but has no values", key)
			}
			if got := d.String(key, "\x00default"); got != vals[len(vals)-1] {
				t.Fatalf("String(%q) = %q, want last value %q", key, got, vals[len(vals)-1])
			}
		}
		// A parse of the text with extra blank lines and comments must
		// agree: layout noise cannot change the field set.
		noisy := "# injected\n\n" + strings.ReplaceAll(text, "\n", "\n\n")
		d2, err := Parse(noisy)
		if err != nil {
			t.Fatalf("reparse with layout noise failed: %v", err)
		}
		if len(d2.Keys()) != len(d.Keys()) {
			t.Fatalf("layout noise changed key count: %d vs %d", len(d2.Keys()), len(d.Keys()))
		}
	})
}
