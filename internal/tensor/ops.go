package tensor

import "math"

// ReLUForward writes max(0, in) into out (may alias in).
//
//scaffe:hotpath
func ReLUForward(in, out []float32) {
	for i, v := range in {
		if v > 0 {
			out[i] = v
		} else {
			out[i] = 0
		}
	}
}

// ReLUBackward writes gradOut gated by the forward input's sign into
// gradIn (may alias gradOut).
//
//scaffe:hotpath
func ReLUBackward(in, gradOut, gradIn []float32) {
	for i := range gradOut {
		if in[i] > 0 {
			gradIn[i] = gradOut[i]
		} else {
			gradIn[i] = 0
		}
	}
}

// SoftmaxRow computes an in-place numerically stable softmax over one
// row.
//
//scaffe:hotpath
func SoftmaxRow(row []float32) {
	maxv := row[0]
	for _, v := range row[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range row {
		e := math.Exp(float64(v - maxv))
		row[i] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for i := range row {
		row[i] *= inv
	}
}

// SoftmaxCrossEntropy computes softmax probabilities of logits
// (batch×classes, modified in place to hold the probabilities),
// returns the mean cross-entropy loss over the batch against integer
// labels, and writes the unnormalized gradient (prob − onehot) into
// grad (same shape; may alias logits only if the caller no longer
// needs the probabilities).
//
//scaffe:hotpath
func SoftmaxCrossEntropy(logits []float32, batch, classes int, labels []int, grad []float32) float32 {
	var loss float64
	for b := 0; b < batch; b++ {
		row := logits[b*classes : (b+1)*classes]
		SoftmaxRow(row)
		l := labels[b]
		p := float64(row[l])
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
		g := grad[b*classes : (b+1)*classes]
		copy(g, row)
		g[l] -= 1
	}
	return float32(loss / float64(batch))
}

// Accuracy returns the fraction of rows whose argmax equals the label.
func Accuracy(probs []float32, batch, classes int, labels []int) float64 {
	correct := 0
	for b := 0; b < batch; b++ {
		row := probs[b*classes : (b+1)*classes]
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		if best == labels[b] {
			correct++
		}
	}
	return float64(correct) / float64(batch)
}
