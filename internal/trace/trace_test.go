package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"scaffe/internal/sim"
)

func sample() *Recorder {
	t := New()
	t.Add(0, "forward", 0, 10*sim.Millisecond)
	t.Add(0, "aggregation", 10*sim.Millisecond, 25*sim.Millisecond)
	t.Add(1, "forward", 2*sim.Millisecond, 12*sim.Millisecond)
	t.Add(1, "backward", 12*sim.Millisecond, 30*sim.Millisecond)
	return t
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Add(0, "forward", 0, 10) // must not panic
	if r.Len() != 0 || r.Events() != nil {
		t.Error("nil recorder should be empty")
	}
}

func TestBeginEndSpan(t *testing.T) {
	r := New()
	s := r.Begin(2, "forward", "fwd:conv1", 5)
	s.End(9)
	if r.Len() != 1 {
		t.Fatalf("events = %d, want 1", r.Len())
	}
	e := r.Events()[0]
	want := Event{Rank: 2, Phase: "forward", Label: "fwd:conv1", Start: 5, End: 9}
	if e != want {
		t.Errorf("event = %+v, want %+v", e, want)
	}

	r.Begin(0, "x", "", 10).End(10) // zero-length: dropped like Add
	if r.Len() != 1 {
		t.Errorf("zero-length span recorded: %d events", r.Len())
	}

	var nilRec *Recorder
	nilRec.Begin(0, "x", "", 0).End(1) // nil recorder: End is a no-op
	if nilRec.Len() != 0 {
		t.Error("nil recorder recorded a span")
	}
}

func TestAddDropsEmptySpans(t *testing.T) {
	r := New()
	r.Add(0, "x", 10, 10)
	r.Add(0, "x", 10, 5)
	if r.Len() != 0 {
		t.Errorf("empty spans recorded: %d", r.Len())
	}
}

func TestEventDuration(t *testing.T) {
	e := Event{Start: 5, End: 12}
	if e.Duration() != 7 {
		t.Errorf("duration = %v", e.Duration())
	}
}

func TestChromeTraceJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	first := evs[0]
	if first["name"] != "forward" || first["ph"] != "X" {
		t.Errorf("first event = %v", first)
	}
	if first["dur"].(float64) != 10000 { // 10ms in µs
		t.Errorf("dur = %v, want 10000", first["dur"])
	}
}

func TestGantt(t *testing.T) {
	g := sample().Gantt(40)
	if !strings.Contains(g, "rank0 ") || !strings.Contains(g, "rank1 ") {
		t.Errorf("gantt missing rank rows:\n%s", g)
	}
	if !strings.Contains(g, "F") || !strings.Contains(g, "A") || !strings.Contains(g, "B") {
		t.Errorf("gantt missing phase glyphs:\n%s", g)
	}
	if New().Gantt(40) != "(no trace)\n" {
		t.Error("empty recorder should render placeholder")
	}
}

func TestGanttUnknownPhaseGlyph(t *testing.T) {
	r := New()
	r.Add(0, "exotic-phase", 0, 10)
	if !strings.Contains(r.Gantt(20), "#") {
		t.Error("unknown phases should render as #")
	}
}

func TestPhaseTotals(t *testing.T) {
	totals := sample().PhaseTotals()
	if got := totals["forward"][0]; got != 10*sim.Millisecond {
		t.Errorf("rank0 forward total = %v", got)
	}
	if got := totals["backward"][1]; got != 18*sim.Millisecond {
		t.Errorf("rank1 backward total = %v", got)
	}
}

func TestAddNodeLabel(t *testing.T) {
	r := New()
	r.AddNode(0, "forward", "fwd:conv1", 0, 5)
	r.AddNode(0, "forward", "fwd:conv1", 5, 5) // zero-length dropped
	if r.Len() != 1 {
		t.Fatalf("got %d events, want 1", r.Len())
	}
	if e := r.Events()[0]; e.Label != "fwd:conv1" || e.Phase != "forward" {
		t.Errorf("event = %+v", e)
	}
	var nilRec *Recorder
	nilRec.AddNode(0, "x", "y", 0, 1) // must not panic
}

func TestSummaryOverlap(t *testing.T) {
	r := New()
	// Rank 0: backward 0..100, a wire span 40..80 fully hidden under
	// it, and a blocking aggregation 100..130 with no overlap.
	r.Add(0, "backward", 0, 100)
	r.AddNode(0, "bcast-wire", "bcast:conv1", 40, 80)
	r.Add(0, "aggregation", 100, 130)
	rows := r.Summary()
	if len(rows) != 1 || rows[0].Rank != 0 {
		t.Fatalf("rows = %+v", rows)
	}
	row := rows[0]
	if row.Compute != 100 {
		t.Errorf("compute = %v, want 100", row.Compute)
	}
	if row.Comm != 70 { // 40 wire + 30 aggregation
		t.Errorf("comm = %v, want 70", row.Comm)
	}
	if row.Overlap != 40 {
		t.Errorf("overlap = %v, want 40", row.Overlap)
	}
	if row.OverlapPct < 57.1 || row.OverlapPct > 57.2 {
		t.Errorf("overlap%% = %v, want ~57.14", row.OverlapPct)
	}
	if row.Phases["backward"] != 100 || row.Phases["aggregation"] != 30 {
		t.Errorf("phases = %v", row.Phases)
	}
}

func TestSummaryMultiRankOrderAndZeroComm(t *testing.T) {
	r := New()
	r.Add(3, "forward", 0, 10)
	r.Add(1, "forward", 0, 10)
	r.Add(1, "propagation", 10, 20)
	rows := r.Summary()
	if len(rows) != 2 || rows[0].Rank != 1 || rows[1].Rank != 3 {
		t.Fatalf("rows misordered: %+v", rows)
	}
	if rows[1].Comm != 0 || rows[1].OverlapPct != 0 {
		t.Errorf("rank3 should have zero comm: %+v", rows[1])
	}
	if rows[0].Overlap != 0 {
		t.Errorf("rank1 overlap = %v, want 0", rows[0].Overlap)
	}
	if New().Summary() != nil {
		t.Error("empty recorder should return nil summary")
	}
}

func TestMergeAndIntersect(t *testing.T) {
	merged := mergeSpans([]span{{5, 10}, {0, 6}, {12, 15}})
	if len(merged) != 2 || merged[0] != (span{0, 10}) || merged[1] != (span{12, 15}) {
		t.Fatalf("merged = %+v", merged)
	}
	if got := spanLen(merged); got != 13 {
		t.Errorf("spanLen = %v, want 13", got)
	}
	other := []span{{8, 13}}
	if got := intersectLen(merged, other); got != 3 { // 8..10 + 12..13
		t.Errorf("intersect = %v, want 3", got)
	}
}
