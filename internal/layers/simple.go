package layers

import (
	"math/rand"

	"scaffe/internal/tensor"
)

// ReLU is the rectified-linear activation, computed out-of-place so
// the input activations stay available for other layers' backward
// passes.
type ReLU struct {
	base
	noParams
	lastIn *tensor.Tensor
}

// NewReLU creates a ReLU layer.
func NewReLU(name string) *ReLU { return &ReLU{base: base{name: name}} }

// Kind implements Layer.
func (l *ReLU) Kind() string { return "ReLU" }

// OutShape implements Layer.
func (l *ReLU) OutShape(in Shape) Shape { return in }

// FwdFLOPs implements Layer.
func (l *ReLU) FwdFLOPs(in Shape) float64 { return float64(in.Elems()) }

// BwdFLOPs implements Layer.
func (l *ReLU) BwdFLOPs(in Shape) float64 { return float64(in.Elems()) }

// Setup implements Layer.
func (l *ReLU) Setup(in Shape, batch int, _ *rand.Rand) {
	l.setup(in, batch)
	l.allocBlobs(in)
}

// Forward implements Layer.
//
//scaffe:hotpath
func (l *ReLU) Forward(in *tensor.Tensor) *tensor.Tensor {
	l.checkIn(in)
	l.lastIn = in
	tensor.ReLUForward(in.Data, l.out.Data)
	return l.out
}

// Backward implements Layer.
//
//scaffe:hotpath
func (l *ReLU) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	tensor.ReLUBackward(l.lastIn.Data, gradOut.Data, l.gradIn.Data)
	return l.gradIn
}

// Dropout zeroes a random fraction of activations during training and
// scales the survivors by 1/(1-ratio) (inverted dropout, as Caffe
// does).
type Dropout struct {
	base
	noParams
	Ratio float64

	rng  *rand.Rand
	mask []bool
}

// NewDropout creates a dropout layer with the given drop ratio.
func NewDropout(name string, ratio float64) *Dropout {
	return &Dropout{base: base{name: name}, Ratio: ratio}
}

// Kind implements Layer.
func (l *Dropout) Kind() string { return "Dropout" }

// OutShape implements Layer.
func (l *Dropout) OutShape(in Shape) Shape { return in }

// FwdFLOPs implements Layer.
func (l *Dropout) FwdFLOPs(in Shape) float64 { return float64(in.Elems()) }

// BwdFLOPs implements Layer.
func (l *Dropout) BwdFLOPs(in Shape) float64 { return float64(in.Elems()) }

// Setup implements Layer.
func (l *Dropout) Setup(in Shape, batch int, rng *rand.Rand) {
	l.setup(in, batch)
	l.rng = rng
	l.mask = make([]bool, batch*in.Elems())
	l.allocBlobs(in)
}

// Forward implements Layer.
//
//scaffe:hotpath
func (l *Dropout) Forward(in *tensor.Tensor) *tensor.Tensor {
	l.checkIn(in)
	out := l.out
	scale := float32(1 / (1 - l.Ratio))
	for i, v := range in.Data {
		if l.rng.Float64() < l.Ratio {
			l.mask[i] = true
			out.Data[i] = 0
		} else {
			l.mask[i] = false
			out.Data[i] = v * scale
		}
	}
	return out
}

// Backward implements Layer.
//
//scaffe:hotpath
func (l *Dropout) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	gradIn := l.gradIn
	scale := float32(1 / (1 - l.Ratio))
	for i, v := range gradOut.Data {
		if l.mask[i] {
			gradIn.Data[i] = 0 // blob is reused: clear dropped lanes explicitly
		} else {
			gradIn.Data[i] = v * scale
		}
	}
	return gradIn
}
