package coll

import (
	"scaffe/internal/gpu"
	"scaffe/internal/mpi"
	"scaffe/internal/topology"
)

// mv2Reducer models the pre-co-design MVAPICH2(-GDR) reduce: a flat
// binomial tree whose transfers are CUDA-aware (pipelined host
// staging), but whose reduction arithmetic runs on the host CPU out of
// the pinned staging buffers. The device copy of the accumulating
// operand therefore only returns to GPU memory once, at the root,
// after the last round. This is the "MV2" series of Figures 11–12.
type mv2Reducer struct {
	c      *mpi.Comm
	states stateTable
}

func (m *mv2Reducer) Name() string { return "MV2" }

func (m *mv2Reducer) Reduce(r *mpi.Rank, buf *gpu.Buffer, tag int) {
	// Collective entry: the reducer's shared per-rank state table and
	// the cross-rank traffic below are outside any one group, so a
	// batched segment serializes here (no-op in sequential mode).
	r.Proc.Exclusive()
	me := m.c.Rank(r)
	size := m.c.Size()
	if size == 1 {
		return
	}
	st := m.states.acquire(size, me)
	defer st.release()
	cl := r.W.Cluster
	var scratch *gpu.Buffer
	received := false
	for mask := 1; mask < size; mask <<= 1 {
		if me&mask != 0 {
			if scratch != nil {
				st.putScratch(scratch)
			}
			r.Send(m.c, me-mask, tag, buf, topology.ModePipelined)
			return
		}
		peer := me + mask
		if peer >= size {
			continue
		}
		if scratch == nil {
			scratch = st.getScratch(buf)
		}
		r.Recv(m.c, peer, tag, scratch)
		if !received {
			// First round stages the local operand down to the host
			// (overlapped with nothing — MV2's reduce is blocking).
			_, end := cl.Transfer(r.Now(), r.Dev.ID, topology.HostOf(r.Dev.ID.Node), buf.Bytes, topology.ModeAuto)
			r.Proc.WaitUntil(end)
			received = true
		}
		buf.Accumulate(scratch)
		r.Sleep(cl.ReduceTime(buf.Bytes, false)) // CPU reduction
	}
	if scratch != nil {
		st.putScratch(scratch)
	}
	if received && me == 0 {
		// Root uploads the final result back to its device.
		_, end := cl.Transfer(r.Now(), topology.HostOf(r.Dev.ID.Node), r.Dev.ID, buf.Bytes, topology.ModeAuto)
		r.Proc.WaitUntil(end)
	}
}

// ompiReducer models OpenMPI 1.10-era reduce on GPU buffers: for the
// very large messages DL frameworks generate it degenerates to the
// basic linear algorithm — every non-root rank sends its full buffer
// to the root, which receives and reduces them one after another —
// with non-pipelined host staging on both ends and CPU reduction.
// Serializing 159 staged 256 MB messages through the root is what
// produces the up-to-133x gap of Figure 12.
type ompiReducer struct {
	c      *mpi.Comm
	states stateTable
}

func (o *ompiReducer) Name() string { return "OpenMPI" }

func (o *ompiReducer) Reduce(r *mpi.Rank, buf *gpu.Buffer, tag int) {
	// Collective entry: the reducer's shared per-rank state table and
	// the cross-rank traffic below are outside any one group, so a
	// batched segment serializes here (no-op in sequential mode).
	r.Proc.Exclusive()
	me := o.c.Rank(r)
	size := o.c.Size()
	if size == 1 {
		return
	}
	if me != 0 {
		r.Send(o.c, 0, tag, buf, topology.ModeStaged)
		return
	}
	st := o.states.acquire(size, me)
	defer st.release()
	cl := r.W.Cluster
	scratch := st.getScratch(buf)
	for peer := 1; peer < size; peer++ {
		r.Recv(o.c, peer, tag, scratch)
		buf.Accumulate(scratch)
		r.Sleep(cl.ReduceTime(buf.Bytes, false)) // CPU reduction
	}
	st.putScratch(scratch)
	// Result returns to the device.
	_, end := cl.Transfer(r.Now(), topology.HostOf(r.Dev.ID.Node), r.Dev.ID, buf.Bytes, topology.ModeAuto)
	r.Proc.WaitUntil(end)
}
