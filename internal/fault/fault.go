// Package fault implements a deterministic fault-injection plane for
// the simulator. A Schedule scripts events at virtual times — rank
// crashes and hangs, transient link degradation, straggler onset and
// recovery, data-reader stalls, snapshot-write failures — and a Plane
// armed on the kernel applies them at exactly those instants. Because
// the kernel orders events by (virtual time, sequence), a faulted run
// is bit-for-bit reproducible: the same schedule against the same
// configuration produces identical detection latencies, recovery
// points, and losses on every run.
package fault

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"scaffe/internal/sim"
)

// Kind classifies an injected event.
type Kind int

const (
	// Crash fail-stops a rank: its procs terminate and never speak
	// MPI again.
	Crash Kind = iota
	// Hang wedges a rank. In the simulation it is mechanically a
	// fail-stop too (the rank stops participating), but it is counted
	// separately: a hung peer is what deadline-based detection exists
	// for.
	Hang
	// StragglerOn slows a rank's GPU kernels by Factor until a
	// matching StragglerOff.
	StragglerOn
	// StragglerOff restores a straggling rank to full speed.
	StragglerOff
	// LinkDegrade multiplies the inter-node wire time of transfers
	// leaving Node by Factor for a window of For.
	LinkDegrade
	// ReaderStall freezes a rank's data reader for For.
	ReaderStall
	// SnapshotFail makes snapshot writes fail for a window of For
	// (or just the next write when For is zero).
	SnapshotFail
	// BitFlip flips bit Bit of 32-bit word Word of a rank's resident
	// network parameters at virtual time At — a silent in-memory
	// corruption only the numeric-health watchdog can see.
	BitFlip
	// CorruptWire arms corruption of the N-th checksummed transfer on
	// the directed link Src->Dst at or after At; the integrity plane's
	// checksum verification detects and (in recover mode) retransmits
	// it.
	CorruptWire
	// Join readmits a previously excluded rank: the rank announces
	// itself to the membership desk and the root admits it at the next
	// iteration boundary through the elastic grow path. A Join
	// targeting a rank that is still alive is a no-op.
	Join
	// Evict proactively removes a rank from the world through the
	// shrink path — a controlled, instantly detected departure rather
	// than a failure. The straggler policy issues the same eviction
	// autonomously.
	Evict
	// Drop silently discards the next N payload landings on the
	// directed link Src->Dst at or after At. The payload is gone for
	// good — the waiting side rides its deadline ladder and the plane
	// escalates through the revoke path (loss-aware timeout), never a
	// hang.
	Drop
	// Dup lands the next N payloads on Src->Dst twice: the duplicate
	// re-lands at the same instant and must be absorbed by the
	// generation-guarded completion machinery (idempotent delivery).
	Dup
	// Reorder swaps each of the next N landings on Src->Dst with the
	// landing that follows it on the same link; a swap with no
	// follow-up flushes after a failsafe window, so the link can never
	// wedge.
	Reorder
	// Delay holds the next N landings on Src->Dst for a window of For
	// before landing them late.
	Delay
	// Partition cuts the fabric along Groups for a window of For:
	// traffic between listed ranks in different groups is silently
	// discarded in both directions until the window heals. A revocation
	// during the window applies the quorum rule — only the side holding
	// the root and at least half the previous world continues; the
	// minority is fenced and rejoins through the join desk after heal.
	Partition
	// Partitioned is not schedulable: it is the recovery-record kind
	// stamped on ranks fenced by the quorum rule during an active
	// partition window.
	Partitioned
)

func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Hang:
		return "hang"
	case StragglerOn:
		return "straggle"
	case StragglerOff:
		return "recover"
	case LinkDegrade:
		return "degrade"
	case ReaderStall:
		return "stall"
	case SnapshotFail:
		return "snapfail"
	case BitFlip:
		return "bitflip"
	case CorruptWire:
		return "corrupt-wire"
	case Join:
		return "join"
	case Evict:
		return "evict"
	case Drop:
		return "drop"
	case Dup:
		return "dup"
	case Reorder:
		return "reorder"
	case Delay:
		return "delay"
	case Partition:
		return "partition"
	case Partitioned:
		return "partitioned"
	}
	return "unknown"
}

// Event is one scripted fault.
type Event struct {
	// At is the virtual time the event fires.
	At sim.Time
	// Kind selects what happens.
	Kind Kind
	// Rank is the target rank (Crash, Hang, StragglerOn/Off,
	// ReaderStall).
	Rank int
	// Node is the target host (LinkDegrade).
	Node int
	// Factor is the slowdown multiplier (StragglerOn, LinkDegrade).
	Factor float64
	// For is the window length (LinkDegrade, ReaderStall,
	// SnapshotFail).
	For sim.Duration
	// Src and Dst are the directed link endpoints (CorruptWire, Drop,
	// Dup, Reorder, Delay).
	Src, Dst int
	// N selects the N-th checksummed transfer on the link at or after
	// At (CorruptWire; 1 = the next one), or the number of landings a
	// wire perturbation consumes (Drop, Dup, Reorder, Delay).
	N int
	// Groups partitions the listed ranks into sides (Partition): all
	// traffic between ranks of different groups is cut for the window.
	// Ranks not listed in any group are unaffected.
	Groups [][]int
	// Word and Bit address the flipped bit inside the rank's packed
	// parameter vector (BitFlip); Word is taken modulo the parameter
	// count.
	Word, Bit int
}

// Schedule is an ordered fault script. Events firing at the same
// instant apply in schedule order.
type Schedule []Event

// Validate checks the schedule against a world of `ranks` ranks on
// `nodes` hosts.
func (s Schedule) Validate(ranks, nodes int) error {
	for i, ev := range s {
		if ev.At < 0 {
			return fmt.Errorf("fault: event %d: negative time %v", i, ev.At)
		}
		switch ev.Kind {
		case Crash, Hang, StragglerOn, StragglerOff, ReaderStall, BitFlip, Join, Evict:
			if ev.Rank < 0 || ev.Rank >= ranks {
				return fmt.Errorf("fault: event %d: rank %d out of range [0,%d)", i, ev.Rank, ranks)
			}
		case LinkDegrade:
			if ev.Node < 0 || ev.Node >= nodes {
				return fmt.Errorf("fault: event %d: node %d out of range [0,%d)", i, ev.Node, nodes)
			}
		case CorruptWire:
			if ev.Src < 0 || ev.Src >= ranks {
				return fmt.Errorf("fault: event %d: src %d out of range [0,%d)", i, ev.Src, ranks)
			}
			if ev.Dst < 0 || ev.Dst >= ranks {
				return fmt.Errorf("fault: event %d: dst %d out of range [0,%d)", i, ev.Dst, ranks)
			}
			if ev.Src == ev.Dst {
				return fmt.Errorf("fault: event %d: corrupt-wire needs src != dst, got %d", i, ev.Src)
			}
			if ev.N < 1 {
				return fmt.Errorf("fault: event %d: corrupt-wire needs n >= 1, got %d", i, ev.N)
			}
		case Drop, Dup, Reorder, Delay:
			if ev.Src < 0 || ev.Src >= ranks {
				return fmt.Errorf("fault: event %d: src %d out of range [0,%d)", i, ev.Src, ranks)
			}
			if ev.Dst < 0 || ev.Dst >= ranks {
				return fmt.Errorf("fault: event %d: dst %d out of range [0,%d)", i, ev.Dst, ranks)
			}
			if ev.Src == ev.Dst {
				return fmt.Errorf("fault: event %d: %s needs src != dst, got %d", i, ev.Kind, ev.Src)
			}
			if ev.N < 1 {
				return fmt.Errorf("fault: event %d: %s needs n >= 1, got %d", i, ev.Kind, ev.N)
			}
			if ev.Kind == Delay && ev.For <= 0 {
				return fmt.Errorf("fault: event %d: delay needs a positive window (for=...)", i)
			}
		case Partition:
			if err := validatePartition(i, ev, ranks); err != nil {
				return err
			}
		case SnapshotFail:
		default:
			return fmt.Errorf("fault: event %d: unknown kind %d", i, int(ev.Kind))
		}
		if ev.Kind == BitFlip {
			if ev.Word < 0 {
				return fmt.Errorf("fault: event %d: bitflip needs word >= 0, got %d", i, ev.Word)
			}
			if ev.Bit < 0 || ev.Bit >= 32 {
				return fmt.Errorf("fault: event %d: bitflip needs bit in [0,32), got %d", i, ev.Bit)
			}
		}
		switch ev.Kind {
		case StragglerOn, LinkDegrade:
			if ev.Factor < 1 {
				return fmt.Errorf("fault: event %d: %s needs factor >= 1, got %g", i, ev.Kind, ev.Factor)
			}
		}
		switch ev.Kind {
		case LinkDegrade, ReaderStall:
			if ev.For <= 0 {
				return fmt.Errorf("fault: event %d: %s needs a positive window (for=...)", i, ev.Kind)
			}
		}
	}
	return s.validatePartitionOverlap()
}

// validatePartition checks one Partition event's group structure.
func validatePartition(i int, ev Event, ranks int) error {
	if len(ev.Groups) < 2 {
		return fmt.Errorf("fault: event %d: partition needs at least 2 groups (groups=0,1|2,3)", i)
	}
	if ev.For <= 0 {
		return fmt.Errorf("fault: event %d: partition needs a positive window (for=...)", i)
	}
	seen := make(map[int]bool)
	for gi, g := range ev.Groups {
		if len(g) == 0 {
			return fmt.Errorf("fault: event %d: partition group %d is empty", i, gi)
		}
		for _, r := range g {
			if r < 0 || r >= ranks {
				return fmt.Errorf("fault: event %d: partition rank %d out of range [0,%d)", i, r, ranks)
			}
			if seen[r] {
				return fmt.Errorf("fault: event %d: rank %d listed in two partition groups", i, r)
			}
			seen[r] = true
		}
	}
	return nil
}

// validatePartitionOverlap rejects two Partition events whose windows
// overlap in time and cut at least one common link: the fate of a
// landing on that link during the overlap would depend on schedule
// order, which the file layout makes too easy to get wrong silently.
func (s Schedule) validatePartitionOverlap() error {
	var parts []int
	for i, ev := range s {
		if ev.Kind == Partition {
			parts = append(parts, i)
		}
	}
	for a := 0; a < len(parts); a++ {
		for b := a + 1; b < len(parts); b++ {
			pa, pb := s[parts[a]], s[parts[b]]
			if pa.At >= pb.At+sim.Time(pb.For) || pb.At >= pa.At+sim.Time(pa.For) {
				continue // disjoint windows
			}
			if link, shared := sharedCutLink(pa.Groups, pb.Groups); shared {
				return fmt.Errorf("fault: events %d and %d: overlapping partition windows both cut link %d<->%d; stagger the windows or merge the groups",
					parts[a], parts[b], link[0], link[1])
			}
		}
	}
	return nil
}

// sharedCutLink reports a rank pair cut by both partitions, if any.
func sharedCutLink(ga, gb [][]int) ([2]int, bool) {
	sideOf := func(groups [][]int) map[int]int {
		m := make(map[int]int)
		for gi, g := range groups {
			for _, r := range g {
				m[r] = gi
			}
		}
		return m
	}
	sa, sb := sideOf(ga), sideOf(gb)
	for ra, ga := range sa {
		for rb, ga2 := range sa {
			if ra >= rb || ga == ga2 {
				continue // not a cut pair of the first partition
			}
			gba, okA := sb[ra]
			gbb, okB := sb[rb]
			if okA && okB && gba != gbb {
				return [2]int{ra, rb}, true
			}
		}
	}
	return [2]int{}, false
}

// ParseSchedule parses the textual schedule format, one event per
// line:
//
//	# comments and blank lines are ignored
//	100ms crash rank=3
//	120ms hang rank=2
//	50ms  straggle rank=1 factor=8
//	80ms  recover rank=1
//	60ms  degrade node=0 factor=4 for=30ms
//	10ms  stall rank=2 for=20ms
//	200ms snapfail for=50ms
//	90ms  bitflip rank=1 word=1024 bit=30
//	70ms  corrupt-wire src=3 dst=0 n=2
//	150ms evict rank=2
//	250ms join rank=3
//	30ms  drop src=1 dst=0 n=2
//	40ms  dup src=2 dst=0 n=1
//	55ms  reorder src=3 dst=0 n=1
//	65ms  delay src=0 dst=2 n=1 for=5ms
//	110ms partition groups=0,1|2,3 for=40ms
//
// Times and windows accept s/ms/us/ns suffixes (a bare number is
// nanoseconds). Two rank-targeted events landing on the same rank at
// the same instant are rejected as ambiguous (their application order
// would be schedule-order, which the file layout makes too easy to
// get wrong silently).
func ParseSchedule(text string) (Schedule, error) {
	var s Schedule
	var lines []int // source line of each parsed event, for diagnostics
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("fault: line %d: want `<time> <kind> key=value...`, got %q", ln+1, line)
		}
		at, err := parseDuration(fields[0])
		if err != nil {
			return nil, fmt.Errorf("fault: line %d: bad time %q: %v", ln+1, fields[0], err)
		}
		ev := Event{At: at, Rank: -1, Node: -1, Factor: 1, Src: -1, Dst: -1, N: 1}
		switch fields[1] {
		case "crash":
			ev.Kind = Crash
		case "hang":
			ev.Kind = Hang
		case "straggle":
			ev.Kind = StragglerOn
		case "recover":
			ev.Kind = StragglerOff
		case "degrade":
			ev.Kind = LinkDegrade
		case "stall":
			ev.Kind = ReaderStall
		case "snapfail":
			ev.Kind = SnapshotFail
		case "bitflip":
			ev.Kind = BitFlip
		case "corrupt-wire":
			ev.Kind = CorruptWire
		case "join":
			ev.Kind = Join
		case "evict":
			ev.Kind = Evict
		case "drop":
			ev.Kind = Drop
		case "dup":
			ev.Kind = Dup
		case "reorder":
			ev.Kind = Reorder
		case "delay":
			ev.Kind = Delay
		case "partition":
			ev.Kind = Partition
		default:
			return nil, fmt.Errorf("fault: line %d: unknown event kind %q", ln+1, fields[1])
		}
		for _, kv := range fields[2:] {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("fault: line %d: want key=value, got %q", ln+1, kv)
			}
			switch key {
			case "rank":
				ev.Rank, err = strconv.Atoi(val)
			case "node":
				ev.Node, err = strconv.Atoi(val)
			case "factor":
				ev.Factor, err = strconv.ParseFloat(val, 64)
			case "for":
				ev.For, err = parseDuration(val)
			case "src":
				ev.Src, err = strconv.Atoi(val)
			case "dst":
				ev.Dst, err = strconv.Atoi(val)
			case "n":
				ev.N, err = strconv.Atoi(val)
			case "word":
				ev.Word, err = strconv.Atoi(val)
			case "bit":
				ev.Bit, err = strconv.Atoi(val)
			case "groups":
				ev.Groups, err = parseGroups(val)
			default:
				return nil, fmt.Errorf("fault: line %d: unknown key %q", ln+1, key)
			}
			if err != nil {
				return nil, fmt.Errorf("fault: line %d: bad %s value %q: %v", ln+1, key, val, err)
			}
		}
		if needsRank(ev.Kind) && ev.Rank < 0 {
			return nil, fmt.Errorf("fault: line %d: %s needs rank=N", ln+1, ev.Kind)
		}
		if ev.Kind == LinkDegrade && ev.Node < 0 {
			return nil, fmt.Errorf("fault: line %d: degrade needs node=N", ln+1)
		}
		switch ev.Kind {
		case CorruptWire, Drop, Dup, Reorder, Delay:
			if ev.Src < 0 || ev.Dst < 0 {
				return nil, fmt.Errorf("fault: line %d: %s needs src=A dst=B", ln+1, ev.Kind)
			}
		case Partition:
			if len(ev.Groups) == 0 {
				return nil, fmt.Errorf("fault: line %d: partition needs groups=0,1|2,3", ln+1)
			}
		}
		s = append(s, ev)
		lines = append(lines, ln+1)
	}
	seen := make(map[[2]int64]int) // (time, rank) -> source line
	for i, ev := range s {
		if !needsRank(ev.Kind) {
			continue
		}
		key := [2]int64{int64(ev.At), int64(ev.Rank)}
		if first, dup := seen[key]; dup {
			return nil, fmt.Errorf("fault: line %d: duplicate event for rank %d at %v (conflicts with line %d); give concurrent events distinct times", lines[i], ev.Rank, ev.At, first)
		}
		seen[key] = lines[i]
	}
	return s, nil
}

// parseGroups parses the partition side syntax "0,1|2,3": ranks
// comma-separated within a side, sides pipe-separated.
func parseGroups(val string) ([][]int, error) {
	var groups [][]int
	for _, side := range strings.Split(val, "|") {
		var g []int
		for _, tok := range strings.Split(side, ",") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			r, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("bad rank %q", tok)
			}
			g = append(g, r)
		}
		groups = append(groups, g)
	}
	return groups, nil
}

func needsRank(k Kind) bool {
	switch k {
	case Crash, Hang, StragglerOn, StragglerOff, ReaderStall, BitFlip, Join, Evict:
		return true
	}
	return false
}

// LoadSchedule reads and parses a schedule file.
func LoadSchedule(path string) (Schedule, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	return ParseSchedule(string(raw))
}

// parseDuration parses "1.5s", "100ms", "20us", "500ns", or a bare
// nanosecond count.
func parseDuration(s string) (sim.Duration, error) {
	mult := sim.Nanosecond
	num := s
	switch {
	case strings.HasSuffix(s, "ms"):
		mult, num = sim.Millisecond, strings.TrimSuffix(s, "ms")
	case strings.HasSuffix(s, "us"):
		mult, num = sim.Microsecond, strings.TrimSuffix(s, "us")
	case strings.HasSuffix(s, "ns"):
		mult, num = sim.Nanosecond, strings.TrimSuffix(s, "ns")
	case strings.HasSuffix(s, "s"):
		mult, num = sim.Second, strings.TrimSuffix(s, "s")
	}
	f, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, err
	}
	if f < 0 {
		return 0, fmt.Errorf("negative duration")
	}
	return sim.Duration(f * float64(mult)), nil
}
