// Paper-run: reproduces the paper's headline configuration from a
// Caffe-style solver prototxt (GoogLeNet on 160 simulated K-80 GPUs,
// SC-OBR + HR over the parallel filesystem), records a phase timeline,
// and prints the run report with an ASCII Gantt excerpt. Exporting the
// same timeline as Chrome-trace JSON gives the interactive version in
// chrome://tracing or ui.perfetto.dev.
package main

import (
	"fmt"
	"log"
	"os"

	"scaffe"
)

func main() {
	cfg, err := scaffe.LoadSolver("configs/googlenet_160gpu.prototxt")
	if err != nil {
		log.Fatal(err)
	}
	cfg.Iterations = 5 // the prototxt says 100; keep the example quick
	rec := scaffe.NewTrace()
	cfg.Trace = rec

	res, err := scaffe.Train(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("GoogLeNet on %d GPUs (%s + %s, %s data):\n",
		res.GPUs, res.Design, res.ReduceAlg, res.Source)
	fmt.Printf("  %v per iteration, %.0f samples/sec\n", res.TimePerIter(), res.SamplesPerSec)
	fmt.Printf("  link utilization: HCA %.0f%%, PCIe %.0f%%\n",
		res.HCAUtilization*100, res.PCIeUtilization*100)

	f, err := os.CreateTemp("", "scaffe-trace-*.json")
	if err != nil {
		log.Fatal(err)
	}
	if err := rec.WriteChromeTrace(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  Chrome trace (%d spans) written to %s\n", rec.Len(), f.Name())

	// Per-phase totals across the fleet: how much of 160 GPUs' time
	// each phase consumed.
	totals := rec.PhaseTotals()
	for _, phase := range []string{"propagation", "forward", "backward", "aggregation"} {
		var sum float64
		for _, d := range totals[phase] {
			sum += d.Seconds()
		}
		fmt.Printf("  fleet %-12s %8.2f GPU-seconds\n", phase, sum)
	}
}
