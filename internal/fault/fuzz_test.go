package fault

import "testing"

// FuzzParseSchedule hammers the schedule grammar: arbitrary text must
// either parse into a schedule whose every event survives String and
// Validate without panicking, or be rejected with an error — never
// crash, never loop.
func FuzzParseSchedule(f *testing.F) {
	seeds := []string{
		"",
		"# comment only\n",
		"5ms crash rank=3",
		"10ms straggle rank=1 factor=4\n12ms recover rank=1",
		"20ms degrade node=0 factor=2.5 for=3ms",
		"30ms stall rank=2 for=1ms",
		"40ms snapfail for=2ms",
		"50ms hang rank=0",
		"60ms bitflip rank=1 word=128 bit=30",
		"70ms corrupt-wire src=3 dst=0 n=2",
		"150ms evict rank=2",
		"250ms join rank=3",
		"5ms evict rank=2\n10ms recover rank=2\n20ms join rank=2",
		"5ms join rank=2\n5ms evict rank=2",
		"1ms join",
		"1ms evict rank=-1",
		"abc join rank=0",
		"1ms join rank=0 factor=",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		sched, err := ParseSchedule(text)
		if err != nil {
			return
		}
		_ = sched.Validate(8, 2)
		for _, ev := range sched {
			_ = ev.Kind.String()
			if ev.At < 0 {
				t.Fatalf("parsed negative time: %+v", ev)
			}
		}
	})
}
