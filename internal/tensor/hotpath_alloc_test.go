package tensor

import "testing"

// These tests back the //scaffe:hotpath annotations with a runtime
// gate: every annotated kernel must be allocation-free in steady state
// (after warm-up spins up the persistent GEMM worker pool). The static
// hotpath lint catches allocating constructs at compile time; this
// catches anything the AST rules cannot see (e.g. escape-analysis
// regressions).

func requireZeroAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	fn() // warm up pools/one-time initialization
	if allocs := testing.AllocsPerRun(10, fn); allocs != 0 {
		t.Errorf("%s allocates %.1f times per call in steady state, want 0", name, allocs)
	}
}

func TestHotpathKernelsZeroAllocs(t *testing.T) {
	const m, n, k = 96, 96, 64 // above gemmParallelThreshold: exercises the worker pool
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	c := make([]float32, m*n)
	x := make([]float32, k)
	y := make([]float32, m)
	for i := range a {
		a[i] = float32(i%7) - 3
	}
	for i := range b {
		b[i] = float32(i%5) - 2
	}

	requireZeroAllocs(t, "Gemm(parallel)", func() {
		Gemm(false, false, m, n, k, 1, a, b, 0, c)
	})
	requireZeroAllocs(t, "Gemm(serial)", func() {
		Gemm(true, false, 8, 8, k, 1, a[:8*k], b[:k*8], 0.5, c[:64])
	})
	requireZeroAllocs(t, "Gemv", func() {
		Gemv(false, m, k, 1, a, x, 0, y)
	})
	requireZeroAllocs(t, "Gemv(trans)", func() {
		Gemv(true, 8, k, 1, a[:8*k], y[:8], 0, x)
	})

	g := ConvGeom{InC: 3, InH: 16, InW: 16, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	img := make([]float32, 3*16*16)
	col := make([]float32, 3*3*3*g.OutH()*g.OutW())
	requireZeroAllocs(t, "Im2col", func() { Im2col(g, img, col) })
	requireZeroAllocs(t, "Col2im", func() { Col2im(g, col, img) })

	in := make([]float32, 1024)
	out := make([]float32, 1024)
	for i := range in {
		in[i] = float32(i%9) - 4
	}
	requireZeroAllocs(t, "ReLUForward", func() { ReLUForward(in, out) })
	requireZeroAllocs(t, "ReLUBackward", func() { ReLUBackward(in, out, out) })

	const batch, classes = 16, 10
	logits := make([]float32, batch*classes)
	grad := make([]float32, batch*classes)
	labels := make([]int, batch)
	for i := range logits {
		logits[i] = float32(i%11) * 0.1
	}
	requireZeroAllocs(t, "SoftmaxRow", func() { SoftmaxRow(logits[:classes]) })
	requireZeroAllocs(t, "SoftmaxCrossEntropy", func() {
		SoftmaxCrossEntropy(logits, batch, classes, labels, grad)
	})
}
