package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"

	"scaffe/internal/coll"
	"scaffe/internal/core"
	"scaffe/internal/data"
	"scaffe/internal/fault"
	"scaffe/internal/layers"
	"scaffe/internal/models"
	"scaffe/internal/sim"
)

// Chaos sweeps partition rate against heal time for the
// partition-tolerant membership extension. Each scenario cuts the
// 8-rank world into a root-holding majority {0..3} and a minority
// {4..7} one or two times per run, with the heal window on either side
// of the loss-escalation horizon (the deadline ladder's escalation
// point, 47 backoff quanta after the first lost delivery):
//
//   - heal < detect: the cut heals before any waiter escalates its
//     lost traffic, so the revoke commits on a whole, healed world —
//     a rollback-and-replay recovery with nobody fenced.
//   - fence + rejoin: the cut outlives the horizon; the quorum rule
//     fences the minority (root side + >= half the previous world
//     continues), and the fenced ranks re-enter through the join desk
//     after heal.
//
// Every row is diffed against the fault-free golden: final parameters
// must be bit-identical — the split-brain guarantee that a healed
// partition never commits two diverging histories.
func Chaos(o Options) (*Table, error) {
	iters := o.iters(24)
	if iters < 16 {
		iters = 16
	}
	dir, err := os.MkdirTemp("", "scaffe-chaos")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	const quantum = sim.Millisecond
	mk := func(name string) core.Config {
		return core.Config{
			Spec:        models.SpecFromNet(models.BuildTinyNet(1, 1)),
			RealNet:     models.BuildTinyNet,
			Dataset:     data.NewSynthetic("tiny", layers.Shape{C: 3, H: 8, W: 8}, 4, 1<<16, 11),
			GPUs:        8,
			Nodes:       2,
			GPUsPerNode: 4,
			GlobalBatch: 32,
			Iterations:  iters,
			Design:      core.SCB,
			Reduce:      coll.Binomial,
			Source:      core.MemorySource,
			Seed:        7,
			BaseLR:      0.05,
			Momentum:    0.9,

			CaptureFinalParams: true,
			SnapshotEvery:      iters / 2,
			SnapshotPrefix:     filepath.Join(dir, name),
		}
	}

	golden, err := core.Run(mk("golden"))
	if err != nil {
		return nil, err
	}
	baseT := golden.TotalTime
	// The loss-escalation horizon: 1+2+4+8+16+16 = 47 quanta from the
	// first lost delivery to the wire revoke.
	horizon := 47 * quantum

	t := &Table{
		ID: "chaos",
		Title: fmt.Sprintf("Partition rate vs heal time: split-brain fencing and rejoin (tiny net, 8 GPUs, %d iterations)",
			iters),
		Columns: []string{"partitions", "heal window", "fenced", "joins",
			"cut drops", "wire revokes", "time", "vs golden", "final params"},
	}

	groups := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}}
	heals := []struct {
		name   string
		window sim.Duration
	}{
		{"heal < detect", horizon / 2},
		{"fence + rejoin", horizon + sim.Duration(float64(baseT)*0.2)},
	}
	for _, rate := range []int{1, 2} {
		for _, h := range heals {
			var sched fault.Schedule
			at := sim.Time(float64(baseT) * 0.35)
			for i := 0; i < rate; i++ {
				sched = append(sched, fault.Event{
					At: at, Kind: fault.Partition, Groups: groups, For: h.window,
				})
				// Serialize the windows: the next cut opens after the
				// previous one has healed and its recovery settled.
				at += sim.Time(h.window) + sim.Time(2*horizon)
			}
			cfg := mk(fmt.Sprintf("r%d-%s", rate, h.name[:4]))
			cfg.Faults = sched
			cfg.FaultTimeout = quantum
			cfg.MaxVirtualTime = baseT*60 + 8*sim.Time(h.window)
			res, err := core.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("chaos experiment (%d cuts, %s): %w", rate, h.name, err)
			}
			rep := res.Fault
			match := "bit-identical"
			if !reflect.DeepEqual(res.FinalParams, golden.FinalParams) {
				match = "DIVERGED"
			}
			delta := 100 * (float64(res.TotalTime) - float64(baseT)) / float64(baseT)
			t.AddRow(
				fmt.Sprintf("%d", rate),
				h.name,
				fmt.Sprintf("%d", rep.Fenced),
				fmt.Sprintf("%d", len(rep.Joins)),
				fmt.Sprintf("%d", rep.PartitionDrops),
				fmt.Sprintf("%d", rep.WireRevokes),
				res.TotalTime.String(),
				fmt.Sprintf("%+.1f%%", delta),
				match)
			if match == "DIVERGED" {
				return t, fmt.Errorf("chaos experiment (%d cuts, %s): healed partition diverged from the fault-free golden", rate, h.name)
			}
		}
	}
	t.Note("A partition drops every delivery crossing the cut while the window is open. Lost traffic escalates through the deadline ladder (47 quanta) into a wire revoke; at the revoke, the quorum rule lets only the side holding the root and at least half the previous world continue — with the window still open, the minority is fenced (recovery records of kind Partitioned) and re-enters via the join desk after heal; with the window already healed, the revoke commits on the whole world and nobody is fenced.")
	t.Note("\"final params\" diffs the run's trained parameters against the fault-free golden. Bit-identity across every row is the split-brain guarantee: rollback to the latest snapshot plus deterministic re-shard and replay make the healed world's history equal to the unpartitioned one, whichever side survived the cut.")
	return t, nil
}
