package sim

import "testing"

// lcg is a tiny deterministic generator for the differential tests
// (the simulator forbids wall-clock randomness; a fixed-seed LCG keeps
// the schedules reproducible).
type lcg uint64

func (g *lcg) next() uint64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return uint64(*g) >> 11
}

// TestCalendarHeapDifferential drives the calendar queue and the
// legacy binary heap with identical randomized insert/pop schedules
// and requires identical pop order. The profiles cover the regimes the
// kernel produces: dense same-instant clusters, mixed near-future
// timers, and wide spreads that force table resizes and the year-scan
// fallback.
func TestCalendarHeapDifferential(t *testing.T) {
	profiles := []struct {
		name   string
		spread uint64 // max distance of an insert above current time
		burst  uint64 // probability (%) of inserting at exactly now+1
		ops    int
	}{
		{"dense-near", 64, 50, 30000},
		{"mixed", 4096, 10, 30000},
		{"wide-resize", 1 << 40, 0, 20000},
		{"clustered-jumps", 1 << 20, 70, 30000},
	}
	for _, pf := range profiles {
		t.Run(pf.name, func(t *testing.T) {
			var cal calendarQueue
			var heap eventHeap
			g := lcg(0x5caffe + len(pf.name))
			var seq uint64
			now := Time(0)
			pending := 0
			for i := 0; i < pf.ops; i++ {
				r := g.next()
				if pending == 0 || r%100 < 60 {
					at := now + 1 + Time(g.next()%pf.spread)
					if g.next()%100 < pf.burst {
						at = now + 1
					}
					seq++
					e := event{at: at, seq: seq}
					cal.insert(e)
					heap.pushEvent(e)
					pending++
					continue
				}
				a := cal.pop()
				b := heap.popEvent()
				if a.at != b.at || a.seq != b.seq {
					t.Fatalf("op %d: calendar popped (at=%d seq=%d), heap popped (at=%d seq=%d)",
						i, a.at, a.seq, b.at, b.seq)
				}
				// Pops advance virtual time monotonically, exactly as
				// the kernel's event loop does.
				now = a.at
				pending--
			}
			for pending > 0 {
				a := cal.pop()
				b := heap.popEvent()
				if a.at != b.at || a.seq != b.seq {
					t.Fatalf("drain: calendar popped (at=%d seq=%d), heap popped (at=%d seq=%d)",
						a.at, a.seq, b.at, b.seq)
				}
				pending--
			}
			if cal.count != 0 || heap.Len() != 0 {
				t.Fatalf("queues not empty after drain: calendar %d, heap %d", cal.count, heap.Len())
			}
		})
	}
}

// TestCalendarMinTimeMatchesHeap checks the cached-minimum peek (the
// kernel's pop rule reads it on every event) against the oracle.
func TestCalendarMinTimeMatchesHeap(t *testing.T) {
	var cal calendarQueue
	var heap eventHeap
	g := lcg(7)
	var seq uint64
	now := Time(0)
	for i := 0; i < 10000; i++ {
		if heap.Len() == 0 || g.next()%3 != 0 {
			seq++
			e := event{at: now + 1 + Time(g.next()%100000), seq: seq}
			cal.insert(e)
			heap.pushEvent(e)
		} else {
			now = heap.peek().at
			cal.pop()
			heap.popEvent()
		}
		if heap.Len() > 0 {
			mt, ok := cal.minTime()
			if !ok || mt != heap.peek().at {
				t.Fatalf("step %d: calendar min %v (ok=%v), heap min %v", i, mt, ok, heap.peek().at)
			}
		} else if _, ok := cal.minTime(); ok {
			t.Fatalf("step %d: calendar reports a minimum on an empty queue", i)
		}
	}
}

// TestPooledCompletionStaleFireDissolves is the sim half of the
// recycling drill: a fire scheduled against one life of a pooled
// completion must dissolve once the completion is recycled, not
// complete its next life.
func TestPooledCompletionStaleFireDissolves(t *testing.T) {
	k := New()
	c := k.GetCompletion()
	staleGen := c.Gen()
	c.FireAt(100) // scheduled against the current generation
	k.PutCompletion(c)

	c2 := k.GetCompletion()
	if c2 != c {
		t.Fatalf("pool did not recycle the completion")
	}
	if c2.Gen() == staleGen {
		t.Fatalf("recycle did not bump the generation")
	}
	fired := false
	k.Spawn("waiter", func(p *Proc) {
		p.Sleep(200) // outlive the stale fire's due time
		if c2.Fired() {
			fired = true
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatalf("stale FireAt from a previous life completed the recycled completion")
	}
	// Direct stale FireIf must be a no-op too.
	c2.FireIf(staleGen)
	if c2.Fired() {
		t.Fatalf("FireIf with a stale generation fired the completion")
	}
	c2.FireIf(c2.Gen())
	if !c2.Fired() {
		t.Fatalf("FireIf with the current generation did not fire")
	}
}

// benchTicker is a pooled self-rescheduling event record: each firing
// exercises the calendar insert (its own reschedule), the same-instant
// ring (the guarded completion fire), and the completion recycle path
// — the kernel's three hot paths.
type benchTicker struct {
	period    Duration
	remaining int
	c         *Completion
}

func (bt *benchTicker) RunEvent(k *Kernel) {
	bt.c.Init(k)       // new generation, as a pooled owner would
	bt.c.FireAt(k.now) // same-instant guarded fire through the ring
	if bt.remaining > 0 {
		bt.remaining--
		k.AtRun(k.now+bt.period, bt)
	}
}

func newBenchTickers(k *Kernel, n int) []*benchTicker {
	ts := make([]*benchTicker, n)
	for i := range ts {
		ts[i] = &benchTicker{period: Duration(900 + 37*i), c: k.GetCompletion()}
	}
	return ts
}

// simKernelRound schedules perTicker self-rescheduling ticks on every
// ticker and drains the kernel.
func simKernelRound(tb testing.TB, k *Kernel, ts []*benchTicker, perTicker int) {
	for _, bt := range ts {
		bt.remaining = perTicker - 1
		k.AtRun(k.Now()+bt.period, bt)
	}
	if err := k.Run(); err != nil {
		tb.Fatal(err)
	}
}

// TestSimKernelZeroAllocSteadyState is the zero-allocation gate run by
// scripts/check.sh: after one warm-up round fills the pools, a
// steady-state event storm must allocate nothing at all.
func TestSimKernelZeroAllocSteadyState(t *testing.T) {
	k := New()
	ts := newBenchTickers(k, 8)
	simKernelRound(t, k, ts, 64) // warm: rings, buckets, pools
	avg := testing.AllocsPerRun(10, func() {
		simKernelRound(t, k, ts, 128)
	})
	if avg != 0 {
		t.Fatalf("event kernel steady state allocates %.2f allocs per 1024-event round; want 0", avg)
	}
}

// BenchmarkSimKernel measures the event kernel's per-event cost on the
// pooled steady state: one op is one ticker firing (one calendar
// insert + reschedule, one generation recycle, one same-instant fire).
func BenchmarkSimKernel(b *testing.B) {
	k := New()
	ts := newBenchTickers(k, 8)
	simKernelRound(b, k, ts, 64) // warm: rings, buckets, pools
	b.ReportAllocs()
	b.ResetTimer()
	done := 0
	for done < b.N {
		per := (b.N - done + len(ts) - 1) / len(ts)
		if per > 4096 {
			per = 4096
		}
		simKernelRound(b, k, ts, per)
		done += per * len(ts)
	}
}
