// Package gpu models a CUDA device at the fidelity the S-Caffe
// co-designs require: device-memory accounting, a compute stream and a
// communication/reduction stream that run concurrently, a kernel cost
// model driven by FLOP counts, and device buffers that optionally
// carry real float32 payloads so reductions can be verified
// numerically.
package gpu

import (
	"fmt"

	"scaffe/internal/sim"
	"scaffe/internal/topology"
)

// Device is one simulated CUDA device.
type Device struct {
	K  *sim.Kernel
	ID topology.DeviceID
	// Compute serializes training kernels (forward/backward layers).
	Compute *sim.Resource
	// Comm serializes reduction/pack kernels; it runs concurrently
	// with Compute, as two CUDA streams would.
	Comm *sim.Resource

	p        topology.Params
	slowdown float64 // >1 stretches every kernel (straggler modeling)
	memUsed  int64
	memCap   int64
	launches int64
}

// NewDevice creates a device of cluster c for topology slot id.
// K-80-era devices expose 12 GB per GK210.
func NewDevice(c *topology.Cluster, id topology.DeviceID) *Device {
	return &Device{
		K:       c.K,
		ID:      id,
		Compute: c.K.NewResource(fmt.Sprintf("%v.compute", id)),
		Comm:    c.K.NewResource(fmt.Sprintf("%v.comm", id)),
		p:       c.P,
		memCap:  12 << 30,
	}
}

// SetMemCapacity overrides the device-memory capacity in bytes.
func (d *Device) SetMemCapacity(bytes int64) { d.memCap = bytes }

// SetSlowdown stretches every kernel on this device by factor ≥ 1,
// modeling a persistent straggler (thermal throttling, a shared K-80
// sibling, OS noise). Factor 1 restores nominal speed.
func (d *Device) SetSlowdown(factor float64) {
	if factor < 1 {
		factor = 1
	}
	d.slowdown = factor
}

func (d *Device) scale(t sim.Duration) sim.Duration {
	if d.slowdown > 1 {
		return sim.Duration(float64(t) * d.slowdown)
	}
	return t
}

// MemUsed returns the bytes currently allocated on the device.
func (d *Device) MemUsed() int64 { return d.memUsed }

// MemCapacity returns the device-memory capacity in bytes.
func (d *Device) MemCapacity() int64 { return d.memCap }

// Launches returns the number of kernels launched so far (for tests
// and utilization reports).
func (d *Device) Launches() int64 { return d.launches }

// ErrOutOfMemory is returned by Alloc when a buffer does not fit. It
// reproduces the "solver ran out of memory" missing data points of
// Figure 8.
type ErrOutOfMemory struct {
	Dev       topology.DeviceID
	Requested int64
	Free      int64
}

func (e *ErrOutOfMemory) Error() string {
	return fmt.Sprintf("gpu %v: out of memory: requested %d bytes, %d free", e.Dev, e.Requested, e.Free)
}

// Alloc reserves bytes of device memory.
func (d *Device) Alloc(bytes int64) error {
	if d.memUsed+bytes > d.memCap {
		return &ErrOutOfMemory{Dev: d.ID, Requested: bytes, Free: d.memCap - d.memUsed}
	}
	d.memUsed += bytes
	return nil
}

// Free releases bytes of device memory.
func (d *Device) Free(bytes int64) {
	d.memUsed -= bytes
	if d.memUsed < 0 {
		d.memUsed = 0
	}
}

// KernelTime converts a FLOP count into a kernel duration using the
// device's sustained throughput plus launch latency.
func (d *Device) KernelTime(flops float64) sim.Duration {
	if flops <= 0 {
		return d.p.KernelLaunch
	}
	return d.p.KernelLaunch + sim.Duration(flops/(d.p.GPUGflops*1e9)*float64(sim.Second))
}

// LaunchCompute enqueues a kernel of the given FLOP cost on the
// compute stream no earlier than `at`, returning its span.
func (d *Device) LaunchCompute(at sim.Time, flops float64) (start, end sim.Time) {
	d.launches++
	return d.Compute.Reserve(at, d.scale(d.KernelTime(flops)))
}

// LaunchReduce enqueues a reduction kernel combining `bytes` of one
// operand on the comm stream, returning its span.
func (d *Device) LaunchReduce(at sim.Time, bytes int64) (start, end sim.Time) {
	d.launches++
	dur := d.p.KernelLaunch + sim.Duration(float64(bytes)/d.p.GPUReduceBW*float64(sim.Second))
	return d.Comm.Reserve(at, d.scale(dur))
}
