package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// The mpi pass enforces four pieces of request discipline:
//
//  1. lifecycle — every non-blocking call (Isend, Irecv, Ibcast,
//     Ireduce, NewDeferredRequest) returns a *Request that must reach a
//     Wait/Test (any later use counts) on every path; discarding the
//     result or letting the variable die unexamined leaks the request
//     and, under ULFM-style revocation, strands the completion;
//  2. integrity — a checksummed receive (RecvSummed) must reach its
//     Verify on every path; a path that skips Verify silently accepts
//     corrupted payloads, defeating the whole integrity plane;
//  3. tags — message tags must be named constants (or expressions over
//     them), never bare integer literals: two call sites inventing the
//     same literal tag cross their matches silently;
//  4. helper threads — closures handed to SpawnThread model the
//     communication helper thread; issuing a blocking collective from
//     one deadlocks the rank the moment the main thread enters the
//     same collective.

func runMPI(_ *Program, pkg *Pkg, report func(pos token.Pos, msg string)) {
	runFlow(pkg, flowSpec{
		creator: requestCreator,
		discardMsg: func(c string) string {
			return fmt.Sprintf("%s result discarded: the request never reaches Wait/Test and leaks", c)
		},
		leakMsg: func(c string) string {
			return fmt.Sprintf("request from %s does not reach Wait/Test on every path", c)
		},
	}, report)

	runFlow(pkg, flowSpec{
		creator: summedCreator,
		discardMsg: func(c string) string {
			return fmt.Sprintf("%s result discarded: the checksummed payload never reaches Verify and corruption passes silently", c)
		},
		leakMsg: func(c string) string {
			return fmt.Sprintf("checksummed receive from %s does not reach Verify on every path", c)
		},
	}, report)

	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkTagArgs(pkg, call, report)
			checkHelperThread(pkg, call, report)
			return true
		})
	}
}

// requestCreator names non-blocking request constructors.
func requestCreator(pkg *Pkg, call *ast.CallExpr) string {
	fn := calleeFunc(pkg, call)
	switch {
	case funcFrom(fn, "scaffe/internal/mpi", "Isend", "Irecv", "Ibcast", "NewDeferredRequest", "IjoinAck", "IjoinAckRecv"):
		return "mpi." + fn.Name()
	case funcFrom(fn, "scaffe/internal/coll", "Ireduce"):
		return "coll.Ireduce"
	}
	return ""
}

// summedCreator names the checksummed-receive constructor.
func summedCreator(pkg *Pkg, call *ast.CallExpr) string {
	fn := calleeFunc(pkg, call)
	if funcFrom(fn, "scaffe/internal/mpi", "RecvSummed") {
		return "mpi." + fn.Name()
	}
	return ""
}

// checkTagArgs flags bare integer literals passed to a parameter named
// "tag" of an mpi or coll function.
func checkTagArgs(pkg *Pkg, call *ast.CallExpr, report func(pos token.Pos, msg string)) {
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if p := fn.Pkg().Path(); p != "scaffe/internal/mpi" && p != "scaffe/internal/coll" {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		if i >= params.Len() {
			break
		}
		if params.At(i).Name() != "tag" {
			continue
		}
		if isIntLiteral(arg) {
			report(arg.Pos(), fmt.Sprintf(
				"literal tag passed to %s.%s; use a named constant so call sites cannot collide", fn.Pkg().Name(), fn.Name()))
		}
	}
}

// isIntLiteral reports whether expr is a bare integer literal,
// possibly parenthesized or signed.
func isIntLiteral(expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.BasicLit:
		return e.Kind == token.INT
	case *ast.UnaryExpr:
		if e.Op == token.SUB || e.Op == token.ADD {
			return isIntLiteral(e.X)
		}
	}
	return false
}

// checkHelperThread flags blocking collectives inside a closure passed
// to mpi SpawnThread.
func checkHelperThread(pkg *Pkg, call *ast.CallExpr, report func(pos token.Pos, msg string)) {
	fn := calleeFunc(pkg, call)
	if !funcFrom(fn, "scaffe/internal/mpi", "SpawnThread") {
		return
	}
	for _, arg := range call.Args {
		lit, ok := ast.Unparen(arg).(*ast.FuncLit)
		if !ok {
			continue
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			ifn := calleeFunc(pkg, inner)
			switch {
			case funcFrom(ifn, "scaffe/internal/mpi", "Bcast"):
				report(inner.Pos(), "blocking mpi.Bcast inside a SpawnThread helper; it deadlocks against the main thread's collectives — use Ibcast")
			case funcFrom(ifn, "scaffe/internal/coll", "Reduce", "Allreduce", "RingAllreduce", "ReduceScatterGather", "BcastScatterAllgather"):
				report(inner.Pos(), fmt.Sprintf(
					"blocking collective coll.%s inside a SpawnThread helper; it deadlocks against the main thread's collectives — use coll.Ireduce", ifn.Name()))
			}
			return true
		})
	}
}
