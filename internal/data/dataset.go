// Package data provides the training-data plane: deterministic
// synthetic datasets standing in for MNIST/CIFAR-10/ImageNet, the I/O
// cost models of the two storage backends the paper compares (LMDB
// with its >64-reader contention cliff vs file-per-image reading on a
// parallel filesystem), and the parallel data-reader design of
// Figure 3 (one reader thread and one distributed queue per solver).
package data

import (
	"fmt"
	"math/rand"
	"sync"

	"scaffe/internal/layers"
)

// Sample is one training example.
type Sample struct {
	Image []float32
	Label int
}

// Dataset is an in-memory random-access dataset.
type Dataset interface {
	// Name identifies the dataset.
	Name() string
	// Len returns the number of samples.
	Len() int
	// At returns sample i (deterministic).
	At(i int) Sample
	// Shape returns the per-sample image shape.
	Shape() layers.Shape
	// Classes returns the number of label classes.
	Classes() int
}

// Filler is an optional Dataset extension for allocation-free batch
// assembly: a dataset that can write a sample's image directly into a
// caller-owned buffer. BatchTensorInto uses it when available, which
// keeps the training hot path free of per-iteration allocations.
type Filler interface {
	// ReadInto writes sample i's image into img (which must hold at
	// least Shape().Elems() values) and returns the label. It is safe
	// for concurrent use.
	ReadInto(i int, img []float32) int
}

// Synthetic is a deterministic, learnable dataset: each class has a
// fixed random template and samples are template + noise. Linear and
// small convolutional models can fit it, which lets the real-compute
// tests verify that training actually reduces loss.
type Synthetic struct {
	name      string
	shape     layers.Shape
	classes   int
	n         int
	seed      int64
	templates [][]float32
	noise     float32

	// mu guards rng, a cached generator re-seeded per sample so reads
	// don't allocate a fresh rand.Rand each call. Re-seeding resets the
	// source to the exact state a fresh generator would have, so the
	// sample stream is identical to the per-call construction.
	mu  sync.Mutex
	rng *rand.Rand
}

// NewSynthetic builds a synthetic dataset of n samples.
func NewSynthetic(name string, shape layers.Shape, classes, n int, seed int64) *Synthetic {
	rng := rand.New(rand.NewSource(seed))
	d := &Synthetic{name: name, shape: shape, classes: classes, n: n, seed: seed, noise: 0.3}
	for c := 0; c < classes; c++ {
		t := make([]float32, shape.Elems())
		for i := range t {
			t[i] = rng.Float32()*2 - 1
		}
		d.templates = append(d.templates, t)
	}
	return d
}

// Name implements Dataset.
func (d *Synthetic) Name() string { return d.name }

// Len implements Dataset.
func (d *Synthetic) Len() int { return d.n }

// Shape implements Dataset.
func (d *Synthetic) Shape() layers.Shape { return d.shape }

// Classes implements Dataset.
func (d *Synthetic) Classes() int { return d.classes }

// At implements Dataset. Sample i is derived from (seed, i) only, so
// every rank sees the same dataset.
//
//scaffe:coldpath stateless convenience accessor; the batch path uses ReadInto (Filler), which fills the caller's buffer
func (d *Synthetic) At(i int) Sample {
	img := make([]float32, d.shape.Elems())
	label := d.ReadInto(i, img)
	return Sample{Image: img, Label: label}
}

// ReadInto implements Filler.
func (d *Synthetic) ReadInto(i int, img []float32) int {
	if i < 0 || i >= d.n {
		panic(fmt.Sprintf("data: sample %d out of range [0,%d)", i, d.n))
	}
	img = img[:d.shape.Elems()]
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.rng == nil {
		d.rng = rand.New(rand.NewSource(0))
	}
	d.rng.Seed(d.seed*1_000_003 + int64(i))
	label := int(d.rng.Int31n(int32(d.classes)))
	tpl := d.templates[label]
	for j := range img {
		img[j] = tpl[j] + (d.rng.Float32()*2-1)*d.noise
	}
	return label
}

// SyntheticMNIST returns a 1×28×28, 10-class dataset.
func SyntheticMNIST(n int, seed int64) *Synthetic {
	return NewSynthetic("synthetic-mnist", layers.Shape{C: 1, H: 28, W: 28}, 10, n, seed)
}

// SyntheticCIFAR10 returns a 3×32×32, 10-class dataset.
func SyntheticCIFAR10(n int, seed int64) *Synthetic {
	return NewSynthetic("synthetic-cifar10", layers.Shape{C: 3, H: 32, W: 32}, 10, n, seed)
}

// SyntheticImageNet returns a 3×224×224, 1000-class dataset (geometry
// only; used by timing-mode runs).
func SyntheticImageNet(n int, seed int64) *Synthetic {
	return NewSynthetic("synthetic-imagenet", layers.Shape{C: 3, H: 224, W: 224}, 1000, n, seed)
}

// BatchTensor assembles samples [start, start+batch) of ds (wrapping
// modulo length) into a flat NCHW tensor and label slice.
func BatchTensor(ds Dataset, start, batch int) ([]float32, []int) {
	img := make([]float32, batch*ds.Shape().Elems())
	labels := make([]int, batch)
	BatchTensorInto(ds, start, batch, img, labels)
	return img, labels
}

// BatchTensorInto assembles samples [start, start+batch) of ds
// (wrapping modulo length) into caller-owned buffers: img must hold
// batch*Shape().Elems() values and labels batch entries. Datasets
// implementing Filler are read without any allocation.
func BatchTensorInto(ds Dataset, start, batch int, img []float32, labels []int) {
	elems := ds.Shape().Elems()
	if f, ok := ds.(Filler); ok {
		for b := 0; b < batch; b++ {
			labels[b] = f.ReadInto((start+b)%ds.Len(), img[b*elems:(b+1)*elems])
		}
		return
	}
	for b := 0; b < batch; b++ {
		s := ds.At((start + b) % ds.Len())
		copy(img[b*elems:(b+1)*elems], s.Image)
		labels[b] = s.Label
	}
}
