package core

import (
	"strconv"

	"scaffe/internal/coll"
	"scaffe/internal/mpi"
	"scaffe/internal/sched"
	"scaffe/internal/sim"
	"scaffe/internal/topology"
)

// Each training design is a graph-construction policy: one iteration
// becomes a sched.Graph whose edges encode where communication is
// posted and waited relative to per-layer compute — the only axis
// along which the paper's designs differ. The node actions reuse the
// runState/workload context; the scheduler supplies ordering, waiting,
// and trace emission.

// buildIteration constructs rank r's iteration graph under the
// configured design. The graph is iteration-independent — anything
// per-iteration reaches the node actions through sched.Ctx.It — so
// fault-free runs build it once per rank and re-execute it every
// iteration. ModelParallel keeps its pipeline loop (see
// modelparallel.go): its ranks run different layer ranges, not
// different overlap policies.
func (st *runState) buildIteration(r *mpi.Rank) *sched.Graph {
	g := sched.New(r)
	switch st.cfg.Design {
	case SCB, CaffeMT:
		st.buildSCB(g, r)
	case SCOB:
		st.buildSCOB(g, r)
	case SCOBR, SCOBRF:
		st.buildSCOBR(g, r)
	case CNTKLike:
		st.buildCNTK(g, r)
	case ParamServer:
		st.buildPS(g, r)
	}
	return g
}

// buildSCB is the S-Caffe Basic policy (Section 4.1): blocking
// CUDA-aware broadcast of the packed parameters, sequential
// forward/backward, blocking reduce of the packed gradients. CaffeMT
// shares this graph (its transfers resolve to intra-node IPC and its
// data plane is the single shared reader).
func (st *runState) buildSCB(g *sched.Graph, r *mpi.Rank) {
	w := st.wl[r.ID]
	root := st.isRoot(r)
	st.addDataWait(g, r, w)
	g.Add(0, sched.Pack, "propagation", "pack-params", func(x *sched.Ctx) {
		if root {
			w.packParams()
		}
	})
	g.Add(0, sched.WaitBcast, "propagation", "bcast-params", func(x *sched.Ctx) {
		x.R.Bcast(st.comm, 0, w.packedParams, topology.ModeAuto)
	})
	g.Add(0, sched.Unpack, "propagation", "unpack-params", func(x *sched.Ctx) {
		if !root {
			w.unpackParams()
		}
	})
	st.addForward(g, w)
	st.addBackward(g, w)
	g.Add(0, sched.Reduce, "aggregation", "reduce-grads", func(x *sched.Ctx) {
		st.red.Reduce(x.R, w.packedGrads, tagPackedReduce)
	})
	if root {
		st.addUpdate(g, w, st.workerCount())
	}
}

// buildSCOB is SC-B plus the overlapped multi-stage data propagation
// (Section 4.2): every layer's Ibcast is posted up front and each wait
// sits immediately before the layer that consumes the data.
func (st *runState) buildSCOB(g *sched.Graph, r *mpi.Rank) {
	w := st.wl[r.ID]
	root := st.isRoot(r)
	st.addDataWait(g, r, w)
	slots, drain := st.addPostPropagation(g, r, w)
	st.addOverlappedForward(g, w, slots, root)
	st.addBackward(g, w)
	g.Add(0, sched.Reduce, "aggregation", "reduce-grads", func(x *sched.Ctx) {
		st.red.Reduce(x.R, w.packedGrads, tagPackedReduce)
	})
	if root {
		st.addDrainSends(g, drain)
		st.addUpdate(g, w, st.workerCount())
	}
}

// buildSCOBR is the full co-design (Section 4.3): overlapped
// propagation plus helper-lane gradient aggregation. The backward
// kernels run on a helper lane; each layer's (or bucket's) reduce node
// depends on the helper node that produced its gradients, so layer n's
// reduce overlaps layer n−1's backward compute. SC-OBR-F shares this
// builder — normalization guarantees it always has buckets.
func (st *runState) buildSCOBR(g *sched.Graph, r *mpi.Rank) {
	w := st.wl[r.ID]
	root := st.isRoot(r)
	nLayers := len(st.cfg.Spec.Layers)
	st.addDataWait(g, r, w)
	slots, drain := st.addPostPropagation(g, r, w)
	st.addOverlappedForward(g, w, slots, root)

	begin := g.Add(0, sched.Generic, "", "begin-backward", func(x *sched.Ctx) { w.beginBackward() })
	helper := g.Lane("helper")
	bwd := make([]*sched.Node, nLayers)
	for l := nLayers - 1; l >= 0; l-- {
		bwd[l] = st.addBackwardLayer(g, helper, w, l)
	}
	bwd[nLayers-1].After(begin)

	if len(w.buckets) > 0 {
		// Fused aggregation: a bucket's gradients are complete once its
		// lowest layer's backward finishes.
		for bi, b := range w.buckets {
			bi, bucket := bi, b
			g.Add(0, sched.Generic, "", st.labels().gradsReadyB[bi], nil).
				After(bwd[bucket.lo]).WaitingIn("backward")
			g.Add(0, sched.Reduce, "aggregation", st.labels().reduceB[bi], func(x *sched.Ctx) {
				st.red.Reduce(x.R, bucket.buf, tagLayerReduce+4*bi)
			})
		}
	} else {
		for l := nLayers - 1; l >= 0; l-- {
			if w.layerGrad[l] == nil {
				continue
			}
			l := l
			g.Add(0, sched.Generic, "", st.labels().gradsReady[l], nil).
				After(bwd[l]).WaitingIn("backward")
			g.Add(0, sched.Reduce, "aggregation", st.labels().reduce[l], func(x *sched.Ctx) {
				st.red.Reduce(x.R, w.layerGrad[l], tagLayerReduce+4*l)
			})
		}
	}
	g.Add(0, sched.Generic, "", "join-backward", nil).After(bwd[0]).WaitingIn("backward")

	if root {
		st.addDrainSends(g, drain)
		st.addUpdate(g, w, st.workerCount())
	}
}

// buildCNTK models an MPI DL framework without CUDA-awareness or
// overlap, but with a competent host-side collective (CNTK's 1-bit-SGD
// lineage used MPI allreduce with its own multi-threaded reduction):
// gradients are staged to the host, ring-allreduced there, staged
// back, and every rank applies the update locally — the design axes of
// Table 1.
func (st *runState) buildCNTK(g *sched.Graph, r *mpi.Rank) {
	w := st.wl[r.ID]
	hostOpts := coll.Options{OnGPU: false, HostReduceBW: 20e9, Mode: topology.ModeHost}
	host := topology.HostOf(r.Dev.ID.Node)
	st.addDataWait(g, r, w)
	st.addForward(g, w)
	st.addBackward(g, w)
	g.Add(0, sched.Reduce, "aggregation", "host-allreduce", func(x *sched.Ctx) {
		// Direct cluster transfers reserve the node's shared PCIe/host
		// links, outside this rank's group: serialize the segment first.
		x.P.Exclusive()
		gradBytes := w.packedGrads.Bytes
		_, end := st.cluster.Transfer(x.P.Now(), r.Dev.ID, host, gradBytes, topology.ModeAuto)
		x.P.WaitUntil(end)
		if st.comm.Size() > 1 {
			coll.RingAllreduce(st.comm, x.R, w.packedGrads, tagPackedReduce, hostOpts)
		}
		_, end = st.cluster.Transfer(x.P.Now(), host, r.Dev.ID, gradBytes, topology.ModeAuto)
		x.P.WaitUntil(end)
	})
	st.addLocalUpdate(g, r, w)
}

// buildPS models the Inspur-style parameter server: rank 0 serves
// parameters and aggregates gradients sequentially; ranks 1..N−1
// train. The single server's links and reduce kernels serialize all
// workers — the scalability argument of Section 3.1.
func (st *runState) buildPS(g *sched.Graph, r *mpi.Rank) {
	w := st.wl[r.ID]
	workers := st.cfg.GPUs - 1
	if r.ID == 0 {
		g.Add(0, sched.PostBcast, "propagation", "serve-params", func(x *sched.Ctx) {
			for wk := 1; wk <= workers; wk++ {
				x.R.Send(st.comm, wk, tagPS, w.packedParams, topology.ModeAuto)
			}
		})
		g.Add(0, sched.Reduce, "aggregation", "collect-grads", func(x *sched.Ctx) {
			for wk := 1; wk <= workers; wk++ {
				x.R.Recv(st.comm, wk, tagPS+1, st.psScratch)
				_, end := x.R.Dev.LaunchReduce(x.P.Now(), st.psScratch.Bytes)
				x.P.WaitUntil(end)
			}
		})
		st.addUpdate(g, w, workers)
		return
	}
	st.addDataWait(g, r, w)
	g.Add(0, sched.WaitBcast, "propagation", "recv-params", func(x *sched.Ctx) {
		x.R.Recv(st.comm, 0, tagPS, w.packedParams)
	})
	st.addForward(g, w)
	st.addBackward(g, w)
	g.Add(0, sched.Reduce, "aggregation", "send-grads", func(x *sched.Ctx) {
		x.R.Send(st.comm, 0, tagPS+1, w.packedGrads, topology.ModeAuto)
	})
}

// --- shared node factories ------------------------------------------------

// labelTable interns the per-layer (and per-bucket) node labels once
// per run: every rank's graph uses the same strings, so building 1024
// rank graphs costs 1024 label constructions instead of ~140k Sprintf
// calls.
type labelTable struct {
	fwd, bwd, waitBcast, bcastWire, gradsReady, reduce []string
	gradsReadyB, reduceB                               []string
}

// labels returns the run's interned label table, building it on first
// use. First use happens during graph construction — either eagerly in
// run() or on the cooperatively-scheduled rank procs — so no locking
// is needed.
//
//scaffe:coldpath first-use label interning, cached in st.lbl; every later call returns the table
func (st *runState) labels() *labelTable {
	if st.lbl != nil {
		return st.lbl
	}
	n := len(st.cfg.Spec.Layers)
	t := &labelTable{
		fwd: make([]string, n), bwd: make([]string, n),
		waitBcast: make([]string, n), bcastWire: make([]string, n),
		gradsReady: make([]string, n), reduce: make([]string, n),
	}
	for l := 0; l < n; l++ {
		d := strconv.Itoa(l)
		t.fwd[l] = "fwd:" + d
		t.bwd[l] = "bwd:" + d
		t.waitBcast[l] = "wait-bcast:" + d
		t.bcastWire[l] = "bcast:" + d
		t.gradsReady[l] = "grads-ready:" + d
		t.reduce[l] = "reduce:" + d
	}
	nb := 0
	for _, w := range st.wl {
		if len(w.buckets) > nb {
			nb = len(w.buckets)
		}
	}
	t.gradsReadyB = make([]string, nb)
	t.reduceB = make([]string, nb)
	for b := 0; b < nb; b++ {
		d := strconv.Itoa(b)
		t.gradsReadyB[b] = "grads-ready:b" + d
		t.reduceB[b] = "reduce:b" + d
	}
	st.lbl = t
	return t
}

// addDataWait starts an iteration: the framework's fixed per-iteration
// overhead (untraced, as in the original accounting), then the blocking
// read from this rank's reader queue plus the real-mode batch load.
func (st *runState) addDataWait(g *sched.Graph, r *mpi.Rank, w *workload) {
	g.Add(0, sched.Generic, "", "iter-overhead", func(x *sched.Ctx) {
		x.P.Sleep(st.cluster.P.IterOverhead)
	})
	g.Add(0, sched.DataWait, "data", "data-wait", func(x *sched.Ctx) {
		if rd := st.readers[r.ID]; rd != nil {
			rd.Next(x.P)
		}
		if w.real() {
			rankOffset := st.workerIndex(r) * w.localBatch
			w.loadBatch(st.cfg.Dataset, x.It, w.localBatch*st.workerCount(), rankOffset)
		}
	})
}

// addPostPropagation posts every parameter layer's Ibcast up front
// (Figure 5's multi-stage on-demand design). It returns per-layer
// slots (for the consuming layers' waits) and a drain slot holding all
// requests (for the root's send completion). When tracing, each
// request's completion hook records the wire-level span of the
// offloaded broadcast — the overlap Summary measures.
func (st *runState) addPostPropagation(g *sched.Graph, r *mpi.Rank, w *workload) ([]*sched.Slot, *sched.Slot) {
	slots := make([]*sched.Slot, len(st.cfg.Spec.Layers))
	for l := range slots {
		slots[l] = sched.NewSlot()
	}
	drain := sched.NewSlot()
	g.Add(0, sched.PostBcast, "", "post-bcasts", func(x *sched.Ctx) {
		root := st.isRoot(r)
		if root {
			w.packParams()
		}
		for l, buf := range w.layerParam {
			if buf == nil {
				continue
			}
			req := x.R.Ibcast(st.comm, 0, buf, topology.ModeAuto)
			// Each request is waited exactly where it is consumed: the
			// root gates its update on the drain slot, non-roots gate
			// each layer's forward on that layer's slot. Filling only
			// the gated slot keeps re-executed (cached) graphs from
			// accumulating requests in slots nobody resets.
			if root {
				drain.Put(req)
			} else {
				slots[l].Put(req)
			}
			if st.cfg.Trace != nil {
				post, label, rank := x.P.Now(), st.labels().bcastWire[l], r.ID
				//scaffe:nolint hotpath trace-only completion hook; timing runs (nil Trace) never build it
				req.OnComplete(func() {
					// The hook runs in kernel context at completion
					// time, so the current virtual time IS the
					// completion time — and unlike req.CompletedAt()
					// it stays correct after the pooled request is
					// recycled by a later operation.
					st.cfg.Trace.AddNode(rank, "bcast-wire", label, post, r.Now())
				})
			}
		}
	})
	return slots, drain
}

// addOverlappedForward places each layer's broadcast wait immediately
// before the layer that consumes the data — too early wastes overlap,
// too late stalls compute (Section 4.2).
func (st *runState) addOverlappedForward(g *sched.Graph, w *workload, slots []*sched.Slot, root bool) {
	g.Add(0, sched.Generic, "", "begin-forward", func(x *sched.Ctx) { w.beginForward() })
	for l := range st.cfg.Spec.Layers {
		if w.layerParam[l] != nil && !root {
			l := l
			g.Add(0, sched.WaitBcast, "propagation", st.labels().waitBcast[l], func(x *sched.Ctx) {
				w.unpackLayerParams(l)
			}).Gated(slots[l])
		}
		st.addForwardLayer(g, w, l)
	}
}

// addForward runs the full forward pass sequentially.
func (st *runState) addForward(g *sched.Graph, w *workload) {
	g.Add(0, sched.Generic, "", "begin-forward", func(x *sched.Ctx) { w.beginForward() })
	for l := range st.cfg.Spec.Layers {
		st.addForwardLayer(g, w, l)
	}
}

// addForwardLayer runs one layer's forward kernel (and real math).
func (st *runState) addForwardLayer(g *sched.Graph, w *workload, l int) *sched.Node {
	return g.Add(0, sched.ComputeForward, "forward", st.labels().fwd[l], func(x *sched.Ctx) {
		flops := st.cfg.Spec.Layers[l].FwdFLOPs * float64(w.localBatch)
		_, end := x.R.Dev.LaunchCompute(x.P.Now(), flops)
		w.forwardLayer(l)
		x.P.WaitUntil(end)
	})
}

// addBackward runs the full backward pass serially on lane 0 (SC-B /
// SC-OB / the baselines).
func (st *runState) addBackward(g *sched.Graph, w *workload) {
	g.Add(0, sched.Generic, "", "begin-backward", func(x *sched.Ctx) { w.beginBackward() })
	for l := len(st.cfg.Spec.Layers) - 1; l >= 0; l-- {
		st.addBackwardLayer(g, 0, w, l)
	}
}

// addBackwardLayer runs one layer's backward kernel (and real math) on
// the given lane.
func (st *runState) addBackwardLayer(g *sched.Graph, lane int, w *workload, l int) *sched.Node {
	phase := "backward"
	return g.Add(lane, sched.ComputeBackward, phase, st.labels().bwd[l], func(x *sched.Ctx) {
		flops := st.cfg.Spec.Layers[l].BwdFLOPs * float64(w.localBatch)
		_, end := x.R.Dev.LaunchCompute(x.P.Now(), flops)
		w.backwardLayer(l)
		x.P.WaitUntil(end)
	})
}

// addDrainSends completes the root's outstanding broadcast sends; the
// root must not modify parameters (ApplyUpdate) while the network may
// still be reading them.
func (st *runState) addDrainSends(g *sched.Graph, drain *sched.Slot) {
	g.Add(0, sched.DrainSends, "propagation", "drain-bcasts", nil).Gated(drain)
}

// addUpdate performs the root solver's ApplyUpdate — unpack the
// reduced gradients, run the SGD arithmetic (scaled to average the
// per-solver mean gradients), charge the kernel time — followed by the
// untimed bookkeeping (loss recording, testing, snapshotting).
func (st *runState) addUpdate(g *sched.Graph, w *workload, workers int) {
	g.Add(0, sched.Update, "update", "update", func(x *sched.Ctx) {
		_, end := x.R.Dev.LaunchCompute(x.P.Now(), updateFLOPs(st.cfg.Spec.TotalParams()))
		if w.real() {
			w.unpackGrads()
			// The health gate runs before the step, so poisoned
			// gradients never reach the parameters (recover mode
			// unwinds here into a micro-rollback); a quarantined
			// batch skips its update entirely.
			if st.integrityCheck(w, x.It) {
				st.sgds[x.R.ID].Step(w.net, x.It, 1/float32(workers))
				st.noteLastGood(w)
			}
		}
		x.P.WaitUntil(end)
	})
	g.Add(0, sched.Generic, "", "post-update", func(x *sched.Ctx) {
		if w.real() {
			//scaffe:nolint hotpath losses is pre-sized to cfg.Iterations in run(); append never regrows
			st.losses = append(st.losses, w.loss())
		}
		st.maybeEvaluate(x.R, w, x.It)
		st.noteCompleted(x.It)
		st.membershipTick(x.R)
	})
}

// addLocalUpdate applies the update on this rank (designs whose
// replicas all hold the averaged gradient); only the root records
// losses and runs the testing phase.
func (st *runState) addLocalUpdate(g *sched.Graph, r *mpi.Rank, w *workload) {
	g.Add(0, sched.Update, "update", "local-update", func(x *sched.Ctx) {
		_, end := x.R.Dev.LaunchCompute(x.P.Now(), updateFLOPs(st.cfg.Spec.TotalParams()))
		if w.real() {
			w.unpackGrads()
			st.sgds[r.ID].Step(w.net, x.It, 1/float32(st.workerCount()))
		}
		x.P.WaitUntil(end)
	})
	// (No health gate here: integrity in real-compute mode is
	// restricted to the root-broadcast designs, whose parameter
	// broadcast is what heals replicas after a rollback.)
	g.Add(0, sched.Generic, "", "post-update", func(x *sched.Ctx) {
		if st.isRoot(r) {
			if w.real() {
				//scaffe:nolint hotpath losses is pre-sized to cfg.Iterations in run(); append never regrows
				st.losses = append(st.losses, w.loss())
			}
			st.maybeEvaluate(x.R, w, x.It)
		}
		st.noteCompleted(x.It)
		st.membershipTick(x.R)
	})
}

// nodeSink routes scheduler spans into the run's accounting: lane-0
// spans accumulate into the rank's Phases (preserving the original
// semantics of "time the main thread spends blocked per phase") and
// every span lands on the trace recorder with its node label.
type nodeSink struct {
	st   *runState
	rank int
	ph   *Phases
}

func (s *nodeSink) NodeSpan(lane int, kind sched.Kind, phase, label string, start, end sim.Time) {
	if lane == 0 {
		s.ph.add(phase, end-start)
	}
	s.st.cfg.Trace.AddNode(s.rank, phase, label, start, end)
}
