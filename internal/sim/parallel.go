package sim

// This file implements conservative parallel-lookahead execution: the
// event kernel shards same-instant proc resumes across goroutines while
// staying bit-identical to sequential replay (DESIGN.md §13).
//
// The conservative window is one instant wide. A batch is formed from
// the maximal consecutive run of due events that
//
//   - are proc resumes (evResume / evResumeIf with a live guard),
//   - are all due at exactly the current instant T,
//   - target procs in pairwise-distinct non-negative groups, and
//   - do not target the proc currently driving the loop.
//
// Any other event — a timer callback, a transfer delivery, a resume of
// a serial-only (group < 0) proc, a second resume of an already-batched
// group — cuts the batch and is processed by the ordinary loop in its
// exact (time, seq) position.
//
// Each batched proc then runs its segment speculatively on its own
// goroutine. The speculative part may touch only its group's state;
// kernel-visible side effects (self-wakes, guarded resumes, completion
// fires) are recorded on the proc's stage instead of the shared event
// queue. Three things end the speculative part:
//
//   - a park at a point where the sequential kernel provably parks too
//     (a future-time wake, an un-fired wait re-checked under the
//     staleness rule in Proc.Wait),
//   - a call to Proc.Exclusive — the escape hatch taken before any
//     touch of cross-group state (MPI mailboxes, shared link
//     resources, the trace sink), which defers the rest of the segment
//     to the serialized commit lane, or
//   - the proc finishing (Spawn's defer stages the bookkeeping).
//
// After every speculative part has yielded, the commit loop walks the
// batch in pop order — which is exactly sequential order — and, per
// segment: replays the staged events (assigning them the same sequence
// numbers sequential execution would have), then, if the segment was
// demoted, resumes the proc serially so its tail runs with full state
// visibility. Because groups partition speculative state, a segment's
// speculative part reads exactly the state it would have read
// sequentially, and the commit loop emits exactly the schedule
// sequential execution emits; traces, totals, and failure order are
// therefore bit-identical at any GOMAXPROCS.
//
// The link-latency lookahead from the topology layer guards the one
// remaining channel between groups: a staged event targeting a
// different group must land at least the minimum lookahead after the
// batch instant (a transfer can not land earlier than the wire allows).
// The commit loop asserts this, so a group-policy bug fails loudly
// instead of silently reordering.

// parSegment is one proc's slice of a batch: the staging buffer for
// kernel-visible side effects plus the flags the commit loop applies in
// order. Each proc embeds one (Proc.seg), so batches allocate nothing
// in steady state.
type parSegment struct {
	p      *Proc
	staged []event
	// tail marks a segment demoted by Exclusive: the proc is blocked at
	// the demotion point and the commit loop must resume it serially.
	tail bool
	// finishing/failure carry a proc exit (return, kill, or panic) that
	// happened during the speculative part; the commit loop applies the
	// live-count decrement and first-failure-wins in batch order.
	finishing bool
	failure   error
}

// add stages a kernel-visible side effect; e.at carries the target
// time (the sequence number is assigned at commit). The buffer grows
// to the segment's high-water mark once and is reused ever after.
//
//scaffe:parallel
func (s *parSegment) add(e event) {
	//scaffe:nolint hotpath staged list reaches the segment high-water mark once, then reuses capacity
	s.staged = append(s.staged, e)
}

// parKernel is the kernel's parallel-lookahead state.
type parKernel struct {
	k *Kernel
	// width caps the number of concurrent segments per batch (the
	// configured worker count).
	width int
	// lookahead is the minimum cross-group event horizon, from
	// topology.MinLookahead. Batches are only safe because no staged
	// cross-group event can land closer than this.
	lookahead Duration
	batch     []*parSegment
	// stamp[g] == stampGen marks group g as already represented in the
	// batch being formed; bumping stampGen clears all marks in O(1).
	stamp    []uint64
	stampGen uint64
	// batches/segments count committed batches and their segments, for
	// tests and utilization reporting.
	batches  uint64
	segments uint64
}

// SetParallel arms conservative parallel-lookahead execution with up to
// `workers` concurrent segments per batch. lookahead must be the
// minimum cross-group event horizon (topology.Cluster.MinLookahead for
// MPI workloads); parallel execution stays disarmed — the kernel runs
// its ordinary sequential loop — when workers <= 1 or lookahead <= 0,
// because a zero horizon would let one group schedule into another
// within the batch instant. Call before Run; procs opt in via
// Proc.SetGroup.
func (k *Kernel) SetParallel(workers int, lookahead Duration) {
	if workers <= 1 || lookahead <= 0 {
		k.par = nil
		return
	}
	k.par = &parKernel{k: k, width: workers, lookahead: lookahead}
}

// Parallel returns the armed batch width (0 = sequential).
func (k *Kernel) Parallel() int {
	if k.par == nil {
		return 0
	}
	return k.par.width
}

// Batches returns how many parallel batches have been committed and
// how many segments they carried in total.
func (k *Kernel) Batches() (batches, segments uint64) {
	if k.par == nil {
		return 0, 0
	}
	return k.par.batches, k.par.segments
}

// peekEvent returns the event popEvent would return, without removing
// it. Same two-tier rule: a due calendar event precedes the ring.
func (k *Kernel) peekEvent() (event, bool) {
	if t, ok := k.cal.minTime(); ok && t <= k.now {
		return k.cal.peek(), true
	}
	if k.nowQ.len() > 0 {
		return k.nowQ.peek(), true
	}
	if k.cal.count > 0 {
		return k.cal.peek(), true
	}
	return event{}, false
}

// batchable reports whether ev (a live proc resume already popped by
// the loop) should open a batch: its target is grouped and the next
// due event is a same-instant resume of a different group. Singleton
// batches are pointless — the ordinary handoff is cheaper — so they
// never form.
//
//scaffe:hotpath
func (pk *parKernel) batchable(ev event) bool {
	if ev.p.group < 0 {
		return false
	}
	pe, ok := pk.k.peekEvent()
	if !ok || pe.at != ev.at {
		return false
	}
	if pe.kind != evResume && pe.kind != evResumeIf {
		return false
	}
	return pe.p.group >= 0 && pe.p.group != ev.p.group
}

// stamped reports whether group g already owns a segment in the batch
// being formed.
func (pk *parKernel) stamped(g int) bool {
	return g < len(pk.stamp) && pk.stamp[g] == pk.stampGen
}

// addSeg claims group g's slot in the forming batch and enrolls p's
// embedded segment.
func (pk *parKernel) addSeg(p *Proc) {
	for p.group >= len(pk.stamp) {
		pk.stamp = append(pk.stamp, 0)
	}
	pk.stamp[p.group] = pk.stampGen
	s := &p.seg
	s.p = p
	pk.batch = append(pk.batch, s)
}

// runBatch forms a batch seeded by first (already popped), runs every
// segment's speculative part concurrently, and commits in exact global
// order. self is the proc driving the loop (nil from Run); its own
// resumes never join a batch. On return every batched event has been
// fully processed.
func (pk *parKernel) runBatch(first event, self *Proc) {
	k := pk.k
	pk.stampGen++
	pk.batch = pk.batch[:0]
	pk.addSeg(first.p)

	// Form: extend with the consecutive run of conforming events.
	// Dissolving events (a resume of a finished proc, a stale guarded
	// resume) are popped and dropped exactly as the ordinary loop
	// drops them; anything else ends the batch.
	for len(pk.batch) < pk.width {
		pe, ok := k.peekEvent()
		if !ok || pe.at != k.now {
			break
		}
		if pe.kind == evResume {
			if pe.p.finished {
				k.popEvent()
				continue
			}
		} else if pe.kind == evResumeIf {
			if pe.p.finished || !pe.p.waitArmed || pe.p.waitSeq != pe.aux {
				k.popEvent()
				continue
			}
		} else {
			break
		}
		p := pe.p
		if p == self || p.group < 0 || pk.stamped(p.group) {
			break
		}
		k.popEvent()
		pk.addSeg(p)
	}

	// Speculate: release every segment's proc at once, then wait for
	// each to yield (park, demote, or finish). The procs run on their
	// own goroutines; this goroutine just holds the baton.
	for _, s := range pk.batch {
		s.p.stage = s
	}
	for _, s := range pk.batch {
		s.p.wake <- struct{}{}
	}
	for _, s := range pk.batch {
		<-s.p.yield
	}

	// Commit: batch order is pop order is sequential order.
	for _, s := range pk.batch {
		p := s.p
		p.stage = nil
		for i := range s.staged {
			e := s.staged[i]
			s.staged[i] = event{}
			if (e.kind == evResume || e.kind == evResumeIf) &&
				e.p.group >= 0 && e.p.group != p.group && e.at < k.now+pk.lookahead {
				panic("sim: parallel segment staged a cross-group event inside the lookahead window (group policy violation)")
			}
			k.schedule(e.at, e)
		}
		s.staged = s.staged[:0]
		if s.tail {
			s.tail = false
			k.serialResume = true
			k.resume(p)
			k.serialResume = false
		}
		if s.finishing {
			s.finishing = false
			k.live--
			if s.failure != nil {
				if k.failure == nil {
					k.failure = s.failure
				}
				s.failure = nil
			}
		}
	}
	pk.batches++
	pk.segments += uint64(len(pk.batch))
}
