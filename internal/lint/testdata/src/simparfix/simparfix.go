// Package simparfix seeds //scaffe:parallel violations in the shapes
// the parallel-lookahead kernel forbids (DESIGN.md §13): speculative
// segments that reach package-level state or signal channels other
// than the kernel's wake/yield/home batons. The cold twins repeat the
// constructs without the annotation and must stay silent — shared
// state is fine in serial context.
package simparfix

// batchCounter is the package-level state a speculative segment must
// never touch: two segments bumping it concurrently race, and even a
// clean read can observe another group's half-committed work.
var batchCounter int

var resultFeed = make(chan int, 8)

type proc struct {
	wake  chan struct{}
	yield chan struct{}
	ticks int
}

//scaffe:parallel
func speculateLeaky(p *proc) {
	batchCounter++ // want `package-level variable batchCounter`
	p.ticks++
	p.yield <- struct{}{} // mailbox baton: allowed
}

//scaffe:parallel
func speculatePublishes(p *proc, out chan int) {
	out <- p.ticks // want `non-mailbox channel`
}

//scaffe:parallel
func speculateFeeds(p *proc) {
	resultFeed <- p.ticks // want `package-level variable resultFeed` `non-mailbox channel`
}

// commitLeaky is the cold twin: same constructs, no annotation, no
// diagnostics — the commit lane runs serially and may touch anything.
func commitLeaky(p *proc, out chan int) {
	batchCounter++
	out <- p.ticks
	resultFeed <- p.ticks
}

func drain(p *proc) {
	for range resultFeed {
		p.ticks--
	}
	<-p.wake
}
