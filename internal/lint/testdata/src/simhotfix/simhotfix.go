// Package simhotfix seeds hotpath-pass violations in the shape the
// event-kernel refactor removed from the real tree: pooled records
// whose get path allocates instead of recycling, completion fires that
// capture closures, and generation counters boxed through interfaces.
// The cold twins repeat the constructs without diagnostics, matching
// the convention that pool-miss paths live in unannotated helpers.
package simhotfix

import "fmt"

type completion struct {
	gen   uint64
	fired bool
}

type request struct {
	done completion
	next *request
}

type rank struct {
	pool    []*request
	pending []func()
}

//scaffe:hotpath
func getRequestLeaky(r *rank) *request {
	if len(r.pool) == 0 {
		return &request{} // want `&T\{\} escapes to the heap`
	}
	req := r.pool[len(r.pool)-1]
	r.pool = r.pool[:len(r.pool)-1]
	return req
}

//scaffe:hotpath
func fireLeaky(r *rank, req *request) {
	req.done.fired = true
	r.pending = append(r.pending, func() { req.done.gen++ }) // want `append may grow` `function literal`
}

func trace(args ...interface{}) { _ = args }

//scaffe:hotpath
func snapshotLeaky(req *request) {
	trace(req.done.gen) // want `boxes it on the heap`
	if req.next != nil {
		panic(fmt.Sprintf("request %p still queued", req)) // panic path: exempt
	}
}

//scaffe:hotpath
func getRequestClean(r *rank) *request {
	if len(r.pool) == 0 {
		return newRequest() // pool-miss path lives in a cold helper
	}
	req := r.pool[len(r.pool)-1]
	r.pool[len(r.pool)-1] = nil
	r.pool = r.pool[:len(r.pool)-1]
	req.done.gen++
	req.done.fired = false
	return req
}

// newRequest refills the pool on a miss; since PR 9 the hotpath
// obligation propagates here from getRequestClean, so the deliberate
// allocation needs the declaration-level escape hatch.
//
//scaffe:coldpath pool-miss refill allocates by design; steady state hits the pool
func newRequest() *request {
	return &request{}
}

func putRequest(r *rank, req *request) { // unannotated: release may grow the pool
	req.next = nil
	r.pool = append(r.pool, req)
}
