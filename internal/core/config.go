// Package core implements the S-Caffe training engine and its
// co-designed iteration pipelines: SC-B (blocking CUDA-aware
// broadcast/reduce), SC-OB (multi-stage non-blocking data propagation
// overlapped with the forward pass), and SC-OBR (helper-thread
// gradient aggregation overlapped with the backward pass, combined
// with the hierarchical reduce). It also implements the comparison
// systems of the evaluation: single-node multi-threaded Caffe, a
// CNTK-like host-staged MPI framework, and an Inspur-style
// parameter server.
package core

import (
	"errors"
	"fmt"

	"scaffe/internal/coll"
	"scaffe/internal/data"
	"scaffe/internal/fault"
	"scaffe/internal/layers"
	"scaffe/internal/models"
	"scaffe/internal/sim"
	"scaffe/internal/topology"
	"scaffe/internal/trace"
)

// ErrConfig tags configuration errors: callers (the CLI) distinguish
// them from runtime failures with errors.Is.
var ErrConfig = errors.New("invalid configuration")

// ErrUnrecovered tags runs that injected failures killed outright —
// no survivors were left to shrink the world and continue.
var ErrUnrecovered = errors.New("unrecovered failure")

// Design selects the training pipeline.
type Design int

const (
	// SCB is S-Caffe Basic: blocking CUDA-aware Bcast + Reduce on the
	// packed buffers (Section 4.1).
	SCB Design = iota
	// SCOB adds multi-stage non-blocking data propagation: all
	// per-layer Ibcasts posted up front, each Wait placed just before
	// the consuming layer's forward pass (Section 4.2).
	SCOB
	// SCOBR adds helper-thread gradient aggregation overlapped with
	// the backward pass (Section 4.3); pair it with coll.Tuned for the
	// full co-design.
	SCOBR
	// CaffeMT is the single-node multi-threaded Caffe baseline
	// (reduction tree over CUDA IPC, single shared data reader,
	// intra-node only).
	CaffeMT
	// CNTKLike is an MPI framework without CUDA-awareness or overlap:
	// gradients staged to the host and allreduced there with CPU
	// arithmetic (Microsoft CNTK's 32-bit SGD style).
	CNTKLike
	// ParamServer is the Inspur-Caffe-style design: one GPU rank
	// serves parameters and aggregates every worker's gradients
	// sequentially.
	ParamServer
	// ModelParallel is the MPI-Caffe-style design of Table 1: the
	// network's layers are partitioned across ranks and activations
	// flow rank-to-rank, so there is no gradient aggregation at all —
	// but the pipeline's sequential dependency limits utilization
	// (Section 3.1's argument for the data-parallel approach).
	ModelParallel
	// SCOBRF is SC-OBR with FireCaffe-style bucketed aggregation:
	// consecutive layers' gradients fuse into fixed-size buckets
	// (Config.BucketBytes, defaulting to 4 MiB) before the multi-stage
	// reduction, trading a little overlap granularity for far fewer
	// reduce operations on many-small-layer models like GoogLeNet.
	SCOBRF
)

func (d Design) String() string {
	switch d {
	case SCB:
		return "SC-B"
	case SCOB:
		return "SC-OB"
	case SCOBR:
		return "SC-OBR"
	case CaffeMT:
		return "Caffe"
	case CNTKLike:
		return "CNTK-like"
	case ParamServer:
		return "ParamServer"
	case ModelParallel:
		return "ModelParallel"
	case SCOBRF:
		return "SC-OBR-F"
	}
	return "unknown"
}

// SourceKind selects the storage backend for training data.
type SourceKind int

const (
	// MemorySource serves batches at zero I/O cost.
	MemorySource SourceKind = iota
	// LMDBSource reads through the shared-environment LMDB model
	// (scalability cliff past 64 readers) — the "S-Caffe-L" series.
	LMDBSource
	// ImageDataSource reads image files from the parallel filesystem
	// model — the "S-Caffe" series that scales to 160 GPUs.
	ImageDataSource
)

func (s SourceKind) String() string {
	switch s {
	case MemorySource:
		return "memory"
	case LMDBSource:
		return "lmdb"
	case ImageDataSource:
		return "imagedata"
	}
	return "unknown"
}

// Config describes one training run.
type Config struct {
	// Spec is the model's cost geometry (required).
	Spec *models.Spec
	// RealNet optionally builds a real-compute network per rank; when
	// set, forward/backward/update perform actual float32 math and
	// Result carries losses and final parameters.
	RealNet func(batch int, seed int64) *layers.Net
	// Dataset supplies real samples (required when RealNet is set).
	Dataset data.Dataset

	// Nodes and GPUsPerNode shape the cluster. Zero values default to
	// ceil(GPUs/16) nodes of 16 GPUs (Cluster-A geometry).
	Nodes, GPUsPerNode int
	// Params overrides hardware constants (nil = defaults).
	Params *topology.Params
	// GPUs is the number of solvers (MPI ranks).
	GPUs int

	// GlobalBatch is the effective batch size. Under strong scaling
	// (Weak=false, the paper's presented mode) it is divided across
	// GPUs; under weak scaling each GPU gets the full value.
	GlobalBatch int
	// Weak selects weak scaling (the paper's `-scal weak`).
	Weak bool
	// Iterations is the number of training iterations.
	Iterations int

	// Design selects the pipeline; Reduce/ReduceOpts pick the gradient
	// aggregation algorithm for the S-Caffe designs.
	Design     Design
	Reduce     coll.Algorithm
	ReduceOpts coll.Options
	// Source picks the data backend.
	Source SourceKind
	// BucketBytes, when positive, coalesces consecutive layers'
	// gradients into buckets of at least this size before the
	// multi-stage reduction (SC-OBR and SC-OBR-F) — the
	// gradient-fusion optimization FireCaffe introduced and later
	// frameworks (PyTorch DDP) standardized. Zero reduces strictly
	// per layer under SC-OBR, as the paper does; under SC-OBR-F it
	// defaults to 4 MiB.
	BucketBytes int64

	// BaseLR, Momentum, WeightDecay are the solver hyper-parameters
	// (real-compute mode). Zero BaseLR defaults to 0.01.
	BaseLR, Momentum, WeightDecay float64
	// LRPolicy selects the learning-rate schedule: "fixed" (default),
	// "step", "inv", or "poly", with Gamma/Power/StepSize as in Caffe.
	LRPolicy string
	// Gamma, Power, StepSize parameterize the LR policy.
	Gamma, Power float64
	StepSize     int

	// TestInterval, when positive, runs a held-out evaluation pass on
	// the root solver every TestInterval iterations (real mode; the
	// paper obtains accuracy "during the Testing phase").
	TestInterval int
	// TestBatches is the number of root-batch-sized test passes per
	// evaluation (default 2).
	TestBatches int
	// SnapshotEvery, when positive, writes a parameter snapshot every
	// N iterations (real mode).
	SnapshotEvery int
	// SnapshotPrefix is the snapshot filename prefix (Caffe
	// convention: prefix_iter_N).
	SnapshotPrefix string
	// ResumeFrom restores the root solver's parameters from a
	// snapshot file before training (real mode).
	ResumeFrom string
	// StartIteration, with ResumeFrom, continues training from an
	// absolute iteration: the learning-rate schedule and data order
	// pick up where the snapshotted run left off. Zero trains from
	// the beginning.
	StartIteration int

	// Faults scripts deterministic fault injection (see
	// internal/fault). An empty schedule runs the standard fault-free
	// code paths byte-for-byte; a non-empty one arms failure
	// detection, elastic shrink/restore recovery, and the fault
	// report in Result.
	Faults fault.Schedule
	// FaultTimeout overrides the failure-detection deadline quantum
	// (default fault.DefaultTimeout).
	FaultTimeout sim.Duration
	// MaxVirtualTime, when positive, aborts the run if virtual time
	// reaches this ceiling — the chaos harness's no-wedge guarantee: a
	// run that neither finishes nor dies ErrUnrecovered within the
	// ceiling is a wedged schedule, surfaced as a kernel deadline
	// error instead of an infinite loop. Zero runs unbounded.
	MaxVirtualTime sim.Duration

	// EvictFactor, when >= 1, arms the straggler-aware membership
	// policy: the root tracks each member's iteration-completion EWMA
	// and evicts a rank whose EWMA exceeds EvictFactor times the
	// member median for EvictWindow consecutive iterations. The
	// evicted rank is readmitted through the join path once a recover
	// event restores it. Zero leaves the policy off (the grow plane
	// stays armed for scripted join/evict events regardless).
	EvictFactor float64
	// EvictWindow is the number of consecutive over-threshold
	// iterations before an eviction fires (default 3).
	EvictWindow int
	// JoinRetries caps admission-wait deadlines per announce before a
	// joiner withdraws, cools down, and re-queues (default
	// fault.DefaultJoinRetries).
	JoinRetries int

	// Integrity arms the silent-data-corruption plane: per-chunk
	// checksums on collective receives and broadcast edges, plus (in
	// real mode) the root's numeric-health watchdog with micro-
	// rollback. IntegrityOff runs the exact seed code paths.
	Integrity IntegrityMode
	// IntegrityRetries caps micro-rollback retries of one tripped
	// iteration before its batch is quarantined (update skipped).
	// Zero defaults to 2; negative quarantines on the first trip.
	IntegrityRetries int
	// RetransmitBudget caps per-chunk retransmissions before a
	// corrupted transfer escalates to a communicator revocation
	// (default 2).
	RetransmitBudget int
	// DivergeFactor is the watchdog's divergence trip ratio: a loss
	// (or squared gradient norm) more than this factor above its
	// running EWMA is treated as corruption (default 1e6 — far above
	// any healthy excursion).
	DivergeFactor float64

	// Trace, when non-nil, records every phase span of every rank for
	// timeline export (see internal/trace).
	Trace *trace.Recorder

	// CaptureFinalParams copies the root solver's packed parameter
	// vector into Result.FinalParams after the last update (real mode
	// only). Opt-in because the copy is a full model's worth of floats
	// — ~240 MB for AlexNet — that pure throughput runs never read.
	CaptureFinalParams bool

	// SimParallel selects the simulation kernel's execution mode: 0
	// (the default) auto-sizes to the host's cores (runtime.NumCPU), 1
	// forces the sequential event loop, and N >= 2 arms conservative
	// parallel lookahead with up to N concurrent per-rank segments
	// (sim.Kernel.SetParallel; DESIGN.md §13). Either mode produces
	// bit-identical traces, totals, and losses; negative values are
	// rejected. Parallel execution engages only for the fault-free MPI
	// data-parallel designs — fault- or integrity-armed runs and the
	// shared-state baselines always use the sequential loop.
	SimParallel int

	// Seed makes parameter init and data order deterministic.
	Seed int64
	// QueueDepth is the per-reader prefetch depth (default 2).
	QueueDepth int
	// DeviceMemory overrides per-GPU memory in bytes (default 12 GB).
	DeviceMemory int64
}

func (c *Config) validate() error {
	if c.Spec == nil {
		return fmt.Errorf("core: config needs a model Spec")
	}
	if c.GPUs < 1 {
		return fmt.Errorf("core: need at least 1 GPU, got %d", c.GPUs)
	}
	if c.GlobalBatch < 1 {
		return fmt.Errorf("core: need a positive batch size, got %d", c.GlobalBatch)
	}
	if c.Iterations < 1 {
		return fmt.Errorf("core: need at least 1 iteration, got %d", c.Iterations)
	}
	if c.RealNet != nil && c.Dataset == nil {
		return fmt.Errorf("core: real-compute mode needs a Dataset")
	}
	if c.RealNet == nil && (c.TestInterval > 0 || c.SnapshotEvery > 0 || c.ResumeFrom != "") {
		return fmt.Errorf("core: test/snapshot/resume options need real-compute mode (RealNet)")
	}
	if c.StartIteration != 0 && (c.StartIteration < 0 || c.StartIteration >= c.Iterations) {
		return fmt.Errorf("core: start iteration %d outside [0,%d)", c.StartIteration, c.Iterations)
	}
	if c.StartIteration > 0 && c.ResumeFrom == "" {
		return fmt.Errorf("core: StartIteration needs ResumeFrom (a snapshot to continue from)")
	}
	if len(c.Faults) > 0 {
		switch c.Design {
		case SCB, SCOB, SCOBR, SCOBRF, CNTKLike:
		default:
			return fmt.Errorf("core: fault injection supports the MPI data-parallel designs only, not %s", c.Design)
		}
	}
	if c.EvictFactor != 0 {
		if c.EvictFactor < 1 {
			return fmt.Errorf("core: eviction factor must be >= 1 (multiples of the median iteration EWMA), got %g", c.EvictFactor)
		}
		switch c.Design {
		case SCB, SCOB, SCOBR, SCOBRF, CNTKLike:
		default:
			return fmt.Errorf("core: the straggler-eviction policy supports the MPI data-parallel designs only, not %s", c.Design)
		}
	}
	switch c.Integrity {
	case IntegrityOff, IntegrityDetect, IntegrityRecover:
	default:
		return fmt.Errorf("core: unknown integrity mode %d", int(c.Integrity))
	}
	if c.Integrity != IntegrityOff {
		switch c.Design {
		case SCB, SCOB, SCOBR, SCOBRF:
		case CNTKLike:
			if c.RealNet != nil {
				return fmt.Errorf("core: integrity in real-compute mode needs a root-broadcast design (the parameter broadcast heals replicas after a rollback), not %s", c.Design)
			}
		default:
			return fmt.Errorf("core: integrity plane supports the MPI data-parallel designs only, not %s", c.Design)
		}
	}
	for i, ev := range c.Faults {
		switch ev.Kind {
		case fault.BitFlip:
			if c.RealNet == nil {
				return fmt.Errorf("core: fault event %d: bitflip corrupts resident parameters and needs real-compute mode (RealNet)", i)
			}
			if c.Integrity == IntegrityOff {
				return fmt.Errorf("core: fault event %d: bitflip needs the integrity plane armed (Integrity detect or recover)", i)
			}
		case fault.CorruptWire:
			if c.Integrity == IntegrityOff {
				return fmt.Errorf("core: fault event %d: corrupt-wire needs the integrity plane armed (Integrity detect or recover)", i)
			}
		}
	}
	workers := c.GPUs
	if c.Design == ParamServer {
		workers--
	}
	if !c.Weak && workers > 0 && c.GlobalBatch%workers != 0 {
		return fmt.Errorf("core: strong scaling needs batch %d divisible by %d workers", c.GlobalBatch, workers)
	}
	switch c.Design {
	case SCB, SCOB, SCOBR, SCOBRF, CaffeMT, CNTKLike, ParamServer, ModelParallel:
	default:
		return fmt.Errorf("core: unknown design %d", int(c.Design))
	}
	if c.Design == ModelParallel && c.RealNet != nil {
		return fmt.Errorf("core: model-parallel design is timing-only (no real-compute support)")
	}
	if c.Design == ParamServer {
		if c.GPUs < 2 {
			return fmt.Errorf("core: parameter server needs at least 2 GPUs (1 server + workers)")
		}
		if c.GPUs > 16 {
			return fmt.Errorf("core: parameter-server design unsupported beyond 16 GPUs (execution hangs)")
		}
		if c.RealNet != nil {
			return fmt.Errorf("core: parameter-server design is timing-only (no real-compute support)")
		}
	}
	return nil
}

// normalize fills defaulted fields in place: reader queue depth,
// cluster geometry (Cluster-A: 16-GPU nodes, as many as the ranks
// need), and SC-OBR-F's bucket size. Nonsense values — fields that
// zero-defaulting would otherwise silently accept and that panic or
// hang far downstream — are rejected with descriptive errors. Every
// entry point goes through validateAndDefault, so code after it sees
// only concrete, sane values.
func (c *Config) normalize() error {
	switch {
	case c.QueueDepth < 0:
		return fmt.Errorf("core: reader queue depth must be positive, got %d", c.QueueDepth)
	case c.Nodes < 0:
		return fmt.Errorf("core: node count must be positive, got %d", c.Nodes)
	case c.GPUsPerNode < 0:
		return fmt.Errorf("core: GPUs per node must be positive, got %d", c.GPUsPerNode)
	case c.BucketBytes < 0:
		return fmt.Errorf("core: bucket size must be positive, got %d bytes", c.BucketBytes)
	case c.TestInterval < 0:
		return fmt.Errorf("core: test interval must be positive, got %d", c.TestInterval)
	case c.TestBatches < 0:
		return fmt.Errorf("core: test batch count must be positive, got %d", c.TestBatches)
	case c.SnapshotEvery < 0:
		return fmt.Errorf("core: snapshot interval must be positive, got %d", c.SnapshotEvery)
	case c.DeviceMemory < 0:
		return fmt.Errorf("core: device memory must be positive, got %d bytes", c.DeviceMemory)
	case c.FaultTimeout < 0:
		return fmt.Errorf("core: fault-detection timeout must be positive, got %v", c.FaultTimeout)
	case c.MaxVirtualTime < 0:
		return fmt.Errorf("core: virtual-time ceiling must be positive, got %v", c.MaxVirtualTime)
	case c.BaseLR < 0:
		return fmt.Errorf("core: base learning rate must be positive, got %g", c.BaseLR)
	case c.RetransmitBudget < 0:
		return fmt.Errorf("core: chunk retransmit budget must be positive, got %d", c.RetransmitBudget)
	case c.DivergeFactor < 0:
		return fmt.Errorf("core: divergence factor must be positive, got %g", c.DivergeFactor)
	case c.SimParallel < 0:
		return fmt.Errorf("core: simulation worker count must be non-negative (0 = auto, 1 = sequential), got %d", c.SimParallel)
	case c.EvictWindow < 0:
		return fmt.Errorf("core: eviction window must be positive, got %d", c.EvictWindow)
	case c.JoinRetries < 0:
		return fmt.Errorf("core: join retry budget must be positive, got %d", c.JoinRetries)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 2
	}
	if c.IntegrityRetries == 0 {
		c.IntegrityRetries = 2
	}
	if c.RetransmitBudget == 0 {
		c.RetransmitBudget = 2
	}
	if c.DivergeFactor == 0 {
		c.DivergeFactor = 1e6
	}
	if c.GPUsPerNode == 0 {
		c.GPUsPerNode = 16
	}
	if c.Nodes == 0 {
		c.Nodes = (c.GPUs + c.GPUsPerNode - 1) / c.GPUsPerNode
	}
	if c.Design == SCOBRF && c.BucketBytes == 0 {
		c.BucketBytes = 4 << 20
	}
	if c.EvictFactor > 0 && c.EvictWindow == 0 {
		c.EvictWindow = 3
	}
	if c.JoinRetries == 0 {
		c.JoinRetries = fault.DefaultJoinRetries
	}
	return nil
}

// validateAndDefault validates the config, fills defaults, and then
// checks the constraints that only make sense on a normalized config
// (cluster capacity, Caffe's single-node limit, the fault schedule's
// rank and node targets).
func (c *Config) validateAndDefault() error {
	if err := c.validate(); err != nil {
		return err
	}
	if err := c.normalize(); err != nil {
		return err
	}
	if c.Nodes*c.GPUsPerNode < c.GPUs {
		return fmt.Errorf("core: cluster %dx%d too small for %d GPUs", c.Nodes, c.GPUsPerNode, c.GPUs)
	}
	if c.Design == CaffeMT && c.GPUs > c.GPUsPerNode {
		return fmt.Errorf("core: Caffe is single-node multi-threaded; %d GPUs exceed the node's %d", c.GPUs, c.GPUsPerNode)
	}
	if err := c.Faults.Validate(c.GPUs, c.Nodes); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

// localBatch returns the per-GPU batch for worker count n.
func (c *Config) localBatch(workers int) int {
	if c.Weak {
		return c.GlobalBatch
	}
	b := c.GlobalBatch / workers
	if b < 1 {
		b = 1
	}
	return b
}

// Phases is the per-phase time breakdown measured at the root solver:
// the time the root's main thread spends blocked in each phase, summed
// over iterations. Overlap shows up as a phase shrinking while total
// stays dominated by compute.
type Phases struct {
	DataWait    sim.Duration
	Propagation sim.Duration
	Forward     sim.Duration
	Backward    sim.Duration
	Aggregation sim.Duration
	Update      sim.Duration
}

// Total sums the accounted phases.
func (p Phases) Total() sim.Duration {
	return p.DataWait + p.Propagation + p.Forward + p.Backward + p.Aggregation + p.Update
}

// add accumulates a span into the named phase's bucket; unknown phase
// names (wire spans and other diagnostics) are not part of the
// blocked-time breakdown and are ignored.
func (p *Phases) add(phase string, d sim.Duration) {
	switch phase {
	case "data":
		p.DataWait += d
	case "propagation":
		p.Propagation += d
	case "forward":
		p.Forward += d
	case "backward":
		p.Backward += d
	case "aggregation":
		p.Aggregation += d
	case "update":
		p.Update += d
	}
}

// Result reports one run's outcome.
type Result struct {
	Design      string
	Model       string
	GPUs        int
	GlobalBatch int
	LocalBatch  int
	Iterations  int
	Source      string
	ReduceAlg   string

	// TotalTime is the virtual wall-clock of the whole run.
	TotalTime sim.Time
	// Phases is the root solver's blocked-time breakdown.
	Phases Phases
	// SamplesPerSec is throughput in trained samples per virtual
	// second.
	SamplesPerSec float64

	// Losses holds the per-iteration training loss (real mode only).
	Losses []float32
	// Accuracies holds the held-out accuracy of each test pass (real
	// mode with TestInterval set).
	Accuracies []float64
	// SnapshotFiles lists snapshots written during the run.
	SnapshotFiles []string
	// FinalParams is the root solver's packed parameter vector after
	// the last update (real mode with Config.CaptureFinalParams only).
	FinalParams []float32

	// Fault is the fault-injection outcome — injected events,
	// detection latencies, recovery times, survivor count. Nil for
	// fault-free runs.
	Fault *fault.Report

	// Integrity is the integrity plane's outcome — corruptions
	// detected, chunks retransmitted, watchdog trips, rollbacks,
	// quarantined batches. Nil when the plane is off.
	Integrity *IntegrityReport

	// HCAUtilization is the mean busy fraction of the InfiniBand
	// adapters over the run (both directions), a view into how
	// communication-bound the configuration is.
	HCAUtilization float64
	// PCIeUtilization is the same for the GPUs' PCIe links.
	PCIeUtilization float64
}

// TimePerIter returns the mean iteration time.
func (r *Result) TimePerIter() sim.Duration {
	return sim.Duration(int64(r.TotalTime) / int64(r.Iterations))
}
