package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var (
	osReadFile  = os.ReadFile
	osWriteFile = os.WriteFile
)

func TestSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.scaffemodel")
	want := &Snapshot{Model: "tiny", Iteration: 41, Params: []float32{1.5, -2, 0, 3.25}}
	if err := WriteSnapshot(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Model != want.Model || got.Iteration != want.Iteration || len(got.Params) != len(want.Params) {
		t.Fatalf("snapshot = %+v", got)
	}
	for i := range want.Params {
		if got.Params[i] != want.Params[i] {
			t.Fatalf("param %d = %v, want %v", i, got.Params[i], want.Params[i])
		}
	}
}

func TestReadSnapshotRejectsGarbage(t *testing.T) {
	if _, err := ReadSnapshot(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file read")
	}
	path := filepath.Join(t.TempDir(), "junk")
	if err := WriteSnapshot(path, &Snapshot{Model: "m", Params: []float32{1}}); err != nil {
		t.Fatal(err)
	}
	// Truncate the file mid-params.
	raw := readFile(t, path)
	writeFile(t, path, raw[:len(raw)-2])
	if _, err := ReadSnapshot(path); err == nil {
		t.Error("truncated snapshot read")
	}
}

func TestTrainingWithSnapshotsAndResume(t *testing.T) {
	dir := t.TempDir()
	cfg := tinyRealConfig(2, 16, 6)
	cfg.SnapshotEvery = 3
	cfg.SnapshotPrefix = filepath.Join(dir, "tiny")
	full, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.SnapshotFiles) != 2 {
		t.Fatalf("snapshots = %v, want 2 files", full.SnapshotFiles)
	}
	if !strings.HasSuffix(full.SnapshotFiles[0], "tiny_iter_3.scaffemodel") {
		t.Errorf("snapshot name = %s", full.SnapshotFiles[0])
	}
	// The final snapshot holds the final parameters.
	snap, err := ReadSnapshot(full.SnapshotFiles[1])
	if err != nil {
		t.Fatal(err)
	}
	for i := range snap.Params {
		if snap.Params[i] != full.FinalParams[i] {
			t.Fatal("final snapshot diverges from final parameters")
		}
	}

	// Resume from the mid-run snapshot: params must load and training
	// must proceed.
	cfg2 := tinyRealConfig(2, 16, 2)
	cfg2.ResumeFrom = full.SnapshotFiles[0]
	resumed, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed.Losses) != 2 {
		t.Fatalf("resumed run produced %d losses", len(resumed.Losses))
	}
}

func TestResumeValidation(t *testing.T) {
	cfg := tinyRealConfig(2, 16, 2)
	cfg.ResumeFrom = filepath.Join(t.TempDir(), "nope")
	if _, err := Run(cfg); err == nil {
		t.Error("resume from missing file should error")
	}
	// Wrong model.
	path := filepath.Join(t.TempDir(), "wrong.scaffemodel")
	if err := WriteSnapshot(path, &Snapshot{Model: "other", Params: make([]float32, 4)}); err != nil {
		t.Fatal(err)
	}
	cfg.ResumeFrom = path
	if _, err := Run(cfg); err == nil {
		t.Error("resume from wrong model should error")
	}
}

func TestTimingModeRejectsEvalOptions(t *testing.T) {
	spec := tinyRealConfig(2, 16, 2).Spec
	cfg := timingConfig(spec, 2, 16, 2)
	cfg.TestInterval = 1
	if _, err := Run(cfg); err == nil {
		t.Error("TestInterval without RealNet should error")
	}
}

func TestTestPhaseReportsAccuracy(t *testing.T) {
	cfg := tinyRealConfig(4, 32, 30)
	cfg.TestInterval = 10
	cfg.TestBatches = 4
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Accuracies) != 3 {
		t.Fatalf("accuracies = %v, want 3 test passes", res.Accuracies)
	}
	for _, a := range res.Accuracies {
		if a < 0 || a > 1 {
			t.Fatalf("accuracy %v out of range", a)
		}
	}
	// Training on learnable data: final accuracy should beat chance
	// (4 classes -> 0.25).
	if res.Accuracies[len(res.Accuracies)-1] <= 0.3 {
		t.Errorf("final accuracy %.2f barely above chance", res.Accuracies[len(res.Accuracies)-1])
	}
}

func TestLRPolicies(t *testing.T) {
	cfg := tinyRealConfig(2, 16, 4)
	cfg.LRPolicy = "step"
	cfg.StepSize = 2
	cfg.Gamma = 0.5
	if _, err := Run(cfg); err != nil {
		t.Fatalf("step policy: %v", err)
	}
	cfg.LRPolicy = "inv"
	cfg.Gamma, cfg.Power = 1e-4, 0.75
	if _, err := Run(cfg); err != nil {
		t.Fatalf("inv policy: %v", err)
	}
	cfg.LRPolicy = "poly"
	cfg.Power = 1
	if _, err := Run(cfg); err != nil {
		t.Fatalf("poly policy: %v", err)
	}
	cfg.LRPolicy = "exotic"
	if _, err := Run(cfg); err == nil {
		t.Error("unknown policy should error")
	}
	cfg.LRPolicy = "step"
	cfg.StepSize = 0
	if _, err := Run(cfg); err == nil {
		t.Error("step policy without StepSize should error")
	}
}

func TestUtilizationReported(t *testing.T) {
	spec := tinyRealConfig(2, 16, 2).Spec
	cfg := timingConfig(spec, 8, 64, 3)
	cfg.Design = CNTKLike
	cfg.Nodes, cfg.GPUsPerNode = 2, 4 // spread across nodes so the HCAs see traffic
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PCIeUtilization < 0 || res.PCIeUtilization > 1 {
		t.Errorf("PCIe utilization = %v", res.PCIeUtilization)
	}
	if res.HCAUtilization < 0 || res.HCAUtilization > 1 {
		t.Errorf("HCA utilization = %v", res.HCAUtilization)
	}
	if res.HCAUtilization == 0 {
		t.Error("multi-node CNTK run should use the HCAs")
	}
}

// file helpers for the snapshot tests.
func readFile(t *testing.T, path string) []byte {
	t.Helper()
	raw, err := osReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func writeFile(t *testing.T, path string, b []byte) {
	t.Helper()
	if err := osWriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}
