package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"scaffe/internal/coll"
	"scaffe/internal/core"
	"scaffe/internal/data"
	"scaffe/internal/fault"
	"scaffe/internal/layers"
	"scaffe/internal/models"
	"scaffe/internal/sim"
)

// Faults sweeps crash rate (MTBF) against snapshot interval for the
// elastic fault-tolerance extension: survivors of each injected crash
// shrink the world, roll back to the latest snapshot, and continue.
// The table is the simulator's version of the classic Young/Daly
// tradeoff — snapshotting often bounds the replay a rollback repeats,
// snapshotting rarely wastes less fault-free time; the optimum moves
// with the failure rate. (Snapshot writes here are off the virtual
// clock, so overhead isolates the recovery cost: detection, shrink,
// and replay.)
func Faults(o Options) (*Table, error) {
	iters := o.iters(48)
	if iters < 16 {
		iters = 16
	}
	dir, err := os.MkdirTemp("", "scaffe-faults")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	mk := func(name string, snapshotEvery int) core.Config {
		cfg := core.Config{
			Spec:        models.SpecFromNet(models.BuildTinyNet(1, 1)),
			RealNet:     models.BuildTinyNet,
			Dataset:     data.NewSynthetic("tiny", layers.Shape{C: 3, H: 8, W: 8}, 4, 1<<16, 11),
			GPUs:        4,
			Nodes:       2,
			GPUsPerNode: 2,
			GlobalBatch: 32,
			Iterations:  iters,
			Design:      core.SCOB,
			Reduce:      coll.Binomial,
			Source:      core.MemorySource,
			Seed:        7,
			BaseLR:      0.05,
			Momentum:    0.9,
		}
		if snapshotEvery > 0 {
			cfg.SnapshotEvery = snapshotEvery
			cfg.SnapshotPrefix = filepath.Join(dir, name)
		}
		return cfg
	}

	// Calibrate: a fault-free run fixes the virtual timescale, so
	// crash times derive deterministically from the config instead of
	// being hardcoded against the cluster model.
	base, err := core.Run(mk("base", 0))
	if err != nil {
		return nil, err
	}
	baseT := base.TotalTime

	t := &Table{
		ID:    "faults",
		Title: fmt.Sprintf("Crash rate vs snapshot interval: recovery overhead of elastic fault tolerance (tiny net, 4 GPUs, %d iterations)", iters),
		Columns: []string{"MTBF", "snapshot every", "crashes", "survivors",
			"mean detect", "mean recover", "total time", "overhead"},
	}

	// Crash ranks from the top so the root (and with it the loss
	// record) survives every scenario.
	crashRanks := []int{3, 2}
	for _, mtbf := range []sim.Duration{sim.Duration(baseT) / 2, sim.Duration(baseT) / 4} {
		var crashes fault.Schedule
		for i, rank := range crashRanks {
			at := sim.Time(mtbf) * sim.Time(i+1)
			if at >= sim.Time(float64(baseT)*0.9) {
				break
			}
			crashes = append(crashes, fault.Event{At: at, Kind: fault.Crash, Rank: rank})
		}
		for _, every := range []int{0, iters / 12, iters / 6, iters / 3} {
			name := fmt.Sprintf("m%v-e%d", mtbf, every)
			cfg := mk(name, every)
			cfg.Faults = crashes
			res, err := core.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("faults experiment (%s): %w", name, err)
			}
			rep := res.Fault
			var detect, recover sim.Duration
			for _, rec := range rep.Recoveries {
				detect += rec.DetectionLatency()
				recover += rec.RecoveryTime()
			}
			if n := len(rep.Recoveries); n > 0 {
				detect /= sim.Duration(n)
				recover /= sim.Duration(n)
			}
			everyLabel := "never"
			if every > 0 {
				everyLabel = fmt.Sprintf("%d iters", every)
			}
			overhead := 100 * (float64(res.TotalTime) - float64(baseT)) / float64(baseT)
			t.AddRow(mtbf.String(), everyLabel,
				fmt.Sprintf("%d", rep.Crashes), fmt.Sprintf("%d", rep.Survivors),
				detect.String(), recover.String(), res.TotalTime.String(),
				fmt.Sprintf("%+.1f%%", overhead))
		}
	}
	t.Note("Each crash is detected by deadline expiry on a survivor's wait, the communicator is revoked ULFM-style, and the survivors shrink the world, re-shard the batch, and roll back to the latest snapshot (\"never\" forces a cold restart from initialization). Frequent snapshots bound the replayed span, so overhead falls as the interval shrinks — the Young/Daly tradeoff, with the optimum moving toward shorter intervals as MTBF drops.")
	t.Note("All runs are bit-deterministic: the same schedule yields identical detection latencies, recovery points, and losses on every run.")
	return t, nil
}
