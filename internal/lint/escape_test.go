package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEscapeGateSeeded compiles the self-contained escfix module and
// checks the gate finds the seeded escapes, attributing the one in the
// unannotated leaf to the //scaffe:hotpath root through the chain.
func TestEscapeGateSeeded(t *testing.T) {
	src := filepath.Join(moduleRoot(t), "internal", "lint", "testdata", "escfix")
	dir := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	findings, err := EscapeCheck(dir, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) < 2 {
		t.Fatalf("got %d escape finding(s), want >= 2: %v", len(findings), findings)
	}
	var leaf, grow bool
	for _, f := range findings {
		if f.Func == "escfix.newItem" && strings.Contains(f.Msg, "escapes to heap") {
			leaf = true
			if !strings.Contains(f.Chain, "escfix.Step") {
				t.Errorf("leaf escape does not name the annotated root: chain %q", f.Chain)
			}
		}
		if f.Func == "escfix.Grow" && strings.Contains(f.Msg, "make([]int, n)") {
			grow = true
			if f.Chain != "" {
				t.Errorf("directly annotated root should have no chain, got %q", f.Chain)
			}
		}
	}
	if !leaf {
		t.Errorf("no escape attributed to escfix.newItem: %v", findings)
	}
	if !grow {
		t.Errorf("no make escape attributed to escfix.Grow: %v", findings)
	}
}

// TestEscapeGateRepoMatchesBaseline is the gate's self-check: the real
// tree's hot-set escapes must equal the checked-in lint.baseline —
// no new escapes, no stale entries.
func TestEscapeGateRepoMatchesBaseline(t *testing.T) {
	root := moduleRoot(t)
	findings, err := EscapeCheck(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	content, err := os.ReadFile(filepath.Join(root, "lint.baseline"))
	if err != nil {
		t.Fatal(err)
	}
	fresh, stale := DiffBaseline(findings, ParseBaseline(string(content)))
	for _, f := range fresh {
		t.Errorf("new hot-set escape not in lint.baseline: %s", f)
	}
	for _, k := range stale {
		t.Errorf("stale lint.baseline entry (compiler no longer reports it): %s", k)
	}
}

// TestBaselineRoundTrip pins the baseline file format: format, parse,
// and diff agree, and keys carry no line numbers.
func TestBaselineRoundTrip(t *testing.T) {
	findings := []EscapeFinding{
		{File: "a/x.go", Line: 10, Func: "a.F", Msg: "&T{...} escapes to heap"},
		{File: "a/x.go", Line: 99, Func: "a.F", Msg: "&T{...} escapes to heap"}, // same key, other line
		{File: "b/y.go", Line: 3, Func: "b.G", Chain: "b.Root → b.G", Msg: "moved to heap: v"},
	}
	content := FormatBaseline(findings)
	keys := ParseBaseline(content)
	if len(keys) != 2 {
		t.Fatalf("got %d baseline keys, want 2 (line numbers must not split keys):\n%s", len(keys), content)
	}
	fresh, stale := DiffBaseline(findings, keys)
	if len(fresh) != 0 || len(stale) != 0 {
		t.Fatalf("round trip not clean: fresh=%v stale=%v", fresh, stale)
	}
	fresh, _ = DiffBaseline(append(findings, EscapeFinding{File: "c/z.go", Func: "c.H", Msg: "x escapes to heap"}), keys)
	if len(fresh) != 1 || fresh[0].Func != "c.H" {
		t.Fatalf("new escape not detected: %v", fresh)
	}
}
