package experiments

import (
	"fmt"

	"scaffe/internal/coll"
	"scaffe/internal/core"
	"scaffe/internal/models"
)

// Figure13 regenerates the SC-B vs SC-OB comparison: the overlapped
// multi-stage Ibcast design hides data propagation under the forward
// pass (the paper reports up to 15% end-to-end improvement).
func Figure13(o Options) (*Table, error) {
	spec := models.GoogLeNet()
	iters := o.iters(10)
	gpus := o.cap([]int{16, 32, 64})
	t := &Table{
		ID:      "figure13",
		Title:   "SC-B vs SC-OB: propagation blocked time and total time (GoogLeNet)",
		Columns: []string{"GPUs", "SC-B prop", "SC-B total", "SC-OB prop", "SC-OB total", "Improvement"},
	}
	var best float64
	for _, g := range gpus {
		mk := func(d core.Design) core.Config {
			cfg := scaffeConfig(spec, g, 8*g, iters)
			cfg.Design = d
			cfg.Reduce = coll.Tuned
			cfg.Source = core.MemorySource // isolate communication behaviour
			return cfg
		}
		scb, err := core.Run(mk(core.SCB))
		if err != nil {
			return nil, fmt.Errorf("figure13 SC-B @%d: %w", g, err)
		}
		scob, err := core.Run(mk(core.SCOB))
		if err != nil {
			return nil, fmt.Errorf("figure13 SC-OB @%d: %w", g, err)
		}
		imp := 1 - float64(scob.TotalTime)/float64(scb.TotalTime)
		if imp > best {
			best = imp
		}
		// Propagation blocked time is reported for a non-root rank
		// (the root never blocks on its own broadcast); we use the
		// root's phase table for totals and cite the rank-average for
		// propagation via the SC-B root (which does block).
		t.AddRow(fmt.Sprint(g),
			scb.Phases.Propagation.String(), scb.TotalTime.String(),
			scob.Phases.Propagation.String(), scob.TotalTime.String(),
			fmt.Sprintf("%.1f%%", imp*100))
	}
	t.Note("Paper: up to 15%% improvement for SC-OB over SC-B; measured up to %.1f%%.", best*100)
	return t, nil
}

// Table2 regenerates the HR co-design table: SC-B with the stock MV2
// reduce vs SC-B(+HR) under CC-8, CB-4, and CB-8, reporting
// aggregation time, total time, and both speedups (paper: 2.3x
// aggregation and 1.25x overall for CB-8 at scale).
func Table2(o Options) (*Table, error) {
	spec := models.CaffeNet()
	iters := o.iters(5)
	gpus := 160
	if o.MaxGPUs > 0 && o.MaxGPUs < gpus {
		gpus = o.MaxGPUs
	}
	t := &Table{
		ID:      "table2",
		Title:   fmt.Sprintf("SC-B vs SC-B(+HR), CaffeNet, %d GPUs", gpus),
		Columns: []string{"Algorithm/Communicator", "Design", "Aggregation", "Total", "Agg. speedup", "Overall speedup"},
	}
	mk := func(alg coll.Algorithm, chain int) core.Config {
		// Local batch 256 puts aggregation near the paper's ~36% share
		// of iteration time (Table 2: 40.6 of 113.6).
		cfg := scaffeConfig(spec, gpus, 256*gpus, iters)
		cfg.Design = core.SCB
		cfg.Reduce = alg
		cfg.ReduceOpts = coll.DefaultOptions()
		cfg.ReduceOpts.ChainSize = chain
		cfg.Source = core.MemorySource
		return cfg
	}
	base, err := core.Run(mk(coll.MV2Baseline, 8))
	if err != nil {
		return nil, err
	}
	t.AddRow("N/A", "SC-B", base.Phases.Aggregation.String(), base.TotalTime.String(), "1", "1")
	var cb8Agg, cb8Total float64
	for _, v := range []struct {
		label string
		alg   coll.Algorithm
		chain int
	}{
		{"CC-8", coll.ChainChain, 8},
		{"CB-4", coll.ChainBinomial, 4},
		{"CB-8", coll.ChainBinomial, 8},
	} {
		res, err := core.Run(mk(v.alg, v.chain))
		if err != nil {
			return nil, fmt.Errorf("table2 %s: %w", v.label, err)
		}
		aggSp := float64(base.Phases.Aggregation) / float64(res.Phases.Aggregation)
		totSp := float64(base.TotalTime) / float64(res.TotalTime)
		if v.label == "CB-8" {
			cb8Agg, cb8Total = aggSp, totSp
		}
		t.AddRow(v.label, "SC-B (+HR)", res.Phases.Aggregation.String(), res.TotalTime.String(),
			fmt.Sprintf("%.2fx", aggSp), fmt.Sprintf("%.2fx", totSp))
	}
	t.Note("Paper: CB-8 gives 2.3x aggregation speedup and 1.25x overall; measured %.2fx / %.2fx.", cb8Agg, cb8Total)
	t.Note("In the contention-free simulator CC-8 stays ahead of CB-8 even at 160 processes; on the paper's hardware process skew penalizes long chains, which is why its tuned table prefers CB beyond 64 processes.")
	return t, nil
}

// SCOBR regenerates the Section 6.6 text result: the helper-thread
// overlapped aggregation (SC-OBR) vs SC-B on CaffeNet at 8 and 16 GPUs
// (paper: 20% and 12% improvement respectively).
func SCOBR(o Options) (*Table, error) {
	spec := models.CaffeNet()
	iters := o.iters(10)
	t := &Table{
		ID:      "scobr",
		Title:   "SC-OBR vs SC-B, CaffeNet (Section 6.6)",
		Columns: []string{"GPUs", "SC-B total", "SC-OBR total", "Improvement"},
	}
	for _, g := range o.cap([]int{8, 16}) {
		mk := func(d core.Design) core.Config {
			cfg := scaffeConfig(spec, g, 16*g, iters)
			cfg.Design = d
			cfg.Reduce = coll.Tuned
			cfg.Source = core.MemorySource
			return cfg
		}
		scb, err := core.Run(mk(core.SCB))
		if err != nil {
			return nil, err
		}
		obr, err := core.Run(mk(core.SCOBR))
		if err != nil {
			return nil, err
		}
		imp := 1 - float64(obr.TotalTime)/float64(scb.TotalTime)
		t.AddRow(fmt.Sprint(g), scb.TotalTime.String(), obr.TotalTime.String(), fmt.Sprintf("%.1f%%", imp*100))
	}
	t.Note("Paper: 20%% improvement at 8 GPUs and 12%% at 16 GPUs for CaffeNet.")
	return t, nil
}

// CostModel evaluates Eq. (1) and Eq. (2) of Section 5 and verifies
// the crossovers the paper derives, alongside simulator measurements.
func CostModel(Options) (*Table, error) {
	p := coll.CostParams{Alpha: 10e-6, Beta: 10e9}
	t := &Table{
		ID:      "costmodel",
		Title:   "Eq.(1)/(2): T(Bin)=log2(P)·t(b) vs T(CC)=(n+P−2)·t(c), n=8",
		Columns: []string{"P", "b", "T(Bin)", "T(CC)", "Winner"},
	}
	for _, procs := range []int{4, 8, 16, 64, 160} {
		for _, mb := range []float64{4, 64, 256} {
			b := mb * 1e6
			tb := coll.BinomialTime(p, procs, b)
			tc := coll.ChainTime(p, procs, 8, b)
			winner := "chain"
			if tb < tc {
				winner = "binomial"
			}
			t.AddRow(fmt.Sprint(procs), fmt.Sprintf("%.0fMB", mb),
				fmt.Sprintf("%.2fms", tb*1e3), fmt.Sprintf("%.2fms", tc*1e3), winner)
		}
	}
	for _, mb := range []float64{4, 64, 256} {
		x := coll.CrossoverProcs(p, 8, mb*1e6, 512)
		t.Note("Crossover for b=%.0fMB: binomial wins for P >= %d.", mb, x)
	}
	t.Note("Paper: for small P and large b, T(CC) << T(Bin); for large P and small b, T(CC) >> T(Bin) — hence the two-level hybrid (Section 5).")
	return t, nil
}
