package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Pkg is one parsed and type-checked package ready for analysis.
type Pkg struct {
	// Path is the import path ("scaffe/internal/coll").
	Path string
	// Dir is the directory the sources were read from.
	Dir string
	// Fset positions every file of the load (shared across packages).
	Fset *token.FileSet
	// Files are the package's non-test files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's expression/object tables.
	Info *types.Info
}

// Loader parses and type-checks packages of one module from source.
// It implements types.Importer: imports with the module's path prefix
// resolve to module directories; everything else (the standard
// library) goes through go/importer's source importer, so the whole
// load works offline against GOROOT sources with no x/tools
// dependency.
type Loader struct {
	// ModuleDir is the module root (the directory holding go.mod).
	ModuleDir string
	// ModulePath is the module path declared in go.mod.
	ModulePath string

	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*Pkg
}

var (
	sharedMu      sync.Mutex
	sharedLoaders = make(map[string]*Loader)
)

// SharedLoader returns a process-wide cached loader for moduleDir.
// Parsing and type-checking dominate the linter's wall time, and the
// fixture harness plus the repo self-check call Analyze a dozen times
// over the same module — sharing the loader means each package
// type-checks once per process. Callers must not mutate sources
// between calls within one process (the CLI is one-shot; tests do
// not).
func SharedLoader(moduleDir string) (*Loader, error) {
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, err
	}
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if l, ok := sharedLoaders[abs]; ok {
		return l, nil
	}
	l, err := NewLoader(abs)
	if err != nil {
		return nil, err
	}
	sharedLoaders[abs] = l
	return l, nil
}

// NewLoader creates a loader rooted at moduleDir, reading the module
// path from its go.mod.
func NewLoader(moduleDir string) (*Loader, error) {
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleDir:  abs,
		ModulePath: modPath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Pkg),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Import implements types.Importer for the type-checker: module
// packages load from source under ModuleDir, the rest delegates to the
// stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.LoadDir(filepath.Join(l.ModuleDir, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// Load resolves the given patterns ("./...", "./dir/...", "./dir",
// "dir", or a module import path) and returns the matched packages,
// loaded and type-checked, sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Pkg, error) {
	seen := make(map[string]bool)
	var pkgs []*Pkg
	add := func(dir, path string) error {
		if seen[path] {
			return nil
		}
		seen[path] = true
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return err
		}
		pkgs = append(pkgs, pkg)
		return nil
	}
	for _, pat := range patterns {
		pat = strings.TrimSuffix(filepath.ToSlash(pat), "/")
		if after, ok := strings.CutPrefix(pat, l.ModulePath); ok && (after == "" || after[0] == '/') {
			pat = "." + after
		}
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
		} else if pat == "..." {
			recursive, pat = true, "."
		}
		root := filepath.Join(l.ModuleDir, filepath.FromSlash(pat))
		if !recursive {
			if !hasGoFiles(root) {
				return nil, fmt.Errorf("lint: no Go files in %s", root)
			}
			if err := add(root, l.importPathFor(root)); err != nil {
				return nil, err
			}
			continue
		}
		var dirs []string
		err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				dirs = append(dirs, p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		sort.Strings(dirs)
		for _, dir := range dirs {
			if err := add(dir, l.importPathFor(dir)); err != nil {
				return nil, err
			}
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// importPathFor maps a directory under the module root to its import
// path.
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil || rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// hasGoFiles reports whether dir directly contains non-test Go files.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && isAnalyzedFile(e.Name()) {
			return true
		}
	}
	return false
}

// isAnalyzedFile reports whether a file name belongs to the analyzed
// (non-test) part of a package.
func isAnalyzedFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// LoadDir parses and type-checks the package in dir under the given
// import path. Results are cached by import path, so a package
// analyzed directly and imported by another loads once.
func (l *Loader) LoadDir(dir, path string) (*Pkg, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && isAnalyzedFile(e.Name()) {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Pkg{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}
