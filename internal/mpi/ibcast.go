package mpi

import (
	"fmt"
	"math"

	"scaffe/internal/gpu"
	"scaffe/internal/sim"
	"scaffe/internal/topology"
)

// The Ibcast engine models MPI-3 non-blocking broadcast with
// network/hardware offload: once every participating rank has posted
// its call, data moves down a binomial tree driven entirely by kernel
// callbacks — the rank processes keep computing, which is what gives
// SC-OB its overlap. Matching across ranks follows MPI semantics:
// the i-th Ibcast call on a communicator at every rank belongs to the
// same operation.
//
// Operation records and their per-rank slices are pooled on the world,
// and tree edges are scheduled as pooled sim.Runnable records, so a
// steady-state broadcast allocates nothing. Completion is tracked by
// posted/fired counters instead of scanning requests: a rank's request
// may be waited, released, and recycled long before the op's other
// subtrees drain, so the op must never read a request after firing it.

type bcastKey struct {
	comm int
	seq  int
}

type bcastOp struct {
	c     *Comm
	key   bcastKey
	root  int // group rank
	bytes int64
	mode  topology.TransferMode

	posted  []bool
	postBuf []*gpu.Buffer
	ready   []bool
	readyAt []sim.Time
	reqs    []*Request

	postedCount int // ranks that have posted their call
	firedCount  int // requests fired (each rank's exactly once)

	rootSends     int // children edges not yet scheduled from the root
	rootCompleted bool

	// epoch stamps the membership epoch the op was created in; edges
	// landing against a later epoch dissolve (see World.bumpEpoch).
	epoch int
}

// getBcastOp draws an n-rank operation record from the world free
// list, clearing recycled per-rank state; the miss/regrow path lives
// in growBcastOp.
//
//scaffe:hotpath
func (w *World) getBcastOp(n int) *bcastOp {
	var op *bcastOp
	if m := len(w.bcastPool); m > 0 {
		op = w.bcastPool[m-1]
		w.bcastPool[m-1] = nil
		w.bcastPool = w.bcastPool[:m-1]
	}
	if op == nil || cap(op.posted) < n {
		op = growBcastOp(op, n)
	} else {
		op.posted = op.posted[:n]
		op.postBuf = op.postBuf[:n]
		op.ready = op.ready[:n]
		op.readyAt = op.readyAt[:n]
		op.reqs = op.reqs[:n]
		for i := 0; i < n; i++ {
			op.posted[i], op.ready[i] = false, false
			op.postBuf[i], op.reqs[i] = nil, nil
			op.readyAt[i] = 0
		}
	}
	op.postedCount, op.firedCount = 0, 0
	op.rootSends, op.rootCompleted = 0, false
	return op
}

// growBcastOp allocates the per-rank slices for an n-rank op.
//
//scaffe:coldpath pool-miss/regrow path; steady state reuses pooled ops of the right size
func growBcastOp(op *bcastOp, n int) *bcastOp {
	if op == nil {
		op = &bcastOp{}
	}
	op.posted = make([]bool, n)
	op.postBuf = make([]*gpu.Buffer, n)
	op.ready = make([]bool, n)
	op.readyAt = make([]sim.Time, n)
	op.reqs = make([]*Request, n)
	return op
}

func (w *World) putBcastOp(op *bcastOp) {
	op.c = nil
	//scaffe:nolint hotpath pool release; append reuses capacity freed by the matching get
	w.bcastPool = append(w.bcastPool, op)
}

// Ibcast posts this rank's participation in a non-blocking broadcast
// rooted at group rank `root` of comm c. On the root, buf supplies the
// data; elsewhere it receives it. The returned request completes when
// this rank's buffer is ready for reuse (root: all its tree sends
// done; non-root: data arrived).
//
//scaffe:hotpath
func (r *Rank) Ibcast(c *Comm, root int, buf *gpu.Buffer, mode topology.TransferMode) *Request {
	// Cross-rank entry: the world's broadcast-op table and the comm's
	// per-rank sequence counters are shared across every participant,
	// so a batched segment serializes here (see Isend).
	r.Proc.Exclusive()
	r.ftCheck()
	me := c.Rank(r)
	key := bcastKey{comm: c.id, seq: c.bcastSeq[me]}
	c.bcastSeq[me]++

	op := r.W.bcastOps[key]
	if op == nil {
		op = r.W.getBcastOp(c.Size())
		op.c, op.key, op.root = c, key, root
		op.bytes, op.mode = buf.Bytes, mode
		op.epoch = r.W.epoch
		r.W.bcastOps[key] = op
	}
	if op.root != root {
		panic(fmt.Sprintf("mpi: Ibcast root mismatch on comm %d op %d: %d vs %d", c.id, key.seq, op.root, root))
	}
	if op.bytes != buf.Bytes {
		panic(fmt.Sprintf("mpi: Ibcast size mismatch on comm %d op %d: %d vs %d bytes", c.id, key.seq, op.bytes, buf.Bytes))
	}

	req := r.getRequest(buf)
	op.posted[me] = true
	op.postedCount++
	op.postBuf[me] = buf
	op.reqs[me] = req

	if me == root {
		op.rootSends = op.countChildren(root)
		op.markReady(r.W, me, r.Now())
		if op.rootSends == 0 && !op.rootCompleted {
			op.rootCompleted = true
			op.fireReq(root)
		}
	} else {
		// A newly posted child may unblock a ready parent's edge.
		parent := op.parent(me)
		if op.ready[parent] {
			op.scheduleEdge(r.W, parent, me)
		}
	}
	op.maybeComplete(r.W)
	return req
}

// Bcast is the blocking broadcast: Ibcast + Wait.
func (r *Rank) Bcast(c *Comm, root int, buf *gpu.Buffer, mode topology.TransferMode) {
	r.Wait(r.Ibcast(c, root, buf, mode))
}

// relative converts a group rank to root-relative order.
func (op *bcastOp) relative(groupRank int) int {
	n := op.c.Size()
	return (groupRank - op.root + n) % n
}

func (op *bcastOp) absolute(rel int) int {
	n := op.c.Size()
	return (rel + op.root) % n
}

// parent returns the binomial-tree parent of a non-root group rank.
func (op *bcastOp) parent(groupRank int) int {
	rel := op.relative(groupRank)
	for mask := 1; mask < op.c.Size(); mask <<= 1 {
		if rel&mask != 0 {
			return op.absolute(rel - mask)
		}
	}
	panic("mpi: bcast parent of root")
}

// childMask returns the largest-subtree mask for a group rank: its
// binomial-tree children are rel+m for m = mask>>1, mask>>2, ... 1.
func (op *bcastOp) childMask(groupRank int) int {
	n := op.c.Size()
	rel := op.relative(groupRank)
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			break
		}
		mask <<= 1
	}
	return mask
}

// countChildren returns the number of binomial-tree children.
func (op *bcastOp) countChildren(groupRank int) int {
	n := op.c.Size()
	rel := op.relative(groupRank)
	kids := 0
	for m := op.childMask(groupRank) >> 1; m > 0; m >>= 1 {
		if rel+m < n {
			kids++
		}
	}
	return kids
}

// fireReq fires group rank i's request exactly once and drops the
// reference: the request belongs to its rank, which may recycle it the
// moment its waiter resumes, so the op must never touch it again.
//
//scaffe:hotpath
func (op *bcastOp) fireReq(i int) {
	req := op.reqs[i]
	if req == nil {
		return
	}
	op.reqs[i] = nil
	op.firedCount++
	req.Done.Fire()
}

// maybeComplete reclaims the op record once every rank has posted and
// every request has fired.
//
//scaffe:hotpath
func (op *bcastOp) maybeComplete(w *World) {
	if op.postedCount == len(op.posted) && op.firedCount == len(op.posted) {
		delete(w.bcastOps, op.key)
		w.putBcastOp(op)
	}
}

// markReady records that a rank's buffer holds the data as of time t
// and schedules edges to every already-posted child, largest subtree
// first (the send order MPI uses).
//
//scaffe:hotpath
func (op *bcastOp) markReady(w *World, groupRank int, t sim.Time) {
	op.ready[groupRank] = true
	op.readyAt[groupRank] = t
	n := op.c.Size()
	rel := op.relative(groupRank)
	for m := op.childMask(groupRank) >> 1; m > 0; m >>= 1 {
		if rel+m < n {
			child := op.absolute(rel + m)
			if op.posted[child] {
				op.scheduleEdge(w, groupRank, child)
			}
		}
	}
}

// bcastEdge is the pooled payload of one parent->child tree transfer's
// landing event. w is carried on the edge because a ghost edge can
// outlive its op record (whose comm reference is cleared on pooling).
type bcastEdge struct {
	w             *World
	op            *bcastOp
	parent, child int
	try           int
	isRootEdge    bool
	// replay marks an edge already perturbed once (held or stashed);
	// ghost marks a duplicate landing, which re-copies the payload iff
	// the op is still live under its key but NEVER commits the edge
	// (committing twice would corrupt rootSends and re-mark readiness).
	replay   bool
	ghost    bool
	ghostKey bcastKey
}

//scaffe:hotpath
func (w *World) getBcastEdge() *bcastEdge {
	n := len(w.edgePool)
	if n == 0 {
		return newBcastEdge()
	}
	e := w.edgePool[n-1]
	w.edgePool[n-1] = nil
	w.edgePool = w.edgePool[:n-1]
	return e
}

// newBcastEdge is getBcastEdge's pool-miss path.
//
//scaffe:coldpath pool-miss construction; steady state hits the free list
func newBcastEdge() *bcastEdge { return &bcastEdge{} }

func (w *World) putBcastEdge(e *bcastEdge) {
	*e = bcastEdge{}
	//scaffe:nolint hotpath pool release; append reuses capacity freed by the matching get
	w.edgePool = append(w.edgePool, e)
}

// RunEvent implements sim.Runnable: the edge's transfer has landed.
// The record is released before committing, because committing the
// final edge can reclaim the whole op.
//
//scaffe:hotpath
func (e *bcastEdge) RunEvent(k *sim.Kernel) {
	if pl := e.w.Fault; pl != nil {
		w := e.w
		if e.ghost {
			// A duplicate landing after the original committed: re-copy
			// only while the op is still live under its key, and never
			// commit — the original already did.
			if op := w.bcastOps[e.ghostKey]; op == e.op {
				if src, dst := op.postBuf[e.parent], op.postBuf[e.child]; src != nil && dst != nil {
					dst.CopyFrom(src)
				}
			}
			w.putBcastEdge(e)
			return
		}
		if e.op.epoch != w.epoch {
			pl.NoteStaleDissolved()
			w.putBcastEdge(e)
			return
		}
		if pl.WireArmed() && !e.replay && !w.perturbEdge(e, k.Now()) {
			return
		}
	}
	op, parent, child, try, isRootEdge := e.op, e.parent, e.child, e.try, e.isRootEdge
	w := e.w
	w.putBcastEdge(e)
	if src, dst := op.postBuf[parent], op.postBuf[child]; src != nil && dst != nil {
		dst.CopyFrom(src)
	}
	if w.integrityArmed() {
		op.verifyEdge(w, parent, child, try, isRootEdge)
		return
	}
	op.commitEdge(w, child, isRootEdge)
}

// scheduleEdge books the parent->child transfer (parent data and child
// buffer are both available) and wires up delivery.
//
//scaffe:hotpath
func (op *bcastOp) scheduleEdge(w *World, parent, child int) {
	from := op.c.rankAt(parent)
	to := op.c.rankAt(child)
	at := op.readyAt[parent]
	if pt := w.K.Now(); pt > at {
		at = pt
	}
	_, end := w.Cluster.Transfer(at, from.Dev.ID, to.Dev.ID, op.bytes, op.mode)
	e := w.getBcastEdge()
	e.w = w
	e.op, e.parent, e.child, e.try, e.isRootEdge = op, parent, child, 0, parent == op.root
	w.K.AtRun(end, e)
}

// commitEdge records a delivered parent->child edge: the child's
// request fires, its buffer becomes a source for its own children, and
// the root's request fires once its last child edge lands.
//
//scaffe:hotpath
func (op *bcastOp) commitEdge(w *World, child int, isRootEdge bool) {
	op.fireReq(child)
	op.markReady(w, child, w.K.Now())
	if isRootEdge {
		op.rootSends--
		if op.rootSends == 0 && !op.rootCompleted {
			op.rootCompleted = true
			op.fireReq(op.root)
		}
	}
	op.maybeComplete(w)
}

// verifyEdge is commitEdge behind a checksum: it applies any armed
// wire corruption on the link, compares the child's payload against
// the parent's, and either commits, retransmits (recover mode, within
// budget), or escalates by revoking the communicator. It runs in
// kernel context, so escalation cannot panic — the waiting ranks
// observe the revocation through their deadline-sliced waits.
func (op *bcastOp) verifyEdge(w *World, parent, child, try int, isRootEdge bool) {
	integ := w.Integrity
	from, to := op.c.rankAt(parent), op.c.rankAt(child)
	dst := op.postBuf[child]
	detected := false
	if integ.WireCorrupt != nil && integ.WireCorrupt(from.ID, to.ID) {
		detected = true // timing mode: poison marker only
		if dst != nil && len(dst.Data) > 0 {
			dst.Data[0] = math.Float32frombits(math.Float32bits(dst.Data[0]) ^ 1<<30)
		}
	}
	if dst != nil && dst.Data != nil {
		if src := op.postBuf[parent]; src != nil && src.Data != nil {
			detected = src.Checksum() != dst.Checksum()
		}
	}
	if !detected {
		integ.Verified++
		op.commitEdge(w, child, isRootEdge)
		return
	}
	integ.Detected++
	if integ.Mode == IntegrityDetect {
		// Observe-only: the corrupted payload flows down the tree.
		op.commitEdge(w, child, isRootEdge)
		return
	}
	if try >= integ.RetryBudget {
		integ.Escalations++
		if pl := w.Fault; pl != nil {
			// Leave the edge uncommitted: every rank blocked on this
			// broadcast times out against the revoked plane and
			// unwinds into the recovery rendezvous.
			pl.Revoke()
			return
		}
		// No fault plane to escalate to; deliver the damaged payload
		// rather than deadlock the world.
		op.commitEdge(w, child, isRootEdge)
		return
	}
	integ.Retransmits++
	op.retransmitEdge(w, parent, child, try+1, isRootEdge)
}

// retransmitEdge books a fresh parent->child transfer of the same
// payload and re-verifies on landing. The parent's buffer is stable
// for the life of the op, so re-copying it restores the clean bytes.
func (op *bcastOp) retransmitEdge(w *World, parent, child, try int, isRootEdge bool) {
	from, to := op.c.rankAt(parent), op.c.rankAt(child)
	_, end := w.Cluster.Transfer(w.K.Now(), from.Dev.ID, to.Dev.ID, op.bytes, op.mode)
	e := w.getBcastEdge()
	e.w = w
	e.op, e.parent, e.child, e.try, e.isRootEdge = op, parent, child, try, isRootEdge
	w.K.AtRun(end, e)
}
