package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The determinism pass guards the repo's bit-identical-replay
// contract: virtual time and losses must not depend on wall clocks,
// global (unseeded) randomness, or Go's randomized map iteration
// order. It applies to the simulator-facing packages (internal/sim,
// core, sched, coll, mpi) whose outputs the golden tests pin.
//
// Four rules:
//
//  1. no time.Now / time.Since — the simulator's virtual clock is the
//     only time source;
//  2. no global math/rand functions — randomness must flow from a
//     seeded *rand.Rand so runs replay;
//  3. no `range` over a map whose body feeds an ordered output (trace
//     span emission or an MPI send) — map order is randomized per run,
//     so the resulting span/wire order would differ run to run;
//  4. code that runs inside the speculative part of a
//     parallel-lookahead batch (DESIGN.md §13) — annotated
//     //scaffe:parallel, or reachable from an annotated root through
//     non-serial call-graph edges — must not touch package-level
//     variables or send on channels other than the kernel's
//     wake/yield/home mailboxes. Speculative segments run
//     concurrently; any shared state they reach must instead be
//     staged on the segment or deferred behind Proc.Exclusive.
//     Stage-guarded and post-Exclusive regions of a body are exempt:
//     they provably run on the serial commit lane (see exclusive.go).

// globalRandAllowed lists math/rand package functions that are pure
// constructors and therefore deterministic to call.
var globalRandAllowed = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func runDeterminism(prog *Program, pkg *Pkg, report func(pos token.Pos, msg string)) {
	for _, n := range prog.Graph.NodesOf(pkg) {
		chain, ok := prog.Par[n]
		if !ok {
			continue
		}
		checkParallelSection(pkg, n, chainSuffix("parallel", chain, n.Par), coldGuard(pkg, n, report))
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(pkg, node)
				if fn == nil {
					return true
				}
				if funcFrom(fn, "time", "Now", "Since") {
					report(node.Pos(), fmt.Sprintf(
						"time.%s reads the wall clock; simulator code must use virtual time (sim.Time)", fn.Name()))
				}
				if isGlobalRand(fn) {
					report(node.Pos(), fmt.Sprintf(
						"global rand.%s is unseeded and non-replayable; draw from a seeded *rand.Rand", fn.Name()))
				}
			case *ast.RangeStmt:
				checkMapRange(pkg, node, report)
			}
			return true
		})
	}
}

// isGlobalRand reports whether fn is a package-level math/rand
// function (as opposed to a method on a seeded *rand.Rand).
func isGlobalRand(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false // method on *rand.Rand / rand.Source: seeded, fine
	}
	return !globalRandAllowed[fn.Name()]
}

// checkMapRange flags `for ... range m` over a map whose body reaches
// an ordered sink: the iteration order is randomized, so whatever the
// sink records would differ between runs.
func checkMapRange(pkg *Pkg, rng *ast.RangeStmt, report func(pos token.Pos, msg string)) {
	t := pkg.Info.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sink := orderedSink(pkg, call); sink != "" {
			report(rng.Pos(), fmt.Sprintf(
				"map iteration order is randomized but this loop feeds %s, an ordered output; iterate a sorted slice instead", sink))
			return false // one diagnostic per loop/sink pair is plenty
		}
		return true
	})
}

// --- //scaffe:parallel -----------------------------------------------------

const parallelDirective = "//scaffe:parallel"

// isParallelSection reports whether a function declaration carries the
// //scaffe:parallel annotation in its doc comment.
func isParallelSection(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if text := strings.TrimSpace(c.Text); text == parallelDirective ||
			strings.HasPrefix(text, parallelDirective+" ") {
			return true
		}
	}
	return false
}

// mailboxChannels names the struct fields that are the kernel's
// sanctioned baton channels: a proc's wake/yield pair and the kernel's
// home channel. Sends on them are the cooperative handoff protocol
// itself; every other send from a speculative section reaches state
// some other segment may be touching concurrently.
var mailboxChannels = map[string]bool{"wake": true, "yield": true, "home": true}

// checkParallelSection enforces the shared-state rules inside one
// parallel-obligated function: no package-level variable access, no
// sends on non-mailbox channels. Serial-context regions (stage-guarded
// or post-Exclusive) are exempt.
func checkParallelSection(pkg *Pkg, fn *FuncNode, suffix string, report0 func(pos token.Pos, msg string)) {
	serial := serialSpans(pkg, fn.Body())
	report := func(pos token.Pos, msg string) {
		if serial.contains(pos) {
			return
		}
		report0(pos, msg+suffix)
	}
	inspectBody(fn, func(n ast.Node) {
		switch node := n.(type) {
		case *ast.Ident:
			if v := pkgLevelVar(pkg, node); v != nil {
				report(node.Pos(), fmt.Sprintf(
					"%s accesses package-level variable %s; speculative segments run concurrently — stage the effect on the segment or take Proc.Exclusive first", parallelDirective, v.Name()))
			}
		case *ast.SendStmt:
			if !isMailboxSend(node.Chan) {
				report(node.Pos(), fmt.Sprintf(
					"%s sends on a non-mailbox channel; only the kernel's wake/yield/home batons may be signalled from a speculative segment", parallelDirective))
			}
		}
	})
}

// pkgLevelVar resolves id to a package-level variable, or nil. Struct
// fields, locals, parameters, and functions all pass.
func pkgLevelVar(pkg *Pkg, id *ast.Ident) *types.Var {
	obj := pkg.Info.Uses[id]
	if obj == nil {
		obj = pkg.Info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil
	}
	return v
}

// isMailboxSend reports whether the send target is a struct field
// named as one of the kernel batons.
func isMailboxSend(ch ast.Expr) bool {
	sel, ok := ch.(*ast.SelectorExpr)
	return ok && mailboxChannels[sel.Sel.Name]
}

// orderedSink names the ordered output a call writes to, or "".
// Ordered outputs are trace-span emission (insertion-ordered event
// streams compared byte-for-byte by the golden tests) and MPI sends
// (wire order shifts matching and therefore virtual timing).
func orderedSink(pkg *Pkg, call *ast.CallExpr) string {
	fn := calleeFunc(pkg, call)
	if fn == nil {
		return ""
	}
	switch {
	case funcFrom(fn, "scaffe/internal/trace", "Add", "AddNode", "Begin"):
		return "trace." + fn.Name()
	case funcFrom(fn, "scaffe/internal/sched", "NodeSpan"):
		return "Tracer.NodeSpan"
	case funcFrom(fn, "scaffe/internal/mpi", "Isend", "Send", "SendHost", "Ibcast", "Bcast"):
		return "mpi." + fn.Name()
	case funcFrom(fn, "scaffe/internal/coll", "Reduce", "Allreduce", "RingAllreduce", "ReduceScatterGather", "BcastScatterAllgather", "Ireduce"):
		return "coll." + fn.Name()
	}
	return ""
}
