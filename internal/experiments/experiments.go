// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 6) from the simulator, as machine- and
// human-readable tables. Each experiment corresponds to one entry of
// DESIGN.md's experiment index and is exercised both by
// cmd/experiments and by the repository-level benchmarks.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one regenerated result table/figure.
type Table struct {
	// ID matches the experiment index ("figure8", "table2", ...).
	ID string
	// Title describes the experiment.
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows are the data cells.
	Rows [][]string
	// Notes carries paper-vs-measured commentary.
	Notes []string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a commentary line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	b.WriteString("\n")
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "> %s\n", n)
	}
	b.WriteString("\n")
	return b.String()
}

// Options scales experiment effort: the command-line harness runs Full
// fidelity; the benchmarks run reduced iteration counts at identical
// configuration shapes.
// benchTag tags the synthetic reductions issued by the OSU-style
// latency harnesses (reduce, skew, allreduce). One shared constant:
// the harnesses run one collective at a time, and a named tag keeps
// the mpi tag-discipline invariant repo-wide.
const benchTag = 10

type Options struct {
	// Iterations overrides the per-run training iteration count
	// (0 = experiment default).
	Iterations int
	// MaxGPUs caps the sweep (0 = experiment default, 160).
	MaxGPUs int
}

func (o Options) iters(def int) int {
	if o.Iterations > 0 {
		return o.Iterations
	}
	return def
}

func (o Options) cap(gpus []int) []int {
	if o.MaxGPUs == 0 {
		return gpus
	}
	var out []int
	for _, g := range gpus {
		if g <= o.MaxGPUs {
			out = append(out, g)
		}
	}
	return out
}

// Runner is the registry entry for one experiment.
type Runner struct {
	ID   string
	Desc string
	Run  func(Options) (*Table, error)
}

// All returns every experiment in the order of the paper's evaluation.
func All() []Runner {
	return []Runner{
		{"table1", "Design and feature space of DL frameworks", Table1},
		{"figure8", "GoogLeNet strong scaling to 160 GPUs (S-Caffe vs S-Caffe-L vs Caffe)", Figure8},
		{"figure9", "CIFAR10 quick solver scaling to 64 GPUs", Figure9},
		{"figure10", "AlexNet samples/sec: S-Caffe vs CNTK vs Inspur-Caffe (Cluster-B)", Figure10},
		{"figure11", "Reduce latency at 160 GPUs: MV2 vs CC/CB variants vs HR(Tuned)", Figure11},
		{"figure12", "Reduce latency: HR vs MVAPICH2 vs OpenMPI", Figure12},
		{"figure13", "SC-B vs SC-OB overlap of propagation and forward", Figure13},
		{"table2", "SC-B vs SC-B(+HR): aggregation and overall speedups", Table2},
		{"scobr", "SC-OBR helper-thread overlap vs SC-B (CaffeNet, Section 6.6)", SCOBR},
		{"costmodel", "Eq.(1)/(2) analytic model: chain vs binomial crossover", CostModel},
		{"weakscaling", "Extension: weak scaling (the paper's -scal weak mode)", WeakScaling},
		{"threelevel", "Extension: three-level CCB reduce (paper future work)", ThreeLevelReduce},
		{"allreduce", "Extension: HR reduce+bcast vs ring allreduce retrospective", AllreduceRetrospective},
		{"skew", "Extension: straggler sensitivity of chain vs binomial upper levels", Skew},
		{"bucketing", "Extension: SC-OBR gradient-fusion granularity sweep", Bucketing},
		{"scobrf", "Extension: SC-OBR-F fused-bucket design vs per-layer SC-OBR", SCOBRF},
		{"mpdp", "Extension: data-parallel vs model-parallel (Table 1 design space)", MPvsDP},
		{"accuracy", "Real-compute training equivalence (the §6.2 accuracy validation)", Accuracy},
		{"faults", "Extension: MTBF × snapshot-interval sweep of elastic fault tolerance", Faults},
		{"sdc", "Extension: silent-data-corruption detection and recovery drill", SDC},
		{"elastic", "Extension: churn × snapshot-interval sweep of elastic scale-up vs static shrink", Elastic},
		{"chaos", "Extension: partition-rate × heal-time sweep of split-brain fencing and rejoin", Chaos},
	}
}

// ByID returns the runner with the given id.
func ByID(id string) (Runner, error) {
	for _, r := range All() {
		if r.ID == id {
			return r, nil
		}
	}
	return Runner{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// Table1 reproduces the qualitative feature matrix (Table 1).
func Table1(Options) (*Table, error) {
	t := &Table{
		ID:    "table1",
		Title: "Design and Features Space for Modern Deep Learning Frameworks",
		Columns: []string{"Framework", "Basic MPI", "CUDA-Aware MPI", "Overlapped (NBC)",
			"Co-Designed w/ MPI", "Multi-GPU", "Parallelism", "Aggregation"},
	}
	t.AddRow("Caffe", "no", "no", "no", "no", "yes", "DP", "Reduction-Tree")
	t.AddRow("FireCaffe", "yes", "unknown", "no", "unknown", "yes", "DP", "Reduction-Tree")
	t.AddRow("MPI-Caffe", "yes", "no", "no", "no", "yes", "MP", "N/A")
	t.AddRow("CNTK", "yes", "no", "no", "no", "yes", "MP/DP", "Parameter-Server")
	t.AddRow("Inspur-Caffe", "yes", "yes", "no", "no", "yes", "DP", "Parameter-Server")
	t.AddRow("S-Caffe (this system)", "yes", "yes", "yes", "yes", "yes", "DP", "Reduction-Tree")
	t.Note("Qualitative table reproduced verbatim from the paper; this repository implements the S-Caffe row and simulates the Caffe, MPI-Caffe (model-parallel), CNTK, and Inspur-Caffe rows as baselines (see the mpdp extension experiment).")
	return t, nil
}
