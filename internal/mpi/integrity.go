package mpi

import (
	"math"

	"scaffe/internal/gpu"
	"scaffe/internal/topology"
)

// IntegrityMode selects what the runtime does with per-chunk
// checksums on receives.
type IntegrityMode int

const (
	// IntegrityOff disables checksum bookkeeping entirely; RecvSummed
	// degrades to a plain Recv with zero extra allocation.
	IntegrityOff IntegrityMode = iota
	// IntegrityDetect verifies every checksummed receive and counts
	// mismatches, but lets the corrupted payload flow on — the
	// observe-only mode behind scaffe-train's exit code 4.
	IntegrityDetect
	// IntegrityRecover retransmits a mismatched chunk up to
	// RetryBudget times, then escalates by revoking the communicator
	// (Revoked) so the fault plane's shrink/restore path takes over.
	IntegrityRecover
)

// Integrity is the world-level state of the checksum plane. WireCorrupt,
// when non-nil, is consulted once per checksummed delivery (including
// retransmits) and reports whether that transfer is corrupted — the
// deterministic injection hook wired to fault.Plane.WireCorrupt. The
// counters accumulate across the run and feed core's Result.Integrity.
type Integrity struct {
	Mode        IntegrityMode
	RetryBudget int
	WireCorrupt func(src, dst int) bool

	Verified    int // receives whose checksum matched (including after retransmit)
	Detected    int // checksum mismatches observed
	Retransmits int // chunk retransmissions booked
	Escalations int // mismatches that exhausted the budget and revoked
}

// integrityArmed reports whether checksummed receives do any work.
func (w *World) integrityArmed() bool {
	return w.Integrity != nil && w.Integrity.Mode != IntegrityOff
}

// Summed is the receive-side handle of one checksummed transfer: the
// delivered payload plus the checksum it carried on the wire. Verify
// settles it. A nil Summed (integrity off) is inert, so call sites
// need no mode branching.
type Summed struct {
	r        *Rank       // receiver
	buf      *gpu.Buffer // destination payload
	sum      uint64      // wire checksum of the delivered chunk
	src      *Rank       // sender, recorded at delivery for retransmits
	mode     topology.TransferMode
	poisoned bool      // timing-mode corruption marker (no payload to damage)
	clean    []float32 // pre-corruption payload snapshot for retransmits
}

// RecvSummed is a blocking receive that carries a per-chunk checksum.
// The returned handle must reach Verify on every path (enforced by
// scaffe-lint's mpi pass): Verify re-checksums the delivered payload
// against the wire sum and, in recover mode, retransmits the chunk on
// mismatch within the world's retry budget before escalating via
// Revoked. The handle is pooled: Verify settling it releases it, so it
// must not be used afterwards.
func (r *Rank) RecvSummed(c *Comm, from, tag int, buf *gpu.Buffer) *Summed {
	var s *Summed
	if r.W.integrityArmed() {
		s = r.getSummed(buf)
	}
	req := r.irecv(c, from, tag, buf, s)
	r.Wait(req)
	return s
}

// getSummed draws a checksummed-chunk header from the rank's free
// list; the cold miss path allocates.
//
//scaffe:hotpath
func (r *Rank) getSummed(buf *gpu.Buffer) *Summed {
	n := len(r.sumPool)
	if n == 0 {
		return newSummed(r, buf)
	}
	s := r.sumPool[n-1]
	r.sumPool[n-1] = nil
	r.sumPool = r.sumPool[:n-1]
	s.r, s.buf = r, buf
	return s
}

// newSummed is getSummed's pool-miss path.
//
//scaffe:coldpath pool-miss construction; steady state hits the free list
func newSummed(r *Rank, buf *gpu.Buffer) *Summed { return &Summed{r: r, buf: buf} }

// release returns a settled header to its rank's free list, keeping
// the clean-snapshot capacity for the next corrupted delivery.
func (s *Summed) release() {
	r := s.r
	s.r, s.buf, s.src = nil, nil, nil
	s.sum, s.mode, s.poisoned = 0, 0, false
	s.clean = s.clean[:0]
	//scaffe:nolint hotpath pool release; append reuses capacity freed by the matching get
	r.sumPool = append(r.sumPool, s)
}

// deliver runs in kernel context immediately after the payload copy:
// it seals the delivered bytes (the simulator's copy is instantaneous,
// so this equals the sender-side sum at send time) and applies any
// armed wire corruption on this link.
func (s *Summed) deliver(sender *Rank, mode topology.TransferMode) {
	if s == nil {
		return
	}
	s.src = sender
	s.mode = mode
	s.sum = s.buf.Checksum()
	integ := s.r.W.Integrity
	if integ.WireCorrupt != nil && integ.WireCorrupt(sender.ID, s.r.ID) {
		s.corrupt()
	}
}

// corrupt damages the delivered chunk in a detectable, reversible way:
// real payloads get bit 30 of word 0 flipped — the exponent's top bit,
// so in detect mode the damage is numerically visible rather than
// rounding away — after snapshotting the clean bytes so a retransmit
// can restore them; timing-mode payloads carry no values, so
// corruption is a poison marker.
//
//scaffe:coldpath fault-injection path; wire corruption is off the fault-free steady state
func (s *Summed) corrupt() {
	if len(s.buf.Data) == 0 {
		s.poisoned = true
		return
	}
	if len(s.clean) == 0 && s.r.W.Integrity.Mode == IntegrityRecover {
		s.clean = append(s.clean[:0], s.buf.Data...)
	}
	s.buf.Data[0] = math.Float32frombits(math.Float32bits(s.buf.Data[0]) ^ 1<<30)
}

// Verify settles the checksummed receive. On mismatch it counts a
// detection; detect mode stops there (the corrupted payload flows on),
// recover mode retransmits the chunk and re-verifies until it is clean
// or the retry budget is exhausted, at which point the communicator is
// revoked and the wait unwinds with Revoked for the fault plane's
// recovery rendezvous.
func (s *Summed) Verify() {
	if s == nil {
		return
	}
	w := s.r.W
	integ := w.Integrity
	for try := 0; ; try++ {
		bad := s.poisoned || (s.buf.Data != nil && s.buf.Checksum() != s.sum)
		if !bad {
			integ.Verified++
			s.release()
			return
		}
		integ.Detected++
		if integ.Mode == IntegrityDetect {
			s.release()
			return
		}
		if try >= integ.RetryBudget {
			integ.Escalations++
			if pl := w.Fault; pl != nil {
				pl.Revoke()
			}
			panic(Revoked{})
		}
		integ.Retransmits++
		s.retransmit()
	}
}

// retransmit books a fresh wire transfer of the chunk from its sender
// and blocks until it lands; the corruption hook is consulted again so
// a persistently bad link keeps failing toward escalation.
//
//scaffe:coldpath integrity-failure recovery; retransmission only runs after a detected corruption
func (s *Summed) retransmit() {
	r := s.r
	w := r.W
	_, end := w.Cluster.Transfer(r.Now(), s.src.Dev.ID, r.Dev.ID, s.buf.Bytes, s.mode)
	done := w.K.GetCompletion()
	w.K.At(end, func() {
		if s.buf.Data != nil && len(s.clean) > 0 {
			copy(s.buf.Data, s.clean)
		}
		s.poisoned = false
		integ := w.Integrity
		if integ.WireCorrupt != nil && integ.WireCorrupt(s.src.ID, r.ID) {
			s.corrupt()
		}
		done.Fire()
	})
	if w.Fault != nil {
		r.waitFT(r.Proc, done)
	} else {
		r.Proc.Wait(done)
	}
	w.K.PutCompletion(done)
}
