# Top-level developer targets. `make check` is the pre-merge gate
# (formatting, vet, lint, build, race-enabled tests); the rest are the
# usual shortcuts.

GO ?= go

.PHONY: all build test race bench fmt vet lint lint-escape check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 45m ./...

# `make bench` runs every benchmark once with -benchmem and writes a
# BENCH_<date>.json summary; see scripts/bench.sh for the BENCH_*
# environment overrides (filter, benchtime, packages, output file).
bench:
	sh scripts/bench.sh

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

# scaffe-lint enforces the repo-specific invariants (determinism,
# hot-path allocation, MPI request discipline, trace-span balance);
# see internal/lint and DESIGN.md §10.
lint:
	$(GO) run ./cmd/scaffe-lint ./...

# The compiler-verified escape gate: heap escapes inside propagated
# //scaffe:hotpath functions, diffed against lint.baseline (DESIGN.md
# §15). Regenerate the baseline with
# `go run ./cmd/scaffe-lint -escape -write-baseline`.
lint-escape:
	$(GO) run ./cmd/scaffe-lint -escape ./...

check:
	sh scripts/check.sh
