// Command scaffe-lint runs the repository's static analyzer over the
// given package patterns and prints one diagnostic per line as
//
//	file:line:col: [pass] message
//
// Exit status: 0 clean, 1 diagnostics found, 2 usage or load error.
// See internal/lint for the pass catalogue and annotation grammar.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"scaffe/internal/lint"
)

func main() {
	mod := flag.String("mod", "", "module root directory (default: nearest go.mod above the working directory)")
	list := flag.Bool("passes", false, "list the analysis passes and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: scaffe-lint [-mod dir] [pattern ...]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Patterns are package directories relative to the module root\n")
		fmt.Fprintf(flag.CommandLine.Output(), "(\"./...\", \"./internal/core\") or module import paths. Default: ./...\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, p := range lint.Passes() {
			fmt.Printf("%-12s %s\n", p.Name, p.Doc)
		}
		return
	}

	moduleDir := *mod
	if moduleDir == "" {
		var err error
		moduleDir, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "scaffe-lint:", err)
			os.Exit(2)
		}
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	diags, err := lint.Analyze(moduleDir, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scaffe-lint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "scaffe-lint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
