// Command scaffe-train runs one distributed-training configuration on
// the simulated cluster and reports timing, throughput, and the
// per-phase breakdown — the equivalent of launching the original
// S-Caffe under mpirun with a solver prototxt.
//
// Examples:
//
//	scaffe-train -model googlenet -gpus 160 -batch 1280 -design scobr -reduce hr -data imagedata
//	scaffe-train -model alexnet -gpus 16 -nodes 20 -gpus-per-node 2 -design cntk
//	scaffe-train -model cifar10-quick -gpus 4 -real -iters 50
//	scaffe-train -model cifar10-quick -gpus 8 -design scob -faults configs/faults_demo.txt -summary
//	scaffe-train -model tiny -gpus 4 -real -integrity recover -faults sdc.txt
//	scaffe-train -chaos configs/chaos_demo.txt
//	scaffe-train -chaos-seed 7
//
// Exit codes: 0 success, 1 runtime failure, 2 invalid configuration,
// 3 unrecovered failure (every rank lost to injected faults),
// 4 corruption detected while -integrity detect (observe-only) was set.
//
// The -chaos / -chaos-seed modes run the seeded chaos harness
// (internal/chaos) instead of a single training run: the spec's
// schedule is generated, executed, and machine-verified, and one
// greppable invariant summary line is printed. Exit 0 when every
// invariant holds (a legitimately unrecovered run still passes),
// 1 on any violation, 2 on a bad spec.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"scaffe"
	"scaffe/internal/chaos"
	"scaffe/internal/proto"
)

// Exit codes (documented in the package comment).
const (
	exitFailure     = 1
	exitConfig      = 2
	exitUnrecovered = 3
	exitCorruption  = 4
)

func main() {
	solverFile := flag.String("solver", "", "load the configuration from a Caffe-style solver prototxt (model/design/reduce/data flags are ignored when set)")
	model := flag.String("model", "googlenet", "model: lenet, cifar10-quick, alexnet, caffenet, googlenet, vgg16, nin, tiny")
	gpus := flag.Int("gpus", 16, "number of GPUs (MPI ranks)")
	nodes := flag.Int("nodes", 0, "cluster nodes (0 = auto from -gpus-per-node)")
	perNode := flag.Int("gpus-per-node", 16, "GPUs per node (Cluster-A: 16, Cluster-B: 2)")
	batch := flag.Int("batch", 256, "effective batch size")
	scal := flag.String("scal", "strong", "scaling mode: strong (batch divided across GPUs) or weak (batch per GPU)")
	iters := flag.Int("iters", 20, "training iterations")
	design := flag.String("design", "scobr", "pipeline: scb, scob, scobr, scobrf, caffe, cntk, ps, mp")
	bucketBytes := flag.Int64("bucket-bytes", 0, "gradient bucket size in bytes for scobr/scobrf (0 = per-layer for scobr, 4MiB default for scobrf)")
	reduce := flag.String("reduce", "hr", "gradient aggregation: binomial, chain, cc, cb, ccb, hr, mv2, openmpi, rsg")
	chain := flag.Int("chain", 8, "chain size for hierarchical reductions")
	source := flag.String("data", "imagedata", "data backend: memory, lmdb, imagedata")
	real := flag.Bool("real", false, "real-compute mode (actual float32 training; small models only)")
	seed := flag.Int64("seed", 1, "deterministic seed")
	traceFile := flag.String("trace", "", "write a Chrome trace (chrome://tracing JSON) of the run to this file")
	gantt := flag.Bool("gantt", false, "print an ASCII timeline of the run")
	summary := flag.Bool("summary", false, "print the per-rank phase totals and compute/communication overlap table")
	faultsFile := flag.String("faults", "", "inject faults from a schedule file (one event per line, e.g. `100ms crash rank=3`)")
	integrity := flag.String("integrity", "off", "silent-corruption plane: off, detect (observe only; exit 4 on corruption), recover (retransmit + micro-rollback)")
	simParallel := flag.Int("sim-parallel", -1, "simulation event-kernel workers: 0 = sequential, N >= 2 = parallel lookahead with N workers, default = auto (one per host core); results are bit-identical either way")
	chaosFile := flag.String("chaos", "", "run the seeded chaos harness from a spec file (see configs/chaos_demo.txt) instead of a training run; prints one invariant summary line")
	chaosSeed := flag.Int64("chaos-seed", 0, "run the chaos harness on the default spec with this seed (shorthand for a -chaos file setting only seed)")
	flag.Parse()

	if *chaosFile != "" || *chaosSeed != 0 {
		runChaos(*chaosFile, *chaosSeed)
		return
	}

	var cfg scaffe.Config
	if *solverFile != "" {
		loaded, err := proto.LoadSolver(*solverFile)
		if err != nil {
			fatalConfig(err)
		}
		cfg = loaded
		cfg.Seed = *seed
	} else {
		spec, err := scaffe.Model(*model)
		if err != nil {
			fatalConfig(err)
		}
		cfg = scaffe.Config{
			Spec:        spec,
			GPUs:        *gpus,
			Nodes:       *nodes,
			GPUsPerNode: *perNode,
			GlobalBatch: *batch,
			Weak:        *scal == "weak",
			Iterations:  *iters,
			Seed:        *seed,
		}
		cfg.ReduceOpts.ChainSize = *chain
		cfg.ReduceOpts.OnGPU = true
	}

	if *solverFile == "" {
		switch strings.ToLower(*design) {
		case "scb":
			cfg.Design = scaffe.SCB
		case "scob":
			cfg.Design = scaffe.SCOB
		case "scobr":
			cfg.Design = scaffe.SCOBR
		case "scobrf":
			cfg.Design = scaffe.SCOBRF
		case "caffe":
			cfg.Design = scaffe.Caffe
		case "cntk":
			cfg.Design = scaffe.CNTK
		case "ps", "inspur":
			cfg.Design = scaffe.InspurPS
		case "mp":
			cfg.Design = scaffe.MPICaffe
		default:
			fatalConfig(fmt.Errorf("unknown design %q", *design))
		}
		switch strings.ToLower(*reduce) {
		case "binomial":
			cfg.Reduce = scaffe.ReduceBinomial
		case "chain":
			cfg.Reduce = scaffe.ReduceChain
		case "cc":
			cfg.Reduce = scaffe.ReduceCC
		case "cb":
			cfg.Reduce = scaffe.ReduceCB
		case "ccb":
			cfg.Reduce = scaffe.ReduceCCB
		case "rsg":
			cfg.Reduce = scaffe.ReduceRabenseifner
		case "hr", "tuned":
			cfg.Reduce = scaffe.ReduceHR
		case "mv2":
			cfg.Reduce = scaffe.ReduceMV2
		case "openmpi":
			cfg.Reduce = scaffe.ReduceOpenMPI
		default:
			fatalConfig(fmt.Errorf("unknown reduce algorithm %q", *reduce))
		}
		switch strings.ToLower(*source) {
		case "memory":
			cfg.Source = scaffe.InMemory
		case "lmdb":
			cfg.Source = scaffe.LMDB
		case "imagedata":
			cfg.Source = scaffe.ImageData
		default:
			fatalConfig(fmt.Errorf("unknown data backend %q", *source))
		}
	}
	if *bucketBytes > 0 {
		cfg.BucketBytes = *bucketBytes
	}
	if *real {
		builder, err := scaffe.RealNetBuilder(*model)
		if err != nil {
			fatalConfig(err)
		}
		ds, err := scaffe.SyntheticDataset(*model, 1<<16, *seed)
		if err != nil {
			fatalConfig(err)
		}
		cfg.RealNet = builder
		cfg.Dataset = ds
		cfg.BaseLR = 0.01
		cfg.Momentum = 0.9
	}
	if *faultsFile != "" {
		sched, err := scaffe.LoadFaultSchedule(*faultsFile)
		if err != nil {
			fatalConfig(err)
		}
		cfg.Faults = sched
	}
	mode, err := scaffe.ParseIntegrityMode(*integrity)
	if err != nil {
		fatalConfig(err)
	}
	cfg.Integrity = mode

	// The flag speaks operator language (0 = sequential, default auto);
	// Config speaks scheduler language (0 = auto, 1 = sequential).
	switch {
	case *simParallel < 0:
		cfg.SimParallel = 0
	case *simParallel == 0:
		cfg.SimParallel = 1
	default:
		cfg.SimParallel = *simParallel
	}

	var rec *scaffe.Trace
	if *traceFile != "" || *gantt || *summary {
		rec = scaffe.NewTrace()
		cfg.Trace = rec
	}

	res, err := scaffe.Train(cfg)
	if err != nil {
		switch {
		case errors.Is(err, scaffe.ErrConfig):
			fatalConfig(err)
		case errors.Is(err, scaffe.ErrUnrecovered):
			fmt.Fprintln(os.Stderr, "scaffe-train:", err)
			os.Exit(exitUnrecovered)
		}
		fatal(err)
	}

	fmt.Printf("model=%s design=%s reduce=%s data=%s\n", res.Model, res.Design, res.ReduceAlg, res.Source)
	fmt.Printf("gpus=%d global-batch=%d local-batch=%d iterations=%d\n",
		res.GPUs, res.GlobalBatch, res.LocalBatch, res.Iterations)
	fmt.Printf("total time:      %v\n", res.TotalTime)
	fmt.Printf("time/iteration:  %v\n", res.TimePerIter())
	fmt.Printf("throughput:      %.1f samples/sec\n", res.SamplesPerSec)
	fmt.Printf("root solver blocked-time breakdown:\n")
	fmt.Printf("  data wait:     %v\n", res.Phases.DataWait)
	fmt.Printf("  propagation:   %v\n", res.Phases.Propagation)
	fmt.Printf("  forward:       %v\n", res.Phases.Forward)
	fmt.Printf("  backward:      %v\n", res.Phases.Backward)
	fmt.Printf("  aggregation:   %v\n", res.Phases.Aggregation)
	fmt.Printf("  update:        %v\n", res.Phases.Update)
	fmt.Printf("link utilization: HCA %.0f%%, PCIe %.0f%%\n",
		res.HCAUtilization*100, res.PCIeUtilization*100)
	if len(res.Losses) > 0 {
		fmt.Printf("loss: first=%.4f last=%.4f\n", res.Losses[0], res.Losses[len(res.Losses)-1])
	}
	if res.Fault != nil {
		fmt.Printf("faults: %v\n", res.Fault)
		for i, rec := range res.Fault.Recoveries {
			if rec.Kind == scaffe.FaultEvict {
				// Evictions are initiated, not detected: no detection
				// latency to report.
				fmt.Printf("  shrink %d: rank %d evicted at %v, world rebuilt in %v; resumed iteration %d on %d members (rolled back: %v)\n",
					i, rec.Rank, rec.FailedAt, rec.RecoveryTime(),
					rec.RestartIter, rec.Survivors, rec.RolledBack)
				continue
			}
			fmt.Printf("  shrink %d: rank %d (%v) failed at %v, detected in %v, recovered in %v; resumed iteration %d on %d survivors (rolled back: %v)\n",
				i, rec.Rank, rec.Kind, rec.FailedAt, rec.DetectionLatency(), rec.RecoveryTime(),
				rec.RestartIter, rec.Survivors, rec.RolledBack)
		}
		for i, j := range res.Fault.Joins {
			fmt.Printf("  grow %d: rank %d announced at %v, admitted in %v after %d attempts (%d requeues); resumed iteration %d on %d members\n",
				i, j.Rank, j.AnnouncedAt, j.AdmissionLatency(), j.Attempts, j.Requeues,
				j.RestartIter, j.WorldSize)
		}
		fmt.Printf("final world size: %d of %d ranks\n", res.Fault.Survivors, res.GPUs)
	}
	if res.Integrity != nil {
		fmt.Printf("integrity: %v\n", res.Integrity)
	}
	if *summary {
		fmt.Println("per-rank summary (communication hidden under compute):")
		fmt.Printf("  %-5s %12s %12s %12s %12s %12s %8s\n",
			"rank", "data", "propagation", "compute", "aggregation", "comm", "overlap")
		for _, row := range rec.Summary() {
			fmt.Printf("  %-5d %12v %12v %12v %12v %12v %7.1f%%\n",
				row.Rank, row.Phases["data"], row.Phases["propagation"], row.Compute,
				row.Phases["aggregation"], row.Comm, row.OverlapPct)
		}
	}
	if *gantt {
		fmt.Print(rec.Gantt(100))
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteChromeTrace(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s (%d spans)\n", *traceFile, rec.Len())
	}
	if ir := res.Integrity; ir != nil && ir.Mode == scaffe.IntegrityDetect &&
		(ir.Detected > 0 || ir.WatchdogTrips > 0) {
		fmt.Fprintln(os.Stderr, "scaffe-train: corruption detected (observe-only mode)")
		os.Exit(exitCorruption)
	}
}

// runChaos executes one seeded chaos spec through the harness's
// verifier and prints the per-run invariant summary line. A run that
// terminates unrecovered is a pass — the invariant is
// finished-or-unrecovered inside the virtual-time ceiling, counters
// consistent with the schedule; only a wedge or a counter mismatch
// fails.
func runChaos(file string, seed int64) {
	var spec chaos.Spec
	if file != "" {
		text, err := os.ReadFile(file)
		if err != nil {
			fatalConfig(err)
		}
		spec, err = chaos.ParseSpec(string(text))
		if err != nil {
			fatalConfig(err)
		}
		if seed != 0 {
			spec.Seed = seed
		}
	} else {
		spec = chaos.Default(seed)
	}
	r, err := chaos.Verify(spec)
	if r != nil {
		fmt.Println(r.Summary())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "scaffe-train: chaos invariant violated:", err)
		os.Exit(exitFailure)
	}
	fmt.Printf("invariants: pass (outcome=%s, %d scheduled events)\n", r.Outcome, len(r.Schedule))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scaffe-train:", err)
	os.Exit(exitFailure)
}

func fatalConfig(err error) {
	fmt.Fprintln(os.Stderr, "scaffe-train:", err)
	os.Exit(exitConfig)
}
