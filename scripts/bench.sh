#!/bin/sh
# bench.sh — run the repository benchmarks with -benchmem and write a
# machine-readable BENCH_<date>.json summary (ns/op, B/op, allocs/op,
# and any custom metrics such as virtual-ms/op and gflops), so future
# changes have a perf trajectory to compare against.
#
# Environment overrides:
#   BENCH_PKGS    packages to benchmark (default: ./...)
#   BENCH_FILTER  -bench regexp           (default: .)
#   BENCH_TIME    -benchtime value        (default: 1x)
#   BENCH_OUT     output file             (default: BENCH_$(date +%F).json)
set -eu

cd "$(dirname "$0")/.."

pkgs=${BENCH_PKGS:-./...}
filter=${BENCH_FILTER:-.}
benchtime=${BENCH_TIME:-1x}
out=${BENCH_OUT:-BENCH_$(date +%F).json}
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "== go test -bench $filter -benchtime $benchtime $pkgs =="
go test -run '^$' -bench "$filter" -benchtime "$benchtime" -benchmem $pkgs | tee "$raw"

# A full run (default filter and packages) must include the tracked
# benchmarks; a silently missing one (renamed, filtered out by a build
# error, skipped) would otherwise leave a hole in the perf trajectory.
if [ "$filter" = "." ] && [ "$pkgs" = "./..." ]; then
    missing=0
    for want in BenchmarkFigure11FullScale160 BenchmarkSimKernel BenchmarkSimKernelParallel BenchmarkScaleSweep BenchmarkExtElastic; do
        if ! grep -q "^$want" "$raw"; then
            echo "bench.sh: required benchmark $want missing from output" >&2
            missing=1
        fi
    done
    [ "$missing" -eq 0 ] || exit 1
fi

# Resolve the commit strictly after the run, and flag a dirty tree:
# a measurement taken before its change is committed must not
# masquerade as the parent commit's numbers (BENCH_2026-08-07.json
# originally pinned the seed commit this way).
commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
if [ "$commit" != unknown ] && ! git diff --quiet HEAD 2>/dev/null; then
    commit="${commit}-dirty"
fi

awk -v date="$(date +%F)" \
    -v gover="$(go version | awk '{print $3}')" \
    -v commit="$commit" '
BEGIN {
    printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"commit\": \"%s\",\n  \"benchmarks\": [", date, gover, commit
    n = 0
}
/^Benchmark/ {
    name = $1
    iters = $2
    printf "%s\n    {\"name\": \"%s\", \"iterations\": %s", (n++ ? "," : ""), name, iters
    # Fields come in "<value> <unit>" pairs after the iteration count.
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_per_", unit)
        gsub(/[^A-Za-z0-9_]/, "_", unit)
        printf ", \"%s\": %s", unit, $i
    }
    printf "}"
}
END {
    printf "\n  ]\n}\n"
}' "$raw" > "$out"

echo "== wrote $out =="
