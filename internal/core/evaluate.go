package core

import (
	"fmt"

	"scaffe/internal/data"
	"scaffe/internal/mpi"
	"scaffe/internal/solver"
	"scaffe/internal/tensor"
)

// This file implements the real-mode solver extras: the testing phase
// (held-out accuracy, as Caffe reports during training), snapshotting,
// resume, and learning-rate policy selection.

// buildPolicy maps the config's Caffe-style policy fields onto a
// solver.LRPolicy.
func buildPolicy(cfg *Config) (solver.LRPolicy, error) {
	lr := cfg.BaseLR
	if lr == 0 {
		lr = 0.01
	}
	switch cfg.LRPolicy {
	case "", "fixed":
		return solver.Fixed{Base: lr}, nil
	case "step":
		if cfg.StepSize <= 0 {
			return nil, fmt.Errorf("core: step policy needs a positive StepSize")
		}
		gamma := cfg.Gamma
		if gamma == 0 {
			gamma = 0.1
		}
		return solver.Step{Base: lr, Gamma: gamma, StepSize: cfg.StepSize}, nil
	case "inv":
		return solver.Inv{Base: lr, Gamma: cfg.Gamma, Power: cfg.Power}, nil
	case "poly":
		return solver.Poly{Base: lr, Power: cfg.Power, MaxIter: cfg.Iterations}, nil
	}
	return nil, fmt.Errorf("core: unknown LR policy %q", cfg.LRPolicy)
}

// testPass runs the root solver's evaluation: forward passes over a
// held-out slice of the dataset (the tail region, which the training
// index order only reaches after wrapping), recording mean accuracy.
// The kernel time of the forward passes is charged to the device.
func (st *runState) testPass(r *mpi.Rank, w *workload, iter int) {
	cfg := st.cfg
	batches := cfg.TestBatches
	if batches <= 0 {
		batches = 2
	}
	ds := cfg.Dataset
	classes := ds.Classes()
	span := batches * w.localBatch
	testStart := ds.Len() - span
	if testStart < 0 {
		testStart = 0
	}
	var correct float64
	for tb := 0; tb < batches; tb++ {
		img, labels := data.BatchTensor(ds, testStart+tb*w.localBatch, w.localBatch)
		sh := ds.Shape()
		input := tensor.FromSlice(img, w.localBatch, sh.C, sh.H, sh.W)
		w.net.Forward(input, labels)
		correct += tensor.Accuracy(w.net.Probs().Data, w.localBatch, classes, labels)
		// Charge the evaluation's forward kernels.
		flops := cfg.Spec.FwdFLOPs() * float64(w.localBatch)
		_, end := r.Dev.LaunchCompute(r.Now(), flops)
		r.Proc.WaitUntil(end)
	}
	st.accuracies = append(st.accuracies, correct/float64(batches))
}

// maybeEvaluate runs the testing phase and snapshotting at their
// configured intervals (root solver, after ApplyUpdate).
//
//scaffe:coldpath interval-gated testing and snapshotting (TestInterval/SnapshotEvery); off the per-iteration budget
func (st *runState) maybeEvaluate(r *mpi.Rank, w *workload, iter int) {
	cfg := st.cfg
	if !w.real() {
		return
	}
	if cfg.TestInterval > 0 && (iter+1)%cfg.TestInterval == 0 {
		st.testPass(r, w, iter)
	}
	if cfg.SnapshotEvery > 0 && (iter+1)%cfg.SnapshotEvery == 0 {
		if st.ft != nil && st.ft.SnapshotFailing(r.Now()) {
			// An injected snapshot-write failure: the write is skipped
			// (and counted); the previous snapshot stays the rollback
			// point, exactly as the crash-safe rename guarantees for a
			// real interrupted write.
			return
		}
		w.packParams()
		path := snapshotPath(cfg.SnapshotPrefix, iter)
		snap := &Snapshot{Model: cfg.Spec.Name, Iteration: iter, Params: append([]float32(nil), w.paramData...)}
		snap.History = st.sgds[r.ID].PackHistory(w.net, nil)
		if err := WriteSnapshot(path, snap); err != nil {
			if st.fileErr == nil {
				st.fileErr = err
			}
			return
		}
		st.noteSnapshot(path, iter)
	}
}

// noteSnapshot records a written snapshot, deduplicating paths (a
// post-rollback replay rewrites the snapshots of the replayed span).
func (st *runState) noteSnapshot(path string, iter int) {
	for _, p := range st.snapshots {
		if p == path {
			return
		}
	}
	st.snapshots = append(st.snapshots, path)
	st.snapIters = append(st.snapIters, iter)
}

// resume restores every replica's parameters from a snapshot file (all
// replicas, so designs without a parameter broadcast also start
// consistent).
func (st *runState) resume(path string) error {
	snap, err := ReadSnapshot(path)
	if err != nil {
		return err
	}
	if snap.Model != st.cfg.Spec.Name {
		return fmt.Errorf("core: snapshot is for model %q, training %q", snap.Model, st.cfg.Spec.Name)
	}
	if len(snap.Params) != st.cfg.Spec.TotalParams() {
		return fmt.Errorf("core: snapshot has %d parameters, model needs %d", len(snap.Params), st.cfg.Spec.TotalParams())
	}
	for i, w := range st.wl {
		if !w.real() {
			continue
		}
		w.net.UnpackParams(snap.Params)
		if len(snap.History) > 0 {
			st.sgds[i].LoadHistory(w.net, snap.History)
		}
	}
	return nil
}
