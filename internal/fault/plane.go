package fault

import (
	"fmt"

	"scaffe/internal/sim"
)

// DefaultTimeout is the base detection deadline: a fault-aware wait
// that makes no progress for this long consults the plane. It is far
// above any healthy per-operation latency in the modeled cluster, so
// fault-free runs never trip it, and small enough that detection
// latency stays a fraction of an iteration.
const DefaultTimeout = 10 * sim.Millisecond

// maxBackoffShift caps the exponential deadline backoff at
// quantum<<maxBackoffShift, so transient slowness (stragglers, link
// flaps) is ridden out with a bounded number of retries per window.
const maxBackoffShift = 4

// Applier carries out the physical side of injected events on the
// training engine: killing a rank's procs and slowing its device. The
// plane keeps the bookkeeping; the engine owns the objects.
type Applier interface {
	// KillRank fail-stops a rank (Crash and Hang events).
	KillRank(rank int, kind Kind)
	// SetCompute sets a rank's GPU slowdown factor (1 = full speed).
	SetCompute(rank int, factor float64)
}

// BitFlipper is the optional Applier extension for BitFlip events:
// flip bit `bit` of 32-bit word `word` of the rank's resident network
// parameters. Appliers that do not implement it simply never see the
// corruption (the event still counts as injected).
type BitFlipper interface {
	FlipBit(rank, word, bit int)
}

// Recovery describes one detected failure and the shrink that
// absorbed it.
type Recovery struct {
	// Rank is the rank that failed.
	Rank int
	// Kind is Crash or Hang.
	Kind Kind
	// FailedAt is the injection time.
	FailedAt sim.Time
	// DetectedAt is when a survivor's deadline expired and revoked
	// the communicator.
	DetectedAt sim.Time
	// ResumedAt is when the shrunken world released survivors back
	// into training.
	ResumedAt sim.Time
	// RestartIter is the iteration training resumed from.
	RestartIter int
	// Survivors is the world size after the shrink.
	Survivors int
	// RolledBack reports whether survivors restored state from a
	// snapshot (or re-initialized) rather than continuing in place.
	RolledBack bool
}

// DetectionLatency is the injection-to-revocation delay.
func (r Recovery) DetectionLatency() sim.Duration { return r.DetectedAt - r.FailedAt }

// RecoveryTime is the revocation-to-resume delay (shrink + restore).
func (r Recovery) RecoveryTime() sim.Duration { return r.ResumedAt - r.DetectedAt }

// Report summarizes a faulted run for Result.
type Report struct {
	// Injected counts all scheduled events that fired.
	Injected int
	// Crashes and Hangs count fail-stop injections.
	Crashes, Hangs int
	// Retries counts deadline expiries that were ridden out with
	// backoff (no failed rank: transient slowness, not a fault).
	Retries int
	// SnapshotFailures counts snapshot writes suppressed by
	// SnapshotFail windows.
	SnapshotFailures int
	// BitFlips and WireCorruptions count armed silent-corruption
	// injections (the integrity plane reports what it caught).
	BitFlips, WireCorruptions int
	// Survivors is the final world size.
	Survivors int
	// Recoveries lists every shrink, in order.
	Recoveries []Recovery
}

func (r *Report) String() string {
	return fmt.Sprintf("injected=%d crashes=%d hangs=%d recoveries=%d retries=%d snapshot-failures=%d survivors=%d",
		r.Injected, r.Crashes, r.Hangs, len(r.Recoveries), r.Retries, r.SnapshotFailures, r.Survivors)
}

// recoveryRound is one leaderless all-survivor rendezvous: every
// surviving rank that observes the revocation enters, and the round
// releases — running the engine's rebuild hook first — once every
// rank currently alive has arrived.
type recoveryRound struct {
	arrived []bool
	count   int
	done    *sim.Completion
}

// wireCorruption is one armed CorruptWire event: a countdown of
// checksummed transfers on a directed link, consumed exactly once.
type wireCorruption struct {
	src, dst  int
	countdown int
}

// linkWindow is one active LinkDegrade interval.
type linkWindow struct {
	node        int
	factor      float64
	from, until sim.Time
}

// Plane is the armed fault-injection and failure-detection state of
// one run. All methods run under the kernel's cooperative scheduling,
// so there is no locking.
type Plane struct {
	k       *sim.Kernel
	quantum sim.Duration
	total   int
	applier Applier
	rebuild func() int

	// excluded ranks have been shrunk out of the world; failed ranks
	// are dead but not yet absorbed by a shrink; departed ranks
	// finished (or died) and will never join a recovery rendezvous.
	excluded []bool
	failed   []bool
	departed []bool
	failRec  []Recovery // partial record per failed rank
	revoked  bool

	round *recoveryRound

	stallUntil    []sim.Time
	links         []linkWindow
	snapFailUntil sim.Time
	snapFailOnce  bool
	wires         []*wireCorruption

	report Report
}

// NewPlane returns an un-armed plane for a world of `ranks` ranks.
// A zero quantum uses DefaultTimeout.
func NewPlane(k *sim.Kernel, ranks int, quantum sim.Duration) *Plane {
	if quantum <= 0 {
		quantum = DefaultTimeout
	}
	return &Plane{
		k:          k,
		quantum:    quantum,
		total:      ranks,
		excluded:   make([]bool, ranks),
		failed:     make([]bool, ranks),
		departed:   make([]bool, ranks),
		failRec:    make([]Recovery, ranks),
		stallUntil: make([]sim.Time, ranks),
	}
}

// Arm schedules every event of the script on the kernel. Call it
// after the world's ranks are spawned and before the kernel runs.
func (pl *Plane) Arm(sched Schedule, ap Applier) {
	pl.applier = ap
	pl.report.Survivors = pl.total
	for _, ev := range sched {
		ev := ev
		pl.k.At(ev.At, func() { pl.apply(ev) })
	}
}

// OnRebuild registers the engine's shrink-and-restore hook. It runs
// exactly once per recovery round, at release time, with every
// surviving rank parked in EnterRecovery; it returns the iteration
// training resumes from.
func (pl *Plane) OnRebuild(fn func() int) { pl.rebuild = fn }

// apply executes one scheduled event in kernel context.
func (pl *Plane) apply(ev Event) {
	now := pl.k.Now()
	switch ev.Kind {
	case Crash, Hang:
		if !pl.Alive(ev.Rank) {
			return // already dead; nothing left to kill
		}
		pl.report.Injected++
		if ev.Kind == Crash {
			pl.report.Crashes++
		} else {
			pl.report.Hangs++
		}
		pl.failed[ev.Rank] = true
		pl.failRec[ev.Rank] = Recovery{Rank: ev.Rank, Kind: ev.Kind, FailedAt: now}
		pl.applier.KillRank(ev.Rank, ev.Kind)
		// If the dead rank had already reached a recovery rendezvous,
		// un-count it and re-check: the survivors must not wait for a
		// corpse.
		if pl.round != nil && pl.round.arrived[ev.Rank] {
			pl.round.arrived[ev.Rank] = false
			pl.round.count--
		}
		pl.checkRelease()
	case StragglerOn:
		pl.report.Injected++
		pl.applier.SetCompute(ev.Rank, ev.Factor)
	case StragglerOff:
		pl.report.Injected++
		pl.applier.SetCompute(ev.Rank, 1)
	case LinkDegrade:
		pl.report.Injected++
		pl.links = append(pl.links, linkWindow{node: ev.Node, factor: ev.Factor, from: now, until: now + ev.For})
	case ReaderStall:
		pl.report.Injected++
		if until := now + ev.For; until > pl.stallUntil[ev.Rank] {
			pl.stallUntil[ev.Rank] = until
		}
	case SnapshotFail:
		pl.report.Injected++
		if ev.For <= 0 {
			pl.snapFailOnce = true
		} else if until := now + ev.For; until > pl.snapFailUntil {
			pl.snapFailUntil = until
		}
	case BitFlip:
		if !pl.Alive(ev.Rank) {
			return // nothing resident to corrupt
		}
		pl.report.Injected++
		pl.report.BitFlips++
		if fb, ok := pl.applier.(BitFlipper); ok {
			fb.FlipBit(ev.Rank, ev.Word, ev.Bit)
		}
	case CorruptWire:
		pl.report.Injected++
		pl.report.WireCorruptions++
		pl.wires = append(pl.wires, &wireCorruption{src: ev.Src, dst: ev.Dst, countdown: ev.N})
	}
}

// WireCorrupt is the integrity plane's injection hook: called once per
// checksummed transfer on the directed link src->dst, it counts down
// every armed corruption on that link and reports whether this
// transfer is the one a corruption lands on. Each armed event fires
// exactly once.
func (pl *Plane) WireCorrupt(src, dst int) bool {
	hit := false
	for _, wc := range pl.wires {
		if wc.src != src || wc.dst != dst || wc.countdown <= 0 {
			continue
		}
		wc.countdown--
		if wc.countdown == 0 {
			hit = true
		}
	}
	return hit
}

// Revoke revokes the communicator without a dead rank behind it — the
// integrity plane's escalation path when a chunk stays corrupted past
// its retry budget, and the watchdog's micro-rollback trigger. Every
// fault-aware wait observes the revocation at its next deadline and
// unwinds into the recovery rendezvous; with zero failed ranks the
// release shrinks nothing and just re-runs the engine's rebuild hook.
func (pl *Plane) Revoke() { pl.revoked = true }

// Timeout returns the detection deadline for the given retry attempt:
// the base quantum with capped exponential backoff, so healthy-but-
// slow operations (stragglers, degraded links) are ridden out with a
// bounded number of retries.
func (pl *Plane) Timeout(attempt int) sim.Duration {
	if attempt > maxBackoffShift {
		attempt = maxBackoffShift
	}
	return pl.quantum << attempt
}

// Revoked reports whether the communicator is revoked: a failure has
// been detected and survivors are converging on recovery.
func (pl *Plane) Revoked() bool { return pl.revoked }

// OnTimeout is called by a rank whose wait deadline expired without
// progress. It returns true if the communicator is (now) revoked —
// the caller must abandon the operation and enter recovery — and
// false if the stall has no dead rank behind it, in which case the
// caller retries with backoff.
func (pl *Plane) OnTimeout(rank int, now sim.Time) bool {
	if pl.revoked {
		return true
	}
	for i := range pl.failed {
		if pl.failed[i] {
			pl.revoked = true
			// Stamp detection on every pending failure: this one
			// deadline discovered them all.
			for j := range pl.failed {
				if pl.failed[j] && pl.failRec[j].DetectedAt == 0 {
					pl.failRec[j].DetectedAt = now
				}
			}
			return true
		}
	}
	pl.report.Retries++
	return false
}

// EnterRecovery parks rank's main proc until every surviving rank has
// arrived and the shrink/rebuild has run. Ranks call it after
// observing a revocation.
func (pl *Plane) EnterRecovery(rank int, p *sim.Proc) {
	if pl.round == nil {
		pl.round = &recoveryRound{arrived: make([]bool, pl.total), done: pl.k.NewCompletion()}
	}
	rd := pl.round
	if !rd.arrived[rank] {
		rd.arrived[rank] = true
		rd.count++
	}
	pl.checkRelease()
	p.Wait(rd.done) // returns immediately if checkRelease fired it
}

// checkRelease releases the current recovery round once every alive
// rank has arrived: it commits the shrink (failed → excluded, clears
// the revocation), runs the engine's rebuild hook, stamps the new
// recovery records, and wakes the survivors. Safe to call any time;
// it is a no-op until the round is complete.
func (pl *Plane) checkRelease() {
	rd := pl.round
	if rd == nil || rd.count == 0 || rd.count != pl.participants() {
		return
	}
	pl.round = nil
	now := pl.k.Now()
	first := len(pl.report.Recoveries)
	for i := range pl.failed {
		if !pl.failed[i] {
			continue
		}
		pl.failed[i] = false
		pl.excluded[i] = true
		rec := pl.failRec[i]
		if rec.DetectedAt == 0 {
			rec.DetectedAt = now
		}
		rec.ResumedAt = now
		pl.report.Recoveries = append(pl.report.Recoveries, rec)
	}
	pl.revoked = false
	pl.report.Survivors = pl.AliveCount()
	restart := 0
	if pl.rebuild != nil {
		restart = pl.rebuild()
	}
	for i := first; i < len(pl.report.Recoveries); i++ {
		pl.report.Recoveries[i].RestartIter = restart
		pl.report.Recoveries[i].Survivors = pl.report.Survivors
	}
	rd.done.Fire()
}

// NoteRollback marks the latest batch of recovery records as having
// restored state from a snapshot rather than continuing in place.
func (pl *Plane) NoteRollback(n int) {
	for i := len(pl.report.Recoveries) - n; i < len(pl.report.Recoveries); i++ {
		if i >= 0 {
			pl.report.Recoveries[i].RolledBack = true
		}
	}
}

// Depart marks a rank as finished with training (normally or by
// dying): recovery rendezvous must not wait for it. Re-checks the
// current round, since the departure may be what completes it.
func (pl *Plane) Depart(rank int) {
	pl.departed[rank] = true
	pl.checkRelease()
}

// participants counts the ranks a recovery rendezvous must gather:
// alive and still training.
func (pl *Plane) participants() int {
	n := 0
	for i := 0; i < pl.total; i++ {
		if pl.Alive(i) && !pl.departed[i] {
			n++
		}
	}
	return n
}

// Alive reports whether a rank is neither failed nor excluded.
func (pl *Plane) Alive(rank int) bool { return !pl.failed[rank] && !pl.excluded[rank] }

// AliveCount returns the number of alive ranks.
func (pl *Plane) AliveCount() int {
	n := 0
	for i := 0; i < pl.total; i++ {
		if pl.Alive(i) {
			n++
		}
	}
	return n
}

// AliveRanks returns the alive ranks in ascending order.
func (pl *Plane) AliveRanks() []int {
	var out []int
	for i := 0; i < pl.total; i++ {
		if pl.Alive(i) {
			out = append(out, i)
		}
	}
	return out
}

// StallUntil returns the time until which rank's reader is frozen
// (zero / the past when it is not).
func (pl *Plane) StallUntil(rank int) sim.Time { return pl.stallUntil[rank] }

// LinkFactor returns the wire-time multiplier for an inter-node
// transfer leaving srcNode at virtual time `at` (1 = healthy). It has
// the signature of topology's link-fault hook.
func (pl *Plane) LinkFactor(at sim.Time, srcNode, dstNode int) float64 {
	f := 1.0
	for _, w := range pl.links {
		if w.node == srcNode && at >= w.from && at < w.until && w.factor > f {
			f = w.factor
		}
	}
	return f
}

// SnapshotFailing reports whether a snapshot write at `now` fails,
// counting it in the report when it does.
func (pl *Plane) SnapshotFailing(now sim.Time) bool {
	if pl.snapFailOnce {
		pl.snapFailOnce = false
		pl.report.SnapshotFailures++
		return true
	}
	if now < pl.snapFailUntil {
		pl.report.SnapshotFailures++
		return true
	}
	return false
}

// Report returns the run's fault summary.
func (pl *Plane) Report() *Report { return &pl.report }
