package sched

import (
	"testing"

	"scaffe/internal/gpu"
	"scaffe/internal/mpi"
	"scaffe/internal/sim"
	"scaffe/internal/topology"
)

type spanRec struct {
	lane       int
	kind       Kind
	phase      string
	label      string
	start, end sim.Time
}

type recTracer struct{ spans []spanRec }

func (t *recTracer) NodeSpan(lane int, kind Kind, phase, label string, start, end sim.Time) {
	t.spans = append(t.spans, spanRec{lane, kind, phase, label, start, end})
}

func (t *recTracer) find(label string) *spanRec {
	for i := range t.spans {
		if t.spans[i].label == label {
			return &t.spans[i]
		}
	}
	return nil
}

func newWorld(ranks int) *mpi.World {
	k := sim.New()
	cl := topology.New(k, "t", 1, 16, topology.DefaultParams())
	return mpi.NewWorld(cl, ranks)
}

func TestLaneZeroRunsInInsertionOrder(t *testing.T) {
	w := newWorld(1)
	tr := &recTracer{}
	var order []string
	_, err := w.Run(func(r *mpi.Rank) {
		g := New(r)
		g.Add(0, ComputeForward, "forward", "a", func(x *Ctx) {
			order = append(order, "a")
			x.P.Sleep(10)
		})
		g.Add(0, Generic, "", "book", func(x *Ctx) { order = append(order, "book") })
		g.Add(0, ComputeBackward, "backward", "b", func(x *Ctx) {
			order = append(order, "b")
			x.P.Sleep(5)
		})
		g.Execute(tr, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "a" || order[1] != "book" || order[2] != "b" {
		t.Fatalf("order = %v", order)
	}
	if w.K.Now() != 15 {
		t.Errorf("final time = %v, want 15", w.K.Now())
	}
	// Untraced and zero-length nodes emit nothing; timed actions do.
	if len(tr.spans) != 2 {
		t.Fatalf("spans = %+v", tr.spans)
	}
	a := tr.find("a")
	if a == nil || a.phase != "forward" || a.kind != ComputeForward || a.start != 0 || a.end != 10 {
		t.Errorf("span a = %+v", a)
	}
	b := tr.find("b")
	if b == nil || b.start != 10 || b.end != 15 {
		t.Errorf("span b = %+v", b)
	}
}

func TestCrossLaneDependencyAndWaitPhase(t *testing.T) {
	w := newWorld(1)
	tr := &recTracer{}
	_, err := w.Run(func(r *mpi.Rank) {
		g := New(r)
		helper := g.Lane("helper")
		begin := g.Add(0, Generic, "", "begin", nil)
		hw := g.Add(helper, ComputeBackward, "backward", "bwd", func(x *Ctx) {
			x.P.Sleep(40)
		}).After(begin)
		g.Add(0, Reduce, "aggregation", "reduce", func(x *Ctx) {
			x.P.Sleep(7)
		}).After(hw).WaitingIn("backward")
		g.Execute(tr, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.K.Now() != 47 {
		t.Errorf("final time = %v, want 47", w.K.Now())
	}
	wait := tr.find("reduce/wait")
	if wait == nil || wait.phase != "backward" || wait.lane != 0 || wait.start != 0 || wait.end != 40 {
		t.Errorf("wait span = %+v", wait)
	}
	red := tr.find("reduce")
	if red == nil || red.phase != "aggregation" || red.start != 40 || red.end != 47 {
		t.Errorf("reduce span = %+v", red)
	}
	bwd := tr.find("bwd")
	if bwd == nil || bwd.lane != 1 || bwd.end != 40 {
		t.Errorf("helper span = %+v", bwd)
	}
}

func TestExecuteJoinsUnreferencedHelperLane(t *testing.T) {
	w := newWorld(1)
	_, err := w.Run(func(r *mpi.Rank) {
		g := New(r)
		helper := g.Lane("helper")
		g.Add(helper, Generic, "", "slow", func(x *Ctx) { x.P.Sleep(100) })
		g.Add(0, Generic, "", "fast", func(x *Ctx) { x.P.Sleep(1) })
		g.Execute(nil, 0)
		// Execute must not return before the helper lane finishes.
		if r.Now() != 100 {
			t.Errorf("Execute returned at %v, want 100", r.Now())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRequestGateWaitsTransfer(t *testing.T) {
	w := newWorld(2)
	tr := &recTracer{}
	comm := w.WorldComm()
	// Rendezvous-sized message so the send completes only when the
	// receiver shows up.
	const bytes = 1 << 20
	_, err := w.Run(func(r *mpi.Rank) {
		if r.ID == 1 {
			r.Sleep(1000)
			r.Recv(comm, 0, 9, gpu.NewBuffer(bytes))
			return
		}
		g := New(r)
		slot := NewSlot()
		g.Add(0, PostBcast, "", "post", func(x *Ctx) {
			slot.Put(x.R.Isend(comm, 1, 9, gpu.NewBuffer(bytes), topology.ModeAuto))
		})
		g.Add(0, DrainSends, "propagation", "drain", nil).Gated(slot)
		g.Execute(tr, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	drain := tr.find("drain/wait")
	if drain == nil || drain.phase != "propagation" {
		t.Fatalf("drain span = %+v (spans %+v)", drain, tr.spans)
	}
	if drain.start != 0 || drain.end < 1000 {
		t.Errorf("drain waited [%v,%v]; want start 0, end past the receiver's arrival", drain.start, drain.end)
	}
}

func TestSlotIgnoresNilRequests(t *testing.T) {
	s := NewSlot()
	s.Put(nil)
	if len(s.reqs) != 0 {
		t.Error("nil request stored")
	}
}

func TestForwardSameLaneDependencyPanics(t *testing.T) {
	w := newWorld(1)
	_, err := w.Run(func(r *mpi.Rank) {
		g := New(r)
		a := g.Add(0, Generic, "", "a", nil)
		b := g.Add(0, Generic, "", "b", nil)
		defer func() {
			if recover() == nil {
				t.Error("forward same-lane dependency should panic")
			}
		}()
		a.After(b)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGateOffMainLanePanics(t *testing.T) {
	w := newWorld(1)
	_, err := w.Run(func(r *mpi.Rank) {
		g := New(r)
		helper := g.Lane("helper")
		n := g.Add(helper, Generic, "", "h", nil)
		defer func() {
			if recover() == nil {
				t.Error("gating a helper-lane node should panic")
			}
		}()
		n.Gated(NewSlot())
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{Generic, DataWait, Pack, Unpack, PostBcast, WaitBcast,
		ComputeForward, ComputeBackward, Reduce, DrainSends, Update}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "unknown" || seen[s] {
			t.Errorf("kind %d has bad or duplicate name %q", int(k), s)
		}
		seen[s] = true
	}
	if Kind(99).String() != "unknown" {
		t.Error("out-of-range kind should stringify as unknown")
	}
}
