package experiments

import (
	"fmt"

	"scaffe/internal/coll"
	"scaffe/internal/gpu"
	"scaffe/internal/mpi"
	"scaffe/internal/sim"
	"scaffe/internal/topology"
)

// reduceLatency measures one OSU-style MPI_Reduce point on Cluster-A
// geometry: barrier, reduce, time to the last rank's completion
// (deterministic, so one warm-up + one timed trial suffice).
func reduceLatency(ranks int, bytes int64, alg coll.Algorithm, opts coll.Options) (sim.Duration, error) {
	k := sim.New()
	nodes := (ranks + 15) / 16
	cluster := topology.New(k, "omb", nodes, 16, topology.DefaultParams())
	world := mpi.NewWorld(cluster, ranks)
	comm := world.WorldComm()
	red := coll.NewReducer(comm, alg, opts)
	var start, done sim.Time
	_, err := world.Run(func(r *mpi.Rank) {
		buf := gpu.NewBuffer(bytes)
		for trial := 0; trial < 2; trial++ {
			comm.Barrier(r)
			if r.ID == 0 && trial == 1 {
				start = r.Now()
			}
			red.Reduce(r, buf, benchTag)
			if trial == 1 && r.Now() > done {
				done = r.Now()
			}
			comm.Barrier(r)
		}
	})
	if err != nil {
		return 0, err
	}
	return done - start, nil
}

// reduceSizes is the message-size sweep of Figures 11–12 (the paper's
// "extensively large" DL messages: 2 MB up to the 256 MB AlexNet
// gradient buffer).
var reduceSizes = []int64{2 << 20, 8 << 20, 32 << 20, 64 << 20, 128 << 20, 256 << 20}

// Figure11 regenerates the 160-process reduce comparison across the
// hierarchical design variants.
func Figure11(o Options) (*Table, error) {
	ranks := 160
	if o.MaxGPUs > 0 && o.MaxGPUs < ranks {
		ranks = o.MaxGPUs
	}
	t := &Table{
		ID:      "figure11",
		Title:   fmt.Sprintf("MPI_Reduce latency, %d GPU processes, Cluster-A", ranks),
		Columns: []string{"Size", "MV2", "CC-4", "CC-8", "CB-4", "CB-8", "HR (Tuned)"},
	}
	type variant struct {
		alg  coll.Algorithm
		opts coll.Options
	}
	mk := func(alg coll.Algorithm, chain int) variant {
		o := coll.DefaultOptions()
		o.ChainSize = chain
		return variant{alg, o}
	}
	variants := []variant{
		{coll.MV2Baseline, coll.DefaultOptions()},
		mk(coll.ChainChain, 4),
		mk(coll.ChainChain, 8),
		mk(coll.ChainBinomial, 4),
		mk(coll.ChainBinomial, 8),
		{coll.Tuned, coll.DefaultOptions()},
	}
	var bestTunedWin float64
	for _, size := range reduceSizes {
		row := []string{fmt.Sprintf("%dM", size>>20)}
		var mv2, tuned sim.Duration
		for i, v := range variants {
			lat, err := reduceLatency(ranks, size, v.alg, v.opts)
			if err != nil {
				return nil, fmt.Errorf("figure11 %s@%d: %w", v.alg, size, err)
			}
			row = append(row, lat.String())
			if i == 0 {
				mv2 = lat
			}
			if i == len(variants)-1 {
				tuned = lat
			}
		}
		if win := float64(mv2) / float64(tuned); win > bestTunedWin {
			bestTunedWin = win
		}
		t.AddRow(row...)
	}
	t.Note("Paper: HR (Tuned) picks the fastest CC/CB combination per size and beats MV2 across the sweep; measured best HR-vs-MV2 win %.1fx.", bestTunedWin)
	return t, nil
}

// Figure12 regenerates the headline comparison: the proposed HR
// against the MVAPICH2 and OpenMPI reduce paths (log-scale in the
// paper; we report the raw latencies and the speedups).
func Figure12(o Options) (*Table, error) {
	ranks := 160
	if o.MaxGPUs > 0 && o.MaxGPUs < ranks {
		ranks = o.MaxGPUs
	}
	t := &Table{
		ID:      "figure12",
		Title:   fmt.Sprintf("MPI_Reduce latency, %d GPU processes: proposed HR vs MVAPICH2 vs OpenMPI", ranks),
		Columns: []string{"Size", "HR (proposed)", "MVAPICH2", "OpenMPI", "HR vs MV2", "HR vs OpenMPI"},
	}
	var maxMV2, maxOMPI float64
	for _, size := range reduceSizes {
		hr, err := reduceLatency(ranks, size, coll.Tuned, coll.DefaultOptions())
		if err != nil {
			return nil, err
		}
		mv2, err := reduceLatency(ranks, size, coll.MV2Baseline, coll.DefaultOptions())
		if err != nil {
			return nil, err
		}
		ompi, err := reduceLatency(ranks, size, coll.OpenMPIBaseline, coll.DefaultOptions())
		if err != nil {
			return nil, err
		}
		sMV2 := float64(mv2) / float64(hr)
		sOMPI := float64(ompi) / float64(hr)
		if sMV2 > maxMV2 {
			maxMV2 = sMV2
		}
		if sOMPI > maxOMPI {
			maxOMPI = sOMPI
		}
		t.AddRow(fmt.Sprintf("%dM", size>>20), hr.String(), mv2.String(), ompi.String(),
			fmt.Sprintf("%.1fx", sMV2), fmt.Sprintf("%.1fx", sOMPI))
	}
	t.Note("Paper: HR is almost 3x faster than MVAPICH2 and up to 133x faster than OpenMPI; measured maxima %.1fx and %.1fx.", maxMV2, maxOMPI)
	return t, nil
}
