package chaos

import (
	"reflect"
	"testing"

	"scaffe/internal/coll"
	"scaffe/internal/core"
	"scaffe/internal/sim"
)

// gateSpec derives the gate's i-th spec: seeds sweep the event count,
// the reducer family, and (every tenth spec) the ring-allreduce
// design, so the 200 schedules exercise every delivery path.
func gateSpec(seed int64) Spec {
	s := Default(seed)
	s.Events = 4 + int(seed%7)
	switch seed % 4 {
	case 1:
		s.Reduce = coll.Chain
	case 2:
		s.Reduce = coll.Rabenseifner
	}
	if seed%10 == 9 {
		s.Design = core.CNTKLike
	}
	return s
}

// TestChaosScheduleDeterministic pins generation purity: the same
// spec yields the same schedule, and the schedule passes the fault
// package's validation for every gate seed.
func TestChaosScheduleDeterministic(t *testing.T) {
	horizon := 100 * sim.Millisecond
	for seed := int64(1); seed <= 500; seed++ {
		s := gateSpec(seed)
		a := s.Schedule(horizon)
		b := s.Schedule(horizon)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: schedule not a pure function of the spec:\n%+v\n%+v", seed, a, b)
		}
		if len(a) == 0 {
			t.Fatalf("seed %d: empty schedule", seed)
		}
		if err := a.Validate(s.Ranks, 2); err != nil {
			t.Fatalf("seed %d: generated schedule invalid: %v\n%+v", seed, err, a)
		}
	}
}

// TestChaosGate is the no-wedge gate: 200 seeded schedules across the
// full event mix must all terminate finished or unrecovered inside the
// virtual-time ceiling with schedule-consistent counters — and every
// eighth spec must be bit-identical across GOMAXPROCS {1, 4, 16}.
func TestChaosGate(t *testing.T) {
	const specs = 200
	counts := map[Outcome]int{}
	for seed := int64(1); seed <= specs; seed++ {
		s := gateSpec(seed)
		var (
			r   *RunResult
			err error
		)
		if seed%8 == 0 {
			r, err = RunMatrix(s, []int{1, 4, 16})
		} else {
			r, err = Verify(s)
		}
		if err != nil {
			if r != nil {
				t.Fatalf("spec %s failed: %v\n%s", s, err, r.Summary())
			}
			t.Fatalf("spec %s failed: %v", s, err)
		}
		counts[r.Outcome]++
	}
	t.Logf("gate outcomes over %d specs: finished=%d unrecovered=%d", specs, counts[Finished], counts[Unrecovered])
	if counts[Wedged] != 0 {
		t.Errorf("wedged runs slipped through verification: %d", counts[Wedged])
	}
	if counts[Finished] == 0 {
		t.Error("no spec finished training — the mix is implausibly hostile")
	}
}

// TestChaosRealModeDeterministic runs a real-compute spec through the
// GOMAXPROCS matrix and pins repeat-determinism of the trained
// parameters: two runs of the same seeded chaos schedule must agree
// bit-for-bit.
func TestChaosRealModeDeterministic(t *testing.T) {
	s := Default(42)
	s.Real = true
	s.Iterations = 10
	if _, err := RunMatrix(s, []int{1, 4, 16}); err != nil {
		t.Fatal(err)
	}
	a, err := Verify(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Verify(s)
	if err != nil {
		t.Fatal(err)
	}
	if a.Outcome != b.Outcome {
		t.Fatalf("outcomes diverged: %s vs %s", a.Outcome, b.Outcome)
	}
	if a.Outcome == Finished && !reflect.DeepEqual(a.Res.FinalParams, b.Res.FinalParams) {
		t.Error("repeat run's final parameters diverged")
	}
}

// TestChaosArmedUntripped checks the zero-perturbation invariant for
// a sample of gate specs in both modes.
func TestChaosArmedUntripped(t *testing.T) {
	for _, seed := range []int64{3, 17, 64} {
		if err := ArmedUntripped(gateSpec(seed)); err != nil {
			t.Error(err)
		}
	}
	real := Default(5)
	real.Real = true
	if err := ArmedUntripped(real); err != nil {
		t.Error(err)
	}
}

// TestChaosCounterCheckRejects exercises the verifier itself: a
// report claiming more activity than its schedule budgets must fail.
func TestChaosCounterCheckRejects(t *testing.T) {
	s := Default(1)
	r, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckCounters(r); err != nil {
		t.Fatalf("honest run failed the counter check: %v", err)
	}
	r.Res.Fault.Crashes = 99
	if err := CheckCounters(r); err == nil {
		t.Error("inflated crash counter passed the check")
	}
}
