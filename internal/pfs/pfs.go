// Package pfs models a Lustre-style parallel filesystem: a set of
// object storage targets (OSTs) with independent bandwidth, over which
// large reads stripe. Unlike the single-lock LMDB path, aggregate read
// bandwidth grows with the number of OSTs, so file-per-image reading
// (Caffe's ImageDataLayer) scales with client count — the property
// that lets S-Caffe reach 160 GPUs in Figure 8.
package pfs

import (
	"fmt"

	"scaffe/internal/sim"
)

// FS is one parallel filesystem instance.
type FS struct {
	K *sim.Kernel
	// OSTs are the object storage targets; reads reserve them.
	OSTs []*sim.Resource
	// OSTBW is the per-OST bandwidth in bytes/second.
	OSTBW float64
	// ClientBW caps a single client's ingest rate (its network link).
	ClientBW float64
	// PerFileLat is the metadata/open latency charged per file.
	PerFileLat sim.Duration
}

// New builds a filesystem with numOSTs targets.
func New(k *sim.Kernel, numOSTs int, ostBW, clientBW float64) *FS {
	if numOSTs <= 0 {
		panic("pfs: need at least one OST")
	}
	fs := &FS{K: k, OSTBW: ostBW, ClientBW: clientBW, PerFileLat: 30 * sim.Microsecond}
	for i := 0; i < numOSTs; i++ {
		fs.OSTs = append(fs.OSTs, k.NewResource(fmt.Sprintf("ost%d", i)))
	}
	return fs
}

// Default returns the Lustre configuration used for the Cluster-A
// experiments: 48 OSTs × 3 GB/s.
func Default(k *sim.Kernel) *FS { return New(k, 48, 3e9, 10e9) }

// ReadSpread blocks p for the time it takes one client to read `bytes`
// of data spread uniformly over all OSTs (the steady state of a
// data-reader thread pulling many image files): each OST serves its
// share at its own rate, the client is capped at ClientBW, and `files`
// metadata operations are charged.
func (f *FS) ReadSpread(p *sim.Proc, bytes int64, files int) {
	now := p.Now()
	share := bytes / int64(len(f.OSTs))
	perOST := sim.Duration(float64(share) / f.OSTBW * float64(sim.Second))
	end := now
	for _, ost := range f.OSTs {
		_, e := ost.Reserve(now, perOST)
		if e > end {
			end = e
		}
	}
	clientTime := now + sim.Duration(float64(bytes)/f.ClientBW*float64(sim.Second))
	if clientTime > end {
		end = clientTime
	}
	end += sim.Duration(files) * f.PerFileLat
	p.WaitUntil(end)
}

// ReadFile blocks p while reading one file of `bytes` striped from a
// deterministic OST (small files land on a single OST).
func (f *FS) ReadFile(p *sim.Proc, fileID int64, bytes int64) {
	ost := f.OSTs[int(fileID)%len(f.OSTs)]
	dur := f.PerFileLat + sim.Duration(float64(bytes)/f.OSTBW*float64(sim.Second))
	_, end := ost.Reserve(p.Now(), dur)
	p.WaitUntil(end)
}
