// Package nolintfix exercises the //scaffe:nolint machinery: a
// well-formed suppression silences its diagnostic, and the linter
// polices the directives themselves (the want-1 expectations attach to
// the directive line above, which cannot carry a second comment).
package nolintfix

import "time"

// The suppression below is well-formed, so the time.Now violation it
// covers produces no diagnostic.
func suppressed() time.Time {
	//scaffe:nolint determinism fixture demonstrates a justified wall-clock read
	return time.Now()
}

func badDirectives() time.Time {
	//scaffe:nolint
	t := time.Now() // want `time.Now reads the wall clock` want-1 `malformed //scaffe:nolint`

	//scaffe:nolint bogus some reason
	u := time.Now() // want `time.Now reads the wall clock` want-1 `unknown pass "bogus"`

	//scaffe:nolint determinism
	v := time.Now() // want `time.Now reads the wall clock` want-1 `needs a non-empty reason`

	return t.Add(time.Until(u)).Add(time.Until(v))
}
