// Package exclfix seeds violations of the parallel-lookahead staging
// discipline the exclusive pass enforces (DESIGN.md §13): code holding
// a //scaffe:parallel obligation may not reach a kernel-visible sink
// (Kernel scheduling entry points, Completion firing methods) outside
// serial context, and the parSegment's state fields may only be
// mutated by the staging API itself — that second rule is
// unconditional, it binds serial helpers too. The types mirror the
// sim kernel's by name, which is how the pass matches them.
package exclfix

type Time int64

type event struct {
	at Time
}

type parSegment struct {
	staged    []event
	tail      bool
	finishing bool
	failure   any
}

// add is the staging API: parSegment methods may touch segment state.
func (s *parSegment) add(e event) {
	s.staged = append(s.staged, e)
}

type Proc struct {
	stage *parSegment
	seg   parSegment
}

// Exclusive is staging API: the demotion protocol owns the tail flag.
func (p *Proc) Exclusive() {
	if s := p.stage; s != nil {
		s.tail = true
	}
}

type Completion struct {
	fired bool
}

func (c *Completion) Fire() {
	c.fired = true
}

func (c *Completion) FireIf(seq uint64) {}

type Kernel struct {
	now Time
}

func (k *Kernel) At(t Time, fn func()) {}

func (k *Kernel) schedule(e event) {}

func (k *Kernel) wakeAt(p *Proc, t Time) {}

// speculativeFire reaches kernel sinks with no stage awareness
// anywhere before them: both calls must be staged or demoted.
//
//scaffe:parallel
func speculativeFire(k *Kernel, c *Completion) {
	k.At(k.now, func() {}) // want `Kernel\.At is a kernel-visible effect outside serial context`
	c.Fire()               // want `Completion\.Fire is a kernel-visible effect outside serial context`
}

// rootSpec propagates the obligation: helperFires carries no
// annotation, and the diagnostics name the root.
//
//scaffe:parallel
func rootSpec(k *Kernel, c *Completion) {
	helperFires(k, c)
}

func helperFires(k *Kernel, c *Completion) {
	k.wakeAt(nil, k.now) // want `Kernel\.wakeAt.*via exclfix\.rootSpec → exclfix\.helperFires`
	c.FireIf(7)          // want `Completion\.FireIf.*via exclfix\.rootSpec → exclfix\.helperFires`
}

// speculativeMutates pokes segment state directly instead of going
// through the staging API.
//
//scaffe:parallel
func speculativeMutates(p *Proc) {
	p.seg.tail = true // want `direct mutation of parSegment\.tail`
	p.stage = nil     // want `direct mutation of Proc\.stage`
}

// serialPoke shows rule 2 is unconditional: no parallel annotation,
// still flagged.
func serialPoke(p *Proc) {
	p.seg.finishing = true // want `direct mutation of parSegment\.finishing`
}

// stagedProperly is the clean twin: the stage guard routes the
// speculative arm through the staging API, so the sink call after the
// guard provably runs in serial context. Silent.
//
//scaffe:parallel
func stagedProperly(p *Proc, k *Kernel, c *Completion) {
	if s := p.stage; s != nil {
		s.add(event{at: k.now})
		return
	}
	c.Fire()
}

// demotesFirst serializes via Proc.Exclusive before the sink. Silent.
//
//scaffe:parallel
func demotesFirst(p *Proc, k *Kernel) {
	p.Exclusive()
	k.schedule(event{at: k.now})
}
