package gpu

import (
	"errors"
	"testing"
	"testing/quick"

	"scaffe/internal/sim"
	"scaffe/internal/topology"
)

func testDevice() (*sim.Kernel, *Device) {
	k := sim.New()
	c := topology.New(k, "t", 1, 1, topology.DefaultParams())
	return k, NewDevice(c, topology.DeviceID{Node: 0, Local: 0})
}

func TestAllocFree(t *testing.T) {
	_, d := testDevice()
	d.SetMemCapacity(100)
	if err := d.Alloc(60); err != nil {
		t.Fatal(err)
	}
	if d.MemUsed() != 60 {
		t.Errorf("MemUsed = %d, want 60", d.MemUsed())
	}
	err := d.Alloc(50)
	if err == nil {
		t.Fatal("expected out-of-memory error")
	}
	var oom *ErrOutOfMemory
	if !errors.As(err, &oom) {
		t.Fatalf("error type = %T, want *ErrOutOfMemory", err)
	}
	if oom.Requested != 50 || oom.Free != 40 {
		t.Errorf("oom = %+v, want requested=50 free=40", oom)
	}
	d.Free(60)
	if d.MemUsed() != 0 {
		t.Errorf("MemUsed after free = %d, want 0", d.MemUsed())
	}
	d.Free(10) // over-free clamps to zero
	if d.MemUsed() != 0 {
		t.Errorf("MemUsed after over-free = %d, want 0", d.MemUsed())
	}
}

func TestKernelTimeMonotonic(t *testing.T) {
	_, d := testDevice()
	if d.KernelTime(0) <= 0 {
		t.Error("zero-FLOP kernel should still pay launch latency")
	}
	if d.KernelTime(1e9) <= d.KernelTime(1e6) {
		t.Error("more FLOPs should take longer")
	}
}

func TestComputeStreamSerializes(t *testing.T) {
	_, d := testDevice()
	_, e1 := d.LaunchCompute(0, 1e9)
	s2, _ := d.LaunchCompute(0, 1e9)
	if s2 != e1 {
		t.Errorf("second kernel started at %v, want back-to-back at %v", s2, e1)
	}
	if d.Launches() != 2 {
		t.Errorf("Launches = %d, want 2", d.Launches())
	}
}

func TestCommStreamConcurrentWithCompute(t *testing.T) {
	_, d := testDevice()
	_, e1 := d.LaunchCompute(0, 1e9)
	s2, _ := d.LaunchReduce(0, 64<<20)
	if s2 >= e1 {
		t.Errorf("reduce kernel (start %v) should overlap compute (ends %v)", s2, e1)
	}
}

func TestBufferBasics(t *testing.T) {
	b := NewDataBuffer(8)
	if b.Bytes != 32 || b.Elems() != 8 {
		t.Errorf("buffer geometry: bytes=%d elems=%d", b.Bytes, b.Elems())
	}
	b.Fill(2)
	c := b.Clone()
	c.Data[0] = 99
	if b.Data[0] != 2 {
		t.Error("Clone should not alias the original")
	}
	b.Scale(0.5)
	if b.Data[3] != 1 {
		t.Errorf("Scale result = %v, want 1", b.Data[3])
	}
}

func TestBufferSliceAliases(t *testing.T) {
	b := NewDataBuffer(10)
	v := b.Slice(2, 5)
	if v.Elems() != 3 {
		t.Fatalf("slice elems = %d, want 3", v.Elems())
	}
	v.Fill(7)
	if b.Data[2] != 7 || b.Data[4] != 7 || b.Data[5] != 0 {
		t.Errorf("slice should alias parent: %v", b.Data)
	}
}

func TestBufferSliceOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-range slice")
		}
	}()
	NewDataBuffer(4).Slice(0, 5)
}

func TestBufferCopySizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on size mismatch")
		}
	}()
	NewDataBuffer(4).CopyFrom(NewDataBuffer(5))
}

func TestAccumulatePayloadFree(t *testing.T) {
	a := NewBuffer(64)
	b := NewBuffer(64)
	a.Accumulate(b) // must not panic without payloads
}

func TestWrapData(t *testing.T) {
	d := []float32{1, 2, 3}
	b := WrapData(d)
	if b.Bytes != 12 {
		t.Errorf("Bytes = %d, want 12", b.Bytes)
	}
	b.Data[0] = 9
	if d[0] != 9 {
		t.Error("WrapData must alias the slice")
	}
}

func TestAccumulateProperty(t *testing.T) {
	// Accumulate is element-wise addition.
	f := func(a, b []float32) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		x := WrapData(append([]float32(nil), a[:n]...))
		y := WrapData(append([]float32(nil), b[:n]...))
		x.Accumulate(y)
		for i := 0; i < n; i++ {
			if x.Data[i] != a[i]+b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetSlowdown(t *testing.T) {
	_, d := testDevice()
	s, e := d.LaunchCompute(0, 1e9)
	fast := e - s
	_, d2 := testDevice()
	d2.SetSlowdown(3)
	s, e = d2.LaunchCompute(0, 1e9)
	slow := e - s
	if ratio := float64(slow) / float64(fast); ratio < 2.9 || ratio > 3.1 {
		t.Errorf("3x slowdown gave %.2fx kernels", ratio)
	}
	// Sub-1 factors clamp to nominal speed.
	d2.SetSlowdown(0.5)
	s, e = d2.LaunchReduce(0, 1<<20)
	clamped := e - s
	s, e = d.LaunchReduce(0, 1<<20)
	ref := e - s
	if clamped != ref {
		t.Errorf("slowdown clamp: reduce took %v, want %v", clamped, ref)
	}
}
