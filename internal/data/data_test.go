package data

import (
	"testing"

	"scaffe/internal/layers"
	"scaffe/internal/pfs"
	"scaffe/internal/sim"
)

func TestSyntheticDeterministic(t *testing.T) {
	d := SyntheticCIFAR10(100, 7)
	a := d.At(42)
	b := d.At(42)
	if a.Label != b.Label {
		t.Fatal("labels differ across calls")
	}
	for i := range a.Image {
		if a.Image[i] != b.Image[i] {
			t.Fatal("images differ across calls")
		}
	}
	d2 := SyntheticCIFAR10(100, 7)
	c := d2.At(42)
	if c.Label != a.Label || c.Image[0] != a.Image[0] {
		t.Fatal("same seed produced different dataset")
	}
}

func TestSyntheticGeometry(t *testing.T) {
	m := SyntheticMNIST(10, 1)
	if m.Shape() != (layers.Shape{C: 1, H: 28, W: 28}) || m.Classes() != 10 || m.Len() != 10 {
		t.Error("MNIST geometry wrong")
	}
	im := SyntheticImageNet(5, 1)
	if im.Shape().Elems() != 3*224*224 || im.Classes() != 1000 {
		t.Error("ImageNet geometry wrong")
	}
	if im.Name() != "synthetic-imagenet" {
		t.Error("name wrong")
	}
	s := im.At(3)
	if len(s.Image) != 3*224*224 || s.Label < 0 || s.Label >= 1000 {
		t.Error("sample geometry wrong")
	}
}

func TestSyntheticOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range sample")
		}
	}()
	SyntheticMNIST(5, 1).At(5)
}

func TestBatchTensorWraps(t *testing.T) {
	d := SyntheticMNIST(10, 3)
	img, labels := BatchTensor(d, 8, 4) // wraps to samples 8,9,0,1
	if len(img) != 4*28*28 || len(labels) != 4 {
		t.Fatal("batch geometry wrong")
	}
	s0 := d.At(8)
	s2 := d.At(0)
	if labels[0] != s0.Label || labels[2] != s2.Label {
		t.Error("wrapped batch picked wrong samples")
	}
	if img[0] != s0.Image[0] || img[2*28*28] != s2.Image[0] {
		t.Error("wrapped batch copied wrong images")
	}
}

func TestInMemorySourceFree(t *testing.T) {
	k := sim.New()
	var took sim.Duration
	k.Spawn("r", func(p *sim.Proc) {
		before := p.Now()
		InMemory{}.ReadBatch(p, 1000, 150000)
		took = p.Now() - before
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if took != 0 {
		t.Errorf("in-memory read cost %v", took)
	}
}

func TestLMDBPenaltyShape(t *testing.T) {
	k := sim.New()
	at64 := NewLMDBSource(k, 64).Penalty()
	at128 := NewLMDBSource(k, 128).Penalty()
	at160 := NewLMDBSource(k, 160).Penalty()
	if at64 != 1 {
		t.Errorf("penalty(64) = %v, want 1", at64)
	}
	if at128 <= at64 || at160 <= at128 {
		t.Errorf("penalty must grow past the slot limit: %v %v %v", at64, at128, at160)
	}
}

func TestLMDBSharedDiskSerializes(t *testing.T) {
	// Readers share the environment's sequential bandwidth: four
	// concurrent disk-bound batches take ~4x one batch.
	batchTime := func(readers int) sim.Duration {
		k := sim.New()
		src := NewLMDBSource(k, readers)
		var latest sim.Time
		for i := 0; i < readers; i++ {
			k.Spawn("r", func(p *sim.Proc) {
				src.ReadBatch(p, 256, 1<<20) // 256 MB: disk-dominated
				if p.Now() > latest {
					latest = p.Now()
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return latest
	}
	one := batchTime(1)
	four := batchTime(4)
	if four < 3*one {
		t.Errorf("4 readers finished in %v; expected ~4x one reader's %v", four, one)
	}
}

func TestLMDBCheapBelowSlotLimit(t *testing.T) {
	// Below the slot limit, small batches cost little more with 32
	// readers than with 1: LMDB reads are MVCC and nearly lock-free.
	batchTime := func(readers int) sim.Duration {
		k := sim.New()
		src := NewLMDBSource(k, readers)
		var latest sim.Time
		for i := 0; i < readers; i++ {
			k.Spawn("r", func(p *sim.Proc) {
				src.ReadBatch(p, 16, 3100)
				if p.Now() > latest {
					latest = p.Now()
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return latest
	}
	one := batchTime(1)
	many := batchTime(32)
	if many > 10*one {
		t.Errorf("32 small-batch readers took %v vs single %v; sub-limit reads should stay cheap", many, one)
	}
}

func TestImageDataSourceScales(t *testing.T) {
	// Aggregate PFS bandwidth lets N readers finish in much less than
	// N x single-reader time.
	batchTime := func(readers int) sim.Duration {
		k := sim.New()
		src := NewImageDataSource(pfs.Default(k))
		var latest sim.Time
		for i := 0; i < readers; i++ {
			k.Spawn("r", func(p *sim.Proc) {
				src.ReadBatch(p, 64, 150000)
				if p.Now() > latest {
					latest = p.Now()
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return latest
	}
	one := batchTime(1)
	sixteen := batchTime(16)
	if sixteen > 8*one {
		t.Errorf("16 PFS readers took %v vs single %v; should scale sublinearly", sixteen, one)
	}
	if src := NewImageDataSource(pfs.Default(sim.New())); src.Name() != "imagedata" {
		t.Error("name wrong")
	}
}

func TestReaderPrefetchHidesIO(t *testing.T) {
	// With queue depth 2, the solver's second Next should find data
	// already buffered when compute is slower than I/O.
	k := sim.New()
	src := &fixedCostSource{cost: 10 * sim.Millisecond}
	r := StartReader(k, "reader", src, 32, 1000, 4, 2)
	var waits []sim.Duration
	k.Spawn("solver", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			before := p.Now()
			r.Next(p)
			waits = append(waits, p.Now()-before)
			p.Sleep(50 * sim.Millisecond) // compute longer than I/O
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if waits[0] == 0 {
		t.Error("first batch should cost I/O time")
	}
	for i, w := range waits[1:] {
		if w != 0 {
			t.Errorf("batch %d not prefetched: waited %v", i+1, w)
		}
	}
}

func TestSharedReaderFeedsAllConsumers(t *testing.T) {
	k := sim.New()
	src := &fixedCostSource{cost: sim.Millisecond}
	r := StartSharedReader(k, "reader", src, 64, 1000, 3, 4, 8)
	finished := 0
	for c := 0; c < 4; c++ {
		k.Spawn("solver", func(p *sim.Proc) {
			for i := 0; i < 3; i++ {
				r.Next(p)
			}
			finished++
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if finished != 4 {
		t.Errorf("%d consumers finished, want 4", finished)
	}
}

type fixedCostSource struct{ cost sim.Duration }

func (f *fixedCostSource) Name() string { return "fixed" }
func (f *fixedCostSource) ReadBatch(p *sim.Proc, n int, bytesPer int64) {
	p.Sleep(f.cost)
}
