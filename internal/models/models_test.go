package models

import (
	"math"
	"math/rand"
	"testing"

	"scaffe/internal/tensor"
)

func TestAlexNetGeometry(t *testing.T) {
	s := AlexNet()
	// The canonical AlexNet parameter budget (the paper's ~61M /
	// ~244 MB "very large message").
	if got := s.TotalParams(); got != 60965224 {
		t.Errorf("AlexNet params = %d, want 60965224", got)
	}
	if mb := float64(s.ParamBytes()) / (1 << 20); mb < 230 || mb > 240 {
		t.Errorf("AlexNet gradient buffer = %.1f MiB, want ~233", mb)
	}
	// Per-layer spot checks against the prototxt.
	byName := map[string]LayerSpec{}
	for _, l := range s.Layers {
		byName[l.Name] = l
	}
	checks := map[string]int{
		"conv1": 96*3*11*11 + 96,
		"conv2": 256*48*5*5 + 256, // grouped: 96/2 input channels
		"conv3": 384*256*3*3 + 384,
		"conv4": 384*192*3*3 + 384,
		"conv5": 256*192*3*3 + 256,
		"fc6":   4096*9216 + 4096,
		"fc7":   4096*4096 + 4096,
		"fc8":   1000*4096 + 1000,
	}
	for name, want := range checks {
		if got := byName[name].ParamElems; got != want {
			t.Errorf("%s params = %d, want %d", name, got, want)
		}
	}
	// AlexNet forward is ~1.4 GFLOP/sample (2 FLOPs per MAC).
	if gf := s.FwdFLOPs() / 1e9; gf < 1.2 || gf > 1.8 {
		t.Errorf("AlexNet fwd = %.2f GFLOP, want ~1.4", gf)
	}
	if s.Classes != 1000 {
		t.Errorf("classes = %d", s.Classes)
	}
}

func TestCaffeNetMatchesAlexNetBudget(t *testing.T) {
	a, c := AlexNet(), CaffeNet()
	if a.TotalParams() != c.TotalParams() {
		t.Errorf("CaffeNet params %d != AlexNet %d", c.TotalParams(), a.TotalParams())
	}
}

func TestGoogLeNetGeometry(t *testing.T) {
	s := GoogLeNet()
	// BVLC GoogLeNet with both aux heads: ~13.4M parameters.
	if m := float64(s.TotalParams()) / 1e6; m < 12.5 || m > 14.5 {
		t.Errorf("GoogLeNet params = %.2fM, want ~13.4M", m)
	}
	// Main-trunk classifier input must be 1024 (pool5 output).
	var cls LayerSpec
	for _, l := range s.Layers {
		if l.Name == "loss3/classifier" {
			cls = l
		}
	}
	if cls.ParamElems != 1000*1024+1000 {
		t.Errorf("loss3/classifier params = %d, want %d", cls.ParamElems, 1000*1024+1000)
	}
	// GoogLeNet forward ~2x AlexNet's despite 4.5x fewer params
	// (the communication-vs-compute contrast of Figures 8/10).
	if gf := s.FwdFLOPs() / 1e9; gf < 2.5 || gf > 4.5 {
		t.Errorf("GoogLeNet fwd = %.2f GFLOP, want ~3.2", gf)
	}
	if len(s.ParamLayers()) < 50 {
		t.Errorf("GoogLeNet has %d param layers; expected 60+ conv/fc units", len(s.ParamLayers()))
	}
}

func TestCIFAR10QuickGeometry(t *testing.T) {
	s, err := ByName("cifar10-quick")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.TotalParams(); got != 145578 {
		t.Errorf("cifar10-quick params = %d, want 145578", got)
	}
}

func TestLeNetGeometry(t *testing.T) {
	s, err := ByName("lenet")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.TotalParams(); got != 431080 {
		t.Errorf("lenet params = %d, want 431080", got)
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("resnet-9000"); err == nil {
		t.Error("unknown model should error")
	}
	for _, name := range []string{"lenet", "cifar10-quick", "alexnet", "caffenet", "googlenet", "vgg16", "nin", "tiny"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestVGG16Geometry(t *testing.T) {
	s := VGG16()
	// VGG-16 (config D): 138,357,544 parameters, ~528 MB of float32
	// gradients — past the top of the paper's message-size sweep.
	if got := s.TotalParams(); got != 138357544 {
		t.Errorf("VGG-16 params = %d, want 138357544", got)
	}
	// ~30.9 GFLOP per forward sample (2 FLOPs per MAC).
	if gf := s.FwdFLOPs() / 1e9; gf < 28 || gf > 34 {
		t.Errorf("VGG-16 fwd = %.1f GFLOP, want ~31", gf)
	}
}

func TestNiNGeometry(t *testing.T) {
	s := NetworkInNetwork()
	// NiN ImageNet: ~7.6M parameters, conv-only.
	if m := float64(s.TotalParams()) / 1e6; m < 7 || m > 8.5 {
		t.Errorf("NiN params = %.2fM, want ~7.6M", m)
	}
	for _, l := range s.Layers {
		if l.Kind == "InnerProduct" {
			t.Errorf("NiN should have no fully-connected layers, found %s", l.Name)
		}
	}
	if s.Classes != 1000 {
		t.Errorf("NiN classes = %d (global average pooling should leave 1000 maps)", s.Classes)
	}
}

func TestSpecFromNetConsistency(t *testing.T) {
	net := BuildCIFAR10Quick(4, 1)
	s := SpecFromNet(net)
	if s.TotalParams() != net.TotalParams() {
		t.Errorf("spec params %d != net params %d", s.TotalParams(), net.TotalParams())
	}
	if len(s.Layers) != len(net.Layers) {
		t.Errorf("spec has %d layers, net has %d", len(s.Layers), len(net.Layers))
	}
	if len(s.ParamLayers()) != len(net.ParamLayers()) {
		t.Errorf("param layer sets differ")
	}
	if s.Classes != 10 {
		t.Errorf("classes = %d", s.Classes)
	}
}

func TestActivationElemsPositive(t *testing.T) {
	for _, name := range []string{"alexnet", "googlenet", "cifar10-quick"} {
		s, _ := ByName(name)
		if s.ActivationElems() <= 0 {
			t.Errorf("%s has no activation footprint", name)
		}
		for i, l := range s.Layers {
			if l.OutElems <= 0 {
				t.Errorf("%s layer %d (%s) OutElems = %d", name, i, l.Name, l.OutElems)
			}
		}
	}
}

func TestBwdCostsExceedFwd(t *testing.T) {
	for _, name := range []string{"alexnet", "googlenet"} {
		s, _ := ByName(name)
		if s.BwdFLOPs() <= s.FwdFLOPs() {
			t.Errorf("%s backward (%.1f) should cost more than forward (%.1f)",
				name, s.BwdFLOPs()/1e9, s.FwdFLOPs()/1e9)
		}
	}
}

func TestLayerSpecParamBytes(t *testing.T) {
	l := LayerSpec{ParamElems: 10}
	if l.ParamBytes() != 40 {
		t.Errorf("ParamBytes = %d", l.ParamBytes())
	}
}

func TestRealAlexNetMatchesSpec(t *testing.T) {
	// The real-compute AlexNet (grouped convs included) must agree
	// with the arithmetic spec on every layer's parameter count — the
	// cross-check between the two execution faces on the paper's
	// flagship model.
	net := BuildAlexNet(1, 1)
	spec := AlexNet()
	if net.TotalParams() != spec.TotalParams() {
		t.Fatalf("real AlexNet has %d params, spec says %d", net.TotalParams(), spec.TotalParams())
	}
	derived := SpecFromNet(net)
	if len(derived.Layers) != len(spec.Layers) {
		t.Fatalf("layer counts differ: %d vs %d", len(derived.Layers), len(spec.Layers))
	}
	for i := range spec.Layers {
		if derived.Layers[i].ParamElems != spec.Layers[i].ParamElems {
			t.Errorf("layer %d (%s): real %d params, spec %d",
				i, spec.Layers[i].Name, derived.Layers[i].ParamElems, spec.Layers[i].ParamElems)
		}
		if derived.Layers[i].OutElems != spec.Layers[i].OutElems {
			t.Errorf("layer %d (%s): real out %d, spec %d",
				i, spec.Layers[i].Name, derived.Layers[i].OutElems, spec.Layers[i].OutElems)
		}
	}
}

func TestRealAlexNetForward(t *testing.T) {
	if testing.Short() {
		t.Skip("1.4 GFLOP forward pass")
	}
	net := BuildAlexNet(1, 1)
	x := tensor.New(1, 3, 227, 227)
	rng := rand.New(rand.NewSource(4))
	for i := range x.Data {
		x.Data[i] = rng.Float32()
	}
	loss := net.Forward(x, []int{42})
	if loss <= 0 || math.IsNaN(float64(loss)) {
		t.Fatalf("AlexNet forward loss = %v", loss)
	}
	// Random init over 1000 classes: loss ≈ ln(1000) ≈ 6.9.
	if loss < 4 || loss > 10 {
		t.Errorf("AlexNet initial loss %v far from ln(1000)", loss)
	}
}
