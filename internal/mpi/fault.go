package mpi

import (
	"scaffe/internal/gpu"
	"scaffe/internal/sim"
	"scaffe/internal/topology"
)

// ULFM-style fault tolerance: when the world carries a fault plane
// (World.Fault non-nil), every blocking wait runs in deadline slices.
// A deadline that expires without progress consults the plane — if a
// rank is dead the communicator is revoked and the wait panics with
// Revoked{}, which the engine catches to enter recovery; otherwise
// the wait retries with exponential backoff, riding out transient
// slowness (stragglers, degraded links). Without a plane every code
// path below is byte-for-byte the pre-fault behavior.

// Revoked is the panic value thrown by fault-aware MPI operations
// once the communicator has been revoked. It unwinds the current
// iteration; the engine recovers it and rendezvouses the survivors.
type Revoked struct{}

func (Revoked) Error() string { return "mpi: communicator revoked" }

// IsRevoked reports whether a recovered panic value is the
// communicator-revocation signal.
func IsRevoked(rec any) bool {
	_, ok := rec.(Revoked)
	return ok
}

// ftCheck aborts the calling operation immediately when the
// communicator is already revoked, so a rank cannot start new traffic
// against a dead world.
func (r *Rank) ftCheck() {
	if pl := r.W.Fault; pl != nil && pl.Revoked() {
		panic(Revoked{})
	}
}

// waitFT waits for c on proc p in deadline slices (see the package
// comment above). p is the calling proc — the rank's main thread or
// one of its helper threads.
func (r *Rank) waitFT(p *sim.Proc, c *sim.Completion) {
	pl := r.W.Fault
	if pl.Revoked() {
		panic(Revoked{})
	}
	for attempt := 0; !p.WaitTimeout(c, pl.Timeout(attempt)); attempt++ {
		if pl.OnTimeout(r.ID, attempt, r.Now()) {
			panic(Revoked{})
		}
	}
}

// WaitDep blocks p until c fires: a plain wait without a fault plane,
// a deadline-sliced one with it. The iteration scheduler uses it for
// dependency edges so helper lanes also observe revocations.
func (r *Rank) WaitDep(p *sim.Proc, c *sim.Completion) {
	if r.W.Fault == nil {
		p.Wait(c)
		return
	}
	r.waitFT(p, c)
}

// KillThreads kills the rank's live helper threads (stale lanes of an
// abandoned iteration during recovery).
func (r *Rank) KillThreads() {
	for _, t := range r.threads {
		t.Kill()
	}
	r.threads = r.threads[:0]
}

// KillAll fail-stops the rank: helper threads first, then the main
// proc. The fault plane's crash applier calls this.
func (r *Rank) KillAll() {
	r.KillThreads()
	if r.Proc != nil {
		r.Proc.Kill()
	}
}

// ShrinkComm builds a fresh communicator over the given ascending
// world ranks — MPI_Comm_shrink over the survivors. The new comm has
// its own id, so stale point-to-point and broadcast state of the
// revoked comm can never match against it.
func (w *World) ShrinkComm(alive []int) *Comm {
	w.bumpEpoch()
	return w.newComm(append([]int(nil), alive...))
}

// GrowComm builds a fresh communicator over the given ascending world
// ranks, including ranks readmitted through the join path — the
// grow-side counterpart of ShrinkComm. The fresh id guarantees that
// traffic from any earlier epoch, including a member's pre-failure
// life, can never match against the grown communicator.
func (w *World) GrowComm(members []int) *Comm {
	w.bumpEpoch()
	return w.newComm(append([]int(nil), members...))
}

// IjoinAck is the joining rank's half of the post-admission handshake:
// a non-blocking send of its greeting to the root of the grown
// communicator, confirming the joiner reached the new epoch before the
// catch-up broadcast starts. Like every non-blocking operation the
// returned request must reach Wait.
func (r *Rank) IjoinAck(c *Comm, tag int, buf *gpu.Buffer) *Request {
	return r.Isend(c, 0, tag, buf, topology.ModeAuto)
}

// IjoinAckRecv is the root's half of the post-admission handshake: the
// matching non-blocking receive for one admitted rank's IjoinAck. The
// returned request must reach Wait.
func (r *Rank) IjoinAckRecv(c *Comm, from, tag int, buf *gpu.Buffer) *Request {
	return r.Irecv(c, from, tag, buf)
}
