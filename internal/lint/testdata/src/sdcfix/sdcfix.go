// Package sdcfix seeds integrity violations of the mpi pass for the
// golden fixture test: checksummed receives whose payload never
// reaches Verify.
package sdcfix

import (
	"scaffe/internal/gpu"
	"scaffe/internal/mpi"
)

const fixTag = 7

func discarded(r *mpi.Rank, c *mpi.Comm, buf *gpu.Buffer) {
	r.RecvSummed(c, 1, fixTag, buf)     // want `mpi.RecvSummed result discarded`
	_ = r.RecvSummed(c, 1, fixTag, buf) // want `mpi.RecvSummed result discarded`
}

func leakedOnReturn(r *mpi.Rank, c *mpi.Comm, buf *gpu.Buffer) {
	s := r.RecvSummed(c, 1, fixTag, buf) // want `checksummed receive from mpi.RecvSummed does not reach Verify`
	if buf.Bytes > 0 {
		return
	}
	_ = s
}

func leakedOnOverwrite(r *mpi.Rank, c *mpi.Comm, buf *gpu.Buffer) {
	s := r.RecvSummed(c, 1, fixTag, buf) // want `checksummed receive from mpi.RecvSummed does not reach Verify`
	if buf.Bytes > 0 {
		s = r.RecvSummed(c, 1, fixTag, buf)
		s.Verify()
	}
}

func wellBehaved(r *mpi.Rank, c *mpi.Comm, buf *gpu.Buffer) {
	r.RecvSummed(c, 1, fixTag, buf).Verify() // chained: the idiomatic form

	s := r.RecvSummed(c, 1, fixTag+1, buf)
	s.Verify()

	var late *mpi.Summed
	if buf.Bytes > 0 {
		late = r.RecvSummed(c, 1, fixTag, buf)
	}
	late.Verify() // nil-safe: unarmed receives return nil
}
