package layers

import (
	"fmt"
	"math/rand"

	"scaffe/internal/tensor"
)

// Conv is a 2-D convolution layer (im2col + GEMM lowering, the same
// strategy Caffe uses), with optional grouped convolution — AlexNet's
// conv2/4/5 split their channels in two groups, a relic of the
// original dual-GPU implementation that halves those layers'
// parameters.
type Conv struct {
	base
	OutC             int
	KernelH, KernelW int
	StrideH, StrideW int
	PadH, PadW       int
	Groups           int

	geom    tensor.ConvGeom // per-group geometry
	weights *tensor.Tensor  // OutC x (InC/G*kh*kw)
	bias    *tensor.Tensor  // OutC
	wGrad   *tensor.Tensor
	bGrad   *tensor.Tensor
	col     []float32 // im2col scratch for one sample, one group
	colGrad []float32 // column-space gradient scratch, same shape as col
	lastIn  *tensor.Tensor

	params []*tensor.Tensor // cached Params/Grads results so the
	grads  []*tensor.Tensor // per-iteration accessors don't allocate
}

// NewConv creates a square-kernel convolution.
func NewConv(name string, outC, kernel, stride, pad int) *Conv {
	return NewConvGroups(name, outC, kernel, stride, pad, 1)
}

// NewConvGroups creates a grouped square-kernel convolution; input and
// output channels must divide evenly by groups.
func NewConvGroups(name string, outC, kernel, stride, pad, groups int) *Conv {
	if groups < 1 {
		panic(fmt.Sprintf("layers: %s: groups must be >= 1", name))
	}
	if outC%groups != 0 {
		panic(fmt.Sprintf("layers: %s: %d output channels not divisible by %d groups", name, outC, groups))
	}
	return &Conv{
		base: base{name: name}, OutC: outC,
		KernelH: kernel, KernelW: kernel,
		StrideH: stride, StrideW: stride,
		PadH: pad, PadW: pad,
		Groups: groups,
	}
}

// Kind implements Layer.
func (c *Conv) Kind() string { return "Convolution" }

func (c *Conv) geomFor(in Shape) tensor.ConvGeom {
	return tensor.ConvGeom{
		InC: in.C / c.Groups, InH: in.H, InW: in.W,
		KernelH: c.KernelH, KernelW: c.KernelW,
		StrideH: c.StrideH, StrideW: c.StrideW,
		PadH: c.PadH, PadW: c.PadW,
	}
}

// OutShape implements Layer.
func (c *Conv) OutShape(in Shape) Shape {
	g := c.geomFor(in)
	return Shape{C: c.OutC, H: g.OutH(), W: g.OutW()}
}

// ParamElems implements Layer.
func (c *Conv) ParamElems(in Shape) int {
	return c.OutC*(in.C/c.Groups)*c.KernelH*c.KernelW + c.OutC
}

// FwdFLOPs implements Layer: 2·outC·outH·outW·(inC/G·kh·kw) MACs.
func (c *Conv) FwdFLOPs(in Shape) float64 {
	out := c.OutShape(in)
	return 2 * float64(out.C*out.H*out.W) * float64((in.C/c.Groups)*c.KernelH*c.KernelW)
}

// BwdFLOPs implements Layer: weight-gradient and input-gradient GEMMs
// each cost a forward pass.
func (c *Conv) BwdFLOPs(in Shape) float64 { return 2 * c.FwdFLOPs(in) }

// Setup implements Layer.
func (c *Conv) Setup(in Shape, batch int, rng *rand.Rand) {
	if in.C%c.Groups != 0 {
		panic(fmt.Sprintf("layers: %s: %d input channels not divisible by %d groups", c.name, in.C, c.Groups))
	}
	c.setup(in, batch)
	c.geom = c.geomFor(in)
	k := (in.C / c.Groups) * c.KernelH * c.KernelW
	c.weights = tensor.New(c.OutC, k)
	c.weights.XavierInit(rng, k)
	c.bias = tensor.New(c.OutC)
	c.wGrad = tensor.New(c.OutC, k)
	c.bGrad = tensor.New(c.OutC)
	c.col = make([]float32, k*c.geom.OutH()*c.geom.OutW())
	c.colGrad = make([]float32, k*c.geom.OutH()*c.geom.OutW())
	c.allocBlobs(c.OutShape(in))
	c.params = []*tensor.Tensor{c.weights, c.bias}
	c.grads = []*tensor.Tensor{c.wGrad, c.bGrad}
}

// Forward implements Layer.
//
//scaffe:hotpath
func (c *Conv) Forward(in *tensor.Tensor) *tensor.Tensor {
	c.checkIn(in)
	c.lastIn = in
	out := c.OutShape(c.in)
	spatial := out.H * out.W
	k := (c.in.C / c.Groups) * c.KernelH * c.KernelW
	outCg := c.OutC / c.Groups
	inCg := c.in.C / c.Groups
	res := c.out
	inSz := c.in.Elems()
	outSz := out.Elems()
	for b := 0; b < c.batch; b++ {
		sample := in.Data[b*inSz : (b+1)*inSz]
		dstAll := res.Data[b*outSz : (b+1)*outSz]
		for g := 0; g < c.Groups; g++ {
			tensor.Im2col(c.geom, sample[g*inCg*c.in.H*c.in.W:], c.col)
			dst := dstAll[g*outCg*spatial : (g+1)*outCg*spatial]
			w := c.weights.Data[g*outCg*k : (g+1)*outCg*k]
			tensor.Gemm(false, false, outCg, spatial, k, 1, w, c.col, 0, dst)
		}
		for oc := 0; oc < out.C; oc++ {
			bv := c.bias.Data[oc]
			row := dstAll[oc*spatial : (oc+1)*spatial]
			for i := range row {
				row[i] += bv
			}
		}
	}
	return res
}

// Backward implements Layer.
//
//scaffe:hotpath
func (c *Conv) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	out := c.OutShape(c.in)
	spatial := out.H * out.W
	k := (c.in.C / c.Groups) * c.KernelH * c.KernelW
	outCg := c.OutC / c.Groups
	inCg := c.in.C / c.Groups
	gradIn := c.gradIn
	gradIn.Zero() // Col2im accumulates into its target
	inSz := c.in.Elems()
	outSz := out.Elems()
	colGrad := c.colGrad[:k*spatial]
	for b := 0; b < c.batch; b++ {
		gAll := gradOut.Data[b*outSz : (b+1)*outSz]
		// Bias gradient: sum over spatial positions.
		for oc := 0; oc < out.C; oc++ {
			row := gAll[oc*spatial : (oc+1)*spatial]
			var s float32
			for _, v := range row {
				s += v
			}
			c.bGrad.Data[oc] += s
		}
		sample := c.lastIn.Data[b*inSz : (b+1)*inSz]
		giSample := gradIn.Data[b*inSz : (b+1)*inSz]
		for grp := 0; grp < c.Groups; grp++ {
			g := gAll[grp*outCg*spatial : (grp+1)*outCg*spatial]
			w := c.weights.Data[grp*outCg*k : (grp+1)*outCg*k]
			wg := c.wGrad.Data[grp*outCg*k : (grp+1)*outCg*k]
			// Weight gradient: dW += g (outCg×spatial) · col^T (spatial×k).
			tensor.Im2col(c.geom, sample[grp*inCg*c.in.H*c.in.W:], c.col)
			tensor.Gemm(false, true, outCg, k, spatial, 1, g, c.col, 1, wg)
			// Input gradient: colGrad = W^T (k×outCg) · g, scattered
			// back by col2im into the group's input channels.
			tensor.Gemm(true, false, k, spatial, outCg, 1, w, g, 0, colGrad)
			tensor.Col2im(c.geom, colGrad, giSample[grp*inCg*c.in.H*c.in.W:])
		}
	}
	return gradIn
}

// Params implements Layer.
func (c *Conv) Params() []*tensor.Tensor { return c.params }

// Grads implements Layer.
func (c *Conv) Grads() []*tensor.Tensor { return c.grads }
