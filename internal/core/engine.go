package core

import (
	"fmt"
	"runtime"

	"scaffe/internal/coll"
	"scaffe/internal/data"
	"scaffe/internal/fault"
	"scaffe/internal/gpu"
	"scaffe/internal/mpi"
	"scaffe/internal/pfs"
	"scaffe/internal/sched"
	"scaffe/internal/sim"
	"scaffe/internal/solver"
	"scaffe/internal/topology"
)

// Tag bases for the engine's communication (user collectives inside
// reducers consume tag..tag+1 each).
const (
	tagPackedReduce = 100
	tagLayerReduce  = 1000 // + 2*layer
	tagPS           = 50
	tagJoinAck      = 60 // join handshake: admitted rank -> root
	tagCatchup      = 61 // catch-up broadcast of params + momentum
)

// runState is the shared state of one Run: everything the per-rank
// procs touch lives here (the simulator is cooperatively scheduled, so
// no locking is needed).
type runState struct {
	cfg     *Config
	cluster *topology.Cluster
	world   *mpi.World
	comm    *mpi.Comm
	red     coll.Reducer
	readers []*data.Reader
	wl      []*workload
	phases  []Phases
	losses  []float32
	sgds    []*solver.SGD

	// psScratch is the parameter server's gradient receive buffer,
	// allocated once for the whole run.
	psScratch *gpu.Buffer

	// graphs caches one iteration graph per rank in fault-free runs
	// (graph shape depends on comm membership, which only changes when
	// the fault plane is armed — armed runs rebuild per iteration and
	// leave this nil). lbl interns the node labels shared by every
	// rank's graph.
	graphs []*sched.Graph
	lbl    *labelTable

	accuracies []float64
	snapshots  []string
	snapIters  []int // 0-based iteration of each entry in snapshots
	fileErr    error

	// Fault-tolerance state (nil/zero in fault-free runs; see
	// recovery.go).
	k            *sim.Kernel
	ft           *fault.Plane
	dataSrc      data.Source
	ranksLive    int
	doneAt       sim.Time
	restartIter  int
	lastGoodIter int
	epoch        int // recovery epochs, for reader proc naming
	recSeen      int // fault.Recovery records already processed

	// Elastic-membership state (see recovery.go). growEpoch is the
	// epoch whose rebuild admitted joiners (-1 = none yet);
	// catchupSeen[rank] is the last epoch rank completed the catch-up
	// protocol for. iterEWMA/slowStreak feed the straggler-eviction
	// policy; ewmaScratch is its preallocated median buffer.
	growEpoch    int
	lastAdmitted []int
	catchupSeen  []int
	catchupHist  []float32 // root momentum packed for the catch-up bcast
	iterEWMA     []float64
	slowStreak   []int
	ewmaScratch  []float64

	// Integrity state (nil/zero when the plane is off; see
	// integrity.go).
	integ           *IntegrityReport
	lastGoodParams  []float32 // root params after the last healthy Step
	lastGoodHistory []float32 // root momentum to match
	lossEWMA        float64   // divergence baselines (0 = unseeded)
	normEWMA        float64
	integTries      map[int]int  // per-iteration watchdog trip counts
	quarantined     map[int]bool // iterations condemned past their retries
	integRetry      bool         // current revocation is a watchdog trip
	integIter       int          // iteration the watchdog tripped on
	integTripAt     sim.Time     // trip time, for the rollback span
}

// updateFLOPs is the arithmetic cost of one SGD update over n
// parameters.
func updateFLOPs(n int) float64 { return solver.UpdateFLOPs(n) }

// parallelDesign reports whether the design's ranks are isolated
// enough for per-rank lookahead groups: the MPI data-parallel designs,
// whose cross-rank interactions all pass through the Exclusive-guarded
// entry points. The intra-node baselines (shared reader, IPC
// reduction tree, the PS server's serialized links) and the
// model-parallel pipeline stay sequential.
func parallelDesign(d Design) bool {
	switch d {
	case SCB, SCOB, SCOBR, SCOBRF, CNTKLike:
		return true
	}
	return false
}

// Run executes one training configuration and reports its results.
func Run(cfg Config) (*Result, error) {
	res, _, err := run(cfg)
	return res, err
}

func run(cfg Config) (*Result, *runState, error) {
	if err := cfg.validateAndDefault(); err != nil {
		return nil, nil, fmt.Errorf("%w: %w", ErrConfig, err)
	}

	k := sim.New()
	params := topology.DefaultParams()
	if cfg.Params != nil {
		params = *cfg.Params
	}
	cluster := topology.New(k, "run", cfg.Nodes, cfg.GPUsPerNode, params)

	workers := cfg.GPUs
	switch cfg.Design {
	case ParamServer:
		workers = cfg.GPUs - 1
	case ModelParallel:
		// Model parallelism pipelines the whole batch through every
		// stage: one logical worker.
		workers = 1
	}
	localBatch := cfg.localBatch(workers)

	// Device-memory check: parameters + gradients + double activation
	// footprint + input batch must fit (the missing points of
	// Figure 8).
	if err := checkMemory(cfg, localBatch); err != nil {
		return nil, nil, err
	}

	st := &runState{cfg: &cfg, cluster: cluster, k: k}
	st.losses = make([]float32, 0, cfg.Iterations)
	st.world = mpi.NewWorld(cluster, cfg.GPUs)
	st.comm = st.world.WorldComm()
	var pl *fault.Plane
	if len(cfg.Faults) > 0 || cfg.Integrity != IntegrityOff || cfg.EvictFactor > 0 {
		pl = fault.NewPlane(k, cfg.GPUs, cfg.FaultTimeout)
		pl.SetJoinRetries(cfg.JoinRetries)
		st.ft = pl
		st.world.Fault = pl
		st.ranksLive = cfg.GPUs
		st.lastGoodIter = cfg.StartIteration - 1
		st.growEpoch = -1
		st.catchupSeen = make([]int, cfg.GPUs)
		st.iterEWMA = make([]float64, cfg.GPUs)
		st.slowStreak = make([]int, cfg.GPUs)
		st.ewmaScratch = make([]float64, 0, cfg.GPUs)
		cluster.SetLinkFault(pl.LinkFactor)
		pl.SetRoot(st.rootRank())
	}
	if cfg.MaxVirtualTime > 0 {
		k.SetDeadline(sim.Time(cfg.MaxVirtualTime))
	}
	// Conservative parallel lookahead (DESIGN.md §13): fault-free MPI
	// data-parallel runs may shard same-instant per-rank segments across
	// cores, bounded by the cluster's minimum cross-rank horizon. Armed
	// or not, every observable output is bit-identical; fault- and
	// integrity-armed runs stay sequential (revocation unwinds and
	// rollbacks are whole-world serial protocols), as do the baselines
	// whose ranks share state (CaffeMT's reader, the PS server's links).
	if pl == nil && parallelDesign(cfg.Design) {
		workers := cfg.SimParallel
		if workers == 0 {
			workers = runtime.NumCPU()
		}
		k.SetParallel(workers, cluster.MinLookahead())
	}
	if cfg.Integrity != IntegrityOff {
		st.integ = &IntegrityReport{Mode: cfg.Integrity}
		st.world.Integrity = &mpi.Integrity{
			Mode:        cfg.Integrity.mpiMode(),
			RetryBudget: cfg.RetransmitBudget,
			WireCorrupt: pl.WireCorrupt,
		}
	}
	opts := cfg.ReduceOpts
	if opts == (coll.Options{}) {
		opts = coll.DefaultOptions()
	}
	st.red = coll.NewReducer(st.comm, cfg.Reduce, opts)
	st.phases = make([]Phases, cfg.GPUs)
	for i := 0; i < cfg.GPUs; i++ {
		if cfg.Design == ParamServer && i == 0 {
			st.wl = append(st.wl, newWorkload(&cfg, 0)) // server holds buffers only
			continue
		}
		w := newWorkload(&cfg, localBatch)
		if cfg.BucketBytes > 0 && (cfg.Design == SCOBR || cfg.Design == SCOBRF) {
			w.buildBuckets(cfg.Spec, cfg.BucketBytes)
		}
		st.wl = append(st.wl, w)
	}
	if cfg.Design == ParamServer {
		st.psScratch = gpu.NewBuffer(st.wl[0].packedGrads.Bytes)
	}
	if cfg.RealNet != nil {
		policy, err := buildPolicy(&cfg)
		if err != nil {
			return nil, nil, err
		}
		st.sgds = make([]*solver.SGD, cfg.GPUs)
		for i := range st.sgds {
			st.sgds[i] = solver.New(policy, cfg.Momentum, cfg.WeightDecay)
		}
		if cfg.ResumeFrom != "" {
			if err := st.resume(cfg.ResumeFrom); err != nil {
				return nil, nil, err
			}
		}
		if cfg.Integrity == IntegrityRecover {
			st.initLastGood()
		}
	}
	st.buildReaders(k, localBatch)
	if st.ft == nil && cfg.Design != ModelParallel {
		st.graphs = make([]*sched.Graph, cfg.GPUs)
		// Intern the node labels before the rank procs build their
		// graphs (possibly concurrently under the parallel kernel).
		st.labels()
	}

	mainFn := func(r *mpi.Rank) {
		if cfg.DeviceMemory > 0 {
			r.Dev.SetMemCapacity(cfg.DeviceMemory)
		}
		if cfg.Design == ModelParallel {
			st.runMP(r)
			return
		}
		sink := &nodeSink{st: st, rank: r.ID, ph: &st.phases[r.ID]}
		if st.ft != nil {
			st.runRankFT(r, sink)
			return
		}
		// Under the parallel kernel each rank's main proc is its own
		// lookahead group; everything it touches outside the group
		// (mailboxes, shared links, the trace sink) serializes through
		// Proc.Exclusive at the entry points.
		if k.Parallel() > 0 {
			r.Proc.SetGroup(r.ID)
		}
		// Fault-free membership never changes, so the rank's graph is
		// built once and re-executed with the iteration threaded through
		// sched.Ctx.It. Each rank writes only its own slot, so the cache
		// is safe under the parallel kernel too.
		g := st.buildIteration(r)
		st.graphs[r.ID] = g
		for it := cfg.StartIteration; it < cfg.Iterations; it++ {
			g.Execute(sink, it)
		}
	}
	var err error
	if pl != nil {
		// The fault path drives the kernel directly: the plane's
		// events must be armed after the ranks spawn and before time
		// advances.
		st.world.Spawn(mainFn)
		pl.OnRebuild(st.rebuild)
		pl.Arm(cfg.Faults, &applier{st})
		err = k.Run()
	} else {
		_, err = st.world.Run(mainFn)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("core: simulation failed: %w", err)
	}
	if st.fileErr != nil {
		return nil, nil, fmt.Errorf("core: snapshot failed: %w", st.fileErr)
	}
	if pl != nil && pl.AliveCount() == 0 {
		return nil, nil, fmt.Errorf("%w: all %d ranks failed", ErrUnrecovered, cfg.GPUs)
	}

	total := st.world.K.Now()
	if pl != nil && st.doneAt > 0 {
		// Elastic readers outlive the last rank by design; the run
		// ends when the last rank finishes, not when the kernel
		// drains.
		total = st.doneAt
	}
	res := &Result{
		Design:        cfg.Design.String(),
		Model:         cfg.Spec.Name,
		GPUs:          cfg.GPUs,
		GlobalBatch:   cfg.GlobalBatch,
		LocalBatch:    localBatch,
		Iterations:    cfg.Iterations,
		Source:        cfg.Source.String(),
		ReduceAlg:     st.red.Name(),
		TotalTime:     total,
		Phases:        st.phases[0],
		Losses:        st.losses,
		Accuracies:    st.accuracies,
		SnapshotFiles: st.snapshots,
	}
	if pl != nil {
		res.Fault = pl.Report()
	}
	if st.integ != nil {
		if mi := st.world.Integrity; mi != nil {
			st.integ.Verified = mi.Verified
			st.integ.Detected = mi.Detected
			st.integ.Retransmitted = mi.Retransmits
			st.integ.Escalations = mi.Escalations
		}
		res.Integrity = st.integ
	}
	samples := float64(cfg.Iterations-cfg.StartIteration) * float64(localBatch) * float64(workers)
	if total > 0 {
		res.SamplesPerSec = samples / total.Seconds()
		res.HCAUtilization, res.PCIeUtilization = linkUtilization(cluster, cfg.GPUs, total)
	}
	if cfg.RealNet != nil && cfg.CaptureFinalParams {
		root := st.wl[st.rootRank()]
		root.packParams()
		res.FinalParams = append([]float32(nil), root.paramData...)
	}
	return res, st, nil
}

// rootRank is the world rank of the solver that applies updates: the
// training comm's group rank 0 (which moves when a shrink removes the
// old root), except under the parameter-server design, whose rank 0
// is the server.
func (st *runState) rootRank() int {
	if st.cfg.Design == ParamServer {
		return 0
	}
	return st.comm.WorldRank(0)
}

// isRoot reports whether r is the updating solver (see rootRank).
func (st *runState) isRoot(r *mpi.Rank) bool { return r.ID == st.rootRank() }

// linkUtilization computes the mean busy fraction of the HCAs of the
// nodes hosting ranks, and of the PCIe links of the rank-occupied
// GPUs, over the run (averaging both directions).
func linkUtilization(cluster *topology.Cluster, ranks int, total sim.Time) (hca, pcie float64) {
	if total <= 0 {
		return 0, 0
	}
	nodesUsed := (ranks + cluster.GPUsPerNode() - 1) / cluster.GPUsPerNode()
	var hcaBusy sim.Duration
	for n := 0; n < nodesUsed; n++ {
		hcaBusy += cluster.Nodes[n].HCA.BusyTotal()
	}
	hca = float64(hcaBusy) / float64(2*sim.Duration(nodesUsed)*total)
	var pcieBusy sim.Duration
	for r := 0; r < ranks; r++ {
		d := cluster.DeviceForRank(r)
		pcieBusy += cluster.Nodes[d.Node].PCIe[d.Local].BusyTotal()
	}
	pcie = float64(pcieBusy) / float64(2*sim.Duration(ranks)*total)
	return hca, pcie
}

// checkMemory validates the per-GPU footprint against device memory.
func checkMemory(cfg Config, localBatch int) error {
	capacity := cfg.DeviceMemory
	if capacity == 0 {
		capacity = 12 << 30
	}
	need := perRankMemory(&cfg, localBatch)
	if need > capacity {
		return &gpu.ErrOutOfMemory{Dev: topology.DeviceID{}, Requested: need, Free: capacity}
	}
	return nil
}

// perRankMemory estimates one solver's device footprint: parameters,
// gradients, activations and their gradients, and the input batch.
func perRankMemory(cfg *Config, localBatch int) int64 {
	params := cfg.Spec.ParamBytes()
	acts := int64(cfg.Spec.ActivationElems()) * 4 * 2 * int64(localBatch)
	input := int64(cfg.Spec.Input.Elems()) * 4 * int64(localBatch)
	if cfg.Design == ModelParallel {
		// Each rank holds only its layer slice.
		return (2*params + acts) / int64(cfg.GPUs)
	}
	return 2*params + acts + input
}

// buildReaders wires the data plane: one reader per solver (Figure 3)
// for the distributed designs, one shared reader for multi-threaded
// Caffe, and none for the server rank of the PS design.
func (st *runState) buildReaders(k *sim.Kernel, localBatch int) {
	cfg := st.cfg
	var src data.Source
	switch cfg.Source {
	case MemorySource:
		src = data.InMemory{}
	case LMDBSource:
		readers := cfg.GPUs
		if cfg.Design == CaffeMT {
			readers = 1
		}
		src = data.NewLMDBSource(k, readers)
	case ImageDataSource:
		src = data.NewImageDataSource(pfs.Default(k))
	}

	st.readers = make([]*data.Reader, cfg.GPUs)
	if st.ft != nil {
		// Fault-tolerant runs use elastic readers: the consumption
		// count is unknowable up front (rollbacks re-read iterations,
		// shrinks change the batch size), so readers prefetch forever,
		// bounded by the queue, until stopped. Config validation
		// restricts faults to the per-rank-reader designs.
		st.dataSrc = src
		for i := 0; i < cfg.GPUs; i++ {
			st.readers[i] = data.StartReaderLoop(k, fmt.Sprintf("reader%d", i),
				stalledSource{inner: src, pl: st.ft, rank: i}, localBatch, cfg.Spec.PerSampleBytes, cfg.QueueDepth)
		}
		return
	}
	iters := cfg.Iterations - cfg.StartIteration
	if cfg.Design == CaffeMT {
		// One reader thread feeds every solver through the shared
		// queue: it loads the whole global batch, then releases one
		// token per solver.
		shared := data.StartSharedReader(k, "reader", src, localBatch*cfg.GPUs, cfg.Spec.PerSampleBytes, iters, cfg.GPUs, cfg.QueueDepth*cfg.GPUs)
		for i := range st.readers {
			st.readers[i] = shared
		}
		return
	}
	for i := 0; i < cfg.GPUs; i++ {
		if cfg.Design == ParamServer && i == 0 {
			continue // the server does not train
		}
		if cfg.Design == ModelParallel && i != 0 {
			continue // only the pipeline's first stage reads data
		}
		st.readers[i] = data.StartReader(k, fmt.Sprintf("reader%d", i), src, localBatch, cfg.Spec.PerSampleBytes, iters, cfg.QueueDepth)
	}
}

// --- shared phase helpers -------------------------------------------------

// timed runs fn, adds the elapsed virtual time to *acc, and records
// the span on the run's trace recorder under the given phase name.
func (st *runState) timed(r *mpi.Rank, acc *sim.Duration, phase string, fn func()) {
	span := st.cfg.Trace.Begin(r.ID, phase, "", r.Now())
	before := r.Now()
	fn()
	*acc += r.Now() - before
	span.End(r.Now())
}

// dataWait starts an iteration: it charges the framework's fixed
// per-iteration overhead, then blocks on this rank's reader queue.
func (st *runState) dataWait(r *mpi.Rank, w *workload, ph *Phases, iter int) {
	r.Sleep(st.cluster.P.IterOverhead)
	st.timed(r, &ph.DataWait, "data", func() {
		if rd := st.readers[r.ID]; rd != nil {
			rd.Next(r.Proc)
		}
	})
	if w.real() {
		rankOffset := st.workerIndex(r) * w.localBatch
		w.loadBatch(st.cfg.Dataset, iter, w.localBatch*st.workerCount(), rankOffset)
	}
}

// workerIndex returns this rank's position among training workers —
// its group rank in the (possibly shrunken) training comm, so a
// recovery automatically re-shards the batch across survivors.
func (st *runState) workerIndex(r *mpi.Rank) int {
	if st.cfg.Design == ParamServer {
		return r.ID - 1
	}
	return st.comm.GroupRank(r.ID)
}

// workerCount returns the number of training workers.
func (st *runState) workerCount() int {
	if st.cfg.Design == ParamServer {
		return st.cfg.GPUs - 1
	}
	return st.comm.Size()
}

// RunDebug is Run plus the full per-rank phase table (diagnostics and
// tests).
func RunDebug(cfg Config) (*Result, []Phases, error) {
	res, st, err := run(cfg)
	if err != nil {
		return nil, nil, err
	}
	return res, st.phases, nil
}
