package core

import (
	"fmt"
	"math"

	"scaffe/internal/coll"
	"scaffe/internal/mpi"
)

// This file is the engine's side of the integrity plane: the MPI layer
// checksums every collective receive and broadcast edge (detecting and
// retransmitting wire corruption), while the root's numeric-health
// watchdog catches what checksums cannot — corruption already resident
// in memory, surfacing as non-finite losses, exploding gradient norms,
// or divergence from the run's EWMA. A watchdog trip in recover mode
// triggers a micro-rollback: the communicator is revoked with zero
// failed ranks, every rank rendezvouses exactly as for a crash, and
// the root restores parameters and momentum from an in-memory
// last-good copy — no snapshot round-trip — before the tripped
// iteration replays.

// IntegrityMode selects the integrity plane's behavior.
type IntegrityMode int

const (
	// IntegrityOff runs the exact seed code paths.
	IntegrityOff IntegrityMode = iota
	// IntegrityDetect verifies and counts, but never alters the run:
	// corrupted chunks flow on and poisoned updates apply. The
	// observe-only mode behind scaffe-train's exit code 4.
	IntegrityDetect
	// IntegrityRecover retransmits corrupted chunks and micro-rolls-
	// back watchdog trips, quarantining a batch that keeps failing.
	IntegrityRecover
)

func (m IntegrityMode) String() string {
	switch m {
	case IntegrityOff:
		return "off"
	case IntegrityDetect:
		return "detect"
	case IntegrityRecover:
		return "recover"
	}
	return fmt.Sprintf("IntegrityMode(%d)", int(m))
}

// ParseIntegrityMode parses the CLI spelling of a mode.
func ParseIntegrityMode(s string) (IntegrityMode, error) {
	switch s {
	case "off", "":
		return IntegrityOff, nil
	case "detect":
		return IntegrityDetect, nil
	case "recover":
		return IntegrityRecover, nil
	}
	return IntegrityOff, fmt.Errorf("%w: unknown integrity mode %q (want off, detect, or recover)", ErrConfig, s)
}

// mpiMode maps the config enum onto the MPI layer's.
func (m IntegrityMode) mpiMode() mpi.IntegrityMode {
	switch m {
	case IntegrityDetect:
		return mpi.IntegrityDetect
	case IntegrityRecover:
		return mpi.IntegrityRecover
	}
	return mpi.IntegrityOff
}

// IntegrityReport summarizes the integrity plane's run for Result.
type IntegrityReport struct {
	// Mode is the armed mode.
	Mode IntegrityMode
	// Verified counts checksummed receives that matched (including
	// after a successful retransmit).
	Verified int
	// Detected counts checksum mismatches observed on the wire.
	Detected int
	// Retransmitted counts chunk retransmissions booked.
	Retransmitted int
	// Escalations counts chunks that stayed corrupted past the retry
	// budget and revoked the communicator.
	Escalations int
	// WatchdogTrips counts numeric-health failures at the root's
	// update gate (NaN/Inf loss or gradient norm, EWMA divergence,
	// non-finite or runaway parameters).
	WatchdogTrips int
	// Rollbacks counts micro-rollbacks (iteration retries from the
	// in-memory last-good copy).
	Rollbacks int
	// QuarantinedBatches counts batches condemned after exhausting
	// their retries; their updates are skipped.
	QuarantinedBatches int
}

func (r *IntegrityReport) String() string {
	return fmt.Sprintf("mode=%s verified=%d detected=%d retransmitted=%d escalations=%d watchdog-trips=%d rollbacks=%d quarantined=%d",
		r.Mode, r.Verified, r.Detected, r.Retransmitted, r.Escalations, r.WatchdogTrips, r.Rollbacks, r.QuarantinedBatches)
}

// paramLimit is the watchdog's runaway-parameter threshold. Healthy
// training never carries weights anywhere near it, while a flipped
// exponent bit lands orders of magnitude beyond — catching, before
// the update bakes it into the last-good copy, corruption that struck
// after the gradients were read.
const paramLimit = 1e30

// initLastGood allocates and seeds the root's in-memory rollback
// state. Call after solver construction (and any resume), so the copy
// reflects the true starting point.
func (st *runState) initLastGood() {
	root := st.rootRank()
	w := st.wl[root]
	st.lastGoodParams = make([]float32, len(w.paramData))
	w.net.PackParams(st.lastGoodParams)
	st.lastGoodHistory = st.sgds[root].PackHistory(w.net, nil)
	st.integTries = make(map[int]int)
	st.quarantined = make(map[int]bool)
}

// integrityCheck is the root's per-iteration health gate, run after
// the reduced gradients are unpacked and before the solver steps: it
// reports whether the update may apply. The trip path (recover mode)
// revokes the communicator and unwinds with Revoked, so the params are
// never stepped with poisoned gradients — micro-rollback only ever has
// to heal the parameter copy itself.
func (st *runState) integrityCheck(w *workload, it int) bool {
	if st.integ == nil || !w.real() {
		return true
	}
	if st.quarantined[it] {
		return false // condemned batch: skip the update, keep the params
	}
	loss := float64(w.loss())
	var norm2 float64
	for _, g := range w.gradData {
		norm2 += float64(g) * float64(g)
	}
	healthy := !math.IsNaN(loss) && !math.IsInf(loss, 0) &&
		!math.IsNaN(norm2) && !math.IsInf(norm2, 0) &&
		st.paramsHealthy(w)
	if healthy && st.lossEWMA > 0 && loss > st.lossEWMA*st.cfg.DivergeFactor {
		healthy = false
	}
	if healthy && st.normEWMA > 0 && norm2 > st.normEWMA*st.cfg.DivergeFactor {
		healthy = false
	}
	if healthy {
		// Fold only committed-healthy values, so a rolled-back
		// iteration leaves the divergence baseline untouched.
		const a = 0.25
		if st.lossEWMA == 0 {
			st.lossEWMA = loss
		} else {
			st.lossEWMA += a * (loss - st.lossEWMA)
		}
		if st.normEWMA == 0 {
			st.normEWMA = norm2
		} else {
			st.normEWMA += a * (norm2 - st.normEWMA)
		}
		return true
	}
	st.integ.WatchdogTrips++
	if st.cfg.Integrity == IntegrityDetect {
		return true // observe only: the poisoned update applies
	}
	retries := st.cfg.IntegrityRetries
	if retries < 0 {
		retries = 0
	}
	st.integTries[it]++
	if st.integTries[it] > retries {
		st.quarantined[it] = true
		st.integ.QuarantinedBatches++
	}
	st.integRetry = true
	st.integIter = it
	st.integTripAt = st.k.Now()
	st.ft.Revoke()
	panic(mpi.Revoked{})
}

// paramsHealthy scans the root net's resident parameters for
// non-finite or runaway values — the signature of in-memory
// corruption that struck after this iteration's gradients were
// computed.
func (st *runState) paramsHealthy(w *workload) bool {
	for _, l := range w.net.Layers {
		for _, p := range l.Params() {
			for _, v := range p.Data {
				a := float64(v)
				if math.IsNaN(a) || math.IsInf(a, 0) || a > paramLimit || a < -paramLimit {
					return false
				}
			}
		}
	}
	return true
}

// noteLastGood commits the post-update state as the rollback point.
// Root only, after a health-checked Step.
func (st *runState) noteLastGood(w *workload) {
	if st.lastGoodParams == nil {
		return
	}
	w.net.PackParams(st.lastGoodParams)
	st.lastGoodHistory = st.sgds[st.rootRank()].PackHistory(w.net, st.lastGoodHistory)
}

// rebuildMicro is the micro-rollback flavor of the recovery hook: same
// membership, fresh communicator (stale traffic from the abandoned
// iteration can never match the replay's), root parameters and
// momentum restored from the in-memory last-good copy — no snapshot
// read, no re-sharding, no reader restart (the elastic readers keep
// streaming; batch tokens are fungible). Replicas heal through the
// retried iteration's parameter broadcast.
func (st *runState) rebuildMicro() int {
	cfg := st.cfg
	pl := st.ft
	alive := pl.AliveRanks()
	for _, id := range alive {
		st.world.Ranks[id].KillThreads()
	}
	st.comm = st.world.ShrinkComm(alive)
	opts := cfg.ReduceOpts
	if opts == (coll.Options{}) {
		opts = coll.DefaultOptions()
	}
	st.red = coll.NewReducer(st.comm, cfg.Reduce, opts)

	restart := st.integIter
	if cfg.RealNet != nil && st.lastGoodParams != nil {
		root := st.rootRank()
		w := st.wl[root]
		w.net.UnpackParams(st.lastGoodParams)
		st.sgds[root].Reset()
		st.sgds[root].LoadHistory(w.net, st.lastGoodHistory)
		// The tripped iteration never recorded its loss (the panic
		// fires before post-update), so these are defensive no-ops
		// unless an escalation unwound mid-record.
		if keep := restart - cfg.StartIteration; keep >= 0 && keep < len(st.losses) {
			st.losses = st.losses[:keep]
		}
		if ti := cfg.TestInterval; ti > 0 {
			if keep := restart/ti - cfg.StartIteration/ti; keep >= 0 && keep < len(st.accuracies) {
				st.accuracies = st.accuracies[:keep]
			}
		}
	}
	st.integ.Rollbacks++
	for _, id := range alive {
		st.cfg.Trace.Add(id, "rollback", st.integTripAt, st.k.Now())
	}
	st.restartIter = restart
	return restart
}
