package core

import (
	"fmt"
	"math"

	"scaffe/internal/coll"
	"scaffe/internal/data"
	"scaffe/internal/fault"
	"scaffe/internal/gpu"
	"scaffe/internal/mpi"
	"scaffe/internal/sim"
	"scaffe/internal/topology"
)

// This file is the engine's side of elastic fault tolerance: the
// fault plane (internal/fault) injects failures and detects them
// through the MPI layer's deadline-sliced waits; the code here turns
// a detected failure into a continued run — survivors shrink the
// communicator, re-shard the batch, restore solver state from the
// latest snapshot (real mode) or the last globally completed
// iteration (timing mode), and keep training.

// applier carries out injected events on the engine's objects.
type applier struct{ st *runState }

// KillRank implements fault.Applier: fail-stop the rank's procs and
// its data reader. Hangs are modeled fail-stop too — the rank stops
// participating; only the report distinguishes the kinds.
func (a *applier) KillRank(rank int, kind fault.Kind) {
	st := a.st
	st.world.Ranks[rank].KillAll()
	if rd := st.readers[rank]; rd != nil {
		rd.Stop()
		st.readers[rank] = nil
	}
}

// SetCompute implements fault.Applier: straggler on/off.
func (a *applier) SetCompute(rank int, factor float64) {
	a.st.world.Ranks[rank].Dev.SetSlowdown(factor)
}

// FlipBit implements fault.BitFlipper: flip one bit of one resident
// network parameter — silent in-memory corruption that no checksum on
// the wire can see, only the numeric-health watchdog. The word index
// wraps, so schedules stay valid across models.
func (a *applier) FlipBit(rank, word, bit int) {
	w := a.st.wl[rank]
	if w == nil || !w.real() {
		return
	}
	total := 0
	for _, l := range w.net.Layers {
		for _, p := range l.Params() {
			total += len(p.Data)
		}
	}
	if total == 0 {
		return
	}
	idx := word % total
	for _, l := range w.net.Layers {
		for _, p := range l.Params() {
			if idx < len(p.Data) {
				p.Data[idx] = math.Float32frombits(math.Float32bits(p.Data[idx]) ^ 1<<uint(bit))
				return
			}
			idx -= len(p.Data)
		}
	}
}

// ReviveRank implements fault.Joiner: give a previously excluded rank
// a fresh main proc that announces itself at the join desk, waits for
// admission, and — once a grow round commits — runs the catch-up
// protocol and rejoins training.
func (a *applier) ReviveRank(rank int) {
	st := a.st
	st.ranksLive++
	st.world.RespawnRank(rank, func(r *mpi.Rank) {
		st.runJoined(r)
	})
}

// stalledSource wraps a rank's data source with the plane's
// reader-stall windows: a read issued during a stall waits the window
// out, then proceeds at the backend's normal cost.
type stalledSource struct {
	inner data.Source
	pl    *fault.Plane
	rank  int
}

func (s stalledSource) Name() string { return s.inner.Name() }

func (s stalledSource) ReadBatch(p *sim.Proc, n int, bytesPer int64) {
	if until := s.pl.StallUntil(s.rank); until > p.Now() {
		p.WaitUntil(until)
	}
	s.inner.ReadBatch(p, n, bytesPer)
}

// noteCompleted records global training progress (root's post-update
// node): the restart point for timing-mode recovery, which has no
// snapshots to roll back to.
func (st *runState) noteCompleted(it int) {
	if st.ft != nil && it > st.lastGoodIter {
		st.lastGoodIter = it
	}
}

// runRankFT is one rank's training loop under an armed fault plane:
// iterations run speculatively; a revoked communicator unwinds the
// iteration, gathers the survivors, and resumes from the rebuilt
// world's restart point.
func (st *runState) runRankFT(r *mpi.Rank, sink *nodeSink) {
	defer st.rankDone(r.ID)
	st.ftLoop(r, sink, st.cfg.StartIteration)
}

// runJoined is the main function of a revived rank: wait at the join
// desk until a grow round admits it, then train like any other member.
// AwaitAdmission returns false only when nobody is left to admit the
// joiner (training already ended), in which case the proc just exits.
func (st *runState) runJoined(r *mpi.Rank) {
	defer st.rankDone(r.ID)
	if !st.ft.AwaitAdmission(r.ID, r.Proc) {
		return
	}
	sink := &nodeSink{st: st, rank: r.ID, ph: &st.phases[r.ID]}
	st.ftLoop(r, sink, st.restartIter)
}

// ftLoop is the shared fault-tolerant training loop of original and
// readmitted ranks. The grow-epoch catch-up check runs before the
// termination test on purpose: a survivor released with a restart
// iteration at or past the end must still serve the catch-up protocol,
// or the joiner's collectives would wait on members that already left.
func (st *runState) ftLoop(r *mpi.Rank, sink *nodeSink, it int) {
	cfg := st.cfg
	for {
		if st.catchupPending(r.ID) {
			if !st.tryCatchup(r) {
				st.ft.EnterRecovery(r.ID, r.Proc)
				it = st.restartIter
				continue
			}
		}
		if it >= cfg.Iterations {
			return
		}
		ph := &st.phases[r.ID]
		before := ph.Forward + ph.Backward
		if st.tryIteration(r, sink, it) {
			st.noteIterTime(r.ID, ph.Forward+ph.Backward-before)
			it++
			continue
		}
		// Revocation observed: rendezvous with every surviving rank.
		// The last arrival triggers rebuild() and releases everyone;
		// training resumes from the restart point it chose.
		st.ft.EnterRecovery(r.ID, r.Proc)
		it = st.restartIter
	}
}

// catchupPending reports whether rank still owes the current epoch's
// catch-up protocol: the last rebuild admitted joiners (growEpoch) and
// this rank has not run the protocol for that epoch yet.
func (st *runState) catchupPending(rank int) bool {
	return st.growEpoch == st.epoch && st.catchupSeen[rank] != st.epoch
}

// tryCatchup runs one member's side of the catch-up protocol after a
// grow round: the post-admission handshake (each admitted rank Isends
// an ack to the root), then a tree broadcast of the root's current
// parameters and momentum — checksummed end to end when the integrity
// plane is armed — and a closing barrier so no member resumes training
// while a joiner is still receiving. State equality is already
// guaranteed by rebuild's snapshot rollback (every member, joiners
// included, restored the same snapshot); the broadcast carries the wire
// cost and integrity coverage of shipping params+momentum to the
// joiners, and the explicit copy below keeps real-mode members defined
// by the root even if the restore paths ever diverge. A revocation
// mid-protocol (join under fire) unwinds into a false return; the
// caller re-enters recovery.
func (st *runState) tryCatchup(r *mpi.Rank) (ok bool) {
	defer func() {
		if rec := recover(); rec != nil {
			if mpi.IsRevoked(rec) {
				ok = false
				return
			}
			panic(rec)
		}
	}()
	span := st.cfg.Trace.Begin(r.ID, "catchup", "", r.Now())
	w := st.wl[r.ID]
	root := st.isRoot(r)
	if root {
		for _, id := range st.lastAdmitted {
			// A grow round can hand the root role to an admitted rank
			// (rank 0 rejoining moves the root back to it); it owes no
			// ack to itself, and waiting for one would deadlock the
			// whole catch-up.
			if id == r.ID {
				continue
			}
			r.Wait(r.IjoinAckRecv(st.comm, st.comm.GroupRank(id), tagJoinAck, gpu.NewBuffer(8)))
		}
		if w.real() {
			w.packParams()
			st.catchupHist = st.sgds[r.ID].PackHistory(w.net, st.catchupHist)
		}
	} else if intsContain(st.lastAdmitted, r.ID) {
		r.Wait(r.IjoinAck(st.comm, tagJoinAck, gpu.NewBuffer(8)))
	}
	// Parameters + momentum in one payload, from the root's group rank 0
	// down the binomial tree.
	r.Bcast(st.comm, 0, gpu.NewBuffer(2*w.packedParams.Bytes), topology.ModeAuto)
	if w.real() && !root {
		rw := st.wl[st.rootRank()]
		w.net.UnpackParams(rw.paramData)
		st.sgds[r.ID].Reset()
		if len(st.catchupHist) > 0 {
			st.sgds[r.ID].LoadHistory(w.net, st.catchupHist)
		}
	}
	// No member trains on the grown world until every member finished
	// catching up (the root must not repack parameters mid-replay).
	st.comm.Barrier(r)
	st.catchupSeen[r.ID] = st.epoch
	span.End(r.Now())
	return true
}

// noteIterTime folds one completed iteration's compute time (forward +
// backward) into the rank's EWMA — the straggler policy's signal. Wall
// time is useless here: collectives synchronize the members, so a
// straggler inflates everyone's iteration latency but only its own
// compute time.
func (st *runState) noteIterTime(rank int, d sim.Duration) {
	if st.iterEWMA == nil {
		return
	}
	v := float64(d)
	if e := st.iterEWMA[rank]; e != 0 {
		v = e + ewmaAlpha*(v-e)
	}
	st.iterEWMA[rank] = v
}

// ewmaAlpha is the smoothing factor of the per-rank compute EWMA.
const ewmaAlpha = 0.25

// membershipTick is the root's per-iteration membership duty, run from
// the post-update node: apply the straggler-eviction policy, then open
// the admit window for any announced joiners. Both act only between
// rounds (never while a revocation is converging), keeping admission
// at clean iteration boundaries.
func (st *runState) membershipTick(r *mpi.Rank) {
	pl := st.ft
	if pl == nil || !st.isRoot(r) || pl.Revoked() {
		return
	}
	if f := st.cfg.EvictFactor; f > 0 && st.comm.Size() > 1 {
		st.evictStraggler(f)
	}
	if pl.JoinPending() && !pl.Revoked() {
		pl.BeginGrow()
	}
}

// evictStraggler evicts at most one rank per tick: the slowest member
// whose compute EWMA has exceeded EvictFactor times the member median
// for EvictWindow consecutive iterations. The root never evicts
// itself, and members without a seeded EWMA yet (fresh joiners) are
// exempt. Allocation-free: the scratch slice is preallocated and the
// median uses an insertion sort.
func (st *runState) evictStraggler(factor float64) {
	s := st.ewmaScratch[:0]
	n := st.comm.Size()
	for g := 0; g < n; g++ {
		if e := st.iterEWMA[st.comm.WorldRank(g)]; e > 0 {
			//scaffe:nolint hotpath scratch is preallocated to world size; [:0] reuse never regrows
			s = append(s, e)
		}
	}
	st.ewmaScratch = s
	if len(s) < 2 {
		return
	}
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	med := s[len(s)/2]
	rootID := st.rootRank()
	worst, worstEWMA := -1, 0.0
	for g := 0; g < n; g++ {
		id := st.comm.WorldRank(g)
		e := st.iterEWMA[id]
		if id == rootID || e == 0 {
			continue
		}
		if e > factor*med {
			st.slowStreak[id]++
			if st.slowStreak[id] >= st.cfg.EvictWindow && e > worstEWMA {
				worst, worstEWMA = id, e
			}
		} else {
			st.slowStreak[id] = 0
		}
	}
	if worst >= 0 {
		st.slowStreak[worst] = 0
		st.iterEWMA[worst] = 0
		st.ft.EvictRank(worst)
	}
}

// intsContain reports whether s contains v (tiny membership lists).
func intsContain(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// tryIteration runs one iteration graph, converting a revocation
// panic into a false return. Any other panic (including a kill, which
// must unwind the whole proc) propagates.
func (st *runState) tryIteration(r *mpi.Rank, sink *nodeSink, it int) (ok bool) {
	defer func() {
		if rec := recover(); rec != nil {
			if mpi.IsRevoked(rec) {
				ok = false
				return
			}
			panic(rec)
		}
	}()
	st.buildIteration(r).Execute(sink, it)
	return true
}

// rankDone runs as each rank's proc unwinds (normal completion or
// kill): it tells the plane the rank left training, and the last one
// out stamps the run's end time and stops the elastic readers.
func (st *runState) rankDone(rank int) {
	st.ranksLive--
	st.ft.Depart(rank)
	if st.ranksLive == 0 {
		st.doneAt = st.k.Now()
		for _, rd := range st.readers {
			if rd != nil {
				rd.Stop()
			}
		}
	}
}

// rebuild is the plane's recovery hook, run exactly once per round
// with every survivor parked: shrink the communicator to the
// survivors, rebuild their training state at the new batch geometry,
// restore solver state, restart the data plane, and return the
// iteration training resumes from.
func (st *runState) rebuild() int {
	cfg := st.cfg
	pl := st.ft

	// A watchdog trip revokes with zero failed ranks and takes the
	// micro-rollback path — unless a real failure landed in the same
	// round, in which case the full rebuild below handles both.
	micro := st.integRetry
	st.integRetry = false
	if micro && len(pl.Report().Recoveries) == st.recSeen {
		return st.rebuildMicro()
	}

	// Membership is the ACTIVE set — alive and still training. A rank
	// that already finished every iteration departed the loop; wiring
	// it into the new communicator would wedge every collective on a
	// member that never posts again (a late-run revocation races the
	// finishers). Its solver state stays untouched.
	alive := pl.ActiveRanks()
	admitted := pl.Admitted()
	grew := len(admitted) > 0

	// Fail-stop any helper lanes still unwinding from the revoked
	// iteration; the resumed main lanes spawn fresh ones.
	for _, id := range alive {
		st.world.Ranks[id].KillThreads()
	}

	// Shrink (or grow): a fresh communicator over the members. Its new
	// id guarantees stale traffic from the failed epoch never matches.
	if grew {
		st.comm = st.world.GrowComm(alive)
	} else {
		st.comm = st.world.ShrinkComm(alive)
	}
	opts := cfg.ReduceOpts
	if opts == (coll.Options{}) {
		opts = coll.DefaultOptions()
	}
	st.red = coll.NewReducer(st.comm, cfg.Reduce, opts)
	// The root can move when a shrink removes the old one; the quorum
	// rule must track it.
	pl.SetRoot(st.rootRank())

	// Re-shard: the global batch redistributes over the survivors.
	newLocal := cfg.localBatch(len(alive))
	for _, id := range alive {
		w := newWorkload(cfg, newLocal)
		if cfg.BucketBytes > 0 && (cfg.Design == SCOBR || cfg.Design == SCOBRF) {
			w.buildBuckets(cfg.Spec, cfg.BucketBytes)
		}
		st.wl[id] = w
	}

	// Restore. Real mode rolls back to the latest on-disk snapshot
	// (or a cold restart when none exists yet); timing mode continues
	// after the last globally completed iteration — there is no model
	// state to make consistent.
	restart := 0
	rolledBack := false
	if cfg.RealNet != nil {
		var snap *Snapshot
		if n := len(st.snapshots); n > 0 {
			s, err := ReadSnapshot(st.snapshots[n-1])
			if err != nil && st.fileErr == nil {
				st.fileErr = err
			}
			snap = s
		}
		if snap != nil {
			restart = snap.Iteration + 1
			rolledBack = true
			for _, id := range alive {
				st.wl[id].net.UnpackParams(snap.Params)
				st.sgds[id].Reset()
				if len(snap.History) > 0 {
					st.sgds[id].LoadHistory(st.wl[id].net, snap.History)
				}
			}
		} else {
			// Cold restart: newWorkload already rebuilt every net from
			// the seed; drop the momentum to match, and re-apply an
			// explicit resume checkpoint if the run started from one.
			restart = cfg.StartIteration
			for _, id := range alive {
				st.sgds[id].Reset()
			}
			if cfg.ResumeFrom != "" {
				if err := st.resume(cfg.ResumeFrom); err != nil && st.fileErr == nil {
					st.fileErr = err
				}
			}
		}
		// Un-record the rolled-back span: the replay re-records it.
		if keep := restart - cfg.StartIteration; keep >= 0 && keep < len(st.losses) {
			st.losses = st.losses[:keep]
		}
		if ti := cfg.TestInterval; ti > 0 {
			if keep := restart/ti - cfg.StartIteration/ti; keep >= 0 && keep < len(st.accuracies) {
				st.accuracies = st.accuracies[:keep]
			}
		}
	} else {
		restart = st.lastGoodIter + 1
	}

	// Restart the surviving data plane at the new batch size.
	st.epoch++
	if grew {
		// Flag this epoch for the catch-up protocol: every member —
		// joiners included — runs it before its first iteration on the
		// grown world (see tryCatchup). Fresh members start the straggler
		// policy with an unseeded EWMA.
		st.growEpoch = st.epoch
		st.lastAdmitted = append(st.lastAdmitted[:0], admitted...)
		for _, id := range admitted {
			st.iterEWMA[id] = 0
			st.slowStreak[id] = 0
		}
	}
	for _, id := range alive {
		if rd := st.readers[id]; rd != nil {
			rd.Stop()
		}
		st.readers[id] = data.StartReaderLoop(st.k, fmt.Sprintf("reader%d.e%d", id, st.epoch),
			stalledSource{inner: st.dataSrc, pl: pl, rank: id}, newLocal, cfg.Spec.PerSampleBytes, cfg.QueueDepth)
	}

	// Observability: stamp the rollback flag on this round's records
	// and emit one recovery span per survivor.
	recs := pl.Report().Recoveries
	if n := len(recs); n > st.recSeen {
		if rolledBack {
			pl.NoteRollback(n - st.recSeen)
		}
		detect := recs[st.recSeen].DetectedAt
		for i := st.recSeen + 1; i < n; i++ {
			if recs[i].DetectedAt < detect {
				detect = recs[i].DetectedAt
			}
		}
		for _, id := range alive {
			st.cfg.Trace.Add(id, "recovery", detect, st.k.Now())
		}
		st.recSeen = n
	}
	for _, id := range admitted {
		st.cfg.Trace.Add(id, "join", pl.AnnouncedAt(id), st.k.Now())
	}

	st.restartIter = restart
	return restart
}
