package mpi

import (
	"bytes"
	"math"
	"testing"
)

func sealTestChunk() Chunk {
	payload := make([]float32, 24)
	for i := range payload {
		payload[i] = float32(i)*0.125 - 1
	}
	return SealChunk(9, payload)
}

func TestChunkRoundTrip(t *testing.T) {
	c := sealTestChunk()
	if !c.Verify() {
		t.Fatal("freshly sealed chunk fails Verify")
	}
	got, err := UnmarshalChunk(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != c.Seq || got.Elems != c.Elems || got.Sum != c.Sum {
		t.Fatalf("header round-trip: got %+v, want %+v", got, c)
	}
	if !got.Verify() {
		t.Fatal("round-tripped chunk fails Verify")
	}
	for i := range c.Payload {
		if got.Payload[i] != c.Payload[i] {
			t.Fatalf("payload[%d] = %v, want %v", i, got.Payload[i], c.Payload[i])
		}
	}
}

// TestChunkCorruptionGallery flips every byte of a framed chunk in
// turn and asserts the damage is always caught, either structurally
// at decode (magic, length fields) or by Verify (seq, sum, payload).
func TestChunkCorruptionGallery(t *testing.T) {
	c := sealTestChunk()
	frame := c.Marshal()
	for i := range frame {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0xFF
		got, err := UnmarshalChunk(bad)
		if err != nil {
			continue // framing damage: detected at decode
		}
		if got.Verify() {
			t.Errorf("byte %d corrupted, chunk still verifies", i)
		}
	}
	// Single-bit damage must be caught too.
	for i := range frame {
		for bit := 0; bit < 8; bit++ {
			bad := append([]byte(nil), frame...)
			bad[i] ^= 1 << uint(bit)
			got, err := UnmarshalChunk(bad)
			if err == nil && got.Verify() {
				t.Errorf("bit %d of byte %d flipped, chunk still verifies", bit, i)
			}
		}
	}
}

func TestChunkUnmarshalRejectsFrames(t *testing.T) {
	c := sealTestChunk()
	frame := c.Marshal()
	for _, tc := range []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"short header", frame[:ChunkHeaderLen-1]},
		{"truncated payload", frame[:len(frame)-3]},
		{"trailing garbage", append(append([]byte(nil), frame...), 0, 0, 0, 0)},
	} {
		if _, err := UnmarshalChunk(tc.b); err == nil {
			t.Errorf("%s: decode succeeded, want error", tc.name)
		}
	}
}

// FuzzChunkChecksum drives the wire format from both directions:
// seal/marshal/unmarshal must round-trip bit-exactly and verify, and
// arbitrary byte soup must either be rejected or decode to a frame
// that re-marshals to the same bytes.
func FuzzChunkChecksum(f *testing.F) {
	f.Add(uint32(0), []byte{})
	f.Add(uint32(7), []byte{1, 2, 3, 4, 0xFF, 0x7F, 0xC0, 0})
	seed := sealTestChunk()
	f.Add(uint32(1<<31), seed.Marshal())
	f.Fuzz(func(t *testing.T, seq uint32, raw []byte) {
		payload := make([]float32, len(raw)/4)
		for i := range payload {
			payload[i] = math.Float32frombits(getUint32(raw[4*i:]))
		}
		c := SealChunk(seq, payload)
		if !c.Verify() {
			t.Fatalf("sealed chunk fails Verify: %+v", c)
		}
		got, err := UnmarshalChunk(c.Marshal())
		if err != nil {
			t.Fatalf("round-trip decode: %v", err)
		}
		if !got.Verify() || got.Seq != seq || int(got.Elems) != len(payload) {
			t.Fatalf("round-trip mismatch: got %+v", got)
		}
		for i := range payload {
			if math.Float32bits(got.Payload[i]) != math.Float32bits(payload[i]) {
				t.Fatalf("payload[%d] bits changed", i)
			}
		}

		// Arbitrary bytes: must not panic; accepted frames re-marshal
		// to the identical byte string.
		if c2, err := UnmarshalChunk(raw); err == nil {
			if !bytes.Equal(c2.Marshal(), raw) {
				t.Fatalf("accepted frame does not re-marshal identically")
			}
		}
	})
}
