// Package trace records per-rank phase timelines of a training run and
// renders them as a Chrome trace (chrome://tracing / Perfetto JSON) or
// an ASCII Gantt chart — the visual counterpart of Figures 4–6's
// overlap diagrams.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"scaffe/internal/sim"
)

// Event is one recorded span.
type Event struct {
	// Rank is the MPI rank the span belongs to.
	Rank int
	// Phase names the activity ("propagation", "forward", ...).
	Phase string
	// Start and End bound the span in virtual time.
	Start, End sim.Time
}

// Duration returns the span length.
func (e Event) Duration() sim.Duration { return e.End - e.Start }

// Recorder accumulates events. The zero value is ready to use; a nil
// *Recorder ignores Add calls, so callers can record unconditionally.
type Recorder struct {
	events []Event
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{} }

// Add records one span. Zero-length spans are dropped.
func (t *Recorder) Add(rank int, phase string, start, end sim.Time) {
	if t == nil || end <= start {
		return
	}
	t.events = append(t.events, Event{Rank: rank, Phase: phase, Start: start, End: end})
}

// Events returns the recorded spans in insertion order.
func (t *Recorder) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Len returns the number of recorded spans.
func (t *Recorder) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// chromeEvent is the Trace Event Format "complete" record.
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

// WriteChromeTrace emits the timeline in Chrome Trace Event Format
// (load in chrome://tracing or ui.perfetto.dev). Ranks map to
// processes.
func (t *Recorder) WriteChromeTrace(w io.Writer) error {
	evs := make([]chromeEvent, 0, t.Len())
	for _, e := range t.Events() {
		evs = append(evs, chromeEvent{
			Name: e.Phase,
			Ph:   "X",
			Ts:   e.Start.Microseconds(),
			Dur:  e.Duration().Microseconds(),
			Pid:  e.Rank,
			Tid:  0,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(evs)
}

// phaseGlyphs maps phase names to Gantt glyphs; unknown phases render
// as '#'.
var phaseGlyphs = map[string]byte{
	"data":        'd',
	"propagation": 'P',
	"forward":     'F',
	"backward":    'B',
	"aggregation": 'A',
	"update":      'U',
}

// Gantt renders an ASCII timeline, one row per rank, `width` columns
// spanning [0, horizon]. Later events overwrite earlier ones in a
// cell; idle time is '.'.
func (t *Recorder) Gantt(width int) string {
	evs := t.Events()
	if len(evs) == 0 || width < 10 {
		return "(no trace)\n"
	}
	var horizon sim.Time
	maxRank := 0
	for _, e := range evs {
		if e.End > horizon {
			horizon = e.End
		}
		if e.Rank > maxRank {
			maxRank = e.Rank
		}
	}
	rows := make([][]byte, maxRank+1)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	for _, e := range evs {
		g, ok := phaseGlyphs[e.Phase]
		if !ok {
			g = '#'
		}
		lo := int(int64(e.Start) * int64(width) / int64(horizon))
		hi := int(int64(e.End) * int64(width) / int64(horizon))
		if hi <= lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		for c := lo; c < hi; c++ {
			rows[e.Rank][c] = g
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "timeline: 0 .. %v (one row per rank)\n", horizon)
	keys := make([]string, 0, len(phaseGlyphs))
	for k := range phaseGlyphs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "  %c=%s", phaseGlyphs[k], k)
	}
	b.WriteString("\n")
	for rank, row := range rows {
		fmt.Fprintf(&b, "rank%-3d |%s|\n", rank, row)
	}
	return b.String()
}

// PhaseTotals sums the recorded time per phase per rank.
func (t *Recorder) PhaseTotals() map[string][]sim.Duration {
	out := make(map[string][]sim.Duration)
	maxRank := 0
	for _, e := range t.Events() {
		if e.Rank > maxRank {
			maxRank = e.Rank
		}
	}
	for _, e := range t.Events() {
		row := out[e.Phase]
		if row == nil {
			row = make([]sim.Duration, maxRank+1)
		}
		row[e.Rank] += e.Duration()
		out[e.Phase] = row
	}
	return out
}
