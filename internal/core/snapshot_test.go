package core

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestSnapshotRoundtripWithHistory checks the v2 write/read cycle
// preserves the full solver state, momentum included.
func TestSnapshotRoundtripWithHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rt.scaffemodel")
	want := &Snapshot{
		Model:     "tiny",
		Iteration: 41,
		Params:    []float32{1.5, -2.25, 0, float32(math.Inf(1))},
		History:   []float32{0.5, 0.25, -0.125, 4096},
	}
	if err := WriteSnapshot(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("roundtrip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestSnapshotWriteLeavesNoTemp verifies the crash-safe write protocol:
// after a successful write only the final file exists, and rewriting an
// existing snapshot replaces it atomically.
func TestSnapshotWriteLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.scaffemodel")
	for i := 0; i < 2; i++ {
		s := &Snapshot{Model: "tiny", Iteration: i, Params: []float32{float32(i)}}
		if err := WriteSnapshot(path, s); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "snap.scaffemodel" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Errorf("directory after writes = %v, want only snap.scaffemodel", names)
	}
	got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iteration != 1 {
		t.Errorf("snapshot iteration = %d, want the rewrite (1)", got.Iteration)
	}
}

// encodeV1 builds a version-1 snapshot byte stream (no momentum
// section) by hand, as the pre-momentum code wrote it.
func encodeV1(model string, iter int, params []float32) []byte {
	buf := append([]byte{}, snapshotMagicV1...)
	u32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		buf = append(buf, b[:]...)
	}
	u32(uint32(len(model)))
	buf = append(buf, model...)
	u32(uint32(iter))
	u32(uint32(len(params)))
	for _, v := range params {
		u32(math.Float32bits(v))
	}
	return buf
}

// TestSnapshotV1Compat checks that old-format snapshots still load,
// with cold (nil) momentum.
func TestSnapshotV1Compat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v1.scaffemodel")
	params := []float32{3, 1, 4, 1, 5}
	if err := os.WriteFile(path, encodeV1("lenet", 9, params), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Model != "lenet" || got.Iteration != 9 || !reflect.DeepEqual(got.Params, params) {
		t.Errorf("v1 load = %+v", got)
	}
	if got.History != nil {
		t.Errorf("v1 load history = %v, want nil (cold momentum)", got.History)
	}
}

// TestSnapshotDecodeRejectsCorruption feeds decodeSnapshot a gallery of
// malformed inputs; each must error, never panic or over-allocate.
func TestSnapshotDecodeRejectsCorruption(t *testing.T) {
	valid := encodeV1("m", 1, []float32{1, 2})
	cases := map[string][]byte{
		"empty":          nil,
		"bad magic":      []byte("SCAFFESNAP9\nxxxx"),
		"magic only":     append([]byte{}, snapshotMagic...),
		"truncated name": valid[:len(snapshotMagicV1)+4],
		"huge name len":  append(append([]byte{}, snapshotMagicV1...), 0xff, 0xff, 0xff, 0xff),
		"truncated vec":  valid[:len(valid)-3],
		"trailing bytes": append(append([]byte{}, valid...), 0, 0, 0, 0),
		"huge vec count": func() []byte {
			b := append([]byte{}, valid...)
			binary.LittleEndian.PutUint32(b[len(b)-12:], 1<<31)
			return b
		}(),
		"misaligned tail": append(append([]byte{}, valid...), 1),
	}
	for name, raw := range cases {
		if _, err := decodeSnapshot(name, raw); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
}

// FuzzSnapshotDecode drives the snapshot decoder with arbitrary bytes.
// The invariants: never panic, never allocate beyond the input size,
// and any successfully decoded snapshot re-encodes byte-stably through
// WriteSnapshot + ReadSnapshot.
func FuzzSnapshotDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeV1("tiny", 3, []float32{1, -2, 0.5}))
	v2 := func() []byte {
		path := filepath.Join(f.TempDir(), "seed.scaffemodel")
		s := &Snapshot{Model: "tiny", Iteration: 7, Params: []float32{1, 2}, History: []float32{3, 4}}
		if err := WriteSnapshot(path, s); err != nil {
			f.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		return raw
	}()
	f.Add(v2)
	f.Add(v2[:len(v2)-2])
	f.Add(append([]byte{}, snapshotMagic...))
	f.Add([]byte("SCAFFESNAP1\n\x04\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		s, err := decodeSnapshot("fuzz", raw)
		if err != nil {
			return
		}
		if len(s.Params)*4 > len(raw) || len(s.History)*4 > len(raw) {
			t.Fatalf("decoded %d params / %d history floats from %d input bytes",
				len(s.Params), len(s.History), len(raw))
		}
		path := filepath.Join(t.TempDir(), "re.scaffemodel")
		if err := WriteSnapshot(path, s); err != nil {
			t.Fatal(err)
		}
		back, err := ReadSnapshot(path)
		if err != nil {
			t.Fatalf("re-decode of re-encoded snapshot failed: %v", err)
		}
		if back.Model != s.Model || back.Iteration != s.Iteration ||
			len(back.Params) != len(s.Params) || len(back.History) != len(s.History) {
			t.Fatalf("re-encode changed shape: %+v vs %+v", back, s)
		}
	})
}
