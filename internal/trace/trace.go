// Package trace records per-rank phase timelines of a training run and
// renders them as a Chrome trace (chrome://tracing / Perfetto JSON) or
// an ASCII Gantt chart — the visual counterpart of Figures 4–6's
// overlap diagrams.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"scaffe/internal/sim"
)

// Event is one recorded span.
type Event struct {
	// Rank is the MPI rank the span belongs to.
	Rank int
	// Phase names the activity ("propagation", "forward", ...).
	Phase string
	// Label optionally names the scheduler node that produced the span
	// ("fwd:conv1", "reduce:bucket2", ...); empty for phase-level spans.
	Label string
	// Start and End bound the span in virtual time.
	Start, End sim.Time
}

// Duration returns the span length.
func (e Event) Duration() sim.Duration { return e.End - e.Start }

// Recorder accumulates events. The zero value is ready to use; a nil
// *Recorder ignores Add calls, so callers can record unconditionally.
type Recorder struct {
	events []Event
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{} }

// Add records one span. Zero-length spans are dropped.
func (t *Recorder) Add(rank int, phase string, start, end sim.Time) {
	t.AddNode(rank, phase, "", start, end)
}

// AddNode records one span carrying a scheduler-node label in addition
// to its phase. Zero-length spans are dropped.
func (t *Recorder) AddNode(rank int, phase, label string, start, end sim.Time) {
	if t == nil || end <= start {
		return
	}
	//scaffe:nolint hotpath the recorder's event log grows for the run's lifetime by design; doubling amortizes
	t.events = append(t.events, Event{Rank: rank, Phase: phase, Label: label, Start: start, End: end})
}

// Span is an open interval created by Begin and closed by End. It
// exists so call sites that bracket a phase across statements (rather
// than a closure) keep the lint-checked Begin/End pairing explicit.
type Span struct {
	rec   *Recorder
	rank  int
	phase string
	label string
	start sim.Time
}

// Begin opens a span at the given virtual time. The returned span must
// reach End on every path (enforced by scaffe-lint's trace pass); a
// nil recorder returns a nil span whose End is a no-op, so callers
// never branch on tracing being enabled.
func (t *Recorder) Begin(rank int, phase, label string, start sim.Time) *Span {
	if t == nil {
		return nil
	}
	return &Span{rec: t, rank: rank, phase: phase, label: label, start: start}
}

// End closes the span at the given virtual time and records it.
// Zero-length spans are dropped, matching Add.
func (s *Span) End(end sim.Time) {
	if s == nil {
		return
	}
	s.rec.AddNode(s.rank, s.phase, s.label, s.start, end)
}

// Events returns the recorded spans in insertion order.
func (t *Recorder) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Len returns the number of recorded spans.
func (t *Recorder) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// chromeEvent is the Trace Event Format "complete" record.
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

// WriteChromeTrace emits the timeline in Chrome Trace Event Format
// (load in chrome://tracing or ui.perfetto.dev). Ranks map to
// processes.
func (t *Recorder) WriteChromeTrace(w io.Writer) error {
	evs := make([]chromeEvent, 0, t.Len())
	for _, e := range t.Events() {
		evs = append(evs, chromeEvent{
			Name: e.Phase,
			Ph:   "X",
			Ts:   e.Start.Microseconds(),
			Dur:  e.Duration().Microseconds(),
			Pid:  e.Rank,
			Tid:  0,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(evs)
}

// phaseGlyphs maps phase names to Gantt glyphs; unknown phases render
// as '#'.
var phaseGlyphs = map[string]byte{
	"data":        'd',
	"propagation": 'P',
	"forward":     'F',
	"backward":    'B',
	"aggregation": 'A',
	"update":      'U',
	"bcast-wire":  'w',
	"recovery":    'R',
	"rollback":    'r',
}

// Gantt renders an ASCII timeline, one row per rank, `width` columns
// spanning [0, horizon]. Later events overwrite earlier ones in a
// cell; idle time is '.'.
func (t *Recorder) Gantt(width int) string {
	evs := t.Events()
	if len(evs) == 0 || width < 10 {
		return "(no trace)\n"
	}
	var horizon sim.Time
	maxRank := 0
	for _, e := range evs {
		if e.End > horizon {
			horizon = e.End
		}
		if e.Rank > maxRank {
			maxRank = e.Rank
		}
	}
	rows := make([][]byte, maxRank+1)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	for _, e := range evs {
		g, ok := phaseGlyphs[e.Phase]
		if !ok {
			g = '#'
		}
		lo := int(int64(e.Start) * int64(width) / int64(horizon))
		hi := int(int64(e.End) * int64(width) / int64(horizon))
		if hi <= lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		for c := lo; c < hi; c++ {
			rows[e.Rank][c] = g
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "timeline: 0 .. %v (one row per rank)\n", horizon)
	keys := make([]string, 0, len(phaseGlyphs))
	for k := range phaseGlyphs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "  %c=%s", phaseGlyphs[k], k)
	}
	b.WriteString("\n")
	for rank, row := range rows {
		fmt.Fprintf(&b, "rank%-3d |%s|\n", rank, row)
	}
	return b.String()
}

// SummaryRow aggregates one rank's timeline: total time per phase plus
// how much of the rank's communication was hidden under compute — the
// quantitative counterpart of the paper's Figures 4–6 overlap diagrams.
type SummaryRow struct {
	// Rank is the MPI rank the row describes.
	Rank int
	// Phases maps phase name to total recorded time.
	Phases map[string]sim.Duration
	// Compute is the union length of forward/backward/update spans.
	Compute sim.Duration
	// Comm is the union length of propagation/aggregation spans plus
	// any wire-level spans (phase suffix "-wire").
	Comm sim.Duration
	// Overlap is the portion of Comm that coincides with Compute.
	Overlap sim.Duration
	// OverlapPct is Overlap/Comm as a percentage (0 when Comm is 0).
	OverlapPct float64
}

// computePhase reports whether a phase counts as GPU compute.
func computePhase(phase string) bool {
	return phase == "forward" || phase == "backward" || phase == "update"
}

// commPhase reports whether a phase counts as communication. Wire
// spans ("bcast-wire", ...) are the offloaded transfer itself; the
// plain phases are time the rank was blocked in MPI calls.
func commPhase(phase string) bool {
	return phase == "propagation" || phase == "aggregation" || strings.HasSuffix(phase, "-wire")
}

type span struct{ lo, hi sim.Time }

// mergeSpans sorts and unions overlapping intervals.
func mergeSpans(in []span) []span {
	if len(in) == 0 {
		return nil
	}
	sort.Slice(in, func(i, j int) bool { return in[i].lo < in[j].lo })
	out := in[:1]
	for _, s := range in[1:] {
		last := &out[len(out)-1]
		if s.lo <= last.hi {
			if s.hi > last.hi {
				last.hi = s.hi
			}
			continue
		}
		out = append(out, s)
	}
	return out
}

// spanLen sums the lengths of (disjoint) spans.
func spanLen(spans []span) sim.Duration {
	var d sim.Duration
	for _, s := range spans {
		d += s.hi - s.lo
	}
	return d
}

// intersectLen measures the overlap of two merged span sets.
func intersectLen(a, b []span) sim.Duration {
	var d sim.Duration
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo, hi := a[i].lo, a[i].hi
		if b[j].lo > lo {
			lo = b[j].lo
		}
		if b[j].hi < hi {
			hi = b[j].hi
		}
		if hi > lo {
			d += hi - lo
		}
		if a[i].hi < b[j].hi {
			i++
		} else {
			j++
		}
	}
	return d
}

// Summary computes per-rank phase totals and the fraction of
// communication hidden under compute. Rows are ordered by rank; ranks
// with no events are omitted.
func (t *Recorder) Summary() []SummaryRow {
	if t.Len() == 0 {
		return nil
	}
	byRank := make(map[int]*SummaryRow)
	compute := make(map[int][]span)
	comm := make(map[int][]span)
	for _, e := range t.Events() {
		row := byRank[e.Rank]
		if row == nil {
			row = &SummaryRow{Rank: e.Rank, Phases: make(map[string]sim.Duration)}
			byRank[e.Rank] = row
		}
		row.Phases[e.Phase] += e.Duration()
		if computePhase(e.Phase) {
			compute[e.Rank] = append(compute[e.Rank], span{e.Start, e.End})
		}
		if commPhase(e.Phase) {
			comm[e.Rank] = append(comm[e.Rank], span{e.Start, e.End})
		}
	}
	rows := make([]SummaryRow, 0, len(byRank))
	for rank, row := range byRank {
		cp := mergeSpans(compute[rank])
		cm := mergeSpans(comm[rank])
		row.Compute = spanLen(cp)
		row.Comm = spanLen(cm)
		row.Overlap = intersectLen(cp, cm)
		if row.Comm > 0 {
			row.OverlapPct = 100 * float64(row.Overlap) / float64(row.Comm)
		}
		rows = append(rows, *row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Rank < rows[j].Rank })
	return rows
}

// PhaseTotals sums the recorded time per phase per rank.
func (t *Recorder) PhaseTotals() map[string][]sim.Duration {
	out := make(map[string][]sim.Duration)
	maxRank := 0
	for _, e := range t.Events() {
		if e.Rank > maxRank {
			maxRank = e.Rank
		}
	}
	for _, e := range t.Events() {
		row := out[e.Phase]
		if row == nil {
			row = make([]sim.Duration, maxRank+1)
		}
		row[e.Rank] += e.Duration()
		out[e.Phase] = row
	}
	return out
}
