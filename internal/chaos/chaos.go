// Package chaos is the fault-fuzzing plane: it turns a small seeded
// spec into a random — but fully deterministic — fault schedule over
// every injectable event family (crash, hang, straggle, and the wire
// family: drop, dup, reorder, delay, partition), runs it through the
// engine, and machine-verifies the invariants the runtime promises:
//
//   - every run terminates finished or ErrUnrecovered inside a hard
//     virtual-time ceiling — a schedule can slow a run down, never
//     wedge it;
//   - the fault report's counters stay consistent with the schedule
//     (no counter exceeds its scheduled budget, no loss escalation
//     without scheduled loss);
//   - outcomes are bit-identical across GOMAXPROCS settings;
//   - a schedule shifted beyond the end of the run perturbs nothing.
//
// Generation is a pure function of the spec: the same seed always
// yields the same schedule, so every chaos failure is replayable from
// its one-line summary.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"strings"

	"scaffe/internal/coll"
	"scaffe/internal/core"
	"scaffe/internal/data"
	"scaffe/internal/fault"
	"scaffe/internal/layers"
	"scaffe/internal/models"
	"scaffe/internal/sim"
)

// Weights is the event-mix of a chaos spec: the relative probability
// of each schedulable family. Zero weights exclude a family.
type Weights struct {
	Crash, Hang, Straggle     float64
	Drop, Dup, Reorder, Delay float64
	Partition                 float64
}

// DefaultWeights leans toward the wire family (the cheap, always-
// recoverable perturbations) with a steady minority of rank-level
// failures and partitions.
func DefaultWeights() Weights {
	return Weights{
		Crash: 1, Hang: 0.5, Straggle: 1,
		Drop: 2, Dup: 2, Reorder: 2, Delay: 2,
		Partition: 1,
	}
}

func (w Weights) total() float64 {
	return w.Crash + w.Hang + w.Straggle + w.Drop + w.Dup + w.Reorder + w.Delay + w.Partition
}

// pick draws one event kind by weight. The Straggle and Partition
// picks expand to paired/windowed events in the generator.
func (w Weights) pick(r *rand.Rand) fault.Kind {
	x := r.Float64() * w.total()
	for _, c := range []struct {
		weight float64
		kind   fault.Kind
	}{
		{w.Crash, fault.Crash},
		{w.Hang, fault.Hang},
		{w.Straggle, fault.StragglerOn},
		{w.Drop, fault.Drop},
		{w.Dup, fault.Dup},
		{w.Reorder, fault.Reorder},
		{w.Delay, fault.Delay},
		{w.Partition, fault.Partition},
	} {
		if x < c.weight {
			return c.kind
		}
		x -= c.weight
	}
	return fault.Drop
}

// Spec parameterizes one chaos run. The zero value is not runnable;
// use Default or fill every field.
type Spec struct {
	// Ranks and Iterations size the training run.
	Ranks, Iterations int
	// Seed drives schedule generation; the schedule is a pure
	// function of the whole spec.
	Seed int64
	// Events is the number of weighted draws (straggles and
	// partitions expand to their window pairs on top).
	Events int
	// Weights is the event mix (zero value = DefaultWeights).
	Weights Weights
	// Real selects real-compute mode on the tiny net; false runs the
	// timing-only cifar10-quick model (much faster — the gate's bulk).
	Real bool
	// Design and Reduce select the training design and reducer
	// family (zero values = SC-B over the binomial tree).
	Design core.Design
	Reduce coll.Algorithm
}

// Default returns the gate's baseline spec for a seed: an 8-rank
// timing run with the default mix.
func Default(seed int64) Spec {
	return Spec{Ranks: 8, Iterations: 8, Seed: seed, Events: 6}
}

func (s Spec) String() string {
	mode := "timing"
	if s.Real {
		mode = "real"
	}
	return fmt.Sprintf("seed=%d ranks=%d iters=%d events=%d mode=%s", s.Seed, s.Ranks, s.Iterations, s.Events, mode)
}

// withDefaults fills zero fields.
func (s Spec) withDefaults() Spec {
	if s.Ranks == 0 {
		s.Ranks = 8
	}
	if s.Iterations == 0 {
		s.Iterations = 8
	}
	if s.Events == 0 {
		s.Events = 6
	}
	if s.Weights == (Weights{}) {
		s.Weights = DefaultWeights()
	}
	return s
}

// Config builds the training config a chaos run fuzzes (without the
// schedule — Run attaches it after calibrating against the fault-free
// baseline).
func (s Spec) Config() core.Config {
	s = s.withDefaults()
	if s.Real {
		net := models.BuildTinyNet(1, 1)
		return core.Config{
			Spec:        models.SpecFromNet(net),
			RealNet:     models.BuildTinyNet,
			Dataset:     data.NewSynthetic("tiny", layers.Shape{C: 3, H: 8, W: 8}, 4, 4096, 11),
			GPUs:        s.Ranks,
			Nodes:       2,
			GPUsPerNode: (s.Ranks + 1) / 2,
			GlobalBatch: 4 * s.Ranks,
			Iterations:  s.Iterations,
			Design:      s.Design,
			Reduce:      s.Reduce,
			Source:      core.MemorySource,
			Seed:        7,
			BaseLR:      0.05,
			Momentum:    0.9,

			CaptureFinalParams: true,
		}
	}
	spec, err := models.ByName("cifar10-quick")
	if err != nil {
		panic(err) // a registered model; unreachable
	}
	return core.Config{
		Spec:        spec,
		GPUs:        s.Ranks,
		Nodes:       2,
		GPUsPerNode: (s.Ranks + 1) / 2,
		GlobalBatch: 8 * s.Ranks,
		Iterations:  s.Iterations,
		Design:      s.Design,
		Reduce:      s.Reduce,
		Source:      core.MemorySource,
		Seed:        1,
	}
}

// Schedule generates the spec's fault schedule over a run expected to
// last `horizon` of virtual time. Pure function of (spec, horizon):
// the generator never consults the clock or global randomness.
func (s Spec) Schedule(horizon sim.Duration) fault.Schedule {
	s = s.withDefaults()
	rng := rand.New(rand.NewSource(s.Seed))
	lo := sim.Time(float64(horizon) * 0.15)
	hi := sim.Time(float64(horizon) * 0.85)
	at := func() sim.Time { return lo + sim.Time(rng.Float64()*float64(hi-lo)) }

	var sched fault.Schedule
	failStopped := make([]bool, s.Ranks)
	// failBudget keeps a strict minority of fail-stops, so runs stay
	// recoverable by construction; ErrUnrecovered outcomes still
	// happen through non-quorate partitions.
	failBudget := (s.Ranks - 1) / 2
	// Partition windows on the same cut must not overlap
	// (fault.Schedule.Validate rejects them); serializing all windows
	// satisfies that for any grouping.
	partCursor := sim.Time(0)

	pickRank := func() int { return rng.Intn(s.Ranks) }
	pickLink := func() (int, int) {
		src := rng.Intn(s.Ranks)
		dst := rng.Intn(s.Ranks - 1)
		if dst >= src {
			dst++
		}
		return src, dst
	}

	for i := 0; i < s.Events; i++ {
		kind := s.Weights.pick(rng)
		t := at()
		switch kind {
		case fault.Crash, fault.Hang:
			if failBudget == 0 {
				kind = fault.Drop // fall through to the wire case below
				break
			}
			rank := pickRank()
			for failStopped[rank] {
				rank = (rank + 1) % s.Ranks
			}
			failStopped[rank] = true
			failBudget--
			sched = append(sched, fault.Event{At: t, Kind: kind, Rank: rank})
			if rng.Float64() < 0.5 {
				// Half the fail-stops come back through the join desk.
				rejoin := t + sim.Time(float64(horizon)*(0.1+0.3*rng.Float64()))
				sched = append(sched, fault.Event{At: rejoin, Kind: fault.Join, Rank: rank})
				failStopped[rank] = false
			}
			continue
		case fault.StragglerOn:
			rank := pickRank()
			factor := 2 + 6*rng.Float64()
			off := t + sim.Time(float64(horizon)*(0.05+0.2*rng.Float64()))
			sched = append(sched,
				fault.Event{At: t, Kind: fault.StragglerOn, Rank: rank, Factor: factor},
				fault.Event{At: off, Kind: fault.StragglerOff, Rank: rank})
			continue
		case fault.Partition:
			window := sim.Duration(float64(horizon) * (0.05 + 0.2*rng.Float64()))
			if t < partCursor {
				t = partCursor + 1
			}
			partCursor = t + sim.Time(window)
			sched = append(sched, fault.Event{At: t, Kind: fault.Partition, Groups: splitGroups(rng, s.Ranks), For: window})
			continue
		}
		// The wire singles: drop/dup/reorder/delay on a random link.
		src, dst := pickLink()
		ev := fault.Event{At: t, Kind: kind, Src: src, Dst: dst, N: 1 + rng.Intn(3)}
		if kind == fault.Delay {
			ev.For = sim.Duration(float64(horizon) * (0.01 + 0.05*rng.Float64()))
		}
		sched = append(sched, ev)
	}
	sort.SliceStable(sched, func(i, j int) bool { return sched[i].At < sched[j].At })
	return sched
}

// splitGroups cuts a random nonempty subset of the world (at least 2
// ranks) into two nonempty sides.
func splitGroups(rng *rand.Rand, ranks int) [][]int {
	perm := rng.Perm(ranks)
	k := 2 + rng.Intn(ranks-1) // 2..ranks listed
	cut := 1 + rng.Intn(k-1)   // both sides nonempty
	a := append([]int(nil), perm[:cut]...)
	b := append([]int(nil), perm[cut:k]...)
	return [][]int{a, b}
}

// Outcome classifies how a chaos run ended.
type Outcome int

const (
	// Finished: the run trained to completion.
	Finished Outcome = iota
	// Unrecovered: injected failures legitimately killed the run
	// (core.ErrUnrecovered) — an allowed terminal state.
	Unrecovered
	// Wedged: the run hit the virtual-time ceiling or died with an
	// unexpected error — always an invariant violation.
	Wedged
)

func (o Outcome) String() string {
	switch o {
	case Finished:
		return "finished"
	case Unrecovered:
		return "unrecovered"
	}
	return "wedged"
}

// RunResult is one chaos run's outcome plus everything needed to
// verify and replay it.
type RunResult struct {
	Spec     Spec
	Schedule fault.Schedule
	Outcome  Outcome
	Res      *core.Result
	Err      error
}

// Summary is the one-line, machine-greppable record of the run.
func (r *RunResult) Summary() string {
	s := fmt.Sprintf("chaos %s outcome=%s events=%d", r.Spec.String(), r.Outcome, len(r.Schedule))
	if r.Res != nil && r.Res.Fault != nil {
		s += " " + r.Res.Fault.String()
	}
	if r.Err != nil {
		s += fmt.Sprintf(" err=%q", r.Err)
	}
	return s
}

// Run executes one chaos spec: calibrate a fault-free baseline,
// generate the schedule over its length, arm a hard virtual-time
// ceiling, and classify the outcome. The returned error reports
// harness-level failures (bad spec/config); schedule-induced deaths
// land in RunResult.Outcome instead.
func Run(s Spec) (*RunResult, error) {
	s = s.withDefaults()
	cfg := s.Config()
	base, err := core.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("chaos: baseline run: %w", err)
	}
	horizon := sim.Duration(base.TotalTime)
	sched := s.Schedule(horizon)

	cfg.Faults = sched
	// A detection quantum well under the horizon keeps the loss-aware
	// escalation (47 quanta) inside the ceiling even when every
	// scheduled loss escalates separately.
	cfg.FaultTimeout = quantumFor(horizon)
	cfg.MaxVirtualTime = ceilingFor(horizon, len(sched))
	res, err := core.Run(cfg)

	r := &RunResult{Spec: s, Schedule: sched, Res: res}
	switch {
	case err == nil:
		r.Outcome = Finished
	case errors.Is(err, core.ErrUnrecovered):
		r.Outcome = Unrecovered
		r.Err = err
	default:
		r.Outcome = Wedged
		r.Err = err
	}
	return r, nil
}

// quantumFor picks the failure-detection quantum for a run of the
// given fault-free length: 1/200th of the run, floored at 1µs.
func quantumFor(horizon sim.Duration) sim.Duration {
	q := horizon / 200
	if q < sim.Microsecond {
		q = sim.Microsecond
	}
	return q
}

// ceilingFor is the no-wedge virtual-time ceiling: generous slack for
// per-event escalation ladders and replay, scaled by schedule size.
func ceilingFor(horizon sim.Duration, events int) sim.Duration {
	return horizon*sim.Duration(10+4*events) + 100*47*quantumFor(horizon)
}

// Verify runs the spec and checks every per-run invariant: the
// termination contract and the counter/schedule consistency rules.
// The RunResult comes back even when verification fails, so callers
// can print the replayable summary.
func Verify(s Spec) (*RunResult, error) {
	r, err := Run(s)
	if err != nil {
		return nil, err
	}
	if r.Outcome == Wedged {
		return r, fmt.Errorf("chaos: %s: run wedged: %v", s, r.Err)
	}
	// Unrecovered runs die without a result; there is no report left
	// to check.
	if r.Outcome == Finished {
		if err := CheckCounters(r); err != nil {
			return r, fmt.Errorf("chaos: %s: %w", s, err)
		}
	}
	return r, nil
}

// CheckCounters verifies the fault report against the schedule: every
// counter must stay inside its scheduled budget, and escalations must
// be justified by scheduled loss.
func CheckCounters(r *RunResult) error {
	if r.Res == nil || r.Res.Fault == nil {
		return errors.New("no fault report on an armed run")
	}
	rep := r.Res.Fault
	var crashes, hangs, drops, dups, reorders, delays, parts int
	for _, ev := range r.Schedule {
		switch ev.Kind {
		case fault.Crash:
			crashes++
		case fault.Hang:
			hangs++
		case fault.Drop:
			drops += ev.N
		case fault.Dup:
			dups += ev.N
		case fault.Reorder:
			reorders += ev.N
		case fault.Delay:
			delays += ev.N
		case fault.Partition:
			parts++
		}
	}
	var errs []string
	check := func(name string, got, budget int) {
		if got > budget {
			errs = append(errs, fmt.Sprintf("%s=%d exceeds scheduled budget %d", name, got, budget))
		}
	}
	check("crashes", rep.Crashes, crashes)
	check("hangs", rep.Hangs, hangs)
	check("drops", rep.Drops, drops)
	check("dups", rep.Dups, dups)
	check("reorders", rep.Reorders, reorders)
	check("delays", rep.Delays, delays)
	check("fenced", rep.Fenced, r.Spec.Ranks)
	if rep.Injected > len(r.Schedule) {
		errs = append(errs, fmt.Sprintf("injected=%d exceeds schedule length %d", rep.Injected, len(r.Schedule)))
	}
	if parts == 0 && rep.PartitionDrops > 0 {
		errs = append(errs, fmt.Sprintf("partition-drops=%d with no scheduled partition", rep.PartitionDrops))
	}
	if parts == 0 && rep.Fenced > 0 {
		errs = append(errs, fmt.Sprintf("fenced=%d with no scheduled partition", rep.Fenced))
	}
	if rep.Drops+rep.PartitionDrops == 0 && rep.WireRevokes > 0 {
		errs = append(errs, fmt.Sprintf("wire-revokes=%d with no lost traffic", rep.WireRevokes))
	}
	if rep.Survivors < 0 || rep.Survivors > r.Spec.Ranks {
		errs = append(errs, fmt.Sprintf("survivors=%d outside [0,%d]", rep.Survivors, r.Spec.Ranks))
	}
	if r.Outcome == Finished && rep.Survivors == 0 {
		errs = append(errs, "finished with zero survivors")
	}
	if len(errs) > 0 {
		return fmt.Errorf("counter check: %s (report %v)", strings.Join(errs, "; "), rep)
	}
	return nil
}

// RunMatrix verifies GOMAXPROCS-invariance: the spec's run must yield
// a bit-identical virtual-time outcome (total time and full fault
// report) at every requested parallelism.
func RunMatrix(s Spec, procs []int) (*RunResult, error) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var first *RunResult
	for _, p := range procs {
		runtime.GOMAXPROCS(p)
		r, err := Verify(s)
		if err != nil {
			return r, fmt.Errorf("GOMAXPROCS=%d: %w", p, err)
		}
		if first == nil {
			first = r
			continue
		}
		if r.Outcome != first.Outcome {
			return r, fmt.Errorf("GOMAXPROCS=%d: outcome %s != %s", p, r.Outcome, first.Outcome)
		}
		if r.Res == nil || first.Res == nil {
			// Unrecovered runs die without a result; matching outcomes
			// is all there is to compare.
			continue
		}
		if r.Res.TotalTime != first.Res.TotalTime {
			return r, fmt.Errorf("GOMAXPROCS=%d: total time %v != %v", p, r.Res.TotalTime, first.Res.TotalTime)
		}
		if !reflect.DeepEqual(r.Res.Fault, first.Res.Fault) {
			return r, fmt.Errorf("GOMAXPROCS=%d: fault report diverged:\n%+v\n%+v", p, r.Res.Fault, first.Res.Fault)
		}
	}
	return first, nil
}

// ArmedUntripped verifies the zero-perturbation invariant: the spec's
// schedule shifted far past the end of the run must leave the
// virtual-time outcome byte-identical to an armed-but-idle plane.
func ArmedUntripped(s Spec) error {
	s = s.withDefaults()
	cfg := s.Config()
	base, err := core.Run(cfg)
	if err != nil {
		return fmt.Errorf("chaos: baseline run: %w", err)
	}
	far := base.TotalTime * 1000

	idle := s.Config()
	idle.Faults = fault.Schedule{{At: far, Kind: fault.StragglerOff, Rank: 0}}
	a, err := core.Run(idle)
	if err != nil {
		return fmt.Errorf("chaos: armed-idle run: %w", err)
	}

	armed := s.Config()
	sched := s.Schedule(sim.Duration(base.TotalTime))
	for i := range sched {
		sched[i].At += far
	}
	armed.Faults = sched
	b, err := core.Run(armed)
	if err != nil {
		return fmt.Errorf("chaos: armed-untripped run: %w", err)
	}

	if a.TotalTime != b.TotalTime {
		return fmt.Errorf("chaos: %s: untripped schedule changed total time: %v vs %v", s, b.TotalTime, a.TotalTime)
	}
	if !reflect.DeepEqual(a.Losses, b.Losses) {
		return fmt.Errorf("chaos: %s: untripped schedule changed the loss curve", s)
	}
	if !reflect.DeepEqual(a.FinalParams, b.FinalParams) {
		return fmt.Errorf("chaos: %s: untripped schedule changed the final parameters", s)
	}
	rep := b.Fault
	if rep.Drops+rep.Dups+rep.Reorders+rep.Delays+rep.PartitionDrops+rep.Fenced != 0 || len(rep.Recoveries) != 0 {
		return fmt.Errorf("chaos: %s: untripped schedule reported activity: %v", s, rep)
	}
	return nil
}
