package fault

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"scaffe/internal/sim"
)

func TestParseScheduleJoinEvict(t *testing.T) {
	text := `
5ms crash rank=3
150ms evict rank=2
250ms join rank=3
300ms join rank=2
`
	sched, err := ParseSchedule(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 4 {
		t.Fatalf("parsed %d events, want 4", len(sched))
	}
	if ev := sched[1]; ev.Kind != Evict || ev.Rank != 2 || ev.At != 150*sim.Time(sim.Millisecond) {
		t.Errorf("event 1 = %+v", ev)
	}
	if ev := sched[2]; ev.Kind != Join || ev.Rank != 3 {
		t.Errorf("event 2 = %+v", ev)
	}
	if err := sched.Validate(4, 2); err != nil {
		t.Errorf("validate: %v", err)
	}
	if Join.String() != "join" || Evict.String() != "evict" {
		t.Errorf("kind strings = %q, %q", Join, Evict)
	}
}

func TestParseScheduleJoinEvictErrors(t *testing.T) {
	cases := []struct{ name, text, want string }{
		{"join missing rank", "1ms join", "needs rank"},
		{"evict missing rank", "1ms evict", "needs rank"},
		{"join duplicate instant", "5ms join rank=2\n5ms evict rank=2", "duplicate event for rank 2"},
		{"evict vs crash duplicate", "5ms evict rank=1\n5ms crash rank=1", "duplicate event for rank 1"},
	}
	for _, tc := range cases {
		if _, err := ParseSchedule(tc.text); err == nil {
			t.Errorf("%s: no error", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.want)
		}
	}
	if err := (Schedule{{Kind: Join, Rank: 9}}).Validate(4, 2); err == nil {
		t.Error("join rank out of range: no error")
	}
	if err := (Schedule{{Kind: Evict, Rank: -1}}).Validate(4, 2); err == nil {
		t.Error("evict rank negative: no error")
	}
}

// elasticApplier is a minimal Joiner for plane-level tests: ReviveRank
// spawns a proc that waits at the join desk and records the outcome.
type elasticApplier struct {
	k        *sim.Kernel
	pl       *Plane
	admitted []int
	refused  []int
}

func (a *elasticApplier) KillRank(rank int, kind Kind)        {}
func (a *elasticApplier) SetCompute(rank int, factor float64) {}

func (a *elasticApplier) ReviveRank(rank int) {
	a.k.Spawn(fmt.Sprintf("joiner%d", rank), func(p *sim.Proc) {
		if a.pl.AwaitAdmission(rank, p) {
			a.admitted = append(a.admitted, rank)
		} else {
			a.refused = append(a.refused, rank)
		}
		a.pl.Depart(rank)
	})
}

// runJoinDesk simulates 3 survivors that ignore the join desk until
// `open`, then admit at their next tick: the joiner must ride out busy
// admit windows with bounded retries and re-queues, never wedging.
func runJoinDesk(t *testing.T, retries int, open sim.Time) (*Report, []int) {
	t.Helper()
	k := sim.New()
	pl := NewPlane(k, 4, sim.Millisecond)
	pl.SetJoinRetries(retries)
	pl.OnRebuild(func() int { return 0 })
	ap := &elasticApplier{k: k, pl: pl}
	pl.Arm(Schedule{
		{At: 2 * sim.Time(sim.Millisecond), Kind: Crash, Rank: 3},
		{At: 10 * sim.Time(sim.Millisecond), Kind: Join, Rank: 3},
	}, ap)
	for i := 0; i < 3; i++ {
		i := i
		k.Spawn(fmt.Sprintf("rank%d", i), func(p *sim.Proc) {
			for len(pl.Report().Joins) == 0 {
				p.Sleep(pl.Timeout(0))
				if p.Now() > open && pl.JoinPending() && !pl.Revoked() {
					pl.BeginGrow()
				}
				if pl.Revoked() || pl.OnTimeout(i, 0, p.Now()) {
					pl.EnterRecovery(i, p)
				}
			}
			pl.Depart(i)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return pl.Report(), ap.admitted
}

func TestJoinDeskRetryRequeueDeterministic(t *testing.T) {
	rep, admitted := runJoinDesk(t, 2, 40*sim.Time(sim.Millisecond))
	if len(admitted) != 1 || admitted[0] != 3 {
		t.Fatalf("admitted = %v, want [3]", admitted)
	}
	if len(rep.Joins) != 1 {
		t.Fatalf("joins = %+v", rep.Joins)
	}
	j := rep.Joins[0]
	if j.Rank != 3 || j.WorldSize != 4 || rep.Survivors != 4 {
		t.Errorf("join record = %+v, survivors = %d", j, rep.Survivors)
	}
	// The admit window stayed shut past the retry budget: the joiner
	// must have withdrawn, cooled down, and re-queued at least once,
	// with the exhausted budget reflected in the attempt count.
	if j.Requeues < 1 || rep.JoinRequeues != j.Requeues {
		t.Errorf("requeues = %d (report %d), want >= 1", j.Requeues, rep.JoinRequeues)
	}
	if j.Attempts <= 2 {
		t.Errorf("attempts = %d, want > retry budget", j.Attempts)
	}
	if j.AdmissionLatency() <= 0 {
		t.Errorf("admission latency = %v", j.AdmissionLatency())
	}
	// The whole dance is virtual-time deterministic: a second run must
	// produce a byte-identical report.
	rep2, _ := runJoinDesk(t, 2, 40*sim.Time(sim.Millisecond))
	if !reflect.DeepEqual(rep, rep2) {
		t.Errorf("join desk diverged across runs:\n%+v\n%+v", rep, rep2)
	}
}

func TestJoinDeskImmediateAdmission(t *testing.T) {
	// Admit window opens immediately: no requeues, one or two attempts.
	rep, admitted := runJoinDesk(t, 6, 0)
	if len(admitted) != 1 || len(rep.Joins) != 1 {
		t.Fatalf("admitted = %v, joins = %+v", admitted, rep.Joins)
	}
	if j := rep.Joins[0]; j.Requeues != 0 || j.Attempts > 2 {
		t.Errorf("immediate admission took %d attempts, %d requeues", j.Attempts, j.Requeues)
	}
}

func TestJoinAbandonedWhenNobodyLeft(t *testing.T) {
	k := sim.New()
	pl := NewPlane(k, 2, sim.Millisecond)
	pl.OnRebuild(func() int { return 0 })
	ap := &elasticApplier{k: k, pl: pl}
	pl.Arm(Schedule{
		{At: sim.Time(sim.Millisecond), Kind: Crash, Rank: 1},
		{At: 20 * sim.Time(sim.Millisecond), Kind: Join, Rank: 1},
	}, ap)
	k.Spawn("rank0", func(p *sim.Proc) {
		p.Sleep(2 * pl.Timeout(0))
		if pl.OnTimeout(0, 0, p.Now()) {
			pl.EnterRecovery(0, p)
		}
		// Survivor finishes training long before anyone could admit
		// the joiner.
		pl.Depart(0)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ap.refused) != 1 || ap.refused[0] != 1 {
		t.Errorf("refused = %v, want [1] (join must abandon, not wedge)", ap.refused)
	}
	if len(pl.Report().Joins) != 0 {
		t.Errorf("abandoned join produced a record: %+v", pl.Report().Joins)
	}
}

func TestEvictIsInstantlyDetected(t *testing.T) {
	k := sim.New()
	pl := NewPlane(k, 4, sim.Millisecond)
	pl.OnRebuild(func() int { return 7 })
	ap := &elasticApplier{k: k, pl: pl}
	at := 5 * sim.Time(sim.Millisecond)
	pl.Arm(Schedule{{At: at, Kind: Evict, Rank: 2}}, ap)
	for i := 0; i < 4; i++ {
		i := i
		k.Spawn(fmt.Sprintf("rank%d", i), func(p *sim.Proc) {
			for len(pl.Report().Recoveries) == 0 {
				p.Sleep(pl.Timeout(0))
				if pl.Revoked() && pl.Alive(i) {
					pl.EnterRecovery(i, p)
				}
			}
			pl.Depart(i)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	rep := pl.Report()
	if rep.Evictions != 1 || len(rep.Recoveries) != 1 {
		t.Fatalf("report = %v", rep)
	}
	rec := rep.Recoveries[0]
	if rec.Kind != Evict || rec.Rank != 2 {
		t.Errorf("recovery = %+v", rec)
	}
	if rec.DetectionLatency() != 0 {
		t.Errorf("eviction detection latency = %v, want 0 (evictor initiated it)", rec.DetectionLatency())
	}
	if rec.RestartIter != 7 || rec.Survivors != 3 {
		t.Errorf("recovery = %+v", rec)
	}
}
