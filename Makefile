# Top-level developer targets. `make check` is the pre-merge gate
# (formatting, vet, build, race-enabled tests); the rest are the usual
# shortcuts.

GO ?= go

.PHONY: all build test race bench fmt vet check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 45m ./...

bench:
	$(GO) test -run XXX -bench . -benchtime 1x ./...

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

check:
	sh scripts/check.sh
