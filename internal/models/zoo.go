package models

import (
	"fmt"
	"math"

	"scaffe/internal/layers"
)

// specBuilder accumulates LayerSpecs while tracking the activation
// shape, computing parameter counts and FLOPs arithmetically (which
// also handles grouped convolutions, which the real-compute layers do
// not implement).
type specBuilder struct {
	s       *Spec
	c, h, w int
}

func newSpecBuilder(name string, in layers.Shape) *specBuilder {
	return &specBuilder{
		s: &Spec{Name: name, Input: in, PerSampleBytes: int64(in.Elems()) + 4},
		c: in.C, h: in.H, w: in.W,
	}
}

// add appends a layer spec; outElems is the per-sample output size.
func (b *specBuilder) add(name, kind string, params int, fwd, bwd float64, outElems int) {
	b.s.Layers = append(b.s.Layers, LayerSpec{
		Name: name, Kind: kind, ParamElems: params,
		FwdFLOPs: fwd, BwdFLOPs: bwd, OutElems: outElems,
	})
}

// conv appends a convolution, updating the shape. groups follows the
// AlexNet dual-GPU split convention.
func (b *specBuilder) conv(name string, outC, k, stride, pad, groups int) {
	outH := (b.h+2*pad-k)/stride + 1
	outW := (b.w+2*pad-k)/stride + 1
	macs := 2 * float64(outC*outH*outW) * float64(b.c/groups*k*k)
	params := outC*(b.c/groups)*k*k + outC
	b.add(name, "Convolution", params, macs, 2*macs, outC*outH*outW)
	b.c, b.h, b.w = outC, outH, outW
}

// pool appends a pooling layer with Caffe's ceil-mode output size.
func (b *specBuilder) pool(name string, k, stride, pad int, avg bool) {
	outH := int(math.Ceil(float64(b.h+2*pad-k)/float64(stride))) + 1
	outW := int(math.Ceil(float64(b.w+2*pad-k)/float64(stride))) + 1
	kind := "Pooling(max)"
	if avg {
		kind = "Pooling(ave)"
	}
	f := float64(b.c*outH*outW) * float64(k*k)
	b.add(name, kind, 0, f, f, b.c*outH*outW)
	b.h, b.w = outH, outW
}

func (b *specBuilder) elems() int { return b.c * b.h * b.w }

func (b *specBuilder) relu(name string) {
	e := float64(b.elems())
	b.add(name, "ReLU", 0, e, e, b.elems())
}

func (b *specBuilder) lrn(name string, size int) {
	e := float64(b.elems())
	b.add(name, "LRN", 0, e*float64(size+3), e*float64(size+4), b.elems())
}

func (b *specBuilder) fc(name string, outN int) {
	in := b.elems()
	f := 2 * float64(outN*in)
	b.add(name, "InnerProduct", outN*in+outN, f, 2*f, outN)
	b.c, b.h, b.w = outN, 1, 1
}

func (b *specBuilder) dropout(name string) {
	e := float64(b.elems())
	b.add(name, "Dropout", 0, e, e, b.elems())
}

func (b *specBuilder) softmax(name string) {
	e := float64(b.elems())
	b.add(name, "SoftmaxWithLoss", 0, 5*e, e, b.elems())
	b.s.Classes = b.elems()
}

// AlexNet returns the cost-model spec of Krizhevsky's AlexNet
// (ILSVRC-2012 geometry, grouped conv2/4/5): ~61M parameters, ~244 MB
// of float32 gradients — the paper's canonical "very large message".
func AlexNet() *Spec {
	b := newSpecBuilder("alexnet", layers.Shape{C: 3, H: 227, W: 227})
	b.conv("conv1", 96, 11, 4, 0, 1)
	b.relu("relu1")
	b.lrn("norm1", 5)
	b.pool("pool1", 3, 2, 0, false)
	b.conv("conv2", 256, 5, 1, 2, 2)
	b.relu("relu2")
	b.lrn("norm2", 5)
	b.pool("pool2", 3, 2, 0, false)
	b.conv("conv3", 384, 3, 1, 1, 1)
	b.relu("relu3")
	b.conv("conv4", 384, 3, 1, 1, 2)
	b.relu("relu4")
	b.conv("conv5", 256, 3, 1, 1, 2)
	b.relu("relu5")
	b.pool("pool5", 3, 2, 0, false)
	b.fc("fc6", 4096)
	b.relu("relu6")
	b.dropout("drop6")
	b.fc("fc7", 4096)
	b.relu("relu7")
	b.dropout("drop7")
	b.fc("fc8", 1000)
	b.softmax("loss")
	return b.s
}

// CaffeNet returns BVLC CaffeNet: AlexNet with pooling before
// normalization (identical parameter budget, slightly different
// activation footprints).
func CaffeNet() *Spec {
	b := newSpecBuilder("caffenet", layers.Shape{C: 3, H: 227, W: 227})
	b.conv("conv1", 96, 11, 4, 0, 1)
	b.relu("relu1")
	b.pool("pool1", 3, 2, 0, false)
	b.lrn("norm1", 5)
	b.conv("conv2", 256, 5, 1, 2, 2)
	b.relu("relu2")
	b.pool("pool2", 3, 2, 0, false)
	b.lrn("norm2", 5)
	b.conv("conv3", 384, 3, 1, 1, 1)
	b.relu("relu3")
	b.conv("conv4", 384, 3, 1, 1, 2)
	b.relu("relu4")
	b.conv("conv5", 256, 3, 1, 1, 2)
	b.relu("relu5")
	b.pool("pool5", 3, 2, 0, false)
	b.fc("fc6", 4096)
	b.relu("relu6")
	b.dropout("drop6")
	b.fc("fc7", 4096)
	b.relu("relu7")
	b.dropout("drop7")
	b.fc("fc8", 1000)
	b.softmax("loss")
	return b.s
}

// inception appends one GoogLeNet inception module: four parallel
// branches (1×1, 1×1→3×3, 1×1→5×5, pool→1×1) concatenated on the
// channel axis. Branch shapes are derived from the module input.
func (b *specBuilder) inception(name string, b1, b3r, b3, b5r, b5, bp int) {
	inC, h, w := b.c, b.h, b.w
	branch := func(tag string, convs ...[3]int) int {
		// convs: {outC, kernel, pad}; the branch preserves h×w by
		// construction.
		c := inC
		for i, cv := range convs {
			outC, k, _ := cv[0], cv[1], cv[2]
			macs := 2 * float64(outC*h*w) * float64(c*k*k)
			params := outC*c*k*k + outC
			b.add(fmt.Sprintf("%s/%s_%d", name, tag, i+1), "Convolution", params, macs, 2*macs, outC*h*w)
			e := float64(outC * h * w)
			b.add(fmt.Sprintf("%s/%s_relu%d", name, tag, i+1), "ReLU", 0, e, e, outC*h*w)
			c = outC
		}
		return c
	}
	out := branch("1x1", [3]int{b1, 1, 0})
	out += branch("3x3", [3]int{b3r, 1, 0}, [3]int{b3, 3, 1})
	out += branch("5x5", [3]int{b5r, 1, 0}, [3]int{b5, 5, 2})
	// Pool branch: 3×3/1 pad 1 max pool (shape preserving) + 1×1 conv.
	f := float64(inC*h*w) * 9
	b.add(name+"/pool", "Pooling(max)", 0, f, f, inC*h*w)
	out += branch("pool_proj", [3]int{bp, 1, 0})
	b.add(name+"/concat", "Concat", 0, 0, 0, out*h*w)
	b.c = out
}

// auxClassifier appends one of GoogLeNet's training-time auxiliary
// heads (avgpool 5/3, 1×1 conv 128, fc 1024, fc 1000). Their
// parameters participate in gradient aggregation during training, so
// they matter for communication volume.
func (b *specBuilder) auxClassifier(name string) {
	inC, h, w := b.c, b.h, b.w
	ph := (h-5)/3 + 1
	pw := (w-5)/3 + 1
	b.add(name+"/ave_pool", "Pooling(ave)", 0, float64(inC*ph*pw*25), float64(inC*ph*pw*25), inC*ph*pw)
	macs := 2 * float64(128*ph*pw) * float64(inC)
	b.add(name+"/conv", "Convolution", 128*inC+128, macs, 2*macs, 128*ph*pw)
	b.add(name+"/relu_conv", "ReLU", 0, float64(128*ph*pw), float64(128*ph*pw), 128*ph*pw)
	in1 := 128 * ph * pw
	f1 := 2 * float64(1024*in1)
	b.add(name+"/fc", "InnerProduct", 1024*in1+1024, f1, 2*f1, 1024)
	b.add(name+"/relu_fc", "ReLU", 0, 1024, 1024, 1024)
	b.add(name+"/drop", "Dropout", 0, 1024, 1024, 1024)
	f2 := 2 * float64(1000*1024)
	b.add(name+"/classifier", "InnerProduct", 1000*1024+1000, f2, 2*f2, 1000)
	b.add(name+"/loss", "SoftmaxWithLoss", 0, 5000, 1000, 1000)
	// Aux heads branch off; the main trunk shape is unchanged.
	b.c, b.h, b.w = inC, h, w
}

// GoogLeNet returns the BVLC GoogLeNet (Inception v1) training spec,
// including both auxiliary classifiers: ~13.4M parameters.
func GoogLeNet() *Spec {
	b := newSpecBuilder("googlenet", layers.Shape{C: 3, H: 224, W: 224})
	b.conv("conv1/7x7_s2", 64, 7, 2, 3, 1)
	b.relu("conv1/relu")
	b.pool("pool1/3x3_s2", 3, 2, 0, false)
	b.lrn("pool1/norm1", 5)
	b.conv("conv2/3x3_reduce", 64, 1, 1, 0, 1)
	b.relu("conv2/relu_reduce")
	b.conv("conv2/3x3", 192, 3, 1, 1, 1)
	b.relu("conv2/relu")
	b.lrn("conv2/norm2", 5)
	b.pool("pool2/3x3_s2", 3, 2, 0, false)
	b.inception("inception_3a", 64, 96, 128, 16, 32, 32)
	b.inception("inception_3b", 128, 128, 192, 32, 96, 64)
	b.pool("pool3/3x3_s2", 3, 2, 0, false)
	b.inception("inception_4a", 192, 96, 208, 16, 48, 64)
	b.auxClassifier("loss1")
	b.inception("inception_4b", 160, 112, 224, 24, 64, 64)
	b.inception("inception_4c", 128, 128, 256, 24, 64, 64)
	b.inception("inception_4d", 112, 144, 288, 32, 64, 64)
	b.auxClassifier("loss2")
	b.inception("inception_4e", 256, 160, 320, 32, 128, 128)
	b.pool("pool4/3x3_s2", 3, 2, 0, false)
	b.inception("inception_5a", 256, 160, 320, 32, 128, 128)
	b.inception("inception_5b", 384, 192, 384, 48, 128, 128)
	b.pool("pool5/7x7_s1", 7, 1, 0, true)
	b.dropout("pool5/drop")
	b.fc("loss3/classifier", 1000)
	b.softmax("loss3")
	return b.s
}
