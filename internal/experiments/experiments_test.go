package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// quick keeps experiment tests fast while preserving configuration
// shapes.
var quick = Options{Iterations: 2, MaxGPUs: 32}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "figure8", "figure9", "figure10", "figure11",
		"figure12", "figure13", "table2", "scobr", "costmodel",
		"weakscaling", "threelevel", "allreduce", "skew", "bucketing", "scobrf", "mpdp", "accuracy",
		"faults", "sdc", "elastic", "chaos"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("experiment %d = %s, want %s", i, all[i].ID, id)
		}
		if _, err := ByID(id); err != nil {
			t.Errorf("ByID(%s): %v", id, err)
		}
	}
	if _, err := ByID("figure99"); err == nil {
		t.Error("unknown id should error")
	}
}

func TestAllExperimentsProduceTables(t *testing.T) {
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			tb, err := r.Run(quick)
			if err != nil {
				t.Fatal(err)
			}
			if len(tb.Rows) == 0 {
				t.Fatal("no rows")
			}
			for i, row := range tb.Rows {
				if len(row) != len(tb.Columns) {
					t.Errorf("row %d has %d cells, header has %d", i, len(row), len(tb.Columns))
				}
			}
			md := tb.Markdown()
			if !strings.Contains(md, "### "+r.ID) {
				t.Error("markdown missing header")
			}
			if !strings.Contains(md, "|") {
				t.Error("markdown missing table")
			}
		})
	}
}

func TestFigure12SpeedupShape(t *testing.T) {
	tb, err := Figure12(Options{MaxGPUs: 32})
	if err != nil {
		t.Fatal(err)
	}
	// Every row's OpenMPI column must exceed MV2, which must exceed HR
	// — the paper's ordering at every size.
	for _, row := range tb.Rows {
		mv2 := row[4]
		ompi := row[5]
		if !strings.HasSuffix(mv2, "x") || !strings.HasSuffix(ompi, "x") {
			t.Fatalf("speedup cells malformed: %q %q", mv2, ompi)
		}
	}
	if len(tb.Notes) == 0 {
		t.Error("figure12 should report its paper-vs-measured note")
	}
}

func TestFigure13ReportsImprovement(t *testing.T) {
	tb, err := Figure13(Options{Iterations: 3, MaxGPUs: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		imp := row[len(row)-1]
		if !strings.HasSuffix(imp, "%") {
			t.Fatalf("improvement cell malformed: %q", imp)
		}
		if strings.HasPrefix(imp, "-") {
			t.Errorf("SC-OB regressed vs SC-B at %s GPUs: %s", row[0], imp)
		}
	}
}

func TestTable2HasBaselineAndThreeVariants(t *testing.T) {
	tb, err := Table2(Options{Iterations: 2, MaxGPUs: 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("table2 has %d rows, want 4", len(tb.Rows))
	}
	if tb.Rows[0][1] != "SC-B" || tb.Rows[3][0] != "CB-8" {
		t.Errorf("table2 rows mislabeled: %v", tb.Rows)
	}
}

func TestOptionsHelpers(t *testing.T) {
	o := Options{}
	if o.iters(7) != 7 {
		t.Error("default iters ignored")
	}
	o.Iterations = 3
	if o.iters(7) != 3 {
		t.Error("override iters ignored")
	}
	capped := Options{MaxGPUs: 32}.cap([]int{16, 32, 64})
	if len(capped) != 2 || capped[1] != 32 {
		t.Errorf("cap = %v", capped)
	}
	uncapped := Options{}.cap([]int{16, 64})
	if len(uncapped) != 2 {
		t.Errorf("uncapped = %v", uncapped)
	}
}

func TestMarkdownEscapesNothingButRenders(t *testing.T) {
	tb := &Table{ID: "x", Title: "t", Columns: []string{"a", "b"}}
	tb.AddRow("1", "2")
	tb.Note("hello %d", 42)
	md := tb.Markdown()
	for _, want := range []string{"### x — t", "| a | b |", "| 1 | 2 |", "> hello 42"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestSkewShowsChainSensitivity(t *testing.T) {
	tb, err := Skew(Options{MaxGPUs: 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("skew rows = %d", len(tb.Rows))
	}
	// At the largest slowdown, CC must have degraded at least as much
	// as CB (relative to their own baselines) — the skew-tolerance
	// claim of Section 5.
	last := tb.Rows[len(tb.Rows)-1]
	cc := strings.TrimSuffix(last[4], "x")
	cb := strings.TrimSuffix(last[5], "x")
	var ccf, cbf float64
	if _, err := fmt.Sscanf(cc, "%f", &ccf); err != nil {
		t.Fatal(err)
	}
	if _, err := fmt.Sscanf(cb, "%f", &cbf); err != nil {
		t.Fatal(err)
	}
	if ccf < cbf {
		t.Errorf("CC degradation (%v) should be >= CB degradation (%v) under a straggler", ccf, cbf)
	}
}
