package core

import (
	"testing"

	"scaffe/internal/coll"
	"scaffe/internal/data"
	"scaffe/internal/models"
	"scaffe/internal/sim"
)

// Golden equivalence: the DAG scheduler must reproduce the seed's
// hand-written per-design loops bit for bit. The constants below were
// captured from the loop implementation immediately before the sched
// refactor (cifar10-quick, synthetic CIFAR data, 4 training
// iterations); any drift in virtual time or losses means the graph no
// longer encodes the same schedule.

func goldenRealConfig(gpus int, d Design) Config {
	spec, err := models.ByName("cifar10-quick")
	if err != nil {
		panic(err)
	}
	return Config{
		Spec:        spec,
		RealNet:     models.BuildCIFAR10Quick,
		Dataset:     data.SyntheticCIFAR10(4096, 7),
		GPUs:        gpus,
		Nodes:       2,
		GPUsPerNode: 4,
		GlobalBatch: 32,
		Iterations:  4,
		Design:      d,
		Reduce:      coll.Binomial,
		Source:      MemorySource,
		Seed:        7,
		BaseLR:      0.01,
		Momentum:    0.9,
	}
}

func TestSchedulerGoldenEquivalence(t *testing.T) {
	golden := []struct {
		gpus   int
		design Design
		total  sim.Time
		losses []float32
	}{
		{4, SCB, 23683251, []float32{2.4990718, 2.2863834, 2.1974754, 2.4326906}},
		{4, SCOB, 23237177, []float32{2.4990718, 2.2863834, 2.1974754, 2.4326906}},
		{4, SCOBR, 22677313, []float32{2.4990718, 2.2863834, 2.1974754, 2.4326906}},
		{8, SCB, 23731178, []float32{2.5262697, 2.3438718, 2.2468104, 2.4665751}},
		{8, SCOB, 23457549, []float32{2.5262697, 2.3438718, 2.2468104, 2.4665751}},
		{8, SCOBR, 23366085, []float32{2.5262697, 2.3438718, 2.2468104, 2.4665751}},
	}
	for _, g := range golden {
		res, err := Run(goldenRealConfig(g.gpus, g.design))
		if err != nil {
			t.Fatalf("%v@%d: %v", g.design, g.gpus, err)
		}
		if res.TotalTime != g.total {
			t.Errorf("%v@%d total time = %d, seed loops gave %d", g.design, g.gpus, res.TotalTime, g.total)
		}
		if len(res.Losses) != len(g.losses) {
			t.Fatalf("%v@%d: %d losses, want %d", g.design, g.gpus, len(res.Losses), len(g.losses))
		}
		for i, l := range res.Losses {
			if l != g.losses[i] {
				t.Errorf("%v@%d loss[%d] = %v, seed loops gave %v", g.design, g.gpus, i, l, g.losses[i])
			}
		}
	}
}

func TestSchedulerGoldenTimingBaselines(t *testing.T) {
	// Timing-mode totals for every converted design, captured from the
	// seed loops (cifar10-quick, 3 iterations, seed 1).
	spec, err := models.ByName("cifar10-quick")
	if err != nil {
		t.Fatal(err)
	}
	golden := []struct {
		name  string
		total sim.Time
		mk    func() Config
	}{
		{"scb8", 18689684, func() Config { return timingConfig(spec, 8, 64, 3) }},
		{"scob8", 18198349, func() Config {
			cfg := timingConfig(spec, 8, 64, 3)
			cfg.Design = SCOB
			return cfg
		}},
		{"scobr8", 17160001, func() Config {
			cfg := timingConfig(spec, 8, 64, 3)
			cfg.Design = SCOBR
			return cfg
		}},
		{"cntk8", 17512746, func() Config {
			cfg := timingConfig(spec, 8, 64, 3)
			cfg.Design = CNTKLike
			return cfg
		}},
		{"ps8", 17874520, func() Config {
			cfg := timingConfig(spec, 8, 63, 3)
			cfg.Design = ParamServer
			return cfg
		}},
		{"caffe8", 18281183, func() Config {
			cfg := timingConfig(spec, 8, 64, 3)
			cfg.Design = CaffeMT
			cfg.Reduce = coll.Binomial
			cfg.Source = LMDBSource
			cfg.Nodes, cfg.GPUsPerNode = 1, 16
			return cfg
		}},
		{"lmdb16", 17745995, func() Config {
			cfg := timingConfig(spec, 16, 128, 3)
			cfg.Design = SCOBR
			cfg.Source = LMDBSource
			return cfg
		}},
	}
	for _, g := range golden {
		res, err := Run(g.mk())
		if err != nil {
			t.Fatalf("%s: %v", g.name, err)
		}
		if res.TotalTime != g.total {
			t.Errorf("%s total = %d, seed loops gave %d", g.name, res.TotalTime, g.total)
		}
	}
}

func TestNormalizeDefaults(t *testing.T) {
	spec, err := models.ByName("cifar10-quick")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Spec: spec, GPUs: 20, GlobalBatch: 20, Iterations: 1}
	if err := cfg.validateAndDefault(); err != nil {
		t.Fatal(err)
	}
	if cfg.QueueDepth != 2 {
		t.Errorf("QueueDepth = %d, want default 2", cfg.QueueDepth)
	}
	if cfg.GPUsPerNode != 16 || cfg.Nodes != 2 {
		t.Errorf("cluster = %dx%d, want 2x16", cfg.Nodes, cfg.GPUsPerNode)
	}
	if cfg.BucketBytes != 0 {
		t.Errorf("BucketBytes = %d; only SC-OBR-F defaults it", cfg.BucketBytes)
	}

	fcfg := Config{Spec: spec, GPUs: 4, GlobalBatch: 8, Iterations: 1, Design: SCOBRF}
	if err := fcfg.validateAndDefault(); err != nil {
		t.Fatal(err)
	}
	if fcfg.BucketBytes != 4<<20 {
		t.Errorf("SC-OBR-F BucketBytes = %d, want 4MiB default", fcfg.BucketBytes)
	}

	// Explicit values survive normalization.
	cfg2 := Config{Spec: spec, GPUs: 4, GlobalBatch: 8, Iterations: 1, QueueDepth: 7, Nodes: 1, GPUsPerNode: 8}
	if err := cfg2.validateAndDefault(); err != nil {
		t.Fatal(err)
	}
	if cfg2.QueueDepth != 7 || cfg2.Nodes != 1 || cfg2.GPUsPerNode != 8 {
		t.Errorf("explicit fields changed: %+v", cfg2)
	}

	// Invalid configs still fail before any defaulting applies.
	bad := Config{Spec: spec, GPUs: 0, GlobalBatch: 8, Iterations: 1}
	if err := bad.validateAndDefault(); err == nil {
		t.Error("zero GPUs should fail validation")
	}
}

func TestSCOBRFBeatsSCOBROnGoogLeNet(t *testing.T) {
	// The acceptance bar for the new design: on a many-small-layer
	// model at scale, fused buckets amortize the per-collective cost
	// that per-layer SC-OBR pays 50+ times per iteration.
	mk := func(d Design) Config {
		cfg := timingConfig(models.GoogLeNet(), 160, 1280, 3)
		cfg.Nodes, cfg.GPUsPerNode = 12, 16
		cfg.Design = d
		return cfg
	}
	scobr, err := Run(mk(SCOBR))
	if err != nil {
		t.Fatal(err)
	}
	scobrf, err := Run(mk(SCOBRF))
	if err != nil {
		t.Fatal(err)
	}
	if scobrf.Design != "SC-OBR-F" {
		t.Errorf("design name = %q", scobrf.Design)
	}
	if scobrf.Phases.Aggregation >= scobr.Phases.Aggregation {
		t.Errorf("SC-OBR-F aggregation (%v) should beat SC-OBR's (%v) on GoogLeNet at 160 GPUs",
			scobrf.Phases.Aggregation, scobr.Phases.Aggregation)
	}
	if scobrf.TotalTime >= scobr.TotalTime {
		t.Errorf("SC-OBR-F total (%v) should beat SC-OBR (%v)", scobrf.TotalTime, scobr.TotalTime)
	}
}

func TestSCOBRFMatchesSCOBRLosses(t *testing.T) {
	// Bucketing changes when gradients are reduced, not their values:
	// real-mode training must converge identically.
	base, err := Run(goldenRealConfig(4, SCOBR))
	if err != nil {
		t.Fatal(err)
	}
	cfg := goldenRealConfig(4, SCOBRF)
	cfg.BucketBytes = 64 << 10 // small enough to form several buckets on CIFAR
	fused, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fused.Losses) != len(base.Losses) {
		t.Fatalf("loss counts differ: %d vs %d", len(fused.Losses), len(base.Losses))
	}
	for i := range fused.Losses {
		if fused.Losses[i] != base.Losses[i] {
			t.Errorf("loss[%d]: SC-OBR-F %v vs SC-OBR %v", i, fused.Losses[i], base.Losses[i])
		}
	}
}
