package layers

import (
	"math/rand"

	"scaffe/internal/tensor"
)

// SoftmaxLoss is Caffe's SoftmaxWithLoss: softmax over the class
// dimension followed by mean cross-entropy against integer labels. It
// terminates a Net; its Forward output is the per-class probability
// tensor and the scalar loss is read via Loss().
type SoftmaxLoss struct {
	base
	noParams

	labels []int
	probs  *tensor.Tensor
	grad   *tensor.Tensor // (prob − onehot) from the last Forward
	loss   float32
}

// NewSoftmaxLoss creates the loss layer.
func NewSoftmaxLoss(name string) *SoftmaxLoss { return &SoftmaxLoss{base: base{name: name}} }

// Kind implements Layer.
func (l *SoftmaxLoss) Kind() string { return "SoftmaxWithLoss" }

// OutShape implements Layer.
func (l *SoftmaxLoss) OutShape(in Shape) Shape { return in }

// FwdFLOPs implements Layer.
func (l *SoftmaxLoss) FwdFLOPs(in Shape) float64 { return 5 * float64(in.Elems()) }

// BwdFLOPs implements Layer.
func (l *SoftmaxLoss) BwdFLOPs(in Shape) float64 { return float64(in.Elems()) }

// Setup implements Layer.
func (l *SoftmaxLoss) Setup(in Shape, batch int, _ *rand.Rand) {
	l.setup(in, batch)
	l.allocBlobs(in)
	l.probs = l.out // softmax probabilities live in the output blob
	l.grad = tensor.New(batch, in.Elems())
}

// SetLabels provides the ground-truth labels for the next Forward.
func (l *SoftmaxLoss) SetLabels(labels []int) { l.labels = labels }

// Loss returns the mean cross-entropy of the last Forward.
func (l *SoftmaxLoss) Loss() float32 { return l.loss }

// Probs returns the class probabilities of the last Forward.
func (l *SoftmaxLoss) Probs() *tensor.Tensor { return l.probs }

// Forward implements Layer.
//
//scaffe:hotpath
func (l *SoftmaxLoss) Forward(in *tensor.Tensor) *tensor.Tensor {
	l.checkIn(in)
	classes := l.in.Elems()
	if len(l.labels) != l.batch {
		panic("layers: SoftmaxLoss needs SetLabels before Forward")
	}
	copy(l.probs.Data, in.Data)
	l.loss = tensor.SoftmaxCrossEntropy(l.probs.Data, l.batch, classes, l.labels, l.grad.Data)
	return l.probs
}

// Backward implements Layer: it returns (prob − onehot)/batch, the
// gradient of the mean cross-entropy loss. The incoming gradient is
// ignored (this is the terminal layer).
//
//scaffe:hotpath
func (l *SoftmaxLoss) Backward(_ *tensor.Tensor) *tensor.Tensor {
	out := l.gradIn
	inv := 1 / float32(l.batch)
	for i, v := range l.grad.Data {
		out.Data[i] = v * inv
	}
	return out
}
