package mpi

import (
	"fmt"

	"scaffe/internal/gpu"
	"scaffe/internal/sim"
	"scaffe/internal/topology"
)

// EagerLimit is the message size up to which sends complete locally
// without waiting for the receiver (eager protocol); larger messages
// use rendezvous and complete only when the transfer finishes.
const EagerLimit = 64 << 10

type matchKey struct {
	comm int
	src  int // world rank of the sender
	tag  int
}

// pendingSend is one unexpected message: the sender arrived before the
// matching receive was posted. Records are pooled on the receiving
// rank and linked into its unexpected-queue per match key. reqGen
// snapshots the send request's completion generation at post time: an
// eager send fires (and may be recycled by the sender's Wait) long
// before the receiver arrives, so the delivery fires the send side
// through FireIf.
type pendingSend struct {
	from   *Rank
	buf    *gpu.Buffer
	mode   topology.TransferMode
	sentAt sim.Time
	req    *Request
	reqGen uint64
	next   *pendingSend
}

// Request tracks a non-blocking operation. Done fires when the
// operation completes (buffer reusable for sends, data delivered for
// receives).
//
// Requests are pooled per rank with a release-on-Wait lifecycle
// mirroring MPI_Wait semantics: when Wait returns, the handle is dead
// and its record returns to the owner's free list. The completion is
// embedded by value — recycling the request recycles the completion,
// and the generation bump makes any stale reference (an eager send's
// queued delivery, a scheduled FireAt) dissolve instead of completing
// the record's next life.
type Request struct {
	// Done fires when the operation completes; it always points at the
	// embedded completion.
	Done *sim.Completion
	done sim.Completion
	buf  *gpu.Buffer
	// deferred, when non-nil, is executed inside Wait — used for
	// CPU-progressed operations like Ireduce.
	deferred func()
	// summed, when non-nil, records the delivered payload's checksum
	// for the integrity plane (see RecvSummed).
	summed *Summed
	next   *Request // match-queue link (posted receives)
	pooled bool
}

// reqQueue and psQueue are intrusive FIFO lists: match queues chain
// pooled records through their next pointers, so posting and matching
// never allocate.
type reqQueue struct{ head, tail *Request }

type psQueue struct{ head, tail *pendingSend }

// getRequest returns a fresh un-fired request from the rank's free
// list; the cold miss path lives in newRequest.
//
//scaffe:hotpath
func (r *Rank) getRequest(buf *gpu.Buffer) *Request {
	n := len(r.reqPool)
	if n == 0 {
		return r.newRequest(buf)
	}
	req := r.reqPool[n-1]
	r.reqPool[n-1] = nil
	r.reqPool = r.reqPool[:n-1]
	req.done.Init(r.W.K)
	req.buf = buf
	req.pooled = false
	return req
}

// newRequest is getRequest's pool-miss path.
//
//scaffe:coldpath pool-miss construction; steady state hits the free list
func (r *Rank) newRequest(buf *gpu.Buffer) *Request {
	req := &Request{buf: buf}
	req.Done = &req.done
	req.done.Init(r.W.K)
	return req
}

// putRequest recycles a settled request. Double releases are absorbed
// (a request waited twice settles once).
func (r *Rank) putRequest(req *Request) {
	if req.pooled {
		return
	}
	req.pooled = true
	req.buf = nil
	req.deferred = nil
	req.summed = nil
	req.next = nil
	//scaffe:nolint hotpath pool release; append reuses capacity freed by the matching get
	r.reqPool = append(r.reqPool, req)
}

// getPendingSend draws an unexpected-message record from the rank's
// free list; the cold miss path allocates.
//
//scaffe:hotpath
func (r *Rank) getPendingSend() *pendingSend {
	n := len(r.psPool)
	if n == 0 {
		return newPendingSend()
	}
	ps := r.psPool[n-1]
	r.psPool[n-1] = nil
	r.psPool = r.psPool[:n-1]
	return ps
}

// newPendingSend is getPendingSend's pool-miss path.
//
//scaffe:coldpath pool-miss construction; steady state hits the free list
func newPendingSend() *pendingSend { return &pendingSend{} }

func (r *Rank) putPendingSend(ps *pendingSend) {
	*ps = pendingSend{}
	//scaffe:nolint hotpath pool release; append reuses capacity freed by the matching get
	r.psPool = append(r.psPool, ps)
}

// popPosted removes the oldest posted receive for key, or nil.
//
//scaffe:hotpath
func (r *Rank) popPosted(key matchKey) *Request {
	q := r.posted[key]
	req := q.head
	if req == nil {
		return nil
	}
	q.head = req.next
	if q.head == nil {
		q.tail = nil
	}
	r.posted[key] = q
	req.next = nil
	return req
}

// pushPosted appends a posted receive for key.
//
//scaffe:hotpath
func (r *Rank) pushPosted(key matchKey, req *Request) {
	q := r.posted[key]
	req.next = nil
	if q.tail == nil {
		q.head, q.tail = req, req
	} else {
		q.tail.next = req
		q.tail = req
	}
	r.posted[key] = q
}

// popUnexpected removes the oldest unexpected send for key, or nil.
//
//scaffe:hotpath
func (r *Rank) popUnexpected(key matchKey) *pendingSend {
	q := r.unexpected[key]
	ps := q.head
	if ps == nil {
		return nil
	}
	q.head = ps.next
	if q.head == nil {
		q.tail = nil
	}
	r.unexpected[key] = q
	ps.next = nil
	return ps
}

// pushUnexpected appends an unexpected send for key.
//
//scaffe:hotpath
func (r *Rank) pushUnexpected(key matchKey, ps *pendingSend) {
	q := r.unexpected[key]
	ps.next = nil
	if q.tail == nil {
		q.head, q.tail = ps, ps
	} else {
		q.tail.next = ps
		q.tail = ps
	}
	r.unexpected[key] = q
}

// Wait blocks the rank until the request completes, then releases the
// request record back to the rank's free list: as in MPI_Wait, the
// handle must not be used after Wait returns (Test/CompletedAt remain
// readable only until the rank issues its next operation). For
// deferred (CPU-progressed) requests this is where all the work
// happens. With a fault plane armed the wait is deadline-sliced and
// may panic with Revoked{} if a rank failure is detected (see
// fault.go) — an unwound request is abandoned to the collector, never
// recycled.
func (r *Rank) Wait(req *Request) {
	if req.deferred != nil {
		fn := req.deferred
		req.deferred = nil
		fn()
		req.Done.Fire()
		r.putRequest(req)
		return
	}
	if r.W.Fault == nil {
		r.Proc.Wait(req.Done)
	} else {
		r.waitFT(r.Proc, req.Done)
	}
	r.putRequest(req)
}

// WaitAll waits for every request in order.
func (r *Rank) WaitAll(reqs ...*Request) {
	for _, req := range reqs {
		r.Wait(req)
	}
}

// Test reports whether the request has completed without blocking.
// Deferred requests never complete under Test (CPU progression
// requires Wait), which is exactly the paper's complaint about NBC
// reductions.
func (req *Request) Test() bool { return req.deferred == nil && req.Done.Fired() }

// OnComplete registers fn to run (in kernel context) when the request
// completes; if it already completed, fn is scheduled immediately.
// Deferred (CPU-progressed) requests complete only inside Wait, so
// their hooks fire there — the same asymmetry the rest of the runtime
// models. The scheduler uses these hooks for node readiness and for
// recording wire-level spans of offloaded operations. The hook runs at
// the completion instant but possibly after the waiter has released
// the request, so it must not touch the request handle.
func (req *Request) OnComplete(fn func()) { req.Done.OnFire(fn) }

// CompletedAt returns the virtual time at which the request completed;
// only meaningful once Test (or a hook) reports completion.
func (req *Request) CompletedAt() sim.Time { return req.Done.FiredAt() }

// NewDeferredRequest creates a request whose work runs inside Wait.
// Exposed for package coll's CPU-progressed Ireduce.
func (r *Rank) NewDeferredRequest(fn func()) *Request {
	req := r.getRequest(nil)
	req.deferred = fn
	return req
}

// Isend starts a non-blocking send of buf to group rank `to` of comm c
// with the given tag.
//
//scaffe:hotpath
func (r *Rank) Isend(c *Comm, to, tag int, buf *gpu.Buffer, mode topology.TransferMode) *Request {
	// Cross-rank entry: the destination's match queues and the shared
	// links are outside this rank's group, so a batched segment
	// serializes here (no-op in sequential mode). Lane-0 discipline
	// makes r.Proc the executing proc at every MPI entry.
	r.Proc.Exclusive()
	r.ftCheck()
	dst := c.rankAt(to)
	if dst == r {
		panic(fmt.Sprintf("mpi: rank %d sending to itself (comm %d tag %d)", r.ID, c.id, tag))
	}
	req := r.getRequest(buf)
	key := matchKey{comm: c.id, src: r.ID, tag: tag}

	if recvReq := dst.popPosted(key); recvReq != nil {
		r.startTransfer(r.Now(), dst, buf, recvReq, req, req.done.Gen(), mode)
		return req
	}
	ps := dst.getPendingSend()
	ps.from, ps.buf, ps.mode, ps.sentAt = r, buf, mode, r.Now()
	ps.req, ps.reqGen = req, req.done.Gen()
	dst.pushUnexpected(key, ps)
	if buf.Bytes <= EagerLimit {
		// Eager: the payload leaves the sender immediately; the send
		// buffer is reusable right away.
		req.Done.Fire()
	}
	return req
}

// Irecv posts a non-blocking receive into buf from group rank `from`
// of comm c with the given tag.
func (r *Rank) Irecv(c *Comm, from, tag int, buf *gpu.Buffer) *Request {
	return r.irecv(c, from, tag, buf, nil)
}

//scaffe:hotpath
func (r *Rank) irecv(c *Comm, from, tag int, buf *gpu.Buffer, s *Summed) *Request {
	// Cross-rank entry: posting touches this rank's match queues, which
	// the sender's Isend also touches (see Isend).
	r.Proc.Exclusive()
	r.ftCheck()
	src := c.rankAt(from)
	req := r.getRequest(buf)
	req.summed = s
	key := matchKey{comm: c.id, src: src.ID, tag: tag}

	if ps := r.popUnexpected(key); ps != nil {
		// Eager data was already in flight since sentAt; rendezvous
		// starts now that the receiver arrived.
		start := r.Now()
		if ps.buf.Bytes <= EagerLimit {
			start = ps.sentAt
		}
		ps.from.startTransfer(start, r, ps.buf, req, ps.req, ps.reqGen, ps.mode)
		r.putPendingSend(ps)
		return req
	}
	r.pushPosted(key, req)
	return req
}

// delivery is the pooled payload of one in-flight transfer's landing
// event: at the wire end time it copies the payload, settles the
// integrity handle, and fires both sides through their snapshotted
// generations (the send side of an eager transfer may have been
// recycled in the meantime).
type delivery struct {
	sender  *Rank
	recv    *Rank
	src     *gpu.Buffer
	recvReq *Request
	sendReq *Request
	recvGen uint64
	sendGen uint64
	summed  *Summed
	mode    topology.TransferMode
	// epoch stamps the membership epoch of the sending instant; a
	// landing against a later epoch dissolves (see World.bumpEpoch).
	epoch int
	// replay marks a landing already perturbed once (held or stashed):
	// it lands without consulting the wire plane again. ghost marks a
	// duplicate landing, which re-copies under generation guards but
	// never settles the integrity handle.
	replay bool
	ghost  bool
}

// RunEvent implements sim.Runnable.
//
//scaffe:hotpath
func (d *delivery) RunEvent(k *sim.Kernel) {
	if pl := d.sender.W.Fault; pl != nil {
		w := d.sender.W
		if d.epoch != w.epoch {
			pl.NoteStaleDissolved()
			w.putDelivery(d)
			return
		}
		if d.ghost {
			// A duplicate landing: the original has already delivered at
			// this instant, so the waiter's generations are still valid
			// and the re-copy is a harmless overwrite with identical
			// bytes. The integrity handle is NOT re-settled — the payload
			// arrived once as far as checksumming is concerned.
			if d.recvReq.done.Gen() == d.recvGen {
				d.recvReq.buf.CopyFrom(d.src)
			}
			d.recvReq.Done.FireIf(d.recvGen)
			d.sendReq.Done.FireIf(d.sendGen)
			w.putDelivery(d)
			return
		}
		if pl.WireArmed() && !d.replay && !w.perturbDelivery(d, k.Now()) {
			return
		}
	}
	d.recvReq.buf.CopyFrom(d.src)
	if s := d.summed; s != nil {
		s.deliver(d.sender, d.mode)
	}
	d.recvReq.Done.FireIf(d.recvGen)
	d.sendReq.Done.FireIf(d.sendGen)
	d.sender.W.putDelivery(d)
}

// startTransfer books the wire time and schedules delivery: at the end
// of the transfer the payload is copied and both requests complete.
// sendGen is the send completion's generation snapshotted at post
// time; the receive side snapshots here (it cannot be recycled before
// delivery fires it).
//
//scaffe:hotpath
func (r *Rank) startTransfer(at sim.Time, dst *Rank, src *gpu.Buffer, recvReq, sendReq *Request, sendGen uint64, mode topology.TransferMode) {
	if recvReq.buf.Bytes != src.Bytes {
		panic(fmt.Sprintf("mpi: message size mismatch: send %d bytes, recv %d bytes", src.Bytes, recvReq.buf.Bytes))
	}
	_, end := r.W.Cluster.Transfer(at, r.Dev.ID, dst.Dev.ID, src.Bytes, mode)
	if end < r.Now() {
		end = r.Now()
	}
	d := r.W.getDelivery()
	d.sender, d.recv, d.src, d.mode = r, dst, src, mode
	d.recvReq, d.recvGen = recvReq, recvReq.done.Gen()
	d.sendReq, d.sendGen = sendReq, sendGen
	d.summed = recvReq.summed
	d.epoch = r.W.epoch
	r.W.K.AtRun(end, d)
}

// Send is a blocking send (Isend + Wait).
func (r *Rank) Send(c *Comm, to, tag int, buf *gpu.Buffer, mode topology.TransferMode) {
	r.Wait(r.Isend(c, to, tag, buf, mode))
}

// Recv is a blocking receive (Irecv + Wait).
func (r *Rank) Recv(c *Comm, from, tag int, buf *gpu.Buffer) {
	r.Wait(r.Irecv(c, from, tag, buf))
}

// SendHost / RecvHost move host-resident buffers (no GPU endpoints);
// used by the non-CUDA-aware baselines.
func (r *Rank) SendHost(c *Comm, to, tag int, buf *gpu.Buffer) {
	r.Send(c, to, tag, buf, topology.ModeHost)
}

// RecvHost is the receiving half of SendHost.
func (r *Rank) RecvHost(c *Comm, from, tag int, buf *gpu.Buffer) {
	r.Recv(c, from, tag, buf)
}
