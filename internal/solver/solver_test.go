package solver

import (
	"math"
	"testing"

	"scaffe/internal/layers"
	"scaffe/internal/models"
	"scaffe/internal/tensor"
)

func TestLRPolicies(t *testing.T) {
	if (Fixed{Base: 0.1}).LR(1000) != 0.1 {
		t.Error("fixed policy drifted")
	}
	st := Step{Base: 0.1, Gamma: 0.1, StepSize: 100}
	if st.LR(0) != 0.1 || math.Abs(st.LR(100)-0.01) > 1e-12 || math.Abs(st.LR(250)-0.001) > 1e-12 {
		t.Errorf("step policy: %v %v %v", st.LR(0), st.LR(100), st.LR(250))
	}
	inv := Inv{Base: 0.01, Gamma: 1e-4, Power: 0.75}
	if inv.LR(0) != 0.01 || inv.LR(10000) >= inv.LR(0) {
		t.Error("inv policy not decaying")
	}
	poly := Poly{Base: 0.01, Power: 2, MaxIter: 100}
	if poly.LR(0) != 0.01 || poly.LR(100) != 0 || poly.LR(200) != 0 {
		t.Errorf("poly policy endpoint: %v %v", poly.LR(100), poly.LR(200))
	}
}

// oneParamNet builds a trivially small net for update math checks.
func oneParamNet() *layers.Net {
	return models.BuildTinyNet(1, 3)
}

func TestSGDVanillaUpdate(t *testing.T) {
	net := oneParamNet()
	s := New(Fixed{Base: 0.5}, 0, 0)
	p0 := net.PackParams(nil)
	// Set every gradient to 2.
	for _, l := range net.Layers {
		for _, g := range l.Grads() {
			g.Fill(2)
		}
	}
	s.Step(net, 0, 1)
	p1 := net.PackParams(nil)
	for i := range p1 {
		want := p0[i] - 0.5*2
		if math.Abs(float64(p1[i]-want)) > 1e-6 {
			t.Fatalf("param %d: got %v, want %v", i, p1[i], want)
		}
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	net := oneParamNet()
	s := New(Fixed{Base: 1}, 0.9, 0)
	for _, l := range net.Layers {
		for _, g := range l.Grads() {
			g.Fill(1)
		}
	}
	p0 := net.PackParams(nil)
	s.Step(net, 0, 1) // v = -1;    w = p0 - 1
	s.Step(net, 1, 1) // v = -1.9;  w = p0 - 2.9
	p2 := net.PackParams(nil)
	for i := range p2 {
		want := p0[i] - 2.9
		if math.Abs(float64(p2[i]-want)) > 1e-5 {
			t.Fatalf("param %d after 2 momentum steps: got %v, want %v", i, p2[i], want)
		}
	}
}

func TestSGDWeightDecayPullsTowardZero(t *testing.T) {
	net := oneParamNet()
	s := New(Fixed{Base: 0.1}, 0, 0.5)
	net.UnpackParams(onesLike(net))
	for _, l := range net.Layers {
		for _, g := range l.Grads() {
			g.Zero()
		}
	}
	s.Step(net, 0, 1)
	p := net.PackParams(nil)
	for i := range p {
		// w = 1 - 0.1*0.5*1 = 0.95
		if math.Abs(float64(p[i])-0.95) > 1e-6 {
			t.Fatalf("decay step: got %v, want 0.95", p[i])
		}
	}
}

func onesLike(n *layers.Net) []float32 {
	v := make([]float32, n.TotalParams())
	for i := range v {
		v[i] = 1
	}
	return v
}

func TestSGDScaleNormalizesSummedGradients(t *testing.T) {
	// Two nets: one stepped with grad g and scale 1, one with grad 4g
	// and scale 1/4 — identical results (the multi-solver averaging).
	a, b := oneParamNet(), oneParamNet()
	sa := New(Fixed{Base: 0.2}, 0.9, 0.01)
	sb := New(Fixed{Base: 0.2}, 0.9, 0.01)
	for _, l := range a.Layers {
		for _, g := range l.Grads() {
			g.Fill(3)
		}
	}
	for _, l := range b.Layers {
		for _, g := range l.Grads() {
			g.Fill(12)
		}
	}
	sa.Step(a, 0, 1)
	sb.Step(b, 0, 0.25)
	pa, pb := a.PackParams(nil), b.PackParams(nil)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("scaled update diverged at %d: %v vs %v", i, pa[i], pb[i])
		}
	}
}

func TestTrainingConvergesOnSyntheticData(t *testing.T) {
	// End-to-end: LeNet-like training on learnable synthetic data must
	// cut the loss significantly.
	net := models.BuildTinyNet(16, 5)
	s := New(Fixed{Base: 0.05}, 0.9, 0)
	ds := syntheticBatch(16, net.In)
	var first, last float32
	for it := 0; it < 40; it++ {
		net.ZeroGrads()
		loss := net.Forward(ds.x, ds.labels)
		if it == 0 {
			first = loss
		}
		last = loss
		net.Backward()
		s.Step(net, it, 1)
	}
	if last > first*0.7 {
		t.Errorf("loss barely moved: %v -> %v", first, last)
	}
}

type fixedBatch struct {
	x      *tensor.Tensor
	labels []int
}

func syntheticBatch(n int, in layers.Shape) fixedBatch {
	x := tensor.New(n, in.C, in.H, in.W)
	labels := make([]int, n)
	for b := 0; b < n; b++ {
		labels[b] = b % 4
		for j := 0; j < in.Elems(); j++ {
			// Class-dependent deterministic pattern.
			x.Data[b*in.Elems()+j] = float32((j*(labels[b]+1))%7) / 7
		}
	}
	return fixedBatch{x: x, labels: labels}
}

func TestUpdateFLOPs(t *testing.T) {
	if UpdateFLOPs(10) != 40 {
		t.Errorf("UpdateFLOPs(10) = %v", UpdateFLOPs(10))
	}
}
