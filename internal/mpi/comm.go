package mpi

import (
	"fmt"

	"scaffe/internal/gpu"
	"scaffe/internal/topology"
)

// tagBarrier is the base of the reserved tag range used by Barrier;
// user code should keep tags below 1<<20.
const tagBarrier = 1 << 20

// Comm is a communicator: an ordered group of world ranks with a
// private tag space. Group ranks (0..Size-1) index into the group.
type Comm struct {
	id    int
	w     *World
	group []int       // group rank -> world rank
	index map[int]int // world rank -> group rank
	// bcastSeq numbers offloaded collective operations per group rank
	// so that matching calls across ranks join the same operation.
	bcastSeq []int
}

// WorldComm returns a communicator spanning every rank of the world.
func (w *World) WorldComm() *Comm {
	g := make([]int, w.Size())
	for i := range g {
		g[i] = i
	}
	return w.newComm(g)
}

func (w *World) newComm(group []int) *Comm {
	c := &Comm{
		id:       w.nextCommID,
		w:        w,
		group:    group,
		index:    make(map[int]int, len(group)),
		bcastSeq: make([]int, len(group)),
	}
	w.nextCommID++
	for i, wr := range group {
		c.index[wr] = i
	}
	return c
}

// Size returns the number of ranks in the group.
func (c *Comm) Size() int { return len(c.group) }

// WorldRank converts a group rank to a world rank.
func (c *Comm) WorldRank(groupRank int) int { return c.group[groupRank] }

// GroupRank converts a world rank to this comm's group rank, or -1 if
// the rank is not a member.
func (c *Comm) GroupRank(worldRank int) int {
	if i, ok := c.index[worldRank]; ok {
		return i
	}
	return -1
}

// Rank returns r's group rank in c; r must be a member.
func (c *Comm) Rank(r *Rank) int {
	i := c.GroupRank(r.ID)
	if i < 0 {
		panic(fmt.Sprintf("mpi: world rank %d is not a member of comm %d", r.ID, c.id))
	}
	return i
}

// Contains reports whether r is a member of the communicator.
func (c *Comm) Contains(r *Rank) bool { return c.GroupRank(r.ID) >= 0 }

func (c *Comm) rankAt(groupRank int) *Rank {
	return c.w.Ranks[c.group[groupRank]]
}

// Device returns the device a group rank's process is bound to.
func (c *Comm) Device(groupRank int) topology.DeviceID {
	return c.rankAt(groupRank).Dev.ID
}

// Sub creates a sub-communicator from the given group ranks of c (in
// the given order). Used to build the multi-level communicators of the
// hierarchical reduce.
func (c *Comm) Sub(groupRanks []int) *Comm {
	g := make([]int, len(groupRanks))
	for i, gr := range groupRanks {
		g[i] = c.group[gr]
	}
	return c.w.newComm(g)
}

// SplitChains partitions c into consecutive chains of size chainSize
// (the last may be shorter) and returns the lower-level communicators
// plus the upper-level communicator of chain leaders (group rank 0 of
// each chain). Block placement makes consecutive ranks node-local, so
// chains align with locality — the property Section 5 relies on.
func (c *Comm) SplitChains(chainSize int) (chains []*Comm, leaders *Comm) {
	if chainSize < 1 {
		panic("mpi: chain size must be >= 1")
	}
	var leaderRanks []int
	for lo := 0; lo < c.Size(); lo += chainSize {
		hi := lo + chainSize
		if hi > c.Size() {
			hi = c.Size()
		}
		g := make([]int, hi-lo)
		for i := range g {
			g[i] = lo + i
		}
		chains = append(chains, c.Sub(g))
		leaderRanks = append(leaderRanks, lo)
	}
	return chains, c.Sub(leaderRanks)
}

// barrierBuf is the shared zero-byte payload of every barrier
// exchange: the messages carry no data, so all ranks (and both ends of
// each exchange) can use one immutable buffer instead of allocating
// two per round.
var barrierBuf = gpu.NewBuffer(0)

// Barrier synchronizes all ranks of c with a dissemination barrier
// (ceil(log2 P) rounds of zero-byte exchanges). Every member must call
// it.
func (c *Comm) Barrier(r *Rank) {
	me := c.Rank(r)
	size := c.Size()
	if size == 1 {
		return
	}
	round := 0
	for dist := 1; dist < size; dist <<= 1 {
		to := (me + dist) % size
		from := (me - dist + size) % size
		tag := tagBarrier + round
		rreq := r.Irecv(c, from, tag, barrierBuf)
		sreq := r.Isend(c, to, tag, barrierBuf, topology.ModeHost)
		r.Wait(rreq)
		r.Wait(sreq)
		round++
	}
}
