package experiments

import (
	"fmt"

	"scaffe/internal/coll"
	"scaffe/internal/core"
	"scaffe/internal/models"
	"scaffe/internal/sim"
)

// scaffeConfig returns the full co-design configuration (SC-OBR + HR)
// on Cluster-A geometry.
func scaffeConfig(spec *models.Spec, gpus, batch, iters int) core.Config {
	return core.Config{
		Spec:        spec,
		GPUs:        gpus,
		Nodes:       12,
		GPUsPerNode: 16,
		GlobalBatch: batch,
		Iterations:  iters,
		Design:      core.SCOBR,
		Reduce:      coll.Tuned,
		Source:      core.ImageDataSource,
		Seed:        1,
	}
}

// Figure8 regenerates the GoogLeNet strong-scaling comparison: Caffe
// (single node, LMDB, up to 16 GPUs), S-Caffe-L (distributed, LMDB),
// and S-Caffe (distributed, ImageDataLayer on the PFS). The paper
// varies batch size with scale (parenthesized in its figure); we use a
// fixed per-GPU batch of 8, matching its 160-GPU operating point
// (batch 1280).
func Figure8(o Options) (*Table, error) {
	spec := models.GoogLeNet()
	iters := o.iters(20)
	gpus := o.cap([]int{16, 32, 64, 128, 160})
	t := &Table{
		ID:      "figure8",
		Title:   "GoogLeNet (ImageNet) training time and speedup on Cluster-A",
		Columns: []string{"GPUs", "Batch", "Caffe time/iter", "S-Caffe-L time/iter", "S-Caffe time/iter", "S-Caffe SPS", "Speedup vs 32"},
	}
	var sps32, sps160 float64
	for _, g := range gpus {
		batch := 8 * g
		caffe := "—"
		if g <= 16 {
			cfg := scaffeConfig(spec, g, batch, iters)
			cfg.Design = core.CaffeMT
			cfg.Reduce = coll.Binomial
			cfg.Source = core.LMDBSource
			cfg.Nodes, cfg.GPUsPerNode = 1, 16
			if res, err := core.Run(cfg); err == nil {
				caffe = res.TimePerIter().String()
			} else {
				caffe = "OOM"
			}
		}
		lcfg := scaffeConfig(spec, g, batch, iters)
		lcfg.Source = core.LMDBSource
		scl := "—"
		if res, err := core.Run(lcfg); err == nil {
			scl = res.TimePerIter().String()
		} else {
			scl = "OOM"
		}
		res, err := core.Run(scaffeConfig(spec, g, batch, iters))
		if err != nil {
			return nil, fmt.Errorf("figure8 @%d GPUs: %w", g, err)
		}
		if g == 32 {
			sps32 = res.SamplesPerSec
		}
		if g == 160 {
			sps160 = res.SamplesPerSec
		}
		speedup := "—"
		if sps32 > 0 {
			speedup = fmt.Sprintf("%.2fx", res.SamplesPerSec/sps32)
		}
		t.AddRow(fmt.Sprint(g), fmt.Sprint(batch), caffe, scl,
			res.TimePerIter().String(), fmt.Sprintf("%.0f", res.SamplesPerSec), speedup)
	}
	if sps32 > 0 && sps160 > 0 {
		t.Note("Paper: 2.5x speedup at 160 GPUs over 32 GPUs; measured %.2fx.", sps160/sps32)
	}
	t.Note("Paper: LMDB degrades past 64 parallel readers (S-Caffe-L column); ImageDataLayer on Lustre keeps scaling (S-Caffe column). Caffe is single-node only.")
	return t, nil
}

// Figure9 regenerates the CIFAR10 quick-solver scaling study: batch
// 8192 split over 1..64 GPUs (paper: 1000 iterations, ~32x speedup at
// 64 GPUs; S-Caffe matches Caffe within a node since the model is
// compute-bound).
func Figure9(o Options) (*Table, error) {
	spec, err := models.ByName("cifar10-quick")
	if err != nil {
		return nil, err
	}
	iters := o.iters(50)
	gpus := o.cap([]int{1, 2, 4, 8, 16, 32, 64})
	t := &Table{
		ID:      "figure9",
		Title:   "CIFAR10 quick solver, batch 8192, Cluster-A",
		Columns: []string{"GPUs", "Caffe time/iter", "S-Caffe time/iter", "Speedup vs 1 GPU"},
	}
	var base sim.Duration
	var last float64
	for _, g := range gpus {
		caffe := "—"
		if g <= 16 {
			cfg := scaffeConfig(spec, g, 8192, iters)
			cfg.Design = core.CaffeMT
			cfg.Reduce = coll.Binomial
			cfg.Source = core.LMDBSource
			cfg.Nodes, cfg.GPUsPerNode = 1, 16
			if res, err := core.Run(cfg); err == nil {
				caffe = res.TimePerIter().String()
			}
		}
		cfg := scaffeConfig(spec, g, 8192, iters)
		cfg.Source = core.LMDBSource // CIFAR10 fits LMDB comfortably at <=64 readers
		res, err := core.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("figure9 @%d GPUs: %w", g, err)
		}
		if g == 1 {
			base = res.TimePerIter()
		}
		sp := float64(base) / float64(res.TimePerIter())
		last = sp
		t.AddRow(fmt.Sprint(g), caffe, res.TimePerIter().String(), fmt.Sprintf("%.1fx", sp))
	}
	t.Note("Paper: ~32x speedup over 1 GPU at 64 GPUs; measured %.1fx. S-Caffe and Caffe stay close up to 16 GPUs (compute-bound model).", last)
	return t, nil
}

// Figure10 regenerates the AlexNet samples-per-second comparison on
// Cluster-B: S-Caffe vs the CNTK-like host-staged MPI framework vs the
// Inspur-style parameter server (which only runs between 2 and 16
// GPUs; the paper could only collect its 2- and 4-GPU points).
func Figure10(o Options) (*Table, error) {
	spec := models.AlexNet()
	iters := o.iters(10)
	gpus := o.cap([]int{1, 2, 4, 8, 16})
	t := &Table{
		ID:      "figure10",
		Title:   "AlexNet samples/sec on Cluster-B (higher is better)",
		Columns: []string{"GPUs", "S-Caffe SPS", "CNTK SPS", "Inspur-Caffe SPS"},
	}
	var sc16, cntk16 float64
	for _, g := range gpus {
		batch := 64 * g
		mk := func(d core.Design, red coll.Algorithm) core.Config {
			return core.Config{
				Spec: spec, GPUs: g, Nodes: 20, GPUsPerNode: 2,
				GlobalBatch: batch, Iterations: iters,
				Design: d, Reduce: red, Source: core.LMDBSource, Seed: 1,
			}
		}
		res, err := core.Run(mk(core.SCOBR, coll.Tuned))
		if err != nil {
			return nil, fmt.Errorf("figure10 s-caffe @%d: %w", g, err)
		}
		sc := res.SamplesPerSec
		cntk := "—"
		if g > 1 {
			if r2, err := core.Run(mk(core.CNTKLike, coll.Binomial)); err == nil {
				cntk = fmt.Sprintf("%.0f", r2.SamplesPerSec)
				if g == 16 {
					cntk16 = r2.SamplesPerSec
				}
			}
		} else {
			cntk = fmt.Sprintf("%.0f", sc) // single GPU: no communication
		}
		ps := "—"
		if g == 2 || g == 4 {
			cfg := mk(core.ParamServer, coll.Binomial)
			cfg.GPUs = g + 1 // one extra rank serves
			cfg.GlobalBatch = batch
			if r3, err := core.Run(cfg); err == nil {
				ps = fmt.Sprintf("%.0f", r3.SamplesPerSec)
			}
		}
		if g == 16 {
			sc16 = sc
		}
		t.AddRow(fmt.Sprint(g), fmt.Sprintf("%.0f", sc), cntk, ps)
	}
	if cntk16 > 0 {
		t.Note("Paper: S-Caffe reaches ~1395 SPS at 16 GPUs, comparable to CNTK; measured ratio S-Caffe/CNTK = %.2f.", sc16/cntk16)
	}
	t.Note("Inspur-Caffe rows appear only at 2 and 4 GPUs: the parameter-server design needs >=2 GPUs and hangs beyond 16 (Section 6.4).")
	return t, nil
}
