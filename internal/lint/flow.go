package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The flow engine is a small AST-level dataflow used by the mpi and
// trace passes: certain calls *create* a tracked value (a non-blocking
// request, an open span) that must be *used* again before the function
// can return. Any later mention of the variable counts as reaching its
// Wait/End or escaping (returned, stored, appended, passed on) — the
// analysis is deliberately optimistic so real code patterns like
// conditional waits never false-positive. What it does catch, on every
// lexical path:
//
//   - a creator call whose result is discarded outright,
//   - a tracked variable never mentioned again before a return,
//   - a tracked variable that falls out of scope untouched.

// flowSpec configures one instance of the engine.
type flowSpec struct {
	// creator names the tracked-value constructor a call resolves to,
	// or "" if the call is not a creator.
	creator func(pkg *Pkg, call *ast.CallExpr) string
	// discardMsg renders the "result thrown away" diagnostic.
	discardMsg func(creator string) string
	// leakMsg renders the "never reaches its consumer" diagnostic.
	leakMsg func(creator string) string
}

// flowVar is one live tracked value.
type flowVar struct {
	creator string
	pos     token.Pos // creation site, for reporting
	depth   int       // block depth of the variable's declaration
}

type flowEngine struct {
	pkg    *Pkg
	spec   flowSpec
	report func(token.Pos, string)
	live   map[types.Object]*flowVar
	depths map[types.Object]int // declaration depth of seen variables
}

// runFlow analyzes every function body of the package under spec.
func runFlow(pkg *Pkg, spec flowSpec, report func(token.Pos, string)) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body == nil {
				return true
			}
			e := &flowEngine{
				pkg: pkg, spec: spec, report: report,
				live:   make(map[types.Object]*flowVar),
				depths: make(map[types.Object]int),
			}
			e.walkBlock(body.List, 0)
			e.reportScope(0) // function end = last return path
			return true      // recurse: nested closures analyzed separately
		})
	}
}

// reportScope flags and drops every live variable declared at or below
// the given depth (its scope is ending).
func (e *flowEngine) reportScope(depth int) {
	for obj, v := range e.live {
		if v.depth >= depth {
			e.report(v.pos, e.spec.leakMsg(v.creator))
			delete(e.live, obj)
		}
	}
}

// reportReturn flags every live variable: a return path is ending.
func (e *flowEngine) reportReturn() {
	for obj, v := range e.live {
		e.report(v.pos, e.spec.leakMsg(v.creator))
		delete(e.live, obj)
	}
}

// resolveUses deletes from the live set every tracked variable
// mentioned anywhere inside n — the optimistic "any use counts" rule.
func (e *flowEngine) resolveUses(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok {
			if obj := e.pkg.Info.Uses[id]; obj != nil {
				delete(e.live, obj)
			}
		}
		return true
	})
}

// creatorOf unwraps parens and reports whether expr is a bare creator
// call.
func (e *flowEngine) creatorOf(expr ast.Expr) (*ast.CallExpr, string) {
	expr = ast.Unparen(expr)
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	name := e.spec.creator(e.pkg, call)
	if name == "" {
		return nil, ""
	}
	return call, name
}

// walkBlock interprets a statement list at the given block depth.
func (e *flowEngine) walkBlock(stmts []ast.Stmt, depth int) {
	for _, s := range stmts {
		e.walkStmt(s, depth)
	}
	e.reportScope(depth)
}

// branch runs a sub-statement on the shared state at depth+1. The
// engine is optimistic: uses inside any branch resolve the variable
// for all paths, while returns inside the branch report what was live
// at that point.
func (e *flowEngine) branch(s ast.Stmt, depth int) {
	if s == nil {
		return
	}
	if b, ok := s.(*ast.BlockStmt); ok {
		e.walkBlock(b.List, depth+1)
		return
	}
	e.walkStmt(s, depth+1)
}

func (e *flowEngine) walkStmt(s ast.Stmt, depth int) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if call, name := e.creatorOf(st.X); call != nil {
			e.report(call.Pos(), e.spec.discardMsg(name))
			// Arguments may still use tracked vars (r.Wait(req)).
			for _, a := range call.Args {
				e.resolveUses(a)
			}
			return
		}
		e.resolveUses(st.X)

	case *ast.AssignStmt:
		// Resolve uses on the right-hand side (and in index/selector
		// expressions on the left) before tracking new creations.
		for _, rhs := range st.Rhs {
			if call, _ := e.creatorOf(rhs); call != nil {
				for _, a := range call.Args {
					e.resolveUses(a)
				}
				continue
			}
			e.resolveUses(rhs)
		}
		for _, lhs := range st.Lhs {
			if _, ok := lhs.(*ast.Ident); !ok {
				e.resolveUses(lhs) // x.field = ..., m[k] = ...
			}
		}
		if len(st.Lhs) == 1 && len(st.Rhs) == 1 {
			if call, name := e.creatorOf(st.Rhs[0]); call != nil {
				e.trackAssign(st.Lhs[0], call, name, st.Tok, depth)
			}
		}
		if st.Tok == token.DEFINE {
			for _, lhs := range st.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
					if obj := e.pkg.Info.Defs[id]; obj != nil {
						if _, seen := e.depths[obj]; !seen {
							e.depths[obj] = depth
						}
					}
				}
			}
		}

	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					e.resolveUses(v)
				}
				for i, id := range vs.Names {
					if obj := e.pkg.Info.Defs[id]; obj != nil {
						e.depths[obj] = depth
					}
					if i < len(vs.Values) {
						if call, name := e.creatorOf(vs.Values[i]); call != nil {
							e.trackIdent(id, call, name, depth)
						}
					}
				}
			}
		}

	case *ast.ReturnStmt:
		for _, r := range st.Results {
			e.resolveUses(r)
		}
		e.reportReturn()

	case *ast.IfStmt:
		e.walkStmt2(st.Init, depth)
		e.resolveUses(st.Cond)
		e.branch(st.Body, depth)
		e.branch(st.Else, depth)

	case *ast.ForStmt:
		e.walkStmt2(st.Init, depth)
		e.resolveUses(st.Cond)
		e.branch(st.Body, depth)
		e.walkStmt2(st.Post, depth)

	case *ast.RangeStmt:
		e.resolveUses(st.X)
		e.branch(st.Body, depth)

	case *ast.SwitchStmt:
		e.walkStmt2(st.Init, depth)
		e.resolveUses(st.Tag)
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, x := range cc.List {
					e.resolveUses(x)
				}
				e.walkBlock(cc.Body, depth+1)
			}
		}

	case *ast.TypeSwitchStmt:
		e.walkStmt2(st.Init, depth)
		e.walkStmt2(st.Assign, depth)
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				e.walkBlock(cc.Body, depth+1)
			}
		}

	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				e.walkStmt2(cc.Comm, depth+1)
				e.walkBlock(cc.Body, depth+1)
			}
		}

	case *ast.BlockStmt:
		e.walkBlock(st.List, depth+1)

	case *ast.LabeledStmt:
		e.walkStmt(st.Stmt, depth)

	case *ast.DeferStmt:
		e.resolveUses(st.Call)

	case *ast.GoStmt:
		e.resolveUses(st.Call)

	case *ast.SendStmt:
		e.resolveUses(st.Chan)
		e.resolveUses(st.Value)

	case *ast.IncDecStmt:
		e.resolveUses(st.X)

	case nil, *ast.BranchStmt, *ast.EmptyStmt:
		// Conservatively nothing: break/continue/goto keep state.

	default:
		e.resolveUses(s)
	}
}

// walkStmt2 walks an optional sub-statement at the same depth.
func (e *flowEngine) walkStmt2(s ast.Stmt, depth int) {
	if s != nil {
		e.walkStmt(s, depth)
	}
}

// trackAssign begins tracking the LHS of `lhs = creatorCall`.
func (e *flowEngine) trackAssign(lhs ast.Expr, call *ast.CallExpr, name string, tok token.Token, depth int) {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return // stored into a field/index: escapes
	}
	if id.Name == "_" {
		e.report(call.Pos(), e.spec.discardMsg(name))
		return
	}
	if tok == token.DEFINE {
		e.trackIdent(id, call, name, depth)
		return
	}
	obj := e.pkg.Info.Uses[id]
	if obj == nil {
		return
	}
	declDepth, seen := e.depths[obj]
	if !seen {
		// Declared outside the walked body (package var, named result,
		// closure capture): its lifetime exceeds the analysis, skip.
		return
	}
	e.beginTracking(obj, call, name, declDepth)
}

// trackIdent begins tracking a variable introduced by := or var.
func (e *flowEngine) trackIdent(id *ast.Ident, call *ast.CallExpr, name string, depth int) {
	if id.Name == "_" {
		e.report(call.Pos(), e.spec.discardMsg(name))
		return
	}
	obj := e.pkg.Info.Defs[id]
	if obj == nil {
		return
	}
	e.depths[obj] = depth
	e.beginTracking(obj, call, name, depth)
}

// beginTracking records a new live value; overwriting a still-live one
// leaks the previous value.
func (e *flowEngine) beginTracking(obj types.Object, call *ast.CallExpr, name string, declDepth int) {
	if prev, ok := e.live[obj]; ok {
		e.report(prev.pos, e.spec.leakMsg(prev.creator))
	}
	e.live[obj] = &flowVar{creator: name, pos: call.Pos(), depth: declDepth}
}

// --- shared type-resolution helpers ---------------------------------------

// calleeFunc resolves a call to the *types.Func it invokes (method or
// package function) or nil.
func calleeFunc(pkg *Pkg, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// funcFrom reports whether fn is declared in the package with the
// given import path and has one of the given names.
func funcFrom(fn *types.Func, pkgPath string, names ...string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}
