package data

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

func TestIDXRoundTrip(t *testing.T) {
	src := SyntheticMNIST(32, 4)
	dir := t.TempDir()
	imgs := filepath.Join(dir, "images-idx3-ubyte")
	lbls := filepath.Join(dir, "labels-idx1-ubyte")
	if err := WriteIDX(imgs, lbls, src, 32); err != nil {
		t.Fatal(err)
	}
	ds, err := LoadIDX(imgs, lbls)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 32 || ds.Shape() != src.Shape() {
		t.Fatalf("geometry: len=%d shape=%v", ds.Len(), ds.Shape())
	}
	for _, i := range []int{0, 15, 31} {
		want := src.At(i)
		got := ds.At(i)
		if got.Label != want.Label {
			t.Fatalf("sample %d label %d != %d", i, got.Label, want.Label)
		}
		// 8-bit quantization: within 1/255 after clamping to [0,1].
		for j := range want.Image {
			w := want.Image[j]
			if w < 0 {
				w = 0
			}
			if w > 1 {
				w = 1
			}
			diff := float64(got.Image[j] - w)
			if diff < 0 {
				diff = -diff
			}
			if diff > 1.0/255+1e-6 {
				t.Fatalf("sample %d pixel %d differs by %v", i, j, diff)
			}
		}
	}
}

func TestIDXRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	good := SyntheticMNIST(4, 1)
	imgs := filepath.Join(dir, "i")
	lbls := filepath.Join(dir, "l")
	if err := WriteIDX(imgs, lbls, good, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIDX(filepath.Join(dir, "missing"), lbls); err == nil {
		t.Error("missing images accepted")
	}
	if _, err := LoadIDX(imgs, filepath.Join(dir, "missing")); err == nil {
		t.Error("missing labels accepted")
	}
	// Bad magic.
	raw, _ := os.ReadFile(imgs)
	bad := append([]byte(nil), raw...)
	binary.BigEndian.PutUint32(bad, 0xdeadbeef)
	badPath := filepath.Join(dir, "bad")
	os.WriteFile(badPath, bad, 0o644)
	if _, err := LoadIDX(badPath, lbls); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated payload.
	os.WriteFile(badPath, raw[:len(raw)-5], 0o644)
	if _, err := LoadIDX(badPath, lbls); err == nil {
		t.Error("truncated images accepted")
	}
	// Count mismatch.
	other := filepath.Join(dir, "i2")
	otherL := filepath.Join(dir, "l2")
	if err := WriteIDX(other, otherL, good, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIDX(imgs, otherL); err == nil {
		t.Error("count mismatch accepted")
	}
}

func TestWriteIDXRejectsMultiChannel(t *testing.T) {
	dir := t.TempDir()
	if err := WriteIDX(filepath.Join(dir, "i"), filepath.Join(dir, "l"), SyntheticCIFAR10(4, 1), 4); err == nil {
		t.Error("3-channel export should fail")
	}
}

func TestIDXTrainsLeNet(t *testing.T) {
	// End-to-end: export synthetic MNIST to IDX, load it back, train
	// LeNet on it for a few steps.
	dir := t.TempDir()
	imgs := filepath.Join(dir, "train-images-idx3-ubyte")
	lbls := filepath.Join(dir, "train-labels-idx1-ubyte")
	if err := WriteIDX(imgs, lbls, SyntheticMNIST(256, 7), 256); err != nil {
		t.Fatal(err)
	}
	ds, err := LoadIDX(imgs, lbls)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Classes() < 2 {
		t.Fatalf("classes = %d", ds.Classes())
	}
	img, labels := BatchTensor(ds, 0, 8)
	if len(img) != 8*28*28 || len(labels) != 8 {
		t.Fatal("batch assembly from IDX failed")
	}
}
