package coll

// This file carries the analytic cost model of Section 5, Eq. (1) and
// Eq. (2), used both by the tuned selector's documentation and by the
// cost-model experiment that validates the crossover behaviour the
// paper derives:
//
//	T(Bin) = log2(P) * t(b)                          ... (1)
//	T(CC)  = (n + P - 2) * t(c),  c = b/n            ... (2)
//
// with the paper's observations: for small P and large b,
// T(CC) << T(Bin); for large P and small b, T(CC) >> T(Bin).

import "math"

// CostParams parameterizes t(b), the time to move-and-reduce a buffer
// of b bytes between two processes: t(b) = Alpha + b/Beta (the
// classic alpha-beta model).
type CostParams struct {
	// Alpha is the per-message latency in seconds.
	Alpha float64
	// Beta is the effective bandwidth in bytes/second (transfer and
	// reduction combined).
	Beta float64
}

// T returns t(b) in seconds for a b-byte step.
func (p CostParams) T(bytes float64) float64 {
	return p.Alpha + bytes/p.Beta
}

// BinomialTime evaluates Eq. (1): T(Bin) = ceil(log2 P) · t(b).
func BinomialTime(p CostParams, procs int, bytes float64) float64 {
	if procs <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(procs))) * p.T(bytes)
}

// ChainTime evaluates Eq. (2): T(CC) = (n + P − 2) · t(c), c = b/n.
func ChainTime(p CostParams, procs, chunks int, bytes float64) float64 {
	if procs <= 1 {
		return 0
	}
	if chunks < 1 {
		chunks = 1
	}
	return float64(chunks+procs-2) * p.T(bytes/float64(chunks))
}

// BestChunks returns the chunk count n ≥ 1 minimizing Eq. (2); the
// optimum of the continuous relaxation is n* = sqrt(b/Beta ·
// (P−2)/Alpha)... evaluated discretely over a search range for
// robustness.
func BestChunks(p CostParams, procs int, bytes float64) int {
	best, bestT := 1, ChainTime(p, procs, 1, bytes)
	for n := 2; n <= 1024; n++ {
		if t := ChainTime(p, procs, n, bytes); t < bestT {
			best, bestT = n, t
		}
	}
	return best
}

// HierarchicalTime evaluates the two-level design: lower-level chains
// of size chainSize run concurrently, then the upper level reduces
// among ceil(P/chainSize) leaders with a chain (upperChain=true) or a
// binomial tree.
func HierarchicalTime(p CostParams, procs, chainSize, chunks int, bytes float64, upperChain bool) float64 {
	if chainSize < 1 {
		chainSize = 1
	}
	leaders := (procs + chainSize - 1) / chainSize
	lower := ChainTime(p, minInt(chainSize, procs), chunks, bytes)
	var upper float64
	if upperChain {
		upper = ChainTime(p, leaders, chunks, bytes)
	} else {
		upper = BinomialTime(p, leaders, bytes)
	}
	return lower + upper
}

// CrossoverProcs returns the process count beyond which the binomial
// tree beats the flat chain for good (the chain's (P−2)·t(c) term
// outgrows log2(P)·t(b)) — the boundary that motivates the two-level
// design. It scans downward so isolated small-P ties (a single send is
// trivially optimal at P=2) don't mask the chain-friendly region.
func CrossoverProcs(p CostParams, chunks int, bytes float64, maxProcs int) int {
	for procs := maxProcs; procs >= 2; procs-- {
		if ChainTime(p, procs, chunks, bytes) < BinomialTime(p, procs, bytes) {
			return procs + 1
		}
	}
	return 2
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
