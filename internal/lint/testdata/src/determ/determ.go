// Package determ seeds determinism-pass violations for the golden
// fixture test. Its import path contains lint/testdata, so the pass
// treats it as deterministic scope.
package determ

import (
	"math/rand"
	"sort"
	"time"

	"scaffe/internal/sim"
	"scaffe/internal/trace"
)

func wallClock() sim.Duration {
	start := time.Now()                    // want `time.Now reads the wall clock`
	return sim.Duration(time.Since(start)) // want `time.Since reads the wall clock`
}

func globalRandomness() int {
	return rand.Intn(10) // want `global rand.Intn is unseeded`
}

func seededRandomness() int {
	rng := rand.New(rand.NewSource(42)) // seeded: allowed
	return rng.Intn(10)
}

func mapOrderIntoTrace(rec *trace.Recorder, spans map[string]sim.Time) {
	for phase, start := range spans { // want `map iteration order is randomized but this loop feeds trace.Add`
		rec.Add(0, phase, start, start+1)
	}
}

func sortedOrderIntoTrace(rec *trace.Recorder, spans map[string]sim.Time) {
	phases := make([]string, 0, len(spans))
	for phase := range spans { // collecting keys is order-independent
		phases = append(phases, phase)
	}
	sort.Strings(phases)
	for _, phase := range phases { // slice range: allowed
		rec.Add(0, phase, spans[phase], spans[phase]+1)
	}
}
