package experiments

import (
	"fmt"

	"scaffe/internal/coll"
	"scaffe/internal/core"
	"scaffe/internal/gpu"
	"scaffe/internal/models"
	"scaffe/internal/mpi"
	"scaffe/internal/sim"
	"scaffe/internal/topology"
)

// This file holds the extension experiments beyond the paper's
// figures: the weak-scaling mode its Section 6.2 mentions (-scal
// weak), the three-level reduce of its future-work paragraph, and a
// retrospective comparison against the ring allreduce that later
// frameworks standardized on.

// WeakScaling exercises the paper's `-scal weak` option: the per-GPU
// batch stays constant, so ideal scaling keeps time/iteration flat
// while aggregate throughput grows linearly.
func WeakScaling(o Options) (*Table, error) {
	spec := models.GoogLeNet()
	iters := o.iters(10)
	gpus := o.cap([]int{16, 32, 64, 128, 160})
	t := &Table{
		ID:      "weakscaling",
		Title:   "GoogLeNet weak scaling (batch 16 per GPU), Cluster-A",
		Columns: []string{"GPUs", "time/iter", "SPS", "efficiency vs 16", "HCA util"},
	}
	var base float64
	for _, g := range gpus {
		cfg := scaffeConfig(spec, g, 16, iters)
		cfg.Weak = true
		res, err := core.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("weakscaling @%d: %w", g, err)
		}
		perGPU := res.SamplesPerSec / float64(g)
		if g == gpus[0] {
			base = perGPU
		}
		t.AddRow(fmt.Sprint(g), res.TimePerIter().String(),
			fmt.Sprintf("%.0f", res.SamplesPerSec),
			fmt.Sprintf("%.0f%%", perGPU/base*100),
			fmt.Sprintf("%.0f%%", res.HCAUtilization*100))
	}
	t.Note("Extension (paper Section 6.2 mentions -scal weak but omits the plots): constant per-GPU batch; efficiency is per-GPU throughput relative to the smallest run.")
	return t, nil
}

// ThreeLevelReduce evaluates the paper's future-work design: CCB
// (chain-of-chain + top binomial) against CC and CB across scales.
func ThreeLevelReduce(o Options) (*Table, error) {
	maxRanks := 160
	if o.MaxGPUs > 0 && o.MaxGPUs < maxRanks {
		maxRanks = o.MaxGPUs
	}
	t := &Table{
		ID:      "threelevel",
		Title:   "Future-work three-level reduce: CCB vs CC vs CB (64 MB)",
		Columns: []string{"Ranks", "CC-8", "CB-8", "CCB-8"},
	}
	for _, ranks := range rankSweep([]int{32, 64, 128, 160}, maxRanks) {
		row := []string{fmt.Sprint(ranks)}
		for _, alg := range []coll.Algorithm{coll.ChainChain, coll.ChainBinomial, coll.ChainChainBinomial} {
			lat, err := reduceLatency(ranks, 64<<20, alg, coll.DefaultOptions())
			if err != nil {
				return nil, err
			}
			row = append(row, lat.String())
		}
		t.AddRow(row...)
	}
	t.Note("Extension (paper Section 5, closing paragraph): the third level keeps the top fan-in logarithmic for very large scales.")
	return t, nil
}

// AllreduceRetrospective compares the paper's synchronization step
// (HR reduce to root + broadcast) against the bandwidth-optimal ring
// allreduce that NCCL/Horovod later standardized — the retrospective
// the novelty assessment of this reproduction calls for.
func AllreduceRetrospective(o Options) (*Table, error) {
	maxRanks := 160
	if o.MaxGPUs > 0 && o.MaxGPUs < maxRanks {
		maxRanks = o.MaxGPUs
	}
	t := &Table{
		ID:      "allreduce",
		Title:   "Parameter synchronization: HR reduce+bcast vs ring allreduce (64 MB)",
		Columns: []string{"Ranks", "HR reduce + bcast", "Ring allreduce", "Ring advantage"},
	}
	for _, ranks := range rankSweep([]int{8, 32, 64, 160}, maxRanks) {
		hr, err := syncLatency(ranks, 64<<20, false)
		if err != nil {
			return nil, err
		}
		ring, err := syncLatency(ranks, 64<<20, true)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(ranks), hr.String(), ring.String(),
			fmt.Sprintf("%.2fx", float64(hr)/float64(ring)))
	}
	t.Note("Extension: S-Caffe's reduction-tree + root broadcast moves 2b per round-trip through the root; the ring moves 2b(P−1)/P per rank with no root bottleneck — the design that superseded this paper's approach.")
	return t, nil
}

// MPvsDP completes the Table 1 design space: the MPI-Caffe-style
// model-parallel pipeline against S-Caffe's data-parallel approach on
// the same GPUs — Section 3.1's argument quantified.
func MPvsDP(o Options) (*Table, error) {
	spec := models.AlexNet()
	iters := o.iters(5)
	t := &Table{
		ID:      "mpdp",
		Title:   "Data parallel (S-Caffe) vs model parallel (MPI-Caffe style), AlexNet",
		Columns: []string{"GPUs", "DP SPS", "MP SPS", "DP advantage"},
	}
	for _, g := range o.cap([]int{2, 4, 8, 16}) {
		mk := func(d core.Design) core.Config {
			cfg := scaffeConfig(spec, g, 64*g, iters)
			cfg.Design = d
			cfg.Source = core.MemorySource
			cfg.Nodes, cfg.GPUsPerNode = 1, 16
			return cfg
		}
		dp, err := core.Run(mk(core.SCOBR))
		if err != nil {
			return nil, err
		}
		mp, err := core.Run(mk(core.ModelParallel))
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(g), fmt.Sprintf("%.0f", dp.SamplesPerSec),
			fmt.Sprintf("%.0f", mp.SamplesPerSec),
			fmt.Sprintf("%.1fx", dp.SamplesPerSec/mp.SamplesPerSec))
	}
	t.Note("Extension quantifying Section 3.1: the model-parallel pipeline's sequential stage dependency wastes most of the GPUs, which is why S-Caffe (and this paper's whole design space) is data-parallel.")
	return t, nil
}

// Bucketing sweeps SC-OBR's aggregation granularity from the paper's
// strict per-layer reduces to whole-model fusion — the trade-off that
// later frameworks resolved with fixed-size gradient buckets.
func Bucketing(o Options) (*Table, error) {
	gpus := 160
	if o.MaxGPUs > 0 && o.MaxGPUs < gpus {
		gpus = o.MaxGPUs
	}
	spec := models.GoogLeNet()
	iters := o.iters(5)
	t := &Table{
		ID:      "bucketing",
		Title:   fmt.Sprintf("SC-OBR gradient-fusion granularity, GoogLeNet, %d GPUs", gpus),
		Columns: []string{"Bucket size", "time/iter", "aggregation", "backward"},
	}
	for _, bucket := range []struct {
		label string
		bytes int64
	}{
		{"per-layer (paper)", 0},
		{"1 MB", 1 << 20},
		{"4 MB", 4 << 20},
		{"16 MB", 16 << 20},
		{"whole model", 1 << 40},
	} {
		cfg := scaffeConfig(spec, gpus, 8*gpus, iters)
		cfg.Source = core.MemorySource
		cfg.BucketBytes = bucket.bytes
		res, err := core.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("bucketing %s: %w", bucket.label, err)
		}
		t.AddRow(bucket.label, res.TimePerIter().String(),
			res.Phases.Aggregation.String(), res.Phases.Backward.String())
	}
	t.Note("Extension: per-layer reduces (the paper's design) pay a per-collective latency on every small layer; megabyte buckets amortize it; whole-model fusion forfeits the backward overlap — the U-shape behind later frameworks' fixed bucket sizes.")
	return t, nil
}

// SCOBRF pits the paper's per-layer SC-OBR against the new SC-OBR-F
// design (FireCaffe-style fixed-size gradient buckets) across scales.
// It is the bucketing sweep promoted to a first-class pipeline: the
// scheduler builds the same overlapped-backward graph but reduces a
// fused bucket as soon as its last (in backward order) layer finishes.
func SCOBRF(o Options) (*Table, error) {
	spec := models.GoogLeNet()
	iters := o.iters(5)
	max := 160
	if o.MaxGPUs > 0 && o.MaxGPUs < max {
		max = o.MaxGPUs
	}
	t := &Table{
		ID:      "scobrf",
		Title:   "SC-OBR vs SC-OBR-F (fused buckets), GoogLeNet",
		Columns: []string{"GPUs", "SC-OBR time/iter", "SC-OBR-F time/iter", "SC-OBR agg", "SC-OBR-F agg", "speedup"},
	}
	for _, gpus := range rankSweep([]int{32, 64, 160}, max) {
		run := func(d core.Design) (*core.Result, error) {
			cfg := scaffeConfig(spec, gpus, 8*gpus, iters)
			cfg.Source = core.MemorySource
			cfg.Design = d
			return core.Run(cfg)
		}
		base, err := run(core.SCOBR)
		if err != nil {
			return nil, fmt.Errorf("scobrf base @%d: %w", gpus, err)
		}
		fused, err := run(core.SCOBRF)
		if err != nil {
			return nil, fmt.Errorf("scobrf fused @%d: %w", gpus, err)
		}
		t.AddRow(fmt.Sprint(gpus),
			base.TimePerIter().String(), fused.TimePerIter().String(),
			base.Phases.Aggregation.String(), fused.Phases.Aggregation.String(),
			fmt.Sprintf("%.2fx", float64(base.TotalTime)/float64(fused.TotalTime)))
	}
	t.Note("Extension: SC-OBR-F keeps SC-OBR's helper-thread overlap but fuses GoogLeNet's ~58 small per-layer reduces into few-MB buckets (4 MB default), amortizing the per-collective latency that dominates aggregation at scale.")
	return t, nil
}

// rankSweep caps a sweep at max, appending max itself if the sweep
// would otherwise skip it, without duplicates.
func rankSweep(sweep []int, max int) []int {
	var out []int
	for _, r := range sweep {
		if r <= max {
			out = append(out, r)
		}
	}
	if len(out) == 0 || out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}

// syncLatency measures one full parameter-synchronization step.
func syncLatency(ranks int, bytes int64, ring bool) (sim.Duration, error) {
	k := sim.New()
	nodes := (ranks + 15) / 16
	cluster := topology.New(k, "sync", nodes, 16, topology.DefaultParams())
	world := mpi.NewWorld(cluster, ranks)
	comm := world.WorldComm()
	red := coll.NewReducer(comm, coll.Tuned, coll.DefaultOptions())
	var start, done sim.Time
	_, err := world.Run(func(r *mpi.Rank) {
		buf := gpu.NewBuffer(bytes)
		comm.Barrier(r)
		if r.ID == 0 {
			start = r.Now()
		}
		if ring {
			coll.RingAllreduce(comm, r, buf, benchTag, coll.DefaultOptions())
		} else {
			coll.Allreduce(red, comm, r, buf, benchTag, topology.ModeAuto)
		}
		if r.Now() > done {
			done = r.Now()
		}
		comm.Barrier(r)
	})
	if err != nil {
		return 0, err
	}
	return done - start, nil
}
