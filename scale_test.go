package scaffe

import (
	"runtime"
	"testing"

	"scaffe/internal/sim"
)

// TestScaleOut1024GoogLeNet is the scale-out acceptance drill for the
// pooled event kernel: a 1024-rank GoogLeNet run (64 nodes x 16 GPUs)
// must finish in single-digit wall seconds, stay under a generous
// virtual-time deadline (~3x the expected 338 virtual ms for two
// iterations — a pathological scheduling regression blows well past
// it), and replay bit-identically under a different GOMAXPROCS: the
// cooperative kernel's ordering must not depend on host parallelism.
func TestScaleOut1024GoogLeNet(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-rank scale-out skipped in short mode")
	}
	run := func() *Result {
		t.Helper()
		res, err := Train(Config{
			Spec: MustModel("googlenet"), GPUs: 1024, Nodes: 64, GPUsPerNode: 16,
			GlobalBatch: 4096, Iterations: 2,
			Design: SCOB, Reduce: ReduceHR, Source: InMemory, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	a := run()

	prev := runtime.GOMAXPROCS(1)
	b := run()
	runtime.GOMAXPROCS(prev)

	if a.TotalTime != b.TotalTime {
		t.Fatalf("virtual time differs across GOMAXPROCS: %d vs %d (must be bit-identical)",
			a.TotalTime, b.TotalTime)
	}
	if a.Iterations != b.Iterations {
		t.Fatalf("iterations differ across runs: %d vs %d", a.Iterations, b.Iterations)
	}
	for i := range a.Losses {
		if a.Losses[i] != b.Losses[i] {
			t.Fatalf("loss[%d] differs across runs: %v vs %v", i, a.Losses[i], b.Losses[i])
		}
	}
	if deadline := sim.Time(sim.Second); a.TotalTime > deadline {
		t.Fatalf("1024-rank run took %d virtual ns, over the %d deadline", a.TotalTime, deadline)
	}
}
