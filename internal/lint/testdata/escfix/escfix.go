// Package escfix seeds compiler-verified escapes for the escape gate:
// a self-contained module (its own go.mod) the test copies to a temp
// dir and compiles with -gcflags=-m=1. The escapes sit in an
// unannotated function reachable from the //scaffe:hotpath root, so a
// finding must carry the propagation chain naming the root.
package escfix

// Sink keeps the pointers reachable so the compiler cannot
// stack-allocate them.
var Sink *Item

type Item struct {
	v [4]int
}

// newItem is the allocating leaf: no annotation of its own.
func newItem() *Item {
	it := &Item{}
	Sink = it
	return it
}

// Step is the annotated root the gate must name in the chain.
//
//scaffe:hotpath
func Step() *Item {
	return newItem()
}

// Grow returns a heap slice from a hot function: a second seeded
// escape ("make([]int, n) escapes to heap").
//
//scaffe:hotpath
func Grow(n int) []int {
	return make([]int, n)
}
