package sim

import (
	"testing"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Nanosecond, "500ns"},
		{2 * Microsecond, "2.000us"},
		{3 * Millisecond, "3.000ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Errorf("Seconds() = %v, want 1.5", got)
	}
	if got := (2 * Millisecond).Microseconds(); got != 2000 {
		t.Errorf("Microseconds() = %v, want 2000", got)
	}
	if got := (3 * Second).Milliseconds(); got != 3000 {
		t.Errorf("Milliseconds() = %v, want 3000", got)
	}
}

func TestEventOrdering(t *testing.T) {
	k := New()
	var order []int
	k.At(20, func() { order = append(order, 2) })
	k.At(10, func() { order = append(order, 1) })
	k.At(30, func() { order = append(order, 3) })
	k.At(10, func() { order = append(order, 11) }) // same time: FIFO by seq
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 11, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("event order = %v, want %v", order, want)
		}
	}
	if k.Now() != 30 {
		t.Errorf("final time = %v, want 30", k.Now())
	}
}

func TestPastEventRunsNow(t *testing.T) {
	k := New()
	var ran Time = -1
	k.At(100, func() {
		k.At(50, func() { ran = k.Now() }) // scheduled in the past
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 100 {
		t.Errorf("past event ran at %v, want 100", ran)
	}
}

func TestProcSleep(t *testing.T) {
	k := New()
	var wake Time
	k.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * Millisecond)
		wake = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if wake != 5*Millisecond {
		t.Errorf("woke at %v, want 5ms", wake)
	}
}

func TestProcInterleaving(t *testing.T) {
	k := New()
	var order []string
	k.Spawn("a", func(p *Proc) {
		p.Sleep(10)
		order = append(order, "a10")
		p.Sleep(20)
		order = append(order, "a30")
	})
	k.Spawn("b", func(p *Proc) {
		p.Sleep(20)
		order = append(order, "b20")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a10", "b20", "a30"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestCompletionWaitBeforeFire(t *testing.T) {
	k := New()
	c := k.NewCompletion()
	var at Time = -1
	k.Spawn("waiter", func(p *Proc) {
		p.Wait(c)
		at = p.Now()
	})
	k.At(42, c.Fire)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 42 {
		t.Errorf("waiter resumed at %v, want 42", at)
	}
	if !c.Fired() || c.FiredAt() != 42 {
		t.Errorf("completion fired=%v at=%v, want true/42", c.Fired(), c.FiredAt())
	}
}

func TestCompletionWaitAfterFire(t *testing.T) {
	k := New()
	c := k.NewCompletion()
	var at Time = -1
	k.Spawn("waiter", func(p *Proc) {
		p.Sleep(100)
		p.Wait(c) // already fired: no block
		at = p.Now()
	})
	k.At(10, c.Fire)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 100 {
		t.Errorf("waiter resumed at %v, want 100", at)
	}
}

func TestCompletionDoubleFire(t *testing.T) {
	k := New()
	c := k.NewCompletion()
	fired := 0
	c.OnFire(func() { fired++ })
	k.At(5, c.Fire)
	k.At(9, c.Fire)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Errorf("OnFire ran %d times, want 1", fired)
	}
	if c.FiredAt() != 5 {
		t.Errorf("FiredAt = %v, want 5", c.FiredAt())
	}
}

func TestCompletionOnFireAfterFired(t *testing.T) {
	k := New()
	c := k.NewCompletion()
	k.At(5, c.Fire)
	ran := false
	k.At(10, func() { c.OnFire(func() { ran = true }) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("OnFire registered after firing never ran")
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := New()
	c := k.NewCompletion()
	k.Spawn("stuck", func(p *Proc) { p.Wait(c) })
	err := k.Run()
	if err == nil {
		t.Fatal("expected deadlock error, got nil")
	}
}

func TestDeadline(t *testing.T) {
	k := New()
	k.SetDeadline(100)
	k.Spawn("runaway", func(p *Proc) {
		for i := 0; i < 1000; i++ {
			p.Sleep(10)
		}
	})
	if err := k.Run(); err == nil {
		t.Fatal("expected deadline error, got nil")
	}
}

func TestFlagHandshake(t *testing.T) {
	k := New()
	f := k.NewFlag()
	var got Time
	k.Spawn("main", func(p *Proc) {
		f.WaitSet(p)
		got = p.Now()
	})
	k.Spawn("helper", func(p *Proc) {
		p.Sleep(77)
		f.Set()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 77 {
		t.Errorf("flag observed at %v, want 77", got)
	}
	if !f.IsSet() {
		t.Error("flag should remain set")
	}
	f.Clear()
	if f.IsSet() {
		t.Error("flag should be cleared")
	}
}

func TestFlagAlreadySet(t *testing.T) {
	k := New()
	f := k.NewFlag()
	f.Set()
	done := false
	k.Spawn("w", func(p *Proc) {
		f.WaitSet(p) // returns immediately
		done = true
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Error("WaitSet on a set flag should not block")
	}
}

func TestQueueFIFO(t *testing.T) {
	k := New()
	q := k.NewQueue(0)
	var got []int
	k.Spawn("producer", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(10)
			q.Put(p, i)
		}
	})
	k.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Get(p).(int))
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range []int{1, 2, 3} {
		if got[i] != v {
			t.Fatalf("queue order = %v", got)
		}
	}
}

func TestQueueBounded(t *testing.T) {
	k := New()
	q := k.NewQueue(1)
	var putDone Time
	k.Spawn("producer", func(p *Proc) {
		q.Put(p, 1)
		q.Put(p, 2) // blocks until consumer takes item 1
		putDone = p.Now()
	})
	k.Spawn("consumer", func(p *Proc) {
		p.Sleep(50)
		_ = q.Get(p)
		_ = q.Get(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if putDone != 50 {
		t.Errorf("bounded Put completed at %v, want 50", putDone)
	}
}

func TestQueueTryPut(t *testing.T) {
	k := New()
	q := k.NewQueue(1)
	if !q.TryPut(1) {
		t.Fatal("first TryPut should succeed")
	}
	if q.TryPut(2) {
		t.Fatal("second TryPut should fail on a full queue")
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestResourceFIFO(t *testing.T) {
	k := New()
	r := k.NewResource("link")
	s1, e1 := r.Reserve(0, 10)
	if s1 != 0 || e1 != 10 {
		t.Fatalf("first reservation = [%v,%v], want [0,10]", s1, e1)
	}
	s2, e2 := r.Reserve(5, 10) // queued behind the first
	if s2 != 10 || e2 != 20 {
		t.Fatalf("second reservation = [%v,%v], want [10,20]", s2, e2)
	}
	s3, e3 := r.Reserve(100, 5) // idle gap
	if s3 != 100 || e3 != 105 {
		t.Fatalf("third reservation = [%v,%v], want [100,105]", s3, e3)
	}
	if r.BusyTotal() != 25 {
		t.Errorf("BusyTotal = %v, want 25", r.BusyTotal())
	}
	if r.FreeAt(50) != 105 {
		t.Errorf("FreeAt(50) = %v, want 105", r.FreeAt(50))
	}
	if r.FreeAt(200) != 200 {
		t.Errorf("FreeAt(200) = %v, want 200", r.FreeAt(200))
	}
}

func TestSemaphore(t *testing.T) {
	k := New()
	s := k.NewSemaphore(2)
	active, maxActive := 0, 0
	for i := 0; i < 5; i++ {
		k.Spawn("worker", func(p *Proc) {
			s.Acquire(p)
			active++
			if active > maxActive {
				maxActive = active
			}
			p.Sleep(10)
			active--
			s.Release()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if maxActive != 2 {
		t.Errorf("max concurrent holders = %d, want 2", maxActive)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		k := New()
		var log []Time
		for i := 0; i < 4; i++ {
			d := Duration(i*7 + 3)
			k.Spawn("p", func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Sleep(d)
					log = append(log, p.Now())
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSpawnFromProc(t *testing.T) {
	k := New()
	var childAt Time
	k.Spawn("parent", func(p *Proc) {
		p.Sleep(10)
		k.Spawn("child", func(c *Proc) {
			c.Sleep(5)
			childAt = c.Now()
		})
		p.Sleep(100)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if childAt != 15 {
		t.Errorf("child finished at %v, want 15", childAt)
	}
}

// TestSpawnFromEventCallback is the elastic join path's primitive: a
// timed kernel event (not a proc) spawning a new proc mid-run, as
// ReviveRank does when a scheduled join event fires.
func TestSpawnFromEventCallback(t *testing.T) {
	k := New()
	var childAt, killedAt Time
	k.Spawn("anchor", func(p *Proc) { p.Sleep(40) })
	victim := k.Spawn("victim", func(p *Proc) {
		defer func() { killedAt = p.Now() }()
		p.Sleep(1000)
	})
	k.At(5, victim.Kill)
	k.At(10, func() {
		k.Spawn("respawned", func(p *Proc) {
			p.Sleep(5)
			childAt = p.Now()
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if childAt != 15 {
		t.Errorf("respawned proc finished at %v, want 15", childAt)
	}
	if killedAt != 5 {
		t.Errorf("victim's deferred cleanup ran at %v, want 5 (kill must unwind defers)", killedAt)
	}
}

func TestWaitAll(t *testing.T) {
	k := New()
	c1, c2 := k.NewCompletion(), k.NewCompletion()
	k.At(10, c1.Fire)
	k.At(30, c2.Fire)
	var at Time
	k.Spawn("w", func(p *Proc) {
		p.WaitAll(c1, c2)
		at = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 30 {
		t.Errorf("WaitAll returned at %v, want 30", at)
	}
}

func TestYield(t *testing.T) {
	k := New()
	var order []string
	k.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	k.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestStopHaltsLoop(t *testing.T) {
	k := New()
	count := 0
	k.Spawn("worker", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(10)
			count++
			if count == 5 {
				k.Stop()
			}
		}
	})
	_ = k.Run() // stopping mid-run leaves the proc parked; no panic
	if count < 5 || count > 6 {
		t.Errorf("Stop did not halt promptly: count = %d", count)
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	k := New()
	var at Time
	k.At(100, func() {
		k.After(50, func() { at = k.Now() })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 150 {
		t.Errorf("After fired at %v, want 150", at)
	}
}

func TestProcPanicSurfacesAsError(t *testing.T) {
	k := New()
	k.Spawn("bomb", func(p *Proc) {
		p.Sleep(5)
		panic("boom")
	})
	err := k.Run()
	if err == nil {
		t.Fatal("proc panic should fail Run")
	}
}

func TestNegativeSleepYields(t *testing.T) {
	k := New()
	done := false
	k.Spawn("p", func(p *Proc) {
		p.Sleep(-5) // treated as a yield
		done = true
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !done || k.Now() != 0 {
		t.Errorf("negative sleep: done=%v now=%v", done, k.Now())
	}
}
