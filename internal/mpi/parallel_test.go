package mpi

import (
	"testing"

	"scaffe/internal/gpu"
	"scaffe/internal/sim"
	"scaffe/internal/topology"
)

// haloWorld runs a small MPI program — lockstep compute, neighbour
// halo exchange, then a world broadcast, repeated — with the event
// kernel either sequential (workers <= 1) or armed for parallel
// lookahead with one group per rank, exactly like the engine's group
// policy. It returns each rank's finish time and the payload the last
// rank ended up holding.
func haloWorld(t *testing.T, workers, ranks, iters int) ([]sim.Time, []float32) {
	t.Helper()
	k := sim.New()
	c := topology.New(k, "test", 2, (ranks+1)/2, topology.DefaultParams())
	w := NewWorld(c, ranks)
	if workers > 1 {
		k.SetParallel(workers, c.MinLookahead())
	}
	times := make([]sim.Time, ranks)
	var last []float32
	comm := w.WorldComm()
	w.Spawn(func(r *Rank) {
		buf := gpu.WrapData(make([]float32, 512))
		for i := range buf.Data {
			buf.Data[i] = float32(r.ID)
		}
		recv := gpu.NewDataBuffer(512)
		for iter := 0; iter < iters; iter++ {
			r.Sleep(10 * sim.Microsecond) // rank-local compute, lockstep
			dst := (r.ID + 1) % ranks
			src := (r.ID + ranks - 1) % ranks
			sreq := r.Isend(comm, dst, iter, buf, topology.ModeAuto)
			r.Recv(comm, src, iter, recv)
			r.Wait(sreq)
			r.Bcast(comm, iter%ranks, buf, topology.ModeAuto)
		}
		times[r.ID] = r.Now()
		if r.ID == ranks-1 {
			last = append([]float32(nil), buf.Data...)
		}
	})
	if workers > 1 {
		for _, r := range w.Ranks {
			r.Proc.SetGroup(r.ID)
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return times, last
}

// TestParallelWorldMatchesSequential is the MPI-layer differential
// check for the sharded kernel: per-rank finish times and payloads
// must be identical whether the kernel batches or not. Run by
// scripts/check.sh under -race with batching forced, this also proves
// the Exclusive guards at the MPI entry points serialize every touch
// of cross-rank state.
func TestParallelWorldMatchesSequential(t *testing.T) {
	const ranks, iters = 8, 6
	seqT, seqBuf := haloWorld(t, 1, ranks, iters)
	parT, parBuf := haloWorld(t, ranks, ranks, iters)
	for i := range seqT {
		if parT[i] != seqT[i] {
			t.Errorf("rank %d finished at %v parallel, %v sequential", i, parT[i], seqT[i])
		}
	}
	if len(parBuf) != len(seqBuf) {
		t.Fatalf("payload length %d vs %d", len(parBuf), len(seqBuf))
	}
	for i := range seqBuf {
		if parBuf[i] != seqBuf[i] {
			t.Fatalf("payload[%d] = %v parallel, %v sequential", i, parBuf[i], seqBuf[i])
		}
	}
}
