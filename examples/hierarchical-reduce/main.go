// Hierarchical-reduce tour: exercises the collective layer directly —
// the OSU-style micro-benchmark across the paper's reduction designs
// at 160 GPU processes, showing the Section 5 story: the chunked chain
// wins within a node group, the binomial tree wins across many
// processes, and the tuned two-level HR takes the best of both.
package main

import (
	"fmt"
	"log"

	"scaffe"
)

func main() {
	const ranks = 160
	algorithms := []struct {
		name string
		alg  scaffe.ReduceAlgorithm
	}{
		{"binomial (Eq.1)", scaffe.ReduceBinomial},
		{"chain (Eq.2)", scaffe.ReduceChain},
		{"CC-8 (two-level chains)", scaffe.ReduceCC},
		{"CB-8 (chains + binomial)", scaffe.ReduceCB},
		{"HR (tuned)", scaffe.ReduceHR},
		{"MVAPICH2 baseline", scaffe.ReduceMV2},
		{"OpenMPI baseline", scaffe.ReduceOpenMPI},
	}

	fmt.Printf("MPI_Reduce latency on %d simulated K-80 GPUs (Cluster-A)\n\n", ranks)
	fmt.Printf("%-28s", "algorithm")
	sizes := []int64{4 << 20, 64 << 20, 256 << 20}
	for _, s := range sizes {
		fmt.Printf("%14dMB", s>>20)
	}
	fmt.Println()

	var hr, ompi [3]float64
	for _, a := range algorithms {
		fmt.Printf("%-28s", a.name)
		for i, size := range sizes {
			lat, err := scaffe.ReduceBench(scaffe.ReduceBenchConfig{
				Ranks: ranks, Bytes: size, Algorithm: a.alg,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%16v", lat)
			if a.alg == scaffe.ReduceHR {
				hr[i] = float64(lat)
			}
			if a.alg == scaffe.ReduceOpenMPI {
				ompi[i] = float64(lat)
			}
		}
		fmt.Println()
	}
	fmt.Printf("\nHR vs OpenMPI speedup at 256MB: %.0fx (paper: up to 133x)\n", ompi[2]/hr[2])
}
