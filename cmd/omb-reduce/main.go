// Command omb-reduce is an OSU-micro-benchmark-style latency sweep for
// the reduction designs (the methodology of Section 6.5): for each
// message size it reports the reduce latency of the selected
// algorithms on the simulated cluster.
//
// Example:
//
//	omb-reduce -ranks 160 -algs mv2,cc,cb,hr,openmpi -min 2097152 -max 268435456
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"scaffe"
)

func main() {
	ranks := flag.Int("ranks", 160, "number of GPU processes")
	nodes := flag.Int("nodes", 0, "cluster nodes (0 = auto)")
	perNode := flag.Int("gpus-per-node", 16, "GPUs per node")
	algsFlag := flag.String("algs", "mv2,cc,cb,hr", "comma-separated: binomial, chain, cc, cb, ccb, hr, mv2, openmpi, rsg")
	chain := flag.Int("chain", 8, "chain size for hierarchical designs")
	minSize := flag.Int64("min", 2<<20, "minimum message size in bytes")
	maxSize := flag.Int64("max", 256<<20, "maximum message size in bytes")
	trials := flag.Int("trials", 3, "timed trials per point")
	flag.Parse()

	algs := map[string]scaffe.ReduceAlgorithm{
		"binomial": scaffe.ReduceBinomial,
		"chain":    scaffe.ReduceChain,
		"cc":       scaffe.ReduceCC,
		"cb":       scaffe.ReduceCB,
		"ccb":      scaffe.ReduceCCB,
		"hr":       scaffe.ReduceHR,
		"mv2":      scaffe.ReduceMV2,
		"openmpi":  scaffe.ReduceOpenMPI,
		"rsg":      scaffe.ReduceRabenseifner,
	}
	var names []string
	var selected []scaffe.ReduceAlgorithm
	for _, name := range strings.Split(*algsFlag, ",") {
		name = strings.TrimSpace(strings.ToLower(name))
		alg, ok := algs[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "omb-reduce: unknown algorithm %q\n", name)
			os.Exit(1)
		}
		names = append(names, name)
		selected = append(selected, alg)
	}

	fmt.Printf("# OSU-style MPI_Reduce latency, %d GPU ranks (chain size %d)\n", *ranks, *chain)
	fmt.Printf("%-12s", "# size")
	for _, n := range names {
		fmt.Printf("%16s", n)
	}
	fmt.Println()
	for size := *minSize; size <= *maxSize; size *= 2 {
		fmt.Printf("%-12d", size)
		for _, alg := range selected {
			opts := scaffe.ReduceOptions{ChainSize: *chain, OnGPU: true}
			lat, err := scaffe.ReduceBench(scaffe.ReduceBenchConfig{
				Ranks: *ranks, Nodes: *nodes, GPUsPerNode: *perNode,
				Bytes: size, Algorithm: alg, Options: opts, Trials: *trials,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "omb-reduce:", err)
				os.Exit(1)
			}
			fmt.Printf("%16.2f", lat.Microseconds())
		}
		fmt.Println()
	}
	fmt.Println("# latencies in microseconds (virtual time)")
}
