package core

import (
	"scaffe/internal/data"
	"scaffe/internal/gpu"
	"scaffe/internal/layers"
	"scaffe/internal/models"
	"scaffe/internal/tensor"
)

// workload is one solver's training state: the communication buffers
// (packed and per-layer views) plus, in real-compute mode, the actual
// network and activations. In timing mode the buffers are payload-free
// and the math hooks are no-ops; virtual time is identical either way.
type workload struct {
	spec       *models.Spec
	net        *layers.Net // nil in timing mode
	localBatch int

	// paramData/gradData back the packed buffers in real mode.
	paramData []float32
	gradData  []float32
	// packedParams/packedGrads are the whole-model buffers
	// (packed_comm_buffer / packed_reduction_buffer of Figure 1).
	packedParams *gpu.Buffer
	packedGrads  *gpu.Buffer
	// layerParam/layerGrad are per-spec-layer views (nil for
	// parameter-free layers), the units of multi-stage communication.
	layerParam []*gpu.Buffer
	layerGrad  []*gpu.Buffer
	// buckets optionally coalesce consecutive layers' gradients into
	// fused reduction units (Config.BucketBytes).
	buckets []gradBucket

	// Real-mode activation threading. input and labels are persistent
	// batch buffers refilled in place each iteration.
	act    *tensor.Tensor
	grad   *tensor.Tensor
	input  *tensor.Tensor
	labels []int
}

// newWorkload builds the buffers (and, in real mode, the network) for
// one rank. All ranks use the same seed so replicas start identical,
// as Caffe's root-broadcast initialization guarantees.
func newWorkload(cfg *Config, localBatch int) *workload {
	w := &workload{spec: cfg.Spec, localBatch: localBatch}
	total := cfg.Spec.TotalParams()
	if cfg.RealNet != nil {
		w.net = cfg.RealNet(localBatch, cfg.Seed)
		w.paramData = make([]float32, total)
		w.gradData = make([]float32, total)
		w.packedParams = gpu.WrapData(w.paramData)
		w.packedGrads = gpu.WrapData(w.gradData)
	} else {
		w.packedParams = gpu.NewBuffer(int64(total) * 4)
		w.packedGrads = gpu.NewBuffer(int64(total) * 4)
	}
	off := 0
	for _, l := range cfg.Spec.Layers {
		if l.ParamElems == 0 {
			w.layerParam = append(w.layerParam, nil)
			w.layerGrad = append(w.layerGrad, nil)
			continue
		}
		if cfg.RealNet != nil {
			w.layerParam = append(w.layerParam, w.packedParams.Slice(off, off+l.ParamElems))
			w.layerGrad = append(w.layerGrad, w.packedGrads.Slice(off, off+l.ParamElems))
		} else {
			w.layerParam = append(w.layerParam, gpu.NewBuffer(int64(l.ParamElems)*4))
			w.layerGrad = append(w.layerGrad, gpu.NewBuffer(int64(l.ParamElems)*4))
		}
		off += l.ParamElems
	}
	return w
}

// gradBucket is one fused reduction unit: the gradients of layers
// [lo, hi] (inclusive, by spec index).
type gradBucket struct {
	lo, hi int
	buf    *gpu.Buffer
}

// buildBuckets groups consecutive parameter layers until each bucket
// holds at least bucketBytes of gradients. Real-mode buckets are views
// into the contiguous packed gradient buffer; timing-mode buckets are
// fresh logical buffers of the combined size.
func (w *workload) buildBuckets(spec *models.Spec, bucketBytes int64) {
	w.buckets = nil
	offsets := make([]int, len(spec.Layers)+1)
	for i, l := range spec.Layers {
		offsets[i+1] = offsets[i] + l.ParamElems
	}
	lo := -1
	var elems int
	flush := func(hi int) {
		if lo < 0 {
			return
		}
		b := gradBucket{lo: lo, hi: hi}
		if w.real() {
			b.buf = w.packedGrads.Slice(offsets[lo], offsets[hi+1])
		} else {
			b.buf = gpu.NewBuffer(int64(elems) * 4)
		}
		w.buckets = append(w.buckets, b)
		lo, elems = -1, 0
	}
	for i, l := range spec.Layers {
		if l.ParamElems == 0 {
			continue
		}
		if lo < 0 {
			lo = i
		}
		elems += l.ParamElems
		if int64(elems)*4 >= bucketBytes {
			flush(i)
		}
	}
	flush(len(spec.Layers) - 1)
	// Reverse into backward-pass order (the order buckets complete).
	for i, j := 0, len(w.buckets)-1; i < j; i, j = i+1, j-1 {
		w.buckets[i], w.buckets[j] = w.buckets[j], w.buckets[i]
	}
}

// real reports whether this workload performs actual math.
func (w *workload) real() bool { return w.net != nil }

// packParams flattens the net's parameters into the packed buffer
// (root, before propagation).
func (w *workload) packParams() {
	if !w.real() {
		return
	}
	w.net.PackParams(w.paramData)
}

// unpackParams writes broadcast parameters back into the net
// (non-root, after propagation).
func (w *workload) unpackParams() {
	if !w.real() {
		return
	}
	w.net.UnpackParams(w.paramData)
}

// loadBatch assembles this rank's slice of the global batch for the
// iteration: rank r takes samples [iter·G + r·b, iter·G + (r+1)·b), so
// the union over ranks equals the single-solver batch exactly.
func (w *workload) loadBatch(ds data.Dataset, iter, globalBatch, rankOffset int) {
	if !w.real() {
		return
	}
	if w.input == nil {
		w.initInput(ds)
	}
	start := iter*globalBatch + rankOffset
	data.BatchTensorInto(ds, start, w.localBatch, w.input.Data, w.labels)
	w.net.ZeroGrads()
}

// initInput allocates the rank's input tensor and label buffer on
// first use; every later iteration loads into the same buffers.
//
//scaffe:coldpath first-use input/label allocation, reused across iterations
func (w *workload) initInput(ds data.Dataset) {
	sh := ds.Shape()
	w.input = tensor.New(w.localBatch, sh.C, sh.H, sh.W)
	w.labels = make([]int, w.localBatch)
}

// beginForward resets activation threading.
func (w *workload) beginForward() {
	if w.real() {
		w.act = w.input
	}
}

// forwardLayer runs layer l's real math (no-op in timing mode).
func (w *workload) forwardLayer(l int) {
	if w.real() {
		w.act = w.net.ForwardLayer(l, w.act, w.labels)
	}
}

// beginBackward resets gradient threading.
func (w *workload) beginBackward() {
	if w.real() {
		w.grad = nil
	}
}

// backwardLayer runs layer l's real backward math and packs the
// layer's gradients into its communication buffer.
func (w *workload) backwardLayer(l int) {
	if !w.real() {
		return
	}
	w.grad = w.net.BackwardLayer(l, w.grad)
	if w.layerGrad[l] == nil {
		return
	}
	dst := w.layerGrad[l].Data
	off := 0
	for _, g := range w.net.Layers[l].Grads() {
		copy(dst[off:off+g.Len()], g.Data)
		off += g.Len()
	}
}

// unpackLayerParams writes one layer's broadcast parameters back into
// the net (SC-OB's per-layer waits).
func (w *workload) unpackLayerParams(l int) {
	if !w.real() || w.layerParam[l] == nil {
		return
	}
	src := w.layerParam[l].Data
	off := 0
	for _, p := range w.net.Layers[l].Params() {
		copy(p.Data, src[off:off+p.Len()])
		off += p.Len()
	}
}

// unpackGrads writes the reduced gradient buffer back into the net
// (root, before ApplyUpdate).
func (w *workload) unpackGrads() {
	if !w.real() {
		return
	}
	w.net.UnpackGrads(w.gradData)
}

// loss returns the last forward pass's loss (0 in timing mode).
func (w *workload) loss() float32 {
	if !w.real() {
		return 0
	}
	return w.net.LossLayer().Loss()
}
