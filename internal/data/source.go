package data

import (
	"scaffe/internal/pfs"
	"scaffe/internal/sim"
)

// Source models the I/O cost of pulling training batches from a
// storage backend. Implementations block the calling reader proc for
// the virtual time the read takes; the actual sample bytes come from
// the in-memory Dataset (storage contents and storage timing are
// decoupled, as everywhere else in the simulator).
type Source interface {
	// Name identifies the backend ("lmdb", "imagedata", "memory").
	Name() string
	// ReadBatch blocks p for the duration of reading n samples of
	// bytesPer bytes each.
	ReadBatch(p *sim.Proc, n int, bytesPer int64)
}

// InMemory is a zero-cost source (data already resident), used by
// micro-experiments that isolate communication behaviour.
type InMemory struct{}

// Name implements Source.
func (InMemory) Name() string { return "memory" }

// ReadBatch implements Source.
func (InMemory) ReadBatch(*sim.Proc, int, int64) {}

// LMDBSource models parallel readers over one LMDB environment. Two
// effects bound its scalability, reproducing the Figure 8 cliff:
//
//  1. Every read transaction passes through the environment's shared
//     reader-table lock (a real LMDB design point), so record pickup
//     serializes across all readers.
//  2. Beyond SlotLimit concurrent readers the per-record lock cost
//     inflates quadratically (reader-slot scans and page-cache
//     thrash), matching the paper's observation of "severe degradation
//     or race conditions" past 64 readers.
type LMDBSource struct {
	// Lock is the shared reader-table lock, held briefly per batch
	// transaction.
	Lock *sim.Resource
	// Disk is the shared page-cache/disk bandwidth.
	Disk *sim.Resource
	// DiskBW is the aggregate sequential read bandwidth.
	DiskBW float64
	// TxnCost is the reader-slot acquisition cost per batch
	// transaction (inflated past the slot limit).
	TxnCost sim.Duration
	// PerRecord is the per-record cursor/decode cost, paid locally by
	// each reader thread (concurrent across readers).
	PerRecord sim.Duration
	// Readers is the number of concurrently configured readers.
	Readers int
	// SlotLimit is the contention knee (the paper's 64).
	SlotLimit int
}

// NewLMDBSource builds the shared-environment model for the given
// configured reader count.
func NewLMDBSource(k *sim.Kernel, readers int) *LMDBSource {
	return &LMDBSource{
		Lock:      k.NewResource("lmdb.lock"),
		Disk:      k.NewResource("lmdb.disk"),
		DiskBW:    8e9,
		TxnCost:   10 * sim.Microsecond,
		PerRecord: 2 * sim.Microsecond,
		Readers:   readers,
		SlotLimit: 64,
	}
}

// Penalty returns the reader-slot cost multiplier for the configured
// reader count: 1 up to the slot limit, then quadratic growth (slot
// scans and page-cache thrash).
func (s *LMDBSource) Penalty() float64 {
	if s.Readers <= s.SlotLimit {
		return 1
	}
	over := float64(s.Readers-s.SlotLimit) / 8.0
	return 1 + over*over
}

// Name implements Source.
func (s *LMDBSource) Name() string { return "lmdb" }

// ReadBatch implements Source.
func (s *LMDBSource) ReadBatch(p *sim.Proc, n int, bytesPer int64) {
	// Slot acquisition serializes across every reader of the
	// environment; below 64 readers it is brief, beyond it inflates.
	lockHold := sim.Duration(float64(s.TxnCost) * s.Penalty())
	_, lockEnd := s.Lock.Reserve(p.Now(), lockHold)
	// Page reads share the environment's sequential bandwidth.
	bytes := int64(n) * bytesPer
	diskDur := sim.Duration(float64(bytes) / s.DiskBW * float64(sim.Second))
	_, diskEnd := s.Disk.Reserve(lockEnd, diskDur)
	p.WaitUntil(diskEnd)
	// Cursor walking and record decode run on the reader's own thread.
	p.Sleep(sim.Duration(n) * s.PerRecord)
}

// ImageDataSource models Caffe's ImageDataLayer reading individual
// image files from a parallel filesystem: no shared lock, bandwidth
// aggregates across OSTs, so it keeps scaling with reader count.
type ImageDataSource struct {
	FS *pfs.FS
}

// NewImageDataSource wraps a PFS instance.
func NewImageDataSource(fs *pfs.FS) *ImageDataSource { return &ImageDataSource{FS: fs} }

// Name implements Source.
func (s *ImageDataSource) Name() string { return "imagedata" }

// ReadBatch implements Source.
func (s *ImageDataSource) ReadBatch(p *sim.Proc, n int, bytesPer int64) {
	s.FS.ReadSpread(p, int64(n)*bytesPer, n)
}

// Reader is one data-reader thread feeding one solver through a
// bounded distributed queue (Figure 3). The reader prefetches ahead of
// the solver up to the queue depth, hiding I/O behind compute when the
// backend can keep up.
type Reader struct {
	q    *sim.Queue
	proc *sim.Proc
}

// StartReader spawns the reader proc: it loads `iterations` batches of
// n samples and enqueues a token per batch.
func StartReader(k *sim.Kernel, name string, src Source, n int, bytesPer int64, iterations, depth int) *Reader {
	r := &Reader{q: k.NewQueue(depth)}
	r.proc = k.Spawn(name, func(p *sim.Proc) {
		for i := 0; i < iterations; i++ {
			src.ReadBatch(p, n, bytesPer)
			r.q.Put(p, i)
		}
	})
	return r
}

// StartReaderLoop spawns an elastic reader: it prefetches forever
// (bounded by the queue depth) until Stop. Fault-tolerant runs use it
// because their consumption count is not known up front — a rollback
// re-reads iterations and a shrink changes the batch geometry.
func StartReaderLoop(k *sim.Kernel, name string, src Source, n int, bytesPer int64, depth int) *Reader {
	r := &Reader{q: k.NewQueue(depth)}
	r.proc = k.Spawn(name, func(p *sim.Proc) {
		for i := 0; ; i++ {
			src.ReadBatch(p, n, bytesPer)
			r.q.Put(p, i)
		}
	})
	return r
}

// Stop kills the reader proc (crash injection and elastic recovery).
// Safe to call more than once.
func (r *Reader) Stop() {
	if r.proc != nil {
		r.proc.Kill()
	}
}

// StartSharedReader spawns the original Caffe design: a single reader
// thread loads each iteration's whole batch, then releases one token
// per consuming solver through the shared queue.
func StartSharedReader(k *sim.Kernel, name string, src Source, batchPerIter int, bytesPer int64, iterations, consumers, depth int) *Reader {
	r := &Reader{q: k.NewQueue(depth)}
	r.proc = k.Spawn(name, func(p *sim.Proc) {
		for i := 0; i < iterations; i++ {
			src.ReadBatch(p, batchPerIter, bytesPer)
			for c := 0; c < consumers; c++ {
				r.q.Put(p, i)
			}
		}
	})
	return r
}

// Next blocks the solver until the next batch is buffered and consumes
// it.
func (r *Reader) Next(p *sim.Proc) {
	r.q.Get(p)
}
