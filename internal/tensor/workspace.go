package tensor

import "sync"

// The workspace pool hands out transient float32 scratch buffers (GEMM
// packing panels, layer workspaces) without allocating in steady
// state. It is a plain mutex-guarded free list rather than a
// sync.Pool: pooled buffers must survive GC cycles and be visible to
// every worker (sync.Pool's per-P private slots are invisible to other
// Ps, which costs a fresh allocation on almost every concurrent Get).
// The training hot path borrows and returns the same few buffers every
// iteration, so after warm-up GetScratch/PutScratch never allocate —
// the same workspace-reuse strategy Caffe applies to its im2col
// buffer.
var (
	scratchMu   sync.Mutex
	scratchFree []*[]float32
)

// GetScratch borrows a scratch slice of length n from the workspace
// pool. The contents are undefined; the caller must not retain the
// slice past the matching PutScratch.
func GetScratch(n int) *[]float32 {
	scratchMu.Lock()
	var p *[]float32
	if l := len(scratchFree); l > 0 {
		p = scratchFree[l-1]
		scratchFree = scratchFree[:l-1]
	}
	scratchMu.Unlock()
	if p == nil {
		//scaffe:nolint hotpath pool-miss construction; steady state hits the free list
		s := make([]float32, n)
		return &s
	}
	if cap(*p) < n {
		//scaffe:nolint hotpath regrow on a larger request; the pool converges on the high-water size
		*p = make([]float32, n)
	}
	*p = (*p)[:n]
	return p
}

// PutScratch returns a buffer obtained from GetScratch to the pool.
func PutScratch(p *[]float32) {
	scratchMu.Lock()
	//scaffe:nolint hotpath pool release; append reuses capacity freed by the matching get
	scratchFree = append(scratchFree, p)
	scratchMu.Unlock()
}
