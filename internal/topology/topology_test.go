package topology

import (
	"testing"

	"scaffe/internal/sim"
)

func TestClusterPresets(t *testing.T) {
	k := sim.New()
	a := KeschClusterA(k)
	if a.NumNodes() != 12 || a.GPUsPerNode() != 16 || a.TotalGPUs() != 192 {
		t.Errorf("Cluster-A dims = %d nodes x %d GPUs (%d total), want 12x16=192",
			a.NumNodes(), a.GPUsPerNode(), a.TotalGPUs())
	}
	b := ClusterB(k)
	if b.NumNodes() != 20 || b.GPUsPerNode() != 2 || b.TotalGPUs() != 40 {
		t.Errorf("Cluster-B dims = %d nodes x %d GPUs (%d total), want 20x2=40",
			b.NumNodes(), b.GPUsPerNode(), b.TotalGPUs())
	}
}

func TestDeviceForRankBlockPlacement(t *testing.T) {
	k := sim.New()
	c := New(k, "t", 3, 4, DefaultParams())
	cases := []struct {
		rank        int
		node, local int
	}{
		{0, 0, 0}, {3, 0, 3}, {4, 1, 0}, {11, 2, 3},
	}
	for _, cse := range cases {
		d := c.DeviceForRank(cse.rank)
		if d.Node != cse.node || d.Local != cse.local {
			t.Errorf("DeviceForRank(%d) = %v, want n%dg%d", cse.rank, d, cse.node, cse.local)
		}
	}
}

func TestDeviceForRankOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range rank")
		}
	}()
	k := sim.New()
	New(k, "t", 1, 2, DefaultParams()).DeviceForRank(2)
}

func TestSameNode(t *testing.T) {
	k := sim.New()
	c := New(k, "t", 2, 2, DefaultParams())
	if !c.SameNode(DeviceID{0, 0}, DeviceID{0, 1}) {
		t.Error("devices on node 0 should be same-node")
	}
	if c.SameNode(DeviceID{0, 0}, DeviceID{1, 0}) {
		t.Error("devices on different nodes should not be same-node")
	}
}

func TestTransferScalesWithSize(t *testing.T) {
	k := sim.New()
	c := New(k, "t", 2, 2, DefaultParams())
	a, b := DeviceID{0, 0}, DeviceID{1, 0}
	_, small := c.Transfer(0, a, b, 1<<20, ModePipelined)
	k2 := sim.New()
	c2 := New(k2, "t", 2, 2, DefaultParams())
	_, large := c2.Transfer(0, a, b, 64<<20, ModePipelined)
	if large <= small {
		t.Errorf("64MB transfer (%v) should take longer than 1MB (%v)", large, small)
	}
	// Bandwidth term should dominate: 64x the size should be close to
	// 64x the time for large transfers.
	ratio := float64(large) / float64(small)
	if ratio < 20 || ratio > 70 {
		t.Errorf("64x size gave %.1fx time; expected roughly bandwidth-bound scaling", ratio)
	}
}

func TestIntraNodeFasterThanInterNodeStaged(t *testing.T) {
	k := sim.New()
	c := New(k, "t", 2, 2, DefaultParams())
	_, ipc := c.Transfer(0, DeviceID{0, 0}, DeviceID{0, 1}, 8<<20, ModeIPC)
	k2 := sim.New()
	c2 := New(k2, "t", 2, 2, DefaultParams())
	_, staged := c2.Transfer(0, DeviceID{0, 0}, DeviceID{1, 0}, 8<<20, ModeStaged)
	if ipc >= staged {
		t.Errorf("IPC (%v) should beat cross-node staged (%v)", ipc, staged)
	}
}

func TestGDRBeatsPipelinedForSmall(t *testing.T) {
	k := sim.New()
	c := New(k, "t", 2, 1, DefaultParams())
	a, b := DeviceID{0, 0}, DeviceID{1, 0}
	_, gdr := c.Transfer(0, a, b, 4<<10, ModeGDR)
	k2 := sim.New()
	c2 := New(k2, "t", 2, 1, DefaultParams())
	_, pipe := c2.Transfer(0, a, b, 4<<10, ModePipelined)
	if gdr >= pipe {
		t.Errorf("4KB: GDR (%v) should beat pipelined (%v)", gdr, pipe)
	}
}

func TestPipelinedBeatsGDRForLarge(t *testing.T) {
	k := sim.New()
	c := New(k, "t", 2, 1, DefaultParams())
	a, b := DeviceID{0, 0}, DeviceID{1, 0}
	_, gdr := c.Transfer(0, a, b, 64<<20, ModeGDR)
	k2 := sim.New()
	c2 := New(k2, "t", 2, 1, DefaultParams())
	_, pipe := c2.Transfer(0, a, b, 64<<20, ModePipelined)
	if pipe >= gdr {
		t.Errorf("64MB: pipelined (%v) should beat GDR (%v) on Kepler-era GDR-read bandwidth", pipe, gdr)
	}
}

func TestAutoModeSelection(t *testing.T) {
	k := sim.New()
	c := New(k, "t", 2, 2, DefaultParams())
	if m := c.resolveAuto(DeviceID{0, 0}, DeviceID{0, 1}, 1<<20); m != ModeIPC {
		t.Errorf("intra-node auto = %v, want ipc", m)
	}
	if m := c.resolveAuto(DeviceID{0, 0}, DeviceID{1, 0}, 4<<10); m != ModeGDR {
		t.Errorf("small cross-node auto = %v, want gdr", m)
	}
	if m := c.resolveAuto(DeviceID{0, 0}, DeviceID{1, 0}, 4<<20); m != ModePipelined {
		t.Errorf("large cross-node auto = %v, want pipelined", m)
	}
	if m := c.resolveAuto(HostOf(0), HostOf(1), 1<<20); m != ModeHost {
		t.Errorf("host-host auto = %v, want host", m)
	}
}

func TestLinkContentionSerializes(t *testing.T) {
	k := sim.New()
	c := New(k, "t", 2, 2, DefaultParams())
	src := DeviceID{0, 0}
	// Two back-to-back transfers out of the same GPU must serialize on
	// its PCIe link.
	_, e1 := c.Transfer(0, src, DeviceID{1, 0}, 8<<20, ModePipelined)
	s2, _ := c.Transfer(0, src, DeviceID{1, 1}, 8<<20, ModePipelined)
	if s2 < e1 {
		t.Errorf("second transfer started at %v, before first ended at %v", s2, e1)
	}
}

func TestDisjointTransfersRunConcurrently(t *testing.T) {
	k := sim.New()
	c := New(k, "t", 4, 1, DefaultParams())
	_, e1 := c.Transfer(0, DeviceID{0, 0}, DeviceID{1, 0}, 8<<20, ModePipelined)
	s2, _ := c.Transfer(0, DeviceID{2, 0}, DeviceID{3, 0}, 8<<20, ModePipelined)
	if s2 >= e1 {
		t.Errorf("disjoint transfer delayed: started %v, other ended %v", s2, e1)
	}
}

func TestZeroByteTransferPaysLatencyOnly(t *testing.T) {
	k := sim.New()
	c := New(k, "t", 2, 1, DefaultParams())
	_, end := c.Transfer(0, DeviceID{0, 0}, DeviceID{1, 0}, 0, ModeStaged)
	if end <= 0 {
		t.Error("zero-byte transfer should still pay latency")
	}
	if end > 100*sim.Microsecond {
		t.Errorf("zero-byte transfer took %v; should be latency only", end)
	}
}

func TestSameDeviceCopy(t *testing.T) {
	k := sim.New()
	c := New(k, "t", 1, 1, DefaultParams())
	d := DeviceID{0, 0}
	s, e := c.Transfer(0, d, d, 1<<20, ModeAuto)
	if e <= s {
		t.Error("same-device copy should take positive time")
	}
}

func TestReduceTimeGPUFasterThanCPU(t *testing.T) {
	k := sim.New()
	c := New(k, "t", 1, 1, DefaultParams())
	g := c.ReduceTime(64<<20, true)
	h := c.ReduceTime(64<<20, false)
	if g >= h {
		t.Errorf("GPU reduce (%v) should beat CPU reduce (%v) at 64MB", g, h)
	}
}

func TestHostEndpoints(t *testing.T) {
	if !HostOf(3).IsHost() {
		t.Error("HostOf should be a host endpoint")
	}
	if (DeviceID{0, 0}).IsHost() {
		t.Error("GPU 0 should not be a host endpoint")
	}
	k := sim.New()
	c := New(k, "t", 2, 1, DefaultParams())
	// Host-to-host wire transfer must not touch PCIe links.
	c.Transfer(0, HostOf(0), HostOf(1), 8<<20, ModeHost)
	if c.Nodes[0].PCIe[0].BusyTotal() != 0 {
		t.Error("host-host transfer reserved a PCIe link")
	}
	if c.Nodes[0].HCA.BusyTotal() == 0 {
		t.Error("host-host transfer did not reserve the HCA")
	}
}

func TestDeviceIDString(t *testing.T) {
	if s := (DeviceID{2, 5}).String(); s != "n2g5" {
		t.Errorf("DeviceID string = %q, want n2g5", s)
	}
}

func TestTransferModeString(t *testing.T) {
	modes := map[TransferMode]string{
		ModeAuto: "auto", ModeGDR: "gdr", ModePipelined: "pipelined",
		ModeStaged: "staged", ModeIPC: "ipc", ModeHost: "host",
		TransferMode(99): "unknown",
	}
	for m, want := range modes {
		if got := m.String(); got != want {
			t.Errorf("mode %d = %q, want %q", int(m), got, want)
		}
	}
}
