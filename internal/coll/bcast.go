package coll

import (
	"scaffe/internal/gpu"
	"scaffe/internal/mpi"
	"scaffe/internal/topology"
)

// BcastScatterAllgather is van de Geijn's large-message broadcast: a
// binomial scatter of contiguous segments followed by a ring
// allgather. Total traffic per rank is ~2b(P−1)/P versus the binomial
// tree's b·log2(P), so it wins for the multi-megabyte parameter
// buffers DL frameworks broadcast — the same large-message reasoning
// as the paper's chained reduce, applied to propagation. Works for any
// communicator size and root. Tags tag..tag+P are reserved.
func BcastScatterAllgather(c *mpi.Comm, r *mpi.Rank, root int, buf *gpu.Buffer, tag int, mode topology.TransferMode) {
	bcastScatterAllgather(c, r, root, buf, tag, mode, nil)
}

// bsagBoundary returns the starting element of contiguous segment i
// when elems elements are split across size ranks.
func bsagBoundary(size, elems, i int) int { return i * elems / size }

// bcastScatterAllgather is the state-threaded implementation; a nil
// state falls back to transient view allocation.
func bcastScatterAllgather(c *mpi.Comm, r *mpi.Rank, root int, buf *gpu.Buffer, tag int, mode topology.TransferMode, st *rankState) {
	size := c.Size()
	if size == 1 {
		return
	}
	me := c.Rank(r)
	rel := (me - root + size) % size
	elems := buf.Elems()

	// Binomial scatter: node `rel` with entry bit B covers segments
	// [rel, min(rel+B, size)); its children rel+m (m = B/2, B/4, ...)
	// each take the upper half [rel+m, min(rel+2m, size)).
	entryBit := 1
	for entryBit < size {
		entryBit <<= 1
	}
	if rel != 0 {
		bit := rel & (-rel) // lowest set bit: the binomial entry edge
		parent := rel - bit
		hi := rel + bit
		if hi > size {
			hi = size
		}
		blo, bhi := bsagBoundary(size, elems, rel), bsagBoundary(size, elems, hi)
		if blo < bhi {
			r.RecvSummed(c, (parent+root)%size, tag, st.view(buf, blo, bhi)).Verify()
		}
		entryBit = bit
	}
	for m := entryBit >> 1; m >= 1; m >>= 1 {
		child := rel + m
		if child >= size {
			continue
		}
		hi := child + m
		if hi > size {
			hi = size
		}
		blo, bhi := bsagBoundary(size, elems, child), bsagBoundary(size, elems, hi)
		if blo < bhi {
			r.Send(c, (child+root)%size, tag, st.view(buf, blo, bhi), mode)
		}
	}

	// Ring allgather: after P−1 steps every rank holds every segment.
	left := ((rel-1+size)%size + root) % size
	right := ((rel+1)%size + root) % size
	for step := 0; step < size-1; step++ {
		sendSeg := ((rel-step)%size + size) % size
		recvSeg := ((rel-step-1)%size + size) % size
		var sreq *mpi.Request
		slo, shi := bsagBoundary(size, elems, sendSeg), bsagBoundary(size, elems, sendSeg+1)
		if slo < shi {
			sreq = r.Isend(c, right, tag+1+step, st.view(buf, slo, shi), mode)
		}
		rlo, rhi := bsagBoundary(size, elems, recvSeg), bsagBoundary(size, elems, recvSeg+1)
		if rlo < rhi {
			r.RecvSummed(c, left, tag+1+step, st.view(buf, rlo, rhi)).Verify()
		}
		if sreq != nil {
			r.Wait(sreq)
		}
	}
}
