package experiments

import (
	"fmt"
	"math"

	"scaffe/internal/coll"
	"scaffe/internal/core"
	"scaffe/internal/data"
	"scaffe/internal/models"
)

// Accuracy reproduces the Section 6.2 validation: "We observed no
// difference in accuracy between Caffe and S-Caffe." We train the
// CIFAR-10 quick model in real-compute mode — single solver vs four
// distributed solvers on the same effective batch — and compare the
// loss trajectory, the held-out accuracy, and (our stronger check) the
// final parameters themselves.
func Accuracy(o Options) (*Table, error) {
	iters := o.iters(40)
	if iters < 10 {
		iters = 10
	}
	mk := func(gpus int) core.Config {
		return core.Config{
			Spec:         models.SpecFromNet(models.BuildCIFAR10Quick(1, 1)),
			RealNet:      models.BuildCIFAR10Quick,
			Dataset:      data.SyntheticCIFAR10(8192, 3),
			GPUs:         gpus,
			Nodes:        1,
			GPUsPerNode:  16,
			GlobalBatch:  32,
			Iterations:   iters,
			Design:       core.SCOBR,
			Reduce:       coll.Binomial,
			Source:       core.MemorySource,
			Seed:         3,
			BaseLR:       0.05,
			Momentum:     0.9,
			TestInterval: iters / 2,
			TestBatches:  2,

			CaptureFinalParams: true,
		}
	}
	single, err := core.Run(mk(1))
	if err != nil {
		return nil, err
	}
	multi, err := core.Run(mk(4))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "accuracy",
		Title:   "Real-compute training equivalence: 1 solver vs 4 distributed solvers (CIFAR-10 quick)",
		Columns: []string{"Metric", "1 GPU", "4 GPUs (SC-OBR)"},
	}
	t.AddRow("first loss", fmt.Sprintf("%.4f", single.Losses[0]), fmt.Sprintf("%.4f", multi.Losses[0]))
	t.AddRow("final loss", fmt.Sprintf("%.4f", single.Losses[len(single.Losses)-1]),
		fmt.Sprintf("%.4f", multi.Losses[len(multi.Losses)-1]))
	for i := range single.Accuracies {
		t.AddRow(fmt.Sprintf("held-out accuracy (pass %d)", i+1),
			fmt.Sprintf("%.3f", single.Accuracies[i]), fmt.Sprintf("%.3f", multi.Accuracies[i]))
	}
	var maxDiff float64
	for i := range single.FinalParams {
		d := math.Abs(float64(single.FinalParams[i] - multi.FinalParams[i]))
		if d > maxDiff {
			maxDiff = d
		}
	}
	t.AddRow("max |Δ final params|", "—", fmt.Sprintf("%.2e", maxDiff))
	t.Note("Paper (§6.2): \"We observed no difference in accuracy between Caffe and S-Caffe.\" Here the check is stronger: the distributed solvers' final parameters match single-solver training over all %d parameters up to float32 reassociation error, which momentum feedback amplifies slowly with iteration count (it stays orders of magnitude below parameter scale).", len(single.FinalParams))
	if maxDiff > 0.05 {
		return nil, fmt.Errorf("accuracy experiment: distributed training diverged (max |Δ| = %g)", maxDiff)
	}
	return t, nil
}
