package layers

import (
	"fmt"
	"math/rand"

	"scaffe/internal/tensor"
)

// Net is a sequential network ending in a SoftmaxLoss layer, the
// real-compute analogue of a Caffe Net. It owns the per-layer
// parameter and gradient tensors that the distributed engine
// broadcasts and reduces.
type Net struct {
	Name   string
	In     Shape
	Batch  int
	Layers []Layer

	loss  *SoftmaxLoss
	rng   *rand.Rand
	probs *tensor.Tensor
}

// NewNet builds and sets up a network. The layer list must end with a
// *SoftmaxLoss. Parameter initialization draws from the given seed, so
// two nets built with the same seed start identical — the property the
// distributed-equivalence tests rely on.
func NewNet(name string, in Shape, batch int, seed int64, ls ...Layer) *Net {
	if len(ls) == 0 {
		panic("layers: empty net")
	}
	loss, ok := ls[len(ls)-1].(*SoftmaxLoss)
	if !ok {
		panic("layers: net must end with SoftmaxLoss")
	}
	n := &Net{Name: name, In: in, Batch: batch, Layers: ls, loss: loss, rng: rand.New(rand.NewSource(seed))}
	shape := in
	for _, l := range ls {
		l.Setup(shape, batch, n.rng)
		shape = l.OutShape(shape)
	}
	return n
}

// LossLayer returns the terminal SoftmaxLoss.
func (n *Net) LossLayer() *SoftmaxLoss { return n.loss }

// Forward runs the full forward pass and returns the loss.
//
//scaffe:hotpath
func (n *Net) Forward(input *tensor.Tensor, labels []int) float32 {
	n.loss.SetLabels(labels)
	act := input
	for _, l := range n.Layers {
		act = l.Forward(act)
	}
	n.probs = act
	return n.loss.Loss()
}

// ForwardLayer runs a single layer (used by the distributed engine to
// interleave communication between layers). The caller threads the
// activation through.
//
//scaffe:hotpath
func (n *Net) ForwardLayer(i int, act *tensor.Tensor, labels []int) *tensor.Tensor {
	if i == len(n.Layers)-1 {
		n.loss.SetLabels(labels)
	}
	out := n.Layers[i].Forward(act)
	if i == len(n.Layers)-1 {
		n.probs = out
	}
	return out
}

// Backward runs the full backward pass, accumulating parameter
// gradients.
//
//scaffe:hotpath
func (n *Net) Backward() {
	var grad *tensor.Tensor
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
}

// BackwardLayer runs a single layer's backward pass, threading the
// gradient.
//
//scaffe:hotpath
func (n *Net) BackwardLayer(i int, grad *tensor.Tensor) *tensor.Tensor {
	return n.Layers[i].Backward(grad)
}

// Probs returns the class probabilities of the last forward pass.
func (n *Net) Probs() *tensor.Tensor { return n.probs }

// ZeroGrads clears all accumulated parameter gradients.
func (n *Net) ZeroGrads() {
	for _, l := range n.Layers {
		for _, g := range l.Grads() {
			g.Zero()
		}
	}
}

// ParamLayers returns indices of layers that carry parameters, in
// order — the units of S-Caffe's multi-stage communication.
func (n *Net) ParamLayers() []int {
	var idx []int
	shape := n.In
	for i, l := range n.Layers {
		if l.ParamElems(shape) > 0 {
			idx = append(idx, i)
		}
		shape = l.OutShape(shape)
	}
	return idx
}

// TotalParams returns the total learnable parameter count.
func (n *Net) TotalParams() int {
	total := 0
	for _, l := range n.Layers {
		for _, p := range l.Params() {
			total += p.Len()
		}
	}
	return total
}

// PackParams flattens all parameters into a single slice (the
// packed_comm_buffer of Figure 1).
func (n *Net) PackParams(dst []float32) []float32 {
	dst = dst[:0]
	for _, l := range n.Layers {
		for _, p := range l.Params() {
			//scaffe:nolint hotpath appends into the caller's reused dst[:0] buffer; steady state stays at high-water capacity
			dst = append(dst, p.Data...)
		}
	}
	return dst
}

// UnpackParams writes a packed parameter vector back into the layers.
func (n *Net) UnpackParams(src []float32) {
	off := 0
	for _, l := range n.Layers {
		for _, p := range l.Params() {
			copy(p.Data, src[off:off+p.Len()])
			off += p.Len()
		}
	}
	if off != len(src) {
		panic(fmt.Sprintf("layers: UnpackParams consumed %d of %d values", off, len(src)))
	}
}

// PackGrads flattens all gradients into a single slice (the
// packed_reduction_buffer of Figure 1).
func (n *Net) PackGrads(dst []float32) []float32 {
	dst = dst[:0]
	for _, l := range n.Layers {
		for _, g := range l.Grads() {
			dst = append(dst, g.Data...)
		}
	}
	return dst
}

// UnpackGrads writes a packed gradient vector back into the layers.
func (n *Net) UnpackGrads(src []float32) {
	off := 0
	for _, l := range n.Layers {
		for _, g := range l.Grads() {
			copy(g.Data, src[off:off+g.Len()])
			off += g.Len()
		}
	}
	if off != len(src) {
		panic(fmt.Sprintf("layers: UnpackGrads consumed %d of %d values", off, len(src)))
	}
}

// Summary returns a one-line-per-layer description with shapes and
// parameter counts.
func (n *Net) Summary() string {
	s := fmt.Sprintf("Net %q  input %v  batch %d\n", n.Name, n.In, n.Batch)
	shape := n.In
	total := 0
	for _, l := range n.Layers {
		out := l.OutShape(shape)
		p := l.ParamElems(shape)
		total += p
		s += fmt.Sprintf("  %-12s %-16s %v -> %v  params=%d\n", l.Name(), l.Kind(), shape, out, p)
		shape = out
	}
	s += fmt.Sprintf("  total params: %d\n", total)
	return s
}
