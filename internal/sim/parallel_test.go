package sim

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
)

func TestSetParallelDisarm(t *testing.T) {
	k := New()
	cases := []struct {
		workers   int
		lookahead Duration
		want      int
	}{
		{0, Microsecond, 0},
		{1, Microsecond, 0},
		{4, 0, 0},
		{4, -Microsecond, 0},
		{4, Microsecond, 4},
	}
	for _, c := range cases {
		k.SetParallel(c.workers, c.lookahead)
		if got := k.Parallel(); got != c.want {
			t.Errorf("SetParallel(%d, %v): Parallel() = %d, want %d", c.workers, c.lookahead, got, c.want)
		}
	}
	k.SetParallel(1, Microsecond)
	if b, s := k.Batches(); b != 0 || s != 0 {
		t.Errorf("disarmed kernel reports batches=%d segments=%d", b, s)
	}
}

// lockstepRun drives n grouped procs through iters lockstep sleep
// rounds. Each proc logs its wake times privately (speculation may only
// touch group-local state); on selected rounds it enters the serialized
// commit lane via Exclusive and appends to a shared order log, whose
// order must match batch commit order — i.e. sequential order.
func lockstepRun(workers, n, iters int) (order []int, logs [][]Time, final Time, batches, segments uint64, err error) {
	k := New()
	if workers > 1 {
		k.SetParallel(workers, Millisecond)
	}
	logs = make([][]Time, n)
	for i := 0; i < n; i++ {
		i := i
		p := k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for j := 0; j < iters; j++ {
				p.Sleep(Microsecond)
				logs[i] = append(logs[i], p.Now())
				if j%3 == 0 {
					p.Exclusive()
					order = append(order, i)
				}
			}
		})
		p.SetGroup(i)
	}
	err = k.Run()
	final = k.Now()
	batches, segments = k.Batches()
	return
}

// TestParallelLockstepMatchesSequential is the sim-level differential
// check: a lockstep workload must produce the same shared commit
// order, the same per-proc timelines, and the same final time whether
// batched or sequential — and the batched run must actually batch.
func TestParallelLockstepMatchesSequential(t *testing.T) {
	const n, iters = 8, 30
	seqOrder, seqLogs, seqFinal, _, _, err := lockstepRun(1, n, iters)
	if err != nil {
		t.Fatal(err)
	}
	parOrder, parLogs, parFinal, batches, segments, err := lockstepRun(n, n, iters)
	if err != nil {
		t.Fatal(err)
	}
	if batches == 0 {
		t.Fatal("parallel run committed no batches")
	}
	if segments < 2*batches {
		t.Errorf("%d segments over %d batches; want >= 2 per batch", segments, batches)
	}
	if parFinal != seqFinal {
		t.Errorf("final time %v, sequential gave %v", parFinal, seqFinal)
	}
	if len(parOrder) != len(seqOrder) {
		t.Fatalf("commit order has %d entries, sequential %d", len(parOrder), len(seqOrder))
	}
	for i := range seqOrder {
		if parOrder[i] != seqOrder[i] {
			t.Fatalf("commit order diverges at %d:\npar %v\nseq %v", i, parOrder, seqOrder)
		}
	}
	for i := range seqLogs {
		if len(parLogs[i]) != len(seqLogs[i]) {
			t.Fatalf("proc %d logged %d wakes, sequential %d", i, len(parLogs[i]), len(seqLogs[i]))
		}
		for j := range seqLogs[i] {
			if parLogs[i][j] != seqLogs[i][j] {
				t.Fatalf("proc %d wake %d at %v, sequential %v", i, j, parLogs[i][j], seqLogs[i][j])
			}
		}
	}
	t.Logf("%d batches, %d segments (%.2f avg width)", batches, segments, float64(segments)/float64(batches))
}

// crossGroupRun has even procs fire completions that odd procs wait
// on: the firer must take Exclusive first (it touches another group's
// proc), and the waiter's Wait demotes itself conservatively. Returns
// the virtual times at which each waiter observed its completion.
func crossGroupRun(workers, pairs int) ([]Time, error) {
	k := New()
	if workers > 1 {
		k.SetParallel(workers, Millisecond)
	}
	got := make([]Time, pairs)
	cs := make([]*Completion, pairs)
	for i := range cs {
		cs[i] = k.NewCompletion()
	}
	for i := 0; i < pairs; i++ {
		i := i
		f := k.Spawn(fmt.Sprintf("firer%d", i), func(p *Proc) {
			p.Sleep(Duration(i+1) * Microsecond)
			p.Exclusive() // about to wake a proc in another group
			cs[i].FireFrom(p)
		})
		f.SetGroup(2 * i)
		w := k.Spawn(fmt.Sprintf("waiter%d", i), func(p *Proc) {
			p.Sleep(Microsecond) // join the lockstep instant first
			p.Wait(cs[i])
			got[i] = p.Now()
		})
		w.SetGroup(2*i + 1)
	}
	if err := k.Run(); err != nil {
		return nil, err
	}
	return got, nil
}

// TestParallelCrossGroupCompletion pins the demotion discipline:
// cross-group completion handoffs inside batches resolve at the same
// virtual times as sequential execution.
func TestParallelCrossGroupCompletion(t *testing.T) {
	const pairs = 4
	seq, err := crossGroupRun(1, pairs)
	if err != nil {
		t.Fatal(err)
	}
	par, err := crossGroupRun(2*pairs, pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if par[i] != seq[i] {
			t.Errorf("waiter %d completed at %v, sequential %v", i, par[i], seq[i])
		}
		if want := Duration(i+1) * Microsecond; seq[i] != want {
			t.Errorf("waiter %d completed at %v, want %v", i, seq[i], want)
		}
	}
}

// TestParallelBatchFailureOrder pins first-failure-wins in batch
// order: when two batched procs panic in the same instant, the one
// the sequential kernel would have run first owns the reported error.
func TestParallelBatchFailureOrder(t *testing.T) {
	for _, workers := range []int{1, 4} {
		k := New()
		if workers > 1 {
			k.SetParallel(workers, Millisecond)
		}
		a := k.Spawn("alpha", func(p *Proc) { panic("boom-alpha") })
		a.SetGroup(0)
		b := k.Spawn("beta", func(p *Proc) { panic("boom-beta") })
		b.SetGroup(1)
		err := k.Run()
		if err == nil {
			t.Fatalf("workers=%d: panicking procs did not fail the run", workers)
		}
		if !strings.Contains(err.Error(), "boom-alpha") {
			t.Errorf("workers=%d: failure %q does not carry the first proc's panic", workers, err)
		}
	}
}

// TestParallelLookaheadAssertion pins the commit loop's loud failure
// mode: a segment that stages a cross-group event inside the lookahead
// window (a group-policy violation — it bypassed Exclusive) must panic
// at commit rather than silently reorder the schedule. The staged
// event is forged directly so the violation itself is race-free.
func TestParallelLookaheadAssertion(t *testing.T) {
	k := New()
	k.SetParallel(2, Millisecond)
	w := k.Spawn("victim", func(p *Proc) { p.Sleep(Microsecond) })
	w.SetGroup(1)
	a := k.Spawn("violator", func(p *Proc) {
		p.stage.add(event{kind: evResume, p: w, at: p.Now()})
	})
	a.SetGroup(0)
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("commit loop accepted a cross-group event inside the lookahead window")
		}
		if !strings.Contains(fmt.Sprint(rec), "lookahead") {
			t.Fatalf("unexpected panic: %v", rec)
		}
	}()
	k.Run()
	t.Fatal("run returned without panicking")
}

// TestSimKernelParallelZeroAllocSteadyState extends the zero-alloc
// gate (scripts/check.sh) to the sharded kernel: once staging buffers,
// batch slices, and calendar buckets are warm, a lockstep batch storm
// must allocate nothing. The window is read from inside proc 0's
// Exclusive sections — the commit lane runs strictly serially, after
// every other segment has yielded, so the counter deltas are exact.
func TestSimKernelParallelZeroAllocSteadyState(t *testing.T) {
	const width, warm, measured = 8, 64, 256
	k := New()
	k.SetParallel(width, Millisecond)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before) // warm the read path itself
	for i := 0; i < width; i++ {
		i := i
		p := k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for j := 0; j < warm; j++ {
				p.Sleep(Microsecond)
			}
			if i == 0 {
				p.Exclusive()
				runtime.ReadMemStats(&before)
			}
			for j := 0; j < measured; j++ {
				p.Sleep(Microsecond)
			}
			if i == 0 {
				p.Exclusive()
				runtime.ReadMemStats(&after)
			}
		})
		p.SetGroup(i)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if d := after.Mallocs - before.Mallocs; d != 0 {
		t.Fatalf("batched kernel steady state allocated %d objects over %d lockstep rounds; want 0", d, measured)
	}
}

// BenchmarkSimKernelParallel prices the batched steady state: one op
// is one proc resume inside a full-width same-instant batch (stage
// set-up, speculative sleep, staged replay, commit). The timer and
// allocation window are controlled from proc 0's Exclusive sections so
// spawn and warm-up cost stays out of the measurement, mirroring
// BenchmarkSimKernel's warm-pools discipline.
func BenchmarkSimKernelParallel(b *testing.B) {
	const width, warm = 8, 64
	b.StopTimer()
	k := New()
	k.SetParallel(width, Millisecond)
	per := (b.N + width - 1) / width
	for i := 0; i < width; i++ {
		i := i
		p := k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for j := 0; j < warm; j++ {
				p.Sleep(Microsecond)
			}
			if i == 0 {
				p.Exclusive()
				b.StartTimer()
			}
			for j := 0; j < per; j++ {
				p.Sleep(Microsecond)
			}
			if i == 0 {
				p.Exclusive()
				b.StopTimer()
			}
		})
		p.SetGroup(i)
	}
	b.ReportAllocs()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}
