package sim

// This file implements the event queue of the kernel's hot path. Two
// structures cooperate:
//
//   - nowRing: a FIFO ring buffer holding events scheduled for the
//     current instant (t == now). The overwhelming majority of events
//     in a message-heavy simulation are same-instant wake-ups
//     (completion fires, proc resumes), and for those insertion order
//     IS (time, seq) order, so a ring append/pop is exact.
//
//   - calendarQueue: a Brown-style calendar queue for future events
//     (t > now), with power-of-two bucket counts, sorted buckets, and
//     a cached minimum. Events map to bucket (t/width) & mask and each
//     bucket stays sorted by (at, seq), so the queue as a whole pops
//     in exact (time, seq) order.
//
// Events are small by-value records; the ring and bucket storage act
// as the kernel-owned free list — slots are recycled in place and the
// steady state allocates nothing per event.
//
// Ordering proof for the two-tier split (see DESIGN.md §12): a
// calendar event with at == now was necessarily inserted while
// now < at (insertions at the current instant go to the ring), hence
// strictly earlier, hence with a smaller seq than every ring event.
// So popping the calendar while its minimum is <= now, then the ring,
// then advancing to the calendar minimum reproduces the exact global
// (at, seq) order of a single heap.

// evKind discriminates the typed event payloads. A small closed enum
// replaces the old closure-per-event representation: the dominant
// kinds carry only a pointer and an integer, so scheduling them
// allocates nothing.
type evKind uint8

const (
	// evFunc runs an arbitrary deferred function (cold paths,
	// user-facing Kernel.At).
	evFunc evKind = iota
	// evResume unconditionally resumes a parked proc.
	evResume
	// evResumeIf resumes a proc only if it is still parked on the
	// guarded wait armed with aux (see Kernel.resumeIf).
	evResumeIf
	// evFire fires a completion if its generation still equals aux;
	// a recycled completion dissolves the event.
	evFire
	// evRun invokes a Runnable payload — a pooled record scheduled by
	// a higher layer (e.g. an MPI transfer delivery) in place of a
	// closure.
	evRun
)

// Runnable is a schedulable event payload. Higher layers implement it
// on pooled records and schedule them with Kernel.AtRun so the hot
// path carries no closures.
type Runnable interface {
	RunEvent(k *Kernel)
}

// event is a typed, by-value event record. Exactly one payload field
// is meaningful, selected by kind. Events live by value inside the
// ring and calendar buckets; they are never heap-allocated
// individually.
type event struct {
	at   Time
	seq  uint64
	aux  uint64 // evResumeIf: armed wait seq; evFire: completion generation
	p    *Proc
	c    *Completion
	fn   func()
	run  Runnable
	kind evKind
}

func eventLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// nowRing is a FIFO ring of events due at the current instant.
type nowRing struct {
	buf  []event // power-of-two length
	head int
	n    int
}

func (r *nowRing) len() int { return r.n }

// push appends e; steady state touches only an existing slot.
//
//scaffe:hotpath
func (r *nowRing) push(e event) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = e
	r.n++
}

// pop removes and returns the oldest event, zeroing the slot so the
// ring does not pin dead payloads.
//
//scaffe:hotpath
func (r *nowRing) pop() event {
	e := r.buf[r.head]
	r.buf[r.head] = event{}
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return e
}

// peek returns the oldest event without removing it. The ring must be
// non-empty.
func (r *nowRing) peek() event { return r.buf[r.head] }

// grow doubles the ring (cold path: runs O(log n) times ever).
//
//scaffe:coldpath capacity doubling runs O(log n) times ever; amortized out of steady state
func (r *nowRing) grow() {
	size := 2 * len(r.buf)
	if size < 64 {
		size = 64
	}
	nb := make([]event, size)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = nb
	r.head = 0
}

const minBuckets = 16

// calendarQueue holds future events bucketed by time. count/width
// resize keeps O(1) amortized operations; the cached minimum makes
// the peek in the kernel's pop rule free in the common case.
//
// Each bucket is consumed through a head cursor (heads[i]) instead of
// shifting the slice on every pop: with a same-instant wave of many
// events landing in one bucket (a 1024-rank compute phase), shifting
// would make draining the bucket quadratic. The live window of bucket
// i is buckets[i][heads[i]:]; the dead prefix is compacted away when
// an insert needs room.
type calendarQueue struct {
	buckets [][]event
	heads   []int
	mask    int
	width   Time
	count   int
	// lastAt is a lower bound on the queue minimum; the year-scan in
	// locate starts from its bucket.
	lastAt Time
	// Cached location of the global minimum (always index 0 of
	// cacheBucket). Invalidated by pop and resize; maintained by
	// insert.
	cacheOK     bool
	cacheBucket int
	cacheAt     Time
	cacheSeq    uint64
	spill       []event // scratch for resize
}

// insert places e into its bucket, keeping the bucket sorted by
// (at, seq). Bucket growth and table resize live in cold helpers.
//
//scaffe:hotpath
func (q *calendarQueue) insert(e event) {
	if len(q.buckets) == 0 {
		q.reinit(minBuckets, 1)
	}
	if e.at < q.lastAt {
		q.lastAt = e.at
	}
	b := int(e.at/q.width) & q.mask
	bk := q.buckets[b]
	h := q.heads[b]
	n := len(bk)
	if n == cap(bk) {
		if h > 0 {
			// Reclaim the dead prefix before growing: slide the live
			// window to the front.
			n = copy(bk, bk[h:])
			for i := n; i < len(bk); i++ {
				bk[i] = event{}
			}
			bk = bk[:n]
			h = 0
			q.heads[b] = 0
		} else {
			bk = growEvents(bk)
		}
	}
	// Binary search for the insertion point within the live window.
	lo, hi := h, n
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if eventLess(e, bk[m]) {
			hi = m
		} else {
			lo = m + 1
		}
	}
	if h > 0 && lo-h <= n-lo {
		// Shifting the (shorter) left side into the dead prefix avoids
		// touching the tail; the window grows one slot leftward.
		copy(bk[h-1:], bk[h:lo])
		bk[lo-1] = e
		q.heads[b] = h - 1
	} else {
		bk = bk[: n+1 : cap(bk)]
		copy(bk[lo+1:], bk[lo:n])
		bk[lo] = e
	}
	q.buckets[b] = bk
	q.count++
	if q.cacheOK && (e.at < q.cacheAt || (e.at == q.cacheAt && e.seq < q.cacheSeq)) {
		// A new global minimum always lands at the head of its bucket.
		q.cacheBucket, q.cacheAt, q.cacheSeq = b, e.at, e.seq
	}
	if q.count > 2*len(q.buckets) {
		q.resize(2 * len(q.buckets))
	}
}

// pop removes and returns the minimum event. Removal advances the
// bucket's head cursor (O(1)); when the next event in the same bucket
// still lies inside the popped event's calendar month, it is provably
// the new global minimum (same argument as locate's year scan), so the
// cache survives the pop and draining a same-month wave of n events
// costs O(n) total.
//
//scaffe:hotpath
func (q *calendarQueue) pop() event {
	q.locate()
	b := q.cacheBucket
	bk := q.buckets[b]
	h := q.heads[b]
	e := bk[h]
	bk[h] = event{}
	h++
	if h == len(bk) {
		q.buckets[b] = bk[:0]
		q.heads[b] = 0
		h = len(bk) // empty window below
	} else {
		q.heads[b] = h
	}
	q.count--
	if h < len(bk) && bk[h].at < (e.at/q.width+1)*q.width {
		q.cacheAt, q.cacheSeq = bk[h].at, bk[h].seq
		q.lastAt = bk[h].at
	} else {
		q.cacheOK = false
	}
	if q.count < len(q.buckets)/4 && len(q.buckets) > minBuckets {
		q.resize(len(q.buckets) / 2)
	}
	return e
}

// peek returns the minimum event without removing it. The queue must
// be non-empty.
func (q *calendarQueue) peek() event {
	q.locate()
	return q.buckets[q.cacheBucket][q.heads[q.cacheBucket]]
}

// minTime reports the (time) of the minimum event, if any.
//
//scaffe:hotpath
func (q *calendarQueue) minTime() (Time, bool) {
	if q.count == 0 {
		return 0, false
	}
	q.locate()
	return q.cacheAt, true
}

// locate finds the global minimum and caches its bucket. The scan
// visits buckets in year order starting from lastAt's bucket: the
// first head event lying inside the bucket's current year is the
// global minimum (all later buckets' events are provably later; see
// file comment). If a whole year holds nothing, fall back to a direct
// scan of bucket heads.
//
//scaffe:hotpath
func (q *calendarQueue) locate() {
	if q.cacheOK || q.count == 0 {
		return
	}
	w := q.width
	year := q.lastAt / w
	i := int(year) & q.mask
	top := (year + 1) * w
	for range q.buckets {
		bk := q.buckets[i]
		if h := q.heads[i]; h < len(bk) && bk[h].at < top {
			q.cacheOK, q.cacheBucket, q.cacheAt, q.cacheSeq = true, i, bk[h].at, bk[h].seq
			q.lastAt = bk[h].at
			return
		}
		i = (i + 1) & q.mask
		top += w
	}
	best := -1
	for bi := range q.buckets {
		h := q.heads[bi]
		bk := q.buckets[bi]
		if h >= len(bk) {
			continue
		}
		if best < 0 || eventLess(bk[h], q.buckets[best][q.heads[best]]) {
			best = bi
		}
	}
	h := q.heads[best]
	bk := q.buckets[best]
	q.cacheOK, q.cacheBucket, q.cacheAt, q.cacheSeq = true, best, bk[h].at, bk[h].seq
	q.lastAt = bk[h].at
}

// reinit replaces the bucket table (cold path). Bucket backing arrays
// are recycled across resizes: a same-instant wave repeatedly grows one
// bucket to the wave size, and reallocating every bucket from scratch
// on each resize made that growth a dominant allocation source. The
// recycled arrays keep their high-water capacity; stale values beyond
// the emptied length are never read (the live window is [head:len)) and
// are overwritten or zeroed by pops as the slots are reused.
//
//scaffe:coldpath table rebuild is a resize event, amortized out of steady state
func (q *calendarQueue) reinit(nbuckets int, width Time) {
	old := q.buckets
	if cap(old) >= nbuckets {
		if len(old) > nbuckets {
			// Shrinking: empty the dropped tail headers in place, so a
			// later regrow through the shared backing array can never
			// resurrect stale contents (headers beyond the table length
			// are always length-zero).
			tail := old[nbuckets:]
			for i := range tail {
				tail[i] = tail[i][:0]
			}
		}
		q.buckets = old[:nbuckets]
	} else {
		nb := make([][]event, nbuckets)
		copy(nb, old)
		q.buckets = nb
	}
	for i := range q.buckets {
		q.buckets[i] = q.buckets[i][:0]
	}
	if cap(q.heads) >= nbuckets {
		q.heads = q.heads[:nbuckets]
		for i := range q.heads {
			q.heads[i] = 0
		}
	} else {
		q.heads = make([]int, nbuckets)
	}
	q.mask = nbuckets - 1
	q.width = width
	q.count = 0
	q.cacheOK = false
}

// resize rebuilds the table with nb buckets, recomputing the bucket
// width from the current spread so occupancy stays near-uniform. The
// choice is a deterministic function of queue contents, so replays
// resize identically.
//
//scaffe:coldpath resize runs O(log n) times for n events; amortized out of steady state
func (q *calendarQueue) resize(nb int) {
	all := q.spill[:0]
	for bi, bk := range q.buckets {
		all = append(all, bk[q.heads[bi]:]...)
	}
	var minAt, maxAt Time
	for i, e := range all {
		if i == 0 || e.at < minAt {
			minAt = e.at
		}
		if i == 0 || e.at > maxAt {
			maxAt = e.at
		}
	}
	width := Time(1)
	if len(all) > 1 {
		width = (maxAt - minAt) / Time(len(all))
		if width < 1 {
			width = 1
		}
	}
	lastAt := q.lastAt
	q.reinit(nb, width)
	for _, e := range all {
		q.insert(e)
	}
	q.lastAt = lastAt
	for i := range all {
		all[i] = event{}
	}
	q.spill = all[:0]
}

// growEvents returns a copy of bk with doubled capacity (cold path).
//
//scaffe:coldpath bucket doubling is amortized out of steady state
func growEvents(bk []event) []event {
	size := 2 * cap(bk)
	if size < 8 {
		size = 8
	}
	nb := make([]event, len(bk), size)
	copy(nb, bk)
	return nb
}

// eventHeap is the original binary-heap event queue. The kernel no
// longer uses it — it survives as the reference ordering oracle for
// the calendar queue's differential tests. The sift routines are
// hand-rolled and monomorphic: the old container/heap implementation
// boxed every event through `any` on Push and Pop, allocating on each
// queue operation.
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) peek() event { return h[0] }

func (h *eventHeap) pushEvent(e event) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(s[i], s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) popEvent() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{}
	s = s[:n]
	*h = s
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		min := left
		if right := left + 1; right < n && eventLess(s[right], s[left]) {
			min = right
		}
		if !eventLess(s[min], s[i]) {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}
