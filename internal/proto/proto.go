// Package proto parses Caffe-style solver prototxt files — the
// configuration surface S-Caffe's users actually touched — and maps
// them onto core training configs. The dialect covers the scalar
// `key: value` fields a solver file uses (quoted strings, numbers,
// booleans, repeated keys) plus `#` comments; nested message blocks
// are accepted and recorded under dotted keys.
package proto

import (
	"fmt"
	"strconv"
	"strings"
)

// Document is a parsed prototxt: multi-valued keys in file order.
// Nested blocks flatten to dotted keys ("net_param.name").
type Document struct {
	fields map[string][]string
	order  []string
}

// Parse parses prototxt text.
func Parse(text string) (*Document, error) {
	d := &Document{fields: make(map[string][]string)}
	var stack []string
	line := 0
	for _, raw := range strings.Split(text, "\n") {
		line++
		s := raw
		if i := strings.IndexByte(s, '#'); i >= 0 {
			s = s[:i]
		}
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		// Block close.
		if s == "}" {
			if len(stack) == 0 {
				return nil, fmt.Errorf("proto: line %d: unmatched '}'", line)
			}
			stack = stack[:len(stack)-1]
			continue
		}
		// Block open: "name {".
		if strings.HasSuffix(s, "{") {
			name := strings.TrimSpace(strings.TrimSuffix(s, "{"))
			name = strings.TrimSuffix(name, ":")
			name = strings.TrimSpace(name)
			if name == "" || strings.ContainsAny(name, " \t") {
				return nil, fmt.Errorf("proto: line %d: malformed block header %q", line, raw)
			}
			stack = append(stack, name)
			continue
		}
		// Scalar field: "key: value".
		i := strings.IndexByte(s, ':')
		if i < 0 {
			return nil, fmt.Errorf("proto: line %d: expected 'key: value', got %q", line, raw)
		}
		key := strings.TrimSpace(s[:i])
		val := strings.TrimSpace(s[i+1:])
		if key == "" || val == "" {
			return nil, fmt.Errorf("proto: line %d: empty key or value in %q", line, raw)
		}
		if val[0] == '"' {
			unq, err := strconv.Unquote(val)
			if err != nil {
				return nil, fmt.Errorf("proto: line %d: bad string %s", line, val)
			}
			val = unq
		}
		full := key
		if len(stack) > 0 {
			full = strings.Join(stack, ".") + "." + key
		}
		if _, seen := d.fields[full]; !seen {
			d.order = append(d.order, full)
		}
		d.fields[full] = append(d.fields[full], val)
	}
	if len(stack) > 0 {
		return nil, fmt.Errorf("proto: unterminated block %q", strings.Join(stack, "."))
	}
	return d, nil
}

// Has reports whether the key appears.
func (d *Document) Has(key string) bool { return len(d.fields[key]) > 0 }

// Keys returns the distinct keys in first-appearance order.
func (d *Document) Keys() []string { return d.order }

// String returns the last value of key, or def.
func (d *Document) String(key, def string) string {
	vs := d.fields[key]
	if len(vs) == 0 {
		return def
	}
	return vs[len(vs)-1]
}

// Strings returns all values of key in order.
func (d *Document) Strings(key string) []string { return d.fields[key] }

// Int returns the last value of key as an int.
func (d *Document) Int(key string, def int) (int, error) {
	vs := d.fields[key]
	if len(vs) == 0 {
		return def, nil
	}
	v, err := strconv.Atoi(vs[len(vs)-1])
	if err != nil {
		return 0, fmt.Errorf("proto: field %s: %w", key, err)
	}
	return v, nil
}

// Float returns the last value of key as a float64.
func (d *Document) Float(key string, def float64) (float64, error) {
	vs := d.fields[key]
	if len(vs) == 0 {
		return def, nil
	}
	v, err := strconv.ParseFloat(vs[len(vs)-1], 64)
	if err != nil {
		return 0, fmt.Errorf("proto: field %s: %w", key, err)
	}
	return v, nil
}

// Bool returns the last value of key as a bool.
func (d *Document) Bool(key string, def bool) (bool, error) {
	vs := d.fields[key]
	if len(vs) == 0 {
		return def, nil
	}
	v, err := strconv.ParseBool(vs[len(vs)-1])
	if err != nil {
		return false, fmt.Errorf("proto: field %s: %w", key, err)
	}
	return v, nil
}
