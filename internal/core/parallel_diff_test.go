package core

import (
	"bytes"
	"errors"
	"runtime"
	"strings"
	"testing"

	"scaffe/internal/fault"
	"scaffe/internal/models"
	"scaffe/internal/trace"
)

// Differential replay: every workload below runs once under the forced
// sequential kernel and then under the forced parallel kernel at
// GOMAXPROCS 1, 4, and 16. The parallel-lookahead design's whole claim
// (DESIGN.md §13) is that the two kernels are indistinguishable from
// inside the simulation, so the comparison is byte-level: identical
// Chrome-trace serializations (every span of every rank, in order),
// identical virtual end times, identical per-iteration losses, and
// identical fault/integrity reports.

// runTraced runs cfg with a fresh trace recorder attached and returns
// the result plus the serialized trace.
func runTraced(t *testing.T, cfg Config, workers int) (*Result, []byte) {
	t.Helper()
	cfg.SimParallel = workers
	cfg.Trace = trace.New()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	var buf bytes.Buffer
	if err := cfg.Trace.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("workers=%d: trace serialization: %v", workers, err)
	}
	return res, buf.Bytes()
}

func diffRuns(t *testing.T, name string, mk func() Config) {
	t.Helper()
	seq, seqTrace := runTraced(t, mk(), 1)
	for _, procs := range []int{1, 4, 16} {
		prev := runtime.GOMAXPROCS(procs)
		par, parTrace := runTraced(t, mk(), 8)
		runtime.GOMAXPROCS(prev)
		if par.TotalTime != seq.TotalTime {
			t.Errorf("%s @GOMAXPROCS=%d: total %d, sequential gave %d", name, procs, par.TotalTime, seq.TotalTime)
		}
		if len(par.Losses) != len(seq.Losses) {
			t.Fatalf("%s @GOMAXPROCS=%d: %d losses vs %d", name, procs, len(par.Losses), len(seq.Losses))
		}
		for i := range par.Losses {
			if par.Losses[i] != seq.Losses[i] {
				t.Errorf("%s @GOMAXPROCS=%d: loss[%d] %v vs %v", name, procs, i, par.Losses[i], seq.Losses[i])
			}
		}
		if !bytes.Equal(parTrace, seqTrace) {
			t.Errorf("%s @GOMAXPROCS=%d: traces differ (%d vs %d bytes)", name, procs, len(parTrace), len(seqTrace))
		}
		if seq.Fault != nil {
			if par.Fault == nil || par.Fault.String() != seq.Fault.String() {
				t.Errorf("%s @GOMAXPROCS=%d: fault reports differ: %v vs %v", name, procs, par.Fault, seq.Fault)
			}
		}
		if seq.Integrity != nil {
			if par.Integrity == nil || *par.Integrity != *seq.Integrity {
				t.Errorf("%s @GOMAXPROCS=%d: integrity reports differ: %+v vs %+v", name, procs, par.Integrity, seq.Integrity)
			}
		}
	}
}

// TestParallelKernelGoldenWorkloads replays every golden-trace workload
// under both kernel modes.
func TestParallelKernelGoldenWorkloads(t *testing.T) {
	spec, err := models.ByName("cifar10-quick")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mk   func() Config
	}{
		{"scb4-real", func() Config { return goldenRealConfig(4, SCB) }},
		{"scob4-real", func() Config { return goldenRealConfig(4, SCOB) }},
		{"scobr4-real", func() Config { return goldenRealConfig(4, SCOBR) }},
		{"scb8-real", func() Config { return goldenRealConfig(8, SCB) }},
		{"scob8-real", func() Config { return goldenRealConfig(8, SCOB) }},
		{"scobr8-real", func() Config { return goldenRealConfig(8, SCOBR) }},
		{"scb8-timing", func() Config { return timingConfig(spec, 8, 64, 3) }},
		{"scob8-timing", func() Config {
			cfg := timingConfig(spec, 8, 64, 3)
			cfg.Design = SCOB
			return cfg
		}},
		{"scobrf8-timing", func() Config {
			cfg := timingConfig(spec, 8, 64, 3)
			cfg.Design = SCOBRF
			return cfg
		}},
		{"cntk8-timing", func() Config {
			cfg := timingConfig(spec, 8, 64, 3)
			cfg.Design = CNTKLike
			return cfg
		}},
		{"lmdb16-scobr", func() Config {
			cfg := timingConfig(spec, 16, 128, 3)
			cfg.Design = SCOBR
			cfg.Source = LMDBSource
			return cfg
		}},
	}
	for _, tc := range cases {
		// The real-data replays train on 4096 samples four times per
		// GOMAXPROCS point; keep quick runs quick.
		if testing.Short() && strings.HasSuffix(tc.name, "-real") {
			continue
		}
		diffRuns(t, tc.name, tc.mk)
	}
}

// TestParallelKernelFaultDrill replays a mid-run crash with elastic
// recovery under both kernel modes (fault-armed runs keep the
// sequential loop internally; forcing SimParallel must not change a
// single byte of the outcome).
func TestParallelKernelFaultDrill(t *testing.T) {
	spec, err := models.ByName("cifar10-quick")
	if err != nil {
		t.Fatal(err)
	}
	base := timingConfig(spec, 8, 64, 8)
	base.Design = SCOB
	mid := midRun(t, base, 0.5)
	diffRuns(t, "crash-recover", func() Config {
		cfg := timingConfig(spec, 8, 64, 8)
		cfg.Design = SCOB
		cfg.Faults = fault.Schedule{{At: mid, Kind: fault.Crash, Rank: 3}}
		return cfg
	})
}

// TestParallelKernelSDCDrill replays a wire-corruption drill with the
// integrity plane in recover mode under both kernel modes.
func TestParallelKernelSDCDrill(t *testing.T) {
	diffRuns(t, "sdc-recover", func() Config {
		cfg := tinyRealConfig(4, 32, 6)
		cfg.Integrity = IntegrityRecover
		cfg.Faults = fault.Schedule{{Kind: fault.CorruptWire, Src: 0, Dst: 1, N: 1}}
		return cfg
	})
}

// TestParallelKernelEngagement asserts the forced-parallel run above
// actually exercised the sharded kernel rather than silently running
// the sequential loop: a 16-rank fault-free SC-OB run must commit
// parallel batches.
func TestParallelKernelEngagement(t *testing.T) {
	spec, err := models.ByName("cifar10-quick")
	if err != nil {
		t.Fatal(err)
	}
	cfg := timingConfig(spec, 16, 128, 3)
	cfg.Design = SCOB
	cfg.SimParallel = 8
	res, st, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= 0 {
		t.Fatal("degenerate run")
	}
	batches, segments := st.k.Batches()
	if batches == 0 {
		t.Fatal("forced-parallel run committed no batches; the sharded kernel never engaged")
	}
	if segments < 2*batches {
		t.Errorf("batches carried %d segments over %d batches; want >= 2 per batch", segments, batches)
	}
	t.Logf("committed %d batches, %d segments (%.2f avg width)", batches, segments, float64(segments)/float64(batches))
}

// TestSimParallelValidation pins the config contract: negative worker
// counts are ErrConfig, 0 and 1 and N are accepted.
func TestSimParallelValidation(t *testing.T) {
	spec, _ := models.ByName("tiny")
	cfg := timingConfig(spec, 4, 16, 2)
	cfg.SimParallel = -1
	if _, err := Run(cfg); err == nil {
		t.Fatal("negative SimParallel should fail validation")
	} else if !errors.Is(err, ErrConfig) {
		t.Fatalf("negative SimParallel: got %v, want ErrConfig", err)
	}
	for _, n := range []int{0, 1, 2, 8} {
		cfg := timingConfig(spec, 4, 16, 2)
		cfg.SimParallel = n
		if _, err := Run(cfg); err != nil {
			t.Fatalf("SimParallel=%d: %v", n, err)
		}
	}
}
