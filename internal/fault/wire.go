package fault

import "scaffe/internal/sim"

// This file is the wire-perturbation side of the plane: message-level
// fates for payload landings (drop/dup/reorder/delay), partition
// blackholes, and the split-brain quorum rule that fences the minority
// side of a cut when a revocation fires during an active window.
//
// The fate decision runs at LANDING time, not send time: the mpi layer
// consults WireFate the instant a delivery or broadcast edge is about
// to complete, so every reducer topology, broadcast tree, and
// handshake sees the same fabric without per-algorithm hooks. The
// plane only decides fates and keeps counters; the mpi layer owns the
// mechanics of re-scheduling, stashing, and duplicating records.

// WireVerdict is the fate of one payload landing.
type WireVerdict int

const (
	// WireDeliver lands the payload normally.
	WireDeliver WireVerdict = iota
	// WireDrop discards the payload permanently. The waiter's deadline
	// ladder eventually escalates through the revoke path (OnTimeout's
	// loss-aware branch), so a drop can delay a run but never wedge it.
	WireDrop
	// WireDup lands the payload and re-lands a duplicate at the same
	// instant; the generation-guarded completion machinery absorbs the
	// ghost.
	WireDup
	// WireHold re-schedules the landing after the rule's hold window.
	WireHold
	// WireSwap stashes the landing until the next landing on the same
	// link passes it, swapping their order; a stash with no follow-up
	// flushes after a failsafe window.
	WireSwap
)

// wireRule is one armed drop/dup/reorder/delay event: a countdown of
// landings on a directed link, consumed in arming order.
type wireRule struct {
	kind     Kind
	src, dst int
	n        int
	hold     sim.Duration
	from     sim.Time
}

// partitionWindow is one active Partition interval. fenced latches
// once the quorum rule has run for this window, so repeated
// revocations inside one window fence at most once.
type partitionWindow struct {
	groups      [][]int
	from, until sim.Time
	fenced      bool
}

// cuts reports whether the window silences the directed link src->dst:
// both endpoints listed, in different groups. Unlisted ranks are
// unaffected.
func (pw *partitionWindow) cuts(src, dst int) bool {
	ss, ds := sideIn(pw.groups, src), sideIn(pw.groups, dst)
	return ss >= 0 && ds >= 0 && ss != ds
}

// sideIn returns the group index holding rank, or -1 when unlisted.
func sideIn(groups [][]int, rank int) int {
	for gi, g := range groups {
		for _, r := range g {
			if r == rank {
				return gi
			}
		}
	}
	return -1
}

// WireArmed reports whether any wire perturbation or partition window
// has armed. The mpi delivery hot path gates its per-landing fate
// check behind this single branch, so fault-free runs and runs with
// only rank-level faults pay nothing.
//
//scaffe:hotpath one branch per payload landing
func (pl *Plane) WireArmed() bool { return pl.wireOn }

// WireFate decides the fate of one payload landing on the directed
// link src->dst at virtual time now, and for WireHold the window to
// hold it. Partition windows are consulted first — a cut link
// blackholes regardless of per-link rules — then armed rules consume
// their landing counts in arming order.
//
//scaffe:coldpath runs only while a wire perturbation is armed; fault-free runs never reach it (gated by WireArmed)
func (pl *Plane) WireFate(src, dst int, now sim.Time) (WireVerdict, sim.Duration) {
	for _, pw := range pl.parts {
		if now >= pw.from && now < pw.until && pw.cuts(src, dst) {
			pl.report.PartitionDrops++
			pl.trafficLost = true
			return WireDrop, 0
		}
	}
	for _, r := range pl.wireRules {
		if r.n <= 0 || r.src != src || r.dst != dst || now < r.from {
			continue
		}
		r.n--
		switch r.kind {
		case Drop:
			pl.report.Drops++
			pl.trafficLost = true
			return WireDrop, 0
		case Dup:
			pl.report.Dups++
			return WireDup, 0
		case Reorder:
			pl.report.Reorders++
			return WireSwap, 0
		case Delay:
			pl.report.Delays++
			return WireHold, r.hold
		}
	}
	return WireDeliver, 0
}

// ReorderFailsafe returns the window after which a stashed (reordered)
// landing with no follow-up flushes itself: the ladder's plateau, so
// the flush always lands before any waiter can escalate.
func (pl *Plane) ReorderFailsafe() sim.Duration { return pl.backoff.Ceiling() }

// NoteStaleDissolved counts one delivery dissolved by epoch fencing.
func (pl *Plane) NoteStaleDissolved() { pl.report.StaleDissolved++ }

// activePartition returns the partition window covering now, if any.
func (pl *Plane) activePartition(now sim.Time) *partitionWindow {
	for _, pw := range pl.parts {
		if now >= pw.from && now < pw.until {
			return pw
		}
	}
	return nil
}

// scheduleQuorum arms the quorum decision when a revocation fires
// inside an active, not-yet-fenced partition window. The decision is
// scheduled into kernel context rather than run inline: it kills
// ranks, and the revocation often originates inside one of their own
// deadline waits.
//
//scaffe:coldpath runs once per revocation, a rare fault event, not steady state
func (pl *Plane) scheduleQuorum(now sim.Time) {
	pw := pl.activePartition(now)
	if pw == nil || pw.fenced {
		return
	}
	pl.k.At(now, pl.enforceQuorum)
}

// enforceQuorum applies the split-brain rule to the partition window
// active at the current instant: only the side holding the root AND at
// least half the previous world continues; every other listed, alive
// rank is fenced — killed with a Partitioned recovery record and
// re-entered through the join desk once the window heals. Without a
// quorate side no rank may continue (two sides could otherwise commit
// diverging parameter histories), so everyone is fenced and the run
// ends ErrUnrecovered.
//
//scaffe:coldpath the quorum decision runs at most once per partition window, on a revocation inside it
func (pl *Plane) enforceQuorum() {
	now := pl.k.Now()
	pw := pl.activePartition(now)
	if pw == nil || pw.fenced || !pl.revoked {
		return
	}
	pw.fenced = true
	rootSide := sideIn(pw.groups, pl.rootRank)
	if rootSide < 0 {
		// The root is unlisted: every rank still reaches it, so there
		// is no ambiguity for the quorum rule to resolve.
		return
	}
	// The previous world is everyone not yet shrunk out; the continuing
	// side is the root's group plus unlisted ranks (they reach both
	// sides, and follow the root).
	prev, cont := 0, 0
	for i := 0; i < pl.total; i++ {
		if !pl.excluded[i] {
			prev++
		}
		if pl.Alive(i) && !pl.departed[i] {
			if s := sideIn(pw.groups, i); s == rootSide || s < 0 {
				cont++
			}
		}
	}
	quorate := pl.Alive(pl.rootRank) && 2*cont >= prev
	for i := 0; i < pl.total; i++ {
		if !pl.Alive(i) || pl.departed[i] {
			continue
		}
		s := sideIn(pw.groups, i)
		if quorate && (s == rootSide || s < 0) {
			continue
		}
		pl.fence(i, now, pw.until)
	}
	pl.checkRelease()
}

// fence parks one rank cut off by the quorum rule: it is killed like a
// crash (the surviving side's deadline waits detect it instantly — the
// record is pre-stamped), and its re-entry through the join desk is
// scheduled for the heal instant. A fence landing before the current
// recovery round commits is deferred by startJoin's rejoinQueued path.
func (pl *Plane) fence(rank int, now, healAt sim.Time) {
	pl.report.Fenced++
	pl.failed[rank] = true
	pl.failRec[rank] = Recovery{Rank: rank, Kind: Partitioned, FailedAt: now, DetectedAt: now}
	pl.applier.KillRank(rank, Partitioned)
	if pl.round != nil && pl.round.arrived[rank] {
		pl.round.arrived[rank] = false
		pl.round.count--
	}
	pl.k.At(healAt, func() { pl.startJoin(rank) })
}
