// Package mpi implements the subset of CUDA-aware MPI that S-Caffe
// co-designs against, on top of the discrete-event simulator: ranks
// with tag-matched point-to-point messaging (blocking and
// non-blocking), communicators with sub-grouping, and a
// hardware-offloaded non-blocking broadcast engine (MPI_Ibcast).
//
// Two runtime asymmetries from the paper are reproduced faithfully:
//
//   - Ibcast progresses asynchronously (network-offloaded) without the
//     rank's thread, so it genuinely overlaps with compute.
//   - Ireduce is CPU-progressed: it makes no progress until Wait, so a
//     naive non-blocking reduce pipeline yields no overlap (Section
//     4.2 of the paper). See package coll for the Ireduce shim.
package mpi

import (
	"fmt"

	"scaffe/internal/fault"
	"scaffe/internal/gpu"
	"scaffe/internal/sim"
	"scaffe/internal/topology"
)

// World owns every rank of one simulated MPI job.
type World struct {
	K       *sim.Kernel
	Cluster *topology.Cluster
	Ranks   []*Rank

	// Fault, when non-nil, arms failure detection: every blocking
	// wait becomes deadline-sliced and can revoke the communicator
	// (see fault.go). Nil runs the exact fault-free code paths.
	Fault *fault.Plane

	// Integrity, when non-nil with a mode other than IntegrityOff,
	// arms per-chunk checksums on RecvSummed receives and broadcast
	// edges (see integrity.go). Nil runs the exact seed code paths.
	Integrity *Integrity

	nextCommID int
	bcastOps   map[bcastKey]*bcastOp

	// epoch is the membership epoch: bumped by ShrinkComm/GrowComm
	// (never by plain sub-communicator construction). Every delivery
	// and broadcast op is stamped with the epoch of its creation, and
	// a landing whose stamp is stale dissolves instead of touching
	// post-rebuild state — the fencing that makes held, delayed, and
	// duplicated wire traffic safe across recoveries.
	epoch int

	// held stages at most one stashed (reordered) landing per directed
	// link: the next landing on the link releases it behind itself,
	// and a failsafe flush bounds how long it can sit.
	held map[linkKey]heldRec

	// Free lists for pooled hot-path records shared across ranks.
	delPool   []*delivery
	bcastPool []*bcastOp
	edgePool  []*bcastEdge
}

// NewWorld creates an n-rank world on cluster c, one rank per CUDA
// device in block placement order.
func NewWorld(c *topology.Cluster, n int) *World {
	if n > c.TotalGPUs() {
		panic(fmt.Sprintf("mpi: %d ranks requested but cluster has %d GPUs", n, c.TotalGPUs()))
	}
	w := &World{K: c.K, Cluster: c, bcastOps: make(map[bcastKey]*bcastOp)}
	for i := 0; i < n; i++ {
		w.Ranks = append(w.Ranks, &Rank{
			W:          w,
			ID:         i,
			Dev:        gpu.NewDevice(c, c.DeviceForRank(i)),
			posted:     make(map[matchKey]reqQueue),
			unexpected: make(map[matchKey]psQueue),
		})
	}
	return w
}

// getDelivery draws a transfer-landing record from the world free
// list; the cold miss path allocates.
//
//scaffe:hotpath
func (w *World) getDelivery() *delivery {
	n := len(w.delPool)
	if n == 0 {
		return newDelivery()
	}
	d := w.delPool[n-1]
	w.delPool[n-1] = nil
	w.delPool = w.delPool[:n-1]
	return d
}

// newDelivery is getDelivery's pool-miss path.
//
//scaffe:coldpath pool-miss construction; steady state hits the free list
func newDelivery() *delivery { return &delivery{} }

func (w *World) putDelivery(d *delivery) {
	*d = delivery{}
	//scaffe:nolint hotpath pool release; append reuses capacity freed by the matching get
	w.delPool = append(w.delPool, d)
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.Ranks) }

// Epoch returns the current membership epoch (see the epoch field).
func (w *World) Epoch() int { return w.epoch }

// bumpEpoch advances the membership epoch at a ShrinkComm/GrowComm
// boundary. Pre-rebuild broadcast ops are dropped from the match table
// WITHOUT pooling their records: in-flight edges (held, delayed, or
// simply late) may still reference them, and will dissolve against the
// stale epoch when they land. Leaking a handful of op records per
// recovery is the price of never recycling one under a live reference.
func (w *World) bumpEpoch() {
	w.epoch++
	for k := range w.bcastOps {
		delete(w.bcastOps, k)
	}
}

// Spawn starts every rank's main function as a simulated process. The
// caller then drives the kernel with K.Run().
func (w *World) Spawn(main func(r *Rank)) {
	for _, r := range w.Ranks {
		rank := r
		rank.Proc = w.K.Spawn(fmt.Sprintf("rank%d", rank.ID), func(p *sim.Proc) {
			main(rank)
		})
	}
}

// RespawnRank gives a previously failed rank a fresh main proc running
// main — the join path's counterpart of Spawn, callable while the
// kernel runs. The rank's matching state from its previous life is
// dropped (posted receives, unexpected sends, helper threads): a
// respawned rank is only addressable through a communicator built
// after it rejoined, so nothing stale can ever match.
func (w *World) RespawnRank(id int, main func(r *Rank)) {
	rank := w.Ranks[id]
	rank.KillThreads()
	rank.posted = make(map[matchKey]reqQueue)
	rank.unexpected = make(map[matchKey]psQueue)
	rank.lives++
	rank.Proc = w.K.Spawn(fmt.Sprintf("rank%d.j%d", rank.ID, rank.lives), func(p *sim.Proc) {
		main(rank)
	})
}

// Run spawns all ranks on main and runs the simulation to completion,
// returning the final virtual time.
func (w *World) Run(main func(r *Rank)) (sim.Time, error) {
	w.Spawn(main)
	if err := w.K.Run(); err != nil {
		return w.K.Now(), err
	}
	return w.K.Now(), nil
}

// Rank is one MPI process bound to one GPU.
type Rank struct {
	W    *World
	ID   int
	Dev  *gpu.Device
	Proc *sim.Proc

	posted     map[matchKey]reqQueue
	unexpected map[matchKey]psQueue

	// Free lists for the rank's pooled hot-path records.
	reqPool []*Request
	psPool  []*pendingSend
	sumPool []*Summed

	// threads tracks live helper procs so a crash (or recovery) can
	// fail-stop the whole rank, not just its main thread.
	threads []*sim.Proc

	// lives counts RespawnRank rebirths, keeping respawned proc names
	// unique for traces and diagnostics.
	lives int
}

// Now returns the current virtual time.
func (r *Rank) Now() sim.Time { return r.W.K.Now() }

// Sleep advances the rank's virtual time (models local CPU work).
func (r *Rank) Sleep(d sim.Duration) { r.Proc.Sleep(d) }

// SpawnThread starts an additional simulated thread inside this rank's
// process (the helper thread of SC-OBR). The thread shares the rank's
// state and synchronizes with the main thread via sim.Flag.
func (r *Rank) SpawnThread(name string, fn func(p *sim.Proc)) *sim.Proc {
	p := r.W.K.Spawn(fmt.Sprintf("rank%d.%s", r.ID, name), fn)
	// Prune finished threads so the tracking list stays bounded over
	// many iterations.
	live := r.threads[:0]
	for _, t := range r.threads {
		if !t.Finished() {
			live = append(live, t)
		}
	}
	r.threads = append(live, p)
	return p
}
