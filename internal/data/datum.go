package data

import (
	"encoding/binary"
	"fmt"
	"math"

	"scaffe/internal/layers"
	"scaffe/internal/lmdb"
)

// This file wires the functional LMDB store (package lmdb) into the
// training data plane: samples serialize to a Datum-like binary
// record, datasets can be materialized into a store file, and a
// StoreDataset reads them back — so real-compute training can run off
// an actual on-disk database, exactly as Caffe does.

const datumMagic = uint32(0x5343_4446) // "SCDF"

// EncodeSample serializes a sample: magic, label, element count, then
// little-endian float32s.
func EncodeSample(s Sample) []byte {
	buf := make([]byte, 12+4*len(s.Image))
	binary.LittleEndian.PutUint32(buf[0:], datumMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(s.Label))
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(s.Image)))
	for i, v := range s.Image {
		binary.LittleEndian.PutUint32(buf[12+4*i:], math.Float32bits(v))
	}
	return buf
}

// DecodeSample parses an encoded sample record.
func DecodeSample(b []byte) (Sample, error) {
	if len(b) < 12 {
		return Sample{}, fmt.Errorf("data: datum too short (%d bytes)", len(b))
	}
	if binary.LittleEndian.Uint32(b[0:]) != datumMagic {
		return Sample{}, fmt.Errorf("data: bad datum magic")
	}
	label := int(binary.LittleEndian.Uint32(b[4:]))
	n := int(binary.LittleEndian.Uint32(b[8:]))
	if len(b) != 12+4*n {
		return Sample{}, fmt.Errorf("data: datum length %d does not match %d elements", len(b), n)
	}
	img := make([]float32, n)
	for i := range img {
		img[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[12+4*i:]))
	}
	return Sample{Image: img, Label: label}, nil
}

// datumKey formats the cursor-ordered key of sample i (Caffe's
// zero-padded convention).
func datumKey(i int) string { return fmt.Sprintf("%08d", i) }

// BuildStore materializes the first n samples of ds into an LMDB-style
// store file at path.
func BuildStore(path string, ds Dataset, n int) error {
	if n > ds.Len() {
		n = ds.Len()
	}
	w, err := lmdb.Create(path)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if err := w.Put([]byte(datumKey(i)), EncodeSample(ds.At(i))); err != nil {
			w.Close()
			return fmt.Errorf("data: store sample %d: %w", i, err)
		}
	}
	return w.Close()
}

// StoreDataset is a Dataset reading samples from an on-disk store. It
// is safe for concurrent At calls (the underlying reader uses ReadAt).
type StoreDataset struct {
	name    string
	r       *lmdb.Reader
	shape   layers.Shape
	classes int
}

// OpenStore opens a store built by BuildStore.
func OpenStore(path string, shape layers.Shape, classes int) (*StoreDataset, error) {
	r, err := lmdb.Open(path)
	if err != nil {
		return nil, err
	}
	return &StoreDataset{name: "lmdb:" + path, r: r, shape: shape, classes: classes}, nil
}

// Name implements Dataset.
func (d *StoreDataset) Name() string { return d.name }

// Len implements Dataset.
func (d *StoreDataset) Len() int { return d.r.Len() }

// Shape implements Dataset.
func (d *StoreDataset) Shape() layers.Shape { return d.shape }

// Classes implements Dataset.
func (d *StoreDataset) Classes() int { return d.classes }

// At implements Dataset. Decode failures panic: a corrupt training
// database is not recoverable mid-run (Caffe aborts likewise).
//
//scaffe:coldpath store-backed decode copies each record out of the file by design; the zero-alloc contract covers the synthetic/timing path
func (d *StoreDataset) At(i int) Sample {
	raw, err := d.r.Get(d.r.KeyAt(i))
	if err != nil {
		panic(fmt.Sprintf("data: store read %d: %v", i, err))
	}
	s, err := DecodeSample(raw)
	if err != nil {
		panic(fmt.Sprintf("data: store decode %d: %v", i, err))
	}
	return s
}

// Close releases the store file.
func (d *StoreDataset) Close() error { return d.r.Close() }
