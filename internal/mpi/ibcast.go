package mpi

import (
	"fmt"
	"math"

	"scaffe/internal/gpu"
	"scaffe/internal/sim"
	"scaffe/internal/topology"
)

// The Ibcast engine models MPI-3 non-blocking broadcast with
// network/hardware offload: once every participating rank has posted
// its call, data moves down a binomial tree driven entirely by kernel
// callbacks — the rank processes keep computing, which is what gives
// SC-OB its overlap. Matching across ranks follows MPI semantics:
// the i-th Ibcast call on a communicator at every rank belongs to the
// same operation.

type bcastKey struct {
	comm int
	seq  int
}

type bcastOp struct {
	c     *Comm
	key   bcastKey
	root  int // group rank
	bytes int64
	mode  topology.TransferMode

	posted  []bool
	postBuf []*gpu.Buffer
	ready   []bool
	readyAt []sim.Time
	reqs    []*Request

	rootSends     int // children edges not yet scheduled from the root
	rootLastSend  sim.Time
	rootCompleted bool
}

// Ibcast posts this rank's participation in a non-blocking broadcast
// rooted at group rank `root` of comm c. On the root, buf supplies the
// data; elsewhere it receives it. The returned request completes when
// this rank's buffer is ready for reuse (root: all its tree sends
// done; non-root: data arrived).
func (r *Rank) Ibcast(c *Comm, root int, buf *gpu.Buffer, mode topology.TransferMode) *Request {
	r.ftCheck()
	me := c.Rank(r)
	key := bcastKey{comm: c.id, seq: c.bcastSeq[me]}
	c.bcastSeq[me]++

	op := r.W.bcastOps[key]
	if op == nil {
		n := c.Size()
		op = &bcastOp{
			c:       c,
			key:     key,
			root:    root,
			bytes:   buf.Bytes,
			mode:    mode,
			posted:  make([]bool, n),
			postBuf: make([]*gpu.Buffer, n),
			ready:   make([]bool, n),
			readyAt: make([]sim.Time, n),
			reqs:    make([]*Request, n),
		}
		r.W.bcastOps[key] = op
	}
	if op.root != root {
		panic(fmt.Sprintf("mpi: Ibcast root mismatch on comm %d op %d: %d vs %d", c.id, key.seq, op.root, root))
	}
	if op.bytes != buf.Bytes {
		panic(fmt.Sprintf("mpi: Ibcast size mismatch on comm %d op %d: %d vs %d bytes", c.id, key.seq, op.bytes, buf.Bytes))
	}

	req := &Request{Done: r.W.K.NewCompletion(), buf: buf}
	op.posted[me] = true
	op.postBuf[me] = buf
	op.reqs[me] = req

	if me == root {
		op.rootSends = len(op.children(root))
		op.markReady(r.W, me, r.Now())
		if op.rootSends == 0 {
			req.Done.Fire()
			op.rootCompleted = true
		}
	} else {
		// A newly posted child may unblock a ready parent's edge.
		parent := op.parent(me)
		if op.ready[parent] {
			op.scheduleEdge(r.W, parent, me)
		}
	}
	if op.complete() {
		delete(r.W.bcastOps, key)
	}
	return req
}

// Bcast is the blocking broadcast: Ibcast + Wait.
func (r *Rank) Bcast(c *Comm, root int, buf *gpu.Buffer, mode topology.TransferMode) {
	r.Wait(r.Ibcast(c, root, buf, mode))
}

// relative converts a group rank to root-relative order.
func (op *bcastOp) relative(groupRank int) int {
	n := op.c.Size()
	return (groupRank - op.root + n) % n
}

func (op *bcastOp) absolute(rel int) int {
	n := op.c.Size()
	return (rel + op.root) % n
}

// parent returns the binomial-tree parent of a non-root group rank.
func (op *bcastOp) parent(groupRank int) int {
	rel := op.relative(groupRank)
	for mask := 1; mask < op.c.Size(); mask <<= 1 {
		if rel&mask != 0 {
			return op.absolute(rel - mask)
		}
	}
	panic("mpi: bcast parent of root")
}

// children returns the binomial-tree children of a group rank, in the
// send order MPI uses (largest subtree first).
func (op *bcastOp) children(groupRank int) []int {
	n := op.c.Size()
	rel := op.relative(groupRank)
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			break
		}
		mask <<= 1
	}
	var kids []int
	for m := mask >> 1; m > 0; m >>= 1 {
		if rel+m < n {
			kids = append(kids, op.absolute(rel+m))
		}
	}
	return kids
}

// markReady records that a rank's buffer holds the data as of time t
// and schedules edges to every already-posted child.
func (op *bcastOp) markReady(w *World, groupRank int, t sim.Time) {
	op.ready[groupRank] = true
	op.readyAt[groupRank] = t
	for _, child := range op.children(groupRank) {
		if op.posted[child] {
			op.scheduleEdge(w, groupRank, child)
		}
	}
}

// scheduleEdge books the parent->child transfer (parent data and child
// buffer are both available) and wires up delivery.
func (op *bcastOp) scheduleEdge(w *World, parent, child int) {
	from := op.c.rankAt(parent)
	to := op.c.rankAt(child)
	at := op.readyAt[parent]
	if pt := w.K.Now(); pt > at {
		at = pt
	}
	_, end := w.Cluster.Transfer(at, from.Dev.ID, to.Dev.ID, op.bytes, op.mode)
	isRootEdge := parent == op.root
	w.K.At(end, func() {
		if src, dst := op.postBuf[parent], op.postBuf[child]; src != nil && dst != nil {
			dst.CopyFrom(src)
		}
		if w.integrityArmed() {
			op.verifyEdge(w, parent, child, 0, isRootEdge)
			return
		}
		op.commitEdge(w, child, isRootEdge)
	})
}

// commitEdge records a delivered parent->child edge: the child's
// request fires, its buffer becomes a source for its own children, and
// the root's request fires once its last child edge lands.
func (op *bcastOp) commitEdge(w *World, child int, isRootEdge bool) {
	op.reqs[child].Done.Fire()
	op.markReady(w, child, w.K.Now())
	if isRootEdge {
		op.rootSends--
		if op.rootSends == 0 && !op.rootCompleted {
			op.rootCompleted = true
			op.reqs[op.root].Done.Fire()
		}
	}
	if op.complete() {
		delete(w.bcastOps, op.key)
	}
}

// verifyEdge is commitEdge behind a checksum: it applies any armed
// wire corruption on the link, compares the child's payload against
// the parent's, and either commits, retransmits (recover mode, within
// budget), or escalates by revoking the communicator. It runs in
// kernel context, so escalation cannot panic — the waiting ranks
// observe the revocation through their deadline-sliced waits.
func (op *bcastOp) verifyEdge(w *World, parent, child, try int, isRootEdge bool) {
	integ := w.Integrity
	from, to := op.c.rankAt(parent), op.c.rankAt(child)
	dst := op.postBuf[child]
	detected := false
	if integ.WireCorrupt != nil && integ.WireCorrupt(from.ID, to.ID) {
		detected = true // timing mode: poison marker only
		if dst != nil && len(dst.Data) > 0 {
			dst.Data[0] = math.Float32frombits(math.Float32bits(dst.Data[0]) ^ 1<<30)
		}
	}
	if dst != nil && dst.Data != nil {
		if src := op.postBuf[parent]; src != nil && src.Data != nil {
			detected = src.Checksum() != dst.Checksum()
		}
	}
	if !detected {
		integ.Verified++
		op.commitEdge(w, child, isRootEdge)
		return
	}
	integ.Detected++
	if integ.Mode == IntegrityDetect {
		// Observe-only: the corrupted payload flows down the tree.
		op.commitEdge(w, child, isRootEdge)
		return
	}
	if try >= integ.RetryBudget {
		integ.Escalations++
		if pl := w.Fault; pl != nil {
			// Leave the edge uncommitted: every rank blocked on this
			// broadcast times out against the revoked plane and
			// unwinds into the recovery rendezvous.
			pl.Revoke()
			return
		}
		// No fault plane to escalate to; deliver the damaged payload
		// rather than deadlock the world.
		op.commitEdge(w, child, isRootEdge)
		return
	}
	integ.Retransmits++
	op.retransmitEdge(w, parent, child, try+1, isRootEdge)
}

// retransmitEdge books a fresh parent->child transfer of the same
// payload and re-verifies on landing. The parent's buffer is stable
// for the life of the op, so re-copying it restores the clean bytes.
func (op *bcastOp) retransmitEdge(w *World, parent, child, try int, isRootEdge bool) {
	from, to := op.c.rankAt(parent), op.c.rankAt(child)
	_, end := w.Cluster.Transfer(w.K.Now(), from.Dev.ID, to.Dev.ID, op.bytes, op.mode)
	w.K.At(end, func() {
		if src, dst := op.postBuf[parent], op.postBuf[child]; src != nil && dst != nil {
			dst.CopyFrom(src)
		}
		op.verifyEdge(w, parent, child, try, isRootEdge)
	})
}

// complete reports whether every rank has posted and every request has
// fired, so the op record can be reclaimed.
func (op *bcastOp) complete() bool {
	for i := range op.posted {
		if !op.posted[i] || op.reqs[i] == nil || !op.reqs[i].Done.Fired() {
			return false
		}
	}
	return true
}
