package mpi

import (
	"testing"

	"scaffe/internal/gpu"
	"scaffe/internal/sim"
	"scaffe/internal/topology"
)

func TestGrowCommMembership(t *testing.T) {
	w := newWorld(t, 2, 2, 4)
	shrunk := w.ShrinkComm([]int{0, 1, 3})
	if shrunk.Size() != 3 || shrunk.GroupRank(2) != -1 {
		t.Fatalf("shrunk comm: size %d, rank2 group %d", shrunk.Size(), shrunk.GroupRank(2))
	}
	grown := w.GrowComm([]int{0, 1, 2, 3})
	if grown.Size() != 4 {
		t.Fatalf("grown comm size = %d, want 4", grown.Size())
	}
	for i := 0; i < 4; i++ {
		if grown.WorldRank(i) != i || grown.GroupRank(i) != i {
			t.Errorf("grown comm rank %d maps to world %d / group %d", i, grown.WorldRank(i), grown.GroupRank(i))
		}
	}
	// The member list is copied, not aliased.
	members := []int{0, 2}
	g2 := w.GrowComm(members)
	members[0] = 99
	if g2.WorldRank(0) != 0 || g2.WorldRank(1) != 2 {
		t.Errorf("grow comm aliased its input: world ranks %d, %d", g2.WorldRank(0), g2.WorldRank(1))
	}
}

// TestRespawnRankFreshLife kills a rank mid-run and respawns it with a
// new main: the second life must run and be reachable through a
// communicator built for the grown membership.
func TestRespawnRankFreshLife(t *testing.T) {
	w := newWorld(t, 2, 1, 2)
	k := w.K
	grown := w.GrowComm([]int{0, 1})
	var got float32
	var secondLife bool
	w.Spawn(func(r *Rank) {
		switch r.ID {
		case 0:
			buf := gpu.NewDataBuffer(1)
			r.Recv(grown, 1, 9, buf)
			got = buf.Data[0]
		case 1:
			// First life: killed mid-sleep, long before it would wake.
			r.Sleep(sim.Second)
			t.Error("first life survived its kill")
		}
	})
	k.At(5, func() { w.Ranks[1].KillAll() })
	k.At(10, func() {
		w.RespawnRank(1, func(r *Rank) {
			secondLife = true
			r.Send(grown, 0, 9, gpu.WrapData([]float32{7}), topology.ModeAuto)
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !secondLife {
		t.Fatal("respawned main never ran")
	}
	if got != 7 {
		t.Errorf("rank 0 received %v from the respawned rank, want 7", got)
	}
	if w.Ranks[1].lives != 1 {
		t.Errorf("lives = %d, want 1", w.Ranks[1].lives)
	}
}

// TestJoinAckHandshake pins the join handshake pair: the joiner's
// IjoinAck must match the root's IjoinAckRecv, and both requests reach
// Wait.
func TestJoinAckHandshake(t *testing.T) {
	w := newWorld(t, 2, 1, 2)
	c := w.WorldComm()
	var rootSaw float32
	_, err := w.Run(func(r *Rank) {
		if r.ID == 0 {
			buf := gpu.NewDataBuffer(1)
			r.Wait(r.IjoinAckRecv(c, 1, 42, buf))
			rootSaw = buf.Data[0]
		} else {
			r.Wait(r.IjoinAck(c, 42, gpu.WrapData([]float32{3})))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rootSaw != 3 {
		t.Errorf("root received %v, want 3", rootSaw)
	}
}
