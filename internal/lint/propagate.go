package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// Contract propagation (DESIGN.md §15): `//scaffe:hotpath` and
// `//scaffe:parallel` are obligations on everything the annotated
// function may reach, not just on its own frame. NewProgram builds the
// module call graph once and floods both obligations over it; the
// passes then check every obligated node, naming the annotated root in
// the diagnostic ("[hotpath via sched.Graph.runNode → coll.Ring.Reduce]")
// so a finding three calls deep is still actionable.
//
// The escape hatch is `//scaffe:coldpath <reason>`:
//
//   - in a function's doc comment, the whole function is a declared
//     slow path — obligations stop at its boundary (its body is not
//     checked, and nothing propagates through it);
//   - on its own line inside a body, the call(s) on that line and the
//     next are a deliberate slow-path departure — the edge exists in
//     the graph but carries no obligation.
//
// Like nolint, the reason is mandatory; a bare directive is itself a
// diagnostic, so the suppression inventory stays reviewable.

const coldpathDirective = "//scaffe:coldpath"

var coldpathRe = regexp.MustCompile(`^//scaffe:coldpath(?:\s+(.*\S))?\s*$`)

// Program is the analyzed module: the loaded packages, the call graph
// over them, and the propagated obligation sets.
type Program struct {
	Pkgs  []*Pkg
	Graph *CallGraph

	// Hot and Par map every node holding the obligation to the call
	// chain from an annotated root to the node, inclusive. Directly
	// annotated nodes map to their own name.
	Hot map[*FuncNode]string
	Par map[*FuncNode]string

	// hygiene collects directive-grammar violations (coldpath without a
	// reason), reported under the nolint pass.
	hygiene []hygieneIssue
}

type hygieneIssue struct {
	pkg *Pkg
	pos token.Pos
	msg string
}

// NewProgram builds the call graph and floods the contracts.
func NewProgram(pkgs []*Pkg) *Program {
	p := &Program{
		Pkgs:  pkgs,
		Graph: buildCallGraph(pkgs),
		Hot:   make(map[*FuncNode]string),
		Par:   make(map[*FuncNode]string),
	}
	// hotpath flows through every non-cold edge: a stage guard affects
	// who runs the code, not how hot it is. parallel stops at serial
	// edges — a stage-guarded or post-Exclusive call site cannot run
	// speculatively.
	p.propagate(p.Hot, func(n *FuncNode) bool { return n.Hot }, true)
	p.propagate(p.Par, func(n *FuncNode) bool { return n.Par }, false)
	p.collectHygiene()
	return p
}

// propagate floods one obligation from its directly annotated roots.
func (p *Program) propagate(out map[*FuncNode]string, direct func(*FuncNode) bool, followSerial bool) {
	var queue []*FuncNode
	for _, n := range p.Graph.Nodes {
		if direct(n) && n.ColdReason == "" {
			out[n] = n.Name
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.edges {
			if e.cold || (e.serial && !followSerial) {
				continue
			}
			t := e.to
			if t.ColdReason != "" {
				continue
			}
			if _, seen := out[t]; seen {
				continue
			}
			out[t] = out[n] + " → " + t.Name
			queue = append(queue, t)
		}
	}
}

// chainSuffix renders the "via" suffix for a propagated (not directly
// annotated) obligation, or "".
func chainSuffix(kind, chain string, direct bool) string {
	if direct || chain == "" {
		return ""
	}
	return " [" + kind + " via " + chain + "]"
}

// coldpathReason extracts a declaration-level coldpath reason from fd's
// doc comment, or "".
func coldpathReason(fd *ast.FuncDecl) string {
	if fd.Doc == nil {
		return ""
	}
	for _, c := range fd.Doc.List {
		if m := coldpathRe.FindStringSubmatch(c.Text); m != nil {
			if m[1] != "" {
				return m[1]
			}
			// Bare directive: still honored so a finding is not doubly
			// reported; the missing reason is flagged by hygiene.
			return "(unreasoned)"
		}
	}
	return ""
}

// coldCallLines returns the source lines of n's file on which call-site
// coldpath directives suppress obligation flow: the directive's own
// line and the one after it, matching nolint's reach.
func coldCallLines(pkg *Pkg, n *FuncNode) map[int]bool {
	f := fileOf(pkg, n.Pos())
	if f == nil {
		return nil
	}
	var lines map[int]bool
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, coldpathDirective) {
				continue
			}
			if lines == nil {
				lines = make(map[int]bool)
			}
			line := pkg.Fset.Position(c.Pos()).Line
			lines[line] = true
			lines[line+1] = true
		}
	}
	return lines
}

// fileOf locates the parsed file containing pos.
func fileOf(pkg *Pkg, pos token.Pos) *ast.File {
	for _, f := range pkg.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// collectHygiene scans every comment of the load for malformed coldpath
// directives.
func (p *Program) collectHygiene() {
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := coldpathRe.FindStringSubmatch(c.Text)
					if m == nil {
						if strings.HasPrefix(c.Text, coldpathDirective) {
							p.hygiene = append(p.hygiene, hygieneIssue{pkg, c.Pos(),
								"malformed //scaffe:coldpath directive"})
						}
						continue
					}
					if m[1] == "" {
						p.hygiene = append(p.hygiene, hygieneIssue{pkg, c.Pos(),
							"//scaffe:coldpath requires a reason, like nolint"})
					}
				}
			}
		}
	}
}
