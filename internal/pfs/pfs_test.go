package pfs

import (
	"testing"

	"scaffe/internal/sim"
)

func TestReadSpreadScalesWithBytes(t *testing.T) {
	read := func(bytes int64) sim.Duration {
		k := sim.New()
		fs := Default(k)
		var took sim.Duration
		k.Spawn("c", func(p *sim.Proc) {
			before := p.Now()
			fs.ReadSpread(p, bytes, 1)
			took = p.Now() - before
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return took
	}
	small := read(1 << 20)
	large := read(1 << 30)
	if large <= small {
		t.Errorf("1GB read (%v) should cost more than 1MB (%v)", large, small)
	}
}

func TestClientBandwidthCap(t *testing.T) {
	k := sim.New()
	fs := New(k, 64, 3e9, 1e9) // slow client link
	var took sim.Duration
	k.Spawn("c", func(p *sim.Proc) {
		before := p.Now()
		fs.ReadSpread(p, 1<<30, 1)
		took = p.Now() - before
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 1 GB at 1 GB/s client cap ≈ 1.07s regardless of 192 GB/s of OSTs.
	if took < 1*sim.Second {
		t.Errorf("client cap ignored: read took %v", took)
	}
}

func TestAggregateBandwidthShared(t *testing.T) {
	// Many clients reading simultaneously share the OST pool: total
	// time grows once aggregate bandwidth saturates.
	finish := func(clients int) sim.Time {
		k := sim.New()
		fs := New(k, 4, 1e9, 10e9) // 4 GB/s aggregate
		var latest sim.Time
		for i := 0; i < clients; i++ {
			k.Spawn("c", func(p *sim.Proc) {
				fs.ReadSpread(p, 1<<28, 1) // 256 MB each
				if p.Now() > latest {
					latest = p.Now()
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return latest
	}
	one := finish(1)
	eight := finish(8)
	if eight < 6*one {
		t.Errorf("8 clients on a saturated pool finished in %v vs single %v", eight, one)
	}
}

func TestReadFilePinsOneOST(t *testing.T) {
	k := sim.New()
	fs := New(k, 8, 1e9, 10e9)
	done := false
	k.Spawn("c", func(p *sim.Proc) {
		fs.ReadFile(p, 5, 1<<20)
		fs.ReadFile(p, 5, 1<<20) // same OST: serialized
		done = true
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("reads did not finish")
	}
	busy := 0
	for _, ost := range fs.OSTs {
		if ost.BusyTotal() > 0 {
			busy++
		}
	}
	if busy != 1 {
		t.Errorf("single-file reads touched %d OSTs, want 1", busy)
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero OSTs")
		}
	}()
	New(sim.New(), 0, 1e9, 1e9)
}
