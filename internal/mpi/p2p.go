package mpi

import (
	"fmt"

	"scaffe/internal/gpu"
	"scaffe/internal/sim"
	"scaffe/internal/topology"
)

// EagerLimit is the message size up to which sends complete locally
// without waiting for the receiver (eager protocol); larger messages
// use rendezvous and complete only when the transfer finishes.
const EagerLimit = 64 << 10

type matchKey struct {
	comm int
	src  int // world rank of the sender
	tag  int
}

type pendingSend struct {
	from   *Rank
	buf    *gpu.Buffer
	mode   topology.TransferMode
	sentAt sim.Time
	req    *Request
}

// Request tracks a non-blocking operation. Done fires when the
// operation completes (buffer reusable for sends, data delivered for
// receives).
type Request struct {
	Done *sim.Completion
	buf  *gpu.Buffer
	// deferred, when non-nil, is executed inside Wait — used for
	// CPU-progressed operations like Ireduce.
	deferred func()
	// summed, when non-nil, records the delivered payload's checksum
	// for the integrity plane (see RecvSummed).
	summed *Summed
}

// Wait blocks the rank until the request completes. For deferred
// (CPU-progressed) requests this is where all the work happens. With
// a fault plane armed the wait is deadline-sliced and may panic with
// Revoked{} if a rank failure is detected (see fault.go).
func (r *Rank) Wait(req *Request) {
	if req.deferred != nil {
		fn := req.deferred
		req.deferred = nil
		fn()
		req.Done.Fire()
		return
	}
	if r.W.Fault == nil {
		r.Proc.Wait(req.Done)
		return
	}
	r.waitFT(r.Proc, req.Done)
}

// WaitAll waits for every request in order.
func (r *Rank) WaitAll(reqs ...*Request) {
	for _, req := range reqs {
		r.Wait(req)
	}
}

// Test reports whether the request has completed without blocking.
// Deferred requests never complete under Test (CPU progression
// requires Wait), which is exactly the paper's complaint about NBC
// reductions.
func (req *Request) Test() bool { return req.deferred == nil && req.Done.Fired() }

// OnComplete registers fn to run (in kernel context) when the request
// completes; if it already completed, fn is scheduled immediately.
// Deferred (CPU-progressed) requests complete only inside Wait, so
// their hooks fire there — the same asymmetry the rest of the runtime
// models. The scheduler uses these hooks for node readiness and for
// recording wire-level spans of offloaded operations.
func (req *Request) OnComplete(fn func()) { req.Done.OnFire(fn) }

// CompletedAt returns the virtual time at which the request completed;
// only meaningful once Test (or a hook) reports completion.
func (req *Request) CompletedAt() sim.Time { return req.Done.FiredAt() }

// NewDeferredRequest creates a request whose work runs inside Wait.
// Exposed for package coll's CPU-progressed Ireduce.
func (r *Rank) NewDeferredRequest(fn func()) *Request {
	return &Request{Done: r.W.K.NewCompletion(), deferred: fn}
}

// Isend starts a non-blocking send of buf to group rank `to` of comm c
// with the given tag.
func (r *Rank) Isend(c *Comm, to, tag int, buf *gpu.Buffer, mode topology.TransferMode) *Request {
	r.ftCheck()
	dst := c.rankAt(to)
	if dst == r {
		panic(fmt.Sprintf("mpi: rank %d sending to itself (comm %d tag %d)", r.ID, c.id, tag))
	}
	req := &Request{Done: r.W.K.NewCompletion(), buf: buf}
	key := matchKey{comm: c.id, src: r.ID, tag: tag}

	if posted := dst.posted[key]; len(posted) > 0 {
		recvReq := posted[0]
		dst.posted[key] = posted[1:]
		r.startTransfer(r.Now(), dst, buf, recvReq, req, mode)
		return req
	}
	ps := &pendingSend{from: r, buf: buf, mode: mode, sentAt: r.Now(), req: req}
	dst.unexpected[key] = append(dst.unexpected[key], ps)
	if buf.Bytes <= EagerLimit {
		// Eager: the payload leaves the sender immediately; the send
		// buffer is reusable right away.
		req.Done.Fire()
	}
	return req
}

// Irecv posts a non-blocking receive into buf from group rank `from`
// of comm c with the given tag.
func (r *Rank) Irecv(c *Comm, from, tag int, buf *gpu.Buffer) *Request {
	return r.irecv(c, from, tag, buf, nil)
}

func (r *Rank) irecv(c *Comm, from, tag int, buf *gpu.Buffer, s *Summed) *Request {
	r.ftCheck()
	src := c.rankAt(from)
	req := &Request{Done: r.W.K.NewCompletion(), buf: buf, summed: s}
	key := matchKey{comm: c.id, src: src.ID, tag: tag}

	if unex := r.unexpected[key]; len(unex) > 0 {
		ps := unex[0]
		r.unexpected[key] = unex[1:]
		// Eager data was already in flight since sentAt; rendezvous
		// starts now that the receiver arrived.
		start := r.Now()
		if ps.buf.Bytes <= EagerLimit {
			start = ps.sentAt
		}
		ps.from.startTransfer(start, r, ps.buf, req, ps.req, ps.mode)
		return req
	}
	r.posted[key] = append(r.posted[key], req)
	return req
}

// startTransfer books the wire time and schedules delivery: at the end
// of the transfer the payload is copied and both requests complete.
func (r *Rank) startTransfer(at sim.Time, dst *Rank, src *gpu.Buffer, recvReq, sendReq *Request, mode topology.TransferMode) {
	if recvReq.buf.Bytes != src.Bytes {
		panic(fmt.Sprintf("mpi: message size mismatch: send %d bytes, recv %d bytes", src.Bytes, recvReq.buf.Bytes))
	}
	_, end := r.W.Cluster.Transfer(at, r.Dev.ID, dst.Dev.ID, src.Bytes, mode)
	if end < r.Now() {
		end = r.Now()
	}
	k := r.W.K
	k.At(end, func() {
		recvReq.buf.CopyFrom(src)
		if s := recvReq.summed; s != nil {
			s.deliver(r, mode)
		}
		recvReq.Done.Fire()
		sendReq.Done.Fire()
	})
}

// Send is a blocking send (Isend + Wait).
func (r *Rank) Send(c *Comm, to, tag int, buf *gpu.Buffer, mode topology.TransferMode) {
	r.Wait(r.Isend(c, to, tag, buf, mode))
}

// Recv is a blocking receive (Irecv + Wait).
func (r *Rank) Recv(c *Comm, from, tag int, buf *gpu.Buffer) {
	r.Wait(r.Irecv(c, from, tag, buf))
}

// SendHost / RecvHost move host-resident buffers (no GPU endpoints);
// used by the non-CUDA-aware baselines.
func (r *Rank) SendHost(c *Comm, to, tag int, buf *gpu.Buffer) {
	r.Send(c, to, tag, buf, topology.ModeHost)
}

// RecvHost is the receiving half of SendHost.
func (r *Rank) RecvHost(c *Comm, from, tag int, buf *gpu.Buffer) {
	r.Recv(c, from, tag, buf)
}
