package sim

import "testing"

func TestWaitTimeoutExpires(t *testing.T) {
	k := New()
	var fired bool
	var at Time
	k.Spawn("waiter", func(p *Proc) {
		c := k.NewCompletion()
		fired = p.WaitTimeout(c, 100)
		at = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("WaitTimeout reported fired on a completion nobody fired")
	}
	if at != 100 {
		t.Errorf("woke at %v, want 100", at)
	}
}

func TestWaitTimeoutCompletes(t *testing.T) {
	k := New()
	c := k.NewCompletion()
	var fired bool
	var at Time
	k.Spawn("waiter", func(p *Proc) {
		fired = p.WaitTimeout(c, 100)
		at = p.Now()
	})
	k.At(40, func() { c.Fire() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("WaitTimeout missed the completion")
	}
	if at != 40 {
		t.Errorf("woke at %v, want 40", at)
	}
	// The stale timeout event at t=100 must not disturb anything.
	if k.Now() != 100 {
		t.Errorf("final time = %v, want 100 (timeout event drains)", k.Now())
	}
}

func TestWaitTimeoutRepeatedThenFire(t *testing.T) {
	k := New()
	c := k.NewCompletion()
	attempts := 0
	k.Spawn("waiter", func(p *Proc) {
		for !p.WaitTimeout(c, 10) {
			attempts++
		}
	})
	k.At(35, func() { c.Fire() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if attempts != 3 {
		t.Errorf("attempts = %d, want 3 (timeouts at 10, 20, 30)", attempts)
	}
}

func TestKillSleepingProc(t *testing.T) {
	k := New()
	reached := false
	var p *Proc
	p = k.Spawn("victim", func(p *Proc) {
		p.Sleep(1000)
		reached = true
	})
	k.At(10, func() { p.Kill() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if reached {
		t.Error("killed proc ran past its kill point")
	}
	if !p.Finished() {
		t.Error("killed proc not marked finished")
	}
	if k.Now() != 1000 {
		t.Errorf("final time = %v (stale sleep event drains at 1000)", k.Now())
	}
}

func TestKillWaitingProcAvoidsDeadlock(t *testing.T) {
	k := New()
	c := k.NewCompletion()
	var p *Proc
	p = k.Spawn("victim", func(p *Proc) {
		p.Wait(c) // nobody will fire this
	})
	k.At(5, func() { p.Kill() })
	if err := k.Run(); err != nil {
		t.Fatalf("kill of a blocked proc should resolve the deadlock: %v", err)
	}
}

func TestKillRunsDefers(t *testing.T) {
	k := New()
	cleaned := false
	var p *Proc
	p = k.Spawn("victim", func(p *Proc) {
		defer func() { cleaned = true }()
		p.Sleep(1000)
	})
	k.At(10, func() { p.Kill() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !cleaned {
		t.Error("kill skipped the proc's defers")
	}
}
