package lint

import (
	"go/ast"
	"go/token"
)

// The trace pass balances span lifecycles: a span opened with
// trace.Recorder.Begin must reach its End on every return path, or the
// trace stream records an open interval and the golden comparisons
// drift. Same optimistic dataflow as the mpi request check.

func runTrace(_ *Program, pkg *Pkg, report func(pos token.Pos, msg string)) {
	runFlow(pkg, flowSpec{
		creator: spanCreator,
		discardMsg: func(string) string {
			return "span from Recorder.Begin discarded: it can never be ended"
		},
		leakMsg: func(string) string {
			return "span from Recorder.Begin does not reach End on every path"
		},
	}, report)
}

func spanCreator(pkg *Pkg, call *ast.CallExpr) string {
	if funcFrom(calleeFunc(pkg, call), "scaffe/internal/trace", "Begin") {
		return "trace.Recorder.Begin"
	}
	return ""
}
