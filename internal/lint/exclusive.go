package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// The exclusive pass closes the PR-7 gap where the //scaffe:parallel
// rules saw only the annotated frame: it checks the staging discipline
// of the parallel-lookahead kernel (DESIGN.md §13) across the whole
// parallel-reachable set. Two rules:
//
//  1. sink discipline — code holding a parallel obligation (annotated
//     //scaffe:parallel, or reachable from such a root through the call
//     graph) must not call a kernel-visible sink — the Kernel's
//     scheduling entry points or a Completion's firing methods —
//     except in serial context: lexically inside or after a stage
//     guard (a branch on Proc.stage, the "am I speculating?" check),
//     or after a Proc.Exclusive demotion. Everything else must stage
//     the effect through the parSegment API.
//  2. segment-mutation discipline — parSegment fields (staged, tail,
//     finishing, failure) and Proc.stage may only be mutated by the
//     staging API itself: parSegment and parKernel methods,
//     Proc.Exclusive, and Kernel.Spawn's exit protocol. A stray
//     mutation elsewhere corrupts the commit loop's replay order.
//
// Both rules match the kernel types by receiver/owner type name
// (Kernel, Completion, Proc, parSegment), so the fixture suite can
// model them without importing unexported sim internals; outside
// internal/sim and the fixtures the pass does not apply (see Applies
// in lint.go).

// kernelSinks names the serial-only scheduling/firing methods per
// owning type.
// FireFrom is deliberately absent: it is the staging-aware wrapper
// (it branches on actor.stage itself), so speculative callers may use
// it freely.
var kernelSinks = map[string]map[string]bool{
	"Kernel":     {"schedule": true, "At": true, "After": true, "AtRun": true, "atResume": true, "atResumeIf": true, "atFire": true, "wakeAt": true},
	"Completion": {"Fire": true, "FireIf": true, "FireAt": true},
}

// segmentFields are the parSegment fields rule 2 protects.
var segmentFields = map[string]bool{"staged": true, "tail": true, "finishing": true, "failure": true}

func runExclusive(prog *Program, pkg *Pkg, report func(pos token.Pos, msg string)) {
	for _, n := range prog.Graph.NodesOf(pkg) {
		if isStagingAPI(n) {
			continue
		}
		chain, par := prog.Par[n]
		suffix := chainSuffix("parallel", chain, n.Par)
		report := coldGuard(pkg, n, report)
		serial := serialSpans(pkg, n.Body())
		inspectBody(n, func(x ast.Node) {
			switch node := x.(type) {
			case *ast.CallExpr:
				if !par {
					return
				}
				owner, name := sinkCall(pkg, node)
				if owner == "" || serial.contains(node.Pos()) {
					return
				}
				report(node.Pos(), fmt.Sprintf(
					"%s.%s is a kernel-visible effect outside serial context; stage it on the segment (parSegment.add) or demote via Proc.Exclusive first%s", owner, name, suffix))
			case *ast.AssignStmt:
				for _, lhs := range node.Lhs {
					checkSegmentMutation(pkg, lhs, report)
				}
			case *ast.IncDecStmt:
				checkSegmentMutation(pkg, node.X, report)
			}
		})
	}
}

// sinkCall reports the (owner type, method) of a kernel sink call, or
// ("", "").
func sinkCall(pkg *Pkg, call *ast.CallExpr) (owner, name string) {
	fn := calleeFunc(pkg, call)
	if fn == nil {
		return "", ""
	}
	recv := recvTypeName(fn)
	if recv == "" {
		return "", ""
	}
	if sinks, ok := kernelSinks[recv]; ok && sinks[fn.Name()] {
		return recv, fn.Name()
	}
	return "", ""
}

// checkSegmentMutation flags assignments to parSegment fields or to a
// Proc's stage pointer outside the staging API.
func checkSegmentMutation(pkg *Pkg, lhs ast.Expr, report func(pos token.Pos, msg string)) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return
	}
	field := fieldVarOf(pkg, sel)
	if field == nil {
		return
	}
	owner := ownerTypeName(pkg, sel.X)
	switch {
	case owner == "parSegment" && segmentFields[field.Name()]:
		report(lhs.Pos(), fmt.Sprintf(
			"direct mutation of parSegment.%s outside the staging API; only parSegment/parKernel methods, Proc.Exclusive, and Kernel.Spawn may touch segment state", field.Name()))
	case owner == "Proc" && field.Name() == "stage":
		report(lhs.Pos(), "direct mutation of Proc.stage outside the staging API; the batch driver alone arms and disarms speculation")
	}
}

// isStagingAPI reports whether n (or, for literals, its enclosing
// declaration) is part of the sanctioned staging machinery.
func isStagingAPI(n *FuncNode) bool {
	for ; n != nil; n = n.Encl {
		if n.Decl == nil {
			continue
		}
		recv := declRecvName(n.Decl)
		if recv == "parSegment" || recv == "parKernel" {
			return true
		}
		if recv == "Proc" && n.Decl.Name.Name == "Exclusive" {
			return true
		}
		if recv == "Kernel" && n.Decl.Name.Name == "Spawn" {
			return true
		}
	}
	return false
}

// declRecvName returns the receiver's base type name, or "".
func declRecvName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// recvTypeName returns fn's receiver base type name, or "".
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	return baseTypeName(sig.Recv().Type())
}

// ownerTypeName resolves the static type of expr to its base named
// type's name, or "".
func ownerTypeName(pkg *Pkg, expr ast.Expr) string {
	t := pkg.Info.TypeOf(expr)
	if t == nil {
		return ""
	}
	return baseTypeName(t)
}

func baseTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// --- serial-context analysis ----------------------------------------------

// posSpans is a sorted list of [from,to) position ranges.
type posSpans []struct{ from, to token.Pos }

func (s posSpans) contains(p token.Pos) bool {
	for _, span := range s {
		if p >= span.from && p < span.to {
			return true
		}
	}
	return false
}

// serialSpans computes the regions of body that provably run in serial
// context under the optimistic lexical rule:
//
//   - an if statement whose init/cond tests the proc's stage (a
//     selector named "stage", or a variable assigned from one) is
//     stage-aware: its whole subtree, and everything after it in the
//     same block, is serial — the author branched on "am I
//     speculating?", and the speculative arm returns into the staging
//     API;
//   - a statement that merely contains such an if deeper inside
//     likewise serializes the remainder of its block;
//   - after a Proc.Exclusive() call the segment is demoted: the rest
//     of the block runs on the commit lane.
//
// The optimism mirrors flow.go: real kernel patterns never
// false-positive, and a sink call with no stage awareness anywhere
// before it cannot be excused.
func serialSpans(pkg *Pkg, body *ast.BlockStmt) posSpans {
	w := &serialWalker{pkg: pkg, stageVars: make(map[types.Object]bool)}
	w.walkStmts(body.List, body.End())
	return w.spans
}

type serialWalker struct {
	pkg       *Pkg
	stageVars map[types.Object]bool
	spans     posSpans
}

func (w *serialWalker) mark(from, to token.Pos) {
	w.spans = append(w.spans, struct{ from, to token.Pos }{from, to})
}

// walkStmts processes one block; blockEnd bounds the "rest of block is
// serial" span.
func (w *serialWalker) walkStmts(stmts []ast.Stmt, blockEnd token.Pos) {
	serial := false
	for _, s := range stmts {
		if serial {
			// Remainder already marked; keep collecting stage vars for
			// nested blocks walked later (none: we stop descending).
			continue
		}
		w.collectStageVars(s)
		switch {
		case isStageIf(w, s):
			w.mark(s.Pos(), s.End())
			serial = true
			w.mark(s.End(), blockEnd)
		case containsStageIf(w, s):
			w.walkCompound(s)
			serial = true
			w.mark(s.End(), blockEnd)
		case isExclusiveStmt(w.pkg, s):
			serial = true
			w.mark(s.End(), blockEnd)
		default:
			w.walkCompound(s)
		}
	}
}

// walkCompound recurses into a statement's sub-blocks, skipping
// function literals (their own analyses).
func (w *serialWalker) walkCompound(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		w.walkStmts(st.List, st.End())
	case *ast.IfStmt:
		if st.Body != nil {
			w.walkStmts(st.Body.List, st.Body.End())
		}
		if st.Else != nil {
			w.walkCompound(st.Else)
		}
	case *ast.ForStmt:
		w.walkStmts(st.Body.List, st.Body.End())
	case *ast.RangeStmt:
		w.walkStmts(st.Body.List, st.Body.End())
	case *ast.SwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, cc.End())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, cc.End())
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.walkStmts(cc.Body, cc.End())
			}
		}
	case *ast.LabeledStmt:
		w.walkCompound(st.Stmt)
	}
}

// collectStageVars records variables assigned from a stage selector
// anywhere inside s (x := p.stage, s = actor.stage).
func (w *serialWalker) collectStageVars(s ast.Stmt) {
	ast.Inspect(s, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		asg, ok := x.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range asg.Rhs {
			if i >= len(asg.Lhs) {
				break
			}
			if !w.isStageExpr(rhs) {
				continue
			}
			if id, ok := asg.Lhs[i].(*ast.Ident); ok {
				if obj := w.pkg.Info.Defs[id]; obj != nil {
					w.stageVars[obj] = true
				} else if obj := w.pkg.Info.Uses[id]; obj != nil {
					w.stageVars[obj] = true
				}
			}
		}
		return true
	})
}

// isStageExpr reports whether expr reads the stage: a selector named
// "stage" or a previously collected stage variable.
func (w *serialWalker) isStageExpr(expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		return e.Sel.Name == "stage"
	case *ast.Ident:
		if obj := w.pkg.Info.Uses[e]; obj != nil {
			return w.stageVars[obj]
		}
	}
	return false
}

// isStageIf reports whether s is an if statement testing the stage in
// its init or condition.
func isStageIf(w *serialWalker, s ast.Stmt) bool {
	ifs, ok := s.(*ast.IfStmt)
	if !ok {
		return false
	}
	if ifs.Init != nil {
		w.collectStageVars(ifs.Init)
	}
	found := false
	check := func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectorExpr:
			if e.Sel.Name == "stage" {
				found = true
			}
		case *ast.Ident:
			if obj := w.pkg.Info.Uses[e]; obj != nil && w.stageVars[obj] {
				found = true
			}
		case *ast.FuncLit:
			return false
		}
		return true
	}
	if ifs.Init != nil {
		ast.Inspect(ifs.Init, check)
	}
	ast.Inspect(ifs.Cond, check)
	return found
}

// containsStageIf reports whether a stage-testing if nests anywhere
// inside s.
func containsStageIf(w *serialWalker, s ast.Stmt) bool {
	found := false
	ast.Inspect(s, func(x ast.Node) bool {
		if found {
			return false
		}
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if ifs, ok := x.(*ast.IfStmt); ok {
			if isStageIf(w, ifs) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isExclusiveStmt reports whether s is a bare Proc.Exclusive() call.
func isExclusiveStmt(pkg *Pkg, s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(pkg, call)
	return fn != nil && fn.Name() == "Exclusive" && recvTypeName(fn) == "Proc"
}
