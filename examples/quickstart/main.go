// Quickstart: train GoogLeNet on 32 simulated K-80 GPUs with the full
// S-Caffe co-design (SC-OBR pipeline + hierarchical reduce) and print
// the timing report. This is the 30-second tour of the public API.
package main

import (
	"fmt"
	"log"

	"scaffe"
)

func main() {
	cfg := scaffe.Config{
		Spec:        scaffe.MustModel("googlenet"),
		GPUs:        32,
		GlobalBatch: 256, // strong scaling: 8 samples per GPU
		Iterations:  10,
		Design:      scaffe.SCOBR,
		Reduce:      scaffe.ReduceHR,
		Source:      scaffe.ImageData,
		Seed:        1,
	}
	res, err := scaffe.Train(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Trained %s on %d GPUs (%s + %s), batch %d:\n",
		res.Model, res.GPUs, res.Design, res.ReduceAlg, res.GlobalBatch)
	fmt.Printf("  %v per iteration, %.0f samples/sec\n", res.TimePerIter(), res.SamplesPerSec)
	fmt.Printf("  root blocked in: propagation %v, forward %v, aggregation %v\n",
		res.Phases.Propagation, res.Phases.Forward, res.Phases.Aggregation)

	// The same run with the basic (non-overlapped, flat-reduce) design
	// shows what the co-designs buy.
	cfg.Design = scaffe.SCB
	cfg.Reduce = scaffe.ReduceMV2
	base, err := scaffe.Train(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Basic CUDA-aware port (SC-B + stock reduce): %v per iteration\n", base.TimePerIter())
	fmt.Printf("Co-design speedup: %.2fx\n", float64(base.TotalTime)/float64(res.TotalTime))
}
