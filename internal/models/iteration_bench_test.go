package models

import (
	"testing"

	"scaffe/internal/data"
	"scaffe/internal/layers"
	"scaffe/internal/tensor"
)

// iterationNet bundles one real-compute net with a loaded batch, ready
// to run steady-state forward/backward iterations.
type iterationNet struct {
	net    *layers.Net
	input  *tensor.Tensor
	labels []int
}

func newIterationNet(build func(batch int, seed int64) *layers.Net, ds *data.Synthetic, batch int) *iterationNet {
	net := build(batch, 1)
	sh := ds.Shape()
	it := &iterationNet{
		net:    net,
		input:  tensor.New(batch, sh.C, sh.H, sh.W),
		labels: make([]int, batch),
	}
	data.BatchTensorInto(ds, 0, batch, it.input.Data, it.labels)
	return it
}

// step runs one full training iteration's compute (no solver update).
func (it *iterationNet) step() {
	it.net.ZeroGrads()
	it.net.Forward(it.input, it.labels)
	it.net.Backward()
}

// BenchmarkRealLeNetIteration measures one steady-state real-compute
// training iteration (forward + backward, batch 64) on LeNet.
func BenchmarkRealLeNetIteration(b *testing.B) {
	it := newIterationNet(BuildLeNet, data.SyntheticMNIST(1024, 1), 64)
	it.step() // warm up blobs and the workspace pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it.step()
	}
}

// BenchmarkRealCIFAR10QuickIteration is the same for the CIFAR-10
// quick model (the Figure 9 workload).
func BenchmarkRealCIFAR10QuickIteration(b *testing.B) {
	it := newIterationNet(BuildCIFAR10Quick, data.SyntheticCIFAR10(1024, 1), 64)
	it.step()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it.step()
	}
}

// TestNetForwardBackwardZeroSteadyStateAllocs is the tentpole's
// regression gate: after one warm-up iteration, a full forward+backward
// pass over LeNet and CIFAR-10-quick must not allocate at all —
// activations, gradients, im2col scratch, and batch buffers are all
// preallocated or pooled.
func TestNetForwardBackwardZeroSteadyStateAllocs(t *testing.T) {
	cases := []struct {
		name  string
		build func(batch int, seed int64) *layers.Net
		ds    *data.Synthetic
	}{
		{"lenet", BuildLeNet, data.SyntheticMNIST(256, 1)},
		{"cifar10-quick", BuildCIFAR10Quick, data.SyntheticCIFAR10(256, 1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			it := newIterationNet(tc.build, tc.ds, 16)
			it.step() // warm up
			if allocs := testing.AllocsPerRun(5, it.step); allocs != 0 {
				t.Errorf("%s forward+backward allocates %.1f times per iteration in steady state, want 0", tc.name, allocs)
			}
		})
	}
}

// TestBatchLoadZeroSteadyStateAllocs checks the data plane the same
// way: refilling a persistent batch from a Filler dataset is
// allocation-free.
func TestBatchLoadZeroSteadyStateAllocs(t *testing.T) {
	ds := data.SyntheticCIFAR10(256, 1)
	img := make([]float32, 16*ds.Shape().Elems())
	labels := make([]int, 16)
	iter := 0
	load := func() {
		data.BatchTensorInto(ds, iter*16, 16, img, labels)
		iter++
	}
	load() // warm up the dataset's cached generator
	if allocs := testing.AllocsPerRun(5, load); allocs != 0 {
		t.Errorf("BatchTensorInto allocates %.1f times per batch in steady state, want 0", allocs)
	}
}
