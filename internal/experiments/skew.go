package experiments

import (
	"fmt"

	"scaffe/internal/coll"
	"scaffe/internal/gpu"
	"scaffe/internal/mpi"
	"scaffe/internal/sim"
	"scaffe/internal/topology"
)

// Skew quantifies the skew-tolerance argument of Section 5 (and the D1
// deviation note in EXPERIMENTS.md): the paper prefers a binomial
// upper level beyond 64 processes because long chains are sensitive to
// slow processes. We plant one persistent straggler GPU (a chain
// leader) and sweep its slowdown factor, comparing CC-8, CB-8, and
// flat binomial.
func Skew(o Options) (*Table, error) {
	ranks := 160
	if o.MaxGPUs > 0 && o.MaxGPUs < ranks {
		ranks = o.MaxGPUs
	}
	const bytes = 64 << 20
	t := &Table{
		ID:      "skew",
		Title:   fmt.Sprintf("Straggler sensitivity, %d GPUs, 64 MB reduce (straggler = chain leader, rank 8)", ranks),
		Columns: []string{"Slowdown", "CC-8", "CB-8", "Binomial", "CC degradation", "CB degradation"},
	}
	var ccBase, cbBase sim.Duration
	for _, factor := range []float64{1, 2, 4, 8} {
		var row [3]sim.Duration
		for i, alg := range []coll.Algorithm{coll.ChainChain, coll.ChainBinomial, coll.Binomial} {
			lat, err := stragglerReduce(ranks, bytes, alg, 8, factor)
			if err != nil {
				return nil, err
			}
			row[i] = lat
		}
		if factor == 1 {
			ccBase, cbBase = row[0], row[1]
		}
		t.AddRow(fmt.Sprintf("%.0fx", factor),
			row[0].String(), row[1].String(), row[2].String(),
			fmt.Sprintf("%.2fx", float64(row[0])/float64(ccBase)),
			fmt.Sprintf("%.2fx", float64(row[1])/float64(cbBase)))
	}
	t.Note("Extension quantifying Section 5's skew-tolerance argument: every chunk of the upper chain passes through the straggler's reduce kernel, so CC degrades faster than CB as the straggler slows — the effect that made the paper's tuned table prefer CB beyond 64 processes on real (noisy) hardware.")
	return t, nil
}

// stragglerReduce is reduceLatency with one slowed-down device.
func stragglerReduce(ranks int, bytes int64, alg coll.Algorithm, stragglerRank int, factor float64) (sim.Duration, error) {
	k := sim.New()
	nodes := (ranks + 15) / 16
	cluster := topology.New(k, "skew", nodes, 16, topology.DefaultParams())
	world := mpi.NewWorld(cluster, ranks)
	if stragglerRank >= 0 && stragglerRank < ranks {
		world.Ranks[stragglerRank].Dev.SetSlowdown(factor)
	}
	comm := world.WorldComm()
	red := coll.NewReducer(comm, alg, coll.DefaultOptions())
	var start, done sim.Time
	_, err := world.Run(func(r *mpi.Rank) {
		buf := gpu.NewBuffer(bytes)
		for trial := 0; trial < 2; trial++ {
			comm.Barrier(r)
			if r.ID == 0 && trial == 1 {
				start = r.Now()
			}
			red.Reduce(r, buf, benchTag)
			if trial == 1 && r.Now() > done {
				done = r.Now()
			}
			comm.Barrier(r)
		}
	})
	if err != nil {
		return 0, err
	}
	return done - start, nil
}
