// Package lmdb implements a small embedded key-value store in the
// role LMDB plays for Caffe: an ordered, CRC-checked, read-optimized
// record file built once and then read by many data-reader threads.
// Writes go through a Writer (single-writer, like LMDB); reads are
// concurrency-safe (ReadAt + immutable in-memory index).
//
// The store is functionally real. The *scalability* behaviour the
// paper reports for LMDB (it "does not scale for more than 64 parallel
// readers", Section 6.3) is a property of reader-slot contention and
// is modeled in package data's LMDBSource, which wraps this store in
// the discrete-event world.
package lmdb

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
)

var magic = []byte("SLMDB1\n")

// Writer builds a store file. Keys may be inserted in any order; the
// index is sorted at Close.
type Writer struct {
	f     *os.File
	off   int64
	index []indexEntry
	keys  map[string]bool
}

type indexEntry struct {
	key  string
	off  int64
	vlen uint32
}

// Create opens a new store file for writing, truncating any existing
// file.
func Create(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("lmdb: create: %w", err)
	}
	n, err := f.Write(magic)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("lmdb: write header: %w", err)
	}
	return &Writer{f: f, off: int64(n), keys: make(map[string]bool)}, nil
}

// Put appends one record. Duplicate keys are rejected.
func (w *Writer) Put(key, val []byte) error {
	if w.keys[string(key)] {
		return fmt.Errorf("lmdb: duplicate key %q", key)
	}
	w.keys[string(key)] = true
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(val)))
	crc := crc32.ChecksumIEEE(key)
	crc = crc32.Update(crc, crc32.IEEETable, val)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)

	recOff := w.off
	for _, chunk := range [][]byte{hdr[:], key, val, tail[:]} {
		n, err := w.f.Write(chunk)
		if err != nil {
			return fmt.Errorf("lmdb: write record: %w", err)
		}
		w.off += int64(n)
	}
	w.index = append(w.index, indexEntry{key: string(key), off: recOff, vlen: uint32(len(val))})
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() int { return len(w.index) }

// Close sorts and writes the index and footer, then closes the file.
func (w *Writer) Close() error {
	sort.Slice(w.index, func(i, j int) bool { return w.index[i].key < w.index[j].key })
	indexOff := w.off
	var buf bytes.Buffer
	var tmp [12]byte
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(w.index)))
	buf.Write(tmp[:4])
	for _, e := range w.index {
		binary.LittleEndian.PutUint32(tmp[:4], uint32(len(e.key)))
		buf.Write(tmp[:4])
		buf.WriteString(e.key)
		binary.LittleEndian.PutUint64(tmp[:8], uint64(e.off))
		binary.LittleEndian.PutUint32(tmp[8:12], e.vlen)
		buf.Write(tmp[:12])
	}
	binary.LittleEndian.PutUint64(tmp[:8], uint64(indexOff))
	buf.Write(tmp[:8])
	buf.Write(magic)
	if _, err := w.f.Write(buf.Bytes()); err != nil {
		w.f.Close()
		return fmt.Errorf("lmdb: write index: %w", err)
	}
	return w.f.Close()
}

// Reader provides concurrent random access to a store file.
type Reader struct {
	f     *os.File
	index map[string]indexEntry
	keys  []string // sorted
}

// Open loads a store's index for reading.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("lmdb: open: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("lmdb: stat: %w", err)
	}
	foot := make([]byte, 8+len(magic))
	if st.Size() < int64(len(foot)+len(magic)) {
		f.Close()
		return nil, fmt.Errorf("lmdb: %s: file too short", path)
	}
	if _, err := f.ReadAt(foot, st.Size()-int64(len(foot))); err != nil {
		f.Close()
		return nil, fmt.Errorf("lmdb: read footer: %w", err)
	}
	if !bytes.Equal(foot[8:], magic) {
		f.Close()
		return nil, fmt.Errorf("lmdb: %s: bad footer magic", path)
	}
	indexOff := int64(binary.LittleEndian.Uint64(foot[:8]))
	indexLen := st.Size() - int64(len(foot)) - indexOff
	if indexOff < int64(len(magic)) || indexLen < 4 {
		f.Close()
		return nil, fmt.Errorf("lmdb: %s: corrupt index offset", path)
	}
	raw := make([]byte, indexLen)
	if _, err := f.ReadAt(raw, indexOff); err != nil {
		f.Close()
		return nil, fmt.Errorf("lmdb: read index: %w", err)
	}
	r := &Reader{f: f, index: make(map[string]indexEntry)}
	n := int(binary.LittleEndian.Uint32(raw[:4]))
	p := 4
	for i := 0; i < n; i++ {
		if p+4 > len(raw) {
			f.Close()
			return nil, fmt.Errorf("lmdb: %s: truncated index", path)
		}
		kl := int(binary.LittleEndian.Uint32(raw[p:]))
		p += 4
		if p+kl+12 > len(raw) {
			f.Close()
			return nil, fmt.Errorf("lmdb: %s: truncated index entry", path)
		}
		key := string(raw[p : p+kl])
		p += kl
		off := int64(binary.LittleEndian.Uint64(raw[p:]))
		vlen := binary.LittleEndian.Uint32(raw[p+8:])
		p += 12
		r.index[key] = indexEntry{key: key, off: off, vlen: vlen}
		r.keys = append(r.keys, key)
	}
	return r, nil
}

// Len returns the number of records.
func (r *Reader) Len() int { return len(r.keys) }

// KeyAt returns the i-th key in sorted order (cursor-style access).
func (r *Reader) KeyAt(i int) string { return r.keys[i] }

// Get returns the value for key, verifying the record checksum.
func (r *Reader) Get(key string) ([]byte, error) {
	e, ok := r.index[key]
	if !ok {
		return nil, fmt.Errorf("lmdb: key %q not found", key)
	}
	hdr := make([]byte, 8)
	if _, err := r.f.ReadAt(hdr, e.off); err != nil {
		return nil, fmt.Errorf("lmdb: read record header: %w", err)
	}
	kl := binary.LittleEndian.Uint32(hdr[0:])
	vl := binary.LittleEndian.Uint32(hdr[4:])
	if int(kl) != len(key) || vl != e.vlen {
		return nil, fmt.Errorf("lmdb: record/index mismatch for %q", key)
	}
	body := make([]byte, int(kl)+int(vl)+4)
	if _, err := io.ReadFull(io.NewSectionReader(r.f, e.off+8, int64(len(body))), body); err != nil {
		return nil, fmt.Errorf("lmdb: read record body: %w", err)
	}
	crc := crc32.ChecksumIEEE(body[:kl+vl])
	want := binary.LittleEndian.Uint32(body[kl+vl:])
	if crc != want {
		return nil, fmt.Errorf("lmdb: checksum mismatch for %q", key)
	}
	val := make([]byte, vl)
	copy(val, body[kl:kl+vl])
	return val, nil
}

// Close releases the file handle.
func (r *Reader) Close() error { return r.f.Close() }
