package mpi

import (
	"testing"

	"scaffe/internal/fault"
	"scaffe/internal/gpu"
	"scaffe/internal/sim"
	"scaffe/internal/topology"
)

// These are the mpi half of the pooled-object recycling drill (the sim
// half lives in sim/queue_test.go): requests and integrity headers are
// recycled through faults — wire corruption escalating to a revocation,
// and a rank killed mid-flight — and the generation counters must keep
// every reference from a previous life from completing a record's next
// one.

// TestRecyclingDrillCorruptionEscalation drives a checksummed receive
// into the escalation path: the retry budget is exhausted by a
// persistently corrupted link and Verify unwinds with Revoked. The
// request the receive used was released by Wait before Verify ran, so
// it is recycled; the Summed header was still in Verify's hands, so it
// is abandoned. The drill checks both lifecycles and the generation
// guard on the recycled request.
func TestRecyclingDrillCorruptionEscalation(t *testing.T) {
	w := newWorld(t, 2, 1, 2)
	c := w.WorldComm()
	corrupt := false
	w.Integrity = &Integrity{
		Mode:        IntegrityRecover,
		RetryBudget: 1,
		WireCorrupt: func(src, dst int) bool { return corrupt },
	}

	escaped := false
	_, err := w.Run(func(r *Rank) {
		if r.ID == 1 {
			r.Send(c, 0, 1, gpu.WrapData([]float32{1, 2, 3, 4}), topology.ModeAuto)
			r.Send(c, 0, 2, gpu.WrapData([]float32{5, 6, 7, 8}), topology.ModeAuto)
			return
		}
		buf := gpu.NewDataBuffer(4)

		// Clean round: fills the pools. Wait releases the request before
		// Verify settles (and releases) the header.
		r.RecvSummed(c, 1, 1, buf).Verify()
		if len(r.reqPool) == 0 || len(r.sumPool) == 0 {
			t.Errorf("clean round left empty pools: %d requests, %d summed", len(r.reqPool), len(r.sumPool))
			return
		}
		staleReq := r.reqPool[len(r.reqPool)-1]
		staleGen := staleReq.done.Gen()
		staleSum := r.sumPool[len(r.sumPool)-1]

		// Corrupted round: every delivery (including the retransmit) is
		// damaged, so Verify burns the budget and revokes.
		corrupt = true
		func() {
			defer func() {
				rec := recover()
				if rec == nil {
					return
				}
				if !IsRevoked(rec) {
					panic(rec)
				}
				escaped = true
			}()
			r.RecvSummed(c, 1, 2, buf).Verify()
		}()
		corrupt = false
		if !escaped {
			t.Errorf("exhausted retry budget did not unwind with Revoked")
			return
		}

		// The request was recycled for the corrupted receive (a new
		// generation) and released again before the escalation.
		if !staleReq.pooled {
			t.Errorf("request used by the escalated receive was not released back to the pool")
		}
		if staleReq.done.Gen() == staleGen {
			t.Errorf("recycling the request did not bump its completion generation")
		}

		// The abandoned Summed header must never return to the pool: the
		// next checksummed receive gets a fresh record, not the one the
		// escalation left mid-verify.
		for _, s := range r.sumPool {
			if s == staleSum {
				t.Errorf("escalated Summed header returned to the pool; it must be abandoned")
			}
		}

		// The generation guard on the recycled record: draw it again
		// (LIFO gives back the same record) and fire it through the
		// generation snapshotted two lives ago — the stale fire must
		// dissolve; the current generation must fire.
		req := r.getRequest(nil)
		if req != staleReq {
			t.Errorf("pool did not hand back the recycled request")
		}
		req.Done.FireIf(staleGen)
		if req.Done.Fired() {
			t.Errorf("FireIf with a generation from a previous life completed the recycled request")
		}
		req.Done.FireIf(req.Done.Gen())
		if !req.Done.Fired() {
			t.Errorf("FireIf with the current generation did not fire")
		}
		r.putRequest(req)
	})
	if err != nil {
		t.Fatal(err)
	}
	integ := w.Integrity
	if integ.Verified != 1 || integ.Detected != 2 || integ.Retransmits != 1 || integ.Escalations != 1 {
		t.Fatalf("integrity counters = verified %d detected %d retransmits %d escalations %d; want 1/2/1/1",
			integ.Verified, integ.Detected, integ.Retransmits, integ.Escalations)
	}
}

// drillApplier is the minimal physical side of the fault plane for the
// kill drill: crashes fail-stop the rank's procs, stragglers are not
// modeled.
type drillApplier struct{ w *World }

func (a *drillApplier) KillRank(rank int, _ fault.Kind) { a.w.Ranks[rank].KillAll() }
func (a *drillApplier) SetCompute(int, float64)         {}

// TestRecyclingDrillKillMidFlight kills a sender while the receiver is
// parked on the matching request. The fault-aware wait unwinds with
// Revoked before Wait can release the record, so the in-flight request
// must be abandoned — never recycled — and its pool must stay free of
// it.
func TestRecyclingDrillKillMidFlight(t *testing.T) {
	w := newWorld(t, 2, 1, 2)
	c := w.WorldComm()
	pl := fault.NewPlane(w.K, 2, sim.Millisecond)
	w.Fault = pl
	pl.Arm(fault.Schedule{{At: 3 * sim.Millisecond, Kind: fault.Crash, Rank: 1}}, &drillApplier{w: w})

	var inFlight *Request
	revoked := false
	_, err := w.Run(func(r *Rank) {
		if r.ID == 1 {
			// Never sends; dies mid-nap at 3ms.
			r.Sleep(sim.Second)
			return
		}
		buf := gpu.NewDataBuffer(4)
		func() {
			defer func() {
				rec := recover()
				if rec == nil {
					return
				}
				if !IsRevoked(rec) {
					panic(rec)
				}
				revoked = true
			}()
			inFlight = r.Irecv(c, 1, 9, buf)
			r.Wait(inFlight)
		}()
		if !revoked {
			t.Errorf("wait on a dead sender did not unwind with Revoked")
			return
		}
		// The unwound request is abandoned, not recycled: it never
		// reaches the free list, so no later operation can be handed a
		// record with a live posted-queue reference.
		if inFlight.pooled {
			t.Errorf("request abandoned by the revoked wait was returned to the pool")
		}
		for _, q := range r.reqPool {
			if q == inFlight {
				t.Errorf("abandoned in-flight request found in the free list")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Revoked() {
		t.Fatalf("plane not revoked after detecting the crash")
	}
	if rep := pl.Report(); rep.Crashes != 1 {
		t.Fatalf("report crashes = %d, want 1", rep.Crashes)
	}
}
