package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math"
	"os"
)

// Snapshotting: the root solver periodically serializes its packed
// parameter vector, like Caffe's solver snapshots, so long trainings
// can resume. The format is a small binary container with a CRC-free
// but length-checked layout (corruption surfaces as a decode error).

var snapshotMagic = []byte("SCAFFESNAP1\n")

// Snapshot is a serialized solver state.
type Snapshot struct {
	// Model is the model name the snapshot belongs to.
	Model string
	// Iteration is the 0-based iteration after which it was taken.
	Iteration int
	// Params is the packed parameter vector.
	Params []float32
}

// WriteSnapshot saves a snapshot to path.
func WriteSnapshot(path string, s *Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: snapshot: %w", err)
	}
	w := bufio.NewWriter(f)
	w.Write(snapshotMagic)
	writeU32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		w.Write(b[:])
	}
	writeU32(uint32(len(s.Model)))
	w.WriteString(s.Model)
	writeU32(uint32(s.Iteration))
	writeU32(uint32(len(s.Params)))
	for _, v := range s.Params {
		writeU32(math.Float32bits(v))
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("core: snapshot flush: %w", err)
	}
	return f.Close()
}

// ReadSnapshot loads a snapshot from path.
func ReadSnapshot(path string) (*Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot: %w", err)
	}
	if len(raw) < len(snapshotMagic)+12 || string(raw[:len(snapshotMagic)]) != string(snapshotMagic) {
		return nil, fmt.Errorf("core: %s is not a snapshot file", path)
	}
	p := len(snapshotMagic)
	readU32 := func() (uint32, error) {
		if p+4 > len(raw) {
			return 0, fmt.Errorf("core: snapshot %s truncated", path)
		}
		v := binary.LittleEndian.Uint32(raw[p:])
		p += 4
		return v, nil
	}
	nameLen, err := readU32()
	if err != nil {
		return nil, err
	}
	if p+int(nameLen) > len(raw) {
		return nil, fmt.Errorf("core: snapshot %s truncated in name", path)
	}
	s := &Snapshot{Model: string(raw[p : p+int(nameLen)])}
	p += int(nameLen)
	iter, err := readU32()
	if err != nil {
		return nil, err
	}
	s.Iteration = int(iter)
	count, err := readU32()
	if err != nil {
		return nil, err
	}
	if p+4*int(count) != len(raw) {
		return nil, fmt.Errorf("core: snapshot %s has %d trailing/missing bytes", path, len(raw)-p-4*int(count))
	}
	s.Params = make([]float32, count)
	for i := range s.Params {
		s.Params[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[p:]))
		p += 4
	}
	return s, nil
}

// snapshotPath formats the per-iteration snapshot filename, following
// Caffe's prefix_iter_N convention.
func snapshotPath(prefix string, iter int) string {
	return fmt.Sprintf("%s_iter_%d.scaffemodel", prefix, iter+1)
}
