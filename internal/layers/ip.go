package layers

import (
	"math/rand"

	"scaffe/internal/tensor"
)

// InnerProduct is Caffe's fully-connected layer: out = in·W^T + b.
type InnerProduct struct {
	base
	OutN int

	weights *tensor.Tensor // OutN x InElems
	bias    *tensor.Tensor // OutN
	wGrad   *tensor.Tensor
	bGrad   *tensor.Tensor
	lastIn  *tensor.Tensor

	params []*tensor.Tensor // cached Params/Grads results so the
	grads  []*tensor.Tensor // per-iteration accessors don't allocate
}

// NewInnerProduct creates a fully-connected layer with outN outputs.
func NewInnerProduct(name string, outN int) *InnerProduct {
	return &InnerProduct{base: base{name: name}, OutN: outN}
}

// Kind implements Layer.
func (l *InnerProduct) Kind() string { return "InnerProduct" }

// OutShape implements Layer.
func (l *InnerProduct) OutShape(Shape) Shape { return Shape{C: l.OutN, H: 1, W: 1} }

// ParamElems implements Layer.
func (l *InnerProduct) ParamElems(in Shape) int { return l.OutN*in.Elems() + l.OutN }

// FwdFLOPs implements Layer.
func (l *InnerProduct) FwdFLOPs(in Shape) float64 { return 2 * float64(l.OutN*in.Elems()) }

// BwdFLOPs implements Layer.
func (l *InnerProduct) BwdFLOPs(in Shape) float64 { return 2 * l.FwdFLOPs(in) }

// Setup implements Layer.
func (l *InnerProduct) Setup(in Shape, batch int, rng *rand.Rand) {
	l.setup(in, batch)
	k := in.Elems()
	l.weights = tensor.New(l.OutN, k)
	l.weights.XavierInit(rng, k)
	l.bias = tensor.New(l.OutN)
	l.wGrad = tensor.New(l.OutN, k)
	l.bGrad = tensor.New(l.OutN)
	l.allocBlobs(l.OutShape(in))
	l.params = []*tensor.Tensor{l.weights, l.bias}
	l.grads = []*tensor.Tensor{l.wGrad, l.bGrad}
}

// Forward implements Layer.
//
//scaffe:hotpath
func (l *InnerProduct) Forward(in *tensor.Tensor) *tensor.Tensor {
	l.checkIn(in)
	l.lastIn = in
	k := l.in.Elems()
	out := l.out
	// out (batch×OutN) = in (batch×k) · W^T (k×OutN)
	tensor.Gemm(false, true, l.batch, l.OutN, k, 1, in.Data, l.weights.Data, 0, out.Data)
	for b := 0; b < l.batch; b++ {
		row := out.Data[b*l.OutN : (b+1)*l.OutN]
		for j := range row {
			row[j] += l.bias.Data[j]
		}
	}
	return out
}

// Backward implements Layer.
//
//scaffe:hotpath
func (l *InnerProduct) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	k := l.in.Elems()
	// dW (OutN×k) += g^T (OutN×batch) · in (batch×k)
	tensor.Gemm(true, false, l.OutN, k, l.batch, 1, gradOut.Data, l.lastIn.Data, 1, l.wGrad.Data)
	// db += column sums of g
	for b := 0; b < l.batch; b++ {
		row := gradOut.Data[b*l.OutN : (b+1)*l.OutN]
		for j, v := range row {
			l.bGrad.Data[j] += v
		}
	}
	// dIn (batch×k) = g (batch×OutN) · W (OutN×k)
	gradIn := l.gradIn
	tensor.Gemm(false, false, l.batch, k, l.OutN, 1, gradOut.Data, l.weights.Data, 0, gradIn.Data)
	return gradIn
}

// Params implements Layer.
func (l *InnerProduct) Params() []*tensor.Tensor { return l.params }

// Grads implements Layer.
func (l *InnerProduct) Grads() []*tensor.Tensor { return l.grads }
