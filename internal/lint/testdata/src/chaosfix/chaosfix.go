// Package chaosfix seeds the kernel-context rule of the mpi pass: the
// delivery-perturbation hooks of the chaos plane — sim.Runnable
// RunEvent bodies and closures handed to Kernel.At — run inside the
// event kernel, where no rank loop exists to Wait a request. A request
// constructed there is structurally unwaited even when the result is
// stored, so the pass flags the construction itself; the hooks must
// reschedule or re-land intercepted traffic, never post new requests.
package chaosfix

import (
	"scaffe/internal/coll"
	"scaffe/internal/gpu"
	"scaffe/internal/mpi"
	"scaffe/internal/sim"
	"scaffe/internal/topology"
)

const fixTag = 11

// perturbHook mimics a wire-fault delivery event: it intercepts a
// landing message and (wrongly) tries to repair the loss by posting
// replacement traffic from kernel context.
type perturbHook struct {
	r       *mpi.Rank
	c       *mpi.Comm
	buf     *gpu.Buffer
	pending *mpi.Request
}

func (h *perturbHook) RunEvent(k *sim.Kernel) {
	h.pending = h.r.Isend(h.c, 1, fixTag, h.buf, topology.ModeAuto) // want `mpi.Isend inside a RunEvent kernel hook`
	h.pending = h.r.Irecv(h.c, 1, fixTag, h.buf)                    // want `mpi.Irecv inside a RunEvent kernel hook`
}

// retryHook reaches for the deferred-request and collective
// constructors instead; same context, same leak.
type retryHook struct {
	red  coll.Reducer
	r    *mpi.Rank
	buf  *gpu.Buffer
	reqs []*mpi.Request
}

func (h *retryHook) RunEvent(k *sim.Kernel) {
	h.reqs = append(h.reqs, h.r.NewDeferredRequest(func() {}))       // want `mpi.NewDeferredRequest inside a RunEvent kernel hook`
	h.reqs = append(h.reqs, coll.Ireduce(h.red, h.r, h.buf, fixTag)) // want `coll.Ireduce inside a RunEvent kernel hook`
}

// failsafeFromCallback mimics the reorder-stash failsafe shape from
// mpi/wire.go, but posts a fresh receive from the kernel callback.
func failsafeFromCallback(k *sim.Kernel, r *mpi.Rank, c *mpi.Comm, buf *gpu.Buffer, reqs *[]*mpi.Request) {
	k.At(5, func() {
		*reqs = append(*reqs, r.Irecv(c, 1, fixTag, buf)) // want `mpi.Irecv inside a Kernel.At callback`
	})
}

// wellBehavedHook does what a perturbation hook is allowed to do:
// reschedule itself and hand work back to the kernel without posting
// requests.
type wellBehavedHook struct {
	fired bool
}

func (h *wellBehavedHook) RunEvent(k *sim.Kernel) {
	h.fired = true
	k.At(7, func() { h.fired = false })
}

// wellBehaved creates and waits requests from ordinary proc context —
// outside any kernel hook, the lifecycle rules alone apply.
func wellBehaved(r *mpi.Rank, c *mpi.Comm, buf *gpu.Buffer) {
	sreq := r.Isend(c, 1, fixTag, buf, topology.ModeAuto)
	rreq := r.Irecv(c, 1, fixTag+1, buf)
	r.WaitAll(sreq, rreq)
}
