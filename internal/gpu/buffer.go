package gpu

import "fmt"

// Buffer is a region of (simulated) device or host memory. Bytes is
// the logical size that drives transfer and reduction timing; Data is
// an optional real payload so that collective algorithms can be
// verified numerically. Figure-scale sweeps run payload-free buffers
// (Data == nil) to keep wall-clock cost bounded while virtual timing
// is unchanged.
type Buffer struct {
	// Bytes is the logical size of the buffer.
	Bytes int64
	// Data optionally holds the real contents (len == Bytes/4).
	Data []float32
}

// NewBuffer returns a payload-free buffer of the given logical size.
func NewBuffer(bytes int64) *Buffer { return &Buffer{Bytes: bytes} }

// NewDataBuffer returns a buffer carrying a real payload of n float32
// elements (logical size 4n bytes).
func NewDataBuffer(n int) *Buffer {
	return &Buffer{Bytes: int64(n) * 4, Data: make([]float32, n)}
}

// WrapData returns a buffer aliasing the given payload.
func WrapData(data []float32) *Buffer {
	return &Buffer{Bytes: int64(len(data)) * 4, Data: data}
}

// Elems returns the element count of the buffer.
func (b *Buffer) Elems() int { return int(b.Bytes / 4) }

// Clone returns a deep copy of the buffer.
func (b *Buffer) Clone() *Buffer {
	c := &Buffer{Bytes: b.Bytes}
	if b.Data != nil {
		c.Data = append([]float32(nil), b.Data...)
	}
	return c
}

// Slice returns a view of elements [lo, hi) of the buffer. Views share
// payload storage with the parent.
func (b *Buffer) Slice(lo, hi int) *Buffer {
	if lo < 0 || hi < lo || int64(hi)*4 > b.Bytes {
		panic(fmt.Sprintf("gpu: buffer slice [%d,%d) out of range (%d elems)", lo, hi, b.Elems()))
	}
	v := &Buffer{Bytes: int64(hi-lo) * 4}
	if b.Data != nil {
		v.Data = b.Data[lo:hi]
	}
	return v
}

// CopyFrom copies src's payload into b (sizes must match when both
// carry payloads). Timing is the caller's concern; this is the data
// plane only.
func (b *Buffer) CopyFrom(src *Buffer) {
	if b.Bytes != src.Bytes {
		panic(fmt.Sprintf("gpu: copy size mismatch: dst %d bytes, src %d bytes", b.Bytes, src.Bytes))
	}
	if b.Data != nil && src.Data != nil {
		copy(b.Data, src.Data)
	}
}

// Accumulate adds src into b element-wise (the data plane of a
// reduction step).
func (b *Buffer) Accumulate(src *Buffer) {
	if b.Bytes != src.Bytes {
		panic(fmt.Sprintf("gpu: accumulate size mismatch: dst %d bytes, src %d bytes", b.Bytes, src.Bytes))
	}
	if b.Data == nil || src.Data == nil {
		return
	}
	for i, v := range src.Data {
		b.Data[i] += v
	}
}

// Scale multiplies every element by s (used to average gradients).
func (b *Buffer) Scale(s float32) {
	for i := range b.Data {
		b.Data[i] *= s
	}
}

// Fill sets every element of the payload to v.
func (b *Buffer) Fill(v float32) {
	for i := range b.Data {
		b.Data[i] = v
	}
}
