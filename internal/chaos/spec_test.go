package chaos

import (
	"strings"
	"testing"

	"scaffe/internal/coll"
	"scaffe/internal/core"
)

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec(`
# comment
seed = 42
ranks = 4
iters = 12
events = 3
mode = real
design = scob
reduce = rabenseifner
weight.drop = 5   # trailing comment
weight.hang = 0
`)
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 42 || s.Ranks != 4 || s.Iterations != 12 || s.Events != 3 {
		t.Errorf("numeric fields wrong: %+v", s)
	}
	if !s.Real || s.Design != core.SCOB || s.Reduce != coll.Rabenseifner {
		t.Errorf("mode/design/reduce wrong: %+v", s)
	}
	w := DefaultWeights()
	w.Drop, w.Hang = 5, 0
	if s.Weights != w {
		t.Errorf("weights = %+v, want %+v", s.Weights, w)
	}
}

func TestParseSpecDefaults(t *testing.T) {
	s, err := ParseSpec("seed = 9\n")
	if err != nil {
		t.Fatal(err)
	}
	if s.Weights != (Weights{}) {
		t.Errorf("untouched weights should stay zero (withDefaults fills them): %+v", s.Weights)
	}
	d := s.withDefaults()
	if d.Ranks != 8 || d.Iterations != 8 || d.Events != 6 || d.Weights != DefaultWeights() {
		t.Errorf("withDefaults = %+v", d)
	}
}

func TestParseSpecRejects(t *testing.T) {
	for _, tc := range []struct{ text, want string }{
		{"ranks = 8\n", "must set seed"},
		{"seed = 1\nbogus = 2\n", "unknown key"},
		{"seed = 1\nranks = 0\n", "must be positive"},
		{"seed = 1\nmode = sideways\n", "want timing or real"},
		{"seed = 1\ndesign = mp\n", "unknown design"},
		{"seed = 1\nreduce = ring\n", "unknown reducer"},
		{"seed = 1\nweight.sdc = 1\n", "unknown weight family"},
		{"seed = 1\nweight.drop = -1\n", "non-negative"},
		{"seed = 1\njust words\n", "want key = value"},
		{"seed = 1\nweight.crash=0\nweight.hang=0\nweight.straggle=0\nweight.drop=0\nweight.dup=0\nweight.reorder=0\nweight.delay=0\nweight.partition=0\n", "every weight is zero"},
	} {
		if _, err := ParseSpec(tc.text); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseSpec(%q) err = %v, want containing %q", tc.text, err, tc.want)
		}
	}
}

// TestChaosSmoke is scripts/check.sh's race-gated chaos drill: 25
// seeded specs spanning the reducer families, each verified against
// the termination and counter invariants. The script runs it at
// GOMAXPROCS 1, 4, and 16 under the race detector; the full 200-spec
// gate is TestChaosGate.
func TestChaosSmoke(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		r, err := Verify(gateSpec(seed))
		if err != nil {
			if r != nil {
				t.Fatalf("spec failed: %v\n%s", err, r.Summary())
			}
			t.Fatalf("spec seed=%d failed: %v", seed, err)
		}
	}
}
